// Package stem implements the Porter stemming algorithm (Porter, 1980),
// which Templar uses to normalize natural-language tokens before running
// boolean-mode full-text search against text attributes (paper §V-A,
// reference [39]).
//
// The implementation follows the original five-step description. It operates
// on lowercase ASCII words; tokens containing non-letters are returned
// unchanged by Stem.
package stem

// Stem returns the Porter stem of word. The input is lowercased first.
// Words shorter than 3 characters and words containing characters outside
// [a-zA-Z] are returned as-is (lowercased), matching common IR practice.
func Stem(word string) string {
	b := []byte(word)
	for i := range b {
		c := b[i]
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		} else if c < 'a' || c > 'z' {
			return string(b)
		}
	}
	if len(b) < 3 {
		return string(b)
	}
	s := &stemmer{b: b, end: len(b) - 1}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b[:s.end+1])
}

// stemmer carries the mutable word buffer. end is the index of the last
// valid character; j marks the end of the stem during suffix checks.
type stemmer struct {
	b   []byte
	end int
	j   int
}

// isConsonant reports whether the character at index i acts as a consonant.
// 'y' is a consonant when at position 0 or preceded by a vowel-acting char.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in the stem b[0..j].
func (s *stemmer) measure() int {
	n := 0
	i := 0
	for {
		if i > s.j {
			return n
		}
		if !s.isConsonant(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.isConsonant(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.isConsonant(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doubleConsonant(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.isConsonant(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant where the final
// consonant is not w, x or y. Used to restore a trailing 'e' (e.g. hop->hope).
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends checks whether the word ends with suffix; if so it sets j to mark the
// stem boundary and returns true.
func (s *stemmer) ends(suffix string) bool {
	l := len(suffix)
	o := s.end - l + 1
	if o < 0 {
		return false
	}
	for i := 0; i < l; i++ {
		if s.b[o+i] != suffix[i] {
			return false
		}
	}
	s.j = s.end - l
	return true
}

// setTo replaces the suffix after j with rep and adjusts end.
func (s *stemmer) setTo(rep string) {
	l := len(rep)
	o := s.j + 1
	for i := 0; i < l; i++ {
		if o+i < len(s.b) {
			s.b[o+i] = rep[i]
		} else {
			s.b = append(s.b, rep[i])
		}
	}
	s.end = s.j + l
}

// replaceIfM replaces the current suffix with rep when measure() > 0.
func (s *stemmer) replaceIfM(rep string) {
	if s.measure() > 0 {
		s.setTo(rep)
	}
}

// step1a handles plurals: sses->ss, ies->i, ss->ss, s->"".
func (s *stemmer) step1a() {
	if s.b[s.end] != 's' {
		return
	}
	switch {
	case s.ends("sses"):
		s.end -= 2
	case s.ends("ies"):
		s.setTo("i")
	case s.b[s.end-1] != 's':
		s.end--
	}
}

// step1b handles -eed, -ed, -ing.
func (s *stemmer) step1b() {
	if s.ends("eed") {
		if s.measure() > 0 {
			s.end--
		}
		return
	}
	if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.end = s.j
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleConsonant(s.end):
			c := s.b[s.end]
			if c != 'l' && c != 's' && c != 'z' {
				s.end--
			}
		default:
			if s.measure() == 1 && s.cvc(s.end) {
				s.j = s.end
				s.setTo("e")
			}
		}
	}
}

// step1c turns terminal y to i when there is a vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.end] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0.
func (s *stemmer) step2() {
	if s.end < 1 {
		return
	}
	switch s.b[s.end-1] {
	case 'a':
		if s.ends("ational") {
			s.replaceIfM("ate")
		} else if s.ends("tional") {
			s.replaceIfM("tion")
		}
	case 'c':
		if s.ends("enci") {
			s.replaceIfM("ence")
		} else if s.ends("anci") {
			s.replaceIfM("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.replaceIfM("ize")
		}
	case 'l':
		if s.ends("bli") {
			s.replaceIfM("ble")
		} else if s.ends("alli") {
			s.replaceIfM("al")
		} else if s.ends("entli") {
			s.replaceIfM("ent")
		} else if s.ends("eli") {
			s.replaceIfM("e")
		} else if s.ends("ousli") {
			s.replaceIfM("ous")
		}
	case 'o':
		if s.ends("ization") {
			s.replaceIfM("ize")
		} else if s.ends("ation") {
			s.replaceIfM("ate")
		} else if s.ends("ator") {
			s.replaceIfM("ate")
		}
	case 's':
		if s.ends("alism") {
			s.replaceIfM("al")
		} else if s.ends("iveness") {
			s.replaceIfM("ive")
		} else if s.ends("fulness") {
			s.replaceIfM("ful")
		} else if s.ends("ousness") {
			s.replaceIfM("ous")
		}
	case 't':
		if s.ends("aliti") {
			s.replaceIfM("al")
		} else if s.ends("iviti") {
			s.replaceIfM("ive")
		} else if s.ends("biliti") {
			s.replaceIfM("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.replaceIfM("log")
		}
	}
}

// step3 deals with -ic-, -full, -ness etc.
func (s *stemmer) step3() {
	switch s.b[s.end] {
	case 'e':
		if s.ends("icate") {
			s.replaceIfM("ic")
		} else if s.ends("ative") {
			s.replaceIfM("")
		} else if s.ends("alize") {
			s.replaceIfM("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.replaceIfM("ic")
		}
	case 'l':
		if s.ends("ical") {
			s.replaceIfM("ic")
		} else if s.ends("ful") {
			s.replaceIfM("")
		}
	case 's':
		if s.ends("ness") {
			s.replaceIfM("")
		}
	}
}

// step4 removes -ant, -ence etc. when m > 1.
func (s *stemmer) step4() {
	if s.end < 1 {
		return
	}
	switch s.b[s.end-1] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				return
			}
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.measure() > 1 {
		s.end = s.j
	}
}

// step5a removes a final -e when m > 1, or when m == 1 and not cvc.
func (s *stemmer) step5a() {
	s.j = s.end
	if s.b[s.end] == 'e' {
		m := s.measure()
		if m > 1 || (m == 1 && !s.cvc(s.end-1)) {
			s.end--
		}
	}
}

// step5b maps -ll to -l when m > 1.
func (s *stemmer) step5b() {
	if s.b[s.end] == 'l' && s.doubleConsonant(s.end) {
		s.j = s.end
		if s.measure() > 1 {
			s.end--
		}
	}
}
