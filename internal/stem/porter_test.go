package stem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStemKnownPairs(t *testing.T) {
	// Classic vocabulary pairs from Porter's published test data, plus the
	// domain words that appear in the paper's examples (restaur/busi, §V-A).
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		// Domain vocabulary used by the paper and the benchmarks.
		"restaurant":   "restaur",
		"businesses":   "busi",
		"papers":       "paper",
		"publications": "public",
		"journals":     "journal",
		"movies":       "movi",
		"authors":      "author",
		"keywords":     "keyword",
		"citations":    "citat",
		"directors":    "director",
		"reviews":      "review",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemUppercaseNormalized(t *testing.T) {
	if got := Stem("Databases"); got != Stem("databases") {
		t.Errorf("case-sensitive stemming: %q vs %q", got, Stem("databases"))
	}
	if got := Stem("TKDE"); got != "tkde" {
		t.Errorf("Stem(TKDE) = %q, want tkde", got)
	}
}

func TestStemNonAlphaUnchanged(t *testing.T) {
	for _, w := range []string{"2000", "after-2000", "vldb'02", "a1b2"} {
		got := Stem(w)
		if !strings.EqualFold(got, w) {
			t.Errorf("Stem(%q) = %q, want passthrough (modulo case)", w, got)
		}
	}
}

func TestStemDeterministic(t *testing.T) {
	// The full-text index stems each raw word exactly once on both the index
	// and the query side, so what matters is that Stem is a pure function.
	// (Porter stemming is famously NOT idempotent: databas -> databa.)
	words := []string{
		"relational", "databases", "publications", "organizations",
		"conferences", "keywords", "citations", "restaurants", "reviewing",
		"categorized", "acting", "writers", "business", "ratings",
	}
	for _, w := range words {
		a, b := Stem(w), Stem(w)
		if a != b {
			t.Errorf("Stem(%q) nondeterministic: %q vs %q", w, a, b)
		}
	}
}

func TestStemNeverPanicsAndNeverGrows(t *testing.T) {
	f := func(s string) bool {
		got := Stem(s)
		// Porter stemming may extend by at most 1 byte transiently (e.g.
		// hop -> hope restores an 'e'), never more than input+1.
		return len(got) <= len(s)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStemASCIILettersOnlyLowercases(t *testing.T) {
	f := func(s string) bool {
		got := Stem(s)
		for _, c := range []byte(got) {
			if c >= 'A' && c <= 'Z' {
				return false
			}
		}
		_ = got
		return true
	}
	// Restrict to ASCII letter inputs.
	cfg := &quick.Config{MaxCount: 500, Values: nil}
	if err := quick.Check(func(n uint32) bool {
		// Build a pseudorandom ASCII-letter word from n.
		var b []byte
		x := n
		for i := 0; i < 8; i++ {
			b = append(b, byte('a'+x%26))
			x /= 3
		}
		return f(string(b))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "publications", "organizations", "conferences", "restaurants"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
