package sqlparse

import "testing"

func lex(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lexAll(%q): %v", src, err)
	}
	return toks
}

func TestLexerTokenKinds(t *testing.T) {
	toks := lex(t, "SELECT t.a, COUNT(*) FROM x WHERE a >= 1.5 AND b != 'it''s' AND c ?op ?val;")
	kinds := map[tokenKind]int{}
	for _, tk := range toks {
		kinds[tk.kind]++
	}
	if kinds[tokIdent] == 0 || kinds[tokNumber] != 1 || kinds[tokString] != 1 || kinds[tokParam] != 2 {
		t.Fatalf("kinds = %v in %v", kinds, toks)
	}
}

func TestLexerOperators(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"<", "<"}, {"<=", "<="}, {"<>", "<>"}, {">", ">"}, {">=", ">="},
		{"=", "="}, {"!=", "!="},
	} {
		toks := lex(t, tc.src)
		if toks[0].kind != tokOp || toks[0].text != tc.want {
			t.Errorf("lex(%q) = %v", tc.src, toks[0])
		}
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks := lex(t, "'O''Reilly'")
	if toks[0].kind != tokString || toks[0].text != "O'Reilly" {
		t.Fatalf("toks[0] = %v", toks[0])
	}
}

func TestLexerNumbers(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		{"42", "42"},
		{"3.14", "3.14"},
		{"-7", "-7"},
		{"-2.5", "-2.5"},
	} {
		toks := lex(t, tc.src)
		if toks[0].kind != tokNumber || toks[0].text != tc.want {
			t.Errorf("lex(%q) = %v", tc.src, toks[0])
		}
	}
	// "1.2.3" lexes as number then dot-number remainder, not an error.
	toks := lex(t, "1.2.3")
	if toks[0].text != "1.2" {
		t.Errorf("lex(1.2.3)[0] = %v", toks[0])
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "? ", "!x", "#"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q): expected error", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lex(t, "a  bb")
	if toks[0].pos != 0 || toks[1].pos != 3 {
		t.Fatalf("positions = %d %d", toks[0].pos, toks[1].pos)
	}
	if toks[2].kind != tokEOF {
		t.Fatalf("missing EOF: %v", toks)
	}
	if toks[2].String() != "<eof>" {
		t.Fatalf("EOF render = %q", toks[2].String())
	}
}
