package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement. A trailing semicolon is allowed.
func Parse(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokPunct && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting at %q", p.peek().text)
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and for
// statically-known log templates in the dataset generators.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic("sqlparse: MustParse: " + err.Error() + " in: " + src)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// keyword reports whether the next token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

// peekKeyword reports whether the next token is the given keyword without
// consuming it.
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectPunct(ch string) error {
	t := p.peek()
	if t.kind == tokPunct && t.text == ch {
		p.advance()
		return nil
	}
	return p.errorf("expected %q, found %q", ch, t.String())
}

// reserved lists keywords that terminate identifier positions (so an alias
// is never confused with a clause keyword).
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"by": true, "and": true, "limit": true, "distinct": true, "as": true,
	"desc": true, "asc": true, "like": true, "having": true, "in": true,
	"between": true,
}

func isReserved(s string) bool { return reserved[strings.ToLower(s)] }

var aggregates = map[string]string{
	"count": "COUNT", "sum": "SUM", "avg": "AVG", "min": "MIN", "max": "MAX",
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.keyword("select") {
		return nil, p.errorf("expected SELECT, found %q", p.peek().String())
	}
	q := &Query{Limit: -1}
	// Consume a query-level DISTINCT unless it is the MySQL-style
	// DISTINCT(col) function form, which parseSelectItem handles.
	if p.peekKeyword("distinct") && !(p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(") {
		p.advance()
		q.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if !p.keyword("from") {
		return nil, p.errorf("expected FROM, found %q", p.peek().String())
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, tr)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if p.keyword("where") {
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cond)
			if p.keyword("and") {
				continue
			}
			break
		}
	}
	if p.peekKeyword("group") {
		p.advance()
		if !p.keyword("by") {
			return nil, p.errorf("expected BY after GROUP")
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if p.peekKeyword("order") {
		p.advance()
		if !p.keyword("by") {
			return nil, p.errorf("expected BY after ORDER")
		}
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: item}
			if p.keyword("desc") {
				oi.Desc = true
			} else {
				p.keyword("asc")
			}
			q.OrderBy = append(q.OrderBy, oi)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if p.keyword("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT, found %q", t.String())
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokPunct && t.text == "*" {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if t.kind != tokIdent {
		return SelectItem{}, p.errorf("expected projection, found %q", t.String())
	}
	// Aggregate?
	if agg, ok := aggregates[strings.ToLower(t.text)]; ok && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
		p.advance() // agg name
		p.advance() // (
		item := SelectItem{Agg: agg}
		if p.keyword("distinct") {
			item.Distinct = true
		}
		if p.peek().kind == tokPunct && p.peek().text == "*" {
			p.advance()
			item.Star = true
		} else {
			c, err := p.parseColumnRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Column = c
		}
		if err := p.expectPunct(")"); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	if strings.EqualFold(t.text, "distinct") && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
		// MySQL-ism from the paper: SELECT DISTINCT(?attr) FROM ...
		p.advance()
		p.advance()
		c, err := p.parseColumnRef()
		if err != nil {
			return SelectItem{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Distinct: true, Column: c}, nil
	}
	c, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Column: c}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.kind != tokIdent || isReserved(t.text) {
		return TableRef{}, p.errorf("expected table name, found %q", t.String())
	}
	p.advance()
	tr := TableRef{Name: t.text}
	if p.keyword("as") {
		a := p.peek()
		if a.kind != tokIdent || isReserved(a.text) {
			return TableRef{}, p.errorf("expected alias after AS, found %q", a.String())
		}
		p.advance()
		tr.Alias = a.text
		return tr, nil
	}
	a := p.peek()
	if a.kind == tokIdent && !isReserved(a.text) {
		p.advance()
		tr.Alias = a.text
	}
	return tr, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t := p.peek()
	if t.kind != tokIdent || isReserved(t.text) {
		return ColumnRef{}, p.errorf("expected column reference, found %q", t.String())
	}
	p.advance()
	c := ColumnRef{Column: t.text}
	if p.peek().kind == tokPunct && p.peek().text == "." {
		p.advance()
		n := p.peek()
		if n.kind != tokIdent {
			return ColumnRef{}, p.errorf("expected column after '.', found %q", n.String())
		}
		p.advance()
		c.Table = c.Column
		c.Column = n.text
	}
	return c, nil
}

func (p *parser) parseCondition() (Condition, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if p.keyword("in") {
		return p.parseInList(left)
	}
	if p.keyword("between") {
		return p.parseBetween(left)
	}
	opTok := p.peek()
	var op string
	switch {
	case opTok.kind == tokOp:
		p.advance()
		op = opTok.text
		if op == "<>" {
			op = "!="
		}
	case opTok.kind == tokIdent && strings.EqualFold(opTok.text, "like"):
		p.advance()
		op = "LIKE"
	case opTok.kind == tokParam && opTok.text == "?op":
		p.advance()
		op = "?op"
	default:
		return nil, p.errorf("expected comparison operator, found %q", opTok.String())
	}
	v := p.peek()
	switch v.kind {
	case tokString:
		p.advance()
		return Pred{Column: left, Op: op, Value: Value{Kind: StringVal, S: v.text}}, nil
	case tokNumber:
		p.advance()
		n, err := strconv.ParseFloat(v.text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", v.text)
		}
		return Pred{Column: left, Op: op, Value: Value{Kind: NumberVal, N: n}}, nil
	case tokParam:
		p.advance()
		return Pred{Column: left, Op: op, Value: Value{Kind: Placeholder, S: v.text}}, nil
	case tokIdent:
		if isReserved(v.text) {
			return nil, p.errorf("expected value or column, found keyword %q", v.text)
		}
		right, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if right.Table == "" {
			// A bare identifier on the right of '=' is treated as an
			// unquoted string literal only if it is not a column; our SQL
			// subset requires join conditions to be fully qualified, so a
			// bare name is rejected for clarity.
			return nil, p.errorf("unqualified column %q on right-hand side of join condition", right.Column)
		}
		if op != "=" {
			return nil, p.errorf("join conditions must use '=', found %q", op)
		}
		return JoinCond{Left: left, Right: right}, nil
	default:
		return nil, p.errorf("expected comparison value, found %q", v.String())
	}
}

// parseLiteral consumes a string, number or ?val placeholder.
func (p *parser) parseLiteral() (Value, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.advance()
		return Value{Kind: StringVal, S: t.text}, nil
	case tokNumber:
		p.advance()
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, p.errorf("invalid number %q", t.text)
		}
		return Value{Kind: NumberVal, N: n}, nil
	case tokParam:
		p.advance()
		return Value{Kind: Placeholder, S: t.text}, nil
	default:
		return Value{}, p.errorf("expected literal, found %q", t.String())
	}
}

// parseInList parses the remainder of "col IN (v1, v2, …)".
func (p *parser) parseInList(col ColumnRef) (Condition, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return InPred{Column: col, Values: vals}, nil
}

// parseBetween parses the remainder of "col BETWEEN lo AND hi".
func (p *parser) parseBetween(col ColumnRef) (Condition, error) {
	lo, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	if !p.keyword("and") {
		return nil, p.errorf("expected AND in BETWEEN, found %q", p.peek().String())
	}
	hi, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return BetweenPred{Column: col, Lo: lo, Hi: hi}, nil
}

// ParseLog parses a newline-separated SQL log where each line may carry an
// optional "N x" repetition prefix ("25x: SELECT ..." as in the paper's
// Figure 3a). Blank lines and lines beginning with "--" are skipped.
// It returns the parsed queries with their multiplicities.
func ParseLog(log string) ([]LogEntry, error) {
	var out []LogEntry
	for ln, line := range strings.Split(log, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		count := 1
		if i := strings.Index(line, "x:"); i > 0 && i <= 9 {
			if n, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil && n > 0 {
				count = n
				line = strings.TrimSpace(line[i+2:])
			}
		}
		q, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: log line %d: %w", ln+1, err)
		}
		out = append(out, LogEntry{Query: q, Count: count})
	}
	return out, nil
}

// LogEntry is one parsed log line with its repetition count.
type LogEntry struct {
	Query *Query
	Count int
}
