package sqlparse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ColumnRef names a column, optionally qualified by a table alias or name.
// After Resolve, Table always holds the real relation name.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders "table.column" or just "column".
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// TableRef is one entry of the FROM list.
type TableRef struct {
	Name  string
	Alias string
}

// String renders "name alias" or "name".
func (t TableRef) String() string {
	if t.Alias == "" || t.Alias == t.Name {
		return t.Name
	}
	return t.Name + " " + t.Alias
}

// SelectItem is one projection: either *, a plain column, or an aggregate
// over a column (possibly nested, e.g. MAX(COUNT(x)) does not occur in our
// subset; a single aggregate level suffices).
type SelectItem struct {
	Star     bool
	Agg      string // "", COUNT, SUM, AVG, MIN, MAX
	Distinct bool   // COUNT(DISTINCT col) or SELECT DISTINCT col
	Column   ColumnRef
}

// String renders the projection expression.
func (s SelectItem) String() string {
	inner := s.Column.String()
	if s.Star {
		inner = "*"
	}
	if s.Distinct && s.Agg != "" {
		inner = "DISTINCT " + inner
	}
	if s.Agg != "" {
		return s.Agg + "(" + inner + ")"
	}
	return inner
}

// ValueKind tags literal values in predicates.
type ValueKind int

const (
	// StringVal is a quoted string literal.
	StringVal ValueKind = iota
	// NumberVal is a numeric literal.
	NumberVal
	// Placeholder is the obscured ?val token.
	Placeholder
)

// Value is a literal in a comparison predicate.
type Value struct {
	Kind ValueKind
	S    string  // for StringVal and the raw placeholder text
	N    float64 // for NumberVal
}

// String renders the literal in SQL syntax.
func (v Value) String() string {
	switch v.Kind {
	case StringVal:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case NumberVal:
		return strconv.FormatFloat(v.N, 'f', -1, 64)
	default:
		return "?val"
	}
}

// Condition is a conjunct of the WHERE clause: either a JoinCond or a Pred.
type Condition interface {
	fmt.Stringer
	isCondition()
}

// JoinCond equates two column references (an FK-PK join condition).
type JoinCond struct {
	Left  ColumnRef
	Right ColumnRef
}

func (JoinCond) isCondition() {}

// String renders "a.x = b.y".
func (j JoinCond) String() string { return j.Left.String() + " = " + j.Right.String() }

// Pred compares a column against a literal value. Op may be the obscured
// placeholder "?op".
type Pred struct {
	Column ColumnRef
	Op     string
	Value  Value
}

func (Pred) isCondition() {}

// String renders "col op value".
func (p Pred) String() string { return p.Column.String() + " " + p.Op + " " + p.Value.String() }

// InPred is a set-membership predicate: col IN (v1, v2, …).
type InPred struct {
	Column ColumnRef
	Values []Value
}

func (InPred) isCondition() {}

// String renders "col IN (v1, v2)".
func (p InPred) String() string {
	var b strings.Builder
	b.WriteString(p.Column.String())
	b.WriteString(" IN (")
	for i, v := range p.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(")")
	return b.String()
}

// BetweenPred is a range predicate: col BETWEEN lo AND hi.
type BetweenPred struct {
	Column ColumnRef
	Lo, Hi Value
}

func (BetweenPred) isCondition() {}

// String renders "col BETWEEN lo AND hi".
func (p BetweenPred) String() string {
	return p.Column.String() + " BETWEEN " + p.Lo.String() + " AND " + p.Hi.String()
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr SelectItem
	Desc bool
}

// String renders "expr" or "expr DESC".
func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// Query is a parsed single-block SELECT statement.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    []Condition
	GroupBy  []ColumnRef
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// String renders the query as SQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// aliasMap returns alias -> relation name for the FROM list. Unaliased tables
// map their own name to themselves.
func (q *Query) aliasMap() map[string]string {
	m := make(map[string]string, len(q.From))
	for _, t := range q.From {
		if t.Alias != "" {
			m[t.Alias] = t.Name
		}
		if _, exists := m[t.Name]; !exists {
			m[t.Name] = t.Name
		}
	}
	return m
}

// Resolve rewrites every column reference so Table holds the underlying
// relation name instead of an alias. Unqualified columns are resolved when a
// resolver function is supplied (it maps a bare column name to the owning
// relation among q.From); pass nil to leave them unqualified. It returns an
// error for references to unknown aliases.
func (q *Query) Resolve(owner func(column string, from []TableRef) (string, bool)) error {
	aliases := q.aliasMap()
	fix := func(c *ColumnRef) error {
		if c.Table == "" {
			if owner == nil {
				return nil
			}
			rel, ok := owner(c.Column, q.From)
			if !ok {
				return fmt.Errorf("sqlparse: cannot resolve column %q", c.Column)
			}
			c.Table = rel
			return nil
		}
		rel, ok := aliases[c.Table]
		if !ok {
			return fmt.Errorf("sqlparse: unknown table alias %q", c.Table)
		}
		c.Table = rel
		return nil
	}
	for i := range q.Select {
		if q.Select[i].Star {
			continue
		}
		if err := fix(&q.Select[i].Column); err != nil {
			return err
		}
	}
	for i, c := range q.Where {
		switch v := c.(type) {
		case JoinCond:
			if err := fix(&v.Left); err != nil {
				return err
			}
			if err := fix(&v.Right); err != nil {
				return err
			}
			q.Where[i] = v
		case Pred:
			if err := fix(&v.Column); err != nil {
				return err
			}
			q.Where[i] = v
		case InPred:
			if err := fix(&v.Column); err != nil {
				return err
			}
			q.Where[i] = v
		case BetweenPred:
			if err := fix(&v.Column); err != nil {
				return err
			}
			q.Where[i] = v
		}
	}
	for i := range q.GroupBy {
		if err := fix(&q.GroupBy[i]); err != nil {
			return err
		}
	}
	for i := range q.OrderBy {
		if q.OrderBy[i].Expr.Star {
			continue
		}
		if err := fix(&q.OrderBy[i].Expr.Column); err != nil {
			return err
		}
	}
	return nil
}

// Relations returns the multiset of relation names in the FROM list, sorted.
// Duplicates indicate self-joins.
func (q *Query) Relations() []string {
	out := make([]string, 0, len(q.From))
	for _, t := range q.From {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// Canonical renders a normalized form used for gold-vs-produced SQL
// comparison: aliases erased (callers should Resolve first), FROM sorted,
// WHERE conjuncts sorted lexicographically, SELECT order preserved.
// Two queries with equal Canonical strings are considered the same answer.
func (q *Query) Canonical() string {
	cp := *q
	cp.From = append([]TableRef(nil), q.From...)
	for i := range cp.From {
		cp.From[i].Alias = ""
	}
	sort.Slice(cp.From, func(i, j int) bool { return cp.From[i].Name < cp.From[j].Name })
	cp.Where = append([]Condition(nil), q.Where...)
	strs := make([]string, len(cp.Where))
	for i, c := range cp.Where {
		// Normalize join condition orientation: smaller side first.
		if j, ok := c.(JoinCond); ok {
			if j.Right.String() < j.Left.String() {
				j.Left, j.Right = j.Right, j.Left
				cp.Where[i] = j
			}
		}
		strs[i] = cp.Where[i].String()
	}
	sort.Sort(byStringWith{cp.Where, strs})
	return cp.String()
}

// byStringWith sorts conditions and their rendered strings together.
type byStringWith struct {
	conds []Condition
	strs  []string
}

func (b byStringWith) Len() int { return len(b.conds) }
func (b byStringWith) Less(i, j int) bool {
	return b.strs[i] < b.strs[j]
}
func (b byStringWith) Swap(i, j int) {
	b.conds[i], b.conds[j] = b.conds[j], b.conds[i]
	b.strs[i], b.strs[j] = b.strs[j], b.strs[i]
}
