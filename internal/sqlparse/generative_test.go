package sqlparse

import (
	"fmt"
	"testing"
)

// genQuery builds a pseudorandom but syntactically valid query from a seed,
// covering projections, aggregates, DISTINCT, multi-table FROM lists with
// aliases, every predicate shape, join conditions, GROUP BY, ORDER BY and
// LIMIT.
func genQuery(seed uint64) *Query {
	next := func() uint64 {
		seed ^= seed >> 12
		seed ^= seed << 25
		seed ^= seed >> 27
		return seed * 0x2545F4914F6CDD1D
	}
	pick := func(n int) int { return int(next() % uint64(n)) }

	tables := []string{"alpha", "beta", "gamma", "delta"}
	cols := []string{"id", "name", "year", "score"}
	aggs := []string{"", "COUNT", "SUM", "AVG", "MIN", "MAX"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}

	q := &Query{Limit: -1}
	nFrom := pick(3) + 1
	aliases := make([]string, nFrom)
	for i := 0; i < nFrom; i++ {
		aliases[i] = fmt.Sprintf("t%d", i+1)
		q.From = append(q.From, TableRef{Name: tables[pick(len(tables))], Alias: aliases[i]})
	}
	col := func() ColumnRef {
		return ColumnRef{Table: aliases[pick(nFrom)], Column: cols[pick(len(cols))]}
	}
	lit := func() Value {
		if pick(2) == 0 {
			return Value{Kind: NumberVal, N: float64(pick(5000))}
		}
		return Value{Kind: StringVal, S: fmt.Sprintf("v%d", pick(100))}
	}

	if pick(5) == 0 {
		q.Distinct = true
	}
	nSel := pick(3) + 1
	for i := 0; i < nSel; i++ {
		item := SelectItem{Column: col()}
		if a := aggs[pick(len(aggs))]; a != "" {
			item.Agg = a
			if a == "COUNT" && pick(3) == 0 {
				item.Distinct = true
			}
		}
		q.Select = append(q.Select, item)
	}
	nCond := pick(4)
	for i := 0; i < nCond; i++ {
		switch pick(4) {
		case 0:
			q.Where = append(q.Where, Pred{Column: col(), Op: ops[pick(len(ops))], Value: lit()})
		case 1:
			if nFrom > 1 {
				q.Where = append(q.Where, JoinCond{Left: col(), Right: col()})
			} else {
				q.Where = append(q.Where, Pred{Column: col(), Op: "=", Value: lit()})
			}
		case 2:
			vals := []Value{lit()}
			for j := 0; j < pick(3); j++ {
				vals = append(vals, lit())
			}
			q.Where = append(q.Where, InPred{Column: col(), Values: vals})
		default:
			q.Where = append(q.Where, BetweenPred{Column: col(), Lo: lit(), Hi: lit()})
		}
	}
	if pick(4) == 0 {
		q.GroupBy = append(q.GroupBy, col())
	}
	if pick(4) == 0 {
		q.OrderBy = append(q.OrderBy, OrderItem{Expr: SelectItem{Column: col()}, Desc: pick(2) == 0})
	}
	if pick(5) == 0 {
		q.Limit = pick(100)
	}
	return q
}

func TestGenerativeRoundTrip(t *testing.T) {
	// Property: rendering any generated AST and parsing it back yields an
	// AST that renders identically (String ∘ Parse ∘ String = String).
	for seed := uint64(1); seed <= 2000; seed++ {
		q := genQuery(seed)
		src := q.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, src, err)
		}
		if got := parsed.String(); got != src {
			t.Fatalf("seed %d: round trip mismatch:\n  built  %s\n  parsed %s", seed, src, got)
		}
	}
}

func TestGenerativeCanonicalStable(t *testing.T) {
	// Property: Canonical is idempotent — canonicalizing a canonical form
	// changes nothing.
	for seed := uint64(1); seed <= 500; seed++ {
		q := genQuery(seed)
		if err := q.Resolve(nil); err != nil {
			continue // generator may reference a table twice under one alias
		}
		c1 := q.Canonical()
		q2, err := Parse(c1)
		if err != nil {
			t.Fatalf("seed %d: canonical form unparseable: %v\n%s", seed, err, c1)
		}
		if err := q2.Resolve(nil); err != nil {
			t.Fatalf("seed %d: canonical resolve: %v", seed, err)
		}
		if c2 := q2.Canonical(); c2 != c1 {
			t.Fatalf("seed %d: canonical not stable:\n  %s\n  %s", seed, c1, c2)
		}
	}
}
