package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse("SELECT t.a FROM table1 t, table2 u WHERE t.b = 15 AND t.id = u.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0].Column.String() != "t.a" {
		t.Fatalf("Select = %v", q.Select)
	}
	if len(q.From) != 2 || q.From[0].Name != "table1" || q.From[0].Alias != "t" {
		t.Fatalf("From = %v", q.From)
	}
	if len(q.Where) != 2 {
		t.Fatalf("Where = %v", q.Where)
	}
	p, ok := q.Where[0].(Pred)
	if !ok || p.Op != "=" || p.Value.Kind != NumberVal || p.Value.N != 15 {
		t.Fatalf("Where[0] = %#v", q.Where[0])
	}
	j, ok := q.Where[1].(JoinCond)
	if !ok || j.Left.String() != "t.id" || j.Right.String() != "u.id" {
		t.Fatalf("Where[1] = %#v", q.Where[1])
	}
}

func TestParsePaperExample1(t *testing.T) {
	// John's intended SQL query from Example 1.
	src := `SELECT p.title
	FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d
	WHERE d.name = 'Databases'
	AND p.pid = pk.pid AND k.kid = pk.kid
	AND dk.kid = k.kid AND dk.did = d.did`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 5 {
		t.Fatalf("From = %v", q.From)
	}
	joins := 0
	for _, c := range q.Where {
		if _, ok := c.(JoinCond); ok {
			joins++
		}
	}
	if joins != 4 {
		t.Fatalf("join conditions = %d, want 4", joins)
	}
}

func TestParseAggregatesAndGrouping(t *testing.T) {
	q, err := Parse("SELECT a.name, COUNT(p.pid) FROM author a, publication p WHERE a.aid = p.aid GROUP BY a.name ORDER BY COUNT(p.pid) DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[1].Agg != "COUNT" || q.Select[1].Column.String() != "p.pid" {
		t.Fatalf("Select[1] = %v", q.Select[1])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].String() != "a.name" {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.OrderBy[0].Expr.Agg != "COUNT" {
		t.Fatalf("OrderBy = %v", q.OrderBy)
	}
	if q.Limit != 5 {
		t.Fatalf("Limit = %d", q.Limit)
	}
}

func TestParseCountStarAndCountDistinct(t *testing.T) {
	q := MustParse("SELECT COUNT(*) FROM publication")
	if !q.Select[0].Star || q.Select[0].Agg != "COUNT" {
		t.Fatalf("Select = %v", q.Select)
	}
	q = MustParse("SELECT COUNT(DISTINCT p.title) FROM publication p")
	if !q.Select[0].Distinct || q.Select[0].Agg != "COUNT" {
		t.Fatalf("Select = %v", q.Select)
	}
}

func TestParseSelectDistinctFuncForm(t *testing.T) {
	// The full-text probe query shape from §V-A.
	q := MustParse("SELECT DISTINCT(b.name) FROM business b WHERE b.name = 'x'")
	if !q.Select[0].Distinct || q.Select[0].Column.String() != "b.name" {
		t.Fatalf("Select = %v", q.Select)
	}
}

func TestParsePlaceholders(t *testing.T) {
	// Obscured NoConstOp form from §IV.
	q, err := Parse("SELECT p.title FROM journal j, publication p WHERE j.name ?op ?val AND p.year ?op ?val AND j.jid = p.jid")
	if err != nil {
		t.Fatal(err)
	}
	pr := q.Where[0].(Pred)
	if pr.Op != "?op" || pr.Value.Kind != Placeholder {
		t.Fatalf("Where[0] = %#v", pr)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := MustParse("SELECT p.title FROM publication p WHERE p.title = 'O''Reilly'")
	pr := q.Where[0].(Pred)
	if pr.Value.S != "O'Reilly" {
		t.Fatalf("Value = %q", pr.Value.S)
	}
	if !strings.Contains(q.String(), "'O''Reilly'") {
		t.Fatalf("String() = %q", q.String())
	}
}

func TestParseOperators(t *testing.T) {
	for _, tc := range []struct{ src, op string }{
		{"SELECT p.title FROM publication p WHERE p.year > 2000", ">"},
		{"SELECT p.title FROM publication p WHERE p.year >= 2000", ">="},
		{"SELECT p.title FROM publication p WHERE p.year < 2000", "<"},
		{"SELECT p.title FROM publication p WHERE p.year <= 2000", "<="},
		{"SELECT p.title FROM publication p WHERE p.year != 2000", "!="},
		{"SELECT p.title FROM publication p WHERE p.year <> 2000", "!="},
		{"SELECT p.title FROM publication p WHERE p.title LIKE 'x'", "LIKE"},
	} {
		q, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got := q.Where[0].(Pred).Op; got != tc.op {
			t.Errorf("%s: op = %q, want %q", tc.src, got, tc.op)
		}
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q := MustParse("SELECT b.name FROM business b WHERE b.latitude > -122.5")
	pr := q.Where[0].(Pred)
	if pr.Value.N != -122.5 {
		t.Fatalf("Value = %v", pr.Value.N)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET a = 1",
		"SELECT FROM t",
		"SELECT a.b FROM",
		"SELECT a.b FROM t WHERE",
		"SELECT a.b FROM t WHERE a.b",
		"SELECT a.b FROM t WHERE a.b = ",
		"SELECT a.b FROM t WHERE a.b = 'unterminated",
		"SELECT a.b FROM t LIMIT x",
		"SELECT a.b FROM t extra garbage !",
		"SELECT a.b FROM t WHERE a.b > c",    // unqualified join RHS
		"SELECT a.b FROM t WHERE a.b > t2.c", // join with non-equality
		"SELECT a.b FROM t WHERE a.b ? 1",    // bare placeholder
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseAliasWithAS(t *testing.T) {
	q := MustParse("SELECT p.title FROM publication AS p")
	if q.From[0].Alias != "p" {
		t.Fatalf("Alias = %q", q.From[0].Alias)
	}
}

func TestResolveAliases(t *testing.T) {
	q := MustParse("SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid")
	if err := q.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Column.Table != "publication" {
		t.Fatalf("Select table = %q", q.Select[0].Column.Table)
	}
	j := q.Where[1].(JoinCond)
	if j.Left.Table != "publication" || j.Right.Table != "journal" {
		t.Fatalf("join resolved to %v", j)
	}
}

func TestResolveUnknownAlias(t *testing.T) {
	q := MustParse("SELECT z.title FROM publication p")
	if err := q.Resolve(nil); err == nil {
		t.Fatal("expected unknown alias error")
	}
}

func TestResolveUnqualifiedWithOwner(t *testing.T) {
	q := MustParse("SELECT title FROM publication WHERE year > 2000")
	owner := func(col string, from []TableRef) (string, bool) {
		return from[0].Name, true
	}
	if err := q.Resolve(owner); err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Column.Table != "publication" {
		t.Fatalf("owner resolution failed: %v", q.Select[0].Column)
	}
	pr := q.Where[0].(Pred)
	if pr.Column.Table != "publication" {
		t.Fatalf("owner resolution failed for predicate: %v", pr)
	}
}

func TestRelationsMultiset(t *testing.T) {
	q := MustParse("SELECT p.title FROM author a1, author a2, publication p")
	rels := q.Relations()
	if len(rels) != 3 || rels[0] != "author" || rels[1] != "author" || rels[2] != "publication" {
		t.Fatalf("Relations = %v", rels)
	}
}

func TestCanonicalEquivalence(t *testing.T) {
	a := MustParse("SELECT p.title FROM journal j, publication p WHERE p.year > 2000 AND j.jid = p.jid")
	b := MustParse("SELECT pub.title FROM publication pub, journal jr WHERE jr.jid = pub.jid AND pub.year > 2000")
	if err := a.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical mismatch:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

func TestCanonicalDistinguishesDifferentQueries(t *testing.T) {
	a := MustParse("SELECT p.title FROM publication p WHERE p.year > 2000")
	b := MustParse("SELECT p.title FROM publication p WHERE p.year < 2000")
	_ = a.Resolve(nil)
	_ = b.Resolve(nil)
	if a.Canonical() == b.Canonical() {
		t.Fatal("different operators must not be canonically equal")
	}
}

func TestRoundTripStringParse(t *testing.T) {
	srcs := []string{
		"SELECT p.title FROM publication p WHERE p.year > 2000",
		"SELECT DISTINCT j.name FROM journal j",
		"SELECT COUNT(*) FROM publication",
		"SELECT a.name, COUNT(p.pid) FROM author a, publication p WHERE a.aid = p.aid GROUP BY a.name ORDER BY COUNT(p.pid) DESC LIMIT 3",
		"SELECT p.title FROM publication p WHERE p.title = 'Saving Private Ryan'",
	}
	for _, src := range srcs {
		q1 := MustParse(src)
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip mismatch: %q vs %q", q1.String(), q2.String())
		}
	}
}

func TestParseLog(t *testing.T) {
	log := `
25x: SELECT j.name FROM journal j
5x: SELECT p.title FROM publication p WHERE p.year > 2003
-- a comment line
3x: SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.pid = j.pid
SELECT p.title FROM publication p
`
	entries, err := ParseLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Count != 25 || entries[1].Count != 5 || entries[2].Count != 3 || entries[3].Count != 1 {
		t.Fatalf("counts = %v %v %v %v", entries[0].Count, entries[1].Count, entries[2].Count, entries[3].Count)
	}
}

func TestParseLogBadLineReportsLineNumber(t *testing.T) {
	_, err := ParseLog("SELECT j.name FROM journal j\nTHIS IS NOT SQL")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnSQLLikeInputs(t *testing.T) {
	// Fuzz with strings assembled from SQL vocabulary, which reach deeper
	// parser states than raw random bytes.
	vocab := []string{
		"SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "ORDER", "LIMIT",
		"p.title", "journal", "j", ",", "=", ">", "'x'", "2000", "(", ")",
		"COUNT", "*", "DISTINCT", "?op", "?val", ".",
	}
	f := func(seed uint64, n uint8) bool {
		var parts []string
		x := seed
		for i := 0; i < int(n%24)+1; i++ {
			parts = append(parts, vocab[x%uint64(len(vocab))])
			x = x*6364136223846793005 + 1442695040888963407
		}
		s := strings.Join(parts, " ")
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	src := "SELECT p.title FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d WHERE d.name = 'Databases' AND p.pid = pk.pid AND k.kid = pk.kid AND dk.kid = k.kid AND dk.did = d.did"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
