package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's only failure mode on arbitrary input is a
// returned error — never a panic. The parser feeds the log miner, which
// chews through whatever SQL a production query log contains, so crashing
// on malformed input would take the trainer down with it.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT j.name FROM journal j",
		"SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.pid = j.pid",
		"SELECT COUNT(p.pid) FROM publication p GROUP BY p.year ORDER BY COUNT(p.pid) DESC",
		"SELECT a.name FROM author a WHERE a.age BETWEEN 20 AND 30",
		"SELECT b.name FROM business b WHERE b.city IN ('SF', 'LA')",
		"SELECT * FROM t",
		"SELECT t.a FROM t WHERE t.b = -1.5e3",
		"select t.a from t where t.b = 'unterminated",
		"SELECT FROM WHERE",
		"SELECT t.a FROM t WHERE t.b = 'it''s'",
		"SELECT t.a FROM t WHERE ((t.b = 1)",
		"\x00\xff SELECT",
		"25x: SELECT j.name FROM journal j",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatal("Parse returned nil query with nil error")
		}
		if err == nil {
			// A successfully parsed query must render and re-parse: the
			// String form is what the QFG pipeline canonicalizes on.
			rendered := q.String()
			if strings.TrimSpace(rendered) == "" {
				t.Fatalf("parsed query rendered empty for input %q", src)
			}
			if _, err := Parse(rendered); err != nil {
				t.Fatalf("rendering is not re-parseable: %q -> %q: %v", src, rendered, err)
			}
		}
	})
}

// FuzzParseLog covers the log-file front-end (multiplicity prefixes,
// comments, blank lines) the same way.
func FuzzParseLog(f *testing.F) {
	f.Add("25x: SELECT j.name FROM journal j\n5x: SELECT p.title FROM publication p")
	f.Add("# comment\n\nSELECT j.name FROM journal j")
	f.Add("0x: SELECT j.name FROM journal j")
	f.Add("x: 25x: --")
	f.Fuzz(func(t *testing.T, src string) {
		entries, err := ParseLog(src)
		if err == nil {
			for i, e := range entries {
				if e.Query == nil {
					t.Fatalf("entry %d has nil query", i)
				}
				if e.Count <= 0 {
					t.Fatalf("entry %d has non-positive count %d", i, e.Count)
				}
			}
		}
	})
}
