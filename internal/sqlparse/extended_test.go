package sqlparse

import (
	"strings"
	"testing"
)

func TestParseInList(t *testing.T) {
	q := MustParse("SELECT b.name FROM business b WHERE b.city IN ('Phoenix', 'Tempe')")
	p, ok := q.Where[0].(InPred)
	if !ok {
		t.Fatalf("Where[0] = %#v", q.Where[0])
	}
	if len(p.Values) != 2 || p.Values[0].S != "Phoenix" || p.Values[1].S != "Tempe" {
		t.Fatalf("Values = %v", p.Values)
	}
	if got := p.String(); got != "b.city IN ('Phoenix', 'Tempe')" {
		t.Fatalf("String = %q", got)
	}
	// Mixed types and placeholders are permitted by the grammar.
	q = MustParse("SELECT p.title FROM publication p WHERE p.year IN (2000, 2001, ?val)")
	p = q.Where[0].(InPred)
	if len(p.Values) != 3 || p.Values[2].Kind != Placeholder {
		t.Fatalf("Values = %v", p.Values)
	}
}

func TestParseBetween(t *testing.T) {
	q := MustParse("SELECT p.title FROM publication p WHERE p.year BETWEEN 1995 AND 2005")
	p, ok := q.Where[0].(BetweenPred)
	if !ok {
		t.Fatalf("Where[0] = %#v", q.Where[0])
	}
	if p.Lo.N != 1995 || p.Hi.N != 2005 {
		t.Fatalf("range = %v..%v", p.Lo, p.Hi)
	}
	if got := p.String(); got != "p.year BETWEEN 1995 AND 2005" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseBetweenFollowedByAnd(t *testing.T) {
	// The AND inside BETWEEN must not terminate the conjunct list.
	q := MustParse("SELECT p.title FROM publication p, journal j WHERE p.year BETWEEN 1995 AND 2005 AND p.jid = j.jid")
	if len(q.Where) != 2 {
		t.Fatalf("Where = %v", q.Where)
	}
	if _, ok := q.Where[1].(JoinCond); !ok {
		t.Fatalf("Where[1] = %#v", q.Where[1])
	}
}

func TestParseInBetweenErrors(t *testing.T) {
	bad := []string{
		"SELECT a.b FROM t WHERE a.b IN",
		"SELECT a.b FROM t WHERE a.b IN ()",
		"SELECT a.b FROM t WHERE a.b IN ('x'",
		"SELECT a.b FROM t WHERE a.b IN ('x',)",
		"SELECT a.b FROM t WHERE a.b BETWEEN 1",
		"SELECT a.b FROM t WHERE a.b BETWEEN 1 AND",
		"SELECT a.b FROM t WHERE a.b BETWEEN 1, 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestInBetweenRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT b.name FROM business b WHERE b.city IN ('Phoenix', 'Tempe')",
		"SELECT p.title FROM publication p WHERE p.year BETWEEN 1995 AND 2005",
	}
	for _, src := range srcs {
		q1 := MustParse(src)
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip: %q vs %q", q1.String(), q2.String())
		}
	}
}

func TestInBetweenResolve(t *testing.T) {
	q := MustParse("SELECT b.name FROM business b WHERE b.city IN ('Phoenix') AND b.rating BETWEEN 3 AND 5")
	if err := q.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	in := q.Where[0].(InPred)
	bt := q.Where[1].(BetweenPred)
	if in.Column.Table != "business" || bt.Column.Table != "business" {
		t.Fatalf("resolve failed: %v %v", in.Column, bt.Column)
	}
	if !strings.Contains(q.Canonical(), "BETWEEN") {
		t.Fatalf("canonical lost BETWEEN: %s", q.Canonical())
	}
}
