// Package sqlparse implements a lexer, parser and AST for the SQL subset that
// appears in Templar's query logs and benchmarks: single-block SELECT
// statements with aggregation, DISTINCT, aliased FROM lists (implicit joins),
// conjunctive WHERE clauses mixing value predicates and FK-PK join
// conditions, GROUP BY, ORDER BY and LIMIT.
//
// The parser is the substrate used to (a) mine query fragments from a SQL
// log to build the Query Fragment Graph and (b) parse gold SQL annotations
// when computing evaluation accuracy.
package sqlparse

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // = < > <= >= <> !=
	tokPunct // ( ) , . * ;
	tokParam // ?val ?op ?attr placeholders (obscured fragments)
)

// token is a lexeme with its source position (byte offset) for diagnostics.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "<eof>"
	}
	return t.text
}

// lexer scans an input string into tokens.
type lexer struct {
	src string
	pos int
}

// lexError annotates a message with a source position.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sqlparse: at offset %d: %s", e.pos, e.msg)
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if isDigit(d) {
				l.pos++
				continue
			}
			if d == '.' && !seenDot && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(d)
			l.pos++
		}
		return token{}, &lexError{start, "unterminated string literal"}
	case c == '?':
		l.pos++
		for l.pos < len(l.src) && isLetter(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, &lexError{start, "bare ? placeholder"}
		}
		return token{kind: tokParam, text: l.src[start:l.pos], pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, &lexError{start, "unexpected '!'"}
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == ';':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, &lexError{start, fmt.Sprintf("unexpected character %q", c)}
	}
}

// lexAll tokenizes the full input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
