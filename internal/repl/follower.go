package repl

import (
	"context"
	"errors"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"templar/internal/qfg"
	"templar/internal/wal"
	"templar/pkg/api"
)

// FollowerOptions tune a follower's tail loop. The zero value is usable:
// 100ms polls, 200ms→5s jittered retry backoff.
type FollowerOptions struct {
	// PollInterval is the idle delay between tail polls once caught up.
	PollInterval time.Duration
	// Backoff is the initial retry delay after a failed poll; it doubles
	// per consecutive failure up to MaxBackoff and resets on success.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Jitter maps a planned delay onto the actually slept one. The default
	// is equal jitter (uniform in [d/2, d]), so a fleet of followers that
	// lost the same primary does not retry in lockstep. Tests inject
	// identity to make schedules deterministic.
	Jitter func(d time.Duration) time.Duration
	// Sleep is the delay primitive, injectable for tests; the default
	// honors ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Logger receives state transitions (re-bootstraps, rejected batches);
	// nil discards them.
	Logger *log.Logger
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.Backoff <= 0 {
		o.Backoff = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Jitter == nil {
		o.Jitter = func(d time.Duration) time.Duration {
			half := d / 2
			return half + time.Duration(rand.Int63n(int64(half)+1))
		}
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return o
}

// Bootstrap fetches the primary's current snapshot archive and builds the
// live engine a follower serves from, returning it with the watermark
// sequence the snapshot covers — tailing starts right after it.
func Bootstrap(ctx context.Context, c *Client, dataset string) (*qfg.Live, uint64, error) {
	ar, err := c.Snapshot(ctx, dataset)
	if err != nil {
		return nil, 0, err
	}
	return qfg.NewLiveFromSnapshot(ar.Snapshot), ar.WalSeq, nil
}

// Follower tails one dataset's replication stream and folds validated
// batches into the live engine it was bootstrapped with. All state is
// atomic: the serving layer reads Status() concurrently with the loop.
type Follower struct {
	dataset string
	client  *Client
	live    *qfg.Live
	opts    FollowerOptions

	applied    atomic.Uint64
	primarySeq atomic.Uint64
	bootstraps atomic.Int64
	rejected   atomic.Int64
	lastPollMS atomic.Int64
	lastErr    atomic.Pointer[string]
}

// NewFollower wraps a bootstrapped engine: live must have been built from
// the primary's snapshot at watermark startSeq (see Bootstrap).
func NewFollower(c *Client, dataset string, live *qfg.Live, startSeq uint64, opts FollowerOptions) *Follower {
	f := &Follower{dataset: dataset, client: c, live: live, opts: opts.withDefaults()}
	f.applied.Store(startSeq)
	f.primarySeq.Store(startSeq)
	f.bootstraps.Store(1)
	return f
}

// AppliedSeq is the last WAL sequence folded into the serving engine.
func (f *Follower) AppliedSeq() uint64 { return f.applied.Load() }

// Status reports the follower's position for /healthz and the dataset
// listings.
func (f *Follower) Status() *api.ReplicationStatus {
	applied := int64(f.applied.Load())
	primary := int64(f.primarySeq.Load())
	st := &api.ReplicationStatus{
		Role:            "follower",
		Primary:         f.client.Base(),
		LastAppliedSeq:  applied,
		PrimarySeq:      primary,
		Lag:             max64(primary-applied, 0),
		Bootstraps:      f.bootstraps.Load(),
		RejectedBatches: f.rejected.Load(),
		LastPollUnixMS:  f.lastPollMS.Load(),
	}
	if msg := f.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}

// Run tails the stream until ctx is cancelled. Transport failures back
// off with jitter and never disturb the serving engine — the replica
// keeps answering reads at its applied sequence; damaged batches are
// rejected whole and re-fetched; a compacted-away tail position falls
// back to a snapshot re-bootstrap.
func (f *Follower) Run(ctx context.Context) {
	backoff := f.opts.Backoff
	for ctx.Err() == nil {
		progressed, err := f.poll(ctx)
		switch {
		case err == nil:
			backoff = f.opts.Backoff
			f.lastErr.Store(nil)
			if progressed {
				continue // more records are waiting: drain before idling
			}
			if f.opts.Sleep(ctx, f.opts.Jitter(f.opts.PollInterval)) != nil {
				return
			}
		case errors.Is(err, context.Canceled) || ctx.Err() != nil:
			return
		default:
			msg := err.Error()
			f.lastErr.Store(&msg)
			f.logf("repl: %s: %v", f.dataset, err)
			if f.opts.Sleep(ctx, f.opts.Jitter(backoff)) != nil {
				return
			}
			if backoff *= 2; backoff > f.opts.MaxBackoff {
				backoff = f.opts.MaxBackoff
			}
		}
	}
}

// poll runs one tail round trip. It reports whether the follower applied
// records and believes more are waiting (the caller then skips the idle
// sleep).
func (f *Follower) poll(ctx context.Context) (bool, error) {
	from := f.applied.Load()
	batch, err := f.client.Tail(ctx, f.dataset, from)
	switch {
	case errors.Is(err, wal.ErrGap) || errors.Is(err, wal.ErrAhead):
		// The primary cannot resume our position: records before its oldest
		// segment are gone (compaction passed us) or our lineage diverged.
		// Fall back to a fresh snapshot; Reset re-anchors the engine at the
		// new watermark in one publish.
		f.logf("repl: %s: %v; re-bootstrapping from snapshot", f.dataset, err)
		return true, f.rebootstrap(ctx)
	case errors.Is(err, wal.ErrChecksum) || errors.Is(err, wal.ErrCorrupt) || errors.Is(err, wal.ErrTruncated):
		// The batch arrived damaged. Nothing was applied — Tail validates
		// the whole batch before returning records — so the recovery is a
		// plain re-fetch.
		f.rejected.Add(1)
		return false, err
	case err != nil:
		return false, err
	}
	f.lastPollMS.Store(time.Now().UnixMilli())
	f.primarySeq.Store(batch.PrimarySeq)
	if len(batch.Records) == 0 {
		return false, nil
	}
	ops := make([]qfg.ReplayOp, len(batch.Records))
	for i, rec := range batch.Records {
		op, err := ToReplayOp(rec)
		if err != nil {
			f.rejected.Add(1)
			return false, err
		}
		ops[i] = op
	}
	if err := f.live.Replay(ops); err != nil {
		return false, err
	}
	f.applied.Store(batch.Records[len(batch.Records)-1].Seq)
	return f.applied.Load() < batch.PrimarySeq, nil
}

// rebootstrap replaces the serving engine with a fresh primary snapshot.
func (f *Follower) rebootstrap(ctx context.Context) error {
	ar, err := f.client.Snapshot(ctx, f.dataset)
	if err != nil {
		return err
	}
	f.live.Reset(ar.Snapshot)
	f.applied.Store(ar.WalSeq)
	if f.primarySeq.Load() < ar.WalSeq {
		f.primarySeq.Store(ar.WalSeq)
	}
	f.bootstraps.Add(1)
	f.lastPollMS.Store(time.Now().UnixMilli())
	return nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logger != nil {
		f.opts.Logger.Printf(format, args...)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
