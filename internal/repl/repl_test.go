package repl_test

// Replication integration tests: the tail/snapshot endpoints over real
// HTTP, follower convergence with byte-identical reads, append
// redirection to the primary, and the fault-injection battery the
// design promises to survive — unreachable primary (jittered backoff,
// stale-but-consistent reads), compacted-away tail position (typed
// refusal, snapshot re-bootstrap) and a bit-flipped record on the wire
// (checksum reject, re-fetch, never applied). The long soak with the
// golden-corpus gate lives in internal/workload.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/repl"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/internal/wal"
	"templar/pkg/api"
	"templar/pkg/client"
)

func buildGraph(t testing.TB, ds *datasets.Dataset) *qfg.Graph {
	t.Helper()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	g, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// primaryTenant assembles a WAL-armed tenant the way templar-serve does.
func primaryTenant(t testing.TB, ds *datasets.Dataset, storeDir, walDir string) *serve.Tenant {
	t.Helper()
	path := filepath.Join(storeDir, store.Filename(ds.Name))
	if _, err := os.Stat(path); err != nil {
		if err := store.WriteFile(path, ds.Name, buildGraph(t, ds).Snapshot(nil)); err != nil {
			t.Fatal(err)
		}
	}
	ar, err := store.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	live := qfg.NewLiveFromSnapshot(ar.Snapshot)
	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
	tn := &serve.Tenant{Name: ds.Name, Sys: sys, Source: "store", StorePath: path, SnapshotSeq: ar.WalSeq}
	if _, err := serve.AttachWAL(tn, walDir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tn.WAL.Close() })
	return tn
}

func tenantServer(t testing.TB, tn *serve.Tenant) *httptest.Server {
	t.Helper()
	reg := serve.NewRegistry()
	if err := reg.Add(tn); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewRegistryServer(reg, tn.Name, 2, nil).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// fastOpts makes a follower poll aggressively with a deterministic
// schedule, so tests converge in milliseconds.
func fastOpts() repl.FollowerOptions {
	return repl.FollowerOptions{
		PollInterval: 2 * time.Millisecond,
		Backoff:      4 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		Jitter:       func(d time.Duration) time.Duration { return d },
	}
}

// startFollower bootstraps a follower replica from primaryURL, mounts it
// behind its own read-only server, and starts the tail loop.
func startFollower(t testing.TB, ds *datasets.Dataset, primaryURL string, opts repl.FollowerOptions) (*repl.Follower, *httptest.Server) {
	t.Helper()
	rc, err := repl.NewClient(primaryURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	live, seq, err := repl.Bootstrap(context.Background(), rc, ds.Name)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
	f := repl.NewFollower(rc, ds.Name, live, seq, opts)
	tn := &serve.Tenant{Name: ds.Name, Sys: sys, Source: "replica", Follower: f, Primary: primaryURL}
	fts := tenantServer(t, tn)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return f, fts
}

func postJSON(t testing.TB, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

// appendBatch posts one batch append of the given SQL strings.
func appendBatch(t testing.TB, baseURL, dataset string, sqls ...string) api.LogAppendResponse {
	t.Helper()
	req := api.LogAppendRequest{}
	for _, s := range sqls {
		req.Queries = append(req.Queries, api.LogEntry{SQL: s})
	}
	var resp api.LogAppendResponse
	if s := postJSON(t, baseURL+"/v2/"+strings.ToLower(dataset)+"/log", req, &resp); s != http.StatusOK {
		t.Fatalf("append status = %d", s)
	}
	return resp
}

func waitApplied(t testing.TB, f *repl.Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for f.AppliedSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (status %+v)", f.AppliedSeq(), want, f.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// probe answers a fixed read battery against base and returns the
// concatenated raw response bodies — the byte-identity unit.
func probe(t testing.TB, base, dataset string) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, call := range []struct{ path, body string }{
		{"/v2/" + dataset + "/map-keywords", `{"spec":"papers:select;Databases:where","top_k":3}`},
		{"/v2/" + dataset + "/infer-joins", `{"relations":["publication","domain"],"top_k":3}`},
		{"/v2/" + dataset + "/translate", `{"queries":[{"spec":"papers:select;Databases:where"}]}`},
	} {
		resp, err := http.Post(base+call.path, "application/json", strings.NewReader(call.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe %s = %d: %s", call.path, resp.StatusCode, raw)
		}
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

var masAppends = []string{
	"SELECT j.name FROM journal j",
	"SELECT p.title FROM publication p",
	"SELECT a.name FROM author a",
	"SELECT o.name FROM organization o",
	"SELECT c.name FROM conference c",
	"SELECT d.name FROM domain d",
}

// TestFollowerConvergesByteIdentical is the happy path end to end: a
// follower bootstraps mid-history, tails the rest, reaches the primary's
// sequence, answers the read battery byte-identically, and reports its
// position on /healthz while refusing to look like an appendable tenant.
func TestFollowerConvergesByteIdentical(t *testing.T) {
	ds := datasets.MAS()
	tn := primaryTenant(t, ds, t.TempDir(), t.TempDir())
	pts := tenantServer(t, tn)

	appendBatch(t, pts.URL, ds.Name, masAppends[0])
	appendBatch(t, pts.URL, ds.Name, masAppends[1], masAppends[2])

	f, fts := startFollower(t, ds, pts.URL, fastOpts())
	if got := f.AppliedSeq(); got != 2 {
		t.Fatalf("bootstrap watermark = %d, want 2 (snapshot captured at the primary's current seq)", got)
	}

	appendBatch(t, pts.URL, ds.Name, masAppends[3])
	appendBatch(t, pts.URL, ds.Name, masAppends[4], masAppends[5])
	waitApplied(t, f, 4)

	want := probe(t, pts.URL, "mas")
	if got := probe(t, fts.URL, "mas"); !bytes.Equal(got, want) {
		t.Fatalf("follower answers diverge from primary:\nprimary: %s\nfollower: %s", want, got)
	}

	var health api.HealthResponse
	resp, err := http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Repl == nil || health.Repl.Role != "follower" || health.Repl.LastAppliedSeq != 4 ||
		health.Repl.Lag != 0 || health.Repl.Primary != pts.URL {
		t.Fatalf("follower healthz repl = %+v", health.Repl)
	}
	if health.LiveLog {
		t.Fatal("follower advertises live_log: clients would append to a replica")
	}
}

// TestTailEndpointContract pins the stream endpoint's HTTP surface: wire
// frames identical to the WAL codec, the last-seq header, and the typed
// refusals (422 malformed from, 409 ahead-of-log, 501 on a follower).
func TestTailEndpointContract(t *testing.T) {
	ds := datasets.MAS()
	tn := primaryTenant(t, ds, t.TempDir(), t.TempDir())
	pts := tenantServer(t, tn)
	appendBatch(t, pts.URL, ds.Name, masAppends[0])
	appendBatch(t, pts.URL, ds.Name, masAppends[1])

	resp, err := http.Get(pts.URL + "/v2/mas/wal?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != repl.TailContentType {
		t.Fatalf("tail content type = %q", ct)
	}
	if last := resp.Header.Get(repl.HeaderLastSeq); last != "2" {
		t.Fatalf("%s = %q, want 2", repl.HeaderLastSeq, last)
	}
	rr := wal.NewRecordReader(resp.Body)
	var seqs []uint64
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, rec.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("streamed seqs = %v", seqs)
	}

	status := func(url string) (int, *api.Error) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		e := &api.Error{}
		json.NewDecoder(resp.Body).Decode(e)
		return resp.StatusCode, e
	}
	if s, e := status(pts.URL + "/v2/mas/wal?from=99"); s != http.StatusConflict || e.Code != api.CodeConflict {
		t.Fatalf("ahead-of-log tail: %d %+v", s, e)
	}
	if s, e := status(pts.URL + "/v2/mas/wal?from=bogus"); s != http.StatusUnprocessableEntity || e.Code != api.CodeValidation {
		t.Fatalf("malformed from: %d %+v", s, e)
	}

	_, fts := startFollower(t, ds, pts.URL, fastOpts())
	if s, e := status(fts.URL + "/v2/mas/wal?from=0"); s != http.StatusNotImplemented || e.Code != api.CodeNotConfigured {
		t.Fatalf("tail against a follower: %d %+v", s, e)
	}
}

// TestAppendRedirectsToPrimary pins the write path on a replica: raw
// clients see 307 + Location + a not_primary problem (v2) or the legacy
// string envelope (v1); the SDK follows the hop and lands the append on
// the primary.
func TestAppendRedirectsToPrimary(t *testing.T) {
	ds := datasets.MAS()
	tn := primaryTenant(t, ds, t.TempDir(), t.TempDir())
	pts := tenantServer(t, tn)
	appendBatch(t, pts.URL, ds.Name, masAppends[0])
	f, fts := startFollower(t, ds, pts.URL, fastOpts())

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	body := `{"queries":[{"sql":"SELECT p.title FROM publication p"}]}`
	resp, err := noFollow.Post(fts.URL+"/v2/mas/log", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("v2 append on follower = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != pts.URL+"/v2/mas/log" {
		t.Fatalf("Location = %q, want %q", loc, pts.URL+"/v2/mas/log")
	}
	e := &api.Error{}
	if err := json.Unmarshal(raw, e); err != nil || e.Code != api.CodeNotPrimary {
		t.Fatalf("v2 redirect body: %v %s", err, raw)
	}

	resp, err = noFollow.Post(fts.URL+"/v1/mas/log", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var legacy struct {
		Error string `json:"error"`
	}
	if resp.StatusCode != http.StatusTemporaryRedirect || json.Unmarshal(raw, &legacy) != nil || legacy.Error == "" {
		t.Fatalf("v1 redirect: %d %s", resp.StatusCode, raw)
	}

	// The SDK follows the hop: the append lands on the primary and is
	// acknowledged with the primary's next WAL sequence.
	sdk, err := client.New(fts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := sdk.AppendLog(context.Background(), "mas",
		api.LogAppendRequest{Queries: []api.LogEntry{{SQL: masAppends[1]}}})
	if err != nil {
		t.Fatalf("SDK append via follower: %v", err)
	}
	if ack.WALSeq != 2 || sdk.Redirects() != 1 {
		t.Fatalf("ack seq = %d redirects = %d, want 2 and 1", ack.WALSeq, sdk.Redirects())
	}
	if tn.WAL.LastSeq() != 2 {
		t.Fatalf("primary seq = %d, want 2", tn.WAL.LastSeq())
	}
	waitApplied(t, f, 2)
}

// TestFollowerBackoffWhenPrimaryUnreachable is fault injection (a): the
// primary vanishes, the follower retries on the doubling backoff
// schedule (jitter pinned to identity) and keeps serving reads at its
// applied sequence the whole time.
func TestFollowerBackoffWhenPrimaryUnreachable(t *testing.T) {
	ds := datasets.MAS()
	tn := primaryTenant(t, ds, t.TempDir(), t.TempDir())
	pts := tenantServer(t, tn)
	appendBatch(t, pts.URL, ds.Name, masAppends[0])
	appendBatch(t, pts.URL, ds.Name, masAppends[1])

	var mu sync.Mutex
	var delays []time.Duration
	opts := fastOpts()
	opts.Sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
			return nil
		}
	}
	f, fts := startFollower(t, ds, pts.URL, opts)
	waitApplied(t, f, 2)
	before := probe(t, fts.URL, "mas")

	pts.CloseClientConnections()
	pts.Close() // the primary is gone
	mu.Lock()
	delays = delays[:0] // discard idle-poll sleeps from the healthy phase
	mu.Unlock()

	// A poll that succeeded just before the close may still record its
	// idle sleep after the truncation above; only backoff sleeps (anything
	// other than the poll interval) belong to the retry schedule.
	retries := func() []time.Duration {
		mu.Lock()
		defer mu.Unlock()
		out := make([]time.Duration, 0, len(delays))
		for _, d := range delays {
			if d != opts.PollInterval {
				out = append(out, d)
			}
		}
		return out
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(retries()) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d retry sleeps recorded", len(retries()))
		}
		time.Sleep(time.Millisecond)
	}
	got := retries()[:4]
	want := []time.Duration{4, 8, 16, 20} // ms: doubling from Backoff, capped at MaxBackoff
	for i, d := range got {
		if d != want[i]*time.Millisecond {
			t.Fatalf("backoff schedule = %v, want %v ms", got, want)
		}
	}
	if st := f.Status(); st.LastError == "" || st.LastAppliedSeq != 2 {
		t.Fatalf("status after primary loss = %+v", st)
	}
	// Stale but consistent: the replica still answers, byte-identically to
	// what it served before the primary vanished.
	if after := probe(t, fts.URL, "mas"); !bytes.Equal(before, after) {
		t.Fatal("replica answers changed while the primary was unreachable")
	}
}

// TestFollowerGapReBootstraps is fault injection (b): compaction on the
// primary passes the follower's position; the tail poll is refused with
// the typed 410 and the follower recovers through a fresh snapshot
// bootstrap, converging to byte-identical answers.
func TestFollowerGapReBootstraps(t *testing.T) {
	ds := datasets.MAS()
	tn := primaryTenant(t, ds, t.TempDir(), t.TempDir())
	pts := tenantServer(t, tn)
	appendBatch(t, pts.URL, ds.Name, masAppends[0])
	appendBatch(t, pts.URL, ds.Name, masAppends[1])

	// Bootstrap at seq 2 but do NOT start the loop yet: the follower must
	// fall behind a whole compaction first.
	rc, err := repl.NewClient(pts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	live, seq, err := repl.Bootstrap(context.Background(), rc, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("bootstrap seq = %d", seq)
	}

	// The direct tail at a compacted-away position is the typed gap.
	appendBatch(t, pts.URL, ds.Name, masAppends[2])
	if _, err := tn.WAL.StartCompaction(); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFileAt(tn.StorePath, tn.Name, tn.Sys.Live().CurrentSnapshot(), tn.WAL.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if err := tn.WAL.FinishCompaction(); err != nil {
		t.Fatal(err)
	}
	appendBatch(t, pts.URL, ds.Name, masAppends[3])
	if _, err := rc.Tail(context.Background(), "mas", 1); !errors.Is(err, wal.ErrGap) {
		t.Fatalf("tail into compacted range: %v, want wal.ErrGap", err)
	}

	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
	f := repl.NewFollower(rc, ds.Name, live, seq, fastOpts())
	tnF := &serve.Tenant{Name: ds.Name, Sys: sys, Source: "replica", Follower: f, Primary: pts.URL}
	fts := tenantServer(t, tnF)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })

	waitApplied(t, f, 4)
	if st := f.Status(); st.Bootstraps != 2 {
		t.Fatalf("bootstraps = %d, want 2 (initial + gap recovery)", st.Bootstraps)
	}
	if want, got := probe(t, pts.URL, "mas"), probe(t, fts.URL, "mas"); !bytes.Equal(want, got) {
		t.Fatal("post-re-bootstrap answers diverge from primary")
	}
}

// corruptingProxy forwards requests to the primary verbatim, except that
// it flips one byte in the first `budget` non-empty /wal stream bodies.
type corruptingProxy struct {
	target string
	budget atomic.Int64
	hits   atomic.Int64
}

func (p *corruptingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get(p.target + r.URL.RequestURI())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if strings.Contains(r.URL.Path, "/wal") && len(body) > 8 && p.budget.Load() > 0 && p.budget.Add(-1) >= 0 {
		body[len(body)/2] ^= 0x40 // one flipped bit mid-stream
		p.hits.Add(1)
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Del("Content-Length")
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// TestFollowerRejectsBitFlippedStream is fault injection (c): a damaged
// record on the wire is rejected whole by the CRC — nothing from the
// batch is applied — and the re-fetch converges once the wire heals,
// byte-identically to the primary.
func TestFollowerRejectsBitFlippedStream(t *testing.T) {
	ds := datasets.MAS()
	tn := primaryTenant(t, ds, t.TempDir(), t.TempDir())
	pts := tenantServer(t, tn)
	appendBatch(t, pts.URL, ds.Name, masAppends[0])
	appendBatch(t, pts.URL, ds.Name, masAppends[1])

	proxy := &corruptingProxy{target: pts.URL}
	proxyTS := httptest.NewServer(proxy)
	t.Cleanup(proxyTS.Close)

	f, fts := startFollower(t, ds, pts.URL, fastOpts())
	waitApplied(t, f, 2)

	// Re-point impossible (client is fixed at construction), so build a
	// second follower that tails through the corrupting wire instead.
	proxy.budget.Store(3)
	f2, fts2 := startFollower(t, ds, proxyTS.URL, fastOpts())
	appendBatch(t, pts.URL, ds.Name, masAppends[2])
	appendBatch(t, pts.URL, ds.Name, masAppends[3])

	// Every corrupted batch must be rejected before anything is applied.
	deadline := time.Now().Add(15 * time.Second)
	for proxy.hits.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("corrupting proxy used %d of 3 budget", proxy.hits.Load())
		}
		if f2.AppliedSeq() != 2 {
			t.Fatalf("follower applied seq %d while the wire was corrupt", f2.AppliedSeq())
		}
		time.Sleep(time.Millisecond)
	}
	waitApplied(t, f2, 4)
	if st := f2.Status(); st.RejectedBatches < 3 {
		t.Fatalf("rejected batches = %d, want >= 3", st.RejectedBatches)
	}
	want := probe(t, pts.URL, "mas")
	for _, base := range []string{fts.URL, fts2.URL} {
		waitApplied(t, f, 4)
		if got := probe(t, base, "mas"); !bytes.Equal(want, got) {
			t.Fatalf("follower %s diverged after wire corruption", base)
		}
	}
}
