package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"templar/internal/store"
	"templar/internal/wal"
	"templar/pkg/api"
)

// Client fetches the replication stream from a primary. It speaks the two
// repl endpoints only; regular query traffic goes through pkg/client.
type Client struct {
	base  string
	httpc *http.Client
}

// NewClient targets a primary's base URL ("http://host:port"). A nil
// httpc uses http.DefaultClient.
func NewClient(base string, httpc *http.Client) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("repl: invalid primary URL %q", base)
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), httpc: httpc}, nil
}

// Base returns the primary base URL the client targets.
func (c *Client) Base() string { return c.base }

// TailBatch is one validated tail response: records from+1…from+n in
// order, plus the primary's last assigned sequence at response time.
type TailBatch struct {
	Records    []*wal.Record
	PrimarySeq uint64
}

// Tail fetches the records after sequence `from`. The whole batch is
// validated — framing, per-record CRC, sequence continuity from `from`+1 —
// before it is returned, so a caller either gets a batch it can apply
// atomically or a typed error and no records at all: wal.ErrGap when the
// range was compacted away on the primary (re-bootstrap), wal.ErrAhead
// when `from` is past the primary's log (diverged lineage, also a
// re-bootstrap), wal.ErrChecksum/ErrCorrupt/ErrTruncated when the stream
// arrived damaged (re-fetch).
func (c *Client) Tail(ctx context.Context, dataset string, from uint64) (*TailBatch, error) {
	target := fmt.Sprintf("%s/v2/%s/wal?from=%d", c.base, url.PathEscape(dataset), from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, tailError(resp)
	}
	batch := &TailBatch{}
	if v := resp.Header.Get(HeaderLastSeq); v != "" {
		seq, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("repl: bad %s header %q", HeaderLastSeq, v)
		}
		batch.PrimarySeq = seq
	}
	rr := wal.NewRecordReader(resp.Body)
	want := from + 1
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Seq != want {
			return nil, fmt.Errorf("%w: stream sequence %d, want %d", wal.ErrCorrupt, rec.Seq, want)
		}
		want++
		batch.Records = append(batch.Records, rec)
	}
	if n := len(batch.Records); n > 0 && batch.PrimarySeq < from+uint64(n) {
		// The header is advisory for lag; never let it claim less than what
		// was just shipped.
		batch.PrimarySeq = from + uint64(n)
	}
	return batch, nil
}

// Snapshot fetches the primary's current packed snapshot archive: the
// bootstrap watermark (Archive.WalSeq) plus the engine state covering
// exactly the records up to it.
func (c *Client) Snapshot(ctx context.Context, dataset string) (*store.Archive, error) {
	target := fmt.Sprintf("%s/v2/%s/snapshot", c.base, url.PathEscape(dataset))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: snapshot %s: %w", dataset, problemError(resp))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	ar, err := store.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("repl: snapshot %s: %w", dataset, err)
	}
	if !strings.EqualFold(ar.Dataset, dataset) {
		return nil, fmt.Errorf("repl: snapshot for dataset %q, want %q", ar.Dataset, dataset)
	}
	return ar, nil
}

// tailError maps a tail refusal onto the stream's typed sentinels.
func tailError(resp *http.Response) error {
	perr := problemError(resp)
	var apiErr *api.Error
	if errors.As(perr, &apiErr) {
		switch apiErr.Code {
		case api.CodeWALGap:
			return fmt.Errorf("%w: %s", wal.ErrGap, apiErr.Detail)
		case api.CodeConflict:
			return fmt.Errorf("%w: %s", wal.ErrAhead, apiErr.Detail)
		}
	}
	return fmt.Errorf("repl: tail: %w", perr)
}

// problemError decodes an RFC-7807 body into *api.Error, falling back to
// a plain status error for foreign responses.
func problemError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	apiErr := &api.Error{}
	if err := json.Unmarshal(body, apiErr); err == nil && apiErr.Code != "" {
		if apiErr.Status == 0 {
			apiErr.Status = resp.StatusCode
		}
		return apiErr
	}
	return fmt.Errorf("HTTP %d: %.200s", resp.StatusCode, body)
}
