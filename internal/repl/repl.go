// Package repl turns the per-tenant write-ahead log into a replication
// stream. A primary serves its segment records verbatim over
// GET /v2/{dataset}/wal?from=seq — the on-disk framing is the wire framing,
// so the stream inherits the WAL codec's typed corruption errors — and
// GET /v2/{dataset}/snapshot hands out a packed .qfg archive stamped with
// the WAL sequence it covers (the bootstrap watermark). A Follower
// bootstraps an engine from that archive, tails the stream, and folds each
// validated batch through qfg.Live.Replay, which keeps the replica's
// snapshot byte-identical to a primary that applied the same records.
//
// The consistency model is sequence-anchored: a follower whose applied
// sequence is N serves exactly the state the primary served at its
// sequence N. Replicas are read-only for client traffic (appends are
// redirected to the primary by the serving layer), so the only writer of
// the stream is the primary's append path and convergence needs no
// conflict resolution — only continuity, which the follower enforces on
// every batch before applying any of it.
package repl

import (
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/internal/wal"
)

// Wire constants of the replication stream.
const (
	// TailContentType is the media type of a tail response body: framed WAL
	// records exactly as they sit in the segment.
	TailContentType = "application/x-templar-wal"
	// SnapshotContentType is the media type of a bootstrap snapshot
	// response body: a packed .qfg archive (store codec).
	SnapshotContentType = "application/x-templar-qfg"
	// HeaderLastSeq carries the primary's last assigned WAL sequence on
	// every tail response, so a follower can report lag even when the
	// batch itself is empty.
	HeaderLastSeq = "X-Templar-WAL-Last-Seq"
)

// ToReplayOp converts a durably logged record back into the engine
// operation it acknowledged. Records were parsed, resolved and normalized
// before they were written, so failure here means the record (not the
// original request) is damaged. Boot-time WAL recovery and follower tail
// application share this exact conversion — that identity is what makes a
// replica's engine byte-identical to a recovered primary's.
func ToReplayOp(r *wal.Record) (qfg.ReplayOp, error) {
	op := qfg.ReplayOp{Session: r.Session, Count: r.Count, Decay: r.Decay}
	op.Queries = make([]*sqlparse.Query, len(r.Entries))
	if !r.Session {
		op.Counts = make([]int, len(r.Entries))
	}
	for i, e := range r.Entries {
		q, err := sqlparse.Parse(e.SQL)
		if err == nil {
			err = q.Resolve(nil)
		}
		if err != nil {
			return qfg.ReplayOp{}, err
		}
		op.Queries[i] = q
		if !r.Session {
			op.Counts[i] = e.Count
		}
	}
	return op, nil
}
