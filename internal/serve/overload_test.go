package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/keyword"
	"templar/pkg/api"
)

// overloadServer boots a live-log MAS server with the given admission
// bound, returning the server (for direct admission-state manipulation)
// and its test listener.
func overloadServer(t testing.TB, maxInFlight int) (*Server, *httptest.Server) {
	t.Helper()
	ds := datasets.MAS()
	srv := NewServer(buildLiveSystem(t, ds, keyword.Options{}), ds.Name, 4).WithAdmission(maxInFlight)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// mapBody is a minimal valid map-keywords request against MAS.
func mapBody() api.MapKeywordsRequest {
	return api.MapKeywordsRequest{KeywordsInput: api.KeywordsInput{Spec: "papers:select"}}
}

// wantRetryAfter asserts the header is a positive integer second count.
func wantRetryAfter(t testing.TB, hdr http.Header) int {
	t.Helper()
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	return secs
}

// TestAdmissionShedsByCostClass pins the shed ordering: with the gauge
// held at fractions of the bound, translate sheds at 1/2, log at 3/4,
// map-keywords only at the full bound — and the exempt endpoints never.
// The gauge is occupied directly (not with slow requests) so the
// thresholds are tested exactly, without timing.
func TestAdmissionShedsByCostClass(t *testing.T) {
	srv, ts := overloadServer(t, 8)
	occupy := func(n int64) { srv.adm.inFlight.Store(n) }
	defer occupy(0)

	assertShed := func(path string, body any, wantCode string) {
		t.Helper()
		status, hdr, raw := postRaw(t, ts.URL+path, body)
		e := wantProblem(t, status, hdr, raw, http.StatusTooManyRequests, wantCode)
		wantRetryAfter(t, hdr)
		if e.Title == "" {
			t.Fatalf("shed problem without title: %+v", e)
		}
	}
	assertAdmitted := func(path string, body any) {
		t.Helper()
		status, _, raw := postRaw(t, ts.URL+path, body)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			t.Fatalf("POST %s shed (%d): %s", path, status, raw)
		}
	}

	// Below every threshold: everything is admitted.
	occupy(3)
	assertAdmitted("/v2/mas/translate", api.TranslateRequest{Queries: []api.KeywordsInput{{Spec: "papers:select"}}})
	assertAdmitted("/v2/mas/log", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT title FROM papers"}}})
	assertAdmitted("/v2/mas/map-keywords", mapBody())

	// At half the bound the expensive class sheds; everything else holds.
	occupy(4)
	assertShed("/v2/mas/translate", api.TranslateRequest{}, api.CodeOverloaded)
	assertAdmitted("/v2/mas/log", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT title FROM papers"}}})
	assertAdmitted("/v2/mas/map-keywords", mapBody())

	// At three quarters, log appends shed too.
	occupy(6)
	assertShed("/v2/mas/log", api.LogAppendRequest{}, api.CodeOverloaded)
	assertAdmitted("/v2/mas/map-keywords", mapBody())
	assertAdmitted("/v2/mas/infer-joins", api.InferJoinsRequest{Relations: []string{"papers"}})

	// At the full bound everything non-exempt sheds — but health, dataset
	// discovery and the admin API keep answering.
	occupy(8)
	assertShed("/v2/mas/map-keywords", mapBody(), api.CodeOverloaded)
	assertShed("/v2/mas/infer-joins", api.InferJoinsRequest{}, api.CodeOverloaded)
	var h api.HealthResponse
	if s := getJSON(t, ts.URL+"/healthz", &h); s != http.StatusOK {
		t.Fatalf("healthz shed at full bound: %d", s)
	}
	if h.Overload == nil || h.Overload.MaxInFlight != 8 || h.Overload.InFlight != 8 {
		t.Fatalf("overload snapshot = %+v", h.Overload)
	}
	if h.Overload.ShedTranslate < 1 || h.Overload.ShedLog < 1 || h.Overload.ShedQuery < 2 {
		t.Fatalf("shed counters not recorded: %+v", h.Overload)
	}
	var list api.DatasetsResponse
	if s := getJSON(t, ts.URL+"/v2/datasets", &list); s != http.StatusOK {
		t.Fatalf("/v2/datasets shed at full bound: %d", s)
	}
	if s := getJSON(t, ts.URL+"/admin/datasets", &list); s != http.StatusOK {
		t.Fatalf("/admin/datasets shed at full bound: %d", s)
	}

	// Releasing the pressure re-admits everything.
	occupy(0)
	assertAdmitted("/v2/mas/translate", api.TranslateRequest{Queries: []api.KeywordsInput{{Spec: "papers:select"}}})
}

// TestAdmissionShedSpeaksV1 pins the error dialect: a shed v1 request
// gets the frozen legacy envelope, not a problem document — old clients
// must be able to parse their own rejections.
func TestAdmissionShedSpeaksV1(t *testing.T) {
	srv, ts := overloadServer(t, 2)
	srv.adm.inFlight.Store(2)
	defer srv.adm.inFlight.Store(0)

	status, hdr, raw := postRaw(t, ts.URL+"/v1/mas/map-keywords", mapBody())
	if status != http.StatusTooManyRequests {
		t.Fatalf("v1 shed status = %d, want 429 (body %s)", status, raw)
	}
	wantRetryAfter(t, hdr)
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == "" {
		t.Fatalf("v1 shed body %q is not the legacy envelope (err %v)", raw, err)
	}
	if bytes.Contains(raw, []byte(`"type"`)) {
		t.Fatalf("v1 shed body leaked problem+json fields: %s", raw)
	}
}

// TestAdmissionGaugeReturnsToZero asserts release accounting: after a
// burst of admitted requests completes, the in-flight gauge is exactly
// zero (a leak here would ratchet the server into permanent shedding).
func TestAdmissionGaugeReturnsToZero(t *testing.T) {
	srv, ts := overloadServer(t, 64)
	for i := 0; i < 8; i++ {
		postRaw(t, ts.URL+"/v2/mas/map-keywords", mapBody())
		getJSON(t, ts.URL+"/healthz", &api.HealthResponse{})
	}
	if got := srv.adm.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge = %d after all requests completed, want 0", got)
	}
	if got := srv.adm.admitted.Load(); got != 8 {
		t.Fatalf("admitted = %d, want 8 (health probes are exempt)", got)
	}
}

// TestTenantRateLimit drives the token bucket on a fake clock: with 1
// req/s and burst 2, the first two requests pass, the third sheds with
// rate_limited and a computed Retry-After, and one advanced second buys
// exactly one more admission.
func TestTenantRateLimit(t *testing.T) {
	srv, ts := overloadServer(t, 0)
	tn := srv.Registry().Get("mas")
	var clk atomic.Int64
	clk.Store(1_000_000)
	tn.load.now = func() time.Time { return time.Unix(clk.Load(), 0) }
	tn.SetLimits(TenantLimits{PerSecond: 1, Burst: 2})

	admit := func(want bool) *http.Header {
		t.Helper()
		status, hdr, raw := postRaw(t, ts.URL+"/v2/mas/map-keywords", mapBody())
		if want && status == http.StatusTooManyRequests {
			t.Fatalf("unexpected shed: %s", raw)
		}
		if !want {
			wantProblem(t, status, hdr, raw, http.StatusTooManyRequests, api.CodeRateLimited)
		}
		return &hdr
	}

	admit(true)
	admit(true)
	hdr := admit(false)
	if secs := wantRetryAfter(t, *hdr); secs != 1 {
		t.Fatalf("Retry-After = %d, want 1 (1 token at 1/s)", secs)
	}
	clk.Add(1)
	admit(true)
	admit(false)

	// Clearing the override lifts the limit entirely.
	tn.SetLimits(TenantLimits{})
	admit(true)

	// Shed counters surface on the tenant's status listing.
	var h api.HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	for _, ds := range h.Datasets {
		if ds.Name == "mas" {
			if ds.Load == nil || ds.Load.ShedRate != 2 {
				t.Fatalf("tenant load = %+v, want shed_rate 2", ds.Load)
			}
		}
	}
}

// TestTenantInFlightQuota pins the per-tenant concurrency cap and that a
// tenant override beats the server-wide default.
func TestTenantInFlightQuota(t *testing.T) {
	srv, ts := overloadServer(t, 0)
	srv.WithTenantDefaults(TenantLimits{MaxInFlight: 1})
	tn := srv.Registry().Get("mas")

	// Default applies: with the tenant's single slot occupied, shed.
	tn.load.inFlight.Add(1)
	status, hdr, raw := postRaw(t, ts.URL+"/v2/mas/map-keywords", mapBody())
	e := wantProblem(t, status, hdr, raw, http.StatusTooManyRequests, api.CodeRateLimited)
	if e.Dataset != tn.Name {
		t.Fatalf("shed problem names dataset %q, want %q", e.Dataset, tn.Name)
	}
	wantRetryAfter(t, hdr)

	// An explicit override wins over the default.
	tn.SetLimits(TenantLimits{MaxInFlight: 2})
	if s, _, raw := postRaw(t, ts.URL+"/v2/mas/map-keywords", mapBody()); s == http.StatusTooManyRequests {
		t.Fatalf("override ignored: %s", raw)
	}
	tn.load.inFlight.Add(-1)

	if got := tn.load.inFlight.Load(); got != 0 {
		t.Fatalf("tenant in-flight gauge = %d, want 0", got)
	}
	if tn.load.shedInFl.Load() != 1 {
		t.Fatalf("shed_in_flight = %d, want 1", tn.load.shedInFl.Load())
	}
}

// TestAdminLimitsEndpoint covers the runtime limit API: set, observe on
// the listings, validate, clear.
func TestAdminLimitsEndpoint(t *testing.T) {
	_, ts := overloadServer(t, 0)
	put := func(path string, body any) (int, []byte) {
		t.Helper()
		buf, _ := json.Marshal(body)
		req, err := http.NewRequest(http.MethodPut, ts.URL+path, bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		return resp.StatusCode, out.Bytes()
	}

	// Set limits and read them back off the response and both listings.
	status, raw := put("/admin/datasets/mas/limits", api.TenantLimits{PerSecond: 5, Burst: 10, MaxInFlight: 3})
	if status != http.StatusOK {
		t.Fatalf("put limits: %d %s", status, raw)
	}
	var ds api.DatasetStatus
	if err := json.Unmarshal(raw, &ds); err != nil {
		t.Fatal(err)
	}
	if ds.Load == nil || ds.Load.Limits == nil || ds.Load.Limits.PerSecond != 5 ||
		ds.Load.Limits.Burst != 10 || ds.Load.Limits.MaxInFlight != 3 {
		t.Fatalf("limits not echoed: %+v", ds.Load)
	}
	var list api.DatasetsResponse
	getJSON(t, ts.URL+"/admin/datasets", &list)
	if len(list.Datasets) != 1 || list.Datasets[0].Load == nil || list.Datasets[0].Load.Limits == nil ||
		list.Datasets[0].Load.Limits.PerSecond != 5 {
		t.Fatalf("admin listing missing limits: %+v", list.Datasets)
	}

	// Validation: unknown dataset, negative values, unrefillable burst.
	if s, _ := put("/admin/datasets/nope/limits", api.TenantLimits{PerSecond: 1}); s != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d", s)
	}
	if s, _ := put("/admin/datasets/mas/limits", api.TenantLimits{PerSecond: -1}); s != http.StatusUnprocessableEntity {
		t.Fatalf("negative rate accepted: %d", s)
	}
	if s, _ := put("/admin/datasets/mas/limits", api.TenantLimits{Burst: 4}); s != http.StatusUnprocessableEntity {
		t.Fatalf("burst without rate accepted: %d", s)
	}

	// The zero body clears the override.
	if s, raw := put("/admin/datasets/mas/limits", api.TenantLimits{}); s != http.StatusOK {
		t.Fatalf("clear limits: %d %s", s, raw)
	}
	var after api.DatasetsResponse
	getJSON(t, ts.URL+"/admin/datasets", &after)
	if after.Datasets[0].Load != nil && after.Datasets[0].Load.Limits != nil {
		t.Fatalf("limits survived the clear: %+v", after.Datasets[0].Load)
	}
}

// TestDrainRefusesNewWork pins the drain protocol at the serve layer:
// after BeginDrain, /healthz answers 503 "draining" with the full body,
// new work is refused with 503 draining + Retry-After in both dialects,
// and DrainWait blocks exactly until the admitted work finishes.
func TestDrainRefusesNewWork(t *testing.T) {
	srv, ts := overloadServer(t, 16)

	// Simulate one admitted in-flight request, then start draining.
	srv.adm.inFlight.Add(1)
	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz while draining: %d %q", resp.StatusCode, h.Status)
	}
	if h.Overload == nil || !h.Overload.Draining || h.Overload.InFlight != 1 {
		t.Fatalf("overload while draining: %+v", h.Overload)
	}

	status, hdr, raw := postRaw(t, ts.URL+"/v2/mas/map-keywords", mapBody())
	wantProblem(t, status, hdr, raw, http.StatusServiceUnavailable, api.CodeDraining)
	wantRetryAfter(t, hdr)
	if status, _, raw := postRaw(t, ts.URL+"/v1/mas/map-keywords", mapBody()); status != http.StatusServiceUnavailable {
		t.Fatalf("v1 drain refusal = %d: %s", status, raw)
	}
	if srv.adm.shedDraining.Load() != 2 {
		t.Fatalf("shed_draining = %d, want 2", srv.adm.shedDraining.Load())
	}

	// DrainWait times out while work is in flight, returns once it ends.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.DrainWait(ctx); err == nil {
		t.Fatal("DrainWait returned with a request still in flight")
	}
	srv.adm.inFlight.Add(-1)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := srv.DrainWait(ctx2); err != nil {
		t.Fatalf("DrainWait after release: %v", err)
	}
}
