package serve

// Durability-layer tests: AttachWAL recovery semantics, the WAL-first
// append path over HTTP, compaction (forced, threshold and interrupted),
// and the WAL stats surfaced on /healthz and the admin API. The
// whole-stack kill-and-recover soak lives in internal/workload.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/internal/wal"
	"templar/pkg/api"
)

// durableTenant assembles a WAL-armed tenant the way templar-serve does:
// pack (or reuse) the dataset's snapshot in storeDir, load the engine from
// it, then attach the write-ahead log under walDir, replaying any tail.
func durableTenant(t testing.TB, ds *datasets.Dataset, storeDir, walDir string) (*Tenant, *wal.Recovery) {
	t.Helper()
	path := filepath.Join(storeDir, store.Filename(ds.Name))
	if _, err := os.Stat(path); err != nil {
		if err := store.WriteFile(path, ds.Name, buildGraph(t, ds).Snapshot(nil)); err != nil {
			t.Fatal(err)
		}
	}
	ar, err := store.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	live := qfg.NewLiveFromSnapshot(ar.Snapshot)
	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
	tn := &Tenant{Name: ds.Name, Sys: sys, Source: "store", StorePath: path, SnapshotSeq: ar.WalSeq}
	rec, err := AttachWAL(tn, walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tn.WAL.Close() })
	return tn, rec
}

// durableServer wires one durable tenant into a registry server.
func durableServer(t testing.TB, tn *Tenant) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add(tn); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, tn.Name, 2, nil).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

// appendBatch posts one batch append and returns the acknowledged response.
func appendBatch(t testing.TB, ts *httptest.Server, dataset string, req api.LogAppendRequest) api.LogAppendResponse {
	t.Helper()
	var resp api.LogAppendResponse
	if s := postJSON(t, ts.URL+"/v2/"+dataset+"/log", req, &resp); s != http.StatusOK {
		t.Fatalf("append status = %d", s)
	}
	return resp
}

// TestDurableAppendRecoverParity drives acknowledged appends (batch and
// session) through the HTTP stack, then boots a second tenant from the
// same disk state — exactly what a post-crash restart does — and asserts
// the recovered engine reports the same log shape and answers a probe
// byte-identically to the engine that never "crashed". The first tenant's
// WAL is deliberately not closed first: with per-append fsync, everything
// acknowledged is already on disk.
func TestDurableAppendRecoverParity(t *testing.T) {
	ds := datasets.MAS()
	storeDir, walDir := t.TempDir(), t.TempDir()
	tn, rec := durableTenant(t, ds, storeDir, walDir)
	if len(rec.Records) != 0 || tn.WAL.LastSeq() != 0 {
		t.Fatalf("fresh WAL not empty: %d records, seq %d", len(rec.Records), tn.WAL.LastSeq())
	}
	ts, _ := durableServer(t, tn)

	r1 := appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT j.name FROM journal j", Count: 3},
		{SQL: "SELECT p.title FROM publication p"},
	}})
	if r1.WALSeq != 1 {
		t.Fatalf("first ack wal_seq = %d, want 1", r1.WALSeq)
	}
	r2 := appendBatch(t, ts, "mas", api.LogAppendRequest{
		Session: true,
		Decay:   0.7,
		Queries: []api.LogEntry{
			{SQL: "SELECT a.name FROM author a"},
			{SQL: "SELECT p.title FROM publication p"},
		},
	})
	if r2.WALSeq != 2 {
		t.Fatalf("second ack wal_seq = %d, want 2", r2.WALSeq)
	}

	probe := api.TranslateRequest{Queries: []api.KeywordsInput{{Spec: "papers:select;Databases:where"}}}
	var want api.TranslateResponse
	if s := postJSON(t, ts.URL+"/v2/mas/translate", probe, &want); s != http.StatusOK {
		t.Fatalf("probe status = %d", s)
	}

	// "Restart": a fresh tenant over the same store + WAL directories.
	tn2, rec2 := durableTenant(t, ds, storeDir, walDir)
	if len(rec2.Records) != 2 || tn2.WAL.LastSeq() != 2 {
		t.Fatalf("recovery scanned %d records to seq %d, want 2 to 2", len(rec2.Records), tn2.WAL.LastSeq())
	}
	ts2, _ := durableServer(t, tn2)
	snap1 := tn.Sys.Live().CurrentSnapshot()
	snap2 := tn2.Sys.Live().CurrentSnapshot()
	if snap1.Queries() != snap2.Queries() || snap1.Vertices() != snap2.Vertices() || snap1.Edges() != snap2.Edges() {
		t.Fatalf("recovered shape (%d,%d,%d) != live shape (%d,%d,%d)",
			snap2.Queries(), snap2.Vertices(), snap2.Edges(),
			snap1.Queries(), snap1.Vertices(), snap1.Edges())
	}
	var got api.TranslateResponse
	if s := postJSON(t, ts2.URL+"/v2/mas/translate", probe, &got); s != http.StatusOK {
		t.Fatalf("recovered probe status = %d", s)
	}
	assertSameJSON(t, want, got)

	// The recovered log keeps accepting appends where the acks left off.
	r3 := appendBatch(t, ts2, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT j.name FROM journal j"},
	}})
	if r3.WALSeq != 3 {
		t.Fatalf("post-recovery ack wal_seq = %d, want 3", r3.WALSeq)
	}
}

// assertSameJSON compares two values by their marshaled form, which is the
// wire-level equality clients observe.
func assertSameJSON(t testing.TB, want, got any) {
	t.Helper()
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(w) != string(g) {
		t.Fatalf("wire responses differ:\nwant %s\ngot  %s", w, g)
	}
}

// TestAttachWALRejectsIrreconcilableLogs covers the fail-loud boot paths:
// a frozen engine, a second attach, a log that ends behind the snapshot
// (stale/restored), and a log whose records resume past the snapshot (a
// gap). Each must refuse to serve rather than corrupt silently.
func TestAttachWALRejectsIrreconcilableLogs(t *testing.T) {
	ds := datasets.MAS()

	t.Run("frozen engine", func(t *testing.T) {
		tn := &Tenant{Name: ds.Name, Sys: buildSystem(t, ds, keyword.Options{})}
		if _, err := AttachWAL(tn, t.TempDir(), wal.Options{}); err == nil || !strings.Contains(err.Error(), "frozen") {
			t.Fatalf("err = %v, want frozen-engine refusal", err)
		}
	})

	t.Run("double attach", func(t *testing.T) {
		tn, _ := durableTenant(t, ds, t.TempDir(), t.TempDir())
		if _, err := AttachWAL(tn, t.TempDir(), wal.Options{}); err == nil || !strings.Contains(err.Error(), "already") {
			t.Fatalf("err = %v, want double-attach refusal", err)
		}
	})

	// seedWAL writes a log under dir whose records span (base, base+n].
	seedWAL := func(t *testing.T, dir string, base uint64, n int) {
		t.Helper()
		l, _, err := wal.Open(dir, ds.Name, wal.Options{CreateBase: base})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := l.Append(&wal.Record{Entries: []wal.Entry{{SQL: "SELECT j.name FROM journal j", Count: 1}}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	liveTenant := func(t *testing.T, snapshotSeq uint64) *Tenant {
		t.Helper()
		return &Tenant{
			Name:        ds.Name,
			Sys:         buildLiveSystem(t, ds, keyword.Options{}),
			SnapshotSeq: snapshotSeq,
		}
	}

	t.Run("stale log", func(t *testing.T) {
		dir := t.TempDir()
		seedWAL(t, dir, 0, 2)  // log ends at seq 2
		tn := liveTenant(t, 5) // snapshot already covers 5
		if _, err := AttachWAL(tn, dir, wal.Options{}); err == nil || !strings.Contains(err.Error(), "stale") {
			t.Fatalf("err = %v, want stale-log refusal", err)
		}
	})

	t.Run("gap between snapshot and log", func(t *testing.T) {
		dir := t.TempDir()
		seedWAL(t, dir, 6, 1) // records resume at seq 7
		tn := liveTenant(t, 3)
		if _, err := AttachWAL(tn, dir, wal.Options{}); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Fatalf("err = %v, want gap refusal", err)
		}
	})

	t.Run("empty log past snapshot", func(t *testing.T) {
		dir := t.TempDir()
		seedWAL(t, dir, 6, 0) // no records, but the segment claims seq 6
		tn := liveTenant(t, 3)
		if _, err := AttachWAL(tn, dir, wal.Options{}); err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("err = %v, want mismatch refusal", err)
		}
	})
}

// TestCompactTenant exercises the compactor against a served tenant: a
// forced compaction folds the WAL into the snapshot (the archive's WalSeq
// advances, the live segment resets), appends keep flowing afterwards with
// continuous sequence numbers, and a tenant booted from the compacted
// state matches the original.
func TestCompactTenant(t *testing.T) {
	ds := datasets.MAS()
	storeDir, walDir := t.TempDir(), t.TempDir()
	tn, _ := durableTenant(t, ds, storeDir, walDir)
	ts, reg := durableServer(t, tn)

	appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT j.name FROM journal j", Count: 2}}})
	appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT p.title FROM publication p"}}})

	c := NewCompactor(reg, 1<<30, time.Hour)
	// Under the byte threshold: a sweep must leave the tenant alone.
	if done, err := c.CompactTenant(tn, false); err != nil || done {
		t.Fatalf("under-threshold compaction: done=%v err=%v", done, err)
	}
	done, err := c.CompactTenant(tn, true)
	if err != nil || !done {
		t.Fatalf("forced compaction: done=%v err=%v", done, err)
	}
	ar, err := store.ReadFile(tn.StorePath)
	if err != nil {
		t.Fatal(err)
	}
	if ar.WalSeq != 2 {
		t.Fatalf("compacted archive WalSeq = %d, want 2", ar.WalSeq)
	}
	st := tn.WAL.Stats()
	if st.Records != 0 || st.Compactions != 1 || st.Seq != 2 {
		t.Fatalf("post-compaction stats = %+v", st)
	}

	// Appends continue on the fresh segment with the global sequence.
	r := appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT a.name FROM author a"}}})
	if r.WALSeq != 3 {
		t.Fatalf("post-compaction ack wal_seq = %d, want 3", r.WALSeq)
	}

	// A boot from the compacted store + short WAL matches the live engine.
	tn2, rec2 := durableTenant(t, ds, storeDir, walDir)
	if tn2.SnapshotSeq != 2 || len(rec2.Records) != 1 || tn2.WAL.LastSeq() != 3 {
		t.Fatalf("recovered snapshotSeq=%d records=%d lastSeq=%d, want 2/1/3",
			tn2.SnapshotSeq, len(rec2.Records), tn2.WAL.LastSeq())
	}
	s1, s2 := tn.Sys.Live().CurrentSnapshot(), tn2.Sys.Live().CurrentSnapshot()
	if s1.Queries() != s2.Queries() || s1.Vertices() != s2.Vertices() || s1.Edges() != s2.Edges() {
		t.Fatalf("recovered shape (%d,%d,%d) != live shape (%d,%d,%d)",
			s2.Queries(), s2.Vertices(), s2.Edges(), s1.Queries(), s1.Vertices(), s1.Edges())
	}
}

// TestCompactionInterruptedIsCompleted simulates a compaction dying right
// after the rotate (the snapshot write never happened) and asserts both
// recovery paths finish it: the next sweep's retry branch, and — in a
// separate run — the boot-time AttachWAL completion.
func TestCompactionInterruptedIsCompleted(t *testing.T) {
	ds := datasets.MAS()

	t.Run("next sweep completes it", func(t *testing.T) {
		storeDir, walDir := t.TempDir(), t.TempDir()
		tn, _ := durableTenant(t, ds, storeDir, walDir)
		ts, reg := durableServer(t, tn)
		appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT j.name FROM journal j"}}})

		// Rotate, then "die" before persisting the snapshot.
		if _, err := tn.WAL.StartCompaction(); err != nil {
			t.Fatal(err)
		}
		if !tn.WAL.CompactionPending() {
			t.Fatal("rotation left no pending compaction")
		}
		done, err := NewCompactor(reg, 1<<30, time.Hour).CompactTenant(tn, false)
		if err != nil || !done {
			t.Fatalf("retry sweep: done=%v err=%v", done, err)
		}
		if tn.WAL.CompactionPending() {
			t.Fatal("pending compaction survived the retry sweep")
		}
		ar, err := store.ReadFile(tn.StorePath)
		if err != nil {
			t.Fatal(err)
		}
		if ar.WalSeq != 1 {
			t.Fatalf("retry persisted WalSeq = %d, want 1", ar.WalSeq)
		}
	})

	t.Run("boot completes it", func(t *testing.T) {
		storeDir, walDir := t.TempDir(), t.TempDir()
		tn, _ := durableTenant(t, ds, storeDir, walDir)
		ts, _ := durableServer(t, tn)
		appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT j.name FROM journal j"}}})
		if _, err := tn.WAL.StartCompaction(); err != nil {
			t.Fatal(err)
		}

		tn2, rec2 := durableTenant(t, ds, storeDir, walDir)
		if !rec2.CompactionPending {
			t.Fatal("boot recovery did not notice the interrupted compaction")
		}
		if tn2.WAL.CompactionPending() {
			t.Fatal("boot left the compaction pending despite a StorePath")
		}
		ar, err := store.ReadFile(tn2.StorePath)
		if err != nil {
			t.Fatal(err)
		}
		if ar.WalSeq != 1 {
			t.Fatalf("boot persisted WalSeq = %d, want 1", ar.WalSeq)
		}
		oldSeg := filepath.Join(walDir, wal.Filename(ds.Name)+".old")
		if _, err := os.Stat(oldSeg); !os.IsNotExist(err) {
			t.Fatalf("rotated segment %s not released after boot completion (err=%v)", oldSeg, err)
		}
	})
}

// TestWALStatsOnWire asserts the operator surfaces: /healthz mirrors the
// default dataset's WAL stats and GET /admin/datasets carries them for
// every WAL-armed tenant, with the frozen fields the wire contract names.
func TestWALStatsOnWire(t *testing.T) {
	ds := datasets.MAS()
	tn, _ := durableTenant(t, ds, t.TempDir(), t.TempDir())
	ts, _ := durableServer(t, tn)
	appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{{SQL: "SELECT j.name FROM journal j"}}})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.HealthResponse
	decodeBody(t, resp, &h)
	if h.WAL == nil {
		t.Fatal("healthz missing wal stats for the durable default dataset")
	}
	if h.WAL.Seq != 1 || h.WAL.Records != 1 || h.WAL.SyncPolicy != "always" || h.WAL.Bytes == 0 {
		t.Fatalf("healthz wal = %+v", h.WAL)
	}
	if h.WAL.LastSyncUnixMS == 0 {
		t.Fatal("healthz wal missing last sync timestamp after a synced append")
	}

	resp, err = http.Get(ts.URL + "/admin/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var dsResp api.DatasetsResponse
	decodeBody(t, resp, &dsResp)
	if len(dsResp.Datasets) != 1 || dsResp.Datasets[0].WAL == nil {
		t.Fatalf("admin datasets missing wal stats: %+v", dsResp)
	}
	if got := dsResp.Datasets[0].WAL; got.Seq != 1 || got.SyncPolicy != "always" {
		t.Fatalf("admin wal = %+v", got)
	}
}

// TestDrainRacesCompaction simulates SIGTERM arriving while a compaction
// is mid-flight (rotated, snapshot not yet persisted — the PR-6 crash
// window) and pins both drain outcomes:
//
//   - the drain handoff (stop admitting → final sweep → WAL sync+close)
//     completes the pending compaction, so the next boot recovers a clean
//     log;
//   - the drain deadline kills the process before the final sweep — the
//     on-disk state is exactly the recoverable rotate window, and boot
//     finishes the compaction with every acked append intact.
//
// Either way, a SIGTERM racing the compactor must never invent a third,
// unrecoverable disk state.
func TestDrainRacesCompaction(t *testing.T) {
	ds := datasets.MAS()

	boot := func(t *testing.T) (*Server, *httptest.Server, *Tenant, string, string) {
		t.Helper()
		storeDir, walDir := t.TempDir(), t.TempDir()
		tn, _ := durableTenant(t, ds, storeDir, walDir)
		reg := NewRegistry()
		if err := reg.Add(tn); err != nil {
			t.Fatal(err)
		}
		srv := NewRegistryServer(reg, tn.Name, 2, nil).WithAdmission(16)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
			{SQL: "SELECT j.name FROM journal j", Count: 2},
		}})
		appendBatch(t, ts, "mas", api.LogAppendRequest{Queries: []api.LogEntry{
			{SQL: "SELECT p.title FROM publication p"},
		}})
		// The compaction has rotated but not yet captured the snapshot
		// when the SIGTERM lands.
		if _, err := tn.WAL.StartCompaction(); err != nil {
			t.Fatal(err)
		}
		srv.BeginDrain()
		// Draining refuses new appends — nothing can be acked that the
		// handoff (or the next boot) would then have to preserve.
		status, hdr, raw := postRaw(t, ts.URL+"/v2/mas/log", api.LogAppendRequest{
			Queries: []api.LogEntry{{SQL: "SELECT a.name FROM author a"}},
		})
		wantProblem(t, status, hdr, raw, http.StatusServiceUnavailable, api.CodeDraining)
		return srv, ts, tn, storeDir, walDir
	}

	assertRecovered := func(t *testing.T, tn *Tenant, storeDir, walDir string) {
		t.Helper()
		tn2, _ := durableTenant(t, ds, storeDir, walDir)
		if tn2.WAL.CompactionPending() {
			t.Fatal("pending compaction survived recovery")
		}
		s1, s2 := tn.Sys.Live().CurrentSnapshot(), tn2.Sys.Live().CurrentSnapshot()
		if s1.Queries() != s2.Queries() || s1.Vertices() != s2.Vertices() || s1.Edges() != s2.Edges() {
			t.Fatalf("recovered shape (%d,%d,%d) != drained shape (%d,%d,%d)",
				s2.Queries(), s2.Vertices(), s2.Edges(), s1.Queries(), s1.Vertices(), s1.Edges())
		}
		ar, err := store.ReadFile(tn2.StorePath)
		if err != nil {
			t.Fatal(err)
		}
		if ar.WalSeq != 2 {
			t.Fatalf("compacted archive WalSeq = %d, want 2 (both acked appends)", ar.WalSeq)
		}
	}

	t.Run("handoff completes it", func(t *testing.T) {
		srv, _, tn, storeDir, walDir := boot(t)
		// The templar-serve drain sequence after the listener stops.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.DrainWait(ctx); err != nil {
			t.Fatalf("drain wait: %v", err)
		}
		NewCompactor(srv.Registry(), 1<<30, time.Hour).Sweep()
		if tn.WAL.CompactionPending() {
			t.Fatal("final sweep left the compaction pending")
		}
		if err := tn.WAL.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := tn.WAL.Close(); err != nil {
			t.Fatal(err)
		}
		assertRecovered(t, tn, storeDir, walDir)
	})

	t.Run("deadline kills it mid-window", func(t *testing.T) {
		_, _, tn, storeDir, walDir := boot(t)
		// No final sweep, no close: the process died with the rotate
		// window open. Boot must notice and complete the compaction.
		if !tn.WAL.CompactionPending() {
			t.Fatal("test setup: compaction window not open")
		}
		assertRecovered(t, tn, storeDir, walDir)
	})
}

// decodeBody decodes an HTTP response body into out.
func decodeBody(t testing.TB, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
