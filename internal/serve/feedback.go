package serve

// Feedback: the serving half of the learning loop (internal/feedback).
// The v2 translate handler records what it served into a per-tenant
// ledger; POST /v2/{dataset}/feedback turns a later verdict on that
// request ID into a WAL-first log append through the exact same
// coreLogAppend discipline explicit appends use, so feedback survives
// crashes and ships to followers unchanged. See docs/LEARNING.md.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"templar/internal/feedback"
	"templar/internal/sqlparse"
	"templar/pkg/api"
)

// MaxFeedbackWeight caps the confidence multiplicity one verdict may
// carry. A single submission can therefore outrank at most this many
// mined log entries — the first poisoning guardrail: flooding the graph
// through feedback takes many distinct served translations, not one
// enthusiastic client (see docs/LEARNING.md).
const MaxFeedbackWeight = 16

// FeedbackLedger returns the tenant's translation ledger, creating it on
// first use (capacity FeedbackCapacity, or feedback.DefaultCapacity).
func (t *Tenant) FeedbackLedger() *feedback.Ledger {
	if l := t.fb.Load(); l != nil {
		return l
	}
	capacity := t.FeedbackCapacity
	if capacity <= 0 {
		capacity = feedback.DefaultCapacity
	}
	l := feedback.New(capacity)
	if t.fb.CompareAndSwap(nil, l) {
		return l
	}
	return t.fb.Load()
}

// feedbackStatus renders the tenant's ledger counters into the wire
// shape, or nil while the tenant has never recorded a translation.
func (t *Tenant) feedbackStatus() *api.FeedbackStatus {
	l := t.fb.Load()
	if l == nil {
		return nil
	}
	st := l.Stats()
	return &api.FeedbackStatus{
		LedgerSize:     st.Size,
		LedgerCapacity: st.Capacity,
		Recorded:       st.Recorded,
		Evicted:        st.Evicted,
		Accepted:       st.Accepted,
		Rejected:       st.Rejected,
		Corrected:      st.Corrected,
		Conflicts:      st.Conflicts,
		Unknown:        st.Unknown,
	}
}

// recordTranslation enters a served v2 translation into the tenant's
// ledger so a later verdict can reference it by request ID. Followers
// skip recording: their feedback redirects to the primary, which serves
// its own ledger.
func recordTranslation(t *Tenant, requestID string, req api.TranslateRequest, resp *api.TranslateResponse) {
	if requestID == "" || resp == nil || t.Follower != nil {
		return
	}
	served := make([]feedback.Served, 0, len(resp.Results))
	for i, res := range resp.Results {
		if res.Error != nil || res.SQL == "" {
			continue
		}
		sv := feedback.Served{SQL: res.SQL, Score: res.Score}
		if i < len(req.Queries) {
			// The input text, lossless: spec form as-is, structured keyword
			// batches as their canonical JSON encoding.
			if spec := req.Queries[i].Spec; spec != "" {
				sv.Query = spec
			} else if raw, err := json.Marshal(req.Queries[i]); err == nil {
				sv.Query = string(raw)
			}
		}
		if res.Config != nil {
			sv.Fragments = make([]string, 0, len(res.Config.Mappings))
			for _, m := range res.Config.Mappings {
				sv.Fragments = append(sv.Fragments, m.Fragment)
			}
		}
		served = append(served, sv)
	}
	if len(served) == 0 {
		return
	}
	entry := feedback.Entry{
		RequestID:  requestID,
		Dataset:    t.Name,
		Served:     served,
		RecordedAt: time.Now(),
	}
	if snap := t.Sys.Snapshot(); snap != nil {
		entry.Obscurity = snap.Obscurity().String()
	}
	t.FeedbackLedger().Record(entry)
}

func (s *Server) handleV2Feedback(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if t.Follower != nil {
		// Verdicts mutate the log; like appends they belong on the primary
		// (whose ledger recorded the translation it served).
		s.redirectToPrimary(w, r, t, true)
		return
	}
	var req api.FeedbackRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeProblem(w, r, apiErr)
		return
	}
	resp, apiErr := s.coreFeedback(r.Context(), t, req)
	writeV2(s, w, r, resp, apiErr)
}

// coreFeedback applies one verdict: validate, claim the ledger entry
// (exactly-once), and for accepted/corrected verdicts run the resulting
// queries through the WAL-first coreLogAppend discipline. A failed apply
// releases the claim so the client may retry; a success commits it so no
// second submission can ever double-count.
func (s *Server) coreFeedback(ctx context.Context, t *Tenant, req api.FeedbackRequest) (*api.FeedbackResponse, *api.Error) {
	id := strings.TrimSpace(req.RequestID)
	if id == "" {
		return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: feedback requires the request_id of a served translation")
	}
	switch req.Verdict {
	case api.VerdictAccepted, api.VerdictRejected, api.VerdictCorrected:
	default:
		return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: unknown verdict %q (want accepted, rejected or corrected)", req.Verdict)
	}
	if req.Weight < 0 || req.Weight > MaxFeedbackWeight {
		return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: confidence weight %d outside [0, %d]", req.Weight, MaxFeedbackWeight)
	}
	weight := req.Weight
	if weight < 1 {
		weight = 1
	}
	if req.CorrectedSQL != "" && req.Verdict != api.VerdictCorrected {
		return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: corrected_sql is only valid with verdict %q", api.VerdictCorrected)
	}
	if req.Verdict == api.VerdictCorrected {
		// Parse before claiming: a malformed correction must not consume
		// (or even transiently hold) the entry's single verdict slot.
		if strings.TrimSpace(req.CorrectedSQL) == "" {
			return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation,
				"serve: verdict \"corrected\" requires corrected_sql")
		}
		q, err := sqlparse.Parse(req.CorrectedSQL)
		if err == nil {
			err = q.Resolve(nil)
		}
		if err != nil {
			return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeInvalidSQL,
				"serve: corrected_sql: %v", err)
		}
	}

	led := t.FeedbackLedger()
	entry, err := led.Claim(id)
	switch {
	case errors.Is(err, feedback.ErrUnknown):
		return nil, api.Errorf(http.StatusNotFound, api.CodeUnknownRequestID,
			"serve: request id %q is not in the translation ledger (never served here, or evicted)", id)
	case errors.Is(err, feedback.ErrConflict):
		return nil, api.Errorf(http.StatusConflict, api.CodeFeedbackConflict,
			"serve: a verdict for request id %q was already submitted", id)
	case err != nil:
		return nil, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "serve: %v", err)
	}

	out := &api.FeedbackResponse{RequestID: id, Verdict: req.Verdict}
	if req.Verdict == api.VerdictRejected {
		// Recorded for the counters, never appended: a rejection without a
		// correction carries no fragment evidence worth mining.
		led.Commit(id, feedback.Rejected)
		if snap := t.Sys.Snapshot(); snap != nil {
			out.LogQueries = snap.Queries()
			out.LogFragments = snap.Vertices()
			out.LogEdges = snap.Edges()
		}
		return out, nil
	}

	la := api.LogAppendRequest{}
	if req.Verdict == api.VerdictCorrected {
		la.Queries = []api.LogEntry{{SQL: req.CorrectedSQL, Count: weight}}
	} else {
		for _, sv := range entry.Served {
			la.Queries = append(la.Queries, api.LogEntry{SQL: sv.SQL, Count: weight})
		}
		if req.Session && len(la.Queries) > 1 {
			// An accepted multi-query batch can be folded as one ordered
			// session: cross-query pairs gain decayed co-occurrence
			// evidence, the recency/confidence half of the weighting model.
			la.Session = true
			la.Decay = req.Decay
		}
	}
	resp, apiErr := s.coreLogAppend(ctx, t, la)
	if apiErr != nil || resp == nil {
		// Frozen log, invalid decay, lost client, ...: nothing was applied,
		// so the verdict slot reopens for a retry.
		led.Release(id)
		return nil, apiErr
	}
	led.Commit(id, feedback.Verdict(req.Verdict))
	out.Applied = resp.Appended
	out.LogQueries = resp.LogQueries
	out.LogFragments = resp.LogFragments
	out.LogEdges = resp.LogEdges
	out.WALSeq = resp.WALSeq
	return out, nil
}
