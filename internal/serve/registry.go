package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"templar/internal/feedback"
	"templar/internal/repl"
	"templar/internal/templar"
	"templar/internal/wal"
)

// ErrUnknownDataset is returned (possibly wrapped) by a Loader when the
// requested dataset name names nothing loadable; the admin handler maps it
// to 404 instead of 500.
var ErrUnknownDataset = errors.New("serve: unknown dataset")

// Tenant is one named dataset hosted by a Registry: its Templar system
// plus the provenance metadata the admin endpoints report.
type Tenant struct {
	// Name is the dataset's display name; registry lookups are
	// case-insensitive over it.
	Name string
	// Sys is the serving engine (itself safe for concurrent use).
	Sys *templar.System
	// Source records where the engine came from: "built" (log re-mine),
	// "store" (packed snapshot) or "preloaded" (handed in by the caller).
	Source string
	// LoadTime is how long building or loading the engine took.
	LoadTime time.Duration
	// WAL, when non-nil, is the tenant's open write-ahead log: every log
	// append is made durable there before it is applied or acknowledged
	// (see AttachWAL).
	WAL *wal.Log
	// StorePath, when set, is the packed-snapshot file compaction folds the
	// WAL into (the file the tenant was — or will next be — loaded from).
	StorePath string
	// SnapshotSeq is the WAL sequence the tenant's boot snapshot covered
	// (store.Archive.WalSeq). Set once at load time, never mutated.
	SnapshotSeq uint64
	// Mapping, when non-nil, owns the file mapping the boot snapshot
	// aliases (store.Mapped). It must stay open as long as any snapshot
	// descended from the boot snapshot may be referenced — in practice the
	// whole process lifetime; the loader closes it only after the final
	// drain and compaction sweep. Set once at load time, never mutated.
	Mapping io.Closer
	// Follower, when non-nil, marks this tenant as a read-only replica
	// tailing a primary's WAL stream: reads serve normally at the
	// follower's applied sequence, appends are redirected to the primary,
	// and the replication endpoints refuse to serve (no chained
	// replication). Set once at load time, never mutated.
	Follower *repl.Follower
	// Primary is the primary's base URL, the redirect target for appends
	// reaching a follower tenant. Set with Follower.
	Primary string
	// FeedbackCapacity overrides the translation ledger's ring size (0 =
	// feedback.DefaultCapacity). Set before the tenant serves traffic.
	FeedbackCapacity int

	// fb is the tenant's translation ledger, created lazily by
	// FeedbackLedger the first time a translation is recorded or a verdict
	// arrives (see feedback.go).
	fb atomic.Pointer[feedback.Ledger]

	// appendMu serializes the WAL-write → engine-apply pair of a log
	// append, and compaction's rotate → engine-capture pair, so WAL order,
	// apply order and the sequence a compacted snapshot covers all agree.
	appendMu sync.Mutex

	// load is the tenant's admission state: limit override, in-flight
	// gauge, token bucket and shed counters (see overload.go). Living on
	// the tenant, an operator-set limit survives server re-wraps and is
	// enforced no matter which route resolved the tenant.
	load tenantLoad
}

// Loader materializes a tenant on demand for POST /admin/datasets —
// typically load-from-store-or-build (see cmd/templar-serve). Loaders run
// inside the server's worker pool and must honor ctx cancellation; wrap
// ErrUnknownDataset for names that cannot exist.
type Loader func(ctx context.Context, name string) (*Tenant, error)

// Registry holds the named engines a multi-tenant server routes between.
// Lookups on the request hot path are one atomic pointer load — the tenant
// map is immutable and replaced whole (copy-on-write) by the rare admin
// mutations, which serialize on an internal mutex. This is the same
// publication discipline templar.System uses for its engine and qfg.Live
// for its snapshot, one level up.
type Registry struct {
	mu      sync.Mutex
	tenants atomic.Pointer[map[string]*Tenant]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	m := make(map[string]*Tenant)
	r.tenants.Store(&m)
	return r
}

func tenantKey(name string) string { return strings.ToLower(name) }

// Get returns the tenant serving name (case-insensitive), or nil.
func (r *Registry) Get(name string) *Tenant {
	return (*r.tenants.Load())[tenantKey(name)]
}

// Add registers a tenant, failing if the name is already taken.
func (r *Registry) Add(t *Tenant) error {
	if t == nil || t.Sys == nil {
		return fmt.Errorf("serve: nil tenant")
	}
	if strings.TrimSpace(t.Name) == "" {
		return fmt.Errorf("serve: tenant without a name")
	}
	key := tenantKey(t.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.tenants.Load()
	if _, ok := cur[key]; ok {
		return fmt.Errorf("serve: dataset %q already registered", t.Name)
	}
	next := make(map[string]*Tenant, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = t
	r.tenants.Store(&next)
	return nil
}

// Remove drops a tenant by name, reporting whether it was present.
// In-flight requests that already resolved the tenant finish against it;
// the next lookup misses.
func (r *Registry) Remove(name string) bool {
	key := tenantKey(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.tenants.Load()
	if _, ok := cur[key]; !ok {
		return false
	}
	next := make(map[string]*Tenant, len(cur)-1)
	for k, v := range cur {
		if k != key {
			next[k] = v
		}
	}
	r.tenants.Store(&next)
	return true
}

// Tenants returns the registered tenants sorted by name.
func (r *Registry) Tenants() []*Tenant {
	cur := *r.tenants.Load()
	out := make([]*Tenant, 0, len(cur))
	for _, t := range cur {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return tenantKey(out[i].Name) < tenantKey(out[j].Name) })
	return out
}

// Len returns how many tenants are registered.
func (r *Registry) Len() int { return len(*r.tenants.Load()) }
