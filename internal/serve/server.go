package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"templar/internal/keyword"
	"templar/internal/pool"
	"templar/internal/templar"
)

// maxBodyBytes caps request bodies; keyword batches are small.
const maxBodyBytes = 1 << 20

// Server exposes one shared templar.System over HTTP. All CPU-heavy work
// (mapping, inference, translation) runs inside the worker pool, so
// concurrent clients share a fixed parallelism budget; the System itself is
// safe for concurrent use, so no request-level locking is needed.
type Server struct {
	sys     *templar.System
	dataset string
	pool    *pool.Pool
}

// NewServer binds a server to a system. dataset names the bound benchmark
// for diagnostics; workers < 1 picks the pool default.
func NewServer(sys *templar.System, dataset string, workers int) *Server {
	return &Server{sys: sys, dataset: dataset, pool: pool.New(workers)}
}

// Pool returns the server's worker pool.
func (s *Server) Pool() *pool.Pool { return s.pool }

// Handler returns the route table:
//
//	GET  /healthz          — liveness and binding info
//	POST /v1/map-keywords  — MAPKEYWORDS over the shared mapper
//	POST /v1/infer-joins   — INFERJOINS over the shared generator
//	POST /v1/translate     — batched full NLQ→SQL translation
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/map-keywords", s.handleMapKeywords)
	mux.HandleFunc("/v1/infer-joins", s.handleInferJoins)
	mux.HandleFunc("/v1/translate", s.handleTranslate)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Dataset:   s.dataset,
		Relations: len(s.sys.Database().Schema().Relations()),
		Workers:   s.pool.Workers(),
	})
}

func (s *Server) handleMapKeywords(w http.ResponseWriter, r *http.Request) {
	var req MapKeywordsRequest
	if !readPost(w, r, &req) {
		return
	}
	kws, err := req.decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var configs []keyword.Configuration
	s.pool.Run(func() { configs, err = s.sys.MapKeywords(kws) })
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, MapKeywordsResponse{Configurations: fromConfigurations(configs, req.Top)})
}

func (s *Server) handleInferJoins(w http.ResponseWriter, r *http.Request) {
	var req InferJoinsRequest
	if !readPost(w, r, &req) {
		return
	}
	if len(req.Relations) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: no relations"))
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 3
	}
	resp := InferJoinsResponse{}
	var err error
	s.pool.Run(func() {
		paths, ierr := s.sys.InferJoins(req.Relations, topK)
		if ierr != nil {
			err = ierr
			return
		}
		resp.Paths = make([]PathJSON, len(paths))
		for i, p := range paths {
			resp.Paths[i] = fromPath(p)
		}
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	var req TranslateRequest
	if !readPost(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty batch"))
		return
	}
	results := make([]TranslateResult, len(req.Queries))
	s.pool.ForEach(len(req.Queries), func(i int) {
		// Batch items run on pool goroutines, outside net/http's
		// per-request recover: a panic here would kill the whole server,
		// so contain it as a per-item error like any other failure.
		defer func() {
			if r := recover(); r != nil {
				results[i] = TranslateResult{Error: fmt.Sprintf("serve: internal error: %v", r)}
			}
		}()
		kws, err := req.Queries[i].decode()
		if err != nil {
			results[i] = TranslateResult{Error: err.Error()}
			return
		}
		tr, err := s.sys.Translate(kws)
		if err != nil {
			results[i] = TranslateResult{Error: err.Error()}
			return
		}
		results[i] = fromTranslation(tr)
	})
	writeJSON(w, http.StatusOK, TranslateResponse{Results: results})
}

// readPost enforces the method, decodes the JSON body into dst and reports
// whether the handler should continue.
func readPost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
