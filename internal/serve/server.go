package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"templar/internal/keyword"
	"templar/internal/pool"
	"templar/internal/sqlparse"
	"templar/internal/templar"
)

// maxBodyBytes caps request bodies; keyword batches are small.
const maxBodyBytes = 1 << 20

// Server exposes one shared templar.System over HTTP. All CPU-heavy work
// (mapping, inference, translation) runs inside the worker pool, so
// concurrent clients share a fixed parallelism budget; the System itself is
// safe for concurrent use, so no request-level locking is needed.
type Server struct {
	sys     *templar.System
	dataset string
	pool    *pool.Pool
}

// NewServer binds a server to a system. dataset names the bound benchmark
// for diagnostics; workers < 1 picks the pool default.
func NewServer(sys *templar.System, dataset string, workers int) *Server {
	return &Server{sys: sys, dataset: dataset, pool: pool.New(workers)}
}

// Pool returns the server's worker pool.
func (s *Server) Pool() *pool.Pool { return s.pool }

// Handler returns the route table:
//
//	GET  /healthz          — liveness, binding info and QFG log stats
//	POST /v1/map-keywords  — MAPKEYWORDS over the shared mapper
//	POST /v1/infer-joins   — INFERJOINS over the shared generator
//	POST /v1/translate     — batched full NLQ→SQL translation
//	POST /v1/log           — append SQL queries to the live log (409 when
//	                         the system was built over a frozen log)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/map-keywords", s.handleMapKeywords)
	mux.HandleFunc("/v1/infer-joins", s.handleInferJoins)
	mux.HandleFunc("/v1/translate", s.handleTranslate)
	mux.HandleFunc("/v1/log", s.handleLog)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	resp := HealthResponse{
		Status:    "ok",
		Dataset:   s.dataset,
		Relations: len(s.sys.Database().Schema().Relations()),
		Workers:   s.pool.Workers(),
		LiveLog:   s.sys.Live() != nil,
	}
	if snap := s.sys.Snapshot(); snap != nil {
		resp.LogQueries = snap.Queries()
		resp.LogFragments = snap.Vertices()
		resp.LogEdges = snap.Edges()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMapKeywords(w http.ResponseWriter, r *http.Request) {
	var req MapKeywordsRequest
	if !readPost(w, r, &req) {
		return
	}
	kws, err := req.decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var configs []keyword.Configuration
	if s.pool.RunCtx(r.Context(), func() { configs, err = s.sys.MapKeywords(kws) }) != nil {
		return // client gone before a worker freed up; nothing to answer
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, MapKeywordsResponse{Configurations: fromConfigurations(configs, req.Top)})
}

func (s *Server) handleInferJoins(w http.ResponseWriter, r *http.Request) {
	var req InferJoinsRequest
	if !readPost(w, r, &req) {
		return
	}
	if len(req.Relations) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: no relations"))
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 3
	}
	resp := InferJoinsResponse{}
	var err error
	if s.pool.RunCtx(r.Context(), func() {
		paths, ierr := s.sys.InferJoins(req.Relations, topK)
		if ierr != nil {
			err = ierr
			return
		}
		resp.Paths = make([]PathJSON, len(paths))
		for i, p := range paths {
			resp.Paths[i] = fromPath(p)
		}
	}) != nil {
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	var req TranslateRequest
	if !readPost(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty batch"))
		return
	}
	results := make([]TranslateResult, len(req.Queries))
	// The request context rides into the pool: once the client disconnects,
	// queued batch items stop claiming workers.
	err := s.pool.ForEachCtx(r.Context(), len(req.Queries), func(i int) {
		// Batch items run on pool goroutines, outside net/http's
		// per-request recover: a panic here would kill the whole server,
		// so contain it as a per-item error like any other failure.
		defer func() {
			if r := recover(); r != nil {
				results[i] = TranslateResult{Error: fmt.Sprintf("serve: internal error: %v", r)}
			}
		}()
		kws, err := req.Queries[i].decode()
		if err != nil {
			results[i] = TranslateResult{Error: err.Error()}
			return
		}
		tr, err := s.sys.Translate(kws)
		if err != nil {
			results[i] = TranslateResult{Error: err.Error()}
			return
		}
		results[i] = fromTranslation(tr)
	})
	if err != nil {
		return // canceled batch: the client is no longer listening
	}
	writeJSON(w, http.StatusOK, TranslateResponse{Results: results})
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	var req LogAppendRequest
	if !readPost(w, r, &req) {
		return
	}
	live := s.sys.Live()
	if live == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("serve: log appends disabled: system built over a frozen log"))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: no queries"))
		return
	}
	// Parsing and the O(V+E) snapshot recompile are CPU-heavy, so appends
	// share the worker pool (and honor disconnects) like every endpoint.
	var resp LogAppendResponse
	var appendErr error
	if s.pool.RunCtx(r.Context(), func() {
		// Parse and alias-resolve the whole batch before touching the log,
		// so one malformed query rejects the batch instead of half-applying.
		parsed := make([]*sqlparse.Query, len(req.Queries))
		counts := make([]int, len(req.Queries))
		for i, e := range req.Queries {
			q, err := sqlparse.Parse(e.SQL)
			if err != nil {
				appendErr = fmt.Errorf("serve: query %d: %w", i, err)
				return
			}
			if err := q.Resolve(nil); err != nil {
				appendErr = fmt.Errorf("serve: query %d: %w", i, err)
				return
			}
			parsed[i] = q
			counts[i] = e.Count
			if counts[i] <= 0 {
				counts[i] = 1
			}
		}
		if req.Session {
			decay := req.Decay
			if decay == 0 {
				decay = 0.5
			}
			if err := live.AddSession(parsed, 1, decay); err != nil {
				appendErr = err
				return
			}
		} else {
			live.AddQueries(parsed, counts)
		}
		snap := live.CurrentSnapshot()
		resp = LogAppendResponse{
			Appended:     len(parsed),
			LogQueries:   snap.Queries(),
			LogFragments: snap.Vertices(),
			LogEdges:     snap.Edges(),
		}
	}) != nil {
		return // client gone before a worker freed up
	}
	if appendErr != nil {
		writeError(w, http.StatusBadRequest, appendErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// readPost enforces the method, decodes the JSON body into dst and reports
// whether the handler should continue.
func readPost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
