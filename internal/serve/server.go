package serve

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"templar/internal/keyword"
	"templar/internal/pool"
	"templar/internal/sqlparse"
	"templar/internal/templar"
)

// maxBodyBytes caps request bodies; keyword batches are small.
const maxBodyBytes = 1 << 20

// Server exposes a Registry of named Templar engines over HTTP. All
// CPU-heavy work (mapping, inference, translation, engine loading) runs
// inside one shared worker pool, so concurrent clients across every
// dataset share a fixed parallelism budget; each engine is itself safe for
// concurrent use, so no request-level locking is needed anywhere.
//
// Routes come in two families: dataset-scoped (/v1/{dataset}/...) and
// legacy unprefixed (/v1/...), which alias the server's default dataset so
// single-tenant clients keep working unchanged.
type Server struct {
	reg         *Registry
	defaultName string
	pool        *pool.Pool
	loader      Loader
	adminToken  string
}

// NewServer binds a single-tenant server to one system: a registry holding
// only dataset, which also serves the legacy unprefixed routes. workers < 1
// picks the pool default.
func NewServer(sys *templar.System, dataset string, workers int) *Server {
	reg := NewRegistry()
	if err := reg.Add(&Tenant{Name: dataset, Sys: sys, Source: "preloaded"}); err != nil {
		panic("serve: " + err.Error())
	}
	return NewRegistryServer(reg, dataset, workers, nil)
}

// NewRegistryServer binds a multi-tenant server to a registry.
// defaultDataset names the tenant behind the legacy unprefixed routes (it
// need not be registered yet — it may arrive later through the admin API).
// loader, when non-nil, enables POST /admin/datasets to materialize new
// tenants on demand.
func NewRegistryServer(reg *Registry, defaultDataset string, workers int, loader Loader) *Server {
	return &Server{reg: reg, defaultName: defaultDataset, pool: pool.New(workers), loader: loader}
}

// WithAdminToken requires `Authorization: Bearer token` on every /admin
// route. The serving routes stay open: the admin API mutates tenants
// (dropping one breaks its traffic, loading one burns pool workers), so
// deployments that expose the listener beyond a trusted network should
// set a token — or front /admin with their own auth. An empty token
// leaves the admin API open, the single-operator development default.
func (s *Server) WithAdminToken(token string) *Server {
	s.adminToken = token
	return s
}

// Pool returns the server's worker pool.
func (s *Server) Pool() *pool.Pool { return s.pool }

// Registry returns the server's tenant registry.
func (s *Server) Registry() *Registry { return s.reg }

// DefaultDataset returns the dataset name the unprefixed routes alias.
func (s *Server) DefaultDataset() string { return s.defaultName }

// Handler returns the route table:
//
//	GET    /healthz                     — liveness, per-dataset QFG stats
//	POST   /v1/{dataset}/map-keywords   — MAPKEYWORDS on a named engine
//	POST   /v1/{dataset}/infer-joins    — INFERJOINS on a named engine
//	POST   /v1/{dataset}/translate      — batched NLQ→SQL translation
//	POST   /v1/{dataset}/log            — append queries to the named live log
//	POST   /v1/map-keywords             — legacy alias: default dataset
//	POST   /v1/infer-joins              —   "
//	POST   /v1/translate                —   "
//	POST   /v1/log                      —   "
//	GET    /admin/datasets              — list tenants with engine stats
//	POST   /admin/datasets              — load a dataset (store or build)
//	DELETE /admin/datasets/{name}       — drop a tenant (default protected)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	for route, h := range map[string]func(http.ResponseWriter, *http.Request, *templar.System){
		"map-keywords": s.handleMapKeywords,
		"infer-joins":  s.handleInferJoins,
		"translate":    s.handleTranslate,
		"log":          s.handleLog,
	} {
		mux.HandleFunc("POST /v1/"+route, s.withTenant(h))
		mux.HandleFunc("POST /v1/{dataset}/"+route, s.withTenant(h))
	}
	mux.HandleFunc("GET /admin/datasets", s.handleAdminList)
	mux.HandleFunc("POST /admin/datasets", s.handleAdminLoad)
	mux.HandleFunc("DELETE /admin/datasets/{name}", s.handleAdminRemove)
	return mux
}

// withTenant resolves the request's dataset — the {dataset} path segment,
// or the default for legacy unprefixed routes — with one atomic registry
// load, and 404s unknown names.
func (s *Server) withTenant(h func(http.ResponseWriter, *http.Request, *templar.System)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("dataset")
		if name == "" {
			name = s.defaultName
		}
		t := s.reg.Get(name)
		if t == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown dataset %q", name))
			return
		}
		h(w, r, t.Sys)
	}
}

// tenantStatus renders one tenant's engine stats for health/admin bodies.
func (s *Server) tenantStatus(t *Tenant) DatasetStatusJSON {
	ds := DatasetStatusJSON{
		Name:      t.Name,
		Default:   strings.EqualFold(t.Name, s.defaultName),
		Source:    t.Source,
		Relations: len(t.Sys.Database().Schema().Relations()),
		LiveLog:   t.Sys.Live() != nil,
	}
	if t.LoadTime > 0 {
		ds.LoadMillis = float64(t.LoadTime) / float64(time.Millisecond)
	}
	if snap := t.Sys.Snapshot(); snap != nil {
		ds.LogQueries = snap.Queries()
		ds.LogFragments = snap.Vertices()
		ds.LogEdges = snap.Edges()
	}
	return ds
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:  "ok",
		Dataset: s.defaultName,
		Workers: s.pool.Workers(),
	}
	for _, t := range s.reg.Tenants() {
		st := s.tenantStatus(t)
		resp.Datasets = append(resp.Datasets, st)
		if st.Default {
			// The top-level fields mirror the default dataset, keeping the
			// single-tenant health shape clients already parse.
			resp.Dataset = t.Name
			resp.Relations = st.Relations
			resp.LiveLog = st.LiveLog
			resp.LogQueries = st.LogQueries
			resp.LogFragments = st.LogFragments
			resp.LogEdges = st.LogEdges
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// adminAuthorized enforces the optional admin bearer token, writing the
// 401 itself when the check fails.
func (s *Server) adminAuthorized(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	got := []byte(r.Header.Get("Authorization"))
	want := []byte("Bearer " + s.adminToken)
	if subtle.ConstantTimeCompare(got, want) == 1 {
		return true
	}
	writeError(w, http.StatusUnauthorized, fmt.Errorf("serve: admin authorization required"))
	return false
}

func (s *Server) handleAdminList(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(w, r) {
		return
	}
	resp := AdminDatasetsResponse{Datasets: []DatasetStatusJSON{}}
	for _, t := range s.reg.Tenants() {
		resp.Datasets = append(resp.Datasets, s.tenantStatus(t))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(w, r) {
		return
	}
	var req AdminLoadRequest
	if !readPost(w, r, &req) {
		return
	}
	name := strings.TrimSpace(req.Name)
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: no dataset name"))
		return
	}
	if s.loader == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("serve: dataset loading not configured"))
		return
	}
	if t := s.reg.Get(name); t != nil {
		writeError(w, http.StatusConflict, fmt.Errorf("serve: dataset %q already loaded", t.Name))
		return
	}
	// Loading re-mines a log or decodes a snapshot — CPU-heavy, so it
	// claims a pool worker like any other request.
	var tenant *Tenant
	var loadErr error
	if s.pool.RunCtx(r.Context(), func() {
		tenant, loadErr = s.loader(r.Context(), name)
	}) != nil {
		return // client gone before a worker freed up
	}
	if loadErr != nil {
		status := http.StatusInternalServerError
		if errors.Is(loadErr, ErrUnknownDataset) {
			status = http.StatusNotFound
		}
		writeError(w, status, loadErr)
		return
	}
	if err := s.reg.Add(tenant); err != nil {
		// Lost a concurrent load race for the same name.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.tenantStatus(tenant))
}

func (s *Server) handleAdminRemove(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(w, r) {
		return
	}
	name := r.PathValue("name")
	if strings.EqualFold(name, s.defaultName) {
		writeError(w, http.StatusConflict, fmt.Errorf("serve: dataset %q is the default (legacy routes alias it); it cannot be removed", name))
		return
	}
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, AdminRemoveResponse{Removed: name})
}

func (s *Server) handleMapKeywords(w http.ResponseWriter, r *http.Request, sys *templar.System) {
	var req MapKeywordsRequest
	if !readPost(w, r, &req) {
		return
	}
	kws, err := req.decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var configs []keyword.Configuration
	if s.pool.RunCtx(r.Context(), func() { configs, err = sys.MapKeywords(kws) }) != nil {
		return // client gone before a worker freed up; nothing to answer
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, MapKeywordsResponse{Configurations: fromConfigurations(configs, req.Top)})
}

func (s *Server) handleInferJoins(w http.ResponseWriter, r *http.Request, sys *templar.System) {
	var req InferJoinsRequest
	if !readPost(w, r, &req) {
		return
	}
	if len(req.Relations) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: no relations"))
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 3
	}
	resp := InferJoinsResponse{}
	var err error
	if s.pool.RunCtx(r.Context(), func() {
		paths, ierr := sys.InferJoins(req.Relations, topK)
		if ierr != nil {
			err = ierr
			return
		}
		resp.Paths = make([]PathJSON, len(paths))
		for i, p := range paths {
			resp.Paths[i] = fromPath(p)
		}
	}) != nil {
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request, sys *templar.System) {
	var req TranslateRequest
	if !readPost(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty batch"))
		return
	}
	results := make([]TranslateResult, len(req.Queries))
	// The request context rides into the pool: once the client disconnects,
	// queued batch items stop claiming workers.
	err := s.pool.ForEachCtx(r.Context(), len(req.Queries), func(i int) {
		// Batch items run on pool goroutines, outside net/http's
		// per-request recover: a panic here would kill the whole server,
		// so contain it as a per-item error like any other failure.
		defer func() {
			if r := recover(); r != nil {
				results[i] = TranslateResult{Error: fmt.Sprintf("serve: internal error: %v", r)}
			}
		}()
		kws, err := req.Queries[i].decode()
		if err != nil {
			results[i] = TranslateResult{Error: err.Error()}
			return
		}
		tr, err := sys.Translate(kws)
		if err != nil {
			results[i] = TranslateResult{Error: err.Error()}
			return
		}
		results[i] = fromTranslation(tr)
	})
	if err != nil {
		return // canceled batch: the client is no longer listening
	}
	writeJSON(w, http.StatusOK, TranslateResponse{Results: results})
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request, sys *templar.System) {
	var req LogAppendRequest
	if !readPost(w, r, &req) {
		return
	}
	live := sys.Live()
	if live == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("serve: log appends disabled: system built over a frozen log"))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: no queries"))
		return
	}
	// Parsing and the O(V+E) snapshot recompile are CPU-heavy, so appends
	// share the worker pool (and honor disconnects) like every endpoint.
	var resp LogAppendResponse
	var appendErr error
	if s.pool.RunCtx(r.Context(), func() {
		// Parse and alias-resolve the whole batch before touching the log,
		// so one malformed query rejects the batch instead of half-applying.
		parsed := make([]*sqlparse.Query, len(req.Queries))
		counts := make([]int, len(req.Queries))
		for i, e := range req.Queries {
			q, err := sqlparse.Parse(e.SQL)
			if err != nil {
				appendErr = fmt.Errorf("serve: query %d: %w", i, err)
				return
			}
			if err := q.Resolve(nil); err != nil {
				appendErr = fmt.Errorf("serve: query %d: %w", i, err)
				return
			}
			parsed[i] = q
			counts[i] = e.Count
			if counts[i] <= 0 {
				counts[i] = 1
			}
		}
		if req.Session {
			decay := req.Decay
			if decay == 0 {
				decay = 0.5
			}
			if err := live.AddSession(parsed, 1, decay); err != nil {
				appendErr = err
				return
			}
		} else {
			live.AddQueries(parsed, counts)
		}
		snap := live.CurrentSnapshot()
		resp = LogAppendResponse{
			Appended:     len(parsed),
			LogQueries:   snap.Queries(),
			LogFragments: snap.Vertices(),
			LogEdges:     snap.Edges(),
		}
	}) != nil {
		return // client gone before a worker freed up
	}
	if appendErr != nil {
		writeError(w, http.StatusBadRequest, appendErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// readPost enforces the method, decodes the JSON body into dst and reports
// whether the handler should continue.
func readPost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
