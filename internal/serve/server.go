package serve

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"templar/internal/pool"
	"templar/internal/sqlparse"
	"templar/internal/templar"
	"templar/internal/wal"
	"templar/pkg/api"
)

// Request-parsing limits; all overridable per server with WithLimits.
const (
	// DefaultMaxBodyBytes caps POST bodies; keyword batches are small.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxTranslateBatch caps queries per /translate call.
	DefaultMaxTranslateBatch = 64
	// DefaultMaxLogBatch caps entries per /log append.
	DefaultMaxLogBatch = 256
)

// defaultInferTopK is the route-level default for infer-joins requests
// that leave top_k unset (the engine default of 1 is for library callers).
const defaultInferTopK = 3

// Server exposes a Registry of named Templar engines over HTTP. All
// CPU-heavy work (mapping, inference, translation, engine loading) runs
// inside one shared worker pool, so concurrent clients across every
// dataset share a fixed parallelism budget; each engine is itself safe for
// concurrent use, so no request-level locking is needed anywhere.
//
// Routes come in three families:
//
//   - /v2/{dataset}/... — the current contract (pkg/api): top_k
//     everywhere, RFC-7807 problem+json errors with machine-readable
//     codes, structured per-item batch errors, per-request engine options.
//   - /v1/... and /v1/{dataset}/... — the frozen legacy contract, served
//     by thin adapters over the same core operations; successful bodies
//     are bit-identical to v2 and to the pre-v2 server.
//   - /admin/... — tenant management (structured errors, optionally
//     bearer-token protected).
//
// Every request flows through the middleware stack: request ID, optional
// access log, and the in-flight/latency metrics reported on /healthz.
type Server struct {
	reg         *Registry
	defaultName string
	pool        *pool.Pool
	loader      Loader
	adminToken  string

	maxBodyBytes      int64
	maxTranslateBatch int
	maxLogBatch       int

	accessLog *log.Logger
	metrics   metricsState
	idPrefix  string
	reqSeq    atomic.Uint64

	// adm is the server-wide admission state: in-flight bound, shed
	// counters and the drain flag (see overload.go).
	adm admission
	// tenantDefaults is the per-tenant limit applied to tenants without
	// an explicit override; nil means unlimited.
	tenantDefaults atomic.Pointer[TenantLimits]
}

// NewServer binds a single-tenant server to one system: a registry holding
// only dataset, which also serves the legacy unprefixed routes. workers < 1
// picks the pool default.
func NewServer(sys *templar.System, dataset string, workers int) *Server {
	reg := NewRegistry()
	if err := reg.Add(&Tenant{Name: dataset, Sys: sys, Source: "preloaded"}); err != nil {
		panic("serve: " + err.Error())
	}
	return NewRegistryServer(reg, dataset, workers, nil)
}

// NewRegistryServer binds a multi-tenant server to a registry.
// defaultDataset names the tenant behind the legacy unprefixed routes (it
// need not be registered yet — it may arrive later through the admin API).
// loader, when non-nil, enables POST /admin/datasets to materialize new
// tenants on demand.
func NewRegistryServer(reg *Registry, defaultDataset string, workers int, loader Loader) *Server {
	return &Server{
		reg:               reg,
		defaultName:       defaultDataset,
		pool:              pool.New(workers),
		loader:            loader,
		maxBodyBytes:      DefaultMaxBodyBytes,
		maxTranslateBatch: DefaultMaxTranslateBatch,
		maxLogBatch:       DefaultMaxLogBatch,
		idPrefix:          newIDPrefix(),
	}
}

// WithAdminToken requires `Authorization: Bearer token` on every /admin
// route. The serving routes stay open: the admin API mutates tenants
// (dropping one breaks its traffic, loading one burns pool workers), so
// deployments that expose the listener beyond a trusted network should
// set a token — or front /admin with their own auth. An empty token
// leaves the admin API open, the single-operator development default.
func (s *Server) WithAdminToken(token string) *Server {
	s.adminToken = token
	return s
}

// WithLimits overrides the request-parsing caps; zero keeps the default
// for that limit. Exceeding maxBodyBytes is a 413 CodeBodyTooLarge;
// exceeding a batch cap is a 422 CodeBatchTooLarge.
func (s *Server) WithLimits(maxBodyBytes int64, maxTranslateBatch, maxLogBatch int) *Server {
	if maxBodyBytes > 0 {
		s.maxBodyBytes = maxBodyBytes
	}
	if maxTranslateBatch > 0 {
		s.maxTranslateBatch = maxTranslateBatch
	}
	if maxLogBatch > 0 {
		s.maxLogBatch = maxLogBatch
	}
	return s
}

// WithAccessLog emits one line per request (method, path, status, bytes,
// latency, request ID) to l. A nil logger disables access logging.
func (s *Server) WithAccessLog(l *log.Logger) *Server {
	s.accessLog = l
	return s
}

// Pool returns the server's worker pool.
func (s *Server) Pool() *pool.Pool { return s.pool }

// Registry returns the server's tenant registry.
func (s *Server) Registry() *Registry { return s.reg }

// DefaultDataset returns the dataset name the unprefixed routes alias.
func (s *Server) DefaultDataset() string { return s.defaultName }

// Route is one registered method+pattern pair. Routes() feeds the
// OpenAPI-sync check (make api-check), which asserts docs/openapi.yaml
// describes exactly the v2 surface the server registers.
type Route struct {
	Method  string
	Pattern string
	handler http.HandlerFunc
}

// Routes returns the full route table in registration order.
func (s *Server) Routes() []Route {
	routes := []Route{
		{Method: http.MethodGet, Pattern: "/healthz", handler: s.handleHealth},
		{Method: http.MethodGet, Pattern: "/v2/datasets", handler: s.handleV2Datasets},
	}
	type endpoint struct {
		name string
		v1   func(http.ResponseWriter, *http.Request, *Tenant)
		v2   func(http.ResponseWriter, *http.Request, *Tenant)
	}
	for _, ep := range []endpoint{
		{"map-keywords", s.handleV1MapKeywords, s.handleV2MapKeywords},
		{"infer-joins", s.handleV1InferJoins, s.handleV2InferJoins},
		{"translate", s.handleV1Translate, s.handleV2Translate},
		{"log", s.handleV1Log, s.handleV2Log},
	} {
		routes = append(routes,
			Route{Method: http.MethodPost, Pattern: "/v2/{dataset}/" + ep.name, handler: s.withTenant(ep.v2, true)},
			Route{Method: http.MethodPost, Pattern: "/v1/{dataset}/" + ep.name, handler: s.withTenant(ep.v1, false)},
			Route{Method: http.MethodPost, Pattern: "/v1/" + ep.name, handler: s.withTenant(ep.v1, false)},
		)
	}
	return append(routes,
		// Feedback is v2-only: it depends on X-Request-ID plumbing and the
		// RFC-7807 claim-conflict vocabulary, neither of which the frozen
		// v1 contract has.
		Route{Method: http.MethodPost, Pattern: "/v2/{dataset}/feedback", handler: s.withTenant(s.handleV2Feedback, true)},
		// Replication: the WAL tail stream and its bootstrap snapshot
		// (internal/repl speaks these; regular clients never need them).
		Route{Method: http.MethodGet, Pattern: "/v2/{dataset}/wal", handler: s.withTenant(s.handleV2WALTail, true)},
		Route{Method: http.MethodGet, Pattern: "/v2/{dataset}/snapshot", handler: s.withTenant(s.handleV2Snapshot, true)},
		Route{Method: http.MethodGet, Pattern: "/admin/datasets", handler: s.handleAdminList},
		Route{Method: http.MethodPost, Pattern: "/admin/datasets", handler: s.handleAdminLoad},
		Route{Method: http.MethodDelete, Pattern: "/admin/datasets/{name}", handler: s.handleAdminRemove},
		Route{Method: http.MethodPut, Pattern: "/admin/datasets/{name}/limits", handler: s.handleAdminLimits},
	)
}

// Handler returns the route table wrapped in the middleware stack.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.Routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handler)
	}
	return s.withMiddleware(mux)
}

// withTenant resolves the request's dataset — the {dataset} path segment,
// or the default for unprefixed legacy routes — with one atomic registry
// load, and 404s unknown names in the requested contract's error shape.
func (s *Server) withTenant(h func(http.ResponseWriter, *http.Request, *Tenant), v2 bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("dataset")
		if name == "" {
			name = s.defaultName
		}
		t := s.reg.Get(name)
		if t == nil {
			e := api.Errorf(http.StatusNotFound, api.CodeUnknownDataset, "serve: unknown dataset %q", name)
			e.Dataset = name
			if v2 {
				s.writeProblem(w, r, e)
			} else {
				s.writeLegacyError(w, e)
			}
			return
		}
		// Per-tenant admission: rate and in-flight quota checks run after
		// the server-wide gate (middleware) and before any body is read,
		// so a shed costs the hot tenant microseconds, not a pool worker.
		if ok, e, retryAfter := s.admitTenant(t); !ok {
			s.writeShed(w, r, e, retryAfter)
			return
		}
		defer releaseTenant(t)
		h(w, r, t)
	}
}

// ---------------------------------------------------------------------------
// Core operations: contract-agnostic request execution shared by the v1
// adapter and the v2 handlers. Each returns (response, nil) on success,
// (nil, *api.Error) on failure, and (nil, nil) when the client vanished
// before an answer existed — in which case nothing must be written.

func (s *Server) coreMapKeywords(ctx context.Context, sys *templar.System, in api.KeywordsInput, topK int, co api.CallOptions) (*api.MapKeywordsResponse, *api.Error) {
	kws, apiErr := decodeKeywords(in)
	if apiErr != nil {
		return nil, apiErr
	}
	opts, apiErr := decodeCallOptions(co, 0, 0)
	if apiErr != nil {
		return nil, apiErr
	}
	opts.TopK = topK
	var out *api.MapKeywordsResponse
	var engErr error
	if s.pool.RunCtx(ctx, func() {
		cfgs, err := sys.MapKeywords(ctx, kws, opts)
		if err != nil {
			engErr = err
			return
		}
		out = &api.MapKeywordsResponse{Configurations: fromConfigurations(cfgs)}
	}) != nil {
		return nil, nil // client gone before a worker freed up
	}
	if engErr != nil {
		if isCanceled(engErr) {
			return nil, nil // client gone mid-enumeration
		}
		return nil, engineError(engErr)
	}
	return out, nil
}

func (s *Server) coreInferJoins(ctx context.Context, sys *templar.System, relations []string, topK int) (*api.InferJoinsResponse, *api.Error) {
	if len(relations) == 0 {
		return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, "serve: no relations")
	}
	if topK <= 0 {
		topK = defaultInferTopK
	}
	var out *api.InferJoinsResponse
	var engErr error
	if s.pool.RunCtx(ctx, func() {
		paths, err := sys.InferJoins(ctx, relations, &templar.CallOptions{TopK: topK})
		if err != nil {
			engErr = err
			return
		}
		resp := api.InferJoinsResponse{Paths: make([]api.Path, len(paths))}
		for i, p := range paths {
			resp.Paths[i] = fromPath(p)
		}
		out = &resp
	}) != nil {
		return nil, nil
	}
	if engErr != nil {
		if isCanceled(engErr) {
			return nil, nil
		}
		return nil, engineError(engErr)
	}
	return out, nil
}

func (s *Server) coreTranslate(ctx context.Context, sys *templar.System, req api.TranslateRequest) (*api.TranslateResponse, *api.Error) {
	if len(req.Queries) == 0 {
		return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, "serve: empty batch")
	}
	if len(req.Queries) > s.maxTranslateBatch {
		return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeBatchTooLarge,
			"serve: translate batch of %d exceeds the cap of %d", len(req.Queries), s.maxTranslateBatch)
	}
	opts, apiErr := decodeCallOptions(req.CallOptions, req.TopConfigs, req.TopPaths)
	if apiErr != nil {
		return nil, apiErr
	}
	results := make([]api.TranslateResult, len(req.Queries))
	// The request context rides into the pool: once the client disconnects,
	// queued batch items stop claiming workers and running items abort
	// inside the engine.
	err := s.pool.ForEachCtx(ctx, len(req.Queries), func(i int) {
		// Batch items run on pool goroutines, outside net/http's
		// per-request recover: a panic here would kill the whole server,
		// so contain it as a per-item error like any other failure.
		defer func() {
			if r := recover(); r != nil {
				results[i] = api.TranslateResult{Error: api.Errorf(
					http.StatusInternalServerError, api.CodeInternal, "serve: internal error: %v", r)}
			}
		}()
		kws, apiErr := decodeKeywords(req.Queries[i])
		if apiErr != nil {
			results[i] = api.TranslateResult{Error: apiErr}
			return
		}
		tr, err := sys.Translate(ctx, kws, opts)
		if err != nil {
			if !isCanceled(err) {
				results[i] = api.TranslateResult{Error: engineError(err)}
			}
			return
		}
		results[i] = fromTranslation(tr)
	})
	if err != nil {
		return nil, nil // canceled batch: the client is no longer listening
	}
	return &api.TranslateResponse{Results: results}, nil
}

func (s *Server) coreLogAppend(ctx context.Context, t *Tenant, req api.LogAppendRequest) (*api.LogAppendResponse, *api.Error) {
	live := t.Sys.Live()
	if live == nil {
		return nil, api.NewError(http.StatusConflict, api.CodeLogFrozen,
			"serve: log appends disabled: system built over a frozen log")
	}
	if len(req.Queries) == 0 {
		return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, "serve: no queries")
	}
	if len(req.Queries) > s.maxLogBatch {
		return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeBatchTooLarge,
			"serve: log batch of %d exceeds the cap of %d", len(req.Queries), s.maxLogBatch)
	}
	// Parsing and the O(V+E) snapshot recompile are CPU-heavy, so appends
	// share the worker pool (and honor disconnects) like every endpoint.
	var out *api.LogAppendResponse
	var appendErr *api.Error
	if s.pool.RunCtx(ctx, func() {
		// Parse, alias-resolve and normalize the whole batch before touching
		// the WAL or the log: one malformed query rejects the batch instead
		// of half-applying, and — with a WAL attached — nothing that could
		// still fail runs after a record is durable, so a logged record
		// always replays cleanly.
		parsed := make([]*sqlparse.Query, len(req.Queries))
		counts := make([]int, len(req.Queries))
		for i, e := range req.Queries {
			q, err := sqlparse.Parse(e.SQL)
			if err == nil {
				err = q.Resolve(nil)
			}
			if err != nil {
				appendErr = api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
					"serve: query %d: %v", i, err).WithItem(i, api.CodeValidation, err.Error())
				return
			}
			parsed[i] = q
			counts[i] = e.Count
			if counts[i] <= 0 {
				counts[i] = 1
			}
		}
		decay := req.Decay
		if req.Session {
			if decay == 0 {
				decay = 0.5
			}
			if decay <= 0 || decay > 1 {
				appendErr = api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
					"serve: session decay %v outside (0, 1]", decay)
				return
			}
		}

		// appendMu holds the WAL write and the engine apply together: WAL
		// order is apply order is replay order, and a concurrent compaction
		// cannot rotate the segment between the two.
		t.appendMu.Lock()
		defer t.appendMu.Unlock()
		var walSeq uint64
		if t.WAL != nil {
			rec := &wal.Record{Session: req.Session, Entries: make([]wal.Entry, len(parsed))}
			for i, e := range req.Queries {
				// Record the raw SQL with normalized counts: replay re-parses
				// and re-resolves exactly what was applied here.
				rec.Entries[i] = wal.Entry{SQL: e.SQL, Count: counts[i]}
			}
			if req.Session {
				rec.Count, rec.Decay = 1, decay
			}
			seq, err := t.WAL.Append(rec)
			if err != nil {
				// The record is not durable, so it must not be applied or
				// acknowledged. The log poisons itself on write failure;
				// operators see it on /healthz and in the runbook.
				appendErr = api.Errorf(http.StatusInternalServerError, api.CodeInternal,
					"serve: write-ahead log append failed: %v", err)
				return
			}
			walSeq = seq
		}
		if req.Session {
			if err := live.AddSession(parsed, 1, decay); err != nil {
				// Unreachable with a WAL attached: decay was validated above.
				appendErr = api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error())
				return
			}
		} else {
			live.AddQueries(parsed, counts)
		}
		snap := live.CurrentSnapshot()
		out = &api.LogAppendResponse{
			Appended:     len(parsed),
			LogQueries:   snap.Queries(),
			LogFragments: snap.Vertices(),
			LogEdges:     snap.Edges(),
			WALSeq:       int64(walSeq),
		}
	}) != nil {
		return nil, nil // client gone before a worker freed up
	}
	if appendErr != nil {
		return nil, appendErr
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// v2 handlers: pkg/api shapes in, problem+json errors out.

func (s *Server) handleV2MapKeywords(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req api.MapKeywordsRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeProblem(w, r, apiErr)
		return
	}
	resp, apiErr := s.coreMapKeywords(r.Context(), t.Sys, req.KeywordsInput, req.TopK, req.CallOptions)
	writeV2(s, w, r, resp, apiErr)
}

func (s *Server) handleV2InferJoins(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req api.InferJoinsRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeProblem(w, r, apiErr)
		return
	}
	resp, apiErr := s.coreInferJoins(r.Context(), t.Sys, req.Relations, req.TopK)
	writeV2(s, w, r, resp, apiErr)
}

func (s *Server) handleV2Translate(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req api.TranslateRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeProblem(w, r, apiErr)
		return
	}
	resp, apiErr := s.coreTranslate(r.Context(), t.Sys, req)
	if apiErr == nil && resp != nil {
		// Remember what was served so POST /v2/{dataset}/feedback can turn
		// a verdict on this request ID into a log append (feedback.go).
		recordTranslation(t, RequestIDFrom(r.Context()), req, resp)
	}
	writeV2(s, w, r, resp, apiErr)
}

func (s *Server) handleV2Log(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if t.Follower != nil {
		// A follower never applies writes; the append belongs on the
		// primary, whose WAL is the one replication stream.
		s.redirectToPrimary(w, r, t, true)
		return
	}
	var req api.LogAppendRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeProblem(w, r, apiErr)
		return
	}
	resp, apiErr := s.coreLogAppend(r.Context(), t, req)
	writeV2(s, w, r, resp, apiErr)
}

// handleV2Datasets lists the hosted datasets — the public (non-admin)
// discovery endpoint SDK clients use to pick a dataset.
func (s *Server) handleV2Datasets(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.datasetsResponse())
}

// datasetsResponse renders every tenant's status, shared by the public
// and admin listings so the two views cannot drift.
func (s *Server) datasetsResponse() api.DatasetsResponse {
	resp := api.DatasetsResponse{Datasets: []api.DatasetStatus{}}
	for _, t := range s.reg.Tenants() {
		resp.Datasets = append(resp.Datasets, s.tenantStatus(t))
	}
	return resp
}

// writeV2 finishes a v2 request from a core-op result, handling the
// tri-state contract (response / error / client gone). The pointer type
// parameter keeps the nil check honest for any response type.
func writeV2[T any](s *Server, w http.ResponseWriter, r *http.Request, resp *T, apiErr *api.Error) {
	switch {
	case apiErr != nil:
		s.writeProblem(w, r, apiErr)
	case resp == nil:
		// Client gone: write nothing, the middleware logs 499.
	default:
		s.writeJSON(w, http.StatusOK, resp)
	}
}

// ---------------------------------------------------------------------------
// Health and admin.

// tenantStatus renders one tenant's engine stats for health/admin bodies.
func (s *Server) tenantStatus(t *Tenant) api.DatasetStatus {
	ds := api.DatasetStatus{
		Name:      t.Name,
		Default:   strings.EqualFold(t.Name, s.defaultName),
		Source:    t.Source,
		Relations: len(t.Sys.Database().Schema().Relations()),
		LiveLog:   t.Sys.Live() != nil,
	}
	if t.LoadTime > 0 {
		ds.LoadMillis = float64(t.LoadTime) / float64(time.Millisecond)
	}
	if snap := t.Sys.Snapshot(); snap != nil {
		ds.LogQueries = snap.Queries()
		ds.LogFragments = snap.Vertices()
		ds.LogEdges = snap.Edges()
	}
	if t.WAL != nil {
		ds.WAL = walStatus(t.WAL.Stats())
	}
	if t.Follower != nil {
		ds.Repl = t.Follower.Status()
		// Appends are redirected to the primary, not applied here.
		ds.LiveLog = false
	}
	ds.Load = s.tenantLoadStatus(t)
	ds.Feedback = t.feedbackStatus()
	return ds
}

// walStatus renders wal counters into the frozen wire shape.
func walStatus(st wal.Stats) *api.WALStatus {
	out := &api.WALStatus{
		Seq:              int64(st.Seq),
		Records:          st.Records,
		Bytes:            st.Bytes,
		SyncPolicy:       st.SyncPolicy,
		Compactions:      st.Compactions,
		RecoveredRecords: st.RecoveredRecords,
		DroppedBytes:     st.DroppedBytes,
	}
	if !st.LastSync.IsZero() {
		out.LastSyncUnixMS = st.LastSync.UnixMilli()
	}
	if !st.LastCompaction.IsZero() {
		out.LastCompactionUnixMS = st.LastCompaction.UnixMilli()
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := api.HealthResponse{
		Status:   "ok",
		Dataset:  s.defaultName,
		Workers:  s.pool.Workers(),
		Metrics:  s.metrics.snapshot(s.adm.inFlight.Load()),
		Overload: s.adm.snapshot(),
	}
	status := http.StatusOK
	if s.adm.draining.Load() {
		// Draining answers 503 so load balancers stop routing here, with
		// the full body so operators can watch in-flight fall to zero.
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	for _, t := range s.reg.Tenants() {
		st := s.tenantStatus(t)
		resp.Datasets = append(resp.Datasets, st)
		if st.Default {
			// The top-level fields mirror the default dataset, keeping the
			// single-tenant health shape clients already parse.
			resp.Dataset = t.Name
			resp.Relations = st.Relations
			resp.LiveLog = st.LiveLog
			resp.LogQueries = st.LogQueries
			resp.LogFragments = st.LogFragments
			resp.LogEdges = st.LogEdges
			resp.WAL = st.WAL
			resp.Repl = st.Repl
			resp.Feedback = st.Feedback
		}
	}
	s.writeJSON(w, status, resp)
}

// adminAuthorized enforces the optional admin bearer token, writing the
// 401 itself when the check fails.
func (s *Server) adminAuthorized(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	got := []byte(r.Header.Get("Authorization"))
	want := []byte("Bearer " + s.adminToken)
	if subtle.ConstantTimeCompare(got, want) == 1 {
		return true
	}
	s.writeProblem(w, r, api.NewError(http.StatusUnauthorized, api.CodeUnauthorized,
		"serve: admin authorization required"))
	return false
}

func (s *Server) handleAdminList(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(w, r) {
		return
	}
	s.writeJSON(w, http.StatusOK, s.datasetsResponse())
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(w, r) {
		return
	}
	var req api.AdminLoadRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeProblem(w, r, apiErr)
		return
	}
	name := strings.TrimSpace(req.Name)
	if name == "" {
		s.writeProblem(w, r, api.NewError(http.StatusBadRequest, api.CodeValidation, "serve: no dataset name"))
		return
	}
	if s.loader == nil {
		s.writeProblem(w, r, api.NewError(http.StatusNotImplemented, api.CodeNotConfigured,
			"serve: dataset loading not configured"))
		return
	}
	if t := s.reg.Get(name); t != nil {
		s.writeProblem(w, r, api.Errorf(http.StatusConflict, api.CodeConflict,
			"serve: dataset %q already loaded", t.Name))
		return
	}
	// Loading re-mines a log or decodes a snapshot — CPU-heavy, so it
	// claims a pool worker like any other request.
	var tenant *Tenant
	var loadErr error
	if s.pool.RunCtx(r.Context(), func() {
		tenant, loadErr = s.loader(r.Context(), name)
	}) != nil {
		return // client gone before a worker freed up
	}
	if loadErr != nil {
		e := api.NewError(http.StatusInternalServerError, api.CodeInternal, loadErr.Error())
		if errors.Is(loadErr, ErrUnknownDataset) {
			e = api.NewError(http.StatusNotFound, api.CodeUnknownDataset, loadErr.Error())
		}
		s.writeProblem(w, r, e)
		return
	}
	if err := s.reg.Add(tenant); err != nil {
		// Lost a concurrent load race for the same name.
		s.writeProblem(w, r, api.NewError(http.StatusConflict, api.CodeConflict, err.Error()))
		return
	}
	s.writeJSON(w, http.StatusCreated, s.tenantStatus(tenant))
}

func (s *Server) handleAdminRemove(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(w, r) {
		return
	}
	name := r.PathValue("name")
	if strings.EqualFold(name, s.defaultName) {
		s.writeProblem(w, r, api.Errorf(http.StatusConflict, api.CodeConflict,
			"serve: dataset %q is the default (legacy routes alias it); it cannot be removed", name))
		return
	}
	if !s.reg.Remove(name) {
		s.writeProblem(w, r, api.Errorf(http.StatusNotFound, api.CodeUnknownDataset,
			"serve: unknown dataset %q", name))
		return
	}
	s.writeJSON(w, http.StatusOK, api.AdminRemoveResponse{Removed: name})
}

// handleAdminLimits sets (or, with an all-zero body, clears) a tenant's
// per-tenant limit override at runtime — the operator's throttle for a
// hot dataset, no restart needed. Responds with the tenant's full status
// so the caller sees the limits it just installed.
func (s *Server) handleAdminLimits(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(w, r) {
		return
	}
	t := s.reg.Get(r.PathValue("name"))
	if t == nil {
		s.writeProblem(w, r, api.Errorf(http.StatusNotFound, api.CodeUnknownDataset,
			"serve: unknown dataset %q", r.PathValue("name")))
		return
	}
	var req api.TenantLimits
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeProblem(w, r, apiErr)
		return
	}
	if req.PerSecond < 0 || req.Burst < 0 || req.MaxInFlight < 0 {
		s.writeProblem(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: limits must be non-negative"))
		return
	}
	if req.Burst > 0 && req.PerSecond <= 0 {
		s.writeProblem(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: burst without per_second never refills"))
		return
	}
	t.SetLimits(TenantLimits{PerSecond: req.PerSecond, Burst: req.Burst, MaxInFlight: req.MaxInFlight})
	s.writeJSON(w, http.StatusOK, s.tenantStatus(t))
}

// ---------------------------------------------------------------------------
// Encoding / decoding plumbing.

// readJSON decodes a JSON body under the server's byte cap, classifying
// failures into the structured error model (the caller picks the error
// dialect to write).
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return api.Errorf(http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
				"serve: request body exceeds %d bytes", tooBig.Limit)
		}
		return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "serve: bad request body: %v", err)
	}
	return nil
}

// isCanceled reports whether an engine error is the request context
// expiring — i.e. the client is gone and no response should be written.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// jsonBufPool recycles response encode buffers across requests: bodies are
// marshaled fully in memory first, so every response goes out with an exact
// Content-Length in a single Write, and a marshal failure surfaces as a
// clean 500 instead of a half-written 200.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledEncodeBuf caps the buffers the pool retains, so one huge
// response (a big dataset listing, say) doesn't pin its backing forever.
const maxPooledEncodeBuf = 1 << 20

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	s.writeJSONAs(w, status, "application/json", body)
}

// writeJSONAs encodes body into a pooled buffer and writes status, headers
// and the body in one shot. Nothing touches the ResponseWriter until the
// encode has succeeded, which is what makes the failure path clean.
func (s *Server) writeJSONAs(w http.ResponseWriter, status int, contentType string, body any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		jsonBufPool.Put(buf)
		s.encodeFailure(w)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledEncodeBuf {
		jsonBufPool.Put(buf)
	}
}

// encodeFailure finishes a request whose response body failed to marshal:
// the failure is counted for /healthz and the client gets a hand-built
// problem document (the structured marshal path is what just failed).
func (s *Server) encodeFailure(w http.ResponseWriter) {
	s.metrics.encodeFailures.Add(1)
	w.Header().Set("Content-Type", api.ProblemContentType)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = fmt.Fprintf(w, `{"status":500,"code":%q,"detail":"serve: response body failed to encode"}`+"\n", api.CodeInternal)
}

// writeProblem writes a v2 error as an RFC-7807 problem document,
// stamping the middleware's request ID into it.
func (s *Server) writeProblem(w http.ResponseWriter, r *http.Request, e *api.Error) {
	e.RequestID = RequestIDFrom(r.Context())
	s.writeJSONAs(w, e.Status, api.ProblemContentType, e)
}
