package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/keyword"
	"templar/internal/workload"
	"templar/pkg/api"
)

// TestV1V2ParityWorkload extends the adapter gate from hand-picked
// requests to a seeded synthesized workload mix: a deterministic
// internal/workload stream — weighted map-keywords, infer-joins, batched
// translate and log appends, exactly what cmd/templar-load replays
// against production — is sent through both route families, and for
// every request the two contracts must agree on status and answer
// bit-identically on success. Log appends target a frozen engine here,
// pinning error-path parity (409 log_frozen) under the same mix.
func TestV1V2ParityWorkload(t *testing.T) {
	const perDataset = 40
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			srv := NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 4)
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			lower := strings.ToLower(ds.Name)

			profiles, err := workload.MineProfiles([]string{ds.Name})
			if err != nil {
				t.Fatal(err)
			}
			gen, err := workload.NewGenerator(profiles, workload.DefaultMix(), 2026)
			if err != nil {
				t.Fatal(err)
			}
			stream := gen.Generate(perDataset)
			// The stream must be reproducible here too — the parity gate is
			// only as good as its ability to replay the same slice forever.
			gen2, _ := workload.NewGenerator(profiles, workload.DefaultMix(), 2026)
			if workload.Fingerprint(stream) != workload.Fingerprint(gen2.Generate(perDataset)) {
				t.Fatal("workload slice not reproducible")
			}

			ops := map[workload.Op]int{}
			for _, req := range stream {
				ops[req.Op]++
				var endpoint string
				var v1body, v2body any
				switch req.Op {
				case workload.OpMapKeywords:
					endpoint = "map-keywords"
					v1body = V1MapKeywordsRequest{KeywordsInput: req.MapKeywords.KeywordsInput, Top: req.MapKeywords.TopK}
					v2body = req.MapKeywords
				case workload.OpInferJoins:
					endpoint = "infer-joins"
					v1body = V1InferJoinsRequest{Relations: req.InferJoins.Relations, TopK: req.InferJoins.TopK}
					v2body = req.InferJoins
				case workload.OpTranslate:
					endpoint = "translate"
					v1body, v2body = req.Translate, req.Translate
				case workload.OpLogAppend:
					endpoint = "log"
					v1body, v2body = req.LogAppend, req.LogAppend
				}
				s1, _, raw1 := postRaw(t, ts.URL+"/v1/"+lower+"/"+endpoint, v1body)
				s2, h2, raw2 := postRaw(t, ts.URL+"/v2/"+lower+"/"+endpoint, v2body)

				if req.Op == workload.OpLogAppend {
					// Frozen engine: both contracts refuse, each in its own
					// error dialect.
					if s1 != http.StatusConflict || s2 != http.StatusConflict {
						t.Fatalf("req %d: log statuses v1=%d v2=%d, want 409/409", req.Seq, s1, s2)
					}
					var legacy V1Error
					if err := json.Unmarshal(raw1, &legacy); err != nil || legacy.Error == "" {
						t.Fatalf("req %d: v1 log error body %s", req.Seq, raw1)
					}
					wantProblem(t, s2, h2, raw2, http.StatusConflict, api.CodeLogFrozen)
					continue
				}
				if s1 != s2 {
					t.Fatalf("req %d (%s): status v1=%d v2=%d\nv1: %s\nv2: %s", req.Seq, endpoint, s1, s2, raw1, raw2)
				}
				if s1 != http.StatusOK {
					continue // error bodies differ by contract (dialects pinned elsewhere)
				}
				if req.Op == workload.OpTranslate {
					// v1 carries per-item errors as strings; bodies are only
					// bit-identical when every batch item succeeded.
					var v1r V1TranslateResponse
					if err := json.Unmarshal(raw1, &v1r); err != nil {
						t.Fatalf("req %d: v1 translate body: %v", req.Seq, err)
					}
					var v2r api.TranslateResponse
					if err := json.Unmarshal(raw2, &v2r); err != nil {
						t.Fatalf("req %d: v2 translate body: %v", req.Seq, err)
					}
					if len(v1r.Results) != len(v2r.Results) {
						t.Fatalf("req %d: batch sizes v1=%d v2=%d", req.Seq, len(v1r.Results), len(v2r.Results))
					}
					clean := true
					for i := range v1r.Results {
						if (v1r.Results[i].Error != "") != (v2r.Results[i].Error != nil) {
							t.Fatalf("req %d item %d: error presence diverged", req.Seq, i)
						}
						if v1r.Results[i].SQL != v2r.Results[i].SQL || v1r.Results[i].Score != v2r.Results[i].Score ||
							v1r.Results[i].Tie != v2r.Results[i].Tie {
							t.Fatalf("req %d item %d: translation diverged\nv1: %s\nv2: %s", req.Seq, i, raw1, raw2)
						}
						if v1r.Results[i].Error != "" {
							clean = false
						}
					}
					if clean && !bytes.Equal(raw1, raw2) {
						t.Fatalf("req %d: clean translate bodies diverged\nv1: %s\nv2: %s", req.Seq, raw1, raw2)
					}
					continue
				}
				if !bytes.Equal(raw1, raw2) {
					t.Fatalf("req %d (%s): bodies diverged\nv1: %s\nv2: %s", req.Seq, endpoint, raw1, raw2)
				}
			}
			// The seeded slice must actually exercise the whole mix. Feedback
			// is exempt: the default mix opts out of it (weight 0), and it is
			// v2-only — there is no v1 route to hold parity against.
			for _, op := range workload.Ops() {
				if op == workload.OpFeedback {
					continue
				}
				if ops[op] == 0 {
					t.Fatalf("seeded slice never hit %s (ops: %v); grow the slice or reseed", op, ops)
				}
			}
		})
	}
}
