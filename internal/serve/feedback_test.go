package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"templar/internal/datasets"
	"templar/internal/keyword"
	"templar/internal/repl"
	"templar/pkg/api"
)

// postJSONWithID is postRaw with a caller-chosen X-Request-ID, the way a
// feedback-capable client tags its translate calls.
func postJSONWithID(t testing.TB, url, id string, body any) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw.Bytes()
}

// translateAs serves one translate tagged with the given request ID and
// asserts it succeeded (entering it into the tenant's ledger).
func translateAs(t testing.TB, ts *httptest.Server, dataset, id, spec string) api.TranslateResponse {
	t.Helper()
	status, hdr, raw := postJSONWithID(t, ts.URL+"/v2/"+dataset+"/translate", id,
		api.TranslateRequest{Queries: []api.KeywordsInput{{Spec: spec}}})
	if status != http.StatusOK {
		t.Fatalf("translate status = %d (body %s)", status, raw)
	}
	if got := hdr.Get("X-Request-ID"); got != id {
		t.Fatalf("echoed request id = %q, want %q", got, id)
	}
	var resp api.TranslateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].Error != nil || resp.Results[0].SQL == "" {
		t.Fatalf("translate did not serve SQL: %+v", resp.Results)
	}
	return resp
}

// feedbackServer hosts a live (appendable) MAS engine.
func feedbackServer(t testing.TB) *httptest.Server {
	t.Helper()
	ds := datasets.MAS()
	srv := NewServer(buildLiveSystem(t, ds, keyword.Options{}), ds.Name, 2)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func submitFeedback(t testing.TB, ts *httptest.Server, dataset string, req api.FeedbackRequest) (int, http.Header, []byte) {
	t.Helper()
	return postRaw(t, ts.URL+"/v2/"+dataset+"/feedback", req)
}

func TestFeedbackAccepted(t *testing.T) {
	ts := feedbackServer(t)
	tr := translateAs(t, ts, "mas", "fb-accept-1", "papers:select;Databases:where")

	var before api.HealthResponse
	getHealth(t, ts, &before)

	status, _, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-accept-1", Verdict: api.VerdictAccepted, Weight: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("feedback status = %d (body %s)", status, raw)
	}
	var resp api.FeedbackResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != "fb-accept-1" || resp.Verdict != api.VerdictAccepted || resp.Applied != 1 {
		t.Fatalf("unexpected response %+v", resp)
	}
	// The accepted SQL entered the live log: query count grew by the
	// confidence weight.
	if want := before.LogQueries + 3; resp.LogQueries != want {
		t.Fatalf("log_queries = %d, want %d (accepted weight 3)", resp.LogQueries, want)
	}
	_ = tr

	// Verdict counters surfaced on health and the dataset listing.
	var after api.HealthResponse
	getHealth(t, ts, &after)
	if after.Feedback == nil || after.Feedback.Accepted != 1 || after.Feedback.Recorded != 1 {
		t.Fatalf("health feedback status = %+v", after.Feedback)
	}
}

func TestFeedbackCorrected(t *testing.T) {
	ts := feedbackServer(t)
	translateAs(t, ts, "mas", "fb-corr-1", "papers:select;Databases:where")

	var before api.HealthResponse
	getHealth(t, ts, &before)

	status, _, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-corr-1", Verdict: api.VerdictCorrected,
		CorrectedSQL: "SELECT title FROM publication WHERE publication.title = 'Databases'",
		Weight:       2,
	})
	if status != http.StatusOK {
		t.Fatalf("feedback status = %d (body %s)", status, raw)
	}
	var resp api.FeedbackResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != api.VerdictCorrected || resp.Applied != 1 {
		t.Fatalf("unexpected response %+v", resp)
	}
	// The correction (not the served SQL) entered the log with its weight.
	if want := before.LogQueries + 2; resp.LogQueries != want {
		t.Fatalf("log_queries = %d, want %d (corrected weight 2)", resp.LogQueries, want)
	}
}

func TestFeedbackRejectedNeverAppends(t *testing.T) {
	ts := feedbackServer(t)
	translateAs(t, ts, "mas", "fb-rej-1", "papers:select;Databases:where")

	var before api.HealthResponse
	getHealth(t, ts, &before)

	status, _, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-rej-1", Verdict: api.VerdictRejected,
	})
	if status != http.StatusOK {
		t.Fatalf("feedback status = %d (body %s)", status, raw)
	}
	var resp api.FeedbackResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 0 || resp.WALSeq != 0 {
		t.Fatalf("rejection applied something: %+v", resp)
	}
	if resp.LogQueries != before.LogQueries {
		t.Fatalf("log grew on rejection: %d -> %d", before.LogQueries, resp.LogQueries)
	}
	// A rejection still consumes the verdict slot.
	status, hdr, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-rej-1", Verdict: api.VerdictAccepted,
	})
	wantProblem(t, status, hdr, raw, http.StatusConflict, api.CodeFeedbackConflict)
}

func getHealth(t testing.TB, ts *httptest.Server, out *api.HealthResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackErrorCodes(t *testing.T) {
	ts := feedbackServer(t)
	translateAs(t, ts, "mas", "fb-err-1", "papers:select;Databases:where")

	cases := []struct {
		name       string
		req        api.FeedbackRequest
		wantStatus int
		wantCode   string
	}{
		{"unknown id", api.FeedbackRequest{RequestID: "never-served", Verdict: api.VerdictAccepted},
			http.StatusNotFound, api.CodeUnknownRequestID},
		{"missing id", api.FeedbackRequest{Verdict: api.VerdictAccepted},
			http.StatusUnprocessableEntity, api.CodeValidation},
		{"bad verdict", api.FeedbackRequest{RequestID: "fb-err-1", Verdict: "maybe"},
			http.StatusUnprocessableEntity, api.CodeValidation},
		{"unparseable correction", api.FeedbackRequest{RequestID: "fb-err-1", Verdict: api.VerdictCorrected, CorrectedSQL: "DROP TABLE papers"},
			http.StatusUnprocessableEntity, api.CodeInvalidSQL},
		{"correction without sql", api.FeedbackRequest{RequestID: "fb-err-1", Verdict: api.VerdictCorrected},
			http.StatusUnprocessableEntity, api.CodeValidation},
		{"stray corrected_sql", api.FeedbackRequest{RequestID: "fb-err-1", Verdict: api.VerdictAccepted, CorrectedSQL: "SELECT title FROM publication"},
			http.StatusUnprocessableEntity, api.CodeValidation},
		{"weight over cap", api.FeedbackRequest{RequestID: "fb-err-1", Verdict: api.VerdictAccepted, Weight: MaxFeedbackWeight + 1},
			http.StatusUnprocessableEntity, api.CodeValidation},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, hdr, raw := submitFeedback(t, ts, "mas", tc.req)
			wantProblem(t, status, hdr, raw, tc.wantStatus, tc.wantCode)
		})
	}

	// None of the failures consumed the verdict slot: a valid correction
	// still lands.
	status, _, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-err-1", Verdict: api.VerdictCorrected,
		CorrectedSQL: "SELECT title FROM publication WHERE publication.title = 'x'",
	})
	if status != http.StatusOK {
		t.Fatalf("correction after failed submissions: status %d (body %s)", status, raw)
	}
	var resp api.FeedbackResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 1 {
		t.Fatalf("correction applied = %d, want 1", resp.Applied)
	}
	// ... and now the slot is consumed.
	status, hdr, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-err-1", Verdict: api.VerdictAccepted,
	})
	wantProblem(t, status, hdr, raw, http.StatusConflict, api.CodeFeedbackConflict)
}

func TestFeedbackFrozenLogReleasesClaim(t *testing.T) {
	// A frozen-log engine records served translations (the counters still
	// work) but cannot apply verdicts; the failed apply must not burn the
	// entry's one verdict slot.
	ds := datasets.MAS()
	srv := NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 2)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	translateAs(t, ts, "mas", "fb-frozen-1", "papers:select;Databases:where")
	status, hdr, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-frozen-1", Verdict: api.VerdictAccepted,
	})
	wantProblem(t, status, hdr, raw, http.StatusConflict, api.CodeLogFrozen)

	// The claim was released: the same verdict is retryable (and fails
	// the same way, not with feedback_conflict).
	status, hdr, raw = submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-frozen-1", Verdict: api.VerdictAccepted,
	})
	wantProblem(t, status, hdr, raw, http.StatusConflict, api.CodeLogFrozen)

	// Rejections don't append, so they work even on a frozen log.
	status, _, raw = submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-frozen-1", Verdict: api.VerdictRejected,
	})
	if status != http.StatusOK {
		t.Fatalf("rejection on frozen log: status %d (body %s)", status, raw)
	}
}

func TestFeedbackFollowerRedirectsToPrimary(t *testing.T) {
	ds := datasets.MAS()
	reg := NewRegistry()
	tn := &Tenant{
		Name:     ds.Name,
		Sys:      buildLiveSystem(t, ds, keyword.Options{}),
		Source:   "preloaded",
		Follower: &repl.Follower{},
		Primary:  "http://primary.example:8080",
	}
	if err := reg.Add(tn); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, ds.Name, 2, nil).Handler())
	t.Cleanup(ts.Close)

	buf, _ := json.Marshal(api.FeedbackRequest{RequestID: "x", Verdict: api.VerdictAccepted})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/mas/feedback", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://primary.example:8080/v2/mas/feedback" {
		t.Fatalf("Location = %q", loc)
	}
}

// TestFeedbackDurableAndRecovered proves an acked feedback append is a
// first-class WAL record: it survives a crash (boot from the same disk
// state) exactly like an explicit log append.
func TestFeedbackDurableAndRecovered(t *testing.T) {
	ds := datasets.MAS()
	storeDir, walDir := t.TempDir(), t.TempDir()
	tn, _ := durableTenant(t, ds, storeDir, walDir)
	ts, _ := durableServer(t, tn)

	translateAs(t, ts, "mas", "fb-dur-1", "papers:select;Databases:where")
	translateAs(t, ts, "mas", "fb-dur-2", "authors:select;Data Mining:where")

	status, _, raw := submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-dur-1", Verdict: api.VerdictAccepted, Weight: 2,
	})
	if status != http.StatusOK {
		t.Fatalf("accept status = %d (body %s)", status, raw)
	}
	var ack1 api.FeedbackResponse
	if err := json.Unmarshal(raw, &ack1); err != nil {
		t.Fatal(err)
	}
	if ack1.WALSeq == 0 {
		t.Fatal("accepted feedback carried no durability receipt")
	}
	status, _, raw = submitFeedback(t, ts, "mas", api.FeedbackRequest{
		RequestID: "fb-dur-2", Verdict: api.VerdictCorrected,
		CorrectedSQL: "SELECT name FROM author WHERE author.name = 'x'",
	})
	if status != http.StatusOK {
		t.Fatalf("correct status = %d (body %s)", status, raw)
	}
	var ack2 api.FeedbackResponse
	if err := json.Unmarshal(raw, &ack2); err != nil {
		t.Fatal(err)
	}
	if ack2.WALSeq != ack1.WALSeq+1 {
		t.Fatalf("wal_seq = %d, want %d", ack2.WALSeq, ack1.WALSeq+1)
	}

	probe := api.TranslateRequest{Queries: []api.KeywordsInput{{Spec: "papers:select;Databases:where"}}}
	var want api.TranslateResponse
	if s := postJSON(t, ts.URL+"/v2/mas/translate", probe, &want); s != http.StatusOK {
		t.Fatalf("probe status = %d", s)
	}

	// "Crash": boot a second tenant from the same store + WAL directories
	// without closing the first (per-append fsync already persisted the
	// acks).
	tn2, rec := durableTenant(t, ds, storeDir, walDir)
	if got := tn2.WAL.LastSeq(); got != uint64(ack2.WALSeq) {
		t.Fatalf("recovered LastSeq = %d, want %d", got, ack2.WALSeq)
	}
	if len(rec.Records) == 0 {
		t.Fatal("recovery replayed no records")
	}
	ts2, _ := durableServer(t, tn2)
	var got api.TranslateResponse
	if s := postJSON(t, ts2.URL+"/v2/mas/translate", probe, &got); s != http.StatusOK {
		t.Fatalf("recovered probe status = %d", s)
	}
	assertSameJSON(t, want, got)
}
