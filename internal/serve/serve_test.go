package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/internal/templar"
	"templar/pkg/api"
)

// buildGraph trains a QFG from a dataset's full gold-SQL log.
func buildGraph(t testing.TB, ds *datasets.Dataset) *qfg.Graph {
	t.Helper()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	return graph
}

// buildSystem assembles a Templar instance over a benchmark dataset with
// the QFG trained from the full gold-SQL log.
func buildSystem(t testing.TB, ds *datasets.Dataset, opts keyword.Options) *templar.System {
	t.Helper()
	return templar.New(ds.DB, embedding.New(), buildGraph(t, ds), templar.Options{Keyword: opts, LogJoin: true})
}

// buildLiveSystem is buildSystem over a live (appendable) log.
func buildLiveSystem(t testing.TB, ds *datasets.Dataset, opts keyword.Options) *templar.System {
	t.Helper()
	live := qfg.NewLive(buildGraph(t, ds))
	return templar.NewLive(ds.DB, embedding.New(), live, templar.Options{Keyword: opts, LogJoin: true})
}

func newTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	ds := datasets.MAS()
	srv := NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 4)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postJSON posts a body and decodes the response into out, returning the
// status code.
func postJSON(t testing.TB, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("status %d: undecodable body %q: %v", resp.StatusCode, raw, err)
		}
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Dataset != "MAS" || h.Relations == 0 || h.Workers != 4 {
		t.Fatalf("unexpected health %+v", h)
	}
}

func TestMapKeywordsHandler(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/v1/map-keywords"

	var resp api.MapKeywordsResponse
	status := postJSON(t, url, V1MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"},
		Top:           3,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(resp.Configurations) == 0 || len(resp.Configurations) > 3 {
		t.Fatalf("got %d configurations, want 1..3", len(resp.Configurations))
	}
	top := resp.Configurations[0]
	if len(top.Mappings) != 2 || top.Score <= 0 {
		t.Fatalf("malformed top configuration %+v", top)
	}

	// The structured form must be equivalent to the spec form.
	var structured api.MapKeywordsResponse
	status = postJSON(t, url, V1MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Keywords: []api.Keyword{
			{Text: "papers", Context: "select"},
			{Text: "Databases", Context: "where"},
		}},
		Top: 3,
	}, &structured)
	if status != http.StatusOK {
		t.Fatalf("structured status = %d", status)
	}
	if !reflect.DeepEqual(resp, structured) {
		t.Fatal("spec and structured keyword forms disagree")
	}
}

func TestMapKeywordsErrors(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/v1/map-keywords"

	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty", V1MapKeywordsRequest{}, http.StatusBadRequest},
		{"both forms", V1MapKeywordsRequest{KeywordsInput: api.KeywordsInput{
			Spec:     "papers:select",
			Keywords: []api.Keyword{{Text: "papers", Context: "select"}},
		}}, http.StatusBadRequest},
		{"bad context", V1MapKeywordsRequest{KeywordsInput: api.KeywordsInput{
			Keywords: []api.Keyword{{Text: "papers", Context: "sideways"}},
		}}, http.StatusBadRequest},
		{"unmappable keyword", V1MapKeywordsRequest{KeywordsInput: api.KeywordsInput{
			Keywords: []api.Keyword{{Text: "zzzqqqxxyy", Context: "where"}},
		}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		var er V1Error
		if status := postJSON(t, url, tc.body, &er); status != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, status, tc.want)
		} else if er.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestInferJoinsHandler(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/v1/infer-joins"

	var resp api.InferJoinsResponse
	if status := postJSON(t, url, V1InferJoinsRequest{Relations: []string{"publication", "domain"}, TopK: 3}, &resp); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(resp.Paths) == 0 {
		t.Fatal("no paths")
	}
	if p := resp.Paths[0]; len(p.Relations) < 2 || len(p.Edges) == 0 || p.Goodness <= 0 {
		t.Fatalf("malformed path %+v", p)
	}

	// Self-join bag: duplicated relation must fork an instance.
	var fork api.InferJoinsResponse
	if status := postJSON(t, url, V1InferJoinsRequest{Relations: []string{"author", "author", "publication"}}, &fork); status != http.StatusOK {
		t.Fatalf("self-join status = %d", status)
	}
	found := false
	for _, rel := range fork.Paths[0].Relations {
		if rel == "author#2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("self-join fork missing from %v", fork.Paths[0].Relations)
	}

	var er V1Error
	if status := postJSON(t, url, V1InferJoinsRequest{Relations: []string{"nonesuch"}}, &er); status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown relation status = %d", status)
	}
	if status := postJSON(t, url, V1InferJoinsRequest{}, &er); status != http.StatusBadRequest {
		t.Fatalf("empty bag status = %d", status)
	}
}

func TestTranslateHandler(t *testing.T) {
	ts := newTestServer(t)

	var resp V1TranslateResponse
	status := postJSON(t, ts.URL+"/v1/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
		{Spec: "oops"}, // malformed: per-query error, not batch failure
		{Spec: "authors:select;Data Mining:where"},
	}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	for _, i := range []int{0, 2} {
		r := resp.Results[i]
		if r.Error != "" || r.SQL == "" || r.Config == nil || r.Path == nil {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
	if resp.Results[1].Error == "" || resp.Results[1].SQL != "" {
		t.Fatalf("result 1 should carry only an error: %+v", resp.Results[1])
	}

	var er V1Error
	if status := postJSON(t, ts.URL+"/v1/translate", api.TranslateRequest{}, &er); status != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", status)
	}
}

// TestConcurrentClients hammers one shared system from many goroutines
// across all three endpoints (run under -race to exercise the mapper cache,
// the cloned join graphs and the worker pool) and requires every client to
// observe the same answers.
func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t)

	var wantMap api.MapKeywordsResponse
	if s := postJSON(t, ts.URL+"/v1/map-keywords", V1MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"}, Top: 1,
	}, &wantMap); s != http.StatusOK {
		t.Fatalf("warmup map status = %d", s)
	}
	var wantTr V1TranslateResponse
	if s := postJSON(t, ts.URL+"/v1/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
		{Spec: "authors:select;Data Mining:where"},
	}}, &wantTr); s != http.StatusOK {
		t.Fatalf("warmup translate status = %d", s)
	}

	const clients, rounds = 8, 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (c + r) % 3 {
				case 0:
					var got api.MapKeywordsResponse
					if s := postJSON(t, ts.URL+"/v1/map-keywords", V1MapKeywordsRequest{
						KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"}, Top: 1,
					}, &got); s != http.StatusOK {
						t.Errorf("client %d: map status %d", c, s)
						return
					} else if !reflect.DeepEqual(got, wantMap) {
						t.Errorf("client %d: map answer diverged", c)
						return
					}
				case 1:
					var got api.InferJoinsResponse
					if s := postJSON(t, ts.URL+"/v1/infer-joins", V1InferJoinsRequest{
						Relations: []string{"author", "author", "publication"},
					}, &got); s != http.StatusOK {
						t.Errorf("client %d: joins status %d", c, s)
						return
					}
				default:
					var got V1TranslateResponse
					if s := postJSON(t, ts.URL+"/v1/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
						{Spec: "papers:select;Databases:where"},
						{Spec: "authors:select;Data Mining:where"},
					}}, &got); s != http.StatusOK {
						t.Errorf("client %d: translate status %d", c, s)
						return
					} else if !reflect.DeepEqual(got, wantTr) {
						t.Errorf("client %d: translate answer diverged", c)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestLogAppendHandler exercises the live-log path: appends through
// /v1/log must republish the snapshot (visible in /healthz) while a frozen
// system rejects appends with 409.
func TestLogAppendHandler(t *testing.T) {
	ds := datasets.MAS()
	srv := NewServer(buildLiveSystem(t, ds, keyword.Options{}), ds.Name, 4)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var before api.HealthResponse
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&before); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !before.LiveLog || before.LogQueries == 0 {
		t.Fatalf("live health = %+v", before)
	}

	var ar api.LogAppendResponse
	status := postJSON(t, ts.URL+"/v1/log", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT p.title FROM publication p WHERE p.citation_num > 50", Count: 3},
		{SQL: "SELECT a.name FROM author a"},
	}}, &ar)
	if status != http.StatusOK {
		t.Fatalf("append status = %d", status)
	}
	if ar.Appended != 2 || ar.LogQueries != before.LogQueries+4 {
		t.Fatalf("append response %+v (before %d queries)", ar, before.LogQueries)
	}

	// A session append blends cross-query evidence without error.
	status = postJSON(t, ts.URL+"/v1/log", api.LogAppendRequest{
		Queries: []api.LogEntry{
			{SQL: "SELECT j.name FROM journal j"},
			{SQL: "SELECT p.title FROM publication p"},
		},
		Session: true,
	}, &ar)
	if status != http.StatusOK {
		t.Fatalf("session append status = %d", status)
	}

	// Bad SQL rejects the whole batch atomically.
	var er V1Error
	status = postJSON(t, ts.URL+"/v1/log", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT a.name FROM author a"},
		{SQL: "SELEC nonsense"},
	}}, &er)
	if status != http.StatusBadRequest || er.Error == "" {
		t.Fatalf("bad SQL: status %d, err %q", status, er.Error)
	}
	var after api.HealthResponse
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if after.LogQueries != ar.LogQueries {
		t.Fatalf("rejected batch changed the log: %d vs %d", after.LogQueries, ar.LogQueries)
	}

	// Frozen systems refuse appends.
	frozen := httptest.NewServer(NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 2).Handler())
	t.Cleanup(frozen.Close)
	if status := postJSON(t, frozen.URL+"/v1/log", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT a.name FROM author a"},
	}}, &er); status != http.StatusConflict {
		t.Fatalf("frozen append status = %d, want 409", status)
	}
}

// TestLiveAppendsDuringTraffic hammers translate/map/log concurrently (run
// under -race): appends republish snapshots while readers translate, and
// nobody blocks or tears.
func TestLiveAppendsDuringTraffic(t *testing.T) {
	ds := datasets.MAS()
	srv := NewServer(buildLiveSystem(t, ds, keyword.Options{}), ds.Name, 4)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const clients, rounds = 6, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if (c+r)%2 == 0 {
					var got V1TranslateResponse
					if s := postJSON(t, ts.URL+"/v1/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
						{Spec: "papers:select;Databases:where"},
					}}, &got); s != http.StatusOK {
						t.Errorf("client %d: translate status %d", c, s)
						return
					} else if got.Results[0].Error != "" {
						t.Errorf("client %d: translate error %q", c, got.Results[0].Error)
						return
					}
				} else {
					var ar api.LogAppendResponse
					if s := postJSON(t, ts.URL+"/v1/log", api.LogAppendRequest{Queries: []api.LogEntry{
						{SQL: "SELECT p.title FROM publication p WHERE p.year > 2015"},
					}}, &ar); s != http.StatusOK {
						t.Errorf("client %d: append status %d", c, s)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestCanceledRequestContext drives the handlers with an already-canceled
// request context: they must return promptly without writing a response
// (the client is gone) and without panicking.
func TestCanceledRequestContext(t *testing.T) {
	ds := datasets.MAS()
	srv := NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 2)
	h := srv.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/map-keywords", V1MapKeywordsRequest{KeywordsInput: api.KeywordsInput{Spec: "papers:select"}}},
		{"/v1/translate", api.TranslateRequest{Queries: []api.KeywordsInput{{Spec: "papers:select;Databases:where"}}}},
	} {
		buf, err := json.Marshal(tc.body)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, tc.path, bytes.NewReader(buf)).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Body.Len() != 0 {
			t.Errorf("%s: canceled request still wrote %q", tc.path, rec.Body.String())
		}
	}
}

// TestSnapshotMapperMatchesMapPath is the consumer-level parity gate for
// the interned-fragment snapshot: for every benchmark task of every
// dataset, configurations and translations ranked against the compiled
// snapshot must equal the map-backed QFG path exactly.
func TestSnapshotMapperMatchesMapPath(t *testing.T) {
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			snapshot := buildSystem(t, ds, keyword.Options{})
			mapped := buildSystem(t, ds, keyword.Options{DisableSnapshot: true})
			for _, task := range ds.Tasks {
				gotCfg, gotErr := snapshot.MapKeywords(context.Background(), task.Keywords, nil)
				wantCfg, wantErr := mapped.MapKeywords(context.Background(), task.Keywords, nil)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s: error mismatch: snapshot=%v map=%v", task.ID, gotErr, wantErr)
				}
				if !reflect.DeepEqual(gotCfg, wantCfg) {
					t.Fatalf("%s: configurations diverged\nsnapshot: %v\nmap:      %v", task.ID, gotCfg, wantCfg)
				}
				gotTr, gotErr := snapshot.Translate(context.Background(), task.Keywords, nil)
				wantTr, wantErr := mapped.Translate(context.Background(), task.Keywords, nil)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s: translate error mismatch: snapshot=%v map=%v", task.ID, gotErr, wantErr)
				}
				if !reflect.DeepEqual(gotTr, wantTr) {
					t.Fatalf("%s: translations diverged\nsnapshot: %+v\nmap:      %+v", task.ID, gotTr, wantTr)
				}
			}
		})
	}
}

// BenchmarkTranslateEndToEnd measures POST /v1/translate through the full
// handler stack (decode, pool, mapper, join inference, SQL construction,
// encode) with the snapshot-backed scoring path.
func BenchmarkTranslateEndToEnd(b *testing.B) {
	ds := datasets.MAS()
	srv := NewServer(buildSystem(b, ds, keyword.Options{}), ds.Name, 4)
	h := srv.Handler()
	body, err := json.Marshal(api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
		{Spec: "authors:select;Data Mining:where"},
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/translate", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// TestIndexedMapperMatchesSeedPath verifies the hot-path refactor changes
// nothing observable: for every benchmark task of every dataset, the
// indexed/cached mapper must return exactly the configurations (and the
// translator exactly the translation) of the seed per-call scan path.
func TestIndexedMapperMatchesSeedPath(t *testing.T) {
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			indexed := buildSystem(t, ds, keyword.Options{})
			seed := buildSystem(t, ds, keyword.Options{DisableIndex: true})
			for _, task := range ds.Tasks {
				gotCfg, gotErr := indexed.MapKeywords(context.Background(), task.Keywords, nil)
				wantCfg, wantErr := seed.MapKeywords(context.Background(), task.Keywords, nil)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s: error mismatch: indexed=%v seed=%v", task.ID, gotErr, wantErr)
				}
				if !reflect.DeepEqual(gotCfg, wantCfg) {
					t.Fatalf("%s: configurations diverged\nindexed: %v\nseed:    %v", task.ID, gotCfg, wantCfg)
				}
				gotTr, gotErr := indexed.Translate(context.Background(), task.Keywords, nil)
				wantTr, wantErr := seed.Translate(context.Background(), task.Keywords, nil)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s: translate error mismatch: indexed=%v seed=%v", task.ID, gotErr, wantErr)
				}
				if !reflect.DeepEqual(gotTr, wantTr) {
					t.Fatalf("%s: translations diverged\nindexed: %+v\nseed:    %+v", task.ID, gotTr, wantTr)
				}
			}
		})
	}
}
