package serve

import (
	"errors"
	"net/http"
	"strings"

	"templar/internal/fragment"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/templar"
	"templar/pkg/api"
)

// This file is the boundary between the public wire contract (pkg/api)
// and the engine types: decoding api requests into keyword/engine values
// and encoding engine results back into api responses. The serving layer
// never leaks an engine type onto the wire and never parses JSON outside
// of it.

// decodeKeywords converts a wire KeywordsInput to mapper keywords,
// reporting violations as structured validation errors.
func decodeKeywords(in api.KeywordsInput) ([]keyword.Keyword, *api.Error) {
	switch {
	case in.Spec != "" && len(in.Keywords) > 0:
		return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: set either keywords or spec, not both")
	case in.Spec != "":
		kws, err := keyword.ParseSpec(in.Spec)
		if err != nil {
			return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error())
		}
		return kws, nil
	case len(in.Keywords) == 0:
		return nil, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, "serve: no keywords")
	}
	out := make([]keyword.Keyword, len(in.Keywords))
	for i, kj := range in.Keywords {
		if strings.TrimSpace(kj.Text) == "" {
			return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
				"serve: keyword %d has empty text", i)
		}
		kw := keyword.Keyword{Text: kj.Text}
		switch strings.ToLower(kj.Context) {
		case "select":
			kw.Meta.Context = fragment.Select
		case "where":
			kw.Meta.Context = fragment.Where
		case "from":
			kw.Meta.Context = fragment.From
		default:
			return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
				"serve: keyword %d has unknown context %q", i, kj.Context)
		}
		kw.Meta.Op = kj.Op
		if kj.Agg != "" {
			kw.Meta.Aggs = []string{strings.ToUpper(kj.Agg)}
		}
		kw.Meta.GroupBy = kj.GroupBy
		out[i] = kw
	}
	return out, nil
}

// decodeCallOptions translates wire-level engine knobs into a
// templar.CallOptions, validating the obscurity assertion's spelling
// (the engine validates its lineage).
func decodeCallOptions(co api.CallOptions, topConfigs, topPaths int) (*templar.CallOptions, *api.Error) {
	out := &templar.CallOptions{
		MaxCandidates:     co.MaxCandidates,
		MaxConfigurations: co.MaxConfigurations,
		TopConfigs:        topConfigs,
		TopPaths:          topPaths,
	}
	switch co.Obscurity {
	case "":
	case api.ObscurityFull:
		ob := fragment.Full
		out.Obscurity = &ob
	case api.ObscurityNoConst:
		ob := fragment.NoConst
		out.Obscurity = &ob
	case api.ObscurityNoConstOp:
		ob := fragment.NoConstOp
		out.Obscurity = &ob
	default:
		return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
			"serve: unknown obscurity %q (want %q, %q or %q)",
			co.Obscurity, api.ObscurityFull, api.ObscurityNoConst, api.ObscurityNoConstOp)
	}
	return out, nil
}

// fromConfiguration renders one engine configuration on the wire.
func fromConfiguration(cfg keyword.Configuration) api.Configuration {
	out := api.Configuration{
		Mappings: make([]api.Mapping, len(cfg.Mappings)),
		SimScore: cfg.SimScore,
		QFGScore: cfg.QFGScore,
		Score:    cfg.Score,
	}
	for i, mp := range cfg.Mappings {
		mj := api.Mapping{
			Keyword:  mp.Keyword,
			Kind:     mp.Kind.String(),
			Relation: mp.Rel,
			GroupBy:  mp.GroupBy,
			Fragment: mp.Fragment(fragment.Full).String(),
			Sim:      mp.Sim,
		}
		if mp.Kind != keyword.KindRelation {
			mj.Attribute = mp.Attr
		}
		switch mp.Kind {
		case keyword.KindAttr:
			mj.Agg = mp.Agg
		case keyword.KindPred:
			mj.Op = mp.Op
			mj.Value = mp.Value.String()
		}
		out.Mappings[i] = mj
	}
	return out
}

func fromConfigurations(cfgs []keyword.Configuration) []api.Configuration {
	out := make([]api.Configuration, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = fromConfiguration(cfg)
	}
	return out
}

func fromPath(p joinpath.Path) api.Path {
	out := api.Path{
		Relations:   p.Relations,
		Edges:       make([]api.Edge, len(p.Edges)),
		TotalWeight: p.TotalWeight,
		Score:       p.Score,
		Goodness:    p.Goodness,
	}
	for i, e := range p.Edges {
		out.Edges[i] = api.Edge{From: e.FromInst, To: e.ToInst, Join: e.String(), Weight: e.Weight}
	}
	return out
}

func fromTranslation(tr *nlidb.Translation) api.TranslateResult {
	cfg := fromConfiguration(tr.Config)
	path := fromPath(tr.Path)
	return api.TranslateResult{
		SQL:      tr.SQL,
		Rendered: tr.Rendered,
		Score:    tr.Score,
		Tie:      tr.Tie,
		Config:   &cfg,
		Path:     &path,
	}
}

// engineError classifies an engine failure into the structured error
// model: obscurity assertions are validation failures, everything else a
// semantically-valid request the engine could not answer.
func engineError(err error) *api.Error {
	var mismatch *keyword.ObscurityMismatchError
	if errors.As(err, &mismatch) {
		return api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error())
	}
	return api.NewError(http.StatusUnprocessableEntity, api.CodeUnprocessable, err.Error())
}
