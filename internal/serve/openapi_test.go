package serve

import (
	"bufio"
	"os"
	"sort"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/keyword"
)

// openAPIOperations extracts "METHOD /path" pairs from docs/openapi.yaml
// with a minimal indentation-based scan (the repo takes no YAML
// dependency): path keys are two-space-indented entries under "paths:",
// HTTP methods four-space-indented entries under a path.
func openAPIOperations(t *testing.T) map[string]bool {
	t.Helper()
	f, err := os.Open("../../docs/openapi.yaml")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ops := map[string]bool{}
	inPaths := false
	curPath := ""
	methods := map[string]bool{"get": true, "post": true, "put": true, "delete": true, "patch": true}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimRight(line, " ")
		if strings.HasPrefix(trimmed, "#") || trimmed == "" {
			continue
		}
		switch {
		case !strings.HasPrefix(line, " "):
			inPaths = trimmed == "paths:"
			curPath = ""
		case inPaths && strings.HasPrefix(line, "  ") && !strings.HasPrefix(line, "   "):
			key := strings.TrimSuffix(strings.TrimSpace(trimmed), ":")
			if strings.HasPrefix(key, "/") {
				curPath = key
			}
		case inPaths && curPath != "" && strings.HasPrefix(line, "    ") && !strings.HasPrefix(line, "     "):
			key := strings.TrimSuffix(strings.TrimSpace(trimmed), ":")
			if methods[key] {
				ops[strings.ToUpper(key)+" "+curPath] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no operations parsed from docs/openapi.yaml")
	}
	return ops
}

// TestOpenAPISync is half of `make api-check`: docs/openapi.yaml must
// describe exactly the server's public v2 surface (every /healthz and
// /v2 route the server registers, and nothing else).
func TestOpenAPISync(t *testing.T) {
	documented := openAPIOperations(t)

	srv := NewServer(buildSystem(t, datasets.MAS(), keyword.Options{}), "MAS", 1)
	registered := map[string]bool{}
	for _, rt := range srv.Routes() {
		if rt.Pattern == "/healthz" || strings.HasPrefix(rt.Pattern, "/v2/") {
			registered[rt.Method+" "+rt.Pattern] = true
		}
	}

	var missing, stale []string
	for op := range registered {
		if !documented[op] {
			missing = append(missing, op)
		}
	}
	for op := range documented {
		if !registered[op] {
			stale = append(stale, op)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 || len(stale) > 0 {
		t.Fatalf("docs/openapi.yaml out of sync with serve.Server.Routes():\n"+
			"registered but undocumented: %v\ndocumented but unregistered: %v", missing, stale)
	}
	t.Logf("openapi sync: %d operations match", len(documented))
}
