// Package serve is the concurrent, multi-tenant HTTP serving layer: one
// process hosts any number of named datasets, each behind its own
// templar.System, with every CPU-heavy request fanned through one shared
// bounded worker pool.
//
// # Topology
//
// Registry maps dataset names (case-insensitive) to Tenants. The request
// hot path resolves a tenant with a single atomic pointer load; admin
// mutations clone and republish the tenant map copy-on-write — the same
// publication discipline qfg.Live uses for snapshots and templar.System
// for engines, one level up. Server wires the registry to the route
// table:
//
//	GET    /healthz                     liveness, per-dataset QFG stats, request metrics
//	GET    /v2/datasets                 hosted datasets (public discovery)
//	POST   /v2/{dataset}/map-keywords   MAPKEYWORDS on a named engine
//	POST   /v2/{dataset}/infer-joins    INFERJOINS on a named engine
//	POST   /v2/{dataset}/translate      batched NLQ→SQL translation
//	POST   /v2/{dataset}/log            live log appends (atomic per batch)
//	POST   /v1/...                      frozen legacy contract (adapter; see v1.go)
//	GET    /admin/datasets              tenants with engine stats
//	POST   /admin/datasets              materialize a dataset via the Loader
//	DELETE /admin/datasets/{name}       drop a tenant (the default is protected)
//
// NewServer builds the single-tenant shape (one dataset, legacy routes);
// NewRegistryServer the multi-tenant one. A Loader teaches the server how
// to materialize datasets on demand — cmd/templar-serve's loader reads
// packed snapshots from an internal/store directory and falls back to
// re-mining the SQL log.
//
// # Wire contract
//
// Request and response bodies are the public types of templar/pkg/api;
// this package only translates between them and the engine (encode.go).
// v2 errors are RFC-7807 problem documents (application/problem+json)
// with machine-readable codes; batch translation reports structured
// per-item errors so one bad query never fails its siblings. The v1
// routes keep the frozen legacy shapes in v1.go — a thin adapter over
// the same core operations, bit-identical on success.
//
// # Durability
//
// A Tenant may carry a write-ahead log (templar/internal/wal). AttachWAL
// (durable.go) opens it, reconciles it against the tenant's snapshot
// watermark, and replays the tail into the live engine; afterwards
// coreLogAppend writes each accepted batch to the WAL before touching
// the engine, and the wal_seq durability receipt rides back on the
// append response. Compactor (compact.go) folds grown logs back into
// fresh snapshot archives in the background. WAL stats surface on
// /healthz and the admin dataset listing. See docs/DURABILITY.md for
// the format, the recovery protocol, and the operator runbook.
//
// Request contexts ride into the worker pool and the engine itself:
// a disconnected client stops queued work from claiming workers and
// aborts configuration enumeration and join path search mid-flight.
//
// # Middleware
//
// Every request passes through the middleware stack (middleware.go):
// X-Request-ID assignment, optional access logging (WithAccessLog), and
// the in-flight / latency / error counters reported under "metrics" on
// /healthz. Request parsing is hardened with a body byte cap and batch
// size caps (WithLimits), answered with structured 413/422 errors.
package serve
