// Package serve is the concurrent, multi-tenant HTTP serving layer: one
// process hosts any number of named datasets, each behind its own
// templar.System, with every CPU-heavy request fanned through one shared
// bounded worker pool.
//
// # Topology
//
// Registry maps dataset names (case-insensitive) to Tenants. The request
// hot path resolves a tenant with a single atomic pointer load; admin
// mutations clone and republish the tenant map copy-on-write — the same
// publication discipline qfg.Live uses for snapshots and templar.System
// for engines, one level up. Server wires the registry to the route
// table:
//
//	GET    /healthz                     liveness + per-dataset QFG stats
//	POST   /v1/{dataset}/map-keywords   MAPKEYWORDS on a named engine
//	POST   /v1/{dataset}/infer-joins    INFERJOINS on a named engine
//	POST   /v1/{dataset}/translate      batched NLQ→SQL translation
//	POST   /v1/{dataset}/log            live log appends (atomic per batch)
//	POST   /v1/map-keywords …           legacy aliases for the default dataset
//	GET    /admin/datasets              tenants with engine stats
//	POST   /admin/datasets              materialize a dataset via the Loader
//	DELETE /admin/datasets/{name}       drop a tenant (the default is protected)
//
// NewServer builds the single-tenant shape (one dataset, legacy routes);
// NewRegistryServer the multi-tenant one. A Loader teaches the server how
// to materialize datasets on demand — cmd/templar-serve's loader reads
// packed snapshots from an internal/store directory and falls back to
// re-mining the SQL log.
//
// # Wire contract
//
// Request and response bodies are the JSON types in wire.go; errors use
// the uniform ErrorResponse envelope. Batch translation reports per-item
// errors so one bad query never fails its siblings; request contexts ride
// into the worker pool, so disconnected clients stop consuming workers.
package serve
