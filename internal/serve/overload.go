package serve

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"templar/pkg/api"
)

// The overload-control layer keeps the server alive on its worst days:
//
//   - Server-wide admission control bounds the admitted in-flight
//     requests. Past the bound the excess is shed with 429 + Retry-After
//     instead of queueing without limit — expensive endpoints shed first
//     (translate, then log appends, then map-keywords/infer-joins), so
//     under rising load the cheap read path keeps answering long after
//     translations started bouncing. Health probes, dataset discovery
//     and the admin API are never shed: operators must be able to see
//     and steer an overloaded server.
//
//   - Per-tenant token-bucket rate limits and in-flight quotas stop one
//     hot dataset from starving its siblings: a tenant past its quota
//     sheds its own traffic with 429 rate_limited while every other
//     tenant keeps its fair share of the admission budget.
//
//   - Graceful drain flips /healthz to "draining" (HTTP 503, so load
//     balancers stop routing), refuses new work with 503 draining +
//     Retry-After, and lets in-flight requests finish — the
//     rolling-restart half of the durability story (docs/OPERATIONS.md).
//
// Shed responses are written before any body is read and before any pool
// worker is claimed, so shedding costs microseconds — the property that
// makes admission control an overload defense rather than extra load.

// shedClass is a request's admission cost class.
type shedClass int

const (
	// classExempt requests bypass admission entirely: health probes,
	// dataset discovery, the admin API. They are never shed and never
	// counted in flight — a monitoring probe must not be able to wedge,
	// or be wedged by, an overloaded server.
	classExempt shedClass = iota
	// classQuery is the cheap read path (map-keywords, infer-joins):
	// shed only when admitted load reaches the full bound.
	classQuery
	// classLog is log appends (parse + WAL fsync + snapshot republish):
	// shed at 3/4 of the bound.
	classLog
	// classTranslate is full translations (enumeration + Steiner search
	// per batch item), the most expensive work: shed first, at 1/2 of
	// the bound.
	classTranslate
)

// classLimit returns the admitted-in-flight watermark at which class is
// shed, given the server-wide bound. Fractions are chosen so the classes
// shed strictly in cost order and every class keeps at least one slot.
func classLimit(bound int64, class shedClass) int64 {
	var lim int64
	switch class {
	case classTranslate:
		lim = bound / 2
	case classLog:
		lim = bound * 3 / 4
	default:
		lim = bound
	}
	if lim < 1 {
		lim = 1
	}
	return lim
}

// classify maps a request path to its admission class. Unknown paths
// (404s from the mux) ride the cheapest class — they answer in
// microseconds and shedding them would mask routing errors as overload.
func classify(path string) shedClass {
	switch {
	case path == "/healthz",
		path == "/v2/datasets",
		strings.HasPrefix(path, "/admin/"),
		strings.HasPrefix(path, "/debug/"):
		return classExempt
	case strings.HasSuffix(path, "/translate"):
		return classTranslate
	case strings.HasSuffix(path, "/log"),
		// Feedback is a write like a log append: shed it at the same
		// pressure tier so learning yields to read traffic under load.
		strings.HasSuffix(path, "/feedback"):
		return classLog
	default:
		return classQuery
	}
}

// admission is the server-wide admitted-request accounting: one atomic
// gauge bounded by max, per-class shed counters, and the drain flag.
type admission struct {
	// max is the admitted in-flight bound; 0 means unbounded (requests
	// are still counted, so drain and /healthz stay accurate).
	max int64

	inFlight atomic.Int64
	admitted atomic.Int64
	draining atomic.Bool

	shedTranslate atomic.Int64
	shedLog       atomic.Int64
	shedQuery     atomic.Int64
	shedDraining  atomic.Int64
}

// admit claims an in-flight slot for class, reporting false when the
// class's watermark is reached (the caller sheds). Exempt classes never
// claim a slot. The CAS loop keeps the gauge exact under concurrency: two
// racing requests cannot both take the last slot below a watermark.
func (a *admission) admit(class shedClass) bool {
	if class == classExempt {
		return true
	}
	if a.max <= 0 {
		a.inFlight.Add(1)
		a.admitted.Add(1)
		return true
	}
	limit := classLimit(a.max, class)
	for {
		cur := a.inFlight.Load()
		if cur >= limit {
			a.shedCounter(class).Add(1)
			return false
		}
		if a.inFlight.CompareAndSwap(cur, cur+1) {
			a.admitted.Add(1)
			return true
		}
	}
}

// release returns an admitted request's slot.
func (a *admission) release(class shedClass) {
	if class != classExempt {
		a.inFlight.Add(-1)
	}
}

func (a *admission) shedCounter(class shedClass) *atomic.Int64 {
	switch class {
	case classTranslate:
		return &a.shedTranslate
	case classLog:
		return &a.shedLog
	default:
		return &a.shedQuery
	}
}

// snapshot renders the admission state for /healthz.
func (a *admission) snapshot() *api.OverloadStatus {
	return &api.OverloadStatus{
		MaxInFlight:   int(a.max),
		InFlight:      a.inFlight.Load(),
		Admitted:      a.admitted.Load(),
		Draining:      a.draining.Load(),
		ShedTranslate: a.shedTranslate.Load(),
		ShedLog:       a.shedLog.Load(),
		ShedQuery:     a.shedQuery.Load(),
		ShedDraining:  a.shedDraining.Load(),
	}
}

// WithAdmission bounds the server-wide admitted in-flight requests.
// Past the bound, requests are shed with 429 overloaded + Retry-After in
// cost order: translate at half the bound, log appends at three quarters,
// map-keywords/infer-joins at the full bound. Health probes, /v2/datasets
// and /admin are never shed. maxInFlight <= 0 leaves admission unbounded
// (the development default); production deployments should set it to the
// concurrency the hardware actually sustains (see docs/OPERATIONS.md).
func (s *Server) WithAdmission(maxInFlight int) *Server {
	if maxInFlight > 0 {
		s.adm.max = int64(maxInFlight)
	}
	return s
}

// WithTenantDefaults applies limits to every tenant that has no explicit
// override (PUT /admin/datasets/{name}/limits sets overrides). The zero
// value removes the default.
func (s *Server) WithTenantDefaults(l TenantLimits) *Server {
	if l == (TenantLimits{}) {
		s.tenantDefaults.Store(nil)
	} else {
		s.tenantDefaults.Store(&l)
	}
	return s
}

// BeginDrain flips the server into draining mode: /healthz answers 503
// with status "draining" (so load balancers stop routing here), every
// non-exempt request is refused with 503 draining + Retry-After, and
// already-admitted requests run to completion. Idempotent; there is no
// undo — a draining server exits.
func (s *Server) BeginDrain() {
	s.adm.draining.Store(true)
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.adm.draining.Load() }

// DrainWait blocks until every admitted request has finished or ctx
// expires (returning its error). Call after BeginDrain: with admission
// closed the in-flight gauge only falls.
func (s *Server) DrainWait(ctx context.Context) error {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for s.adm.inFlight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// Overload returns the server-wide admission state (the same snapshot
// /healthz reports).
func (s *Server) Overload() api.OverloadStatus { return *s.adm.snapshot() }

// shedRetryAfter is the delay shed responses advise when no better
// estimate exists (per-tenant rate sheds compute the token wait instead).
// One second keeps well-behaved clients off a saturated server without
// parking them through a whole recovery.
const shedRetryAfter = time.Second

// writeShed writes a shed response: Retry-After plus the structured error
// in the dialect the path speaks (problem+json for v2/admin, the frozen
// envelope for v1). Shed responses are written by the admission layer
// before any handler runs, so they must pick the dialect from the path.
func (s *Server) writeShed(w http.ResponseWriter, r *http.Request, e *api.Error, retryAfter time.Duration) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		s.writeLegacyError(w, e)
		return
	}
	s.writeProblem(w, r, e)
}

// ---------------------------------------------------------------------------
// Per-tenant limits: token-bucket rate plus in-flight quota.

// TenantLimits bounds one tenant's admitted traffic. A zero field means
// "unlimited" for that dimension; the zero value as a whole means no
// limits. See api.TenantLimits for the wire twin.
type TenantLimits struct {
	// PerSecond is the sustained admitted request rate (token refill).
	PerSecond float64
	// Burst is the token-bucket capacity; 0 with PerSecond set defaults
	// to max(1, ceil(PerSecond)).
	Burst int
	// MaxInFlight caps the tenant's concurrently admitted requests.
	MaxInFlight int
}

// wire converts the limits to their pkg/api shape.
func (l TenantLimits) wire() *api.TenantLimits {
	return &api.TenantLimits{PerSecond: l.PerSecond, Burst: l.Burst, MaxInFlight: l.MaxInFlight}
}

// effectiveBurst is the bucket capacity the rate limiter actually uses.
func (l TenantLimits) effectiveBurst() float64 {
	if l.Burst > 0 {
		return float64(l.Burst)
	}
	b := math.Ceil(l.PerSecond)
	if b < 1 {
		b = 1
	}
	return b
}

// tenantLoad is one tenant's admission runtime state. It lives on the
// Tenant so limits survive server re-wraps and show on every listing.
type tenantLoad struct {
	limits   atomic.Pointer[TenantLimits] // explicit override; nil = server default
	inFlight atomic.Int64
	admitted atomic.Int64
	shedRate atomic.Int64
	shedInFl atomic.Int64

	// bucket is the token-bucket state, mutex-guarded: refills happen on
	// the admitting request's clock, so an idle bucket costs nothing.
	mu     sync.Mutex
	tokens float64
	last   time.Time
	// now is the bucket clock, swappable by tests; nil means time.Now.
	now func() time.Time
}

func (tl *tenantLoad) clock() time.Time {
	if tl.now != nil {
		return tl.now()
	}
	return time.Now()
}

// admitRate draws one token from the bucket, reporting how long the
// caller should wait when none is available.
func (tl *tenantLoad) admitRate(lim TenantLimits) (ok bool, retryAfter time.Duration) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	now := tl.clock()
	burst := lim.effectiveBurst()
	if tl.last.IsZero() {
		tl.tokens = burst // a fresh bucket starts full
	} else if dt := now.Sub(tl.last).Seconds(); dt > 0 {
		tl.tokens = math.Min(burst, tl.tokens+dt*lim.PerSecond)
	}
	tl.last = now
	if tl.tokens >= 1 {
		tl.tokens--
		return true, 0
	}
	wait := time.Duration((1 - tl.tokens) / lim.PerSecond * float64(time.Second))
	return false, wait
}

// SetLimits installs an explicit limit override on the tenant (visible on
// the next listing); the zero value clears it back to the server default.
func (t *Tenant) SetLimits(l TenantLimits) {
	if l == (TenantLimits{}) {
		t.load.limits.Store(nil)
		return
	}
	t.load.limits.Store(&l)
}

// Limits returns the tenant's explicit limit override, or nil.
func (t *Tenant) Limits() *TenantLimits { return t.load.limits.Load() }

// effectiveLimits resolves the limits admission enforces for t: the
// tenant's override when set, the server-wide default otherwise.
func (s *Server) effectiveLimits(t *Tenant) *TenantLimits {
	if l := t.load.limits.Load(); l != nil {
		return l
	}
	return s.tenantDefaults.Load()
}

// admitTenant runs the per-tenant admission checks, claiming a tenant
// in-flight slot on success. On shed it returns the structured 429 and
// the advised retry delay.
func (s *Server) admitTenant(t *Tenant) (ok bool, e *api.Error, retryAfter time.Duration) {
	lim := s.effectiveLimits(t)
	if lim == nil {
		t.load.inFlight.Add(1)
		t.load.admitted.Add(1)
		return true, nil, 0
	}
	if lim.PerSecond > 0 {
		if ok, wait := t.load.admitRate(*lim); !ok {
			t.load.shedRate.Add(1)
			e := api.Errorf(http.StatusTooManyRequests, api.CodeRateLimited,
				"serve: dataset %q is over its %.3g req/s rate limit", t.Name, lim.PerSecond)
			e.Dataset = t.Name
			return false, e, wait
		}
	}
	if max := int64(lim.MaxInFlight); max > 0 {
		for {
			cur := t.load.inFlight.Load()
			if cur >= max {
				t.load.shedInFl.Add(1)
				e := api.Errorf(http.StatusTooManyRequests, api.CodeRateLimited,
					"serve: dataset %q is at its in-flight quota of %d", t.Name, lim.MaxInFlight)
				e.Dataset = t.Name
				return false, e, shedRetryAfter
			}
			if t.load.inFlight.CompareAndSwap(cur, cur+1) {
				break
			}
		}
	} else {
		t.load.inFlight.Add(1)
	}
	t.load.admitted.Add(1)
	return true, nil, 0
}

// releaseTenant returns a tenant in-flight slot.
func releaseTenant(t *Tenant) { t.load.inFlight.Add(-1) }

// tenantLoadStatus renders a tenant's admission state for the listings.
func (s *Server) tenantLoadStatus(t *Tenant) *api.TenantLoad {
	out := &api.TenantLoad{
		InFlight:     t.load.inFlight.Load(),
		Admitted:     t.load.admitted.Load(),
		ShedRate:     t.load.shedRate.Load(),
		ShedInFlight: t.load.shedInFl.Load(),
	}
	if lim := s.effectiveLimits(t); lim != nil {
		out.Limits = lim.wire()
	}
	return out
}
