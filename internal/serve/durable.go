package serve

import (
	"fmt"

	"templar/internal/qfg"
	"templar/internal/repl"
	"templar/internal/store"
	"templar/internal/wal"
)

// AttachWAL opens (creating if absent) the tenant's write-ahead log under
// dir, replays every recovered record past the tenant's boot snapshot into
// the live engine, and arms the tenant so subsequent log appends are made
// durable before they are applied or acknowledged.
//
// Replay is a filter, not a guess: the tenant's SnapshotSeq (the
// store.Archive.WalSeq its engine was loaded at; 0 for a built or
// preloaded engine) names the last record the snapshot already covers, and
// exactly the records after it are folded back in — through
// qfg.Live.Replay, so the recovered engine is byte-identical to one that
// never crashed. If the recovery found an interrupted compaction and the
// tenant has a StorePath, the compaction is completed here: the replayed
// engine is persisted at the recovered sequence and the rotated-out
// segment is released.
//
// AttachWAL fails on a frozen engine (nothing to replay into), on a log
// whose sequence range cannot be reconciled with the snapshot (a stale or
// foreign log — see docs/DURABILITY.md's runbook), and on any disk-level
// open or replay error. Call it at load time, before the tenant serves
// traffic; it does not lock against concurrent appends.
func AttachWAL(t *Tenant, dir string, opts wal.Options) (*wal.Recovery, error) {
	live := t.Sys.Live()
	if live == nil {
		return nil, fmt.Errorf("serve: dataset %q: cannot attach a write-ahead log to a frozen engine", t.Name)
	}
	if t.WAL != nil {
		return nil, fmt.Errorf("serve: dataset %q already has a write-ahead log attached", t.Name)
	}
	opts.CreateBase = t.SnapshotSeq
	l, rec, err := wal.Open(dir, t.Name, opts)
	if err != nil {
		return nil, err
	}

	// Reconcile the log's sequence range with the snapshot's coverage
	// before replaying anything. A log that ends behind the snapshot, or
	// whose records start past it, cannot have come from this snapshot's
	// lineage — applying it (or appending to it) would corrupt the engine
	// silently, so fail loud instead.
	if last := l.LastSeq(); last < t.SnapshotSeq {
		l.Close()
		return nil, fmt.Errorf(
			"serve: dataset %q: write-ahead log ends at sequence %d but the snapshot covers %d (stale or restored log); remove the log to continue from the snapshot alone",
			t.Name, last, t.SnapshotSeq)
	}
	ops := make([]qfg.ReplayOp, 0, len(rec.Records))
	for _, r := range rec.Records {
		if r.Seq <= t.SnapshotSeq {
			continue
		}
		if len(ops) == 0 && r.Seq != t.SnapshotSeq+1 {
			l.Close()
			return nil, fmt.Errorf(
				"serve: dataset %q: write-ahead log resumes at sequence %d but the snapshot covers %d; records in between are missing (snapshot/log mismatch)",
				t.Name, r.Seq, t.SnapshotSeq)
		}
		op, err := replayOp(r)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("serve: dataset %q: WAL record %d: %w", t.Name, r.Seq, err)
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 && l.LastSeq() > t.SnapshotSeq {
		l.Close()
		return nil, fmt.Errorf(
			"serve: dataset %q: write-ahead log is at sequence %d with no replayable records past the snapshot's %d (snapshot/log mismatch)",
			t.Name, l.LastSeq(), t.SnapshotSeq)
	}
	if err := live.Replay(ops); err != nil {
		l.Close()
		return nil, fmt.Errorf("serve: dataset %q: WAL replay: %w", t.Name, err)
	}
	t.WAL = l

	// A compaction that died between rotating the segment and persisting
	// its snapshot is completed now: the engine state just replayed covers
	// every record of both segments, so persisting it releases the
	// rotated-out one. No appendMu needed — the tenant is not serving yet.
	if rec.CompactionPending && t.StorePath != "" {
		if err := store.WriteFileAt(t.StorePath, t.Name, live.CurrentSnapshot(), l.LastSeq()); err != nil {
			return rec, fmt.Errorf("serve: dataset %q: completing interrupted compaction: %w", t.Name, err)
		}
		if err := l.FinishCompaction(); err != nil {
			return rec, fmt.Errorf("serve: dataset %q: completing interrupted compaction: %w", t.Name, err)
		}
	}
	return rec, nil
}

// replayOp converts a durably logged record back into the engine operation
// it acknowledged. The conversion lives in internal/repl (ToReplayOp)
// because replication followers must apply records exactly the way boot
// recovery does; this wrapper keeps the serve-layer call sites unchanged.
func replayOp(r *wal.Record) (qfg.ReplayOp, error) {
	return repl.ToReplayOp(r)
}
