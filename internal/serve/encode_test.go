package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/keyword"
	"templar/pkg/api"
)

// failingBody marshals unsuccessfully, standing in for the "server bug in a
// response struct" class of failure the buffered encode path exists for.
type failingBody struct{}

func (failingBody) MarshalJSON() ([]byte, error) {
	return nil, errors.New("synthetic marshal failure")
}

// TestWriteJSONMarshalFailure pins the failure contract: nothing reaches
// the wire before encoding succeeds, so a failing marshaler yields a clean
// 500 problem document (not a half-written 200) and bumps the
// encode-failure metric that /healthz reports.
func TestWriteJSONMarshalFailure(t *testing.T) {
	ds := datasets.MAS()
	srv := NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 2)
	rec := httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusOK, failingBody{})

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != api.ProblemContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, api.ProblemContentType)
	}
	var prob struct {
		Status int    `json:"status"`
		Code   string `json:"code"`
		Detail string `json:"detail"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &prob); err != nil {
		t.Fatalf("fallback body is not valid JSON: %v (%q)", err, rec.Body.String())
	}
	if prob.Status != 500 || prob.Code != string(api.CodeInternal) || prob.Detail == "" {
		t.Fatalf("fallback problem = %+v", prob)
	}
	if got := srv.metrics.encodeFailures.Load(); got != 1 {
		t.Fatalf("encodeFailures = %d, want 1", got)
	}
	if got := srv.metrics.snapshot(0).EncodeFailures; got != 1 {
		t.Fatalf("snapshot EncodeFailures = %d, want 1", got)
	}

	// A healthy write afterwards must be unaffected by the pooled buffer
	// the failure path recycled.
	rec2 := httptest.NewRecorder()
	srv.writeJSON(rec2, http.StatusOK, map[string]int{"ok": 1})
	if rec2.Code != http.StatusOK || strings.TrimSpace(rec2.Body.String()) != `{"ok":1}` {
		t.Fatalf("follow-up write corrupted: %d %q", rec2.Code, rec2.Body.String())
	}
}

// TestWriteJSONContentLength verifies every buffered response carries an
// exact Content-Length and a body of exactly that many bytes, end to end
// through a real handler.
func TestWriteJSONContentLength(t *testing.T) {
	ts := newTestServer(t)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	cl := resp.Header.Get("Content-Length")
	if cl == "" {
		t.Fatal("no Content-Length on a buffered JSON response")
	}
	n, err := strconv.Atoi(cl)
	if err != nil {
		t.Fatalf("Content-Length %q: %v", cl, err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != n {
		t.Fatalf("body is %d bytes, Content-Length says %d", len(body), n)
	}
	var health api.HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
}
