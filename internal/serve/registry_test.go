package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/pkg/api"
)

// wireKeywords converts benchmark task keywords to the structured wire
// form, so route tests drive the same workloads the evaluation does.
func wireKeywords(kws []keyword.Keyword) api.KeywordsInput {
	out := make([]api.Keyword, len(kws))
	for i, kw := range kws {
		kj := api.Keyword{Text: kw.Text, Op: kw.Meta.Op, GroupBy: kw.Meta.GroupBy}
		switch kw.Meta.Context {
		case fragment.Select:
			kj.Context = "select"
		case fragment.From:
			kj.Context = "from"
		default:
			kj.Context = "where"
		}
		if len(kw.Meta.Aggs) > 0 {
			kj.Agg = kw.Meta.Aggs[0]
		}
		out[i] = kj
	}
	return api.KeywordsInput{Keywords: out}
}

// translatableTask picks the first benchmark task the dataset's own engine
// can translate, so route assertions never hinge on a hand-invented spec
// being mappable.
func translatableTask(t testing.TB, ds *datasets.Dataset) datasets.Task {
	t.Helper()
	sys := buildSystem(t, ds, keyword.Options{})
	for _, task := range ds.Tasks {
		if _, err := sys.Translate(context.Background(), task.Keywords, nil); err == nil {
			return task
		}
	}
	t.Fatalf("%s: no translatable task", ds.Name)
	return datasets.Task{}
}

func TestRegistry(t *testing.T) {
	ds := datasets.MAS()
	sys := buildSystem(t, ds, keyword.Options{})
	reg := NewRegistry()
	if err := reg.Add(&Tenant{Name: "MAS", Sys: sys, Source: "built"}); err != nil {
		t.Fatal(err)
	}
	if reg.Get("mas") == nil || reg.Get("MAS") == nil || reg.Get("Mas") == nil {
		t.Fatal("lookups must be case-insensitive")
	}
	if err := reg.Add(&Tenant{Name: "mas", Sys: sys}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := reg.Add(&Tenant{Name: " ", Sys: sys}); err == nil {
		t.Fatal("blank name accepted")
	}
	if err := reg.Add(&Tenant{Name: "x"}); err == nil {
		t.Fatal("nil system accepted")
	}
	if err := reg.Add(&Tenant{Name: "Yelp", Sys: sys}); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, 2)
	for _, tn := range reg.Tenants() {
		names = append(names, tn.Name)
	}
	if !reflect.DeepEqual(names, []string{"MAS", "Yelp"}) {
		t.Fatalf("Tenants() order = %v", names)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d", reg.Len())
	}
	if !reg.Remove("YELP") {
		t.Fatal("Remove missed a registered tenant")
	}
	if reg.Remove("yelp") {
		t.Fatal("Remove found a dropped tenant")
	}
	if reg.Get("yelp") != nil || reg.Len() != 1 {
		t.Fatal("tenant still visible after Remove")
	}
}

// multiTenantServer hosts MAS and Yelp with MAS as the default, Yelp built
// through the store round trip so the scoped routes also exercise a
// store-loaded engine.
func multiTenantServer(t testing.TB, loader Loader) *httptest.Server {
	t.Helper()
	reg := NewRegistry()
	mas := datasets.MAS()
	if err := reg.Add(&Tenant{Name: mas.Name, Sys: buildLiveSystem(t, mas, keyword.Options{}), Source: "built"}); err != nil {
		t.Fatal(err)
	}
	yelp := datasets.Yelp()
	packed := store.Encode(yelp.Name, buildGraph(t, yelp).Snapshot(nil))
	ar, err := store.Decode(packed)
	if err != nil {
		t.Fatal(err)
	}
	live := qfg.NewLiveFromSnapshot(ar.Snapshot)
	sys := templar.NewLive(yelp.DB, embedding.New(), live, templar.Options{LogJoin: true})
	if err := reg.Add(&Tenant{Name: ar.Dataset, Sys: sys, Source: "store"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, mas.Name, 4, loader).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestDatasetScopedRoutes(t *testing.T) {
	ts := multiTenantServer(t, nil)

	// Each dataset answers over its own schema and workload.
	var masResp, yelpResp V1TranslateResponse
	if s := postJSON(t, ts.URL+"/v1/mas/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
	}}, &masResp); s != http.StatusOK {
		t.Fatalf("mas translate status = %d", s)
	}
	yelpTask := translatableTask(t, datasets.Yelp())
	if s := postJSON(t, ts.URL+"/v1/yelp/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
		wireKeywords(yelpTask.Keywords),
	}}, &yelpResp); s != http.StatusOK {
		t.Fatalf("yelp translate status = %d", s)
	}
	if masResp.Results[0].Error != "" || !strings.Contains(masResp.Results[0].SQL, "publication") {
		t.Fatalf("mas result %+v", masResp.Results[0])
	}
	if yelpResp.Results[0].Error != "" || yelpResp.Results[0].SQL == "" {
		t.Fatalf("yelp result %+v (task %s)", yelpResp.Results[0], yelpTask.ID)
	}

	// The legacy unprefixed route answers exactly like the default scope.
	var legacy, scoped api.MapKeywordsResponse
	req := V1MapKeywordsRequest{KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"}, Top: 2}
	if s := postJSON(t, ts.URL+"/v1/map-keywords", req, &legacy); s != http.StatusOK {
		t.Fatalf("legacy status = %d", s)
	}
	if s := postJSON(t, ts.URL+"/v1/MAS/map-keywords", req, &scoped); s != http.StatusOK {
		t.Fatalf("scoped status = %d", s)
	}
	if !reflect.DeepEqual(legacy, scoped) {
		t.Fatal("legacy and scoped routes diverged on the default dataset")
	}

	// Unknown datasets 404 with the JSON error envelope.
	var er V1Error
	if s := postJSON(t, ts.URL+"/v1/imdb/map-keywords", req, &er); s != http.StatusNotFound || er.Error == "" {
		t.Fatalf("unknown dataset: status %d, err %q", s, er.Error)
	}

	// Scoped log appends land on the named dataset only.
	var before, after api.HealthResponse
	getJSON(t, ts.URL+"/healthz", &before)
	var ar api.LogAppendResponse
	if s := postJSON(t, ts.URL+"/v1/yelp/log", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT b.name FROM business b WHERE b.city = 'Dallas'", Count: 2},
	}}, &ar); s != http.StatusOK {
		t.Fatalf("yelp append status = %d", s)
	}
	getJSON(t, ts.URL+"/healthz", &after)
	stats := func(h api.HealthResponse, name string) api.DatasetStatus {
		for _, d := range h.Datasets {
			if strings.EqualFold(d.Name, name) {
				return d
			}
		}
		t.Fatalf("dataset %s missing from health %+v", name, h)
		return api.DatasetStatus{}
	}
	if got, want := stats(after, "Yelp").LogQueries, stats(before, "Yelp").LogQueries+2; got != want {
		t.Fatalf("yelp log queries = %d, want %d", got, want)
	}
	if stats(after, "MAS").LogQueries != stats(before, "MAS").LogQueries {
		t.Fatal("appending to yelp changed the MAS log")
	}
}

// TestStoreLoadedEngineParity drives the same requests against a built
// engine and a store-round-tripped engine of the same dataset: the HTTP
// answers must be byte-identical.
func TestStoreLoadedEngineParity(t *testing.T) {
	ds := datasets.IMDB()
	builtSys := buildSystem(t, ds, keyword.Options{})
	ar, err := store.Decode(store.Encode(ds.Name, buildGraph(t, ds).Snapshot(nil)))
	if err != nil {
		t.Fatal(err)
	}
	loadedSys := templar.NewFromSnapshot(ds.DB, embedding.New(), ar.Snapshot, templar.Options{LogJoin: true})

	built := httptest.NewServer(NewServer(builtSys, ds.Name, 2).Handler())
	t.Cleanup(built.Close)
	loaded := httptest.NewServer(NewServer(loadedSys, ds.Name, 2).Handler())
	t.Cleanup(loaded.Close)

	checked := 0
	for _, task := range ds.Tasks {
		if checked == 25 {
			break
		}
		req := api.TranslateRequest{Queries: []api.KeywordsInput{wireKeywords(task.Keywords)}}
		var a, b V1TranslateResponse
		if s := postJSON(t, built.URL+"/v1/translate", req, &a); s != http.StatusOK {
			t.Fatalf("%s: built status %d", task.ID, s)
		}
		if s := postJSON(t, loaded.URL+"/v1/translate", req, &b); s != http.StatusOK {
			t.Fatalf("%s: loaded status %d", task.ID, s)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: built and store-loaded engines diverged:\nbuilt:  %+v\nloaded: %+v", task.ID, a, b)
		}
		if a.Results[0].Error == "" {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no successful translations compared")
	}
}

func TestAdminEndpoints(t *testing.T) {
	loads := 0
	loader := func(ctx context.Context, name string) (*Tenant, error) {
		for _, ds := range datasets.All() {
			if strings.EqualFold(ds.Name, name) {
				loads++
				return &Tenant{Name: ds.Name, Sys: buildSystem(t, ds, keyword.Options{}), Source: "built"}, nil
			}
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	ts := multiTenantServer(t, loader)

	var list api.DatasetsResponse
	getJSON(t, ts.URL+"/admin/datasets", &list)
	if len(list.Datasets) != 2 {
		t.Fatalf("admin list %+v", list)
	}
	if d := list.Datasets[0]; d.Name != "MAS" || !d.Default || !d.LiveLog || d.LogQueries == 0 || d.Relations == 0 {
		t.Fatalf("MAS stats %+v", d)
	}
	if d := list.Datasets[1]; d.Name != "Yelp" || d.Default || d.Source != "store" {
		t.Fatalf("Yelp stats %+v", d)
	}

	// Load IMDB through the admin API, then query it.
	var created api.DatasetStatus
	if s := postJSON(t, ts.URL+"/admin/datasets", api.AdminLoadRequest{Name: "imdb"}, &created); s != http.StatusCreated {
		t.Fatalf("load status = %d", s)
	}
	if created.Name != "IMDB" || created.Source != "built" || loads != 1 {
		t.Fatalf("created %+v after %d loads", created, loads)
	}
	var tr V1TranslateResponse
	if s := postJSON(t, ts.URL+"/v1/imdb/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
		wireKeywords(translatableTask(t, datasets.IMDB()).Keywords),
	}}, &tr); s != http.StatusOK || tr.Results[0].Error != "" {
		t.Fatalf("imdb after load: status %d, %+v", s, tr.Results)
	}

	var er V1Error
	if s := postJSON(t, ts.URL+"/admin/datasets", api.AdminLoadRequest{Name: "imdb"}, &er); s != http.StatusConflict {
		t.Fatalf("duplicate load status = %d", s)
	}
	if s := postJSON(t, ts.URL+"/admin/datasets", api.AdminLoadRequest{Name: "nonesuch"}, &er); s != http.StatusNotFound {
		t.Fatalf("unknown load status = %d", s)
	}
	if s := postJSON(t, ts.URL+"/admin/datasets", api.AdminLoadRequest{}, &er); s != http.StatusBadRequest {
		t.Fatalf("empty load status = %d", s)
	}

	// Remove IMDB; its routes 404 afterwards, and the default is protected.
	var rm api.AdminRemoveResponse
	if s := deleteJSON(t, ts.URL+"/admin/datasets/imdb", &rm); s != http.StatusOK || rm.Removed != "imdb" {
		t.Fatalf("remove: status %d, %+v", s, rm)
	}
	if s := deleteJSON(t, ts.URL+"/admin/datasets/imdb", &er); s != http.StatusNotFound {
		t.Fatalf("re-remove status = %d", s)
	}
	if s := postJSON(t, ts.URL+"/v1/imdb/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "movies:select"},
	}}, &er); s != http.StatusNotFound {
		t.Fatalf("removed dataset still answers: %d", s)
	}
	if s := deleteJSON(t, ts.URL+"/admin/datasets/mas", &er); s != http.StatusConflict {
		t.Fatalf("default removal status = %d", s)
	}

	// Without a loader, POST /admin/datasets is 501.
	noLoader := multiTenantServer(t, nil)
	if s := postJSON(t, noLoader.URL+"/admin/datasets", api.AdminLoadRequest{Name: "imdb"}, &er); s != http.StatusNotImplemented {
		t.Fatalf("no-loader status = %d", s)
	}
}

// TestMultiTenantConcurrent serves all three datasets from one process and
// hammers scoped translations, live appends and admin listings from many
// goroutines (run under -race): per-dataset answers must stay stable while
// a sibling dataset's log keeps growing.
func TestMultiTenantConcurrent(t *testing.T) {
	reg := NewRegistry()
	for _, ds := range datasets.All() {
		if err := reg.Add(&Tenant{Name: ds.Name, Sys: buildLiveSystem(t, ds, keyword.Options{}), Source: "built"}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewRegistryServer(reg, "MAS", 4, nil).Handler())
	t.Cleanup(ts.Close)

	specs := map[string]api.KeywordsInput{
		"mas":  {Spec: "papers:select;Databases:where"},
		"yelp": wireKeywords(translatableTask(t, datasets.Yelp()).Keywords),
		"imdb": wireKeywords(translatableTask(t, datasets.IMDB()).Keywords),
	}
	want := make(map[string]V1TranslateResponse)
	for name, in := range specs {
		var resp V1TranslateResponse
		if s := postJSON(t, ts.URL+"/v1/"+name+"/translate", api.TranslateRequest{Queries: []api.KeywordsInput{in}}, &resp); s != http.StatusOK {
			t.Fatalf("%s warmup status %d", name, s)
		}
		if resp.Results[0].Error != "" {
			t.Fatalf("%s warmup error %q", name, resp.Results[0].Error)
		}
		want[name] = resp
	}

	names := []string{"mas", "yelp", "imdb"}
	const clients, rounds = 9, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := names[c%len(names)]
			for r := 0; r < rounds; r++ {
				switch r % 3 {
				case 0:
					var got V1TranslateResponse
					if s := postJSON(t, ts.URL+"/v1/"+name+"/translate", api.TranslateRequest{
						Queries: []api.KeywordsInput{specs[name]},
					}, &got); s != http.StatusOK {
						t.Errorf("client %d: %s translate status %d", c, name, s)
						return
					} else if got.Results[0].Error != "" {
						t.Errorf("client %d: %s translate error %q", c, name, got.Results[0].Error)
						return
					} else if name != "yelp" && !reflect.DeepEqual(got, want[name]) {
						// Appends target yelp only, so every other dataset's
						// answers must stay bit-stable — tenant isolation.
						t.Errorf("client %d: %s answer diverged", c, name)
						return
					}
				case 1:
					// Grow the Yelp log while every dataset keeps answering.
					var ar api.LogAppendResponse
					if s := postJSON(t, ts.URL+"/v1/yelp/log", api.LogAppendRequest{Queries: []api.LogEntry{
						{SQL: "SELECT b.name FROM business b WHERE b.city = 'Dallas'"},
					}}, &ar); s != http.StatusOK {
						t.Errorf("client %d: append status %d", c, s)
						return
					}
				default:
					var list api.DatasetsResponse
					if s := getJSON(t, ts.URL+"/admin/datasets", &list); s != http.StatusOK || len(list.Datasets) != 3 {
						t.Errorf("client %d: admin list status %d (%d datasets)", c, s, len(list.Datasets))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestAdminToken locks the admin routes behind a bearer token while the
// serving routes stay open.
func TestAdminToken(t *testing.T) {
	ds := datasets.MAS()
	reg := NewRegistry()
	if err := reg.Add(&Tenant{Name: ds.Name, Sys: buildSystem(t, ds, keyword.Options{}), Source: "built"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg, ds.Name, 2, nil).WithAdminToken("sesame").Handler())
	t.Cleanup(ts.Close)

	do := func(method, path, auth string) int {
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(`{"name":"yelp"}`)))
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, tc := range []struct {
		method, path, auth string
		want               int
	}{
		{http.MethodGet, "/admin/datasets", "", http.StatusUnauthorized},
		{http.MethodGet, "/admin/datasets", "Bearer wrong", http.StatusUnauthorized},
		{http.MethodGet, "/admin/datasets", "Bearer sesame", http.StatusOK},
		{http.MethodPost, "/admin/datasets", "", http.StatusUnauthorized},
		{http.MethodPost, "/admin/datasets", "Bearer sesame", http.StatusNotImplemented}, // authorized, but no loader
		{http.MethodDelete, "/admin/datasets/yelp", "", http.StatusUnauthorized},
		{http.MethodDelete, "/admin/datasets/yelp", "Bearer sesame", http.StatusNotFound},
	} {
		if got := do(tc.method, tc.path, tc.auth); got != tc.want {
			t.Errorf("%s %s auth=%q: status %d, want %d", tc.method, tc.path, tc.auth, got, tc.want)
		}
	}
	// Serving routes need no token.
	var resp api.MapKeywordsResponse
	if s := postJSON(t, ts.URL+"/v1/map-keywords", V1MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"}, Top: 1,
	}, &resp); s != http.StatusOK {
		t.Errorf("serving route demanded auth: status %d", s)
	}
}

// TestTenantIsolation floods one dataset's log with appends and asserts
// the sibling datasets' translations stay bit-identical: tenants share a
// process, a worker pool and nothing else.
func TestTenantIsolation(t *testing.T) {
	reg := NewRegistry()
	mas, yelp := datasets.MAS(), datasets.Yelp()
	for _, ds := range []*datasets.Dataset{mas, yelp} {
		if err := reg.Add(&Tenant{Name: ds.Name, Sys: buildLiveSystem(t, ds, keyword.Options{}), Source: "built"}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewRegistryServer(reg, mas.Name, 2, nil).Handler())
	t.Cleanup(ts.Close)

	var before V1TranslateResponse
	req := api.TranslateRequest{Queries: []api.KeywordsInput{{Spec: "papers:select;Databases:where"}}}
	if s := postJSON(t, ts.URL+"/v1/mas/translate", req, &before); s != http.StatusOK {
		t.Fatalf("warmup status %d", s)
	}
	var ar api.LogAppendResponse
	for i := 0; i < 25; i++ {
		if s := postJSON(t, ts.URL+"/v1/yelp/log", api.LogAppendRequest{Queries: []api.LogEntry{
			{SQL: "SELECT b.name FROM business b WHERE b.city = 'Dallas'", Count: 3},
		}}, &ar); s != http.StatusOK {
			t.Fatalf("append %d status %d", i, s)
		}
	}
	var after V1TranslateResponse
	if s := postJSON(t, ts.URL+"/v1/mas/translate", req, &after); s != http.StatusOK {
		t.Fatalf("post-append status %d", s)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("appends to the Yelp log changed a MAS translation")
	}
}

// getJSON fetches a URL and decodes the JSON response, returning the status.
func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// deleteJSON issues a DELETE and decodes the JSON response.
func deleteJSON(t testing.TB, url string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	return resp.StatusCode
}
