package serve

import (
	"errors"
	"net/http"
	"strconv"
	"strings"

	"templar/internal/repl"
	"templar/internal/store"
	"templar/internal/wal"
	"templar/pkg/api"
)

// maxTailRecords caps one tail response: a far-behind follower catches up
// over several round trips instead of one unbounded body, and each batch
// is validated and applied atomically on its side.
const maxTailRecords = 512

// replSource guards the two replication endpoints: only a primary — a
// live engine with a WAL attached, not itself a follower — can be tailed
// or snapshotted.
func (s *Server) replSource(w http.ResponseWriter, r *http.Request, t *Tenant) bool {
	switch {
	case t.Follower != nil:
		s.writeProblem(w, r, api.Errorf(http.StatusNotImplemented, api.CodeNotConfigured,
			"serve: dataset %q is a follower replica; replicate from the primary at %s", t.Name, t.Primary))
	case t.WAL == nil || t.Sys.Live() == nil:
		s.writeProblem(w, r, api.Errorf(http.StatusNotImplemented, api.CodeNotConfigured,
			"serve: dataset %q has no write-ahead log attached; start the primary with -wal to replicate it", t.Name))
	default:
		return true
	}
	return false
}

// handleV2WALTail serves GET /v2/{dataset}/wal?from={seq}: the WAL records
// after `from`, framed exactly as they sit in the segment (the wire format
// IS the disk format), newest-sequence header included so a caught-up
// follower still learns its lag from an empty batch. Refusals are typed:
// 410 wal_gap when `from` was compacted away (the follower must
// re-bootstrap from a snapshot), 409 conflict when `from` is ahead of the
// log (diverged lineage).
func (s *Server) handleV2WALTail(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if !s.replSource(w, r, t) {
		return
	}
	var from uint64
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeProblem(w, r, api.Errorf(http.StatusUnprocessableEntity, api.CodeValidation,
				"serve: bad from sequence %q", raw))
			return
		}
		from = v
	}
	recs, last, err := t.WAL.TailSince(from, maxTailRecords)
	switch {
	case errors.Is(err, wal.ErrGap):
		s.writeProblem(w, r, api.Errorf(http.StatusGone, api.CodeWALGap,
			"serve: dataset %q: %v; bootstrap from GET /v2/%s/snapshot", t.Name, err, strings.ToLower(t.Name)))
		return
	case errors.Is(err, wal.ErrAhead):
		s.writeProblem(w, r, api.Errorf(http.StatusConflict, api.CodeConflict,
			"serve: dataset %q: %v", t.Name, err))
		return
	case err != nil:
		s.writeProblem(w, r, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"serve: dataset %q: tail: %v", t.Name, err))
		return
	}
	w.Header().Set("Content-Type", repl.TailContentType)
	w.Header().Set(repl.HeaderLastSeq, strconv.FormatUint(last, 10))
	w.WriteHeader(http.StatusOK)
	var buf []byte
	for _, rec := range recs {
		buf = wal.EncodeRecord(buf[:0], rec)
		if _, err := w.Write(buf); err != nil {
			return // client gone mid-stream; it will re-fetch from its last applied seq
		}
	}
}

// handleV2Snapshot serves GET /v2/{dataset}/snapshot: the primary's
// current engine state as a packed .qfg archive stamped with the WAL
// sequence it covers — the watermark a follower bootstraps at and tails
// from. The (snapshot, sequence) pair is captured under the tenant's
// append lock so it is exact: the archive covers precisely the records up
// to its WalSeq, never one more or less.
func (s *Server) handleV2Snapshot(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if !s.replSource(w, r, t) {
		return
	}
	live := t.Sys.Live()
	var data []byte
	// Encoding the archive is CPU-heavy (it walks the full graph), so it
	// claims a pool worker like any other expensive request; only the
	// pointer capture holds the append lock.
	if s.pool.RunCtx(r.Context(), func() {
		t.appendMu.Lock()
		seq := t.WAL.LastSeq()
		snap := live.CurrentSnapshot()
		t.appendMu.Unlock()
		data = store.EncodeAt(t.Name, snap, seq)
	}) != nil {
		return // client gone before a worker freed up
	}
	w.Header().Set("Content-Type", repl.SnapshotContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// redirectToPrimary answers an append that reached a follower replica:
// 307 Temporary Redirect with the primary's address in Location, so SDK
// clients replay the request there transparently (nothing was applied
// here), plus a problem body naming the not_primary code for clients that
// do not follow redirects.
func (s *Server) redirectToPrimary(w http.ResponseWriter, r *http.Request, t *Tenant, v2 bool) {
	target := strings.TrimRight(t.Primary, "/") + r.URL.RequestURI()
	e := api.Errorf(http.StatusTemporaryRedirect, api.CodeNotPrimary,
		"serve: dataset %q is a read-only follower; append to the primary at %s", t.Name, target)
	e.Dataset = t.Name
	w.Header().Set("Location", target)
	if v2 {
		s.writeProblem(w, r, e)
	} else {
		s.writeJSON(w, http.StatusTemporaryRedirect, V1Error{Error: e.Detail})
	}
}
