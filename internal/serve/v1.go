package serve

import (
	"net/http"

	"templar/pkg/api"
)

// The v1 compatibility adapter. The legacy /v1 contract is frozen:
//
//   - errors are the {"error": "..."} string envelope (V1Error), never
//     problem+json,
//   - map-keywords takes "top" (and, since the v2 redesign, accepts
//     "top_k" as a synonym; infer-joins likewise accepts both),
//   - translate batch items carry plain string errors (V1TranslateResult).
//
// Success bodies are the shared pkg/api response types, so a v1 answer is
// bit-identical to its v2 twin — TestV1V2Parity holds the adapter to
// that. Only the three shapes above differ, and they live here; every
// other wire type moved to pkg/api.

// V1MapKeywordsRequest is the body of POST /v1/map-keywords. Top and
// TopK are synonyms; Top wins when both are set (it is the original v1
// spelling).
type V1MapKeywordsRequest struct {
	api.KeywordsInput
	Top  int `json:"top,omitempty"`
	TopK int `json:"top_k,omitempty"`
}

// V1InferJoinsRequest is the body of POST /v1/infer-joins. TopK is the
// original v1 spelling; Top is accepted as a synonym for symmetry with
// map-keywords.
type V1InferJoinsRequest struct {
	Relations []string `json:"relations"`
	TopK      int      `json:"top_k,omitempty"`
	Top       int      `json:"top,omitempty"`
}

// V1TranslateResult is one v1 batch entry: like api.TranslateResult but
// with the legacy string error.
type V1TranslateResult struct {
	SQL      string             `json:"sql,omitempty"`
	Rendered string             `json:"rendered,omitempty"`
	Score    float64            `json:"score,omitempty"`
	Tie      bool               `json:"tie,omitempty"`
	Config   *api.Configuration `json:"config,omitempty"`
	Path     *api.Path          `json:"path,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// V1TranslateResponse is the body of a successful v1 translate call.
type V1TranslateResponse struct {
	Results []V1TranslateResult `json:"results"`
}

// V1Error is the uniform v1 error envelope.
type V1Error struct {
	Error string `json:"error"`
}

// legacyStatus maps a structured error code onto the status the v1
// contract used for that failure class. v2 distinguishes validation
// failures (422) from malformed JSON (400); v1 lumped both under 400.
func legacyStatus(e *api.Error) int {
	switch e.Code {
	case api.CodeValidation, api.CodeBadRequest:
		return http.StatusBadRequest
	case api.CodeUnprocessable:
		return http.StatusUnprocessableEntity
	default:
		// New failure classes (413 body cap, 422 batch cap, ...) and
		// passthrough statuses (404, 409) keep their structured status.
		return e.Status
	}
}

// writeLegacyError renders a structured error in the frozen v1 envelope.
func (s *Server) writeLegacyError(w http.ResponseWriter, e *api.Error) {
	s.writeJSON(w, legacyStatus(e), V1Error{Error: e.Detail})
}

// writeV1 finishes a v1 request from a core-op result (see writeV2 for
// the tri-state contract).
func writeV1[T any](s *Server, w http.ResponseWriter, resp *T, apiErr *api.Error) {
	switch {
	case apiErr != nil:
		s.writeLegacyError(w, apiErr)
	case resp == nil:
		// Client gone: write nothing.
	default:
		s.writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleV1MapKeywords(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req V1MapKeywordsRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeLegacyError(w, apiErr)
		return
	}
	top := req.Top
	if top == 0 {
		top = req.TopK
	}
	resp, apiErr := s.coreMapKeywords(r.Context(), t.Sys, req.KeywordsInput, top, api.CallOptions{})
	writeV1(s, w, resp, apiErr)
}

func (s *Server) handleV1InferJoins(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req V1InferJoinsRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeLegacyError(w, apiErr)
		return
	}
	topK := req.TopK
	if topK == 0 {
		topK = req.Top
	}
	resp, apiErr := s.coreInferJoins(r.Context(), t.Sys, req.Relations, topK)
	writeV1(s, w, resp, apiErr)
}

func (s *Server) handleV1Translate(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req api.TranslateRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeLegacyError(w, apiErr)
		return
	}
	// v1 ignores the v2-only per-request options even if present.
	req.TopConfigs, req.TopPaths, req.CallOptions = 0, 0, api.CallOptions{}
	resp, apiErr := s.coreTranslate(r.Context(), t.Sys, req)
	if apiErr != nil || resp == nil {
		writeV1[api.TranslateResponse](s, w, nil, apiErr)
		return
	}
	legacy := V1TranslateResponse{Results: make([]V1TranslateResult, len(resp.Results))}
	for i, res := range resp.Results {
		lr := V1TranslateResult{
			SQL:      res.SQL,
			Rendered: res.Rendered,
			Score:    res.Score,
			Tie:      res.Tie,
			Config:   res.Config,
			Path:     res.Path,
		}
		if res.Error != nil {
			lr.Error = res.Error.Detail
		}
		legacy.Results[i] = lr
	}
	s.writeJSON(w, http.StatusOK, legacy)
}

func (s *Server) handleV1Log(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if t.Follower != nil {
		s.redirectToPrimary(w, r, t, false)
		return
	}
	var req api.LogAppendRequest
	if apiErr := s.readJSON(w, r, &req); apiErr != nil {
		s.writeLegacyError(w, apiErr)
		return
	}
	resp, apiErr := s.coreLogAppend(r.Context(), t, req)
	writeV1(s, w, resp, apiErr)
}
