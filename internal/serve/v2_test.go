package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/keyword"
	"templar/pkg/api"
)

// postRaw posts a body and returns status, headers and raw bytes.
func postRaw(t testing.TB, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// wantProblem decodes a problem+json body and asserts status + code.
func wantProblem(t testing.TB, status int, hdr http.Header, raw []byte, wantStatus int, wantCode string) *api.Error {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", status, wantStatus, raw)
	}
	if ct := hdr.Get("Content-Type"); ct != api.ProblemContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, api.ProblemContentType)
	}
	var e api.Error
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("undecodable problem body %q: %v", raw, err)
	}
	if e.Code != wantCode {
		t.Fatalf("code = %q, want %q (detail %q)", e.Code, wantCode, e.Detail)
	}
	if e.Status != wantStatus || e.Title == "" || e.Type == "" {
		t.Fatalf("incomplete problem document %+v", e)
	}
	return &e
}

func TestV2MapKeywords(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/v2/mas/map-keywords"

	var resp api.MapKeywordsResponse
	if s := postJSON(t, url, api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"},
		TopK:          3,
	}, &resp); s != http.StatusOK {
		t.Fatalf("status = %d", s)
	}
	if n := len(resp.Configurations); n == 0 || n > 3 {
		t.Fatalf("got %d configurations, want 1..3", n)
	}
	if top := resp.Configurations[0]; len(top.Mappings) != 2 || top.Score <= 0 {
		t.Fatalf("malformed top configuration %+v", top)
	}

	// Per-request engine knobs: a tighter candidate cap yields no more
	// configurations than the default.
	var tight api.MapKeywordsResponse
	if s := postJSON(t, url, api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select;Databases:where"},
		CallOptions:   api.CallOptions{MaxCandidates: 1, MaxConfigurations: 4},
	}, &tight); s != http.StatusOK {
		t.Fatalf("options status = %d", s)
	}
	if len(tight.Configurations) > 4 {
		t.Fatalf("max_configurations ignored: %d returned", len(tight.Configurations))
	}

	// Obscurity assertion: matching passes, mismatching is a structured
	// validation failure (the engine log is mined at no_const_op).
	if s := postJSON(t, url, api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select"},
		CallOptions:   api.CallOptions{Obscurity: api.ObscurityNoConstOp},
	}, &resp); s != http.StatusOK {
		t.Fatalf("matching obscurity status = %d", s)
	}
	status, hdr, raw := postRaw(t, url, api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select"},
		CallOptions:   api.CallOptions{Obscurity: api.ObscurityFull},
	})
	wantProblem(t, status, hdr, raw, http.StatusUnprocessableEntity, api.CodeValidation)
	status, hdr, raw = postRaw(t, url, api.MapKeywordsRequest{
		KeywordsInput: api.KeywordsInput{Spec: "papers:select"},
		CallOptions:   api.CallOptions{Obscurity: "sideways"},
	})
	wantProblem(t, status, hdr, raw, http.StatusUnprocessableEntity, api.CodeValidation)
}

func TestV2ErrorCodes(t *testing.T) {
	ts := newTestServer(t)

	for _, tc := range []struct {
		name       string
		path       string
		body       any
		wantStatus int
		wantCode   string
	}{
		{"unknown dataset", "/v2/nonesuch/map-keywords",
			api.MapKeywordsRequest{KeywordsInput: api.KeywordsInput{Spec: "papers:select"}},
			http.StatusNotFound, api.CodeUnknownDataset},
		{"no keywords", "/v2/mas/map-keywords", api.MapKeywordsRequest{},
			http.StatusUnprocessableEntity, api.CodeValidation},
		{"both forms", "/v2/mas/map-keywords", api.MapKeywordsRequest{KeywordsInput: api.KeywordsInput{
			Spec:     "papers:select",
			Keywords: []api.Keyword{{Text: "papers", Context: "select"}},
		}}, http.StatusUnprocessableEntity, api.CodeValidation},
		{"bad context", "/v2/mas/map-keywords", api.MapKeywordsRequest{KeywordsInput: api.KeywordsInput{
			Keywords: []api.Keyword{{Text: "papers", Context: "sideways"}},
		}}, http.StatusUnprocessableEntity, api.CodeValidation},
		{"unmappable keyword", "/v2/mas/map-keywords", api.MapKeywordsRequest{KeywordsInput: api.KeywordsInput{
			Keywords: []api.Keyword{{Text: "zzzqqqxxyy", Context: "where"}},
		}}, http.StatusUnprocessableEntity, api.CodeUnprocessable},
		{"no relations", "/v2/mas/infer-joins", api.InferJoinsRequest{},
			http.StatusUnprocessableEntity, api.CodeValidation},
		{"unknown relation", "/v2/mas/infer-joins", api.InferJoinsRequest{Relations: []string{"nonesuch"}},
			http.StatusUnprocessableEntity, api.CodeUnprocessable},
		{"empty batch", "/v2/mas/translate", api.TranslateRequest{},
			http.StatusUnprocessableEntity, api.CodeValidation},
		{"frozen log", "/v2/mas/log", api.LogAppendRequest{Queries: []api.LogEntry{
			{SQL: "SELECT a.name FROM author a"},
		}}, http.StatusConflict, api.CodeLogFrozen},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, hdr, raw := postRaw(t, ts.URL+tc.path, tc.body)
			e := wantProblem(t, status, hdr, raw, tc.wantStatus, tc.wantCode)
			if e.RequestID == "" {
				t.Fatal("problem document carries no request_id")
			}
		})
	}

	// Malformed JSON is a 400 bad_request.
	resp, err := http.Post(ts.URL+"/v2/mas/map-keywords", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantProblem(t, resp.StatusCode, resp.Header, raw, http.StatusBadRequest, api.CodeBadRequest)
}

// TestV2BatchAndBodyLimits exercises the hardening caps: an oversized
// body is a 413 body_too_large, oversized batches are 422
// batch_too_large, on both v2 (problem+json) and v1 (legacy envelope).
func TestV2BatchAndBodyLimits(t *testing.T) {
	ds := datasets.MAS()
	srv := NewServer(buildLiveSystem(t, ds, keyword.Options{}), ds.Name, 2).
		WithLimits(2048, 3, 2)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Body cap: a ~4KiB spec blows the 2KiB limit.
	big := api.MapKeywordsRequest{KeywordsInput: api.KeywordsInput{Spec: strings.Repeat("x", 4096)}}
	status, hdr, raw := postRaw(t, ts.URL+"/v2/mas/map-keywords", big)
	wantProblem(t, status, hdr, raw, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge)

	var legacy V1Error
	if s := postJSON(t, ts.URL+"/v1/map-keywords", big, &legacy); s != http.StatusRequestEntityTooLarge || legacy.Error == "" {
		t.Fatalf("v1 body cap: status %d, err %q", s, legacy.Error)
	}

	// Translate batch cap (3).
	batch := api.TranslateRequest{Queries: make([]api.KeywordsInput, 4)}
	for i := range batch.Queries {
		batch.Queries[i] = api.KeywordsInput{Spec: "papers:select"}
	}
	status, hdr, raw = postRaw(t, ts.URL+"/v2/mas/translate", batch)
	e := wantProblem(t, status, hdr, raw, http.StatusUnprocessableEntity, api.CodeBatchTooLarge)
	if !strings.Contains(e.Detail, "cap of 3") {
		t.Fatalf("detail %q does not name the cap", e.Detail)
	}
	if s := postJSON(t, ts.URL+"/v1/translate", batch, &legacy); s != http.StatusUnprocessableEntity {
		t.Fatalf("v1 translate cap: status %d", s)
	}

	// Log batch cap (2).
	appendReq := api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT a.name FROM author a"},
		{SQL: "SELECT a.name FROM author a"},
		{SQL: "SELECT a.name FROM author a"},
	}}
	status, hdr, raw = postRaw(t, ts.URL+"/v2/mas/log", appendReq)
	wantProblem(t, status, hdr, raw, http.StatusUnprocessableEntity, api.CodeBatchTooLarge)

	// At the cap everything still works.
	var ar api.LogAppendResponse
	if s := postJSON(t, ts.URL+"/v2/mas/log", api.LogAppendRequest{Queries: appendReq.Queries[:2]}, &ar); s != http.StatusOK || ar.Appended != 2 {
		t.Fatalf("at-cap append: status %d, %+v", s, ar)
	}
}

// TestV2TranslatePerItemErrors: structured per-item errors ride inline
// with successful siblings, and a malformed log batch names the failing
// entry in items.
func TestV2TranslatePerItemErrors(t *testing.T) {
	ts := newTestServer(t)

	var resp api.TranslateResponse
	if s := postJSON(t, ts.URL+"/v2/mas/translate", api.TranslateRequest{Queries: []api.KeywordsInput{
		{Spec: "papers:select;Databases:where"},
		{Spec: "oops"},
		{Keywords: []api.Keyword{{Text: "papers", Context: "sideways"}}},
	}}, &resp); s != http.StatusOK {
		t.Fatalf("status = %d", s)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if r := resp.Results[0]; r.Error != nil || r.SQL == "" || r.Config == nil || r.Path == nil {
		t.Fatalf("result 0 malformed: %+v", r)
	}
	for i, wantCode := range map[int]string{1: api.CodeValidation, 2: api.CodeValidation} {
		r := resp.Results[i]
		if r.Error == nil || r.SQL != "" {
			t.Fatalf("result %d should carry only an error: %+v", i, r)
		}
		if r.Error.Code != wantCode {
			t.Fatalf("result %d code = %q, want %q", i, r.Error.Code, wantCode)
		}
	}

	// Log append: the failing index is named in items.
	live := httptest.NewServer(NewServer(buildLiveSystem(t, datasets.MAS(), keyword.Options{}), "MAS", 2).Handler())
	t.Cleanup(live.Close)
	status, hdr, raw := postRaw(t, live.URL+"/v2/mas/log", api.LogAppendRequest{Queries: []api.LogEntry{
		{SQL: "SELECT a.name FROM author a"},
		{SQL: "SELEC nonsense"},
	}})
	e := wantProblem(t, status, hdr, raw, http.StatusUnprocessableEntity, api.CodeValidation)
	if len(e.Items) != 1 || e.Items[0].Index != 1 || e.Items[0].Detail == "" {
		t.Fatalf("items = %+v, want the failing entry at index 1", e.Items)
	}
}

// TestV2Datasets covers the public discovery endpoint.
func TestV2Datasets(t *testing.T) {
	ts := multiTenantServer(t, nil)
	var resp api.DatasetsResponse
	if s := getJSON(t, ts.URL+"/v2/datasets", &resp); s != http.StatusOK {
		t.Fatalf("status = %d", s)
	}
	if len(resp.Datasets) != 2 {
		t.Fatalf("datasets = %+v", resp.Datasets)
	}
	if d := resp.Datasets[0]; d.Name != "MAS" || !d.Default || d.Relations == 0 {
		t.Fatalf("MAS status %+v", d)
	}
}

// TestMiddleware covers the stack: request IDs are assigned (or echoed),
// the access log records one line per request, and /healthz reports the
// request counters.
func TestMiddleware(t *testing.T) {
	ds := datasets.MAS()
	var buf bytes.Buffer
	srv := NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 2).
		WithAccessLog(log.New(&buf, "", 0))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Assigned ID.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	assigned := resp.Header.Get("X-Request-ID")
	if assigned == "" {
		t.Fatal("no X-Request-ID assigned")
	}

	// Echoed ID, and the problem document carries it.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/nonesuch/translate", strings.NewReader(`{"queries":[{"spec":"papers:select"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "test-trace-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-trace-42" {
		t.Fatalf("echoed id = %q", got)
	}
	var e api.Error
	if err := json.Unmarshal(raw, &e); err != nil || e.RequestID != "test-trace-42" {
		t.Fatalf("problem request_id = %q (err %v)", e.RequestID, err)
	}

	// Access log: one line per request, carrying the ids.
	logged := buf.String()
	if !strings.Contains(logged, "path=/healthz status=200") ||
		!strings.Contains(logged, "req="+assigned) ||
		!strings.Contains(logged, "req=test-trace-42") {
		t.Fatalf("access log missing entries:\n%s", logged)
	}

	// Metrics on /healthz: requests counted, the 404 counted as a client
	// error, nothing in flight afterwards.
	var h api.HealthResponse
	if s := getJSON(t, ts.URL+"/healthz", &h); s != http.StatusOK {
		t.Fatalf("health status %d", s)
	}
	if h.Metrics == nil || h.Metrics.Requests < 2 || h.Metrics.ClientErrors < 1 {
		t.Fatalf("metrics = %+v", h.Metrics)
	}
	if h.Metrics.InFlight != 0 { // health probes are exempt from admission accounting
		t.Fatalf("in_flight = %d, want 0 (the probe must not count itself)", h.Metrics.InFlight)
	}
}

// TestV1V2Parity is the committed adapter gate: on all three datasets,
// the v1 routes must answer bit-identically to v2 for successful
// map-keywords, infer-joins and translate calls (the frozen legacy
// contract differs only in error shape and list-parameter spelling), and
// the v1 adapter must accept both "top" and "top_k".
func TestV1V2Parity(t *testing.T) {
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			srv := NewServer(buildSystem(t, ds, keyword.Options{}), ds.Name, 4)
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			base := ts.URL + "/v1/" + strings.ToLower(ds.Name)
			base2 := ts.URL + "/v2/" + strings.ToLower(ds.Name)

			checked := 0
			for _, task := range ds.Tasks {
				if checked == 10 {
					break
				}
				in := wireKeywords(task.Keywords)

				// map-keywords: v1 "top" and "top_k" both equal v2 "top_k".
				s1, _, raw1 := postRaw(t, base+"/map-keywords", V1MapKeywordsRequest{KeywordsInput: in, Top: 3})
				s1b, _, raw1b := postRaw(t, base+"/map-keywords", V1MapKeywordsRequest{KeywordsInput: in, TopK: 3})
				s2, _, raw2 := postRaw(t, base2+"/map-keywords", api.MapKeywordsRequest{KeywordsInput: in, TopK: 3})
				if s1 != s2 || s1 != s1b {
					t.Fatalf("%s: map statuses v1=%d v1(top_k)=%d v2=%d", task.ID, s1, s1b, s2)
				}
				if s1 == http.StatusOK {
					if !bytes.Equal(raw1, raw2) || !bytes.Equal(raw1b, raw2) {
						t.Fatalf("%s: map-keywords bodies diverged\nv1: %s\nv2: %s", task.ID, raw1, raw2)
					}
				}

				// translate: identical success bodies.
				s1, _, raw1 = postRaw(t, base+"/translate", api.TranslateRequest{Queries: []api.KeywordsInput{in}})
				s2, _, raw2 = postRaw(t, base2+"/translate", api.TranslateRequest{Queries: []api.KeywordsInput{in}})
				if s1 != s2 {
					t.Fatalf("%s: translate statuses v1=%d v2=%d", task.ID, s1, s2)
				}
				var v1r V1TranslateResponse
				if err := json.Unmarshal(raw1, &v1r); err != nil {
					t.Fatal(err)
				}
				if v1r.Results[0].Error == "" {
					if !bytes.Equal(raw1, raw2) {
						t.Fatalf("%s: translate bodies diverged\nv1: %s\nv2: %s", task.ID, raw1, raw2)
					}
					checked++

					// infer-joins over the winning path's base relations.
					var v2r api.TranslateResponse
					if err := json.Unmarshal(raw2, &v2r); err != nil {
						t.Fatal(err)
					}
					bag := map[string]bool{}
					var rels []string
					for _, inst := range v2r.Results[0].Path.Relations {
						name := inst
						if i := strings.IndexByte(name, '#'); i >= 0 {
							name = name[:i]
						}
						if !bag[name] {
							bag[name] = true
							rels = append(rels, name)
						}
					}
					s1, _, raw1 = postRaw(t, base+"/infer-joins", V1InferJoinsRequest{Relations: rels, TopK: 2})
					s1b, _, raw1b = postRaw(t, base+"/infer-joins", V1InferJoinsRequest{Relations: rels, Top: 2})
					s2, _, raw2 = postRaw(t, base2+"/infer-joins", api.InferJoinsRequest{Relations: rels, TopK: 2})
					if s1 != s2 || s1 != s1b {
						t.Fatalf("%s: infer statuses v1=%d v1(top)=%d v2=%d", task.ID, s1, s1b, s2)
					}
					if s1 == http.StatusOK && (!bytes.Equal(raw1, raw2) || !bytes.Equal(raw1b, raw2)) {
						t.Fatalf("%s: infer-joins bodies diverged\nv1: %s\nv2: %s", task.ID, raw1, raw2)
					}
				}
			}
			if checked == 0 {
				t.Fatal("no successful translations compared")
			}
		})
	}
}

// TestRoutesTable sanity-checks the registered surface the OpenAPI sync
// test builds on.
func TestRoutesTable(t *testing.T) {
	srv := NewServer(buildSystem(t, datasets.MAS(), keyword.Options{}), "MAS", 1)
	seen := map[string]bool{}
	for _, rt := range srv.Routes() {
		key := rt.Method + " " + rt.Pattern
		if seen[key] {
			t.Fatalf("duplicate route %s", key)
		}
		seen[key] = true
	}
	for _, want := range []string{
		"GET /healthz",
		"GET /v2/datasets",
		"POST /v2/{dataset}/map-keywords",
		"POST /v2/{dataset}/infer-joins",
		"POST /v2/{dataset}/translate",
		"POST /v2/{dataset}/log",
		"POST /v1/map-keywords",
		"POST /v1/{dataset}/translate",
		"DELETE /admin/datasets/{name}",
	} {
		if !seen[want] {
			t.Fatalf("route %s missing from table %v", want, seen)
		}
	}
}
