package serve

import (
	"fmt"
	"strings"

	"templar/internal/fragment"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/nlidb"
)

// KeywordJSON is one parsed NLQ keyword on the wire.
type KeywordJSON struct {
	Text string `json:"text"`
	// Context is "select", "where" or "from".
	Context string `json:"context"`
	// Op is the comparison operator for numeric WHERE keywords.
	Op string `json:"op,omitempty"`
	// Agg is an aggregate (COUNT, SUM, AVG, MIN, MAX) for SELECT keywords.
	Agg string `json:"agg,omitempty"`
	// GroupBy marks the mapped attribute for grouping.
	GroupBy bool `json:"group_by,omitempty"`
}

// KeywordsInput carries keywords either structured or as a compact
// keyword.ParseSpec string ("papers:select;Databases:where"); exactly one
// of the two must be set.
type KeywordsInput struct {
	Keywords []KeywordJSON `json:"keywords,omitempty"`
	Spec     string        `json:"spec,omitempty"`
}

// decode converts the input to mapper keywords.
func (in KeywordsInput) decode() ([]keyword.Keyword, error) {
	switch {
	case in.Spec != "" && len(in.Keywords) > 0:
		return nil, fmt.Errorf("serve: set either keywords or spec, not both")
	case in.Spec != "":
		return keyword.ParseSpec(in.Spec)
	case len(in.Keywords) == 0:
		return nil, fmt.Errorf("serve: no keywords")
	}
	out := make([]keyword.Keyword, len(in.Keywords))
	for i, kj := range in.Keywords {
		if strings.TrimSpace(kj.Text) == "" {
			return nil, fmt.Errorf("serve: keyword %d has empty text", i)
		}
		kw := keyword.Keyword{Text: kj.Text}
		switch strings.ToLower(kj.Context) {
		case "select":
			kw.Meta.Context = fragment.Select
		case "where":
			kw.Meta.Context = fragment.Where
		case "from":
			kw.Meta.Context = fragment.From
		default:
			return nil, fmt.Errorf("serve: keyword %d has unknown context %q", i, kj.Context)
		}
		kw.Meta.Op = kj.Op
		if kj.Agg != "" {
			kw.Meta.Aggs = []string{strings.ToUpper(kj.Agg)}
		}
		kw.Meta.GroupBy = kj.GroupBy
		out[i] = kw
	}
	return out, nil
}

// MapKeywordsRequest is the body of POST /v1/map-keywords.
type MapKeywordsRequest struct {
	KeywordsInput
	// Top caps the returned configurations (0 = all).
	Top int `json:"top,omitempty"`
}

// MappingJSON is one keyword→fragment mapping on the wire.
type MappingJSON struct {
	Keyword   string  `json:"keyword"`
	Kind      string  `json:"kind"` // "relation", "attribute", "predicate"
	Relation  string  `json:"relation"`
	Attribute string  `json:"attribute,omitempty"`
	Agg       string  `json:"agg,omitempty"`
	GroupBy   bool    `json:"group_by,omitempty"`
	Op        string  `json:"op,omitempty"`
	Value     string  `json:"value,omitempty"`
	Fragment  string  `json:"fragment"`
	Sim       float64 `json:"sim"`
}

// ConfigurationJSON is one ranked keyword-mapping configuration.
type ConfigurationJSON struct {
	Mappings []MappingJSON `json:"mappings"`
	SimScore float64       `json:"sim_score"`
	QFGScore float64       `json:"qfg_score"`
	Score    float64       `json:"score"`
}

// MapKeywordsResponse is the body of a successful map-keywords call.
type MapKeywordsResponse struct {
	Configurations []ConfigurationJSON `json:"configurations"`
}

// InferJoinsRequest is the body of POST /v1/infer-joins. Relations is a bag:
// repeating a relation requests self-join forking.
type InferJoinsRequest struct {
	Relations []string `json:"relations"`
	TopK      int      `json:"top_k,omitempty"`
}

// EdgeJSON is one join edge ("author.oid = organization.oid").
type EdgeJSON struct {
	From   string  `json:"from"`
	To     string  `json:"to"`
	Join   string  `json:"join"`
	Weight float64 `json:"weight"`
}

// PathJSON is one inferred join path.
type PathJSON struct {
	Relations   []string   `json:"relations"`
	Edges       []EdgeJSON `json:"edges"`
	TotalWeight float64    `json:"total_weight"`
	Score       float64    `json:"score"`
	Goodness    float64    `json:"goodness"`
}

// InferJoinsResponse is the body of a successful infer-joins call.
type InferJoinsResponse struct {
	Paths []PathJSON `json:"paths"`
}

// TranslateRequest is the body of POST /v1/translate: a batch of keyword
// queries translated concurrently over the server's worker pool.
type TranslateRequest struct {
	Queries []KeywordsInput `json:"queries"`
}

// TranslateResult is one batch entry: a translation or a per-query error
// (one bad query never fails its batch siblings).
type TranslateResult struct {
	SQL      string             `json:"sql,omitempty"`
	Rendered string             `json:"rendered,omitempty"`
	Score    float64            `json:"score,omitempty"`
	Tie      bool               `json:"tie,omitempty"`
	Config   *ConfigurationJSON `json:"config,omitempty"`
	Path     *PathJSON          `json:"path,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// TranslateResponse is the body of a successful translate call.
type TranslateResponse struct {
	Results []TranslateResult `json:"results"`
}

// LogEntryJSON is one SQL query appended to the live log.
type LogEntryJSON struct {
	SQL string `json:"sql"`
	// Count is the query's multiplicity (how many times it was issued);
	// values < 1 default to 1. Ignored for session appends.
	Count int `json:"count,omitempty"`
}

// LogAppendRequest is the body of POST /v1/log. With Session set, the
// queries are folded as one ordered user session (cross-query fragment
// pairs gain decayed co-occurrence evidence); otherwise each query is an
// independent log entry.
type LogAppendRequest struct {
	Queries []LogEntryJSON `json:"queries"`
	Session bool           `json:"session,omitempty"`
	// Decay is the per-step session decay in (0, 1]; 0 defaults to 0.5.
	Decay float64 `json:"decay,omitempty"`
}

// LogAppendResponse reports the log shape after a successful append.
type LogAppendResponse struct {
	Appended     int `json:"appended"`
	LogQueries   int `json:"log_queries"`
	LogFragments int `json:"log_fragments"`
	LogEdges     int `json:"log_edges"`
}

// ErrorResponse is the uniform error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DatasetStatusJSON is one hosted dataset's engine stats, shared by the
// health and admin bodies.
type DatasetStatusJSON struct {
	Name string `json:"name"`
	// Default marks the dataset the legacy unprefixed /v1/* routes alias.
	Default bool `json:"default,omitempty"`
	// Source is where the engine came from: "built" (log re-mine),
	// "store" (packed snapshot) or "preloaded".
	Source    string `json:"source,omitempty"`
	Relations int    `json:"relations"`
	// LiveLog reports whether POST /v1/{dataset}/log appends are enabled.
	LiveLog bool `json:"live_log"`
	// LogQueries/LogFragments/LogEdges describe the QFG snapshot currently
	// serving requests (all zero for a log-free baseline).
	LogQueries   int `json:"log_queries"`
	LogFragments int `json:"log_fragments"`
	LogEdges     int `json:"log_edges"`
	// LoadMillis is how long building or loading the engine took.
	LoadMillis float64 `json:"load_ms,omitempty"`
}

// HealthResponse is the body of GET /healthz. The top-level dataset fields
// mirror the default dataset for single-tenant clients; Datasets lists
// every hosted engine.
type HealthResponse struct {
	Status    string `json:"status"`
	Dataset   string `json:"dataset"`
	Relations int    `json:"relations"`
	Workers   int    `json:"workers"`
	// LiveLog reports whether POST /v1/log appends are enabled.
	LiveLog bool `json:"live_log"`
	// LogQueries/LogFragments/LogEdges describe the QFG snapshot currently
	// serving requests (all zero for a log-free baseline).
	LogQueries   int `json:"log_queries"`
	LogFragments int `json:"log_fragments"`
	LogEdges     int `json:"log_edges"`
	// Datasets lists every hosted dataset (multi-tenant view).
	Datasets []DatasetStatusJSON `json:"datasets,omitempty"`
}

// AdminDatasetsResponse is the body of GET /admin/datasets.
type AdminDatasetsResponse struct {
	Datasets []DatasetStatusJSON `json:"datasets"`
}

// AdminLoadRequest is the body of POST /admin/datasets: the name of a
// dataset the server's loader should materialize (from its snapshot store
// when packed, by re-mining the log otherwise).
type AdminLoadRequest struct {
	Name string `json:"name"`
}

// AdminRemoveResponse is the body of a successful DELETE
// /admin/datasets/{name}.
type AdminRemoveResponse struct {
	Removed string `json:"removed"`
}

// ---------------------------------------------------------------------------
// Conversions from internal types.

func fromConfiguration(cfg keyword.Configuration) ConfigurationJSON {
	out := ConfigurationJSON{
		Mappings: make([]MappingJSON, len(cfg.Mappings)),
		SimScore: cfg.SimScore,
		QFGScore: cfg.QFGScore,
		Score:    cfg.Score,
	}
	for i, mp := range cfg.Mappings {
		mj := MappingJSON{
			Keyword:  mp.Keyword,
			Kind:     mp.Kind.String(),
			Relation: mp.Rel,
			GroupBy:  mp.GroupBy,
			Fragment: mp.Fragment(fragment.Full).String(),
			Sim:      mp.Sim,
		}
		if mp.Kind != keyword.KindRelation {
			mj.Attribute = mp.Attr
		}
		switch mp.Kind {
		case keyword.KindAttr:
			mj.Agg = mp.Agg
		case keyword.KindPred:
			mj.Op = mp.Op
			mj.Value = mp.Value.String()
		}
		out.Mappings[i] = mj
	}
	return out
}

func fromConfigurations(cfgs []keyword.Configuration, top int) []ConfigurationJSON {
	if top > 0 && len(cfgs) > top {
		cfgs = cfgs[:top]
	}
	out := make([]ConfigurationJSON, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = fromConfiguration(cfg)
	}
	return out
}

func fromPath(p joinpath.Path) PathJSON {
	out := PathJSON{
		Relations:   p.Relations,
		Edges:       make([]EdgeJSON, len(p.Edges)),
		TotalWeight: p.TotalWeight,
		Score:       p.Score,
		Goodness:    p.Goodness,
	}
	for i, e := range p.Edges {
		out.Edges[i] = EdgeJSON{From: e.FromInst, To: e.ToInst, Join: e.String(), Weight: e.Weight}
	}
	return out
}

func fromTranslation(tr *nlidb.Translation) TranslateResult {
	cfg := fromConfiguration(tr.Config)
	path := fromPath(tr.Path)
	return TranslateResult{
		SQL:      tr.SQL,
		Rendered: tr.Rendered,
		Score:    tr.Score,
		Tie:      tr.Tie,
		Config:   &cfg,
		Path:     &path,
	}
}
