package serve

import (
	"context"
	"log"
	"time"

	"templar/internal/store"
)

// Compactor folds grown write-ahead logs back into packed snapshots in the
// background, bounding both replay time at the next boot and WAL disk use.
// One compactor sweeps every WAL-armed tenant of a registry on a timer;
// each sweep compacts the tenants whose live segment has outgrown the byte
// threshold.
//
// The compaction protocol per tenant (CompactTenant) is crash-safe at
// every instant — see internal/wal's package documentation:
//
//  1. Under the tenant's append lock, rotate the live segment aside
//     (wal.StartCompaction) and capture the engine snapshot; the lock
//     guarantees the snapshot covers exactly the rotated records.
//  2. Persist the snapshot at that sequence (store.WriteFileAt — an atomic
//     rename, so a loader never sees a half-written archive).
//  3. Release the rotated segment (wal.FinishCompaction).
//
// Dying between any two steps leaves the rotated segment on disk; the next
// boot replays it (AttachWAL) and completes the compaction.
type Compactor struct {
	reg *Registry
	// thresholdBytes is the live-segment size past which a sweep compacts
	// a tenant; CompactTenant with force ignores it.
	thresholdBytes int64
	every          time.Duration
	logger         *log.Logger
}

// NewCompactor builds a compactor over reg that, once Run, sweeps every
// interval and compacts tenants whose WAL exceeds thresholdBytes.
func NewCompactor(reg *Registry, thresholdBytes int64, every time.Duration) *Compactor {
	return &Compactor{reg: reg, thresholdBytes: thresholdBytes, every: every}
}

// WithLogger emits one line per completed or failed compaction to l.
func (c *Compactor) WithLogger(l *log.Logger) *Compactor {
	c.logger = l
	return c
}

// Run sweeps on the configured interval until ctx is canceled. Run it on
// its own goroutine; errors are logged (when a logger is set) and retried
// at the next sweep — a failed compaction never loses records, it only
// defers folding them.
func (c *Compactor) Run(ctx context.Context) {
	t := time.NewTicker(c.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Sweep()
		case <-ctx.Done():
			return
		}
	}
}

// Sweep compacts every tenant whose WAL has outgrown the threshold,
// returning how many tenants were compacted.
func (c *Compactor) Sweep() int {
	n := 0
	for _, t := range c.reg.Tenants() {
		done, err := c.CompactTenant(t, false)
		switch {
		case err != nil && c.logger != nil:
			c.logger.Printf("compact %s: %v", t.Name, err)
		case done:
			n++
			if c.logger != nil {
				st := t.WAL.Stats()
				c.logger.Printf("compact %s: snapshot now covers seq %d", t.Name, st.Seq)
			}
		}
	}
	return n
}

// CompactTenant folds one tenant's WAL into its packed snapshot, reporting
// whether a compaction ran. Tenants without a WAL, without a StorePath or
// with a frozen engine are skipped; without force, so are tenants whose
// live segment is still under the byte threshold. Safe to call while the
// tenant serves traffic: appends block only for the rotate + snapshot
// capture (step 1), not for the disk write.
func (c *Compactor) CompactTenant(t *Tenant, force bool) (bool, error) {
	if t.WAL == nil || t.StorePath == "" {
		return false, nil
	}
	live := t.Sys.Live()
	if live == nil {
		return false, nil
	}

	t.appendMu.Lock()
	// A compaction that already rotated but failed to persist (a full disk,
	// say) is finished here instead of rotating again: the current engine
	// state covers everything in both segments.
	if t.WAL.CompactionPending() {
		seq := t.WAL.LastSeq()
		snap := live.CurrentSnapshot()
		t.appendMu.Unlock()
		if err := store.WriteFileAt(t.StorePath, t.Name, snap, seq); err != nil {
			return false, err
		}
		return true, t.WAL.FinishCompaction()
	}
	if !force && t.WAL.Stats().Bytes < c.thresholdBytes {
		t.appendMu.Unlock()
		return false, nil
	}
	seq, err := t.WAL.StartCompaction()
	if err != nil {
		t.appendMu.Unlock()
		return false, err
	}
	// Captured under the append lock right after the rotation: the snapshot
	// covers exactly the records now sitting in the rotated-out segment.
	snap := live.CurrentSnapshot()
	t.appendMu.Unlock()

	if err := store.WriteFileAt(t.StorePath, t.Name, snap, seq); err != nil {
		// The rotated segment stays on disk; boot or the next sweep
		// completes the compaction. No acknowledged record is at risk.
		return false, err
	}
	return true, t.WAL.FinishCompaction()
}
