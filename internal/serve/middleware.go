package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"templar/pkg/api"
)

// The middleware stack wraps the whole route table, outermost first:
//
//	request ID  → every request gets (or keeps) an X-Request-ID, exposed
//	              to handlers via the context and echoed on the response,
//	metrics     → request/error counters and cumulative latency,
//	              reported on /healthz,
//	admission   → the server-wide overload gate (overload.go): drain
//	              refusals, then the bounded in-flight admission that
//	              sheds by cost class. Exempt paths (health probes,
//	              dataset discovery, admin) bypass it entirely — and are
//	              excluded from the in-flight gauge, so a /healthz probe
//	              no longer counts itself,
//	access log  → one line per request when a logger is configured.
//
// Body-size and batch-size limits are enforced at the decode layer
// (readJSON and the batch caps in the core ops), not here, because they
// need per-endpoint knowledge. Per-tenant quotas are enforced in
// withTenant, after the dataset is resolved.

// ctxKey is the private context key namespace of this package.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// RequestIDFrom returns the request ID the middleware assigned, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// requestIDHeader is the wire header carrying the request ID.
const requestIDHeader = "X-Request-ID"

// newIDPrefix draws a short random process-unique prefix so request IDs
// from different server instances never collide in aggregated logs.
func newIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000" // degraded but functional: IDs stay per-process unique
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the status and byte count a handler wrote. A
// handler that never writes (client gone mid-request) leaves status 0,
// which the access log reports as 499 (client closed request).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// statusClientClosed is the nginx-convention pseudo-status for requests
// abandoned by the client before a response was written.
const statusClientClosed = 499

// metricsState accumulates the serving-layer telemetry with plain
// atomics; snapshot renders it for /healthz. The in-flight gauge lives in
// the admission layer (overload.go), which counts admitted work only —
// health probes and admin calls are exempt, so a probe never sees itself.
type metricsState struct {
	requests      atomic.Int64
	clientErrors  atomic.Int64
	serverErrors  atomic.Int64
	latencyMicros atomic.Int64
	// encodeFailures counts response bodies that failed to marshal (see
	// Server.encodeFailure) — always a server bug, so the counter makes
	// it observable instead of silently dropped on the socket.
	encodeFailures atomic.Int64
}

func (m *metricsState) observe(status int, dur time.Duration) {
	m.requests.Add(1)
	m.latencyMicros.Add(dur.Microseconds())
	switch {
	case status >= 500:
		m.serverErrors.Add(1)
	case status >= 400:
		m.clientErrors.Add(1)
	}
}

func (m *metricsState) snapshot(inFlight int64) *api.Metrics {
	out := &api.Metrics{
		Requests:       m.requests.Load(),
		InFlight:       inFlight,
		ClientErrors:   m.clientErrors.Load(),
		ServerErrors:   m.serverErrors.Load(),
		EncodeFailures: m.encodeFailures.Load(),
	}
	if out.Requests > 0 {
		out.AvgLatencyMillis = float64(m.latencyMicros.Load()) / 1e3 / float64(out.Requests)
	}
	return out
}

// withMiddleware wraps the route table with the stack described above.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" || len(id) > 64 {
			id = "r" + s.idPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		w.Header().Set(requestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			status := sw.status
			if status == 0 {
				status = statusClientClosed
			}
			s.metrics.observe(status, dur)
			if s.accessLog != nil {
				// EscapedPath keeps percent-encoded control characters
				// encoded, so a crafted path cannot forge log lines.
				s.accessLog.Printf("access method=%s path=%s status=%d bytes=%d dur=%s req=%s",
					r.Method, r.URL.EscapedPath(), status, sw.bytes, dur.Round(time.Microsecond), id)
			}
		}()

		// Admission gate. Sheds are written here, before any handler runs
		// or body byte is read: rejecting must stay cheap under overload.
		// Shed responses still flow through the deferred metrics/access-log
		// block above, so 429s/503s are visible in the telemetry.
		if class := classify(r.URL.Path); class != classExempt {
			if s.adm.draining.Load() {
				s.adm.shedDraining.Add(1)
				s.writeShed(sw, r, api.NewError(http.StatusServiceUnavailable, api.CodeDraining,
					"serve: draining for shutdown, not admitting new work"), shedRetryAfter)
				return
			}
			if !s.adm.admit(class) {
				s.writeShed(sw, r, api.Errorf(http.StatusTooManyRequests, api.CodeOverloaded,
					"serve: %d requests in flight, shedding at the %d-request bound",
					s.adm.inFlight.Load(), s.adm.max), shedRetryAfter)
				return
			}
			defer s.adm.release(class)
		}
		next.ServeHTTP(sw, r)
	})
}
