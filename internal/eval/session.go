package eval

import (
	"fmt"
	"strings"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

// SessionExperiment evaluates the paper's future-work idea (§VIII):
// exploiting user sessions in the SQL query log. Training queries are
// grouped into pseudo-sessions — consecutive queries of the same template,
// modeling a user iterating on one information need — and folded into the
// QFG with cross-query decayed co-occurrence (qfg.AddSession). The decay=0
// row is the session-free Definition 6 baseline.
func SessionExperiment(all []*datasets.Dataset, decays []float64, opts Options) (string, error) {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Session experiment: Pipeline+ accuracy with session-aware QFG\n")
	fmt.Fprintf(&b, "%-8s %-8s %-8s %-8s\n", "Dataset", "Decay", "KW (%)", "FQ (%)")
	for _, ds := range all {
		for _, decay := range decays {
			m, err := evaluateWithSessions(ds, decay, opts)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-8s %-8.2f %-8.1f %-8.1f\n", ds.Name, decay, m.KW(), m.FQ())
		}
	}
	return b.String(), nil
}

func evaluateWithSessions(ds *datasets.Dataset, decay float64, opts Options) (Metrics, error) {
	folds := splitFolds(len(ds.Tasks), opts.Folds, opts.Seed)
	model := embedding.New()
	var total Metrics
	for trial := 0; trial < opts.Folds; trial++ {
		graph, err := trainSessionQFG(ds, folds, trial, opts.Obscurity, decay)
		if err != nil {
			return Metrics{}, err
		}
		kwOpts := keyword.Options{K: opts.K, Lambda: opts.Lambda, Obscurity: opts.Obscurity}
		sys := nlidb.NewPipelinePlus(ds.DB, model, graph, !opts.DisableLogJoin, kwOpts)
		for _, ti := range folds[trial] {
			total.Add(scoreTask(sys, ds.Tasks[ti]))
		}
	}
	return total, nil
}

// trainSessionQFG groups the training tasks by template, splits each group
// into sessions of up to four queries, and folds them with AddSession.
// decay <= 0 degenerates to plain per-query folding.
func trainSessionQFG(ds *datasets.Dataset, folds [][]int, holdout int, ob fragment.Obscurity, decay float64) (*qfg.Graph, error) {
	byTemplate := make(map[string][]*sqlparse.Query)
	var order []string
	for f, idxs := range folds {
		if f == holdout {
			continue
		}
		for _, ti := range idxs {
			task := ds.Tasks[ti]
			q, err := sqlparse.Parse(task.Gold)
			if err != nil {
				return nil, fmt.Errorf("eval: %s: %w", task.ID, err)
			}
			if err := q.Resolve(nil); err != nil {
				return nil, fmt.Errorf("eval: %s: %w", task.ID, err)
			}
			if _, seen := byTemplate[task.Template]; !seen {
				order = append(order, task.Template)
			}
			byTemplate[task.Template] = append(byTemplate[task.Template], q)
		}
	}
	g := qfg.New(ob)
	const sessionLen = 4
	for _, tpl := range order {
		queries := byTemplate[tpl]
		for start := 0; start < len(queries); start += sessionLen {
			end := start + sessionLen
			if end > len(queries) {
				end = len(queries)
			}
			if decay <= 0 {
				for _, q := range queries[start:end] {
					g.AddQuery(q, 1)
				}
				continue
			}
			if err := g.AddSession(queries[start:end], 1, decay); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
