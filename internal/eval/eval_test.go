package eval

import (
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/sqlparse"
)

func TestMetricsPercentages(t *testing.T) {
	m := Metrics{KWCorrect: 3, FQCorrect: 1, Total: 4}
	if m.KW() != 75 || m.FQ() != 25 {
		t.Fatalf("KW=%v FQ=%v", m.KW(), m.FQ())
	}
	var z Metrics
	if z.KW() != 0 || z.FQ() != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
	m.Add(Metrics{KWCorrect: 1, FQCorrect: 1, Total: 2})
	if m.Total != 6 || m.KWCorrect != 4 || m.FQCorrect != 2 {
		t.Fatalf("Add = %+v", m)
	}
}

func TestSplitFoldsPartition(t *testing.T) {
	folds := splitFolds(194, 4, 1)
	if len(folds) != 4 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]bool)
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 194 {
		t.Fatalf("covered %d of 194", len(seen))
	}
	// Roughly equal sizes.
	for _, f := range folds {
		if len(f) < 48 || len(f) > 49 {
			t.Fatalf("fold size %d", len(f))
		}
	}
	// Deterministic for a seed, different across seeds.
	again := splitFolds(194, 4, 1)
	for i := range folds {
		if len(folds[i]) != len(again[i]) {
			t.Fatal("nondeterministic folds")
		}
		for j := range folds[i] {
			if folds[i][j] != again[i][j] {
				t.Fatal("nondeterministic folds")
			}
		}
	}
	other := splitFolds(194, 4, 2)
	same := true
	for i := range folds[0] {
		if folds[0][i] != other[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestKWCorrect(t *testing.T) {
	task := datasets.Task{
		Keywords: []keyword.Keyword{
			{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select}},
			{Text: "Databases", Meta: keyword.Metadata{Context: fragment.Where}},
		},
		GoldFragments: []fragment.Fragment{
			fragment.Attr("publication.title", ""),
			fragment.Pred("domain.name", "=", sqlparse.Value{Kind: sqlparse.StringVal, S: "Databases"}, fragment.Full),
		},
	}
	good := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindAttr, Rel: "publication", Attr: "title"},
		{Kind: keyword.KindPred, Rel: "domain", Attr: "name", Op: "=", Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "Databases"}},
	}}
	if !kwCorrect(good, task) {
		t.Fatal("correct configuration rejected")
	}
	bad := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindAttr, Rel: "journal", Attr: "name"},
		good.Mappings[1],
	}}
	if kwCorrect(bad, task) {
		t.Fatal("wrong configuration accepted")
	}
	short := keyword.Configuration{Mappings: good.Mappings[:1]}
	if kwCorrect(short, task) {
		t.Fatal("truncated configuration accepted")
	}
	// Relation mappings are not graded.
	relCfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindRelation, Rel: "whatever"},
		good.Mappings[1],
	}}
	if !kwCorrect(relCfg, task) {
		t.Fatal("relation mapping should be skipped in KW grading")
	}
}

func TestEvaluateYelpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	ds := datasets.Yelp()
	res, err := Evaluate(ds, []SystemName{Pipeline, PipelinePlus}, Options{Obscurity: fragment.NoConstOp})
	if err != nil {
		t.Fatal(err)
	}
	base, plus := res[Pipeline], res[PipelinePlus]
	if base.Total != len(ds.Tasks) || plus.Total != len(ds.Tasks) {
		t.Fatalf("totals = %d/%d, want %d", base.Total, plus.Total, len(ds.Tasks))
	}
	// The paper's headline shape: Templar augmentation improves both KW
	// and FQ accuracy.
	if plus.FQ() <= base.FQ() {
		t.Errorf("Pipeline+ FQ %.1f should beat Pipeline %.1f", plus.FQ(), base.FQ())
	}
	if plus.KW() <= base.KW() {
		t.Errorf("Pipeline+ KW %.1f should beat Pipeline %.1f", plus.KW(), base.KW())
	}
}

func TestEvaluateLogJoinAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	ds := datasets.Yelp()
	on, err := Evaluate(ds, []SystemName{PipelinePlus}, Options{Obscurity: fragment.NoConstOp})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Evaluate(ds, []SystemName{PipelinePlus}, Options{Obscurity: fragment.NoConstOp, DisableLogJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if on[PipelinePlus].FQ() <= off[PipelinePlus].FQ() {
		t.Errorf("LogJoin Y (%.1f) should beat N (%.1f) on Yelp's tie-heavy workload",
			on[PipelinePlus].FQ(), off[PipelinePlus].FQ())
	}
}

func TestEvaluateUnknownSystem(t *testing.T) {
	ds := datasets.Yelp()
	if _, err := Evaluate(ds, []SystemName{"bogus"}, Options{}); err == nil {
		t.Fatal("expected unknown system error")
	}
}

func TestTableIIRendering(t *testing.T) {
	out := TableII(datasets.All())
	for _, want := range []string{"MAS", "Yelp", "IMDB", "3.2 GB", "194", "127", "128"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSweep(t *testing.T) {
	series := map[string][]SweepPoint{
		"MAS":  {{X: 1, FQ: 40}, {X: 5, FQ: 75}},
		"Yelp": {{X: 1, FQ: 80}, {X: 5, FQ: 100}},
	}
	out := RenderSweep("Figure X", "kappa", series, []string{"MAS", "Yelp"})
	if !strings.Contains(out, "kappa") || !strings.Contains(out, "75.0") {
		t.Fatalf("render:\n%s", out)
	}
	if RenderSweep("t", "x", nil, nil) == "" {
		t.Fatal("empty render must still emit header")
	}
}

func TestLambdaOneMatchesBaselineRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	// Figure 6's right edge: at λ = 1 the configuration ranking ignores
	// the log, so Pipeline+ keyword mapping degrades toward Pipeline.
	ds := datasets.Yelp()
	at08, err := Evaluate(ds, []SystemName{PipelinePlus}, Options{Lambda: 0.8, Obscurity: fragment.NoConstOp})
	if err != nil {
		t.Fatal(err)
	}
	at1, err := Evaluate(ds, []SystemName{PipelinePlus}, Options{Lambda: 1.0, Obscurity: fragment.NoConstOp})
	if err != nil {
		t.Fatal(err)
	}
	if at1[PipelinePlus].FQ() >= at08[PipelinePlus].FQ() {
		t.Errorf("lambda=1 FQ %.1f should drop below lambda=0.8 FQ %.1f",
			at1[PipelinePlus].FQ(), at08[PipelinePlus].FQ())
	}
}
