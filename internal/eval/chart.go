package eval

import (
	"fmt"
	"strings"
)

// RenderChart draws a sweep as an ASCII line chart (one mark per series),
// giving the figure reproductions a visual form alongside the numeric
// tables. The y axis is accuracy in percent (0–100), the x axis the swept
// parameter.
func RenderChart(title, xlabel string, series map[string][]SweepPoint, order []string) string {
	const height = 12
	marks := []byte{'M', 'Y', 'I', '#', '@', '%'}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(order) == 0 || len(series[order[0]]) == 0 {
		return b.String()
	}
	width := len(series[order[0]])

	// grid[r][c]: row 0 is the top (100%).
	grid := make([][]byte, height+1)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range order {
		mark := marks[si%len(marks)]
		for c, pt := range series[name] {
			if c >= width {
				break
			}
			r := height - int(pt.FQ/100*float64(height)+0.5)
			if r < 0 {
				r = 0
			}
			if r > height {
				r = height
			}
			if grid[r][c] == ' ' {
				grid[r][c] = mark
			} else {
				grid[r][c] = '*' // overlapping series
			}
		}
	}
	for r := 0; r <= height; r++ {
		pct := 100 * (height - r) / height
		fmt.Fprintf(&b, "%4d%% |", pct)
		for _, ch := range grid[r] {
			fmt.Fprintf(&b, " %c ", ch)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("---", width))
	fmt.Fprintf(&b, "       ")
	for _, pt := range series[order[0]] {
		label := fmt.Sprintf("%.2g", pt.X)
		if len(label) > 3 {
			label = label[:3]
		}
		fmt.Fprintf(&b, "%-3s", label)
	}
	fmt.Fprintf(&b, " (%s)\n", xlabel)
	var legend []string
	for si, name := range order {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], name))
	}
	fmt.Fprintf(&b, "       legend: %s, *=overlap\n", strings.Join(legend, " "))
	return b.String()
}
