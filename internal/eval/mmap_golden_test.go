package eval

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/templar"
)

// TestGoldenMmapDecodeParity is the end-to-end acceptance gate for the
// zero-copy snapshot path: on every committed corpus — all three datasets
// at all three obscurity levels — a serving engine whose snapshot ALIASES
// an mmap'd v3 archive must replay the golden battery byte-identically to
// an engine built from the copying decode of the same file, and both must
// match the committed corpus. Array-level parity lives in internal/store;
// this test proves the aliased arrays survive the full translation
// pipeline (keyword mapping, join inference, SQL generation, ranking).
func TestGoldenMmapDecodeParity(t *testing.T) {
	for _, ds := range datasets.All() {
		for _, ob := range fragment.Levels() {
			ds, ob := ds, ob
			t.Run(strings.ToLower(ds.Name)+"/"+ob.String(), func(t *testing.T) {
				t.Parallel()
				raw, err := os.ReadFile(filepath.Join(goldenDir, GoldenFilename(ds.Name, ob)))
				if err != nil {
					t.Fatalf("missing committed corpus (run `make golden`): %v", err)
				}
				want, err := DecodeGolden(raw)
				if err != nil {
					t.Fatal(err)
				}
				opts := GoldenOptions{
					TopConfigs: want.TopConfigs,
					MaxTasks:   want.MaxTasks,
					Seed:       want.Seed,
					K:          want.K,
					Lambda:     want.Lambda,
				}

				// Mine the graph exactly as BuildGolden does, then round it
				// through a packed v3 archive on disk.
				entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
				for _, task := range ds.Tasks {
					q, err := sqlparse.Parse(task.Gold)
					if err != nil {
						t.Fatalf("%s: %v", task.ID, err)
					}
					entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
				}
				graph, err := qfg.Build(entries, ob)
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join(t.TempDir(), store.Filename(ds.Name))
				if err := store.WriteFile(path, ds.Name, graph.Snapshot(nil)); err != nil {
					t.Fatal(err)
				}

				sysFrom := func(s *qfg.Snapshot) *templar.System {
					return templar.NewLive(ds.DB, embedding.New(), qfg.NewLiveFromSnapshot(s), templar.Options{
						Keyword: keyword.Options{K: opts.K, Lambda: opts.Lambda, Obscurity: ob},
						LogJoin: true,
					})
				}

				decoded, err := store.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				mapped, err := store.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer mapped.Close()
				if !mapped.Mmapped() {
					t.Skip("host cannot alias v3 archives; the copying fallback is already covered by decode parity")
				}

				gotDecoded, err := ReplayGolden(ds, sysFrom(decoded.Snapshot), ob, opts)
				if err != nil {
					t.Fatal(err)
				}
				gotMapped, err := ReplayGolden(ds, sysFrom(mapped.Snapshot), ob, opts)
				if err != nil {
					t.Fatal(err)
				}

				decBytes, mapBytes := EncodeGolden(gotDecoded), EncodeGolden(gotMapped)
				if !bytes.Equal(decBytes, mapBytes) {
					t.Fatalf("mmap-backed engine diverged from decode-backed engine:\n%s",
						strings.Join(DiffGolden(gotDecoded, gotMapped), "\n"))
				}
				// Both must also agree with the committed corpus: snapshot
				// round-tripping (either path) must not shift a single answer.
				if diffs := DiffGolden(want, gotMapped); len(diffs) > 0 {
					t.Fatalf("mmap-backed engine diverged from the committed corpus:\n%s",
						strings.Join(diffs, "\n"))
				}
			})
		}
	}
}
