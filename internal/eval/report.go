package eval

import (
	"fmt"
	"strings"

	"templar/internal/datasets"
	"templar/internal/fragment"
)

// TableII renders the dataset statistics table.
func TableII(all []*datasets.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Statistics of each benchmark dataset\n")
	fmt.Fprintf(&b, "%-8s %-8s %-5s %-6s %-6s %-8s\n", "Dataset", "Size", "Rels", "Attrs", "FK-PK", "Queries")
	for _, ds := range all {
		s := ds.Stats()
		fmt.Fprintf(&b, "%-8s %-8s %-5d %-6d %-6d %-8d\n",
			s.Dataset, fmt.Sprintf("%.1f GB", s.SizeGB), s.Relations, s.Attributes, s.ForeignKeys, s.Queries)
	}
	return b.String()
}

// TableIII runs the full four-system evaluation on every dataset and
// renders the KW/FQ accuracy table.
func TableIII(all []*datasets.Dataset, opts Options) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: Keyword mapping (KW) and full query (FQ) results\n")
	fmt.Fprintf(&b, "%-8s %-10s %-8s %-8s\n", "Dataset", "System", "KW (%)", "FQ (%)")
	for _, ds := range all {
		res, err := Evaluate(ds, AllSystems(), opts)
		if err != nil {
			return "", err
		}
		for _, name := range AllSystems() {
			m := res[name]
			fmt.Fprintf(&b, "%-8s %-10s %-8.1f %-8.1f\n", ds.Name, name, m.KW(), m.FQ())
		}
	}
	return b.String(), nil
}

// TableIV runs the LogJoin ablation on Pipeline+ and renders the table.
func TableIV(all []*datasets.Dataset, opts Options) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: Improvement from activating log-based joins in Pipeline+\n")
	fmt.Fprintf(&b, "%-8s %-8s %-8s\n", "Dataset", "LogJoin", "FQ (%)")
	for _, ds := range all {
		for _, logJoin := range []bool{false, true} {
			o := opts
			o.DisableLogJoin = !logJoin
			res, err := Evaluate(ds, []SystemName{PipelinePlus}, o)
			if err != nil {
				return "", err
			}
			flag := "N"
			if logJoin {
				flag = "Y"
			}
			fmt.Fprintf(&b, "%-8s %-8s %-8.1f\n", ds.Name, flag, res[PipelinePlus].FQ())
		}
	}
	return b.String(), nil
}

// SweepPoint is one point of a parameter sweep.
type SweepPoint struct {
	X  float64
	FQ float64
}

// Figure5 sweeps κ with λ fixed, returning Pipeline+ FQ accuracy per
// dataset (the paper fixes λ = 0.8 and varies κ from 2 to 10).
func Figure5(all []*datasets.Dataset, kappas []int, opts Options) (map[string][]SweepPoint, error) {
	out := make(map[string][]SweepPoint, len(all))
	for _, ds := range all {
		for _, k := range kappas {
			o := opts
			o.K = k
			res, err := Evaluate(ds, []SystemName{PipelinePlus}, o)
			if err != nil {
				return nil, err
			}
			out[ds.Name] = append(out[ds.Name], SweepPoint{X: float64(k), FQ: res[PipelinePlus].FQ()})
		}
	}
	return out, nil
}

// Figure6 sweeps λ with κ fixed (the paper fixes κ = 5 and varies λ from 0
// to 1).
func Figure6(all []*datasets.Dataset, lambdas []float64, opts Options) (map[string][]SweepPoint, error) {
	out := make(map[string][]SweepPoint, len(all))
	for _, ds := range all {
		for _, l := range lambdas {
			o := opts
			o.Lambda = l
			if l == 0 {
				// Options treats 0 as "default"; nudge to a tiny epsilon to
				// represent pure log-driven scoring.
				o.Lambda = 1e-9
			}
			res, err := Evaluate(ds, []SystemName{PipelinePlus}, o)
			if err != nil {
				return nil, err
			}
			out[ds.Name] = append(out[ds.Name], SweepPoint{X: l, FQ: res[PipelinePlus].FQ()})
		}
	}
	return out, nil
}

// RenderSweep renders sweep points as an aligned series table.
func RenderSweep(title, xlabel string, series map[string][]SweepPoint, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s", xlabel)
	for _, name := range order {
		fmt.Fprintf(&b, " %-8s", name)
	}
	b.WriteByte('\n')
	if len(order) == 0 {
		return b.String()
	}
	for i := range series[order[0]] {
		fmt.Fprintf(&b, "%-8.2g", series[order[0]][i].X)
		for _, name := range order {
			fmt.Fprintf(&b, " %-8.1f", series[name][i].FQ)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ObscurityAblation evaluates Pipeline+ FQ accuracy at each obscurity level
// (the paper reports that all levels improve on the baseline, with
// NoConstOp performing best).
func ObscurityAblation(all []*datasets.Dataset, opts Options) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Obscurity ablation: Pipeline+ FQ (%%) per QFG obscurity level\n")
	fmt.Fprintf(&b, "%-8s %-10s %-8s\n", "Dataset", "Obscurity", "FQ (%)")
	for _, ds := range all {
		for _, ob := range fragment.Levels() {
			o := opts
			o.Obscurity = ob
			res, err := Evaluate(ds, []SystemName{PipelinePlus}, o)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-8s %-10s %-8.1f\n", ds.Name, ob, res[PipelinePlus].FQ())
		}
	}
	return b.String(), nil
}
