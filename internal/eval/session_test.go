package eval

import (
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
)

func TestSessionExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	ds := datasets.Yelp()
	out, err := SessionExperiment([]*datasets.Dataset{ds}, []float64{0, 0.5}, Options{Obscurity: fragment.NoConstOp})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.00") || !strings.Contains(out, "0.50") {
		t.Fatalf("missing decay rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, two rows
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
}

func TestTrainSessionQFGDecayZeroMatchesPlain(t *testing.T) {
	ds := datasets.Yelp()
	folds := splitFolds(len(ds.Tasks), 4, 1)
	plain, err := trainQFG(ds, folds, 0, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trainSessionQFG(ds, folds, 0, fragment.NoConstOp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Queries() != sess.Queries() || plain.Vertices() != sess.Vertices() || plain.Edges() != sess.Edges() {
		t.Fatalf("decay-0 session graph differs: %d/%d/%d vs %d/%d/%d",
			sess.Queries(), sess.Vertices(), sess.Edges(),
			plain.Queries(), plain.Vertices(), plain.Edges())
	}
	if sess.SessionEdges() != 0 {
		t.Fatal("decay-0 graph must carry no session evidence")
	}
	withDecay, err := trainSessionQFG(ds, folds, 0, fragment.NoConstOp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if withDecay.SessionEdges() == 0 {
		t.Fatal("decayed graph must carry session evidence")
	}
}
