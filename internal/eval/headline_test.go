package eval

import (
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
)

func TestHeadlineAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	ds := datasets.Yelp()
	imps, err := Headline([]*datasets.Dataset{ds}, Options{Obscurity: fragment.NoConstOp})
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 2 { // Pipeline pair + NaLIR pair
		t.Fatalf("improvements = %d", len(imps))
	}
	for _, im := range imps {
		if im.AugFQ <= im.BaseFQ {
			t.Errorf("%s: augmented %.1f should beat baseline %.1f", im.Dataset, im.AugFQ, im.BaseFQ)
		}
		if im.GainFactor <= 0 {
			t.Errorf("%s: gain = %v", im.Dataset, im.GainFactor)
		}
	}
	out := RenderHeadline(imps)
	if !strings.Contains(out, "Up to") || !strings.Contains(out, "Pipeline+") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderHeadlineEmpty(t *testing.T) {
	out := RenderHeadline(nil)
	if !strings.Contains(out, "Up to +0%") {
		t.Fatalf("render:\n%s", out)
	}
}
