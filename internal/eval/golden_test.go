package eval

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
)

const goldenDir = "testdata/golden"

// TestGoldenRegression is the committed semantic baseline gate: every
// golden corpus — all three datasets at all three obscurity levels — is
// regenerated through the full templar.System and must match the
// committed file byte for byte. Any drift in configuration ranking,
// scores, join trees or translations fails here with a semantic diff.
//
// Regenerate intentionally with `make golden`; docs/TESTING.md explains
// when committing a diff is legitimate.
func TestGoldenRegression(t *testing.T) {
	covered := map[string]bool{}
	for _, ds := range datasets.All() {
		for _, ob := range fragment.Levels() {
			ds, ob := ds, ob
			t.Run(strings.ToLower(ds.Name)+"/"+ob.String(), func(t *testing.T) {
				t.Parallel()
				path := filepath.Join(goldenDir, GoldenFilename(ds.Name, ob))
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing committed corpus (run `make golden`): %v", err)
				}
				want, err := DecodeGolden(raw)
				if err != nil {
					t.Fatal(err)
				}
				if want.Dataset != ds.Name || want.Obscurity != ob.String() {
					t.Fatalf("corpus %s is for %s/%s", path, want.Dataset, want.Obscurity)
				}
				// The committed corpora must pin the canonical operating
				// point — a corpus regenerated at, say, -kappa 3 or
				// MaxTasks 1 would self-consistently pass the byte check
				// while gating almost nothing.
				canon := DefaultGoldenOptions()
				if want.K != canon.K || want.Lambda != canon.Lambda || want.TopConfigs != canon.TopConfigs ||
					want.MaxTasks != canon.MaxTasks || want.Seed != canon.Seed {
					t.Fatalf("corpus %s generated off the canonical operating point: got (κ=%d λ=%v top=%d tasks=%d seed=%d), want (κ=%d λ=%v top=%d tasks=%d seed=%d)",
						path, want.K, want.Lambda, want.TopConfigs, want.MaxTasks, want.Seed,
						canon.K, canon.Lambda, canon.TopConfigs, canon.MaxTasks, canon.Seed)
				}
				got, err := BuildGolden(ds, ob, GoldenOptions{
					TopConfigs: want.TopConfigs,
					MaxTasks:   want.MaxTasks,
					Seed:       want.Seed,
					K:          want.K,
					Lambda:     want.Lambda,
				})
				if err != nil {
					t.Fatal(err)
				}
				if encoded := EncodeGolden(got); !bytes.Equal(encoded, raw) {
					diffs := DiffGolden(want, got)
					if len(diffs) > 8 {
						diffs = append(diffs[:8], "…")
					}
					if len(diffs) == 0 {
						diffs = []string{"(byte-level encoding drift only — did the golden schema change?)"}
					}
					t.Errorf("golden corpus %s drifted:\n  %s", path, strings.Join(diffs, "\n  "))
				}
			})
			covered[GoldenFilename(ds.Name, ob)] = true
		}
	}
	if len(covered) != 9 {
		t.Fatalf("covered %d corpora, want 9 (3 datasets × 3 obscurity levels)", len(covered))
	}
}

// TestGoldenDetectsRankingPerturbation proves the gate actually fires:
// a deliberately injected ranking perturbation — the classic failure
// mode of a broken scoring "optimization", where the same configurations
// come back in a different order — is caught both semantically
// (DiffGolden) and byte-wise (EncodeGolden).
func TestGoldenDetectsRankingPerturbation(t *testing.T) {
	ds := datasets.MAS()
	opts := GoldenOptions{TopConfigs: 3, MaxTasks: 8, Seed: 1, K: 5, Lambda: 0.8}
	want, err := BuildGolden(ds, fragment.NoConstOp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffGolden(want, want); len(diffs) != 0 {
		t.Fatalf("self-diff not empty: %v", diffs)
	}

	// Re-decode to get an independent copy, then swap a task's top-2
	// configurations.
	perturbed, err := DecodeGolden(EncodeGolden(want))
	if err != nil {
		t.Fatal(err)
	}
	swapped := false
	for i := range perturbed.Tasks {
		if cfgs := perturbed.Tasks[i].Configs; len(cfgs) >= 2 {
			cfgs[0], cfgs[1] = cfgs[1], cfgs[0]
			swapped = true
			break
		}
	}
	if !swapped {
		t.Fatal("no task with 2+ configurations to perturb")
	}
	if diffs := DiffGolden(want, perturbed); len(diffs) == 0 {
		t.Fatal("ranking swap not detected semantically")
	}
	if bytes.Equal(EncodeGolden(want), EncodeGolden(perturbed)) {
		t.Fatal("ranking swap not detected byte-wise")
	}

	// A single-ULP score nudge — the smallest possible numeric drift a
	// reordered floating-point reduction could introduce — is caught too.
	nudged, err := DecodeGolden(EncodeGolden(want))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range nudged.Tasks {
		if cfgs := nudged.Tasks[i].Configs; len(cfgs) > 0 && cfgs[0].Score > 0 {
			cfgs[0].Score = math.Nextafter(cfgs[0].Score, 2)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no positive score to nudge")
	}
	if diffs := DiffGolden(want, nudged); len(diffs) == 0 {
		t.Fatal("one-ULP score drift not detected semantically")
	}
	if bytes.Equal(EncodeGolden(want), EncodeGolden(nudged)) {
		t.Fatal("one-ULP score drift not detected byte-wise")
	}

	// And a changed winning join path.
	joined, err := DecodeGolden(EncodeGolden(want))
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for i := range joined.Tasks {
		if j := joined.Tasks[i].Join; j != nil && len(j.Path) >= 2 {
			j.Path[0], j.Path[1] = j.Path[1], j.Path[0]
			found = true
			break
		}
	}
	if found {
		if diffs := DiffGolden(want, joined); len(diffs) == 0 {
			t.Fatal("join path change not detected")
		}
	}
}

// TestGoldenEncodingRoundTrip pins the corpus codec itself.
func TestGoldenEncodingRoundTrip(t *testing.T) {
	ds := datasets.Yelp()
	c, err := BuildGolden(ds, fragment.Full, GoldenOptions{MaxTasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := EncodeGolden(c)
	back, err := DecodeGolden(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, EncodeGolden(back)) {
		t.Fatal("encode→decode→encode not byte-stable")
	}
	if diffs := DiffGolden(c, back); len(diffs) != 0 {
		t.Fatalf("round trip changed the corpus: %v", diffs)
	}
	if _, err := DecodeGolden([]byte(`{"dataset": 3}`)); err == nil {
		t.Fatal("bad corpus accepted")
	}
	if _, err := DecodeGolden([]byte(`{"bogus_field": true}`)); err == nil {
		t.Fatal("unknown field accepted (schema drift must be loud)")
	}
}
