package eval

import (
	"fmt"
	"sort"
	"strings"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/keyword"
	"templar/internal/nlidb"
)

// TemplateBreakdown runs the cross-validated evaluation of one system and
// reports per-template KW/FQ accuracy — the error-analysis view behind
// §VII-C, showing exactly which query shapes a system wins and loses.
func TemplateBreakdown(ds *datasets.Dataset, system SystemName, opts Options) (string, error) {
	opts = opts.withDefaults()
	folds := splitFolds(len(ds.Tasks), opts.Folds, opts.Seed)
	model := embedding.New()
	kwOpts := keyword.Options{K: opts.K, Lambda: opts.Lambda, Obscurity: opts.Obscurity}

	perTemplate := make(map[string]*Metrics)
	var order []string
	note := func(template string, m Metrics) {
		cur := perTemplate[template]
		if cur == nil {
			cur = &Metrics{}
			perTemplate[template] = cur
			order = append(order, template)
		}
		cur.Add(m)
	}

	for trial := 0; trial < opts.Folds; trial++ {
		graph, err := trainQFG(ds, folds, trial, opts.Obscurity)
		if err != nil {
			return "", err
		}
		var sys *nlidb.System
		switch system {
		case Pipeline:
			sys = nlidb.NewPipeline(ds.DB, model, kwOpts)
		case PipelinePlus:
			sys = nlidb.NewPipelinePlus(ds.DB, model, graph, !opts.DisableLogJoin, kwOpts)
		case NaLIR:
			sys = nlidb.NewNaLIR(ds.DB, opts.Noise, kwOpts)
		case NaLIRPlus:
			sys = nlidb.NewNaLIRPlus(ds.DB, model, graph, opts.Noise, kwOpts)
		default:
			return "", fmt.Errorf("eval: unknown system %q", system)
		}
		for _, ti := range folds[trial] {
			task := ds.Tasks[ti]
			note(task.Template, scoreTask(sys, task))
		}
	}

	sort.Strings(order)
	var b strings.Builder
	fmt.Fprintf(&b, "Per-template breakdown: %s on %s\n", system, ds.Name)
	fmt.Fprintf(&b, "%-28s %-6s %-8s %-8s\n", "Template", "Tasks", "KW (%)", "FQ (%)")
	var total Metrics
	for _, tpl := range order {
		m := perTemplate[tpl]
		total.Add(*m)
		fmt.Fprintf(&b, "%-28s %-6d %-8.1f %-8.1f\n", tpl, m.Total, m.KW(), m.FQ())
	}
	fmt.Fprintf(&b, "%-28s %-6d %-8.1f %-8.1f\n", "TOTAL", total.Total, total.KW(), total.FQ())
	return b.String(), nil
}
