// Counterfactual replay: the offline proof that the feedback loop
// actually learns. The committed golden corpora pin the answers of the
// ORACLE engine — one whose QFG was mined from every task's gold SQL.
// The harness rebuilds each dataset at each obscurity level from a
// seeded PARTIAL log (the holdout's gold SQL withheld), replays the
// golden task battery and counts hits against the pinned oracle
// answers, then ingests a seeded feedback stream exactly the way the
// serving layer would — a served translation matching the gold
// canonical SQL is accepted back into qfg.Live, anything else is
// corrected with the task's gold SQL — and replays the battery again
// on the SAME live engine. Feedback refills exactly the withheld slice
// of the log, so the live graph converges toward the oracle graph and
// the obscured hit-rates climb with it.
//
// The gate is asymmetric on purpose: the obscured levels (NoConst,
// NoConstOp), where the QFG carries the ranking, must strictly improve
// on every dataset, while Full visibility — where similarity already
// dominates — must never lose a single pinned answer it had before
// feedback, and the committed Full corpora must stay byte-identical to
// a fresh oracle regeneration. Improvement without poisoning.
//
// Everything is a pure function of (datasets, options): no clocks, no
// global randomness, so the emitted report is bit-reproducible and CI
// can archive it as an artifact.

package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/pool"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/internal/templar"
	"templar/internal/xrand"
)

// CounterfactualOptions pins every input that shapes a counterfactual
// run; the values are echoed into the report header so a run can be
// reproduced from its artifact alone.
type CounterfactualOptions struct {
	// HoldoutFraction is the share of tasks whose gold SQL is withheld
	// from the training log and later re-supplied as feedback. Default 0.5.
	HoldoutFraction float64
	// Seed drives both the holdout split and the feedback ingestion
	// order. Default 1.
	Seed uint64
	// Weight is the multiplicity a correction is folded in with — the
	// counterfactual twin of FeedbackRequest.Weight. Default 1, which
	// makes the post-feedback log exactly the oracle log; larger values
	// trade that exact convergence for a stronger fresh-signal boost.
	Weight int
	// Golden is the battery operating point; the zero value means
	// DefaultGoldenOptions, i.e. the committed corpora's own settings.
	Golden GoldenOptions
	// Parallelism bounds concurrent holdout translations. Default:
	// min(GOMAXPROCS, 8).
	Parallelism int
	// GoldenDir, when non-empty, additionally verifies the committed
	// Full-visibility golden corpora are byte-identical to a fresh
	// oracle regeneration — the pinned-answer half of the gate.
	GoldenDir string
}

func (o CounterfactualOptions) withDefaults() CounterfactualOptions {
	if o.HoldoutFraction <= 0 || o.HoldoutFraction >= 1 {
		o.HoldoutFraction = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Weight <= 0 {
		o.Weight = 1
	}
	o.Golden = o.Golden.withDefaults()
	if o.Parallelism <= 0 {
		o.Parallelism = pool.DefaultWorkers()
	}
	return o
}

// CounterfactualLevel is one (dataset, obscurity) replay: golden-battery
// hits against the pinned oracle answers before and after the feedback
// stream, with the per-task transition counts that make the gate
// auditable.
type CounterfactualLevel struct {
	Obscurity string `json:"obscurity"`
	// Battery is the golden task battery size; Holdout is how many of
	// the dataset's tasks were withheld from the training log.
	Battery int `json:"battery"`
	Holdout int `json:"holdout"`
	// BeforeHits/AfterHits count battery tasks whose full pinned answer
	// (ranked configurations with scores, join choice, SQL, tie) the
	// system reproduced before and after feedback ingestion.
	BeforeHits int `json:"before_hits"`
	AfterHits  int `json:"after_hits"`
	// Gained counts tasks missed before and hit after; Regressed counts
	// the reverse. AfterHits - BeforeHits == Gained - Regressed.
	Gained    int `json:"gained"`
	Regressed int `json:"regressed"`
	// Accepted/Corrected are the ingested feedback verdict counts.
	Accepted  int `json:"accepted"`
	Corrected int `json:"corrected"`
	// Converged reports the strongest possible outcome: the replayed
	// corpus is byte-identical to the oracle corpus — the live graph
	// learned its way back to the exact pinned state.
	Converged bool `json:"converged"`
}

// BeforePct is the pre-feedback battery hit-rate in percent.
func (l CounterfactualLevel) BeforePct() float64 { return pct(l.BeforeHits, l.Battery) }

// AfterPct is the post-feedback battery hit-rate in percent.
func (l CounterfactualLevel) AfterPct() float64 { return pct(l.AfterHits, l.Battery) }

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// CounterfactualDataset groups one dataset's levels plus its committed
// golden byte-identity verdict (empty string = not checked or clean).
type CounterfactualDataset struct {
	Dataset string                `json:"dataset"`
	Levels  []CounterfactualLevel `json:"levels"`
	// GoldenError is non-empty when GoldenDir was set and the committed
	// Full corpus is not byte-identical to a fresh regeneration.
	GoldenError string `json:"golden_error,omitempty"`
}

// CounterfactualReport is the whole run: the echoed options, every
// dataset's levels, and the gate verdict. The encoding is deterministic
// (fixed field order, no timestamps) so CI can diff artifacts across
// runs.
type CounterfactualReport struct {
	HoldoutFraction float64                 `json:"holdout_fraction"`
	Seed            uint64                  `json:"seed"`
	Weight          int                     `json:"weight"`
	K               int                     `json:"kappa"`
	Lambda          float64                 `json:"lambda"`
	Datasets        []CounterfactualDataset `json:"datasets"`
	// Violations is the gate's output: empty means the learning loop
	// held its contract on every dataset.
	Violations []string `json:"violations,omitempty"`
}

// counterfactualLevels is the replay battery: the gap-facing levels the
// QFG exists for, plus Full as the no-regression control.
var counterfactualLevels = []fragment.Obscurity{fragment.Full, fragment.NoConst, fragment.NoConstOp}

// RunCounterfactual replays the feedback loop offline over the named
// datasets and gates the result. The returned report's Violations field
// is already populated; callers that only need pass/fail can check
// len(report.Violations) == 0.
func RunCounterfactual(names []string, opts CounterfactualOptions) (*CounterfactualReport, error) {
	opts = opts.withDefaults()
	report := &CounterfactualReport{
		HoldoutFraction: opts.HoldoutFraction,
		Seed:            opts.Seed,
		Weight:          opts.Weight,
		K:               opts.Golden.K,
		Lambda:          opts.Golden.Lambda,
	}
	for _, name := range names {
		ds, ok := datasets.ByName(name)
		if !ok {
			return nil, fmt.Errorf("eval: unknown dataset %q", name)
		}
		cd := CounterfactualDataset{Dataset: ds.Name}
		for _, ob := range counterfactualLevels {
			level, err := runCounterfactualLevel(ds, ob, opts)
			if err != nil {
				return nil, fmt.Errorf("eval: %s/%s: %w", ds.Name, ob, err)
			}
			cd.Levels = append(cd.Levels, level)
		}
		if opts.GoldenDir != "" {
			cd.GoldenError = verifyFullGolden(ds, opts.GoldenDir)
		}
		report.Datasets = append(report.Datasets, cd)
	}
	report.Violations = report.gate()
	return report, nil
}

// runCounterfactualLevel is one oracle/before/feedback/after replay on
// one live engine.
func runCounterfactualLevel(ds *datasets.Dataset, ob fragment.Obscurity, opts CounterfactualOptions) (CounterfactualLevel, error) {
	level := CounterfactualLevel{Obscurity: ob.String()}

	// The oracle: the committed corpora's own generation path, a QFG
	// mined from every task's gold SQL. Its per-task answers are what
	// "hit" means below.
	oracle, err := BuildGolden(ds, ob, opts.Golden)
	if err != nil {
		return level, err
	}
	level.Battery = len(oracle.Tasks)

	// The counterfactual system: identical engine, but the holdout
	// tasks' gold SQL never entered its log.
	holdout, train := splitHoldout(len(ds.Tasks), opts.HoldoutFraction, opts.Seed)
	level.Holdout = len(holdout)
	entries := make([]sqlparse.LogEntry, 0, len(train))
	for _, ti := range train {
		q, err := sqlparse.Parse(ds.Tasks[ti].Gold)
		if err != nil {
			return level, fmt.Errorf("%s: %w", ds.Tasks[ti].ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, ob)
	if err != nil {
		return level, err
	}
	live := qfg.NewLive(graph)
	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{
		Keyword: keyword.Options{K: opts.Golden.K, Lambda: opts.Golden.Lambda, Obscurity: ob},
		LogJoin: true,
	})

	before, err := ReplayGolden(ds, sys, ob, opts.Golden)
	if err != nil {
		return level, err
	}

	// The feedback stream: every holdout task arrives once, in a second
	// seeded order. The harness plays the user: it asks the live system
	// to translate, accepts a served answer that matches the task's gold
	// canonical SQL (folding the SERVED text back in, exactly like the
	// accepted verdict), and corrects anything else with the gold SQL at
	// the correction weight. Either way the withheld query re-enters the
	// log through the same append path the serving layer uses.
	order := append([]int(nil), holdout...)
	xrand.New(opts.Seed^0x9e3779b97f4a7c15).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	ctx := context.Background()
	for _, ti := range order {
		task := ds.Tasks[ti]
		served := ""
		if tr, err := sys.Translate(ctx, task.Keywords, nil); err == nil && tr != nil && !tr.Tie {
			served = tr.SQL
		}
		text, weight := task.Gold, opts.Weight
		accepted := served == task.GoldCanonical
		if accepted {
			text, weight = served, 1
		}
		// Parse + alias-resolve, exactly the serving layer's append
		// pipeline (qfg.Live requires alias-resolved queries).
		q, err := sqlparse.Parse(text)
		if err != nil {
			return level, fmt.Errorf("%s: %w", task.ID, err)
		}
		if err := q.Resolve(nil); err != nil {
			return level, fmt.Errorf("%s: %w", task.ID, err)
		}
		live.AddQuery(q, weight)
		if accepted {
			level.Accepted++
		} else {
			level.Corrected++
		}
	}

	after, err := ReplayGolden(ds, sys, ob, opts.Golden)
	if err != nil {
		return level, err
	}
	if len(before.Tasks) != len(oracle.Tasks) || len(after.Tasks) != len(oracle.Tasks) {
		return level, fmt.Errorf("battery drifted: %d/%d/%d tasks", len(oracle.Tasks), len(before.Tasks), len(after.Tasks))
	}
	for i := range oracle.Tasks {
		hitBefore := reflect.DeepEqual(before.Tasks[i], oracle.Tasks[i])
		hitAfter := reflect.DeepEqual(after.Tasks[i], oracle.Tasks[i])
		if hitBefore {
			level.BeforeHits++
		}
		if hitAfter {
			level.AfterHits++
		}
		switch {
		case !hitBefore && hitAfter:
			level.Gained++
		case hitBefore && !hitAfter:
			level.Regressed++
		}
	}
	level.Converged = string(EncodeGolden(after)) == string(EncodeGolden(oracle))
	return level, nil
}

// splitHoldout deterministically shuffles task indexes and carves off
// the holdout fraction, returning both halves in ascending order.
func splitHoldout(n int, fraction float64, seed uint64) (holdout, train []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	xrand.New(seed).Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(n) * fraction)
	if cut < 1 {
		cut = 1
	}
	holdout = append([]int(nil), idx[:cut]...)
	train = append([]int(nil), idx[cut:]...)
	sortInts(holdout)
	sortInts(train)
	return holdout, train
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// verifyFullGolden regenerates the Full-visibility oracle corpus at the
// committed corpora's own operating point and compares it byte-for-byte
// with the committed file. Returns "" when identical.
func verifyFullGolden(ds *datasets.Dataset, dir string) string {
	name := GoldenFilename(ds.Name, fragment.Full)
	committed, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return fmt.Sprintf("read committed corpus: %v", err)
	}
	corpus, err := BuildGolden(ds, fragment.Full, DefaultGoldenOptions())
	if err != nil {
		return fmt.Sprintf("regenerate corpus: %v", err)
	}
	fresh := EncodeGolden(corpus)
	if string(fresh) == string(committed) {
		return ""
	}
	want, derr := DecodeGolden(committed)
	if derr != nil {
		return fmt.Sprintf("committed corpus unreadable: %v", derr)
	}
	if diffs := DiffGolden(want, corpus); len(diffs) > 0 {
		return fmt.Sprintf("%s diverged: %s", name, diffs[0])
	}
	return fmt.Sprintf("%s diverged at the byte level (encoding drift)", name)
}

// gate applies the learning contract and returns every violation:
//   - NoConst and NoConstOp battery hit-rate must STRICTLY improve on
//     every dataset (the loop must close the gap, not just hold level);
//   - Full must never lose a pinned answer it had before feedback, and
//     its committed golden corpus must stay byte-identical (pinned
//     answers are pinned).
func (r *CounterfactualReport) gate() []string {
	var out []string
	for _, cd := range r.Datasets {
		for _, l := range cd.Levels {
			switch l.Obscurity {
			case fragment.Full.String():
				if l.Regressed > 0 {
					out = append(out, fmt.Sprintf("%s/%s: %d pinned answers regressed after feedback (Full must never regress)",
						cd.Dataset, l.Obscurity, l.Regressed))
				}
			default:
				if l.AfterHits <= l.BeforeHits {
					out = append(out, fmt.Sprintf("%s/%s: battery hits %d→%d after feedback (obscured levels must strictly improve)",
						cd.Dataset, l.Obscurity, l.BeforeHits, l.AfterHits))
				}
			}
		}
		if cd.GoldenError != "" {
			out = append(out, fmt.Sprintf("%s: golden corpus check failed: %s", cd.Dataset, cd.GoldenError))
		}
	}
	return out
}

// Summary renders the human-readable run table templar-eval prints.
func (r *CounterfactualReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counterfactual replay (holdout %.0f%%, seed %d, correction weight %d, κ=%d λ=%v)\n",
		100*r.HoldoutFraction, r.Seed, r.Weight, r.K, r.Lambda)
	for _, cd := range r.Datasets {
		for _, l := range cd.Levels {
			conv := ""
			if l.Converged {
				conv = ", converged to oracle"
			}
			fmt.Fprintf(&b, "  %-5s %-10s battery %2d: hits %5.1f%% → %5.1f%%  (+%d/-%d, %d accepted, %d corrected%s)\n",
				cd.Dataset, l.Obscurity, l.Battery, l.BeforePct(), l.AfterPct(),
				l.Gained, l.Regressed, l.Accepted, l.Corrected, conv)
		}
		if cd.GoldenError != "" {
			fmt.Fprintf(&b, "  %-5s golden: %s\n", cd.Dataset, cd.GoldenError)
		}
	}
	if len(r.Violations) == 0 {
		b.WriteString("  gate: PASS\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  gate VIOLATION: %s\n", v)
		}
	}
	return b.String()
}
