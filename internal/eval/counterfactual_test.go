package eval

import (
	"encoding/json"
	"reflect"
	"testing"

	"templar/internal/fragment"
)

// TestCounterfactualGate is the learning-loop contract, end to end: on
// every dataset the obscured battery hit-rates strictly improve after
// seeded feedback ingestion, Full never loses a pinned answer, the
// committed Full golden corpora are byte-identical to a fresh oracle
// regeneration, and — at the default correction weight of 1 — every
// level's post-feedback replay converges byte-for-byte to the oracle
// corpus (feedback exactly refills the withheld slice of the log).
func TestCounterfactualGate(t *testing.T) {
	rep, err := RunCounterfactual([]string{"mas", "yelp", "imdb"},
		CounterfactualOptions{GoldenDir: "testdata/golden"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("gate violations:\n%s", rep.Summary())
	}
	if len(rep.Datasets) != 3 {
		t.Fatalf("%d datasets in report", len(rep.Datasets))
	}
	for _, cd := range rep.Datasets {
		if cd.GoldenError != "" {
			t.Errorf("%s: %s", cd.Dataset, cd.GoldenError)
		}
		for _, l := range cd.Levels {
			if l.Obscurity != fragment.Full.String() && l.AfterHits <= l.BeforeHits {
				t.Errorf("%s/%s: hits %d→%d, want strict improvement",
					cd.Dataset, l.Obscurity, l.BeforeHits, l.AfterHits)
			}
			if l.Regressed != 0 {
				t.Errorf("%s/%s: %d pinned answers regressed", cd.Dataset, l.Obscurity, l.Regressed)
			}
			if !l.Converged {
				t.Errorf("%s/%s: did not converge to the oracle corpus at weight 1",
					cd.Dataset, l.Obscurity)
			}
			if l.Accepted+l.Corrected != l.Holdout {
				t.Errorf("%s/%s: %d accepted + %d corrected != %d holdout",
					cd.Dataset, l.Obscurity, l.Accepted, l.Corrected, l.Holdout)
			}
		}
	}
}

// TestCounterfactualDeterminism pins the artifact contract: the same
// options produce a byte-identical report (CI archives and diffs it),
// and the encoding carries no clocks or map-ordered fields.
func TestCounterfactualDeterminism(t *testing.T) {
	opts := CounterfactualOptions{HoldoutFraction: 0.4, Seed: 7}
	a, err := RunCounterfactual([]string{"yelp"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCounterfactual([]string{"yelp"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same options produced different reports")
	}
	ra, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) != string(rb) {
		t.Fatal("report encoding is not byte-stable")
	}
	// A different seed moves the holdout split, so the replay genuinely
	// depends on the seeded inputs it echoes.
	c, err := RunCounterfactual([]string{"yelp"}, CounterfactualOptions{HoldoutFraction: 0.4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Datasets, c.Datasets) {
		t.Fatal("different seeds produced identical replays")
	}
}

// TestCounterfactualUnknownDataset pins the error path.
func TestCounterfactualUnknownDataset(t *testing.T) {
	if _, err := RunCounterfactual([]string{"nope"}, CounterfactualOptions{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
