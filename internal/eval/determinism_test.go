package eval

import (
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
)

// TestEvaluateDeterministicAcrossRuns: the parallel evaluator must produce
// identical metrics on repeated runs (order-independent accumulation over a
// deterministic fold split).
func TestEvaluateDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	ds := datasets.Yelp()
	opts := Options{Obscurity: fragment.NoConstOp}
	a, err := Evaluate(ds, AllSystems(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(ds, AllSystems(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AllSystems() {
		if a[name] != b[name] {
			t.Errorf("%s: %+v vs %+v", name, a[name], b[name])
		}
	}
}

// TestEvaluateParallelMatchesSequential: worker-pool evaluation equals the
// single-worker run.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	ds := datasets.Yelp()
	seq, err := Evaluate(ds, []SystemName{PipelinePlus}, Options{Obscurity: fragment.NoConstOp, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(ds, []SystemName{PipelinePlus}, Options{Obscurity: fragment.NoConstOp, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq[PipelinePlus] != par[PipelinePlus] {
		t.Fatalf("sequential %+v vs parallel %+v", seq[PipelinePlus], par[PipelinePlus])
	}
}
