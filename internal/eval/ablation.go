package eval

import (
	"fmt"
	"strings"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
)

// Variant is one Pipeline+ design variation for the ablation study of the
// scoring and weighting choices the paper commits to (geometric mean,
// FROM-fragment exclusion, Dice-normalized join weights).
type Variant struct {
	// Name labels the variant in reports.
	Name string
	// Keyword adjusts the mapper options (nil keeps the defaults).
	Keyword func(keyword.Options) keyword.Options
	// JoinWeights builds the join weight function from the trial's QFG
	// (nil keeps the paper's LogWeights).
	JoinWeights func(g *qfg.Graph) joinpath.WeightFunc
}

// DesignVariants returns the paper's configuration plus one variant per
// contested design choice.
func DesignVariants() []Variant {
	return []Variant{
		{Name: "paper"},
		{
			Name: "arithmetic-mean",
			Keyword: func(o keyword.Options) keyword.Options {
				o.UseArithmeticMean = true
				return o
			},
		},
		{
			Name: "include-FROM",
			Keyword: func(o keyword.Options) keyword.Options {
				o.IncludeFromInQFG = true
				return o
			},
		},
		{
			Name: "raw-count-weights",
			JoinWeights: func(g *qfg.Graph) joinpath.WeightFunc {
				return joinpath.CountWeights(g)
			},
		},
	}
}

// EvaluateVariant runs the cross-validated evaluation of one Pipeline+
// design variant.
func EvaluateVariant(ds *datasets.Dataset, v Variant, opts Options) (Metrics, error) {
	opts = opts.withDefaults()
	folds := splitFolds(len(ds.Tasks), opts.Folds, opts.Seed)
	model := embedding.New()
	var total Metrics
	for trial := 0; trial < opts.Folds; trial++ {
		graph, err := trainQFG(ds, folds, trial, opts.Obscurity)
		if err != nil {
			return Metrics{}, err
		}
		kwOpts := keyword.Options{K: opts.K, Lambda: opts.Lambda, Obscurity: opts.Obscurity}
		if v.Keyword != nil {
			kwOpts = v.Keyword(kwOpts)
		}
		cfg := nlidb.Config{Keyword: kwOpts, QFG: graph, LogJoin: !opts.DisableLogJoin}
		if v.JoinWeights != nil {
			cfg.JoinWeights = v.JoinWeights(graph)
		}
		sys := nlidb.NewSystem("Pipeline+/"+v.Name, ds.DB, model, cfg)
		for _, ti := range folds[trial] {
			total.Add(scoreTask(sys, ds.Tasks[ti]))
		}
	}
	return total, nil
}

// DesignAblation renders the FQ accuracy of every design variant on every
// dataset.
func DesignAblation(all []*datasets.Dataset, opts Options) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Design ablation: Pipeline+ FQ (%%) per scoring/weighting variant\n")
	fmt.Fprintf(&b, "%-8s %-20s %-8s %-8s\n", "Dataset", "Variant", "KW (%)", "FQ (%)")
	for _, ds := range all {
		for _, v := range DesignVariants() {
			m, err := EvaluateVariant(ds, v, opts)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-8s %-20s %-8.1f %-8.1f\n", ds.Name, v.Name, m.KW(), m.FQ())
		}
	}
	return b.String(), nil
}
