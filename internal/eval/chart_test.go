package eval

import (
	"strings"
	"testing"
)

func TestRenderChart(t *testing.T) {
	series := map[string][]SweepPoint{
		"MAS":  {{X: 0, FQ: 90}, {X: 0.5, FQ: 90}, {X: 1, FQ: 40}},
		"Yelp": {{X: 0, FQ: 92}, {X: 0.5, FQ: 100}, {X: 1, FQ: 72}},
	}
	out := RenderChart("Figure 6", "lambda", series, []string{"MAS", "Yelp"})
	if !strings.Contains(out, "100% |") || !strings.Contains(out, "0% |") {
		t.Fatalf("missing axis:\n%s", out)
	}
	if !strings.Contains(out, "M=MAS") || !strings.Contains(out, "Y=Yelp") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "lambda") {
		t.Fatalf("missing x label:\n%s", out)
	}
	// Marks present.
	if !strings.Contains(out, "M") || !strings.Contains(out, "Y") {
		t.Fatalf("missing series marks:\n%s", out)
	}
	// Empty input degrades gracefully.
	if got := RenderChart("t", "x", nil, nil); !strings.Contains(got, "t") {
		t.Fatal("empty chart should still emit title")
	}
}

func TestRenderChartClampsOutOfRange(t *testing.T) {
	series := map[string][]SweepPoint{
		"S": {{X: 0, FQ: -10}, {X: 1, FQ: 150}},
	}
	// The first series plots with mark 'M'; both out-of-range points must
	// be clamped onto the grid (2 marks) plus one legend occurrence.
	out := RenderChart("clamp", "x", series, []string{"S"})
	if strings.Count(out, "M") != 3 {
		t.Fatalf("marks not clamped into grid:\n%s", out)
	}
}
