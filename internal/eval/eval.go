// Package eval reproduces the paper's experimental protocol (§VII): 4-fold
// cross-validation in which the SQL query log is the gold SQL of the three
// training folds, keyword-mapping (KW) and full-query (FQ) top-1 accuracy,
// and the parameter sweeps behind Figures 5 and 6.
package eval

import (
	"fmt"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/pool"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/internal/xrand"
)

// Metrics accumulates correctness counts.
type Metrics struct {
	KWCorrect int
	FQCorrect int
	Total     int
}

// KW returns keyword-mapping accuracy in percent.
func (m Metrics) KW() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.KWCorrect) / float64(m.Total)
}

// FQ returns full-query accuracy in percent.
func (m Metrics) FQ() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.FQCorrect) / float64(m.Total)
}

// Add merges another metrics value.
func (m *Metrics) Add(o Metrics) {
	m.KWCorrect += o.KWCorrect
	m.FQCorrect += o.FQCorrect
	m.Total += o.Total
}

// Options configures one evaluation run.
type Options struct {
	// Folds is the cross-validation fold count. Default 4 (§VII-A4).
	Folds int
	// K is κ. Default 5.
	K int
	// Lambda is λ. Default 0.8.
	Lambda float64
	// Obscurity is the QFG obscurity level. Default NoConstOp.
	Obscurity fragment.Obscurity
	// LogJoin toggles log-driven join weights in the augmented systems
	// (Table IV). Default true; set DisableLogJoin to turn off.
	DisableLogJoin bool
	// Seed shuffles tasks into folds. Default 1.
	Seed uint64
	// Noise is the NaLIR parser model. Default DefaultNaLIRNoise.
	Noise *nlidb.ParserNoise
	// Parallelism bounds concurrent task translations. Every component is
	// read-only during evaluation, so tasks parallelize freely. Default:
	// min(GOMAXPROCS, 8).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Folds <= 0 {
		o.Folds = 4
	}
	if o.K <= 0 {
		o.K = 5
	}
	if o.Lambda == 0 {
		o.Lambda = 0.8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Noise == nil {
		o.Noise = nlidb.DefaultNaLIRNoise()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = pool.DefaultWorkers()
	}
	return o
}

// SystemName enumerates the evaluated systems.
type SystemName string

// The four systems of Table III.
const (
	NaLIR        SystemName = "NaLIR"
	NaLIRPlus    SystemName = "NaLIR+"
	Pipeline     SystemName = "Pipeline"
	PipelinePlus SystemName = "Pipeline+"
)

// AllSystems lists the Table III systems in paper order.
func AllSystems() []SystemName { return []SystemName{NaLIR, NaLIRPlus, Pipeline, PipelinePlus} }

// Result maps each system to its aggregated metrics over all folds.
type Result map[SystemName]Metrics

// Evaluate runs the cross-validated evaluation of the requested systems on
// one dataset.
func Evaluate(ds *datasets.Dataset, systems []SystemName, opts Options) (Result, error) {
	opts = opts.withDefaults()
	folds := splitFolds(len(ds.Tasks), opts.Folds, opts.Seed)
	out := make(Result, len(systems))
	model := embedding.New()
	kwOpts := keyword.Options{K: opts.K, Lambda: opts.Lambda, Obscurity: opts.Obscurity}

	for trial := 0; trial < opts.Folds; trial++ {
		graph, err := trainQFG(ds, folds, trial, opts.Obscurity)
		if err != nil {
			return nil, err
		}
		built := make(map[SystemName]*nlidb.System, len(systems))
		for _, name := range systems {
			switch name {
			case Pipeline:
				built[name] = nlidb.NewPipeline(ds.DB, model, kwOpts)
			case PipelinePlus:
				built[name] = nlidb.NewPipelinePlus(ds.DB, model, graph, !opts.DisableLogJoin, kwOpts)
			case NaLIR:
				built[name] = nlidb.NewNaLIR(ds.DB, opts.Noise, kwOpts)
			case NaLIRPlus:
				built[name] = nlidb.NewNaLIRPlus(ds.DB, model, graph, opts.Noise, kwOpts)
			default:
				return nil, fmt.Errorf("eval: unknown system %q", name)
			}
		}
		trialMetrics := scoreFold(ds, folds[trial], systems, built, opts.Parallelism)
		for _, name := range systems {
			cur := out[name]
			cur.Add(trialMetrics[name])
			out[name] = cur
		}
	}
	return out, nil
}

// scoreFold evaluates all systems on one held-out fold, fanning tasks out
// over the same bounded worker pool the HTTP serving layer's batched
// /v1/translate endpoint uses. Per-task results land in disjoint slots and
// are folded sequentially, so results are identical to the sequential
// evaluation.
func scoreFold(ds *datasets.Dataset, idxs []int, systems []SystemName, built map[SystemName]*nlidb.System, parallelism int) map[SystemName]Metrics {
	perTask := make([]map[SystemName]Metrics, len(idxs))
	pool.New(parallelism).ForEach(len(idxs), func(i int) {
		task := ds.Tasks[idxs[i]]
		mm := make(map[SystemName]Metrics, len(systems))
		for _, name := range systems {
			mm[name] = scoreTask(built[name], task)
		}
		perTask[i] = mm
	})
	out := make(map[SystemName]Metrics, len(systems))
	for _, mm := range perTask {
		for _, name := range systems {
			cur := out[name]
			cur.Add(mm[name])
			out[name] = cur
		}
	}
	return out
}

// trainQFG builds the query fragment graph from the gold SQL of every fold
// except the held-out one (the paper's protocol: test queries never appear
// in the log used to translate them).
func trainQFG(ds *datasets.Dataset, folds [][]int, holdout int, ob fragment.Obscurity) (*qfg.Graph, error) {
	var entries []sqlparse.LogEntry
	for f, idxs := range folds {
		if f == holdout {
			continue
		}
		for _, ti := range idxs {
			q, err := sqlparse.Parse(ds.Tasks[ti].Gold)
			if err != nil {
				return nil, fmt.Errorf("eval: %s: %w", ds.Tasks[ti].ID, err)
			}
			entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
		}
	}
	return qfg.Build(entries, ob)
}

// scoreTask measures KW and FQ correctness of one system on one task.
func scoreTask(sys *nlidb.System, task datasets.Task) Metrics {
	m := Metrics{Total: 1}

	// Keyword-mapping accuracy: all non-relation keywords of the TOP
	// configuration must map to the gold fragments (§VII-B2).
	if configs, err := sys.TopMappings(task.NLQ, task.Hazard, task.Keywords); err == nil && len(configs) > 0 {
		if kwCorrect(configs[0], task) {
			m.KWCorrect = 1
		}
	}

	// Full-query accuracy: the top-ranked SQL must equal the gold
	// translation; a tie for first place counts as incorrect (§VII-A5).
	if tr, err := sys.Translate(task.NLQ, task.Hazard, task.Keywords); err == nil {
		if !tr.Tie && tr.SQL == task.GoldCanonical {
			m.FQCorrect = 1
		}
	}
	return m
}

// kwCorrect checks the top configuration against the task's gold fragments.
// Parser noise can change the keyword count; any mismatch is incorrect.
func kwCorrect(cfg keyword.Configuration, task datasets.Task) bool {
	if len(cfg.Mappings) != len(task.Keywords) {
		return false
	}
	for i, mp := range cfg.Mappings {
		if mp.Kind == keyword.KindRelation {
			continue // only non-relation keywords are graded (§VII-B2)
		}
		if mp.Fragment(fragment.Full) != task.GoldFragments[i] {
			return false
		}
	}
	return true
}

// splitFolds deterministically shuffles task indexes into roughly equal
// folds (Fisher–Yates over the shared xorshift64*).
func splitFolds(n, folds int, seed uint64) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	xrand.New(seed).Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	out := make([][]int, folds)
	for i, ti := range idx {
		out[i%folds] = append(out[i%folds], ti)
	}
	return out
}
