// Golden end-to-end corpora: per-dataset, per-obscurity-level pinned
// answers (ranked keyword-mapping configurations, inferred join paths,
// full translations) produced by driving the complete templar.System the
// serving layer uses. The committed files under testdata/golden are the
// semantic regression baseline every later hot-path change is held to: a
// "faster" ranking path that reorders configurations, perturbs a score
// bit, or changes a winning join tree fails golden-check byte-for-byte.
//
// Regenerate with `templar-eval -golden internal/eval/testdata/golden`
// (or `make golden`) — but only commit a diff when the semantic change is
// intended; see docs/TESTING.md for how to tell a legitimate golden diff
// from a regression.

package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
	"templar/internal/templar"
	"templar/internal/xrand"
)

// GoldenOptions pins every input that shapes a corpus; the values are
// recorded in the file header so a regeneration run can reproduce the
// committed corpus exactly.
type GoldenOptions struct {
	// TopConfigs is how many ranked configurations are pinned per task.
	TopConfigs int
	// MaxTasks caps how many tasks are pinned per corpus (a seeded
	// selection; 0 = all tasks).
	MaxTasks int
	// Seed drives the task selection shuffle.
	Seed uint64
	// K and Lambda are the engine operating point (κ, λ).
	K      int
	Lambda float64
}

// DefaultGoldenOptions is the committed corpora's operating point: the
// paper's default κ=5, λ=0.8, top-3 configurations, 24 tasks per corpus.
func DefaultGoldenOptions() GoldenOptions {
	return GoldenOptions{TopConfigs: 3, MaxTasks: 24, Seed: 1, K: 5, Lambda: 0.8}
}

func (o GoldenOptions) withDefaults() GoldenOptions {
	d := DefaultGoldenOptions()
	if o.TopConfigs <= 0 {
		o.TopConfigs = d.TopConfigs
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.K <= 0 {
		o.K = d.K
	}
	if o.Lambda == 0 {
		o.Lambda = d.Lambda
	}
	return o
}

// GoldenConfig is one pinned ranked configuration: the per-keyword
// mapped fragments (Full form, so values and operators are visible) and
// the three ranking scores.
type GoldenConfig struct {
	Fragments []string `json:"fragments"`
	SimScore  float64  `json:"sim_score"`
	QFGScore  float64  `json:"qfg_score"`
	Score     float64  `json:"score"`
}

// GoldenJoin is one pinned join inference: the mined relation bag and
// the winning path.
type GoldenJoin struct {
	Relations []string `json:"relations"`
	Path      []string `json:"path"`
	Edges     []string `json:"edges"`
	Weight    float64  `json:"weight"`
	Goodness  float64  `json:"goodness"`
}

// GoldenTask pins one task's end-to-end answers.
type GoldenTask struct {
	ID      string         `json:"id"`
	Configs []GoldenConfig `json:"configs"`
	// MapError records a keyword-mapping failure (some tasks are
	// deliberately unmappable at some operating points).
	MapError string      `json:"map_error,omitempty"`
	Join     *GoldenJoin `json:"join,omitempty"`
	// SQL/Score/Tie pin the full translation; TranslateError records an
	// engine refusal (also pinned — a refusal turning into an answer is
	// drift too).
	SQL            string  `json:"sql,omitempty"`
	Rendered       string  `json:"rendered,omitempty"`
	Score          float64 `json:"score,omitempty"`
	Tie            bool    `json:"tie,omitempty"`
	TranslateError string  `json:"translate_error,omitempty"`
}

// GoldenCorpus is one committed golden file: the generation inputs plus
// the pinned per-task answers, in task-ID order.
type GoldenCorpus struct {
	Dataset    string       `json:"dataset"`
	Obscurity  string       `json:"obscurity"`
	K          int          `json:"kappa"`
	Lambda     float64      `json:"lambda"`
	TopConfigs int          `json:"top_configs"`
	MaxTasks   int          `json:"max_tasks"`
	Seed       uint64       `json:"seed"`
	Tasks      []GoldenTask `json:"tasks"`
}

// BuildGolden drives the full serving engine — templar.New over the
// dataset's complete gold-SQL log mined at the given obscurity level —
// through a seeded task selection and pins everything it answers.
func BuildGolden(ds *datasets.Dataset, ob fragment.Obscurity, opts GoldenOptions) (*GoldenCorpus, error) {
	opts = opts.withDefaults()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", task.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, ob)
	if err != nil {
		return nil, err
	}
	sys := templar.New(ds.DB, embedding.New(), graph, templar.Options{
		Keyword: keyword.Options{K: opts.K, Lambda: opts.Lambda, Obscurity: ob},
		LogJoin: true,
	})
	return ReplayGolden(ds, sys, ob, opts)
}

// ReplayGolden drives an EXISTING serving system through the same seeded
// task battery BuildGolden uses and pins its answers in the same
// byte-stable corpus form. This is the replication convergence gate's
// measuring stick: running it against a primary and a follower at the
// same applied WAL sequence must produce bit-identical bytes — any
// divergence in ranking, scoring or join choice shows up in the
// encoding. The obscurity argument labels the corpus (and selects which
// committed file the task selection is checked against); the system
// answers at whatever operating point it was built with.
func ReplayGolden(ds *datasets.Dataset, sys *templar.System, ob fragment.Obscurity, opts GoldenOptions) (*GoldenCorpus, error) {
	opts = opts.withDefaults()
	bags := make([][]string, len(ds.Tasks))
	for i, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", task.ID, err)
		}
		bags[i] = q.Relations()
	}

	corpus := &GoldenCorpus{
		Dataset:    ds.Name,
		Obscurity:  ob.String(),
		K:          opts.K,
		Lambda:     opts.Lambda,
		TopConfigs: opts.TopConfigs,
		MaxTasks:   opts.MaxTasks,
		Seed:       opts.Seed,
	}
	ctx := context.Background()
	for _, ti := range selectTasks(len(ds.Tasks), opts.MaxTasks, opts.Seed) {
		task := ds.Tasks[ti]
		gt := GoldenTask{ID: task.ID}

		configs, err := sys.MapKeywords(ctx, task.Keywords, &templar.CallOptions{TopK: opts.TopConfigs})
		if err != nil {
			gt.MapError = err.Error()
		}
		for _, cfg := range configs {
			gc := GoldenConfig{SimScore: cfg.SimScore, QFGScore: cfg.QFGScore, Score: cfg.Score}
			for _, mp := range cfg.Mappings {
				gc.Fragments = append(gc.Fragments, mp.Fragment(fragment.Full).String())
			}
			gt.Configs = append(gt.Configs, gc)
		}

		if len(bags[ti]) >= 2 {
			paths, err := sys.InferJoins(ctx, bags[ti], nil)
			if err == nil && len(paths) > 0 {
				gj := &GoldenJoin{
					Relations: bags[ti],
					Path:      paths[0].Relations,
					Weight:    paths[0].TotalWeight,
					Goodness:  paths[0].Goodness,
				}
				for _, e := range paths[0].Edges {
					gj.Edges = append(gj.Edges, e.String())
				}
				gt.Join = gj
			}
		}

		switch tr, err := sys.Translate(ctx, task.Keywords, nil); {
		case err != nil:
			gt.TranslateError = err.Error()
		default:
			gt.SQL = tr.SQL
			gt.Rendered = tr.Rendered
			gt.Score = tr.Score
			gt.Tie = tr.Tie
		}
		corpus.Tasks = append(corpus.Tasks, gt)
	}
	return corpus, nil
}

// selectTasks picks up to max task indexes with a seeded Fisher–Yates
// shuffle, then restores benchmark order so corpora read naturally and
// diffs stay local.
func selectTasks(n, max int, seed uint64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if max <= 0 || max >= n {
		return idx
	}
	xrand.New(seed).Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	picked := append([]int(nil), idx[:max]...)
	for i := 1; i < len(picked); i++ {
		for j := i; j > 0 && picked[j] < picked[j-1]; j-- {
			picked[j], picked[j-1] = picked[j-1], picked[j]
		}
	}
	return picked
}

// GoldenFilename is the canonical corpus filename for a dataset + level
// ("mas_noconstop.golden.json").
func GoldenFilename(dataset string, ob fragment.Obscurity) string {
	return strings.ToLower(dataset) + "_" + strings.ToLower(ob.String()) + ".golden.json"
}

// EncodeGolden renders a corpus in the committed byte-stable form:
// two-space-indented JSON with fixed struct field order and a trailing
// newline. Scores are float64s encoded by Go's shortest-round-trip
// formatter, so any bitwise score change shows up in the bytes.
func EncodeGolden(c *GoldenCorpus) []byte {
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		// Statically impossible for these types.
		panic("eval: golden encoding: " + err.Error())
	}
	return append(raw, '\n')
}

// DecodeGolden parses a committed corpus.
func DecodeGolden(raw []byte) (*GoldenCorpus, error) {
	var c GoldenCorpus
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("eval: bad golden corpus: %w", err)
	}
	return &c, nil
}

// DiffGolden reports human-readable semantic differences between a
// committed corpus and a regenerated one, most significant first. A nil
// result means the corpora are semantically identical; the byte-level
// gate additionally pins the encoding.
func DiffGolden(want, got *GoldenCorpus) []string {
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	if want.Dataset != got.Dataset || want.Obscurity != got.Obscurity {
		add("corpus identity: %s/%s vs %s/%s", want.Dataset, want.Obscurity, got.Dataset, got.Obscurity)
	}
	if want.K != got.K || want.Lambda != got.Lambda || want.TopConfigs != got.TopConfigs ||
		want.MaxTasks != got.MaxTasks || want.Seed != got.Seed {
		add("generation options changed: %+v vs %+v",
			[]any{want.K, want.Lambda, want.TopConfigs, want.MaxTasks, want.Seed},
			[]any{got.K, got.Lambda, got.TopConfigs, got.MaxTasks, got.Seed})
	}
	if len(want.Tasks) != len(got.Tasks) {
		add("task count: %d vs %d", len(want.Tasks), len(got.Tasks))
		return out
	}
	for i := range want.Tasks {
		w, g := &want.Tasks[i], &got.Tasks[i]
		if w.ID != g.ID {
			add("task %d: id %s vs %s", i, w.ID, g.ID)
			continue
		}
		if len(w.Configs) != len(g.Configs) {
			add("%s: %d configurations vs %d", w.ID, len(w.Configs), len(g.Configs))
			continue
		}
		for ci := range w.Configs {
			wc, gc := &w.Configs[ci], &g.Configs[ci]
			if !equalStrings(wc.Fragments, gc.Fragments) {
				add("%s: config %d fragments %v vs %v", w.ID, ci, wc.Fragments, gc.Fragments)
			}
			if wc.Score != gc.Score || wc.SimScore != gc.SimScore || wc.QFGScore != gc.QFGScore {
				add("%s: config %d scores (%v,%v,%v) vs (%v,%v,%v)", w.ID, ci,
					wc.SimScore, wc.QFGScore, wc.Score, gc.SimScore, gc.QFGScore, gc.Score)
			}
		}
		if w.MapError != g.MapError {
			add("%s: map error %q vs %q", w.ID, w.MapError, g.MapError)
		}
		switch {
		case (w.Join == nil) != (g.Join == nil):
			add("%s: join presence changed", w.ID)
		case w.Join != nil:
			if !equalStrings(w.Join.Path, g.Join.Path) || !equalStrings(w.Join.Edges, g.Join.Edges) ||
				w.Join.Weight != g.Join.Weight || w.Join.Goodness != g.Join.Goodness {
				add("%s: join path %v (w=%v) vs %v (w=%v)", w.ID, w.Join.Path, w.Join.Weight, g.Join.Path, g.Join.Weight)
			}
		}
		if w.SQL != g.SQL || w.Rendered != g.Rendered || w.Score != g.Score || w.Tie != g.Tie ||
			w.TranslateError != g.TranslateError {
			add("%s: translation %q (score %v, tie %v, err %q) vs %q (score %v, tie %v, err %q)",
				w.ID, w.SQL, w.Score, w.Tie, w.TranslateError, g.SQL, g.Score, g.Tie, g.TranslateError)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
