package eval

import (
	"fmt"
	"strings"

	"templar/internal/datasets"
)

// Improvement summarizes the headline relative FQ gain of an augmented
// system over its baseline on one dataset.
type Improvement struct {
	Dataset    string
	Baseline   SystemName
	Augmented  SystemName
	BaseFQ     float64
	AugFQ      float64
	GainFactor float64 // (AugFQ - BaseFQ) / BaseFQ
}

// Headline computes the paper's abstract claim — "up to N% improvement in
// top-1 accuracy" — for both system pairs on every dataset.
func Headline(all []*datasets.Dataset, opts Options) ([]Improvement, error) {
	var out []Improvement
	for _, ds := range all {
		res, err := Evaluate(ds, AllSystems(), opts)
		if err != nil {
			return nil, err
		}
		for _, pair := range [][2]SystemName{{Pipeline, PipelinePlus}, {NaLIR, NaLIRPlus}} {
			base, aug := res[pair[0]], res[pair[1]]
			imp := Improvement{
				Dataset:   ds.Name,
				Baseline:  pair[0],
				Augmented: pair[1],
				BaseFQ:    base.FQ(),
				AugFQ:     aug.FQ(),
			}
			if base.FQ() > 0 {
				imp.GainFactor = (aug.FQ() - base.FQ()) / base.FQ()
			}
			out = append(out, imp)
		}
	}
	return out, nil
}

// RenderHeadline renders improvements and the "up to" maximum.
func RenderHeadline(imps []Improvement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline: relative top-1 FQ improvement from Templar augmentation\n")
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-9s %-9s %-8s\n", "Dataset", "Baseline", "Augmented", "Base FQ", "Aug FQ", "Gain")
	best := 0.0
	for _, im := range imps {
		fmt.Fprintf(&b, "%-8s %-10s %-10s %-9.1f %-9.1f %+.0f%%\n",
			im.Dataset, im.Baseline, im.Augmented, im.BaseFQ, im.AugFQ, 100*im.GainFactor)
		if im.GainFactor > best {
			best = im.GainFactor
		}
	}
	fmt.Fprintf(&b, "Up to %+.0f%% improvement in top-1 accuracy (paper: up to +138%%).\n", 100*best)
	return b.String()
}
