package eval

import (
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
)

func TestTemplateBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated evaluation in -short mode")
	}
	ds := datasets.Yelp()
	out, err := TemplateBreakdown(ds, Pipeline, Options{Obscurity: fragment.NoConstOp})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"businessInCity", "usersWhoReviewedBusiness", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
	// Task counts per template must sum to the workload size on the TOTAL
	// row.
	if !strings.Contains(out, "127") {
		t.Errorf("TOTAL row missing task count:\n%s", out)
	}
	if _, err := TemplateBreakdown(ds, "bogus", Options{}); err == nil {
		t.Fatal("unknown system must error")
	}
}
