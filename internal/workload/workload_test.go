package workload

import (
	"reflect"
	"testing"

	"templar/internal/datasets"
	"templar/pkg/api"
)

func mineAll(t testing.TB) []*Profile {
	t.Helper()
	profiles, err := MineProfiles([]string{"mas", "yelp", "imdb"})
	if err != nil {
		t.Fatal(err)
	}
	return profiles
}

// TestStreamDeterminism pins the bit-reproducibility contract: the same
// (profiles, mix, seed) triple always synthesizes the same request
// stream, and a different seed synthesizes a different one.
func TestStreamDeterminism(t *testing.T) {
	profiles := mineAll(t)
	gen := func(seed uint64) []Request {
		g, err := NewGenerator(profiles, DefaultMix(), seed)
		if err != nil {
			t.Fatal(err)
		}
		return g.Generate(500)
	}
	a, b := gen(42), gen(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("same stream produced different fingerprints")
	}
	c := gen(43)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different seeds produced identical streams")
	}
	// Profiles mined twice are identical too: the end-to-end reproduction
	// path (dataset → profile → stream) has no hidden nondeterminism.
	g2, err := NewGenerator(mineAll(t), DefaultMix(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(g2.Generate(500)) != Fingerprint(a) {
		t.Fatal("re-mined profiles changed the stream")
	}
}

// TestStreamShape asserts every synthesized request is well-formed and
// the mix weights are honored approximately.
func TestStreamShape(t *testing.T) {
	profiles := mineAll(t)
	mix := DefaultMix()
	g, err := NewGenerator(profiles, mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	counts := map[Op]int{}
	byDataset := map[string]int{}
	sessions := 0
	for i, req := range g.Generate(n) {
		if req.Seq != i {
			t.Fatalf("request %d has seq %d", i, req.Seq)
		}
		counts[req.Op]++
		byDataset[req.Dataset]++
		set := 0
		for _, p := range []bool{req.MapKeywords != nil, req.InferJoins != nil, req.Translate != nil, req.LogAppend != nil} {
			if p {
				set++
			}
		}
		if set != 1 {
			t.Fatalf("request %d has %d payloads", i, set)
		}
		switch req.Op {
		case OpMapKeywords:
			if len(req.MapKeywords.Keywords) == 0 || req.MapKeywords.TopK < 1 || req.MapKeywords.TopK > 5 {
				t.Fatalf("bad map-keywords request %+v", req.MapKeywords)
			}
		case OpInferJoins:
			if len(req.InferJoins.Relations) < 2 {
				t.Fatalf("infer-joins bag too small: %v", req.InferJoins.Relations)
			}
		case OpTranslate:
			if len(req.Translate.Queries) < 1 || len(req.Translate.Queries) > mix.TranslateBatchMax {
				t.Fatalf("translate batch of %d", len(req.Translate.Queries))
			}
		case OpLogAppend:
			la := req.LogAppend
			if len(la.Queries) < 1 || len(la.Queries) > mix.LogBatchMax {
				t.Fatalf("log batch of %d", len(la.Queries))
			}
			if la.Session {
				sessions++
				if len(la.Queries) < 2 {
					t.Fatalf("session of %d queries", len(la.Queries))
				}
			}
		}
	}
	if len(byDataset) != 3 {
		t.Fatalf("datasets hit = %v, want all three", byDataset)
	}
	if sessions == 0 {
		t.Fatal("no session appends synthesized")
	}
	// Weighted ops land within ±35% of their expected share — loose, but
	// plenty to catch a broken weighting while staying seed-robust.
	total := mix.total()
	for op, weight := range map[Op]int{
		OpMapKeywords: mix.MapKeywords,
		OpInferJoins:  mix.InferJoins,
		OpTranslate:   mix.Translate,
		OpLogAppend:   mix.LogAppend,
	} {
		want := float64(n) * float64(weight) / float64(total)
		got := float64(counts[op])
		if got < want*0.65 || got > want*1.35 {
			t.Errorf("%s: %v requests, want ≈%v", op, got, want)
		}
	}
}

// TestFeedbackStream asserts the feedback mix component synthesizes
// well-formed, bit-reproducible translate-then-verdict pairs at the
// seeded verdict ratios.
func TestFeedbackStream(t *testing.T) {
	profiles := mineAll(t)
	mix := DefaultMix()
	mix.Feedback = 20
	gen := func(seed uint64) []Request {
		g, err := NewGenerator(profiles, mix, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g.Generate(2000)
	}
	a := gen(11)
	if Fingerprint(a) != Fingerprint(gen(11)) {
		t.Fatal("feedback stream is not bit-reproducible")
	}
	ids := map[string]bool{}
	verdicts := map[string]int{}
	for _, req := range a {
		if req.Op != OpFeedback {
			continue
		}
		fb := req.Feedback
		if fb == nil || fb.Translate == nil || len(fb.Translate.Queries) == 0 {
			t.Fatalf("malformed feedback request %+v", req)
		}
		if fb.RequestID == "" || ids[fb.RequestID] {
			t.Fatalf("request id %q empty or reused", fb.RequestID)
		}
		ids[fb.RequestID] = true
		verdicts[fb.Verdict]++
		switch fb.Verdict {
		case api.VerdictAccepted, api.VerdictRejected:
			if fb.CorrectedSQL != "" {
				t.Fatalf("%s verdict carries corrected_sql", fb.Verdict)
			}
		case api.VerdictCorrected:
			if fb.CorrectedSQL == "" {
				t.Fatal("corrected verdict without corrected_sql")
			}
		default:
			t.Fatalf("unknown verdict %q", fb.Verdict)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no feedback requests synthesized")
	}
	for _, v := range []string{api.VerdictAccepted, api.VerdictRejected, api.VerdictCorrected} {
		if verdicts[v] == 0 {
			t.Fatalf("verdict %q never drawn (got %v)", v, verdicts)
		}
	}
}

// TestZeroWeightDropsOp proves a zero weight removes an operation from
// the stream entirely (soak phases rely on read-only mixes).
func TestZeroWeightDropsOp(t *testing.T) {
	profiles := mineAll(t)
	mix := DefaultMix()
	mix.LogAppend = 0
	g, err := NewGenerator(profiles, mix, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range g.Generate(1000) {
		if req.Op == OpLogAppend {
			t.Fatal("zero-weight op synthesized")
		}
	}
}

// TestShortLogProfiles pins two batch-sizing edges: a profile whose SQL
// log is shorter than the drawn batch size must window-clamp sessions
// instead of indexing past the log, and an explicit LogBatchMax of 1 is
// honored (not silently bumped to the default).
func TestShortLogProfiles(t *testing.T) {
	tiny := &Profile{
		Name:     "tiny",
		Keywords: []api.KeywordsInput{{Spec: "papers:select"}},
		SQL:      []string{"SELECT a FROM t", "SELECT b FROM t"},
	}
	g, err := NewGenerator([]*Profile{tiny}, Mix{LogAppend: 1, SessionFraction: 1}, 13)
	if err != nil {
		t.Fatal(err)
	}
	sessions := 0
	for _, req := range g.Generate(200) { // would panic before the clamp
		if n := len(req.LogAppend.Queries); n < 1 || n > len(tiny.SQL) {
			t.Fatalf("batch of %d from a %d-entry log", n, len(tiny.SQL))
		}
		if req.LogAppend.Session {
			sessions++
		}
	}
	if sessions == 0 {
		t.Fatal("no sessions despite SessionFraction=1")
	}

	g, err = NewGenerator([]*Profile{tiny}, Mix{LogAppend: 1, LogBatchMax: 1}, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range g.Generate(100) {
		if req.LogAppend.Session {
			continue // sessions legitimately widen to 2
		}
		if len(req.LogAppend.Queries) != 1 {
			t.Fatalf("LogBatchMax=1 produced a batch of %d", len(req.LogAppend.Queries))
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("map=10,infer=0,translate=5,log=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.MapKeywords != 10 || m.InferJoins != 0 || m.Translate != 5 || m.LogAppend != 1 {
		t.Fatalf("mix = %+v", m)
	}
	if m.SessionFraction != DefaultMix().SessionFraction {
		t.Fatal("ParseMix dropped default shape knobs")
	}
	if got, err := ParseMix(""); err != nil || got != DefaultMix() {
		t.Fatalf("empty mix = %+v, %v", got, err)
	}
	for _, bad := range []string{"map", "map=x", "map=-1", "bogus=3", "map=0,infer=0,translate=0,log=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestMineProfile sanity-checks the mined request material.
func TestMineProfile(t *testing.T) {
	ds := datasets.MAS()
	p, err := MineProfile(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Keywords) != len(ds.Tasks) || len(p.SQL) != len(ds.Tasks) {
		t.Fatalf("mined %d keyword inputs, %d sql from %d tasks", len(p.Keywords), len(p.SQL), len(ds.Tasks))
	}
	if len(p.RelationBags) == 0 {
		t.Fatal("no multi-relation bags mined")
	}
	for _, bag := range p.RelationBags {
		if len(bag) < 2 {
			t.Fatalf("bag %v kept", bag)
		}
	}
	// Wire keywords must round-trip the task metadata the engine grades.
	task := ds.Tasks[0]
	in := wireKeywords(task.Keywords)
	if len(in.Keywords) != len(task.Keywords) {
		t.Fatalf("wire keywords %d, want %d", len(in.Keywords), len(task.Keywords))
	}
	if _, ok := datasets.ByName("nope"); ok {
		t.Fatal("ByName accepted a bogus dataset")
	}
	if _, err := MineProfiles([]string{"nope"}); err == nil {
		t.Fatal("MineProfiles accepted a bogus dataset")
	}
}
