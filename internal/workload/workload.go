package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"templar/internal/datasets"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/sqlparse"
	"templar/internal/xrand"
	"templar/pkg/api"
)

// Op is one request kind in the synthesized mix, named after its v2 route.
type Op string

// The five operation kinds a workload interleaves.
const (
	OpMapKeywords Op = "map-keywords"
	OpInferJoins  Op = "infer-joins"
	OpTranslate   Op = "translate"
	OpLogAppend   Op = "log"
	// OpFeedback is a translate tagged with a deterministic request ID
	// followed by a verdict on what it served — the learning loop.
	OpFeedback Op = "feedback"
)

// Ops lists the operation kinds in mix order.
func Ops() []Op { return []Op{OpMapKeywords, OpInferJoins, OpTranslate, OpFeedback, OpLogAppend} }

// Mix weights the operation kinds of a synthesized stream. Weights are
// relative integers (a zero weight drops the operation entirely); the
// remaining fields shape the requests themselves.
type Mix struct {
	// MapKeywords, InferJoins, Translate and LogAppend are the relative
	// frequencies of the four operations.
	MapKeywords int `json:"map_keywords"`
	InferJoins  int `json:"infer_joins"`
	Translate   int `json:"translate"`
	LogAppend   int `json:"log_append"`
	// Feedback is the relative frequency of translate-then-verdict pairs
	// (accept/reject/correct at seeded ratios); 0 in the default mix, so
	// feedback traffic is always an explicit opt-in.
	Feedback int `json:"feedback,omitempty"`
	// SessionFraction is the fraction of log appends folded as ordered
	// user sessions instead of independent entries, in [0, 1].
	SessionFraction float64 `json:"session_fraction"`
	// TranslateBatchMax bounds the per-request translate batch size
	// (drawn uniformly from [1, max]).
	TranslateBatchMax int `json:"translate_batch_max"`
	// LogBatchMax bounds the per-append batch size (drawn uniformly from
	// [1, max]; sessions draw from [2, max] since a session needs order).
	LogBatchMax int `json:"log_batch_max"`
}

// DefaultMix is a read-heavy serving profile: mostly keyword mapping and
// join inference, some full translations, a trickle of log appends (the
// paper's serving story: many reads folding occasional user queries back
// into the log).
func DefaultMix() Mix {
	return Mix{
		MapKeywords:       45,
		InferJoins:        25,
		Translate:         20,
		LogAppend:         10,
		SessionFraction:   0.25,
		TranslateBatchMax: 3,
		LogBatchMax:       4,
	}
}

// withDefaults fills the shape knobs a zero-ish Mix leaves unset.
func (m Mix) withDefaults() Mix {
	if m.MapKeywords <= 0 && m.InferJoins <= 0 && m.Translate <= 0 && m.LogAppend <= 0 && m.Feedback <= 0 {
		d := DefaultMix()
		m.MapKeywords, m.InferJoins, m.Translate, m.LogAppend = d.MapKeywords, d.InferJoins, d.Translate, d.LogAppend
	}
	if m.TranslateBatchMax <= 0 {
		m.TranslateBatchMax = DefaultMix().TranslateBatchMax
	}
	if m.LogBatchMax <= 0 {
		m.LogBatchMax = DefaultMix().LogBatchMax
	}
	return m
}

// total returns the summed operation weights.
func (m Mix) total() int {
	return m.MapKeywords + m.InferJoins + m.Translate + m.Feedback + m.LogAppend
}

// ParseMix parses the CLI mix syntax "map=45,infer=25,translate=20,log=10"
// into the default mix with the named weights overridden. Unknown keys and
// negative weights are errors; omitted keys keep their default.
func ParseMix(s string) (Mix, error) {
	m := DefaultMix()
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Mix{}, fmt.Errorf("workload: malformed mix term %q (want key=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(kv[1]))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("workload: bad weight in %q (want a non-negative integer)", part)
		}
		switch strings.ToLower(strings.TrimSpace(kv[0])) {
		case "map", "map-keywords":
			m.MapKeywords = w
		case "infer", "infer-joins":
			m.InferJoins = w
		case "translate":
			m.Translate = w
		case "log", "log-append":
			m.LogAppend = w
		case "feedback":
			m.Feedback = w
		default:
			return Mix{}, fmt.Errorf("workload: unknown mix key %q (want map, infer, translate, feedback or log)", kv[0])
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("workload: mix %q zeroes every operation", s)
	}
	return m, nil
}

// Request is one synthesized call: an operation against a dataset with
// exactly one of the payload fields set (matching Op).
type Request struct {
	// Seq is the request's position in its stream, starting at 0.
	Seq int `json:"seq"`
	// Op is the operation kind; Dataset the target tenant.
	Op      Op     `json:"op"`
	Dataset string `json:"dataset"`

	MapKeywords *api.MapKeywordsRequest `json:"map_keywords,omitempty"`
	InferJoins  *api.InferJoinsRequest  `json:"infer_joins,omitempty"`
	Translate   *api.TranslateRequest   `json:"translate,omitempty"`
	LogAppend   *api.LogAppendRequest   `json:"log_append,omitempty"`
	Feedback    *FeedbackCall           `json:"feedback,omitempty"`
}

// FeedbackCall is one synthesized learning-loop interaction: a translate
// tagged with a deterministic request ID, then a verdict on what it
// served. The verdict fields are baked into the stream at generation
// time, so the fingerprint pins the whole interaction.
type FeedbackCall struct {
	// RequestID tags the translate (via the SDK's WithRequestID) and
	// references it in the verdict; "wl-<seed>-<seq>" keeps IDs unique per
	// stream and reproducible across runs.
	RequestID string                `json:"request_id"`
	Translate *api.TranslateRequest `json:"translate"`
	// Verdict is one of the api.Verdict* constants; CorrectedSQL is drawn
	// from the profile's gold log for corrections.
	Verdict      string `json:"verdict"`
	CorrectedSQL string `json:"corrected_sql,omitempty"`
	Weight       int    `json:"weight,omitempty"`
}

// Profile is the request material mined from one dataset: everything a
// Generator draws from when synthesizing requests against that tenant.
type Profile struct {
	// Name is the tenant the requests target.
	Name string
	// Keywords are the benchmark tasks' parsed keywords in wire shape,
	// the inputs for map-keywords and translate requests.
	Keywords []api.KeywordsInput
	// RelationBags are the relation multisets of the gold SQL queries
	// (duplicates preserved — self-joins fork), the inputs for
	// infer-joins requests. Only bags with at least two relation
	// instances are kept (single-relation inference is a no-op).
	RelationBags [][]string
	// SQL is the gold SQL text, the material for live log appends.
	SQL []string
}

// MineProfile extracts a request profile from one benchmark dataset. The
// three SQL logs the synthesizer mines are the datasets' gold-SQL
// workloads — the same logs the serving engines are trained on, so the
// synthesized traffic matches what a production log would look like.
func MineProfile(ds *datasets.Dataset) (*Profile, error) {
	p := &Profile{Name: ds.Name}
	for _, task := range ds.Tasks {
		p.Keywords = append(p.Keywords, wireKeywords(task.Keywords))
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", task.ID, err)
		}
		if bag := q.Relations(); len(bag) >= 2 {
			p.RelationBags = append(p.RelationBags, bag)
		}
		p.SQL = append(p.SQL, task.Gold)
	}
	if len(p.Keywords) == 0 || len(p.SQL) == 0 {
		return nil, fmt.Errorf("workload: dataset %s has no tasks to mine", ds.Name)
	}
	return p, nil
}

// MineProfiles mines a profile per dataset name via datasets.ByName.
func MineProfiles(names []string) ([]*Profile, error) {
	out := make([]*Profile, 0, len(names))
	for _, name := range names {
		ds, ok := datasets.ByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: unknown dataset %q", name)
		}
		p, err := MineProfile(ds)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// wireKeywords converts engine keywords to the structured wire form.
func wireKeywords(kws []keyword.Keyword) api.KeywordsInput {
	out := make([]api.Keyword, len(kws))
	for i, kw := range kws {
		kj := api.Keyword{Text: kw.Text, Op: kw.Meta.Op, GroupBy: kw.Meta.GroupBy}
		switch kw.Meta.Context {
		case fragment.Select:
			kj.Context = "select"
		case fragment.From:
			kj.Context = "from"
		default:
			kj.Context = "where"
		}
		if len(kw.Meta.Aggs) > 0 {
			kj.Agg = kw.Meta.Aggs[0]
		}
		out[i] = kj
	}
	return api.KeywordsInput{Keywords: out}
}

// ---------------------------------------------------------------------------
// Deterministic stream synthesis.

// Generator synthesizes a deterministic request stream over the shared
// xorshift64* PRNG (internal/xrand — the same recurrence dataset
// generation and eval's folds use). It is not safe for concurrent use:
// generate the stream up front (Generate) and share the resulting
// slice, which is how Run keeps the stream reproducible regardless of
// worker scheduling.
type Generator struct {
	profiles []*Profile
	mix      Mix
	seed     uint64
	rng      *xrand.Rand
	seq      int
}

// NewGenerator builds a generator over the given profiles. The stream is
// fully determined by (profiles, mix, seed).
func NewGenerator(profiles []*Profile, mix Mix, seed uint64) (*Generator, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("workload: no dataset profiles")
	}
	mix = mix.withDefaults()
	if mix.total() <= 0 {
		return nil, fmt.Errorf("workload: mix has no positive weights")
	}
	if mix.SessionFraction < 0 || mix.SessionFraction > 1 {
		return nil, fmt.Errorf("workload: session fraction %v outside [0, 1]", mix.SessionFraction)
	}
	return &Generator{profiles: profiles, mix: mix, seed: seed, rng: xrand.New(seed)}, nil
}

// Seed returns the stream seed the generator was built with.
func (g *Generator) Seed() uint64 { return g.seed }

// Mix returns the effective (defaulted) mix.
func (g *Generator) Mix() Mix { return g.mix }

// Next synthesizes the next request of the stream.
func (g *Generator) Next() Request {
	p := g.profiles[g.rng.Intn(len(g.profiles))]
	req := Request{Seq: g.seq, Dataset: p.Name}
	g.seq++

	w := g.rng.Intn(g.mix.total())
	switch {
	case w < g.mix.MapKeywords:
		req.Op = OpMapKeywords
		req.MapKeywords = &api.MapKeywordsRequest{
			KeywordsInput: p.Keywords[g.rng.Intn(len(p.Keywords))],
			TopK:          1 + g.rng.Intn(5),
		}
	case w < g.mix.MapKeywords+g.mix.InferJoins && len(p.RelationBags) > 0:
		req.Op = OpInferJoins
		req.InferJoins = &api.InferJoinsRequest{
			Relations: p.RelationBags[g.rng.Intn(len(p.RelationBags))],
			TopK:      1 + g.rng.Intn(3),
		}
	case w < g.mix.MapKeywords+g.mix.InferJoins+g.mix.Translate || len(p.SQL) == 0:
		req.Op = OpTranslate
		n := 1 + g.rng.Intn(g.mix.TranslateBatchMax)
		tr := &api.TranslateRequest{Queries: make([]api.KeywordsInput, n)}
		for i := range tr.Queries {
			tr.Queries[i] = p.Keywords[g.rng.Intn(len(p.Keywords))]
		}
		req.Translate = tr
	case w < g.mix.MapKeywords+g.mix.InferJoins+g.mix.Translate+g.mix.Feedback:
		req.Op = OpFeedback
		fc := &FeedbackCall{
			RequestID: fmt.Sprintf("wl-%d-%d", g.seed, req.Seq),
			Translate: &api.TranslateRequest{
				Queries: []api.KeywordsInput{p.Keywords[g.rng.Intn(len(p.Keywords))]},
			},
		}
		// Seeded verdict ratios: half accepted, a sixth rejected, a third
		// corrected with gold SQL — enough of each to exercise every
		// ledger transition under concurrency.
		switch v := g.rng.Intn(6); {
		case v < 3:
			fc.Verdict = api.VerdictAccepted
			fc.Weight = 1 + g.rng.Intn(3)
		case v < 4:
			fc.Verdict = api.VerdictRejected
		default:
			fc.Verdict = api.VerdictCorrected
			fc.CorrectedSQL = p.SQL[g.rng.Intn(len(p.SQL))]
			fc.Weight = 1 + g.rng.Intn(2)
		}
		req.Feedback = fc
	default:
		req.Op = OpLogAppend
		session := g.rng.Float01() < g.mix.SessionFraction && len(p.SQL) >= 2
		n := 1 + g.rng.Intn(g.mix.LogBatchMax)
		if n > len(p.SQL) {
			// A short SQL log caps the batch: sessions window the log and
			// must not index past it.
			n = len(p.SQL)
		}
		la := &api.LogAppendRequest{}
		if session {
			// A session is an ordered window of the gold log: consecutive
			// queries, as one user refining an exploration would issue them.
			if n < 2 {
				n = 2
			}
			start := g.rng.Intn(len(p.SQL) - n + 1)
			for i := 0; i < n; i++ {
				la.Queries = append(la.Queries, api.LogEntry{SQL: p.SQL[start+i]})
			}
			la.Session = true
			la.Decay = 0.5
		} else {
			for i := 0; i < n; i++ {
				la.Queries = append(la.Queries, api.LogEntry{
					SQL:   p.SQL[g.rng.Intn(len(p.SQL))],
					Count: 1 + g.rng.Intn(3),
				})
			}
		}
		req.LogAppend = la
	}
	return req
}

// Generate synthesizes the next n requests of the stream.
func (g *Generator) Generate(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Fingerprint hashes a request stream into a stable hex digest: two runs
// with the same (profiles, mix, seed) produce equal fingerprints, which is
// the bit-reproducibility contract cmd/templar-load -print exposes and the
// determinism tests pin.
func Fingerprint(reqs []Request) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, r := range reqs {
		// Encode canonically (struct field order is fixed); a failure here
		// is impossible for these types.
		if err := enc.Encode(r); err != nil {
			panic("workload: fingerprint encoding: " + err.Error())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
