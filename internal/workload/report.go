package workload

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// EndpointStats is the aggregated result for one (dataset, op) pair.
type EndpointStats struct {
	Dataset string `json:"dataset"`
	Op      Op     `json:"op"`
	// Count is successful requests; Errors is failed SDK calls (transport
	// failures and non-2xx responses after the client's retries). Shed is
	// requests the overload-control layer refused (429 overloaded /
	// rate_limited, 503 draining) — the designed overload outcome, so it
	// is reported apart from Errors. ServerErrors is the 5xx subset of
	// Errors, the count an overload run asserts is zero.
	Count        int64 `json:"count"`
	Errors       int64 `json:"errors,omitempty"`
	Shed         int64 `json:"shed,omitempty"`
	ServerErrors int64 `json:"server_errors,omitempty"`
	// RPS is successful requests per wall-clock second of the whole run.
	RPS float64 `json:"rps"`
	// Latency quantiles in milliseconds, from the merged histogram.
	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MeanMillis float64 `json:"mean_ms"`
	MaxMillis  float64 `json:"max_ms"`
}

// Report is the outcome of one load run: run-identifying inputs (seed,
// mix, worker count — everything needed to reproduce the stream) plus
// aggregate and per-endpoint results.
type Report struct {
	Seed     uint64 `json:"seed"`
	Mix      Mix    `json:"mix"`
	Workers  int    `json:"workers"`
	Requests int    `json:"requests"`
	// Rate is the open-loop arrival rate the run was paced at (0 for a
	// closed loop).
	Rate         float64 `json:"rate,omitempty"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed,omitempty"`
	ServerErrors int64   `json:"server_errors,omitempty"`
	// Redirects is how many redirect hops the SDK transport followed
	// during the run — appends a gateway or follower replica bounced to
	// the primary with 307 not_primary. A redirected-then-successful call
	// is a success (its latency sample includes the extra hop), so this
	// rides apart from Errors.
	Redirects   int64           `json:"redirects,omitempty"`
	WallSeconds float64         `json:"wall_seconds"`
	RPS         float64         `json:"rps"`
	Endpoints   []EndpointStats `json:"endpoints"`
}

// buildReport aggregates merged per-endpoint state into a Report, with
// endpoints sorted by (dataset, op) so the output is deterministic.
func buildReport(cfg RunConfig, wall time.Duration, workers int, hists map[endpointKey]*Histogram, errs, sheds, serverErrs map[endpointKey]int64) *Report {
	keys := make(map[endpointKey]bool, len(hists)+len(errs))
	for k := range hists {
		keys[k] = true
	}
	for k := range errs {
		keys[k] = true
	}
	for k := range sheds {
		keys[k] = true
	}
	ordered := make([]endpointKey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].dataset != ordered[j].dataset {
			return ordered[i].dataset < ordered[j].dataset
		}
		return ordered[i].op < ordered[j].op
	})

	secs := wall.Seconds()
	rep := &Report{
		Seed:        cfg.Seed,
		Mix:         cfg.Mix.withDefaults(),
		Workers:     workers,
		Requests:    len(cfg.Requests),
		Rate:        cfg.Rate,
		WallSeconds: secs,
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var ok int64
	for _, k := range ordered {
		st := EndpointStats{Dataset: k.dataset, Op: k.op, Errors: errs[k], Shed: sheds[k], ServerErrors: serverErrs[k]}
		if h := hists[k]; h != nil && h.Count() > 0 {
			st.Count = h.Count()
			if secs > 0 {
				st.RPS = float64(h.Count()) / secs
			}
			st.P50Millis = ms(h.Quantile(0.50))
			st.P95Millis = ms(h.Quantile(0.95))
			st.P99Millis = ms(h.Quantile(0.99))
			st.MeanMillis = ms(h.Mean())
			st.MaxMillis = ms(h.Max())
		}
		ok += st.Count
		rep.Errors += st.Errors
		rep.Shed += st.Shed
		rep.ServerErrors += st.ServerErrors
		rep.Endpoints = append(rep.Endpoints, st)
	}
	if secs > 0 {
		rep.RPS = float64(ok) / secs
	}
	return rep
}

// benchEntry mirrors one cmd/bench2json benchmark record.
type benchEntry struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchDocument mirrors the cmd/bench2json output document, extended with
// the full workload report under a key benchmark consumers ignore.
type benchDocument struct {
	GOOS       string       `json:"goos,omitempty"`
	GOARCH     string       `json:"goarch,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
	Workload   *Report      `json:"workload"`
}

// EncodeJSON renders the report as an indented JSON document whose shape
// is compatible with the cmd/bench2json benchmark artifacts CI archives:
// tooling that reads .benchmarks[] from bench.json can read a load report
// unchanged, and the full workload detail rides along under .workload.
func (r *Report) EncodeJSON() ([]byte, error) {
	doc := benchDocument{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []benchEntry{},
		Workload:   r,
	}
	for _, ep := range r.Endpoints {
		if ep.Count == 0 {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, benchEntry{
			Package: "templar/internal/workload",
			Name:    fmt.Sprintf("Load/%s/%s", strings.ToLower(ep.Dataset), ep.Op),
			Runs:    ep.Count,
			Metrics: map[string]float64{
				"p50-ms":  ep.P50Millis,
				"p95-ms":  ep.P95Millis,
				"p99-ms":  ep.P99Millis,
				"mean-ms": ep.MeanMillis,
				"max-ms":  ep.MaxMillis,
				"rps":     ep.RPS,
				"errors":  float64(ep.Errors),
				"shed":    float64(ep.Shed),
			},
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Summary renders a fixed-width human-readable table of the run.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d workers=%d requests=%d errors=%d shed=%d wall=%.2fs rps=%.1f",
		r.Seed, r.Workers, r.Requests, r.Errors, r.Shed, r.WallSeconds, r.RPS)
	if r.Rate > 0 {
		fmt.Fprintf(&b, " rate=%.1f", r.Rate)
	}
	if r.Redirects > 0 {
		fmt.Fprintf(&b, " redirects=%d", r.Redirects)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-8s %-14s %8s %6s %6s %9s %9s %9s %9s\n",
		"dataset", "op", "count", "errs", "shed", "p50(ms)", "p95(ms)", "p99(ms)", "rps")
	for _, ep := range r.Endpoints {
		fmt.Fprintf(&b, "%-8s %-14s %8d %6d %6d %9.2f %9.2f %9.2f %9.1f\n",
			strings.ToLower(ep.Dataset), string(ep.Op), ep.Count, ep.Errors, ep.Shed,
			ep.P50Millis, ep.P95Millis, ep.P99Millis, ep.RPS)
	}
	return b.String()
}
