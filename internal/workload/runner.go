package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"templar/pkg/api"
	"templar/pkg/client"
)

// RunConfig configures one load run.
type RunConfig struct {
	// Client is the SDK client bound to the target server.
	Client *client.Client
	// Workers is the number of concurrent request loops (default 4).
	Workers int
	// Requests is the pre-generated deterministic stream to replay.
	Requests []Request
	// Seed is recorded into the report (the stream is already baked).
	Seed uint64
	// Mix is recorded into the report.
	Mix Mix
	// Rate, when positive, switches the run open-loop: request i is
	// dispatched at start + i/Rate arrivals per second, regardless of how
	// fast earlier requests complete — the load a population of
	// independent users actually applies, and the only mode that can
	// drive a server past its admission bound (a closed loop self-limits
	// to Workers in flight). Workers bounds the dispatch concurrency, so
	// size it above Rate × worst-case latency or the schedule slips.
	Rate float64
}

// endpointKey identifies one (dataset, op) histogram.
type endpointKey struct {
	dataset string
	op      Op
}

// workerStats is one worker's private recording state; workers never
// share mutable state while the run is hot.
type workerStats struct {
	hists      map[endpointKey]*Histogram
	errors     map[endpointKey]int64
	sheds      map[endpointKey]int64
	serverErrs map[endpointKey]int64
}

func newWorkerStats() *workerStats {
	return &workerStats{
		hists:      make(map[endpointKey]*Histogram),
		errors:     make(map[endpointKey]int64),
		sheds:      make(map[endpointKey]int64),
		serverErrs: make(map[endpointKey]int64),
	}
}

// isShed reports whether an SDK error is the server's overload-control
// layer refusing the request (server-wide shed, per-tenant quota, drain)
// — the designed overload outcome, reported apart from real failures.
func isShed(err error) bool {
	var e *api.Error
	if !errors.As(err, &e) {
		return false
	}
	switch e.Code {
	case api.CodeOverloaded, api.CodeRateLimited, api.CodeDraining:
		return true
	}
	return false
}

// isServerError reports whether an SDK error is a 5xx response — the
// outcome an overload run asserts never happens (a healthy server sheds
// with 429, it does not fall over with 500s).
func isServerError(err error) bool {
	var e *api.Error
	return errors.As(err, &e) && e.Status >= 500
}

// Run replays the request stream against the server with N concurrent
// workers and returns the aggregated report. Workers claim requests from
// the shared stream with one atomic increment, so the stream content is
// deterministic even though its assignment to workers is not.
//
// Exactly one latency sample is recorded per request, timed around the
// whole SDK call: the client's internal 5xx/transport retries (and their
// backoff sleeps) are part of that request's latency, never extra
// samples — a retried request must not inflate the histogram's count.
// Calls that ultimately fail are counted per endpoint instead of being
// recorded as latencies, so error spikes cannot masquerade as fast
// requests.
//
// If ctx expires before the stream is drained, Run returns the partial
// report together with the context's error: a truncated run must never
// read as a complete one.
func Run(ctx context.Context, cfg RunConfig) (*Report, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("workload: no client")
	}
	if len(cfg.Requests) == 0 {
		return nil, fmt.Errorf("workload: empty request stream")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}

	var next atomic.Int64
	stats := make([]*workerStats, workers)
	var wg sync.WaitGroup
	redirectBase := cfg.Client.Redirects()
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		stats[w] = newWorkerStats()
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := stats[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfg.Requests) || ctx.Err() != nil {
					return
				}
				if cfg.Rate > 0 {
					// Open loop: hold request i until its scheduled arrival.
					due := start.Add(time.Duration(float64(i) * float64(time.Second) / cfg.Rate))
					if d := time.Until(due); d > 0 {
						select {
						case <-ctx.Done():
							return
						case <-time.After(d):
						}
					}
				}
				req := cfg.Requests[i]
				key := endpointKey{dataset: req.Dataset, op: req.Op}
				t0 := time.Now()
				err := execute(ctx, cfg.Client, req)
				elapsed := time.Since(t0)
				if err != nil {
					if ctx.Err() != nil {
						return // cancellation, not a server failure
					}
					if isShed(err) {
						st.sheds[key]++
						continue
					}
					st.errors[key]++
					if isServerError(err) {
						st.serverErrs[key]++
					}
					continue
				}
				h := st.hists[key]
				if h == nil {
					h = &Histogram{}
					st.hists[key] = h
				}
				h.Add(elapsed)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	merged := make(map[endpointKey]*Histogram)
	errs := make(map[endpointKey]int64)
	sheds := make(map[endpointKey]int64)
	serverErrs := make(map[endpointKey]int64)
	for _, st := range stats {
		for k, h := range st.hists {
			m := merged[k]
			if m == nil {
				m = &Histogram{}
				merged[k] = m
			}
			m.Merge(h)
		}
		for k, n := range st.errors {
			errs[k] += n
		}
		for k, n := range st.sheds {
			sheds[k] += n
		}
		for k, n := range st.serverErrs {
			serverErrs[k] += n
		}
	}
	rep := buildReport(cfg, wall, workers, merged, errs, sheds, serverErrs)
	// The SDK counts redirect hops across the client's lifetime; the delta
	// over this run is how many calls a replica or gateway bounced to the
	// primary — successes, not failures, but worth surfacing.
	rep.Redirects = cfg.Client.Redirects() - redirectBase
	return rep, ctx.Err()
}

// execute performs one request through the SDK. The response body is
// decoded (so latency includes realistic client-side work) and discarded.
func execute(ctx context.Context, c *client.Client, req Request) error {
	switch req.Op {
	case OpMapKeywords:
		_, err := c.MapKeywords(ctx, req.Dataset, *req.MapKeywords)
		return err
	case OpInferJoins:
		_, err := c.InferJoins(ctx, req.Dataset, *req.InferJoins)
		return err
	case OpTranslate:
		// Per-item engine errors ride inside a 200 body; only transport
		// or whole-batch failures count as request errors.
		_, err := c.Translate(ctx, req.Dataset, *req.Translate)
		return err
	case OpLogAppend:
		_, err := c.AppendLog(ctx, req.Dataset, *req.LogAppend)
		return err
	case OpFeedback:
		fb := req.Feedback
		tr, err := c.Translate(client.WithRequestID(ctx, fb.RequestID), req.Dataset, *fb.Translate)
		if err != nil {
			return err
		}
		served := false
		for _, r := range tr.Results {
			if r.Error == nil && r.SQL != "" {
				served = true
				break
			}
		}
		if !served {
			return nil // nothing entered the ledger; no verdict to submit
		}
		_, err = c.Feedback(ctx, req.Dataset, api.FeedbackRequest{
			RequestID:    fb.RequestID,
			Verdict:      fb.Verdict,
			CorrectedSQL: fb.CorrectedSQL,
			Weight:       fb.Weight,
		})
		if err != nil {
			var e *api.Error
			// Under sustained load the bounded ledger may evict the entry
			// before the verdict lands — the designed too-late outcome, not
			// a failure.
			if errors.As(err, &e) && e.Code == api.CodeUnknownRequestID {
				return nil
			}
			return err
		}
		return nil
	default:
		return fmt.Errorf("workload: unknown op %q", req.Op)
	}
}
