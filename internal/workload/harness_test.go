package workload

// Shared test scaffolding: building live/frozen/store-loaded serving
// engines over the benchmark datasets and wiring them into an HTTP server
// plus SDK client, the way production deployments assemble the stack.

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/serve"
	"templar/internal/sqlparse"
	"templar/internal/store"
	"templar/internal/templar"
	"templar/internal/wal"
	"templar/pkg/client"
)

// buildGraph trains a QFG from a dataset's full gold-SQL log.
func buildGraph(t testing.TB, ds *datasets.Dataset) *qfg.Graph {
	t.Helper()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	return graph
}

// liveSystem builds an appendable log-mined engine.
func liveSystem(t testing.TB, ds *datasets.Dataset) *templar.System {
	t.Helper()
	live := qfg.NewLive(buildGraph(t, ds))
	return templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
}

// frozenSystem builds a non-appendable engine (Live() == nil).
func frozenSystem(t testing.TB, ds *datasets.Dataset) *templar.System {
	t.Helper()
	return templar.New(ds.DB, embedding.New(), buildGraph(t, ds), templar.Options{LogJoin: true})
}

// storeLoadedLiveSystem round-trips the dataset's snapshot through the
// binary .qfg codec and serves from the decoded archive, appendable — the
// cold-start-from-store path under live traffic.
func storeLoadedLiveSystem(t testing.TB, ds *datasets.Dataset) *templar.System {
	t.Helper()
	packed := store.Encode(ds.Name, buildGraph(t, ds).Snapshot(nil))
	ar, err := store.Decode(packed)
	if err != nil {
		t.Fatal(err)
	}
	live := qfg.NewLiveFromSnapshot(ar.Snapshot)
	return templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
}

// durableTenant assembles a WAL-armed tenant the way templar-serve does:
// pack (or reuse) the dataset's snapshot in storeDir, load the engine from
// it, attach the write-ahead log under walDir and replay any tail — the
// full crash-recovery boot path.
func durableTenant(t testing.TB, ds *datasets.Dataset, storeDir, walDir string) (*serve.Tenant, *wal.Recovery) {
	t.Helper()
	path := filepath.Join(storeDir, store.Filename(ds.Name))
	if _, err := os.Stat(path); err != nil {
		if err := store.WriteFile(path, ds.Name, buildGraph(t, ds).Snapshot(nil)); err != nil {
			t.Fatal(err)
		}
	}
	ar, err := store.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	live := qfg.NewLiveFromSnapshot(ar.Snapshot)
	sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
	tn := &serve.Tenant{Name: ds.Name, Sys: sys, Source: "store", StorePath: path, SnapshotSeq: ar.WalSeq}
	rec, err := serve.AttachWAL(tn, walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tn.WAL.Close() })
	return tn, rec
}

// tenantServer wires named engines into a registry server and returns it
// with an SDK client bound to it.
func tenantServer(t testing.TB, workers int, tenants ...*serve.Tenant) (*httptest.Server, *client.Client) {
	t.Helper()
	reg := serve.NewRegistry()
	for _, tn := range tenants {
		if err := reg.Add(tn); err != nil {
			t.Fatal(err)
		}
	}
	srv := serve.NewRegistryServer(reg, tenants[0].Name, workers, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	return ts, c
}

// soakDuration is how long each soak phase keeps traffic in flight:
// TEMPLAR_SOAK_MS (make soak / workflow_dispatch parameterize it), with a
// short PR-gate default chosen to still interleave hundreds of appends
// with thousands of reads under -race.
func soakDuration(t testing.TB) time.Duration {
	t.Helper()
	if v := os.Getenv("TEMPLAR_SOAK_MS"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			t.Fatalf("bad TEMPLAR_SOAK_MS %q", v)
		}
		return time.Duration(ms) * time.Millisecond
	}
	if testing.Short() {
		return 300 * time.Millisecond
	}
	return 1200 * time.Millisecond
}
