package workload

// The replica-convergence phase of the soak suite — the acceptance gate
// for WAL shipping. All three datasets are served durably by a primary
// while follower replicas bootstrap from the snapshot watermark and tail
// the WAL stream under racing append and read traffic. At every quiesce
// point the followers must be *bit-identical* to the primary, measured
// two ways: the PR 5 probe battery answered over HTTP, and the nine
// golden corpora (3 datasets x 3 obscurity levels) replayed through both
// engines with eval.ReplayGolden and compared byte-for-byte. The gate is
// then repeated after a follower kill-and-restart mid-stream (a fresh
// bootstrap at a later watermark) and after a torn tail is injected at
// the primary and recovered from.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/eval"
	"templar/internal/fragment"
	"templar/internal/repl"
	"templar/internal/serve"
	"templar/internal/templar"
	"templar/internal/wal"
	"templar/pkg/client"
)

// goldenLevels are the obscurity levels with committed corpora; together
// with the three datasets they span the nine golden files the
// convergence gate replays.
var goldenLevels = []fragment.Obscurity{fragment.Full, fragment.NoConst, fragment.NoConstOp}

// replicaSet is a full follower fleet: one bootstrapped, tailing replica
// per dataset, mounted behind a read-only registry server.
type replicaSet struct {
	ts   *httptest.Server
	fol  map[string]*repl.Follower
	sys  map[string]*templar.System
	stop func()
}

// startReplicaSet bootstraps one follower per dataset from the primary's
// snapshot endpoint and starts its tail loop. Safe to call while append
// traffic is in flight — that is exactly the mid-stream restart case.
func startReplicaSet(t testing.TB, names []string, primaryURL string) *replicaSet {
	t.Helper()
	reg := serve.NewRegistry()
	rs := &replicaSet{fol: map[string]*repl.Follower{}, sys: map[string]*templar.System{}}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, name := range names {
		ds, ok := datasets.ByName(name)
		if !ok {
			t.Fatalf("unknown dataset %q", name)
		}
		rc, err := repl.NewClient(primaryURL, nil)
		if err != nil {
			t.Fatal(err)
		}
		live, seq, err := repl.Bootstrap(context.Background(), rc, ds.Name)
		if err != nil {
			t.Fatalf("bootstrap %s: %v", name, err)
		}
		sys := templar.NewLive(ds.DB, embedding.New(), live, templar.Options{LogJoin: true})
		f := repl.NewFollower(rc, ds.Name, live, seq, repl.FollowerOptions{
			PollInterval: 2 * time.Millisecond,
			Backoff:      4 * time.Millisecond,
			MaxBackoff:   50 * time.Millisecond,
		})
		tn := &serve.Tenant{Name: ds.Name, Sys: sys, Source: "replica", Follower: f, Primary: primaryURL}
		if err := reg.Add(tn); err != nil {
			t.Fatal(err)
		}
		rs.fol[name] = f
		rs.sys[name] = sys
		wg.Add(1)
		go func() { defer wg.Done(); f.Run(ctx) }()
	}
	rs.ts = httptest.NewServer(serve.NewRegistryServer(reg, names[0], 8, nil).Handler())
	var once sync.Once
	rs.stop = func() {
		once.Do(func() {
			cancel()
			wg.Wait()
			rs.ts.Close()
		})
	}
	t.Cleanup(rs.stop)
	return rs
}

// waitConverged blocks until every follower's applied sequence equals
// its primary's WAL head.
func waitConverged(t testing.TB, names []string, prim map[string]*serve.Tenant, rs *replicaSet) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for _, name := range names {
		want := prim[name].WAL.LastSeq()
		for rs.fol[name].AppliedSeq() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: follower stuck at seq %d, primary at %d",
					name, rs.fol[name].AppliedSeq(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// assertBatteryConvergence answers the deterministic probe battery over
// HTTP on both servers and requires bit-identical bodies.
func assertBatteryConvergence(t testing.TB, names []string, pts, fts *httptest.Server) {
	t.Helper()
	for _, name := range names {
		battery := batteryFor(t, name, 15)
		want, got := answers(t, pts, battery), answers(t, fts, battery)
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("%s probe %d (%s): follower diverged from primary\nprimary:  %s\nfollower: %s",
					name, i, battery[i].path, want[i], got[i])
			}
		}
	}
}

// assertGoldenConvergence replays the nine golden corpora through the
// primary and follower engines and requires the encoded bytes to match
// exactly; the task selection must also match the committed corpora, so
// the gate provably exercises the same battery golden-check pins.
func assertGoldenConvergence(t testing.TB, names []string, primSys, folSys map[string]*templar.System) {
	t.Helper()
	for _, name := range names {
		ds, ok := datasets.ByName(name)
		if !ok {
			t.Fatalf("unknown dataset %q", name)
		}
		for _, ob := range goldenLevels {
			want, err := eval.ReplayGolden(ds, primSys[name], ob, eval.DefaultGoldenOptions())
			if err != nil {
				t.Fatalf("%s/%s: primary replay: %v", name, ob, err)
			}
			got, err := eval.ReplayGolden(ds, folSys[name], ob, eval.DefaultGoldenOptions())
			if err != nil {
				t.Fatalf("%s/%s: follower replay: %v", name, ob, err)
			}
			if !bytes.Equal(eval.EncodeGolden(want), eval.EncodeGolden(got)) {
				diffs := eval.DiffGolden(want, got)
				if len(diffs) > 5 {
					diffs = diffs[:5]
				}
				t.Fatalf("%s/%s: follower golden replay diverges from primary:\n%v", name, ob, diffs)
			}
			raw, err := os.ReadFile(filepath.Join("..", "eval", "testdata", "golden", eval.GoldenFilename(name, ob)))
			if err != nil {
				t.Fatal(err)
			}
			committed, err := eval.DecodeGolden(raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(committed.Tasks) != len(got.Tasks) {
				t.Fatalf("%s/%s: replay pinned %d tasks, committed corpus has %d",
					name, ob, len(got.Tasks), len(committed.Tasks))
			}
			for i := range committed.Tasks {
				if committed.Tasks[i].ID != got.Tasks[i].ID {
					t.Fatalf("%s/%s: replay task %d is %s, committed corpus pins %s",
						name, ob, i, got.Tasks[i].ID, committed.Tasks[i].ID)
				}
			}
		}
	}
}

// TestSoakReplicaConvergence is the replication acceptance gate: under a
// seeded append mix at the primary with readers racing on both sides,
// followers at the primary's applied sequence answer the probe battery
// and replay all nine golden corpora byte-for-byte identically — also
// after a mid-stream follower kill-and-restart, and after a torn WAL
// tail is injected at the primary and recovered from.
func TestSoakReplicaConvergence(t *testing.T) {
	names := []string{"MAS", "Yelp", "IMDB"}
	storeDir, walDir := t.TempDir(), t.TempDir()

	reg := serve.NewRegistry()
	prim := map[string]*serve.Tenant{}
	primSys := map[string]*templar.System{}
	for _, name := range names {
		ds, _ := datasets.ByName(name)
		tn, _ := durableTenant(t, ds, storeDir, walDir)
		if err := reg.Add(tn); err != nil {
			t.Fatal(err)
		}
		prim[name] = tn
		primSys[name] = tn.Sys
	}
	pts := httptest.NewServer(serve.NewRegistryServer(reg, names[0], 8, nil).Handler())
	t.Cleanup(pts.Close)
	pc, err := client.New(pts.URL, client.WithHTTPClient(pts.Client()))
	if err != nil {
		t.Fatal(err)
	}

	acked := map[string]*int64{}
	for _, name := range names {
		acked[name] = new(int64)
	}

	// traffic runs the seeded append mix against the primary (one
	// appender per dataset, acks must stay sequential) with read workers
	// racing on the given servers; during, if set, runs in the middle of
	// the storm — that is where followers get killed and restarted.
	traffic := func(dur time.Duration, seedBase uint64, readers []*httptest.Server, during func(dur time.Duration)) {
		deadline := time.Now().Add(dur)
		ctx := context.Background()
		var wg sync.WaitGroup
		var mu sync.Mutex
		var failures []string
		fail := func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			if len(failures) < 20 {
				failures = append(failures, fmt.Sprintf(format, args...))
			}
		}
		for i, name := range names {
			i, name := i, name
			last := acked[name]
			wg.Add(1)
			go func() {
				defer wg.Done()
				profiles, err := MineProfiles([]string{name})
				if err != nil {
					fail("appender %s: %v", name, err)
					return
				}
				g, err := NewGenerator(profiles, Mix{LogAppend: 1, SessionFraction: 0.3}, seedBase+uint64(i))
				if err != nil {
					fail("appender %s: %v", name, err)
					return
				}
				for time.Now().Before(deadline) {
					resp, err := pc.AppendLog(ctx, name, *g.Next().LogAppend)
					if err != nil {
						fail("appender %s: %v", name, err)
						return
					}
					if resp.WALSeq != *last+1 {
						fail("appender %s: ack wal_seq %d after %d (not sequential)", name, resp.WALSeq, *last)
						return
					}
					*last = resp.WALSeq
				}
			}()
		}
		for w, ts := range readers {
			w := w
			rc, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				profiles, err := MineProfiles(names)
				if err != nil {
					fail("reader %d: %v", w, err)
					return
				}
				g, err := NewGenerator(profiles, Mix{MapKeywords: 5, InferJoins: 3, Translate: 2}, seedBase+uint64(100+w))
				if err != nil {
					fail("reader %d: %v", w, err)
					return
				}
				for time.Now().Before(deadline) {
					if err := execute(ctx, rc, g.Next()); err != nil {
						fail("reader %d: %v", w, err)
						return
					}
				}
			}()
		}
		if during != nil {
			during(dur)
		}
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		if len(failures) > 0 {
			t.Fatalf("soak failures:\n%s", failures[0])
		}
	}

	// Phase 1: followers tail from the start; converge and gate.
	rs1 := startReplicaSet(t, names, pts.URL)
	traffic(soakDuration(t), 7000, []*httptest.Server{pts, rs1.ts}, nil)
	waitConverged(t, names, prim, rs1)
	assertBatteryConvergence(t, names, pts, rs1.ts)
	assertGoldenConvergence(t, names, primSys, rs1.sys)

	// Phase 2: kill the fleet mid-stream, then boot a fresh one — a
	// later-watermark bootstrap racing live appends — and gate again.
	var rs2 *replicaSet
	traffic(soakDuration(t), 8000, []*httptest.Server{pts}, func(dur time.Duration) {
		time.Sleep(dur / 3)
		rs1.stop()
		time.Sleep(dur / 3)
		rs2 = startReplicaSet(t, names, pts.URL)
	})
	waitConverged(t, names, prim, rs2)
	assertBatteryConvergence(t, names, pts, rs2.ts)
	assertGoldenConvergence(t, names, primSys, rs2.sys)

	total := int64(0)
	for _, name := range names {
		total += *acked[name]
	}
	if total == 0 {
		t.Fatal("soak made no appends; replica convergence was vacuous (raise TEMPLAR_SOAK_MS?)")
	}

	// Phase 3: image the primary's disk, tear every WAL tail, and boot a
	// recovered primary plus a fresh fleet from it. Recovery must keep
	// every acknowledged record (typed truncation of the torn frame),
	// and followers bootstrapped from the recovered primary must still
	// tail past the watermark and hold the same byte-identity gates.
	tornStore, tornWal := t.TempDir(), t.TempDir()
	copyDirFiles(t, storeDir, tornStore)
	copyDirFiles(t, walDir, tornWal)
	torn := binary.LittleEndian.AppendUint32(nil, 64)
	torn = append(torn, "the-rest-never-made-it"...)
	for _, name := range names {
		f, err := os.OpenFile(filepath.Join(tornWal, wal.Filename(name)), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(torn); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	reg3 := serve.NewRegistry()
	prim3 := map[string]*serve.Tenant{}
	prim3Sys := map[string]*templar.System{}
	for _, name := range names {
		ds, _ := datasets.ByName(name)
		tn3, rec3 := durableTenant(t, ds, tornStore, tornWal)
		if got, want := tn3.WAL.LastSeq(), uint64(*acked[name]); got != want {
			t.Fatalf("%s: recovered WAL at seq %d, last acknowledged append was %d", name, got, want)
		}
		if rec3.DroppedBytes != int64(len(torn)) {
			t.Fatalf("%s: torn tail dropped %d bytes, want %d", name, rec3.DroppedBytes, len(torn))
		}
		if !errors.Is(rec3.Cause, wal.ErrTruncated) {
			t.Fatalf("%s: torn tail cause = %v, want %v", name, rec3.Cause, wal.ErrTruncated)
		}
		if err := reg3.Add(tn3); err != nil {
			t.Fatal(err)
		}
		prim3[name] = tn3
		prim3Sys[name] = tn3.Sys
	}
	pts3 := httptest.NewServer(serve.NewRegistryServer(reg3, names[0], 8, nil).Handler())
	t.Cleanup(pts3.Close)
	pc3, err := client.New(pts3.URL, client.WithHTTPClient(pts3.Client()))
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap the fleet first, then append, so the new records arrive
	// over the tail stream rather than inside the snapshot.
	rs3 := startReplicaSet(t, names, pts3.URL)
	for i, name := range names {
		profiles, err := MineProfiles([]string{name})
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(profiles, Mix{LogAppend: 1}, uint64(9000+i))
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 3; n++ {
			if _, err := pc3.AppendLog(context.Background(), name, *g.Next().LogAppend); err != nil {
				t.Fatalf("post-recovery append %s: %v", name, err)
			}
		}
	}
	waitConverged(t, names, prim3, rs3)
	assertBatteryConvergence(t, names, pts3, rs3.ts)
	assertGoldenConvergence(t, names, prim3Sys, rs3.sys)
}
