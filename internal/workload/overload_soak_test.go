package workload

// The overload phase of the soak suite: open-loop traffic driven past the
// server's admission bound must be shed — with 429s, fairly across
// tenants, and never after a request was admitted — and a drain under
// load must lose zero acknowledged appends. These are the acceptance
// tests for the overload-control layer, the robustness counterpart to the
// kill-and-recover durability gate above.

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/serve"
	"templar/pkg/api"
	"templar/pkg/client"
)

// overloadClient is an SDK client with retries disabled: an overload run
// must observe every shed as a shed, not have the client quietly absorb
// them into latency.
func overloadClient(t testing.TB, url string) *client.Client {
	t.Helper()
	c, err := client.New(url, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOverloadShedsAtBoundFairly drives an open-loop stream at well past
// the admission bound across two tenants and asserts the acceptance
// criteria: sheds happen and are the only non-success outcome (no 5xx,
// no transport errors — admitted requests all complete), and no tenant's
// admitted rate falls below half its fair share.
func TestOverloadShedsAtBoundFairly(t *testing.T) {
	names := []string{"MAS", "Yelp"}
	reg := serve.NewRegistry()
	for _, name := range names {
		ds, _ := datasets.ByName(name)
		if err := reg.Add(&serve.Tenant{Name: name, Sys: liveSystem(t, ds), Source: "preloaded"}); err != nil {
			t.Fatal(err)
		}
	}
	// Two pool workers against a dispatch rate far above the service rate:
	// in-flight work stacks up to the bound almost immediately.
	const bound = 4
	srv := serve.NewRegistryServer(reg, names[0], 2, nil).WithAdmission(bound)
	ts := newOverloadServer(t, srv)

	profiles, err := MineProfiles(names)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(profiles, Mix{MapKeywords: 3, InferJoins: 2, Translate: 3}, 777)
	if err != nil {
		t.Fatal(err)
	}
	n := int(soakDuration(t).Milliseconds()) * 2 // 2 arrivals per soak-ms
	requests := g.Generate(n)

	rep, err := Run(context.Background(), RunConfig{
		Client:   overloadClient(t, ts.URL),
		Workers:  32,
		Requests: requests,
		Seed:     777,
		Rate:     2000, // 2× the bound's plausible service rate and then some
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Shed == 0 {
		t.Fatal("open-loop overload run shed nothing; admission control is not engaging")
	}
	if rep.ServerErrors != 0 {
		t.Fatalf("%d requests failed with 5xx under overload; a healthy server sheds with 429", rep.ServerErrors)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d non-shed errors under overload:\n%s", rep.Errors, rep.Summary())
	}
	var ok int64
	perTenant := map[string]int64{}
	for _, ep := range rep.Endpoints {
		ok += ep.Count
		perTenant[ep.Dataset] += ep.Count
	}
	if got := ok + rep.Shed; got != int64(n) {
		t.Fatalf("accounting leak: %d ok + %d shed != %d requests", ok, rep.Shed, n)
	}
	if ok < 20 {
		t.Fatalf("only %d admitted requests; the fairness check would be vacuous (raise TEMPLAR_SOAK_MS?)", ok)
	}
	// Fairness: the stream is uniform across tenants, so each tenant's
	// admitted share must be at least half of ok/len(names).
	fair := ok / int64(len(names))
	for _, name := range names {
		if got := perTenant[name]; got < fair/2 {
			t.Fatalf("tenant %s admitted %d of %d successes (fair share %d); shedding is starving it",
				name, got, ok, fair)
		}
	}

	// The server survived: healthy again once the pressure stops, with the
	// shed counters on display.
	h, err := getHealth(ts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Overload == nil || h.Overload.MaxInFlight != bound {
		t.Fatalf("healthz overload = %+v", h.Overload)
	}
	if shed := h.Overload.ShedTranslate + h.Overload.ShedLog + h.Overload.ShedQuery; shed != rep.Shed {
		t.Fatalf("server counted %d sheds, client observed %d", shed, rep.Shed)
	}
}

// TestHotTenantCannotStarveSiblings pins per-tenant isolation: a tenant
// flooding ten times harder than its sibling, throttled by a per-tenant
// rate limit, has its own traffic shed while the sibling's requests all
// complete untouched.
func TestHotTenantCannotStarveSiblings(t *testing.T) {
	hot, calm := "MAS", "Yelp"
	reg := serve.NewRegistry()
	for _, name := range []string{hot, calm} {
		ds, _ := datasets.ByName(name)
		if err := reg.Add(&serve.Tenant{Name: name, Sys: liveSystem(t, ds), Source: "preloaded"}); err != nil {
			t.Fatal(err)
		}
	}
	srv := serve.NewRegistryServer(reg, hot, 4, nil).WithAdmission(64)
	reg.Get(hot).SetLimits(serve.TenantLimits{PerSecond: 50, Burst: 5})
	ts := newOverloadServer(t, srv)

	// A 10:1 interleaved stream: nine hot-tenant arrivals for every calm one.
	gen := func(name string, seed uint64) *Generator {
		profiles, err := MineProfiles([]string{name})
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(profiles, Mix{MapKeywords: 1}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gHot, gCalm := gen(hot, 101), gen(calm, 202)
	n := int(soakDuration(t).Milliseconds())
	requests := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		if i%10 == 9 {
			requests = append(requests, gCalm.Next())
		} else {
			requests = append(requests, gHot.Next())
		}
	}

	rep, err := Run(context.Background(), RunConfig{
		Client:   overloadClient(t, ts.URL),
		Workers:  16,
		Requests: requests,
		Seed:     101,
		Rate:     1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.ServerErrors != 0 {
		t.Fatalf("non-shed failures in quota run:\n%s", rep.Summary())
	}
	var hotShed, calmShed, calmOK int64
	for _, ep := range rep.Endpoints {
		switch ep.Dataset {
		case hot:
			hotShed += ep.Shed
		case calm:
			calmShed += ep.Shed
			calmOK += ep.Count
		}
	}
	if hotShed == 0 {
		t.Fatal("the flooding tenant was never rate-limited")
	}
	if calmShed != 0 {
		t.Fatalf("the calm tenant was shed %d times by its sibling's flood", calmShed)
	}
	if want := int64(n / 10); calmOK != want {
		t.Fatalf("calm tenant completed %d of %d requests", calmOK, want)
	}
}

// TestDrainUnderLoadLosesNoAckedWork is the graceful-shutdown acceptance
// gate: with appends, reads and compaction sweeps in flight, a drain must
// (a) refuse new work, (b) let admitted work finish within the deadline,
// and (c) hand the WAL over such that a boot from the drained disk
// recovers exactly the acknowledged appends — no more, no less.
func TestDrainUnderLoadLosesNoAckedWork(t *testing.T) {
	ds, _ := datasets.ByName("MAS")
	storeDir, walDir := t.TempDir(), t.TempDir()
	tn, _ := durableTenant(t, ds, storeDir, walDir)
	reg := serve.NewRegistry()
	if err := reg.Add(tn); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewRegistryServer(reg, tn.Name, 8, nil).WithAdmission(16)
	ts := newOverloadServer(t, srv)
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	fail := func(s string) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 20 {
			failures = append(failures, s)
		}
	}
	isDrainRefusal := func(err error) bool {
		var e *api.Error
		return errors.As(err, &e) && e.Code == api.CodeDraining
	}

	// One appender tracking every acknowledged wal_seq; it keeps appending
	// until the drain refuses it, so the SIGTERM lands mid-traffic.
	acked := new(int64)
	drained := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		profiles, err := MineProfiles([]string{tn.Name})
		if err != nil {
			fail("appender: " + err.Error())
			return
		}
		g, err := NewGenerator(profiles, Mix{LogAppend: 1, SessionFraction: 0.3}, 9001)
		if err != nil {
			fail("appender: " + err.Error())
			return
		}
		for {
			req := g.Next()
			resp, err := c.AppendLog(ctx, tn.Name, *req.LogAppend)
			if err != nil {
				if isDrainRefusal(err) {
					return // the drain cut us off — exactly once, cleanly
				}
				fail("appender: " + err.Error())
				return
			}
			if resp.WALSeq != *acked+1 {
				fail("appender: non-sequential ack")
				return
			}
			*acked = resp.WALSeq
		}
	}()

	// Readers race the appends; they tolerate drain refusals and sheds.
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			profiles, err := MineProfiles([]string{tn.Name})
			if err != nil {
				fail("reader: " + err.Error())
				return
			}
			g, err := NewGenerator(profiles, Mix{MapKeywords: 5, Translate: 2}, uint64(9100+w))
			if err != nil {
				fail("reader: " + err.Error())
				return
			}
			for {
				select {
				case <-drained:
					return
				default:
				}
				if err := execute(ctx, c, g.Next()); err != nil && !isShed(err) {
					fail("reader: " + err.Error())
					return
				}
			}
		}()
	}

	// Compaction sweeps race the traffic and the drain itself.
	compactor := serve.NewCompactor(reg, 2048, time.Hour)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-drained:
				return
			default:
				compactor.Sweep()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	// SIGTERM lands mid-soak: the templar-serve drain sequence.
	time.Sleep(soakDuration(t))
	deadline := 10 * time.Second
	drainStart := time.Now()
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	if err := srv.DrainWait(dctx); err != nil {
		t.Fatalf("drain did not finish within %v: %v", deadline, err)
	}
	close(drained)
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("drain soak failures:\n%s", failures[0])
	}
	// Final handoff: complete any pending compaction, fsync, release.
	compactor.Sweep()
	if err := tn.WAL.Sync(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(drainStart); took > deadline {
		t.Fatalf("drain handoff took %v, past the %v deadline", took, deadline)
	}
	if *acked == 0 {
		t.Fatal("drain soak acked no appends; the zero-loss check was vacuous (raise TEMPLAR_SOAK_MS?)")
	}

	// Boot from the drained disk: the recovered WAL must sit exactly at
	// the last acknowledged append, and the engine must match the drained
	// one's log shape.
	imgStore, imgWal := t.TempDir(), t.TempDir()
	copyDirFiles(t, storeDir, imgStore)
	copyDirFiles(t, walDir, imgWal)
	tn2, _ := durableTenant(t, ds, imgStore, imgWal)
	if got, want := tn2.WAL.LastSeq(), uint64(*acked); got != want {
		t.Fatalf("recovered WAL at seq %d, last acknowledged append was %d", got, want)
	}
	s1, s2 := tn.Sys.Live().CurrentSnapshot(), tn2.Sys.Live().CurrentSnapshot()
	if s1.Queries() != s2.Queries() || s1.Vertices() != s2.Vertices() || s1.Edges() != s2.Edges() {
		t.Fatalf("recovered shape (%d,%d,%d) != drained shape (%d,%d,%d)",
			s2.Queries(), s2.Vertices(), s2.Edges(), s1.Queries(), s1.Vertices(), s1.Edges())
	}
}

// newOverloadServer starts an httptest server over a configured
// serve.Server (the helpers above build the handler themselves when no
// admission knobs are needed).
func newOverloadServer(t testing.TB, srv *serve.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}
