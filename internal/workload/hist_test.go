package workload

import (
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	for i := 1; i <= 1000; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != time.Second {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 500500*time.Microsecond; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Geometric buckets grow 25% per step: quantile estimates land within
	// ~15% of the exact order statistic.
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.exact) * 0.80)
		hi := time.Duration(float64(tc.exact) * 1.20)
		if got < lo || got > hi {
			t.Errorf("q%.0f = %v, want within [%v, %v]", tc.q*100, got, lo, hi)
		}
	}
	if h.Quantile(0) < h.Min() || h.Quantile(1) > h.Max() {
		t.Fatal("quantiles escaped the observed range")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 400; i++ {
		d := time.Duration(i*i) * time.Microsecond
		whole.Add(d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	a.Merge(&b)
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merged stats diverge: %v/%v/%v/%v vs %v/%v/%v/%v",
			a.Count(), a.Min(), a.Max(), a.Mean(), whole.Count(), whole.Min(), whole.Max(), whole.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%v: merged %v vs whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Add(-time.Second) // clamped to zero
	h.Add(0)
	h.Add(10 * time.Minute) // beyond the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 10*time.Minute {
		t.Fatalf("max = %v", h.Max())
	}
	if q := h.Quantile(1); q != 10*time.Minute {
		t.Fatalf("q100 = %v (must clamp to observed max)", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v (must clamp to observed min)", q)
	}
}
