package workload

// The concurrency invariant suite: race-enabled soak tests that
// interleave live log appends with query traffic across tenants and
// assert every observation is consistent with some atomically-published
// QFG snapshot. They exercise the whole serving stack together — serve
// handlers, the tenant registry, qfg.Live republishing, engine rebuild in
// templar.System, and the store reload path — which no single-package
// test does. Duration scales with TEMPLAR_SOAK_MS (see soakDuration).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/serve"
	"templar/pkg/api"
)

// logShape is one published snapshot's observable (queries, fragments,
// edges) triple. Torn reads would surface as triples that were never
// published together.
type logShape struct {
	queries, fragments, edges int
}

func shapeOf(st api.DatasetStatus) logShape {
	return logShape{queries: st.LogQueries, fragments: st.LogFragments, edges: st.LogEdges}
}

// published tracks, per dataset, every snapshot shape its single appender
// observed being published, in order.
type published struct {
	mu     sync.Mutex
	shapes map[string][]logShape
}

func (p *published) add(dataset string, s logShape) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shapes[dataset] = append(p.shapes[dataset], s)
}

func (p *published) contains(dataset string, s logShape) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, have := range p.shapes[dataset] {
		if have == s {
			return true
		}
	}
	return false
}

func (p *published) last(dataset string) (logShape, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sh := p.shapes[dataset]
	if len(sh) == 0 {
		return logShape{}, false
	}
	return sh[len(sh)-1], true
}

// getHealth fetches and decodes /healthz.
func getHealth(ts *httptest.Server) (*api.HealthResponse, error) {
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// postRaw posts a JSON body and returns status + raw response bytes.
func postRaw(ts *httptest.Server, path string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

// TestSoakConcurrencyInvariants interleaves live appends with query
// traffic across two live tenants (one log-mined, one loaded from a .qfg
// store archive) plus a frozen third tenant, and asserts:
//
//   - every query and append succeeds (no 5xx, no torn state surfacing as
//     handler failures) while snapshots republish underneath;
//   - per dataset, the (queries, fragments, edges) log shape grows
//     monotonically in every observation order — appender's, health
//     poller's — as append-only log evidence must;
//   - every health observation equals a shape the dataset's appender saw
//     published (or the initial one): responses are consistent with SOME
//     atomically-published snapshot, never a mix of two;
//   - the frozen tenant's answers stay byte-identical throughout: tenant
//     isolation holds under concurrent cross-tenant writes;
//   - after traffic quiesces, each live tenant serves exactly the last
//     published shape (the engine catches up to the final republish).
func TestSoakConcurrencyInvariants(t *testing.T) {
	mas, yelp, imdb := datasets.MAS(), datasets.Yelp(), datasets.IMDB()
	ts, c := tenantServer(t, 8,
		&serve.Tenant{Name: mas.Name, Sys: liveSystem(t, mas), Source: "built"},
		&serve.Tenant{Name: yelp.Name, Sys: storeLoadedLiveSystem(t, yelp), Source: "store"},
		&serve.Tenant{Name: imdb.Name, Sys: frozenSystem(t, imdb), Source: "built"},
	)
	liveNames := []string{mas.Name, yelp.Name}

	// Baselines: initial log shapes and the frozen tenant's probe answer.
	h0, err := getHealth(ts)
	if err != nil {
		t.Fatal(err)
	}
	pub := &published{shapes: map[string][]logShape{}}
	for _, st := range h0.Datasets {
		pub.add(st.Name, shapeOf(st))
	}
	probeReq := api.MapKeywordsRequest{KeywordsInput: wireKeywords(imdb.Tasks[0].Keywords), TopK: 3}
	probePath := "/v2/imdb/map-keywords"
	probeStatus, probeWant, err := postRaw(ts, probePath, probeReq)
	if err != nil || probeStatus != http.StatusOK {
		t.Fatalf("probe baseline: status %d err %v", probeStatus, err)
	}

	deadline := time.Now().Add(soakDuration(t))
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	// One appender per live dataset (append order per dataset is then
	// total, so the appender observes every published shape).
	for i, name := range liveNames {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			profiles, err := MineProfiles([]string{name})
			if err != nil {
				fail("appender %s: %v", name, err)
				return
			}
			g, err := NewGenerator(profiles, Mix{LogAppend: 1, SessionFraction: 0.3}, uint64(1000+i))
			if err != nil {
				fail("appender %s: %v", name, err)
				return
			}
			prev, _ := pub.last(name)
			for time.Now().Before(deadline) {
				req := g.Next()
				resp, err := c.AppendLog(ctx, name, *req.LogAppend)
				if err != nil {
					fail("appender %s: %v", name, err)
					return
				}
				cur := logShape{queries: resp.LogQueries, fragments: resp.LogFragments, edges: resp.LogEdges}
				if cur.queries <= prev.queries || cur.fragments < prev.fragments || cur.edges < prev.edges {
					fail("appender %s: shape regressed %+v -> %+v", name, prev, cur)
					return
				}
				pub.add(name, cur)
				prev = cur
			}
		}()
	}

	// Query workers: read-only mix over both live tenants.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			profiles, err := MineProfiles(liveNames)
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			g, err := NewGenerator(profiles, Mix{MapKeywords: 5, InferJoins: 3, Translate: 2}, uint64(2000+w))
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			for time.Now().Before(deadline) {
				if err := execute(ctx, c, g.Next()); err != nil {
					fail("reader %d: %v", w, err)
					return
				}
			}
		}()
	}

	// Health poller: monotonic shapes per dataset, each a published one.
	healthShapes := map[string][]logShape{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := map[string]logShape{}
		for time.Now().Before(deadline) {
			h, err := getHealth(ts)
			if err != nil {
				fail("health: %v", err)
				return
			}
			for _, st := range h.Datasets {
				cur := shapeOf(st)
				if p, ok := prev[st.Name]; ok &&
					(cur.queries < p.queries || cur.fragments < p.fragments || cur.edges < p.edges) {
					fail("health %s: shape regressed %+v -> %+v", st.Name, p, cur)
					return
				}
				prev[st.Name] = cur
				healthShapes[st.Name] = append(healthShapes[st.Name], cur)
			}
		}
	}()

	// Isolation prober: the frozen tenant's answer must never move.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			status, got, err := postRaw(ts, probePath, probeReq)
			if err != nil || status != http.StatusOK {
				fail("probe: status %d err %v", status, err)
				return
			}
			if !bytes.Equal(got, probeWant) {
				fail("probe: frozen tenant's answer drifted under cross-tenant appends:\nwas %s\nnow %s", probeWant, got)
				return
			}
		}
	}()

	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("soak failures:\n%s", failures[0])
	}

	// Every health-observed shape was atomically published (the appender
	// recorded it): no observation mixed two snapshots.
	for name, shapes := range healthShapes {
		for _, s := range shapes {
			if !pub.contains(name, s) {
				t.Fatalf("%s: health observed shape %+v that was never published", name, s)
			}
		}
	}

	// Quiesced: the serving engines converge on the last published shape.
	hN, err := getHealth(ts)
	if err != nil {
		t.Fatal(err)
	}
	appended := false
	for _, st := range hN.Datasets {
		last, ok := pub.last(st.Name)
		if !ok {
			continue
		}
		if got := shapeOf(st); got != last {
			t.Fatalf("%s: final shape %+v, want last published %+v", st.Name, got, last)
		}
		if first := pub.shapes[st.Name][0]; st.LiveLog && last.queries > first.queries {
			appended = true
		}
	}
	if !appended {
		t.Fatal("soak made no appends; invariants were vacuous (raise TEMPLAR_SOAK_MS?)")
	}
}

// TestSoakStoreLoadedMatchesMinedUnderTraffic is the store
// load-under-traffic gate: the same dataset served twice — once log-mined,
// once decoded from a .qfg archive — receives identical live appends while
// concurrent readers hammer both, and once traffic quiesces the two
// engines must answer byte-identically: a store round trip changes cold
// start, never semantics, even with appends interleaved.
func TestSoakStoreLoadedMatchesMinedUnderTraffic(t *testing.T) {
	ds := datasets.Yelp()
	const mined, loaded = "yelp-mined", "yelp-store"
	ts, c := tenantServer(t, 8,
		&serve.Tenant{Name: mined, Sys: liveSystem(t, ds), Source: "built"},
		&serve.Tenant{Name: loaded, Sys: storeLoadedLiveSystem(t, ds), Source: "store"},
	)

	profile, err := MineProfile(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Clone the profile under each tenant's route name.
	withName := func(name string) *Profile {
		p := *profile
		p.Name = name
		return &p
	}

	deadline := time.Now().Add(soakDuration(t))
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	// One appender applying each batch to BOTH tenants, so their logs
	// stay element-identical (order within a tenant is the append order).
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, err := NewGenerator([]*Profile{withName(mined)}, Mix{LogAppend: 1, SessionFraction: 0.3}, 77)
		if err != nil {
			fail("appender: %v", err)
			return
		}
		for time.Now().Before(deadline) {
			req := g.Next()
			for _, name := range []string{mined, loaded} {
				if _, err := c.AppendLog(ctx, name, *req.LogAppend); err != nil {
					fail("appender %s: %v", name, err)
					return
				}
			}
		}
	}()

	// Readers on both tenants while the logs grow.
	for w := 0; w < 4; w++ {
		w := w
		name := mined
		if w%2 == 1 {
			name = loaded
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := NewGenerator([]*Profile{withName(name)}, Mix{MapKeywords: 5, InferJoins: 3, Translate: 2}, uint64(300+w))
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			for time.Now().Before(deadline) {
				if err := execute(ctx, c, g.Next()); err != nil {
					fail("reader %d (%s): %v", w, name, err)
					return
				}
			}
		}()
	}

	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("soak failures:\n%s", failures[0])
	}

	// Quiesced: both engines hold identical log state...
	h, err := getHealth(ts)
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[string]logShape{}
	for _, st := range h.Datasets {
		shapes[st.Name] = shapeOf(st)
	}
	if shapes[mined] != shapes[loaded] {
		t.Fatalf("log shapes diverged: mined %+v vs store-loaded %+v", shapes[mined], shapes[loaded])
	}
	if shapes[mined].queries <= len(ds.Tasks) {
		t.Fatal("no appends landed; parity check was vacuous (raise TEMPLAR_SOAK_MS?)")
	}

	// ...and answer a probe battery byte-identically.
	g, err := NewGenerator([]*Profile{withName("")}, Mix{MapKeywords: 5, InferJoins: 3, Translate: 2}, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range g.Generate(30) {
		var path string
		var body any
		switch req.Op {
		case OpMapKeywords:
			path, body = "map-keywords", req.MapKeywords
		case OpInferJoins:
			path, body = "infer-joins", req.InferJoins
		case OpTranslate:
			path, body = "translate", req.Translate
		}
		s1, raw1, err1 := postRaw(ts, "/v2/"+mined+"/"+path, body)
		s2, raw2, err2 := postRaw(ts, "/v2/"+loaded+"/"+path, body)
		if err1 != nil || err2 != nil || s1 != http.StatusOK || s2 != http.StatusOK {
			t.Fatalf("probe %d (%s): statuses %d/%d errs %v/%v", req.Seq, path, s1, s2, err1, err2)
		}
		if !bytes.Equal(raw1, raw2) {
			t.Fatalf("probe %d (%s): store-loaded engine diverged from log-mined\nmined: %s\nstore: %s",
				req.Seq, path, raw1, raw2)
		}
	}
}
