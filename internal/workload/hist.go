package workload

import (
	"math"
	"time"
)

// Histogram bucket geometry: bucket i covers latencies in
// [lowest·growth^i, lowest·growth^(i+1)), so relative resolution is a
// constant ~25% from microseconds to about a minute — the usual trade for
// load-test latency recording (fixed memory, mergeable, quantiles without
// retaining samples).
const (
	histBuckets = 80
	histLowest  = float64(time.Microsecond)
	histGrowth  = 1.25
)

// Histogram is a fixed-geometry latency histogram. It records counts per
// geometric bucket plus exact count/sum/min/max, supports quantile
// estimation and lossless merging, and costs a few hundred bytes — each
// load worker keeps its own set and merges at the end, so recording never
// contends.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	if d < time.Duration(histLowest) {
		return 0
	}
	i := int(math.Log(float64(d)/histLowest) / math.Log(histGrowth))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Add records one latency sample.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns how many samples were recorded.
func (h *Histogram) Count() int64 { return h.count }

// Min and Max return the exact extreme samples (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the exact mean sample (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile estimates the q-quantile (q in [0, 1]) as the geometric
// midpoint of the bucket holding the q·count-th sample, clamped to the
// exact observed min/max so estimates never leave the sampled range.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	// Exact order statistics at the edges: p0 is the observed min, p100
	// the observed max, whatever the bucket geometry says.
	if rank <= 1 {
		return h.min
	}
	if rank >= h.count {
		return h.max
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := histLowest * math.Pow(histGrowth, float64(i))
			mid := time.Duration(lo * math.Sqrt(histGrowth))
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}
