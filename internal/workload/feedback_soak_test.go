package workload

// The feedback phase of the soak suite — the acceptance gate for the
// learning loop under fire. All three datasets are served durably by a
// primary with follower replicas tailing the WAL stream while, per
// tenant, a single verdict writer drives tagged translations and
// accept/reject/correct feedback through the public SDK, racing
// read-mix workers on both the primary and the followers. Applied
// verdicts must ack strictly sequential WAL positions (feedback rides
// the same single-writer append discipline as log appends), rejected
// verdicts must never consume one, and at every quiesce point the
// followers must answer the probe battery and replay the nine golden
// corpora bit-identically to the primary. The suite then images the
// primary's disk mid-fleet, boots a recovered primary from the copy,
// and proves every acknowledged feedback append survived the crash and
// still converges byte-identically on a freshly bootstrapped follower.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/serve"
	"templar/internal/templar"
	"templar/pkg/api"
	"templar/pkg/client"
)

// feedbackWriter drives the translate-then-verdict loop for one tenant
// until the deadline, asserting the ack discipline, and returns how
// many verdicts were applied (accepted/corrected) and the tenant's last
// acked WAL sequence.
func feedbackWriter(ctx context.Context, c *client.Client, name string, seed uint64, deadline time.Time, startSeq int64, fail func(string, ...any)) (applied, lastSeq int64) {
	profiles, err := MineProfiles([]string{name})
	if err != nil {
		fail("feedback %s: %v", name, err)
		return
	}
	g, err := NewGenerator(profiles, Mix{Feedback: 3, LogAppend: 1, SessionFraction: 0.3}, seed)
	if err != nil {
		fail("feedback %s: %v", name, err)
		return
	}
	lastSeq = startSeq
	for time.Now().Before(deadline) {
		req := g.Next()
		if req.Op == OpLogAppend {
			resp, err := c.AppendLog(ctx, name, *req.LogAppend)
			if err != nil {
				fail("append %s: %v", name, err)
				return
			}
			if resp.WALSeq != lastSeq+1 {
				fail("append %s: ack wal_seq %d after %d (not sequential)", name, resp.WALSeq, lastSeq)
				return
			}
			lastSeq = resp.WALSeq
			continue
		}
		fb := req.Feedback
		tr, err := c.Translate(client.WithRequestID(ctx, fb.RequestID), name, *fb.Translate)
		if err != nil {
			fail("feedback translate %s: %v", name, err)
			return
		}
		served := false
		for _, r := range tr.Results {
			if r.Error == nil && r.SQL != "" {
				served = true
				break
			}
		}
		if !served {
			continue // nothing entered the ledger; no verdict to submit
		}
		resp, err := c.Feedback(ctx, name, api.FeedbackRequest{
			RequestID:    fb.RequestID,
			Verdict:      fb.Verdict,
			CorrectedSQL: fb.CorrectedSQL,
			Weight:       fb.Weight,
		})
		if err != nil {
			var e *api.Error
			// The bounded ledger may evict the entry before the verdict
			// lands — the designed too-late outcome, not a failure.
			if errors.As(err, &e) && e.Code == api.CodeUnknownRequestID {
				continue
			}
			fail("feedback %s (%s): %v", name, fb.Verdict, err)
			return
		}
		switch {
		case fb.Verdict == api.VerdictRejected:
			if resp.Applied != 0 || resp.WALSeq != 0 {
				fail("feedback %s: rejected verdict applied %d entries at wal_seq %d", name, resp.Applied, resp.WALSeq)
				return
			}
		default:
			if resp.Applied == 0 {
				fail("feedback %s: %s verdict applied nothing", name, fb.Verdict)
				return
			}
			if resp.WALSeq != lastSeq+1 {
				fail("feedback %s: ack wal_seq %d after %d (not sequential)", name, resp.WALSeq, lastSeq)
				return
			}
			lastSeq = resp.WALSeq
			applied++
		}
	}
	return applied, lastSeq
}

// TestSoakFeedbackConvergence is the learning-loop soak gate: feedback
// verdicts interleaved with log appends and racing readers on all three
// datasets, WAL acks strictly sequential per tenant, followers
// bit-identical to the primary after quiesce, and — after the primary's
// disk is imaged and rebooted — every acknowledged feedback append
// recovered and converged byte-identically on a fresh follower.
func TestSoakFeedbackConvergence(t *testing.T) {
	names := []string{"MAS", "Yelp", "IMDB"}
	storeDir, walDir := t.TempDir(), t.TempDir()

	reg := serve.NewRegistry()
	prim := map[string]*serve.Tenant{}
	primSys := map[string]*templar.System{}
	for _, name := range names {
		ds, _ := datasets.ByName(name)
		tn, _ := durableTenant(t, ds, storeDir, walDir)
		if err := reg.Add(tn); err != nil {
			t.Fatal(err)
		}
		prim[name] = tn
		primSys[name] = tn.Sys
	}
	pts := httptest.NewServer(serve.NewRegistryServer(reg, names[0], 8, nil).Handler())
	t.Cleanup(pts.Close)
	pc, err := client.New(pts.URL, client.WithHTTPClient(pts.Client()))
	if err != nil {
		t.Fatal(err)
	}

	rs := startReplicaSet(t, names, pts.URL)

	ctx := context.Background()
	deadline := time.Now().Add(soakDuration(t))
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	applied := map[string]*int64{}
	lastSeq := map[string]*int64{}
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		ap, ls := new(int64), new(int64)
		applied[name], lastSeq[name] = ap, ls
		wg.Add(1)
		go func() {
			defer wg.Done()
			*ap, *ls = feedbackWriter(ctx, pc, name, uint64(11000+i), deadline, 0, fail)
		}()
	}
	for w, ts := range []*httptest.Server{pts, rs.ts} {
		w := w
		rc, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			profiles, err := MineProfiles(names)
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			g, err := NewGenerator(profiles, Mix{MapKeywords: 5, InferJoins: 3, Translate: 2}, uint64(11100+w))
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			for time.Now().Before(deadline) {
				if err := execute(ctx, rc, g.Next()); err != nil {
					fail("reader %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	if len(failures) > 0 {
		defer mu.Unlock()
		t.Fatalf("soak failures:\n%s", failures[0])
	}
	mu.Unlock()

	totalApplied := int64(0)
	for _, name := range names {
		totalApplied += *applied[name]
		if got, want := prim[name].WAL.LastSeq(), uint64(*lastSeq[name]); got != want {
			t.Fatalf("%s: WAL head %d, last acked seq %d", name, got, want)
		}
		st := prim[name].FeedbackLedger().Stats()
		if st.Accepted+st.Corrected == 0 {
			t.Fatalf("%s: no feedback applied; the soak was vacuous (raise TEMPLAR_SOAK_MS?)", name)
		}
	}
	if totalApplied == 0 {
		t.Fatal("no feedback appends acked; the soak was vacuous (raise TEMPLAR_SOAK_MS?)")
	}

	// Quiesce gate: followers at the primary's WAL head answer the probe
	// battery and replay all nine golden corpora bit-identically.
	waitConverged(t, names, prim, rs)
	assertBatteryConvergence(t, names, pts, rs.ts)
	assertGoldenConvergence(t, names, primSys, rs.sys)

	// Kill-and-recover: image the primary's disk exactly as a crash
	// would leave it, boot a recovered primary from the copy, and prove
	// every acknowledged feedback append survived — the recovered WAL
	// head equals the last acked sequence — then bootstrap a fresh
	// follower fleet from the recovered primary and hold the same
	// byte-identity gates.
	imgStore, imgWal := t.TempDir(), t.TempDir()
	copyDirFiles(t, storeDir, imgStore)
	copyDirFiles(t, walDir, imgWal)
	reg2 := serve.NewRegistry()
	prim2 := map[string]*serve.Tenant{}
	prim2Sys := map[string]*templar.System{}
	for _, name := range names {
		ds, _ := datasets.ByName(name)
		tn2, _ := durableTenant(t, ds, imgStore, imgWal)
		if got, want := tn2.WAL.LastSeq(), uint64(*lastSeq[name]); got != want {
			t.Fatalf("%s: recovered WAL head %d, last acknowledged append was %d", name, got, want)
		}
		if err := reg2.Add(tn2); err != nil {
			t.Fatal(err)
		}
		prim2[name] = tn2
		prim2Sys[name] = tn2.Sys
	}
	pts2 := httptest.NewServer(serve.NewRegistryServer(reg2, names[0], 8, nil).Handler())
	t.Cleanup(pts2.Close)

	rs2 := startReplicaSet(t, names, pts2.URL)
	waitConverged(t, names, prim2, rs2)
	assertBatteryConvergence(t, names, pts2, rs2.ts)
	assertGoldenConvergence(t, names, prim2Sys, rs2.sys)

	// The recovered primary must also agree byte-for-byte with the
	// still-running original — acked feedback is not just present, it
	// reproduces the exact same engine state.
	assertGoldenConvergence(t, names, primSys, prim2Sys)
}
