package workload

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"templar/internal/datasets"
	"templar/internal/serve"
	"templar/pkg/api"
	"templar/pkg/client"
)

// flakyOnce wraps a handler and fails every other eligible request with a
// 503, so (with one worker and the SDK's retry policy) every eligible
// request fails exactly once and then succeeds on retry.
type flakyOnce struct {
	next     http.Handler
	eligible func(*http.Request) bool
	arrivals atomic.Int64
}

func (f *flakyOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.eligible(r) && f.arrivals.Add(1)%2 == 1 {
		http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

// TestRunnerOneSamplePerRequestDespiteRetries is the retry/latency
// accounting gate: the SDK retries 5xx responses internally, and the
// runner must record exactly one histogram sample per request — a retried
// request's extra attempts fold into its single (longer) latency sample,
// never into the sample count.
func TestRunnerOneSamplePerRequestDespiteRetries(t *testing.T) {
	ds := datasets.MAS()
	srv := serve.NewServer(frozenSystem(t, ds), ds.Name, 4)
	flaky := &flakyOnce{
		next: srv.Handler(),
		eligible: func(r *http.Request) bool {
			return strings.HasSuffix(r.URL.Path, "/map-keywords") || strings.HasSuffix(r.URL.Path, "/infer-joins")
		},
	}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithRetries(2),
		client.WithBackoff(1, 2)) // ~zero backoff: this test measures counts, not latency
	if err != nil {
		t.Fatal(err)
	}

	profiles, err := MineProfiles([]string{ds.Name})
	if err != nil {
		t.Fatal(err)
	}
	mix := Mix{MapKeywords: 2, InferJoins: 1} // only retried (idempotent) ops
	g, err := NewGenerator(profiles, mix, 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Generate(60)

	// One worker: arrivals strictly alternate 503/OK, so every request
	// costs exactly two server hits.
	rep, err := Run(context.Background(), RunConfig{Client: c, Workers: 1, Requests: reqs, Seed: 11, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("report errors = %d: %s", rep.Errors, rep.Summary())
	}
	var samples int64
	for _, ep := range rep.Endpoints {
		samples += ep.Count
	}
	if samples != int64(len(reqs)) {
		t.Fatalf("histogram samples = %d, want %d (one per request)", samples, len(reqs))
	}
	if got, want := flaky.arrivals.Load(), int64(2*len(reqs)); got != want {
		t.Fatalf("server saw %d attempts, want %d (each request retried once)", got, want)
	}
}

// TestRunnerFullMixAgainstLiveServer drives the default mix — including
// live log appends and sessions — against a live two-tenant server and
// checks the aggregated report plus its bench2json-compatible encoding.
func TestRunnerFullMixAgainstLiveServer(t *testing.T) {
	mas, yelp := datasets.MAS(), datasets.Yelp()
	_, c := tenantServer(t, 4,
		&serve.Tenant{Name: mas.Name, Sys: liveSystem(t, mas), Source: "built"},
		&serve.Tenant{Name: yelp.Name, Sys: liveSystem(t, yelp), Source: "built"},
	)
	profiles, err := MineProfiles([]string{mas.Name, yelp.Name})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(profiles, DefaultMix(), 5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Generate(120)
	rep, err := Run(context.Background(), RunConfig{Client: c, Workers: 6, Requests: reqs, Seed: 5, Mix: DefaultMix()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors in report:\n%s", rep.Summary())
	}
	var total int64
	ops := map[Op]bool{}
	tenants := map[string]bool{}
	for _, ep := range rep.Endpoints {
		total += ep.Count
		ops[ep.Op] = true
		tenants[ep.Dataset] = true
		if ep.Count > 0 && (ep.P50Millis <= 0 || ep.P99Millis < ep.P50Millis || ep.MaxMillis < ep.P99Millis) {
			t.Fatalf("implausible quantiles for %s/%s: %+v", ep.Dataset, ep.Op, ep)
		}
	}
	if total != int64(len(reqs)) {
		t.Fatalf("sample total = %d, want %d", total, len(reqs))
	}
	if len(ops) != 4 || len(tenants) != 2 {
		t.Fatalf("coverage: ops %v tenants %v", ops, tenants)
	}

	raw, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The artifact must parse as a bench2json-shaped document.
	var doc struct {
		Benchmarks []struct {
			Package string             `json:"package"`
			Name    string             `json:"name"`
			Runs    int64              `json:"runs"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
		Workload *Report `json:"workload"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report JSON undecodable: %v", err)
	}
	if len(doc.Benchmarks) != len(rep.Endpoints) || doc.Workload == nil || doc.Workload.Requests != len(reqs) {
		t.Fatalf("bench document mismatch: %d benchmarks for %d endpoints", len(doc.Benchmarks), len(rep.Endpoints))
	}
	for _, b := range doc.Benchmarks {
		if b.Runs <= 0 || b.Metrics["p50-ms"] <= 0 {
			t.Fatalf("empty bench entry %+v", b)
		}
	}
}

// TestRunnerClassifiesRedirectedAppends pins the replica/gateway
// accounting contract: appends a follower bounces to the primary with
// 307 not_primary are replayed there by the SDK and must land in the
// report as successes with the hop counted under Redirects — the old
// behavior (an unfollowed 307 half-decoded as a bogus success, a
// followed one invisible) made gateway load runs unauditable.
func TestRunnerClassifiesRedirectedAppends(t *testing.T) {
	ds := datasets.MAS()
	primary, _ := tenantServer(t, 2, &serve.Tenant{Name: ds.Name, Sys: liveSystem(t, ds), Source: "built"})
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", primary.URL+r.URL.RequestURI())
		w.Header().Set("Content-Type", api.ProblemContentType)
		w.WriteHeader(http.StatusTemporaryRedirect)
		json.NewEncoder(w).Encode(api.NewError(http.StatusTemporaryRedirect, api.CodeNotPrimary, "read-only follower"))
	}))
	t.Cleanup(follower.Close)
	c, err := client.New(follower.URL)
	if err != nil {
		t.Fatal(err)
	}

	profiles, err := MineProfiles([]string{ds.Name})
	if err != nil {
		t.Fatal(err)
	}
	mix := Mix{LogAppend: 1} // every request is an append, every append bounces
	g, err := NewGenerator(profiles, mix, 9)
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Generate(24)
	rep, err := Run(context.Background(), RunConfig{Client: c, Workers: 3, Requests: reqs, Seed: 9, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("redirected appends counted as failures:\n%s", rep.Summary())
	}
	if rep.Redirects != int64(len(reqs)) {
		t.Fatalf("redirects = %d, want %d", rep.Redirects, len(reqs))
	}
	var samples int64
	for _, ep := range rep.Endpoints {
		samples += ep.Count
	}
	if samples != int64(len(reqs)) {
		t.Fatalf("samples = %d, want %d (every redirected append is one success)", samples, len(reqs))
	}
	if !strings.Contains(rep.Summary(), "redirects=24") {
		t.Fatalf("summary does not surface redirects:\n%s", rep.Summary())
	}
}

// TestRunnerSurfacesTruncation proves an expired context cannot read as
// a clean run: Run must hand back the context error alongside whatever
// partial report exists.
func TestRunnerSurfacesTruncation(t *testing.T) {
	ds := datasets.MAS()
	_, c := tenantServer(t, 2, &serve.Tenant{Name: ds.Name, Sys: frozenSystem(t, ds), Source: "built"})
	profiles, err := MineProfiles([]string{ds.Name})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(profiles, Mix{MapKeywords: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: nothing should be attempted
	rep, err := Run(ctx, RunConfig{Client: c, Workers: 2, Requests: g.Generate(50)})
	if err == nil {
		t.Fatal("truncated run returned a nil error")
	}
	if rep == nil {
		t.Fatal("truncated run must still return its partial report")
	}
	for _, ep := range rep.Endpoints {
		if ep.Count != 0 {
			t.Fatalf("canceled-before-start run recorded samples: %+v", ep)
		}
	}
}

// TestRunnerCountsFailures proves failed calls are counted, not recorded
// as latency samples.
func TestRunnerCountsFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := MineProfiles([]string{"mas"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(profiles, DefaultMix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunConfig{Client: c, Workers: 3, Requests: g.Generate(20)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 20 {
		t.Fatalf("errors = %d, want 20", rep.Errors)
	}
	for _, ep := range rep.Endpoints {
		if ep.Count != 0 {
			t.Fatalf("failed calls recorded as samples: %+v", ep)
		}
	}
}
