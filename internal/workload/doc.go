// Package workload is the deterministic load/soak harness behind
// cmd/templar-load and the concurrency invariant suite: it mines realistic
// request mixes from the three benchmark datasets' gold-SQL logs and
// replays them against a live multi-tenant server through the public Go
// SDK (pkg/client).
//
// The pipeline has three stages, each independently reusable:
//
//   - MineProfile turns one dataset into raw request material: wire-shaped
//     keyword inputs, join relation bags extracted from the gold SQL, and
//     the gold SQL itself for live log appends.
//   - Generator synthesizes an endless, weighted request stream from a set
//     of profiles. Every decision — operation kind, dataset, task, batch
//     size, session windows — is drawn from one seeded xorshift64* PRNG,
//     so a (profiles, mix, seed) triple always produces the same stream,
//     bit for bit (Fingerprint proves it).
//   - Run drives a server with N concurrent workers pulling from the
//     generated stream, recording one latency sample per request (client
//     retries are deliberately folded into their request's single sample,
//     never double-counted) into per-dataset, per-endpoint histograms, and
//     renders a Report whose JSON is shape-compatible with the
//     cmd/bench2json benchmark documents CI already archives.
//
// Only the request *stream* is deterministic; which worker executes which
// request, and the latencies observed, naturally are not. Anything that
// must be reproducible therefore derives from the stream, not the run.
package workload
