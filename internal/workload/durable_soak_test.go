package workload

// The kill-and-recover phase of the soak suite: all three datasets served
// durably (snapshot store + write-ahead log), with concurrent appenders
// tracking every acknowledged wal_seq, readers, and background compaction
// sweeps racing them. The process is then "kill -9"-ed — the disk state is
// imaged at an arbitrary instant, exactly what a crash leaves behind — and
// fresh tenants are booted from the image. Recovery must prove the WAL's
// central promise: an acknowledged append is never lost, and the recovered
// engine answers byte-identically to the one that never died. A torn-tail
// variant damages the imaged log past the last acknowledged record and
// asserts recovery truncates precisely there, with a typed cause.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"templar/internal/datasets"
	"templar/internal/serve"
	"templar/internal/wal"
	"templar/pkg/client"
)

// copyDirFiles images every regular file of src into dst — the moral
// equivalent of what the disk holds at the instant of a crash. Called only
// after traffic and compaction have quiesced, so the image is a state a
// real single-instant crash could have produced.
func copyDirFiles(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// probeBattery generates a deterministic read-only request list per
// dataset and returns each request's raw response bytes from ts.
type probe struct {
	path string
	body any
}

func batteryFor(t testing.TB, name string, n int) []probe {
	t.Helper()
	profiles, err := MineProfiles([]string{name})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(profiles, Mix{MapKeywords: 5, InferJoins: 3, Translate: 2}, 4242)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]probe, 0, n)
	for _, req := range g.Generate(n) {
		switch req.Op {
		case OpMapKeywords:
			out = append(out, probe{"/v2/" + name + "/map-keywords", req.MapKeywords})
		case OpInferJoins:
			out = append(out, probe{"/v2/" + name + "/infer-joins", req.InferJoins})
		case OpTranslate:
			out = append(out, probe{"/v2/" + name + "/translate", req.Translate})
		}
	}
	return out
}

func answers(t testing.TB, ts *httptest.Server, battery []probe) [][]byte {
	t.Helper()
	out := make([][]byte, len(battery))
	for i, p := range battery {
		status, raw, err := postRaw(ts, p.path, p.body)
		if err != nil || status != http.StatusOK {
			t.Fatalf("probe %s: status %d err %v", p.path, status, err)
		}
		out[i] = raw
	}
	return out
}

// TestSoakKillAndRecover is the acceptance gate for the durability layer:
// under racing appends, reads and compactions on all three datasets, every
// acknowledged append survives a crash, and the recovered engines are
// byte-identical to the survivors.
func TestSoakKillAndRecover(t *testing.T) {
	names := []string{"MAS", "Yelp", "IMDB"}
	storeDir, walDir := t.TempDir(), t.TempDir()

	reg := serve.NewRegistry()
	tenants := map[string]*serve.Tenant{}
	for _, name := range names {
		ds, _ := datasets.ByName(name)
		tn, _ := durableTenant(t, ds, storeDir, walDir)
		if err := reg.Add(tn); err != nil {
			t.Fatal(err)
		}
		tenants[name] = tn
	}
	ts := httptest.NewServer(serve.NewRegistryServer(reg, names[0], 8, nil).Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(soakDuration(t))
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	// One appender per dataset, tracking every acknowledged sequence. A
	// single appender per tenant means acks arrive in sequence order, so
	// the WAL receipt must be exactly the previous receipt plus one —
	// anything else is a lost or double-counted durable write.
	acked := map[string]*int64{}
	for i, name := range names {
		i, name := i, name
		last := new(int64)
		acked[name] = last
		wg.Add(1)
		go func() {
			defer wg.Done()
			profiles, err := MineProfiles([]string{name})
			if err != nil {
				fail("appender %s: %v", name, err)
				return
			}
			g, err := NewGenerator(profiles, Mix{LogAppend: 1, SessionFraction: 0.3}, uint64(5000+i))
			if err != nil {
				fail("appender %s: %v", name, err)
				return
			}
			for time.Now().Before(deadline) {
				req := g.Next()
				resp, err := c.AppendLog(ctx, name, *req.LogAppend)
				if err != nil {
					fail("appender %s: %v", name, err)
					return
				}
				if resp.WALSeq != *last+1 {
					fail("appender %s: ack wal_seq %d after %d (not sequential)", name, resp.WALSeq, *last)
					return
				}
				*last = resp.WALSeq
			}
		}()
	}

	// Readers keep snapshot lookups racing the appends and compactions.
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			profiles, err := MineProfiles(names)
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			g, err := NewGenerator(profiles, Mix{MapKeywords: 5, InferJoins: 3, Translate: 2}, uint64(6000+w))
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			for time.Now().Before(deadline) {
				if err := execute(ctx, c, g.Next()); err != nil {
					fail("reader %d: %v", w, err)
					return
				}
			}
		}()
	}

	// Compaction sweeps race the traffic with a threshold low enough to
	// fire repeatedly, so the imaged state may sit at any point of the
	// compaction lifecycle the protocol allows.
	compactor := serve.NewCompactor(reg, 2048, time.Hour)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			compactor.Sweep()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("soak failures:\n%s", failures[0])
	}

	// Pre-crash ground truth: final log shapes and a probe battery.
	hBefore, err := getHealth(ts)
	if err != nil {
		t.Fatal(err)
	}
	shapeBefore := map[string]logShape{}
	for _, st := range hBefore.Datasets {
		shapeBefore[st.Name] = shapeOf(st)
	}
	batteries := map[string][]probe{}
	wants := map[string][][]byte{}
	for _, name := range names {
		batteries[name] = batteryFor(t, name, 15)
		wants[name] = answers(t, ts, batteries[name])
	}
	appends := int64(0)
	for _, name := range names {
		appends += *acked[name]
	}
	if appends == 0 {
		t.Fatal("soak made no appends; kill-and-recover was vacuous (raise TEMPLAR_SOAK_MS?)")
	}

	// kill -9: image the disk, then boot fresh tenants from the image. The
	// old tenants' WALs are never closed or synced first — with per-append
	// fsync, everything acknowledged must already be durable.
	imgStore, imgWal := t.TempDir(), t.TempDir()
	copyDirFiles(t, storeDir, imgStore)
	copyDirFiles(t, walDir, imgWal)

	reg2 := serve.NewRegistry()
	for _, name := range names {
		ds, _ := datasets.ByName(name)
		tn2, _ := durableTenant(t, ds, imgStore, imgWal)
		if got, want := tn2.WAL.LastSeq(), uint64(*acked[name]); got != want {
			t.Fatalf("%s: recovered WAL at seq %d, last acknowledged append was %d", name, got, want)
		}
		if err := reg2.Add(tn2); err != nil {
			t.Fatal(err)
		}
	}
	ts2 := httptest.NewServer(serve.NewRegistryServer(reg2, names[0], 8, nil).Handler())
	t.Cleanup(ts2.Close)

	hAfter, err := getHealth(ts2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range hAfter.Datasets {
		if got := shapeOf(st); got != shapeBefore[st.Name] {
			t.Fatalf("%s: recovered shape %+v, want pre-crash %+v", st.Name, got, shapeBefore[st.Name])
		}
	}
	for _, name := range names {
		got := answers(t, ts2, batteries[name])
		for i := range got {
			if !bytes.Equal(got[i], wants[name][i]) {
				t.Fatalf("%s probe %d (%s): recovered engine diverged\nbefore: %s\nafter:  %s",
					name, i, batteries[name][i].path, wants[name][i], got[i])
			}
		}
	}

	// Torn-tail variant: a crash mid-append leaves a partial, unacked
	// record after the last acknowledged one. Recovery must truncate
	// exactly that record — typed cause, no acked record harmed.
	tornStore, tornWal := t.TempDir(), t.TempDir()
	copyDirFiles(t, storeDir, tornStore)
	copyDirFiles(t, walDir, tornWal)
	tornPath := filepath.Join(tornWal, wal.Filename("MAS"))
	f, err := os.OpenFile(tornPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := binary.LittleEndian.AppendUint32(nil, 64) // promises 64 payload bytes...
	torn = append(torn, "only-these-arrived"...)      // ...delivers 18
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ds, _ := datasets.ByName("MAS")
	tn3, rec3 := durableTenant(t, ds, tornStore, tornWal)
	if got, want := tn3.WAL.LastSeq(), uint64(*acked["MAS"]); got != want {
		t.Fatalf("torn tail: recovered WAL at seq %d, last acknowledged append was %d", got, want)
	}
	if rec3.DroppedBytes != int64(len(torn)) {
		t.Fatalf("torn tail: dropped %d bytes, want %d", rec3.DroppedBytes, len(torn))
	}
	if !errors.Is(rec3.Cause, wal.ErrTruncated) {
		t.Fatalf("torn tail: cause = %v, want %v", rec3.Cause, wal.ErrTruncated)
	}
	s3 := tn3.Sys.Live().CurrentSnapshot()
	if shape := (logShape{queries: s3.Queries(), fragments: s3.Vertices(), edges: s3.Edges()}); shape != shapeBefore["MAS"] {
		t.Fatalf("torn tail: recovered shape %+v, want pre-crash %+v", shape, shapeBefore["MAS"])
	}
}
