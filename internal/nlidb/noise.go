package nlidb

import (
	"strings"

	"templar/internal/fragment"
	"templar/internal/keyword"
)

// ParserNoise is a deterministic model of NaLIR's parser failures (§VII-C):
// the system's dependency parser had trouble extracting correct keywords and
// metadata from NLQs with explicit relation references or nested structure.
// Corruption is a pure function of the NLQ text, so results are reproducible
// across runs and identical for NaLIR and NaLIR+ (both share the front-end).
type ParserNoise struct {
	// BaseRate is the corruption probability (percent) for ordinary NLQs.
	BaseRate int
	// HazardRate is the corruption probability (percent) for NLQs flagged
	// as parser hazards (explicit relation references, nested intent).
	HazardRate int
}

// DefaultNaLIRNoise reflects the error analysis of §VII-C: hazard queries
// fail often; plain queries occasionally.
func DefaultNaLIRNoise() *ParserNoise {
	return &ParserNoise{BaseRate: 25, HazardRate: 65}
}

// Corrupt returns the keyword list as NaLIR's parser would produce it. When
// the NLQ draws a corruption, one of three deterministic mutations is
// applied:
//
//	0: metadata loss — aggregates, group-by flags and predicate operators
//	   are dropped (numeric predicates silently become equality);
//	1: context confusion — the first WHERE-context keyword is emitted in
//	   SELECT context;
//	2: keyword truncation — a multi-word keyword loses its trailing words.
//
// The input slice is never modified.
func (n *ParserNoise) Corrupt(nlq string, hazard bool, kws []keyword.Keyword) []keyword.Keyword {
	if n == nil || len(kws) == 0 {
		return kws
	}
	h := fnv64(nlq)
	rate := n.BaseRate
	if hazard {
		rate = n.HazardRate
	}
	if int(h%100) >= rate {
		return kws
	}
	out := make([]keyword.Keyword, len(kws))
	copy(out, kws)
	// Try the drawn mutation first; if it does not apply to this keyword
	// shape, cascade to the next so a corruption draw always has effect.
	start := int((h / 100) % 3)
	for attempt := 0; attempt < 3; attempt++ {
		switch (start + attempt) % 3 {
		case 0:
			applied := false
			for i := range out {
				if len(out[i].Meta.Aggs) > 0 || out[i].Meta.GroupBy || out[i].Meta.Op != "" {
					out[i].Meta.Aggs = nil
					out[i].Meta.GroupBy = false
					out[i].Meta.Op = ""
					applied = true
				}
			}
			if applied {
				return out
			}
		case 1:
			for i := range out {
				if out[i].Meta.Context == fragment.Where {
					out[i].Meta.Context = fragment.Select
					return out
				}
			}
		default:
			for i := range out {
				fields := strings.Fields(out[i].Text)
				if len(fields) > 1 {
					out[i].Text = fields[0]
					return out
				}
			}
		}
	}
	return out
}

// fnv64 is the 64-bit FNV-1a hash.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
