package nlidb

import (
	"reflect"
	"strings"
	"testing"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/schema"
	"templar/internal/sqlparse"
)

// exampleDB builds the Figure 1 fragment needed by the running example:
// publication, journal, domain, keyword with junctions, plus author/writes
// for self-joins.
func exampleDB(t testing.TB) *db.Database {
	t.Helper()
	g := schema.NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	num := func(name string, pk bool) schema.Attribute {
		return schema.Attribute{Name: name, Type: schema.Number, PrimaryKey: pk}
	}
	text := func(name string) schema.Attribute {
		return schema.Attribute{Name: name, Type: schema.Text}
	}
	must(g.AddRelation(schema.Relation{Name: "journal", Attributes: []schema.Attribute{num("jid", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "conference", Attributes: []schema.Attribute{num("cid", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "publication", Attributes: []schema.Attribute{num("pid", true), text("title"), num("year", false), num("jid", false), num("cid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "domain", Attributes: []schema.Attribute{num("did", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "keyword", Attributes: []schema.Attribute{num("kid", true), text("keyword")}}))
	must(g.AddRelation(schema.Relation{Name: "publication_keyword", Attributes: []schema.Attribute{num("pid", false), num("kid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "domain_keyword", Attributes: []schema.Attribute{num("did", false), num("kid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "domain_journal", Attributes: []schema.Attribute{num("did", false), num("jid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "domain_conference", Attributes: []schema.Attribute{num("did", false), num("cid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "author", Attributes: []schema.Attribute{num("aid", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "writes", Attributes: []schema.Attribute{num("aid", false), num("pid", false)}}))
	for _, fk := range []schema.ForeignKey{
		{FromRel: "publication", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"},
		{FromRel: "publication", FromAttr: "cid", ToRel: "conference", ToAttr: "cid"},
		{FromRel: "publication_keyword", FromAttr: "pid", ToRel: "publication", ToAttr: "pid"},
		{FromRel: "publication_keyword", FromAttr: "kid", ToRel: "keyword", ToAttr: "kid"},
		{FromRel: "domain_keyword", FromAttr: "did", ToRel: "domain", ToAttr: "did"},
		{FromRel: "domain_keyword", FromAttr: "kid", ToRel: "keyword", ToAttr: "kid"},
		{FromRel: "domain_journal", FromAttr: "did", ToRel: "domain", ToAttr: "did"},
		{FromRel: "domain_journal", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"},
		{FromRel: "domain_conference", FromAttr: "did", ToRel: "domain", ToAttr: "did"},
		{FromRel: "domain_conference", FromAttr: "cid", ToRel: "conference", ToAttr: "cid"},
		{FromRel: "writes", FromAttr: "aid", ToRel: "author", ToAttr: "aid"},
		{FromRel: "writes", FromAttr: "pid", ToRel: "publication", ToAttr: "pid"},
	} {
		must(g.AddForeignKey(fk))
	}
	d := db.New(g)
	d.MustInsert("journal", []db.Value{db.Num(1), db.Str("TKDE")})
	d.MustInsert("conference", []db.Value{db.Num(1), db.Str("VLDB")})
	d.MustInsert("publication", []db.Value{db.Num(10), db.Str("Query Processing at Scale"), db.Num(2001), db.Num(1), db.Num(1)})
	d.MustInsert("domain", []db.Value{db.Num(100), db.Str("Databases")})
	d.MustInsert("keyword", []db.Value{db.Num(200), db.Str("query optimization")})
	d.MustInsert("publication_keyword", []db.Value{db.Num(10), db.Num(200)})
	d.MustInsert("domain_keyword", []db.Value{db.Num(100), db.Num(200)})
	d.MustInsert("author", []db.Value{db.Num(1), db.Str("John Smith")})
	d.MustInsert("author", []db.Value{db.Num(2), db.Str("Jane Doe")})
	d.MustInsert("writes", []db.Value{db.Num(1), db.Num(10)})
	d.MustInsert("writes", []db.Value{db.Num(2), db.Num(10)})
	return d
}

// exampleQFG mines a log in which publications are queried with domains via
// the keyword path, and titles co-occur with domain-name predicates.
func exampleQFG(t testing.TB) *qfg.Graph {
	t.Helper()
	log := `
20x: SELECT j.name FROM journal j
10x: SELECT p.title FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d WHERE d.name = 'Databases' AND p.pid = pk.pid AND k.kid = pk.kid AND dk.kid = k.kid AND dk.did = d.did
6x: SELECT p.title FROM publication p WHERE p.year > 2000
4x: SELECT COUNT(p.title) FROM publication p WHERE p.year > 2000
`
	entries, err := sqlparse.ParseLog(log)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func exampleKeywords() []keyword.Keyword {
	return []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select}},
		{Text: "Databases", Meta: keyword.Metadata{Context: fragment.Where}},
	}
}

func TestRelationBagMergesAndDuplicates(t *testing.T) {
	cfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindAttr, Rel: "publication", Attr: "title"},
		{Kind: keyword.KindPred, Rel: "publication", Attr: "year", Op: ">", Value: sqlparse.Value{Kind: sqlparse.NumberVal, N: 2000}},
		{Kind: keyword.KindPred, Rel: "author", Attr: "name", Op: "=", Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "John"}},
		{Kind: keyword.KindPred, Rel: "author", Attr: "name", Op: "=", Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "Jane"}},
	}}
	bag := RelationBag(cfg)
	want := "publication,author,author"
	if got := strings.Join(bag, ","); got != want {
		t.Fatalf("bag = %q, want %q", got, want)
	}
	// Explicit relation mappings contribute one instance.
	cfg2 := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindRelation, Rel: "journal"},
		{Kind: keyword.KindAttr, Rel: "journal", Attr: "name"},
	}}
	if got := strings.Join(RelationBag(cfg2), ","); got != "journal" {
		t.Fatalf("bag = %q, want journal", got)
	}
}

func TestBuildSQLSingleRelation(t *testing.T) {
	cfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindAttr, Rel: "publication", Attr: "title"},
		{Kind: keyword.KindPred, Rel: "publication", Attr: "year", Op: ">", Value: sqlparse.Value{Kind: sqlparse.NumberVal, N: 2000}},
	}}
	path := joinpath.Path{Relations: []string{"publication"}}
	q, err := BuildSQL(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	got := q.String()
	want := "SELECT t1.title FROM publication t1 WHERE t1.year > 2000"
	if got != want {
		t.Fatalf("SQL = %q, want %q", got, want)
	}
}

func TestBuildSQLAggregateGetsGroupBy(t *testing.T) {
	cfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindAttr, Rel: "author", Attr: "name"},
		{Kind: keyword.KindAttr, Rel: "publication", Attr: "pid", Agg: "COUNT"},
	}}
	d := exampleDB(t)
	gen := joinpath.NewGenerator(d.Schema(), nil)
	paths, err := gen.Infer([]string{"author", "publication"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildSQL(cfg, paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "name" {
		t.Fatalf("GroupBy = %v in %s", q.GroupBy, q)
	}
}

func TestBuildSQLErrorWhenPathMissesRelation(t *testing.T) {
	cfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindAttr, Rel: "publication", Attr: "title"},
	}}
	path := joinpath.Path{Relations: []string{"journal"}}
	if _, err := BuildSQL(cfg, path); err == nil {
		t.Fatal("expected coverage error")
	}
}

func TestPipelineBaselineReproducesExample1Failure(t *testing.T) {
	// Example 1: the baseline maps "papers" to journal and produces the
	// unintended journal–domain query.
	d := exampleDB(t)
	sys := NewPipeline(d, embedding.New(), keyword.Options{})
	tr, err := sys.Translate("Find papers in the Databases domain", false, exampleKeywords())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.SQL, "journal") {
		t.Fatalf("baseline should pick journal (Example 1), got %s", tr.SQL)
	}
	if strings.Contains(tr.SQL, "publication_keyword") {
		t.Fatalf("baseline should not find the keyword path: %s", tr.SQL)
	}
}

func TestPipelinePlusReproducesExample3Fix(t *testing.T) {
	// Example 3: with Templar, "papers" maps to publication.title and the
	// join path goes publication–publication_keyword–keyword–
	// domain_keyword–domain.
	d := exampleDB(t)
	sys := NewPipelinePlus(d, embedding.New(), exampleQFG(t), true, keyword.Options{Obscurity: fragment.NoConstOp})
	tr, err := sys.Translate("Find papers in the Databases domain", false, exampleKeywords())
	if err != nil {
		t.Fatal(err)
	}
	wantGold := "SELECT p.title FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d WHERE d.name = 'Databases' AND p.pid = pk.pid AND k.kid = pk.kid AND dk.kid = k.kid AND dk.did = d.did"
	gold := sqlparse.MustParse(wantGold)
	if err := gold.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	if tr.SQL != gold.Canonical() {
		t.Fatalf("Pipeline+ SQL:\n  got  %s\n  want %s", tr.SQL, gold.Canonical())
	}
	if tr.Tie {
		t.Fatal("unexpected tie")
	}
}

func TestSelfJoinTranslationExample7(t *testing.T) {
	// "Find papers written by both John and Jane" — two predicates on
	// author.name force a self-join through two writes instances.
	d := exampleDB(t)
	sys := NewPipeline(d, embedding.New(), keyword.Options{})
	kws := []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select}},
		{Text: "John Smith", Meta: keyword.Metadata{Context: fragment.Where}},
		{Text: "Jane Doe", Meta: keyword.Metadata{Context: fragment.Where}},
	}
	tr, err := sys.Translate("Find papers written by both John Smith and Jane Doe", false, kws)
	if err != nil {
		t.Fatal(err)
	}
	// Both author values survive into the SQL with two author instances.
	if !strings.Contains(tr.SQL, "'John Smith'") || !strings.Contains(tr.SQL, "'Jane Doe'") {
		t.Fatalf("self-join SQL lost a predicate: %s", tr.SQL)
	}
	q := sqlparse.MustParse(tr.Rendered)
	authors := 0
	writes := 0
	for _, f := range q.From {
		switch f.Name {
		case "author":
			authors++
		case "writes":
			writes++
		}
	}
	if authors != 2 || writes != 2 {
		t.Fatalf("FROM = %v, want author x2 and writes x2", q.From)
	}
}

func TestParserNoiseDeterministic(t *testing.T) {
	n := DefaultNaLIRNoise()
	kws := []keyword.Keyword{
		{Text: "papers after 2000", Meta: keyword.Metadata{Context: fragment.Where, Op: ">"}},
	}
	a := n.Corrupt("some query", true, kws)
	b := n.Corrupt("some query", true, kws)
	if len(a) != len(b) {
		t.Fatal("nondeterministic corruption")
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatal("nondeterministic corruption")
		}
	}
	// Original slice unchanged.
	if kws[0].Meta.Op != ">" {
		t.Fatal("Corrupt mutated its input")
	}
}

func TestParserNoiseRates(t *testing.T) {
	n := &ParserNoise{BaseRate: 0, HazardRate: 100}
	kws := []keyword.Keyword{
		{Text: "alpha beta", Meta: keyword.Metadata{Context: fragment.Where, Op: ">", Aggs: []string{"COUNT"}}},
	}
	// Zero base rate: plain queries always pass through unchanged.
	for _, nlq := range []string{"a", "b", "c", "d", "e"} {
		out := n.Corrupt(nlq, false, kws)
		if !reflect.DeepEqual(out[0], kws[0]) {
			t.Fatalf("BaseRate 0 corrupted %q", nlq)
		}
	}
	// 100%% hazard rate: always corrupted (one of the three mutations).
	corruptions := 0
	for _, nlq := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		out := n.Corrupt(nlq, true, kws)
		if !reflect.DeepEqual(out[0], kws[0]) {
			corruptions++
		}
	}
	if corruptions != 7 {
		t.Fatalf("HazardRate 100: corrupted %d/7", corruptions)
	}
	// Nil noise is a no-op.
	var nilNoise *ParserNoise
	if got := nilNoise.Corrupt("x", true, kws); len(got) != 1 || !reflect.DeepEqual(got[0], kws[0]) {
		t.Fatal("nil noise must pass through")
	}
}

func TestNaLIRWeakerThanPipelinePlus(t *testing.T) {
	d := exampleDB(t)
	g := exampleQFG(t)
	nalir := NewNaLIR(d, &ParserNoise{BaseRate: 100, HazardRate: 100}, keyword.Options{})
	// Find an NLQ whose deterministic corruption draw is mutation 0
	// (metadata loss), which destroys the aggregate and operator below.
	nlq := ""
	for _, cand := range []string{"q0", "q1", "q2", "q3", "q4", "q5", "q6"} {
		if (fnv64(cand)/100)%3 == 0 {
			nlq = cand
			break
		}
	}
	if nlq == "" {
		t.Fatal("no mutation-0 NLQ found")
	}
	kws := []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select, Aggs: []string{"COUNT"}}},
		{Text: "after 2000", Meta: keyword.Metadata{Context: fragment.Where, Op: ">"}},
	}
	want := sqlparse.MustParse("SELECT COUNT(p.title) FROM publication p WHERE p.year > 2000")
	_ = want.Resolve(nil)

	plus := NewPipelinePlus(d, embedding.New(), g, true, keyword.Options{Obscurity: fragment.NoConstOp})
	trP, errP := plus.Translate(nlq, false, kws)
	if errP != nil {
		t.Fatal(errP)
	}
	if trP.SQL != want.Canonical() {
		t.Fatalf("Pipeline+ = %s, want %s", trP.SQL, want.Canonical())
	}
	// Metadata loss turns "year > 2000" into "year = 2000" (empty here)
	// and drops COUNT, so corrupted NaLIR cannot reproduce the gold query.
	trN, errN := nalir.Translate(nlq, false, kws)
	if errN == nil && trN.SQL == want.Canonical() {
		t.Fatalf("metadata-corrupted NaLIR should not match gold: %s", trN.SQL)
	}
}

func TestTranslateTieDetection(t *testing.T) {
	// Two text predicates with identical similarity on symmetric attributes
	// produce a tie in the baseline.
	g := schema.NewGraph()
	_ = g.AddRelation(schema.Relation{Name: "a", Attributes: []schema.Attribute{
		{Name: "id", Type: schema.Number, PrimaryKey: true},
		{Name: "left", Type: schema.Text},
		{Name: "right", Type: schema.Text},
	}})
	d := db.New(g)
	d.MustInsert("a", []db.Value{db.Num(1), db.Str("same value"), db.Str("same value")})
	sys := NewPipeline(d, embedding.New(), keyword.Options{})
	kws := []keyword.Keyword{
		{Text: "same value", Meta: keyword.Metadata{Context: fragment.Where}},
	}
	tr, err := sys.Translate("find same value", false, kws)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Tie {
		t.Fatalf("expected tie between a.left and a.right, got %s (score %v)", tr.SQL, tr.Score)
	}
}

func TestTranslateNoKeywords(t *testing.T) {
	d := exampleDB(t)
	sys := NewPipeline(d, embedding.New(), keyword.Options{})
	if _, err := sys.Translate("", false, nil); err == nil {
		t.Fatal("expected error for empty keywords")
	}
}

func TestSystemNames(t *testing.T) {
	d := exampleDB(t)
	g := exampleQFG(t)
	m := embedding.New()
	if NewPipeline(d, m, keyword.Options{}).Name() != "Pipeline" {
		t.Fatal("Pipeline name")
	}
	if NewPipelinePlus(d, m, g, true, keyword.Options{}).Name() != "Pipeline+" {
		t.Fatal("Pipeline+ name")
	}
	if NewNaLIR(d, nil, keyword.Options{}).Name() != "NaLIR" {
		t.Fatal("NaLIR name")
	}
	if NewNaLIRPlus(d, m, g, nil, keyword.Options{}).Name() != "NaLIR+" {
		t.Fatal("NaLIR+ name")
	}
}

func BenchmarkTranslatePipelinePlus(b *testing.B) {
	d := exampleDB(b)
	sys := NewPipelinePlus(d, embedding.New(), exampleQFG(b), true, keyword.Options{Obscurity: fragment.NoConstOp})
	kws := exampleKeywords()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Translate("Find papers in the Databases domain", false, kws); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNewSystemFromSnapshotMatchesNewSystem pins the snapshot-backed
// constructor (the store cold-start wiring) to the graph-backed one: both
// must produce identical configurations and translations.
func TestNewSystemFromSnapshotMatchesNewSystem(t *testing.T) {
	d := exampleDB(t)
	graph := exampleQFG(t)
	cfg := Config{Keyword: keyword.Options{Obscurity: fragment.NoConstOp}, LogJoin: true}
	built := NewSystem("Pipeline+", d, embedding.New(), Config{
		Keyword: cfg.Keyword, QFG: graph, LogJoin: true,
	})
	loaded := NewSystemFromSnapshot("Pipeline+", d, embedding.New(), graph.Snapshot(nil), cfg)

	kws := exampleKeywords()
	wantCfg, wantErr := built.TopMappings("", false, kws)
	gotCfg, gotErr := loaded.TopMappings("", false, kws)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error mismatch: snapshot=%v graph=%v", gotErr, wantErr)
	}
	if !reflect.DeepEqual(gotCfg, wantCfg) {
		t.Fatalf("configurations diverged:\nsnapshot: %v\ngraph:    %v", gotCfg, wantCfg)
	}
	wantTr, err := built.Translate("", false, kws)
	if err != nil {
		t.Fatal(err)
	}
	gotTr, err := loaded.Translate("", false, kws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTr, wantTr) {
		t.Fatalf("translations diverged:\nsnapshot: %+v\ngraph:    %+v", gotTr, wantTr)
	}

	// Nil snapshot degrades to the log-free baseline.
	baseline := NewSystemFromSnapshot("Pipeline", d, embedding.New(), nil, Config{Keyword: cfg.Keyword})
	cfgs, err := baseline.TopMappings("", false, kws)
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].QFGScore != 0 {
		t.Fatal("nil snapshot must yield zero log score")
	}
}
