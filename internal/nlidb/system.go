package nlidb

import (
	"context"
	"errors"
	"fmt"
	"math"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

// Translation is the output of one NLQ→SQL translation attempt.
type Translation struct {
	// SQL is the canonical form of the top-ranked query.
	SQL string
	// Rendered is the aliased SQL text as the NLIDB would emit it.
	Rendered string
	// Config is the winning keyword-mapping configuration.
	Config keyword.Configuration
	// Path is the winning join path.
	Path joinpath.Path
	// Score is the combined ranking score of the winner.
	Score float64
	// Tie reports that a *different* SQL query tied for the top score; the
	// evaluation counts tied results as incorrect (§VII-A5).
	Tie bool
}

// System is one NLIDB under evaluation.
type System struct {
	name       string
	mapper     *keyword.Mapper
	joins      *joinpath.Generator
	noise      *ParserNoise
	topConfigs int
	topPaths   int
}

// Name returns the system's display name ("Pipeline", "Pipeline+", …).
func (s *System) Name() string { return s.name }

// Config bundles what varies between the evaluated systems.
type Config struct {
	// Keyword configures κ, λ, obscurity for the mapper.
	Keyword keyword.Options
	// QFG enables log-driven keyword-mapping scores when non-nil.
	QFG *qfg.Graph
	// LogJoin switches join inference to log-driven edge weights.
	LogJoin bool
	// JoinWeights, when non-nil, overrides the join weight function
	// entirely (used by the design ablations, e.g. raw-count weights).
	JoinWeights joinpath.WeightFunc
	// Noise applies a parser corruption model before mapping (NaLIR).
	Noise *ParserNoise
	// TopConfigs bounds how many configurations are tried for SQL
	// construction. Default 8.
	TopConfigs int
	// TopPaths bounds how many join paths are considered per
	// configuration. Default 1 (systems take the best path).
	TopPaths int
}

// QFGParts is the QFG wiring shared by NewSystem and templar.New. With a
// graph (and the snapshot ablation off) it compiles one immutable
// interned-ID snapshot shared by both consumers — the keyword mapper ranks
// configurations against it and, when logJoin is set, the join weight
// function derives Dice from it at generator build time. On the
// DisableSnapshot ablation (or with no graph) the mapper and weights read
// the map-backed graph, and the returned snapshot is nil.
func QFGParts(database *db.Database, model *embedding.Model, graph *qfg.Graph, opts keyword.Options, logJoin bool) (*keyword.Mapper, *qfg.Snapshot, joinpath.WeightFunc) {
	var w joinpath.WeightFunc
	if graph != nil && !opts.DisableSnapshot {
		snap := graph.Snapshot(nil)
		if logJoin {
			w = joinpath.LogWeights(snap)
		}
		return keyword.NewSnapshotMapper(database, model, snap, opts), snap, w
	}
	if logJoin && graph != nil {
		w = joinpath.LogWeights(graph)
	}
	return keyword.NewMapper(database, model, graph, opts), nil, w
}

// NewSystemFromSnapshot assembles a named NLIDB over a precompiled QFG
// snapshot — e.g. one loaded from a packed internal/store archive — instead
// of a builder graph: the mapper ranks against the snapshot, and with
// cfg.LogJoin the join weights derive from it at generator build time.
// cfg.QFG is ignored; cfg.JoinWeights still overrides the weight function.
func NewSystemFromSnapshot(name string, database *db.Database, model *embedding.Model, snap *qfg.Snapshot, cfg Config) *System {
	if snap == nil {
		cfg.QFG = nil
		return NewSystem(name, database, model, cfg)
	}
	mapper := keyword.NewSnapshotMapper(database, model, snap, cfg.Keyword)
	w := cfg.JoinWeights
	if w == nil && cfg.LogJoin {
		w = joinpath.LogWeights(snap)
	}
	return NewFromParts(name, mapper, joinpath.NewGenerator(database.Schema(), w), cfg)
}

// NewSystem assembles a named NLIDB over the shared QFGParts wiring.
func NewSystem(name string, database *db.Database, model *embedding.Model, cfg Config) *System {
	mapper, _, derived := QFGParts(database, model, cfg.QFG, cfg.Keyword, cfg.LogJoin)
	w := cfg.JoinWeights
	if w == nil {
		w = derived
	}
	if cfg.TopConfigs <= 0 {
		cfg.TopConfigs = 8
	}
	if cfg.TopPaths <= 0 {
		// Consider a few alternative join paths per configuration so
		// equal-weight alternatives surface as ties: under uniform weights
		// an equal-length rival path yields the same ranking score with
		// different SQL, which the evaluation counts as incorrect.
		cfg.TopPaths = 3
	}
	return &System{
		name:       name,
		mapper:     mapper,
		joins:      joinpath.NewGenerator(database.Schema(), w),
		noise:      cfg.Noise,
		topConfigs: cfg.TopConfigs,
		topPaths:   cfg.TopPaths,
	}
}

// NewFromParts assembles a System around a prebuilt mapper and join-path
// generator, so a serving layer can run translation through the same
// index/cache-backed components it uses for direct mapping calls. The
// Keyword, QFG, LogJoin and JoinWeights fields of cfg are ignored — they
// are already baked into the parts; Noise, TopConfigs and TopPaths apply.
func NewFromParts(name string, mapper *keyword.Mapper, joins *joinpath.Generator, cfg Config) *System {
	if cfg.TopConfigs <= 0 {
		cfg.TopConfigs = 8
	}
	if cfg.TopPaths <= 0 {
		cfg.TopPaths = 3
	}
	return &System{
		name:       name,
		mapper:     mapper,
		joins:      joins,
		noise:      cfg.Noise,
		topConfigs: cfg.TopConfigs,
		topPaths:   cfg.TopPaths,
	}
}

// NewPipeline builds the SQLizer-style baseline of §VII-A2: word-embedding
// keyword mapping with no log information and minimum-length join paths.
func NewPipeline(database *db.Database, model *embedding.Model, opts keyword.Options) *System {
	return NewSystem("Pipeline", database, model, Config{Keyword: opts})
}

// NewPipelinePlus builds Pipeline augmented with Templar. logJoin toggles
// Table IV's LogJoin switch; keyword mapping always uses the QFG.
func NewPipelinePlus(database *db.Database, model *embedding.Model, graph *qfg.Graph, logJoin bool, opts keyword.Options) *System {
	return NewSystem("Pipeline+", database, model, Config{Keyword: opts, QFG: graph, LogJoin: logJoin})
}

// NewNaLIR builds the NaLIR-style baseline: lexicon-only (WordNet-like)
// similarity, preset uniform join weights, and a noisy parser front-end
// reproducing the §VII-C failure modes.
func NewNaLIR(database *db.Database, noise *ParserNoise, opts keyword.Options) *System {
	return NewSystem("NaLIR", database, embedding.NewLexiconOnly(), Config{Keyword: opts, Noise: noise})
}

// NewNaLIRPlus builds NaLIR augmented with Templar: the same noisy parser
// front-end, with keyword mapping and join inference deferred to Templar.
func NewNaLIRPlus(database *db.Database, model *embedding.Model, graph *qfg.Graph, noise *ParserNoise, opts keyword.Options) *System {
	return NewSystem("NaLIR+", database, model, Config{Keyword: opts, QFG: graph, LogJoin: true, Noise: noise})
}

// CallOptions are per-request overrides of a System's construction-time
// bounds; the zero value changes nothing.
type CallOptions struct {
	// Keyword is forwarded to the mapper (κ override, enumeration cap,
	// obscurity assertion).
	Keyword keyword.CallOptions
	// TopConfigs overrides how many configurations are tried for SQL
	// construction (0 = configured default).
	TopConfigs int
	// TopPaths overrides how many join paths are considered per
	// configuration (0 = configured default).
	TopPaths int
}

// Translate runs the full pipeline with no cancellation and the System's
// configured bounds; see TranslateCtx.
func (s *System) Translate(nlq string, hazard bool, kws []keyword.Keyword) (*Translation, error) {
	return s.TranslateCtx(context.Background(), nlq, hazard, kws, CallOptions{})
}

// TranslateCtx runs the full pipeline for one parsed NLQ: (optional parser
// noise) → MAPKEYWORDS → INFERJOINS per configuration → SQL construction →
// ranking by configuration score × join-path goodness.
//
// ctx rides into the mapper's configuration enumeration and every join
// path search, and is additionally checked between configurations, so a
// canceled request aborts mid-pipeline with the wrapped ctx error.
func (s *System) TranslateCtx(ctx context.Context, nlq string, hazard bool, kws []keyword.Keyword, co CallOptions) (*Translation, error) {
	if s.noise != nil {
		kws = s.noise.Corrupt(nlq, hazard, kws)
	}
	topConfigs := s.topConfigs
	if co.TopConfigs > 0 {
		topConfigs = co.TopConfigs
	}
	topPaths := s.topPaths
	if co.TopPaths > 0 {
		topPaths = co.TopPaths
	}
	// Only the best topConfigs configurations are ever tried for SQL
	// construction, so tell the mapper: it then runs a bounded top-k
	// selection over the enumeration (identical results to sorting the
	// whole product and slicing) instead of materializing all of it.
	kco := co.Keyword
	if kco.TopK <= 0 || kco.TopK > topConfigs {
		kco.TopK = topConfigs
	}
	configs, err := s.mapper.MapKeywordsCtx(ctx, kws, kco)
	if err != nil {
		return nil, err
	}
	if len(configs) > topConfigs {
		configs = configs[:topConfigs]
	}
	// Ranking follows the pipeline architecture (§III-F): the keyword
	// mapping configuration ranks first; among equally-likely
	// configurations (and among the join paths of one configuration) the
	// join-path goodness breaks ties. SQL construction never promotes a
	// lower-ranked configuration over a higher one — which also means
	// ranking needs only the two scores. SQL is therefore built lazily:
	// candidates are ranked score-first, and the expensive
	// construct→render→canonicalize chain runs only for the winner (and,
	// for tie detection, its exact rank peers) instead of every
	// (configuration, path) pair.
	type candidate struct {
		cfg      keyword.Configuration
		path     joinpath.Path
		cfgScore float64
		goodness float64
		dead     bool // BuildSQL failed: path does not cover the bag
	}
	var cands []candidate
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("nlidb: translation canceled: %w", err)
		}
		bag := RelationBag(cfg)
		paths, err := s.joins.InferCtx(ctx, bag, topPaths)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err // canceled mid-search, not an infeasible bag
			}
			continue // disconnected bag: this configuration is infeasible
		}
		for _, p := range paths {
			cands = append(cands, candidate{cfg: cfg, path: p, cfgScore: cfg.Score, goodness: p.Goodness})
		}
	}
	better := func(a, b candidate) bool {
		if math.Abs(a.cfgScore-b.cfgScore) > 1e-12 {
			return a.cfgScore > b.cfgScore
		}
		return a.goodness > b.goodness+1e-12
	}
	// Select the best buildable candidate: a candidate whose SQL cannot be
	// assembled (the join path fails to cover a mapped relation) is
	// discarded and selection re-runs, exactly as if it had been filtered
	// out up front.
	var (
		best      int
		bestQ     *sqlparse.Query
		bestCanon string
	)
	for {
		best = -1
		for i := range cands {
			if cands[i].dead {
				continue
			}
			if best < 0 || better(cands[i], cands[best]) {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("nlidb: no feasible configuration for keywords %v", kws)
		}
		q, err := BuildSQL(cands[best].cfg, cands[best].path)
		if err != nil {
			cands[best].dead = true
			continue
		}
		canon, err := canonicalSQL(q)
		if err != nil {
			return nil, fmt.Errorf("nlidb: generated unparseable SQL: %w", err)
		}
		bestQ, bestCanon = q, canon
		break
	}
	tr := Translation{
		SQL:      bestCanon,
		Rendered: bestQ.String(),
		Config:   cands[best].cfg,
		Path:     cands[best].path,
		Score:    cands[best].cfgScore * cands[best].goodness,
	}
	// The winning configuration's Mappings slice is a view into the
	// mapper's shared enumeration arena; copy it so a retained Translation
	// doesn't pin every enumerated configuration in memory.
	tr.Config.Mappings = append([]keyword.Mapping(nil), tr.Config.Mappings...)
	for i := range cands {
		if i == best || cands[i].dead {
			continue
		}
		sameRank := math.Abs(cands[i].cfgScore-cands[best].cfgScore) <= 1e-12 &&
			math.Abs(cands[i].goodness-cands[best].goodness) <= 1e-12
		if !sameRank {
			continue
		}
		q, err := BuildSQL(cands[i].cfg, cands[i].path)
		if err != nil {
			continue // would have been filtered out of the eager list too
		}
		canon, err := canonicalSQL(q)
		if err != nil {
			return nil, fmt.Errorf("nlidb: generated unparseable SQL: %w", err)
		}
		if canon != bestCanon {
			tr.Tie = true
			break
		}
	}
	return &tr, nil
}

// TopMappings exposes the mapper's ranked configurations without SQL
// construction, for keyword-mapping (KW) accuracy measurement. Parser noise
// is applied the same way Translate applies it.
func (s *System) TopMappings(nlq string, hazard bool, kws []keyword.Keyword) ([]keyword.Configuration, error) {
	if s.noise != nil {
		kws = s.noise.Corrupt(nlq, hazard, kws)
	}
	return s.mapper.MapKeywords(kws)
}

// ObscurityOf reports the obscurity the underlying mapper uses (diagnostic).
func ObscurityOf(opts keyword.Options) fragment.Obscurity { return opts.Obscurity }
