package nlidb

import (
	"strings"
	"testing"

	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/sqlparse"
)

func TestJoinWeightsOverride(t *testing.T) {
	d := exampleDB(t)
	// A custom weight function that makes the journal route to domain
	// essentially free forces the translator down that path regardless of
	// the QFG.
	cheapJournal := func(a, b string) float64 {
		if a == "domain_journal" || b == "domain_journal" {
			return 0.001
		}
		return 1
	}
	sys := NewSystem("custom", d, embedding.New(), Config{
		Keyword:     keyword.Options{},
		QFG:         exampleQFG(t),
		JoinWeights: cheapJournal,
	})
	tr, err := sys.Translate("Find papers in the Databases domain", false, exampleKeywords())
	if err != nil {
		t.Fatal(err)
	}
	// The keyword mapping still flips to publication.title (QFG), but the
	// join route is forced through domain_journal by the custom weights.
	if !strings.Contains(tr.SQL, "domain_journal") {
		t.Fatalf("custom weights ignored: %s", tr.SQL)
	}
	if sys.Name() != "custom" {
		t.Fatal("custom system name")
	}
}

func TestBuildSQLGroupByFlag(t *testing.T) {
	cfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindAttr, Rel: "publication", Attr: "year", GroupBy: true},
	}}
	path := joinpath.Path{Relations: []string{"publication"}}
	q, err := BuildSQL(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "year" {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
}

func TestBuildSQLNoSelectFallsBackToStar(t *testing.T) {
	cfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindPred, Rel: "publication", Attr: "year", Op: ">",
			Value: sqlparse.Value{Kind: sqlparse.NumberVal, N: 2000}},
	}}
	path := joinpath.Path{Relations: []string{"publication"}}
	q, err := BuildSQL(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || !q.Select[0].Star {
		t.Fatalf("Select = %v", q.Select)
	}
}

func TestBuildSQLDuplicateAttrOverflowClamped(t *testing.T) {
	// Three predicates on one attribute with only two instances in the
	// path: the third assignment clamps to the last instance rather than
	// panicking.
	cfg := keyword.Configuration{Mappings: []keyword.Mapping{
		{Kind: keyword.KindPred, Rel: "author", Attr: "name", Op: "=", Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "A"}},
		{Kind: keyword.KindPred, Rel: "author", Attr: "name", Op: "=", Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "B"}},
		{Kind: keyword.KindPred, Rel: "author", Attr: "name", Op: "=", Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "C"}},
	}}
	path := joinpath.Path{Relations: []string{"author", "author#2"}}
	q, err := BuildSQL(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 3 {
		t.Fatalf("Where = %v", q.Where)
	}
}

func TestTranslationScoreConsistency(t *testing.T) {
	d := exampleDB(t)
	sys := NewPipelinePlus(d, embedding.New(), exampleQFG(t), true, keyword.Options{Obscurity: fragment.NoConstOp})
	tr, err := sys.Translate("Find papers in the Databases domain", false, exampleKeywords())
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Config.Score * tr.Path.Goodness
	if tr.Score != want {
		t.Fatalf("Score = %v, want config %v × goodness %v", tr.Score, tr.Config.Score, tr.Path.Goodness)
	}
	// Rendered SQL re-parses and canonicalizes to tr.SQL.
	q := sqlparse.MustParse(tr.Rendered)
	if err := q.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	if q.Canonical() != tr.SQL {
		t.Fatalf("canonical mismatch: %s vs %s", q.Canonical(), tr.SQL)
	}
}

func TestNaLIRPlusSharesFrontEndWithNaLIR(t *testing.T) {
	// Both systems apply the SAME deterministic noise: corrupted keywords
	// are identical, so differences come only from Templar's mapping.
	noise := &ParserNoise{BaseRate: 100, HazardRate: 100}
	kws := []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select, Aggs: []string{"COUNT"}}},
		{Text: "after 2000", Meta: keyword.Metadata{Context: fragment.Where, Op: ">"}},
	}
	a := noise.Corrupt("nlq text", false, kws)
	b := noise.Corrupt("nlq text", false, kws)
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Meta.Op != b[i].Meta.Op {
			t.Fatal("front-end corruption differs between calls")
		}
	}
}
