// Package nlidb implements the pipeline NLIDB systems evaluated in the paper
// (§VII-A2) on top of the Templar facade:
//
//   - Pipeline: the SQLizer-style baseline — word-embedding keyword mapping
//     (λ pinned to 1, no QFG) and minimum-length join paths;
//   - Pipeline+: Pipeline augmented with Templar (QFG-driven configuration
//     ranking and log-driven join weights);
//   - NaLIR: a lexicon-driven baseline with a noisy-parser model reproducing
//     the parse failures described in §VII-C;
//   - NaLIR+: NaLIR's parser front-end with Templar's keyword mapping and
//     join inference behind it.
//
// The NLIDB owns final SQL construction (paper §III-E): BuildSQL assembles a
// complete SELECT statement from a keyword-mapping configuration and an
// inferred join path, including aliasing for self-joins.
package nlidb

import (
	"fmt"
	"sort"

	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/sqlparse"
)

// RelationBag derives the bag B_D of relations known to be in the SQL query
// from a configuration's mappings. A qualified attribute mapped more than
// once (e.g. author.name = 'John' and author.name = 'Jane') contributes one
// relation instance per occurrence, which triggers self-join forking in
// INFERJOINS (§VI-C); distinct attributes of the same relation share one
// instance.
func RelationBag(cfg keyword.Configuration) []string {
	attrCount := make(map[string]int)    // qualified attr -> occurrences
	relInstances := make(map[string]int) // rel -> required instances
	var order []string
	noteRel := func(rel string, n int) {
		if _, seen := relInstances[rel]; !seen {
			order = append(order, rel)
		}
		if n > relInstances[rel] {
			relInstances[rel] = n
		}
	}
	for _, m := range cfg.Mappings {
		switch m.Kind {
		case keyword.KindRelation:
			noteRel(m.Rel, 1)
		default:
			attrCount[m.Qualified()]++
			noteRel(m.Rel, attrCount[m.Qualified()])
		}
	}
	var bag []string
	for _, rel := range order {
		for i := 0; i < relInstances[rel]; i++ {
			bag = append(bag, rel)
		}
	}
	return bag
}

// BuildSQL assembles the final SQL query from a configuration and a join
// path covering RelationBag(cfg). It assigns one alias per relation
// instance, emits join conditions from the path's FK edges, and maps each
// configuration mapping onto the correct instance (the i-th occurrence of a
// duplicated attribute goes to the i-th instance of its relation).
func BuildSQL(cfg keyword.Configuration, path joinpath.Path) (*sqlparse.Query, error) {
	// Alias per instance, deterministic: sorted instance names get t1..tn.
	instances := append([]string(nil), path.Relations...)
	sort.Strings(instances)
	alias := make(map[string]string, len(instances))
	var from []sqlparse.TableRef
	for i, inst := range instances {
		a := fmt.Sprintf("t%d", i+1)
		alias[inst] = a
		from = append(from, sqlparse.TableRef{Name: joinpath.BaseRelation(inst), Alias: a})
	}

	// Instances of each base relation in sorted order, for assignment.
	relInsts := make(map[string][]string)
	for _, inst := range instances {
		base := joinpath.BaseRelation(inst)
		relInsts[base] = append(relInsts[base], inst)
	}

	q := &sqlparse.Query{Limit: -1}
	q.From = from

	// Assign attribute-bearing mappings to instances.
	attrSeen := make(map[string]int)
	instFor := func(m keyword.Mapping) (string, error) {
		insts := relInsts[m.Rel]
		if len(insts) == 0 {
			return "", fmt.Errorf("nlidb: join path %v does not cover relation %q", path.Relations, m.Rel)
		}
		i := attrSeen[m.Qualified()]
		attrSeen[m.Qualified()]++
		if i >= len(insts) {
			i = len(insts) - 1
		}
		return insts[i], nil
	}

	hasAgg := false
	var groupCols []sqlparse.ColumnRef
	for _, m := range cfg.Mappings {
		switch m.Kind {
		case keyword.KindRelation:
			// Already covered by the FROM clause via the join path.
		case keyword.KindAttr:
			inst, err := instFor(m)
			if err != nil {
				return nil, err
			}
			col := sqlparse.ColumnRef{Table: alias[inst], Column: m.Attr}
			q.Select = append(q.Select, sqlparse.SelectItem{Agg: m.Agg, Column: col})
			if m.Agg != "" {
				hasAgg = true
			}
			if m.GroupBy {
				groupCols = append(groupCols, col)
			}
		case keyword.KindPred:
			inst, err := instFor(m)
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, sqlparse.Pred{
				Column: sqlparse.ColumnRef{Table: alias[inst], Column: m.Attr},
				Op:     m.Op,
				Value:  m.Value,
			})
		}
	}
	if len(q.Select) == 0 {
		q.Select = append(q.Select, sqlparse.SelectItem{Star: true})
	}

	// Join conditions from the path edges.
	for _, e := range path.Edges {
		q.Where = append(q.Where, sqlparse.JoinCond{
			Left:  sqlparse.ColumnRef{Table: alias[e.FromInst], Column: e.FK.FromAttr},
			Right: sqlparse.ColumnRef{Table: alias[e.ToInst], Column: e.FK.ToAttr},
		})
	}

	// Standard SQL: when any aggregate is projected alongside plain
	// columns, the plain columns must be grouped.
	if hasAgg {
		for _, s := range q.Select {
			if s.Agg == "" && !s.Star {
				groupCols = append(groupCols, s.Column)
			}
		}
	}
	seen := make(map[string]bool)
	for _, c := range groupCols {
		if !seen[c.String()] {
			seen[c.String()] = true
			q.GroupBy = append(q.GroupBy, c)
		}
	}
	return q, nil
}

// canonicalSQL resolves aliases and canonicalizes for comparison.
func canonicalSQL(q *sqlparse.Query) (string, error) {
	cp, err := sqlparse.Parse(q.String())
	if err != nil {
		return "", err
	}
	if err := cp.Resolve(nil); err != nil {
		return "", err
	}
	return cp.Canonical(), nil
}
