package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"templar/internal/fragment"
	"templar/internal/qfg"
)

// Every format version shares the same 20-byte generic header and CRC
// trailer (all multi-byte integers little-endian):
//
//	offset  size  field
//	0       8     magic "TQFGSNAP"
//	8       4     format version (uint32)
//	12      8     total file size in bytes, trailer included (uint64)
//	20      …     version-specific payload
//	end−4   4     CRC-32C (Castagnoli) over everything before it
//
// The v1/v2 payload is varint-packed ("uv" is an unsigned varint as in
// encoding/binary):
//
//	uv len + bytes   dataset name (UTF-8)
//	uv               obscurity level
//	uv               total logged queries
//	uv               [v2 only] WAL sequence the snapshot covers
//	                 (0 = no write-ahead log)
//	uv F             interner table size, then F times:
//	  uv             fragment clause context
//	  uv len + bytes fragment expression
//	uv V             snapshot vertex count (V ≤ F), then
//	  V × uv         nv occurrence counts
//	  (V+1) × uv     CSR row index
//	  H × uv         neighbor IDs (H = rowStart[V])
//	  H × 8          blended co-occurrence weights
//	                 (float64 bits, preserved exactly)
//	  H × uv         raw integer co-occurrence counts
//
// The v3 payload is a fixed 8-byte-aligned section layout designed for
// zero-copy use straight out of an mmap'd file — see v3.go for the exact
// table. Decode reads every version; Encode writes v3.
//
// The declared-size field makes truncation detectable as such (ErrTruncated)
// instead of surfacing as a checksum mismatch; co-occurrence weights travel
// as raw IEEE-754 bits so a loaded snapshot scores bit-identically.
//
// Version history: v1 had no WAL sequence field; v2 added it so a snapshot
// names the exact write-ahead-log position it covers and boot replay becomes
// a filter (apply records with seq > WalSeq); v3 (current) switches the
// payload from varint packing to fixed-width aligned sections so the CSR
// arrays and interned strings can be used in place, without per-array
// allocation and copying (see Open). v1 files carry WalSeq 0.
const (
	magic = "TQFGSNAP"
	// Version is the current format version written by Encode.
	Version = 3
	// minVersion is the oldest format version Decode still reads.
	minVersion = 1

	headerSize  = len(magic) + 4 + 8
	trailerSize = 4
)

// Typed failure modes of Decode. A reader dispatching on them can tell a
// foreign file (ErrBadMagic) from a short read (ErrTruncated), a bit flip
// (ErrChecksum), a format from the future (*UnsupportedVersionError) and a
// structurally invalid payload (ErrCorrupt).
var (
	ErrBadMagic  = errors.New("store: not a packed QFG snapshot (bad magic)")
	ErrTruncated = errors.New("store: truncated snapshot file")
	ErrChecksum  = errors.New("store: snapshot checksum mismatch")
	ErrCorrupt   = errors.New("store: corrupt snapshot payload")
)

// UnsupportedVersionError reports a well-formed header whose format version
// this build cannot read.
type UnsupportedVersionError struct {
	Version uint32
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("store: unsupported snapshot format version %d (this build reads ≤ %d)", e.Version, Version)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Archive is one decoded snapshot file: the dataset it was packed from and
// the compiled QFG snapshot, ready to serve (its interner is rebuilt from
// the embedded fragment table).
type Archive struct {
	Dataset  string
	Snapshot *qfg.Snapshot
	// WalSeq is the write-ahead-log sequence number this snapshot covers:
	// boot replay applies exactly the WAL records with seq > WalSeq. Zero
	// for v1 files and for snapshots packed without a WAL.
	WalSeq uint64
}

// Filename is the conventional file name for a dataset's packed snapshot
// inside a store directory ("MAS" → "mas.qfg").
func Filename(dataset string) string {
	return strings.ToLower(dataset) + ".qfg"
}

// Encode packs a snapshot into the current binary format with no WAL
// coverage (WalSeq 0).
func Encode(dataset string, snap *qfg.Snapshot) []byte {
	return EncodeAt(dataset, snap, 0)
}

// EncodeAt packs a snapshot that covers the write-ahead log up to and
// including sequence walSeq.
func EncodeAt(dataset string, snap *qfg.Snapshot, walSeq uint64) []byte {
	return encodeV3At(dataset, snap, walSeq)
}

// encodeLegacyAt writes the varint-packed v1/v2 payload. Encode no longer
// emits it, but the compat tests keep proving Decode reads archives written
// by earlier builds, so the writer side stays exercisable.
func encodeLegacyAt(dataset string, snap *qfg.Snapshot, walSeq uint64, version uint32) []byte {
	parts := snap.Parts()
	frags := snap.Interner().Fragments()

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	sizeAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // total size, patched below

	buf = appendString(buf, dataset)
	buf = binary.AppendUvarint(buf, uint64(parts.Obscurity))
	buf = binary.AppendUvarint(buf, uint64(parts.Queries))
	if version >= 2 {
		buf = binary.AppendUvarint(buf, walSeq)
	}

	buf = binary.AppendUvarint(buf, uint64(len(frags)))
	for _, f := range frags {
		buf = binary.AppendUvarint(buf, uint64(f.Context))
		buf = appendString(buf, f.Expr)
	}

	buf = binary.AppendUvarint(buf, uint64(len(parts.NV)))
	for _, n := range parts.NV {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	for _, r := range parts.RowStart {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	for _, c := range parts.ColID {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	for _, co := range parts.Co {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(co))
	}
	for _, ne := range parts.NECount {
		buf = binary.AppendUvarint(buf, uint64(ne))
	}

	binary.LittleEndian.PutUint64(buf[sizeAt:], uint64(len(buf)+trailerSize))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// Decode unpacks a snapshot file of any supported version (v1–v3). Corrupt
// input of every kind returns a typed error (see ErrBadMagic and friends) —
// never a panic — so a serving layer can fall back to re-mining the log.
//
// For v3 input the returned archive's arrays and interned strings may alias
// data (zero copy); the caller must not mutate or recycle the buffer while
// the archive is in use. v1/v2 input always decodes into fresh memory.
func Decode(data []byte) (*Archive, error) {
	a, _, err := decodeAny(data)
	return a, err
}

// decodeAny verifies the generic header and trailer, then dispatches on the
// format version. aliased reports whether the archive references data.
func decodeAny(data []byte) (a *Archive, aliased bool, err error) {
	if len(data) < len(magic) {
		return nil, false, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return nil, false, ErrBadMagic
	}
	if len(data) < headerSize+trailerSize {
		return nil, false, ErrTruncated
	}
	version := binary.LittleEndian.Uint32(data[len(magic):])
	if version < minVersion || version > Version {
		return nil, false, &UnsupportedVersionError{Version: version}
	}
	declared := binary.LittleEndian.Uint64(data[len(magic)+4:])
	if uint64(len(data)) < declared {
		return nil, false, ErrTruncated
	}
	if uint64(len(data)) > declared {
		return nil, false, fmt.Errorf("%w: %d trailing bytes past declared size", ErrCorrupt, uint64(len(data))-declared)
	}
	body, trailer := data[:len(data)-trailerSize], data[len(data)-trailerSize:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, false, ErrChecksum
	}
	if version >= 3 {
		return decodeV3(body)
	}
	a, err = decodeLegacy(body, version)
	return a, false, err
}

// decodeLegacy walks the varint-packed v1/v2 payload with a bounds-checked
// cursor, copying every array into fresh memory.
func decodeLegacy(body []byte, version uint32) (*Archive, error) {
	d := &decoder{data: body, off: headerSize}
	dataset := d.string("dataset name")
	obscurity := fragment.Obscurity(d.uvarint("obscurity"))
	queries := d.int("query count")
	var walSeq uint64
	if version >= 2 {
		walSeq = d.uvarint("WAL sequence")
	}

	nfrags := d.count("fragment table size")
	frags := make([]fragment.Fragment, nfrags)
	for i := range frags {
		frags[i] = fragment.Fragment{
			Context: fragment.Context(d.uvarint("fragment context")),
			Expr:    d.string("fragment expression"),
		}
	}

	parts := qfg.SnapshotParts{Obscurity: obscurity, Queries: queries}
	nv := d.count("vertex count")
	parts.NV = make([]int, nv)
	for i := range parts.NV {
		parts.NV[i] = d.int("occurrence count")
	}
	parts.RowStart = make([]uint32, nv+1)
	for i := range parts.RowStart {
		parts.RowStart[i] = d.uint32("row index")
	}
	half := 0
	if d.err == nil {
		half = int(parts.RowStart[nv])
		// Each half-edge costs ≥ 10 encoded bytes (ID + weight + count),
		// so a corrupt row index can never drive allocation past file size.
		if half > (len(d.data)-d.off)/10 {
			d.fail("half-edge count", ErrCorrupt)
			half = 0
		}
	}
	// The row index's final entry IS the encoded half-edge count, so each
	// array is sized exactly once — no append-path regrowth on graphs whose
	// varint widths skew away from the guess a capacity heuristic would make.
	parts.ColID = make([]uint32, half)
	for i := range parts.ColID {
		parts.ColID[i] = d.uint32("neighbor ID")
	}
	parts.Co = make([]float64, half)
	for i := range parts.Co {
		parts.Co[i] = d.float64("co-occurrence weight")
	}
	parts.NECount = make([]int, half)
	for i := range parts.NECount {
		parts.NECount[i] = d.int("co-occurrence count")
	}
	if d.err == nil && d.off != len(d.data) {
		d.fail("payload end", ErrCorrupt)
	}
	if d.err != nil {
		return nil, d.err
	}

	in, err := fragment.NewInternerFromFragments(frags)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	snap, err := qfg.NewSnapshotFromParts(in, parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &Archive{Dataset: dataset, Snapshot: snap, WalSeq: walSeq}, nil
}

// Write encodes a snapshot to w.
func Write(w io.Writer, dataset string, snap *qfg.Snapshot) error {
	_, err := w.Write(Encode(dataset, snap))
	return err
}

// Read decodes a snapshot from r (which is read to EOF).
func Read(r io.Reader) (*Archive, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteFile atomically writes a packed snapshot with no WAL coverage: the
// bytes land in a temporary file first and are renamed over path, so a
// crash mid-write never leaves a half-written archive where a loader would
// find it.
func WriteFile(path, dataset string, snap *qfg.Snapshot) error {
	return WriteFileAt(path, dataset, snap, 0)
}

// WriteFileAt is WriteFile for a snapshot covering the write-ahead log
// through sequence walSeq. Compaction relies on the same atomicity: until
// the rename lands, the loader sees the previous archive (and replays the
// rotated-out WAL segment); after it, the new archive's WalSeq filters
// those records out.
func WriteFileAt(path, dataset string, snap *qfg.Snapshot, walSeq uint64) error {
	data := EncodeAt(dataset, snap, walSeq)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp's 0600 would survive the rename and make the archive
	// unreadable to a service running as a different user than the packer.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile loads a packed snapshot from disk.
func ReadFile(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked cursor over the checksummed body. The first
// failure sticks: every later read returns zero values, so call sites stay
// linear and the caller checks err once.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(what string, sentinel error) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: bad %s at offset %d", sentinel, what, d.off)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(what, ErrCorrupt)
		return 0
	}
	d.off += n
	return v
}

// count reads a collection size and rejects values that could not possibly
// fit in the remaining payload (each element takes at least one byte), so
// a corrupt length can never drive allocation beyond the file size.
func (d *decoder) count(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > uint64(len(d.data)-d.off) {
		d.fail(what, ErrCorrupt)
		return 0
	}
	return int(v)
}

func (d *decoder) int(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > math.MaxInt64/2 {
		d.fail(what, ErrCorrupt)
		return 0
	}
	return int(v)
}

func (d *decoder) uint32(what string) uint32 {
	v := d.uvarint(what)
	if d.err == nil && v > math.MaxUint32 {
		d.fail(what, ErrCorrupt)
		return 0
	}
	return uint32(v)
}

func (d *decoder) string(what string) string {
	n := d.count(what)
	if d.err != nil {
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) float64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.off < 8 {
		d.fail(what, ErrCorrupt)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}
