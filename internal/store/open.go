package store

import (
	"math"
	"os"
)

// Mapped is an archive opened zero-copy: its snapshot's CSR arrays and
// interned fragment strings may alias a read-only file mapping. Close
// releases the mapping — and with it every aliased slice and string — so it
// must only be called once nothing reads the archive anymore. A serving
// process that holds the archive for its lifetime never needs to call it.
type Mapped struct {
	*Archive
	release func() error
}

// Close releases the file mapping, if any. Safe to call more than once.
func (m *Mapped) Close() error {
	if m == nil || m.release == nil {
		return nil
	}
	rel := m.release
	m.release = nil
	return rel()
}

// Mmapped reports whether the archive actually aliases a file mapping
// (false when the file was a pre-v3 format, the host cannot alias, or the
// platform has no mmap — all of which fall back to a copying decode).
func (m *Mapped) Mmapped() bool { return m != nil && m.release != nil }

// Open loads a packed snapshot with the fewest copies the file's format
// allows. A v3 archive is mmap'd and decoded in place: checksum
// verification and structural validation walk the mapping, but no array is
// copied and no string bytes are duplicated, so opening costs microseconds
// of CPU where Decode costs a full traversal of allocations — and co-located
// replica processes opening the same file share one page-cache copy. v1/v2
// archives (and hosts that cannot alias) decode through the copying path;
// the mapping is released before returning, and Close is a no-op.
func Open(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < int64(headerSize+trailerSize) || st.Size() > math.MaxInt32*256 {
		// Too small to be an archive (or absurdly large): let the plain
		// reader produce the typed error.
		ar, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &Mapped{Archive: ar}, nil
	}
	data, release, err := mmapFile(f, int(st.Size()))
	if err != nil {
		// Filesystems without mmap support degrade to the copying path.
		ar, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &Mapped{Archive: ar}, nil
	}
	ar, aliased, err := decodeAny(data)
	if err != nil {
		_ = release()
		return nil, err
	}
	if !aliased {
		// Nothing references the mapping (legacy format, or a host that
		// cannot alias and copied instead): release it now.
		_ = release()
		return &Mapped{Archive: ar}, nil
	}
	return &Mapped{Archive: ar, release: release}, nil
}
