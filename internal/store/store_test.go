package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

// buildSnapshot mines a dataset's full gold-SQL log into a compiled
// snapshot, with one synthetic session folded in so the archive carries
// fractional (blended) co-occurrence weights too.
func buildSnapshot(tb testing.TB, ds *datasets.Dataset) *qfg.Snapshot {
	tb.Helper()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			tb.Fatalf("%s: %v", task.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	g, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		tb.Fatal(err)
	}
	session := []*sqlparse.Query{entries[0].Query, entries[1].Query, entries[2].Query}
	if err := g.AddSession(session, 1, 0.5); err != nil {
		tb.Fatal(err)
	}
	return g.Snapshot(nil)
}

// partsEqual compares two snapshots' compiled arrays bit for bit (float64
// weights by their IEEE-754 bits, not tolerance).
func partsEqual(a, b qfg.SnapshotParts) bool {
	if a.Obscurity != b.Obscurity || a.Queries != b.Queries {
		return false
	}
	if !reflect.DeepEqual(a.NV, b.NV) || !reflect.DeepEqual(a.RowStart, b.RowStart) ||
		!reflect.DeepEqual(a.ColID, b.ColID) || !reflect.DeepEqual(a.NECount, b.NECount) {
		return false
	}
	if len(a.Co) != len(b.Co) {
		return false
	}
	for i := range a.Co {
		if math.Float64bits(a.Co[i]) != math.Float64bits(b.Co[i]) {
			return false
		}
	}
	return true
}

// TestRoundTripParityAllDatasets is the acceptance gate for the codec: on
// every bundled dataset, a packed-and-loaded snapshot must agree with the
// freshly built one on the interner table, every compiled array (weights
// bit for bit) and DiceID over every fragment ID pair.
func TestRoundTripParityAllDatasets(t *testing.T) {
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			built := buildSnapshot(t, ds)
			ar, err := Decode(Encode(ds.Name, built))
			if err != nil {
				t.Fatal(err)
			}
			if ar.Dataset != ds.Name {
				t.Fatalf("dataset = %q, want %q", ar.Dataset, ds.Name)
			}
			loaded := ar.Snapshot
			if got, want := loaded.Interner().Fragments(), built.Interner().Fragments(); !reflect.DeepEqual(got, want) {
				t.Fatalf("interner tables diverged: %d vs %d fragments", len(got), len(want))
			}
			if !partsEqual(loaded.Parts(), built.Parts()) {
				t.Fatal("compiled arrays diverged after round trip")
			}
			if loaded.Queries() != built.Queries() || loaded.Vertices() != built.Vertices() ||
				loaded.Edges() != built.Edges() || loaded.Obscurity() != built.Obscurity() {
				t.Fatalf("stats diverged: loaded %d/%d/%d, built %d/%d/%d",
					loaded.Queries(), loaded.Vertices(), loaded.Edges(),
					built.Queries(), built.Vertices(), built.Edges())
			}
			n := uint32(built.Vertices())
			for a := uint32(0); a < n; a++ {
				for b := a; b < n; b++ {
					if got, want := loaded.DiceID(a, b), built.DiceID(a, b); math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("DiceID(%d, %d) = %v after load, want %v", a, b, got, want)
					}
				}
			}
		})
	}
}

// smallSnapshot builds a tiny snapshot for corruption tests, where every
// byte of the archive gets exercised.
func smallSnapshot(tb testing.TB) *qfg.Snapshot {
	tb.Helper()
	entries, err := sqlparse.ParseLog(`
3x: SELECT j.name FROM journal j
2x: SELECT p.title FROM publication p WHERE p.year > 2003
SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.jid = j.jid
`)
	if err != nil {
		tb.Fatal(err)
	}
	g, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		tb.Fatal(err)
	}
	return g.Snapshot(nil)
}

// rechecksum fixes the CRC trailer after a deliberate header/payload edit,
// so the edit (not the checksum) is what the decoder trips on.
func rechecksum(data []byte) {
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
}

func TestDecodeBadMagic(t *testing.T) {
	enc := Encode("tiny", smallSnapshot(t))
	bad := append([]byte(nil), enc...)
	copy(bad, "NOTAQFG!")
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("SQL")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("shorter than magic: err = %v, want ErrTruncated", err)
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	enc := Encode("tiny", smallSnapshot(t))
	bad := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(bad[8:], 99)
	rechecksum(bad)
	var ve *UnsupportedVersionError
	_, err := Decode(bad)
	if !errors.As(err, &ve) || ve.Version != 99 {
		t.Fatalf("err = %v, want UnsupportedVersionError{99}", err)
	}
}

func TestWalSeqRoundTrip(t *testing.T) {
	snap := smallSnapshot(t)
	ar, err := Decode(EncodeAt("tiny", snap, 42))
	if err != nil {
		t.Fatal(err)
	}
	if ar.WalSeq != 42 {
		t.Fatalf("WalSeq = %d, want 42", ar.WalSeq)
	}
	if ar, err = Decode(Encode("tiny", snap)); err != nil || ar.WalSeq != 0 {
		t.Fatalf("plain Encode: WalSeq = %d err = %v, want 0", ar.WalSeq, err)
	}
	path := filepath.Join(t.TempDir(), Filename("tiny"))
	if err := WriteFileAt(path, "tiny", snap, 7); err != nil {
		t.Fatal(err)
	}
	if ar, err = ReadFile(path); err != nil || ar.WalSeq != 7 {
		t.Fatalf("WriteFileAt round trip: WalSeq = %d err = %v, want 7", ar.WalSeq, err)
	}
}

// TestDecodeV2Compat proves the current decoder still reads the varint v2
// format earlier builds wrote: a legacy-encoded archive must decode to the
// same snapshot, bit for bit, as the v3 encoding of the same state.
func TestDecodeV2Compat(t *testing.T) {
	snap := smallSnapshot(t)
	v2 := encodeLegacyAt("tiny", snap, 42, 2)
	ar, err := Decode(v2)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Dataset != "tiny" || ar.WalSeq != 42 {
		t.Fatalf("v2 archive decoded to dataset %q WalSeq %d", ar.Dataset, ar.WalSeq)
	}
	if !partsEqual(ar.Snapshot.Parts(), snap.Parts()) {
		t.Fatal("v2 archive diverged from the snapshot it was packed from")
	}
	if got, want := ar.Snapshot.Interner().Fragments(), snap.Interner().Fragments(); !reflect.DeepEqual(got, want) {
		t.Fatal("v2 interner table diverged")
	}
}

// TestDecodeV1Compat proves the current decoder still reads the v1 format:
// a byte-exact v1 archive is reconstructed from a legacy v2 one by stripping
// the WAL-sequence field and rewriting the version, and must decode to the
// same snapshot with WalSeq 0.
func TestDecodeV1Compat(t *testing.T) {
	snap := smallSnapshot(t)
	v2 := encodeLegacyAt("tiny", snap, 42, 2)

	// Find the walSeq field: it follows the dataset name, obscurity and
	// query-count fields of the payload.
	off := headerSize
	nameLen, n := binary.Uvarint(v2[off:])
	off += n + int(nameLen)
	for i := 0; i < 2; i++ { // obscurity, query count
		_, n = binary.Uvarint(v2[off:])
		off += n
	}
	_, walSeqLen := binary.Uvarint(v2[off:])

	v1 := append([]byte(nil), v2[:off]...)
	v1 = append(v1, v2[off+walSeqLen:]...)
	binary.LittleEndian.PutUint32(v1[8:], 1)
	binary.LittleEndian.PutUint64(v1[12:], uint64(len(v1)))
	rechecksum(v1)

	ar, err := Decode(v1)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Dataset != "tiny" || ar.WalSeq != 0 {
		t.Fatalf("v1 archive decoded to dataset %q WalSeq %d", ar.Dataset, ar.WalSeq)
	}
	if !partsEqual(ar.Snapshot.Parts(), snap.Parts()) {
		t.Fatal("v1 archive diverged from the snapshot it was packed from")
	}
}

func TestDecodeChecksumMismatch(t *testing.T) {
	enc := Encode("tiny", smallSnapshot(t))
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x40
	if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// TestDecodeTruncated cuts the archive at every length: each prefix must
// return ErrTruncated (or ErrBadMagic for sub-magic stubs) and never panic.
func TestDecodeTruncated(t *testing.T) {
	enc := Encode("tiny", smallSnapshot(t))
	for n := 0; n < len(enc); n++ {
		_, err := Decode(enc[:n])
		if err == nil {
			t.Fatalf("decoding %d of %d bytes succeeded", n, len(enc))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("decoding %d of %d bytes: err = %v, want ErrTruncated", n, len(enc), err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeMutatedPayload flips one bit at every body offset with the
// checksum repaired, so the structural validation (not the CRC) has to
// catch whatever the flip broke. Every outcome must be a typed error or a
// snapshot that still passes its own invariants — never a panic.
func TestDecodeMutatedPayload(t *testing.T) {
	enc := Encode("tiny", smallSnapshot(t))
	for off := len(magic); off < len(enc)-4; off++ {
		for _, bit := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), enc...)
			bad[off] ^= bit
			rechecksum(bad)
			ar, err := Decode(bad)
			if err == nil && ar.Snapshot == nil {
				t.Fatalf("offset %d: nil snapshot without error", off)
			}
			if err != nil {
				var ve *UnsupportedVersionError
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
					!errors.Is(err, ErrChecksum) && !errors.As(err, &ve) {
					t.Fatalf("offset %d bit %#x: untyped error %v", off, bit, err)
				}
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, Filename("MAS"))
	if got, want := filepath.Base(path), "mas.qfg"; got != want {
		t.Fatalf("Filename = %q, want %q", got, want)
	}
	snap := smallSnapshot(t)
	if err := WriteFile(path, "tiny", snap); err != nil {
		t.Fatal(err)
	}
	// Overwrite must be atomic-replace, not append.
	if err := WriteFile(path, "tiny", snap); err != nil {
		t.Fatal(err)
	}
	ar, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Dataset != "tiny" || !partsEqual(ar.Snapshot.Parts(), snap.Parts()) {
		t.Fatal("file round trip diverged")
	}
	// CreateTemp's private 0600 must not survive the rename: a service
	// running as a different user than the packer has to read the store.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Fatalf("archive mode = %v, want 0644", st.Mode().Perm())
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("store dir holds %d files, want 1 (no temp litter)", len(left))
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.qfg")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
}

func TestReadWriter(t *testing.T) {
	snap := smallSnapshot(t)
	var buf bytes.Buffer
	if err := Write(&buf, "tiny", snap); err != nil {
		t.Fatal(err)
	}
	ar, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Dataset != "tiny" || !partsEqual(ar.Snapshot.Parts(), snap.Parts()) {
		t.Fatal("io round trip diverged")
	}
}

// goldLog renders a dataset's gold SQL as one raw log text, the input the
// re-mining cold-start path starts from.
func goldLog(ds *datasets.Dataset) string {
	var b strings.Builder
	for _, task := range ds.Tasks {
		b.WriteString(task.Gold)
		b.WriteByte('\n')
	}
	return b.String()
}

// BenchmarkColdStart compares the two ways a serving process can reach a
// ready snapshot: re-mining the raw SQL log (parse + QFG build + compile)
// versus one store decode of the packed archive. The acceptance bar for
// the store path is ≥ 5× faster; see docs/ARCHITECTURE.md for recorded
// numbers (~20-40× in practice).
func BenchmarkColdStart(b *testing.B) {
	for _, ds := range datasets.All() {
		ds := ds
		logText := goldLog(ds)
		packed := Encode(ds.Name, buildSnapshot(b, ds))
		b.Run("remine/"+ds.Name, func(b *testing.B) {
			b.SetBytes(int64(len(logText)))
			for i := 0; i < b.N; i++ {
				entries, err := sqlparse.ParseLog(logText)
				if err != nil {
					b.Fatal(err)
				}
				g, err := qfg.Build(entries, fragment.NoConstOp)
				if err != nil {
					b.Fatal(err)
				}
				if g.Snapshot(nil).Vertices() == 0 {
					b.Fatal("empty snapshot")
				}
			}
		})
		b.Run("store/"+ds.Name, func(b *testing.B) {
			b.SetBytes(int64(len(packed)))
			for i := 0; i < b.N; i++ {
				ar, err := Decode(packed)
				if err != nil {
					b.Fatal(err)
				}
				if ar.Snapshot.Vertices() == 0 {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
}
