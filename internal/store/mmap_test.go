package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"templar/internal/datasets"
)

// TestOpenZeroCopyParity is the acceptance gate for the mmap path: on every
// bundled dataset, an Open'd (aliasing) archive must agree with the
// copy-decoded one on the dataset name, WAL sequence, interner table, every
// compiled array (weights bit for bit) and DiceID over every fragment pair.
func TestOpenZeroCopyParity(t *testing.T) {
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			snap := buildSnapshot(t, ds)
			path := filepath.Join(t.TempDir(), Filename(ds.Name))
			if err := WriteFileAt(path, ds.Name, snap, 99); err != nil {
				t.Fatal(err)
			}
			decoded, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if !m.Mmapped() {
				t.Fatal("Open fell back to the copying path for a v3 archive")
			}
			if m.Dataset != decoded.Dataset || m.WalSeq != decoded.WalSeq {
				t.Fatalf("mapped archive (%q, %d) != decoded (%q, %d)",
					m.Dataset, m.WalSeq, decoded.Dataset, decoded.WalSeq)
			}
			if !reflect.DeepEqual(m.Snapshot.Interner().Fragments(), decoded.Snapshot.Interner().Fragments()) {
				t.Fatal("interner tables diverged between mmap and decode")
			}
			if !partsEqual(m.Snapshot.Parts(), decoded.Snapshot.Parts()) {
				t.Fatal("compiled arrays diverged between mmap and decode")
			}
			n := uint32(decoded.Snapshot.Vertices())
			for a := uint32(0); a < n; a++ {
				for b := a; b < n; b++ {
					got, want := m.Snapshot.DiceID(a, b), decoded.Snapshot.DiceID(a, b)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("DiceID(%d, %d) = %v mapped, %v decoded", a, b, got, want)
					}
				}
			}
		})
	}
}

// TestOpenLegacyFallsBack proves Open still reads varint archives — through
// the copying path, with the mapping released.
func TestOpenLegacyFallsBack(t *testing.T) {
	snap := smallSnapshot(t)
	path := filepath.Join(t.TempDir(), "legacy.qfg")
	if err := os.WriteFile(path, encodeLegacyAt("tiny", snap, 7, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mmapped() {
		t.Fatal("legacy archive reported as mapped")
	}
	if m.Dataset != "tiny" || m.WalSeq != 7 || !partsEqual(m.Snapshot.Parts(), snap.Parts()) {
		t.Fatal("legacy archive diverged through Open")
	}
}

// TestOpenCorruption drives the mmap path through the same typed-error
// contract as Decode: bit flips anywhere in a v3 file surface as ErrChecksum
// (or a structural ErrCorrupt after a repaired CRC), truncation at every
// length as ErrTruncated — never a panic, never a silently wrong snapshot.
func TestOpenCorruption(t *testing.T) {
	enc := Encode("tiny", smallSnapshot(t))
	dir := t.TempDir()
	write := func(b []byte) string {
		p := filepath.Join(dir, "x.qfg")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("bitflips", func(t *testing.T) {
		// Sampling every 7th offset keeps the file-backed sweep fast while
		// still crossing every section; the exhaustive in-memory sweep is
		// TestDecodeMutatedPayload.
		for off := len(magic); off < len(enc)-4; off += 7 {
			bad := append([]byte(nil), enc...)
			bad[off] ^= 0x10
			// Payload flips surface as ErrChecksum; flips inside the generic
			// header trip the version/size checks that run before the CRC.
			_, err := Open(write(bad))
			var ve *UnsupportedVersionError
			if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrCorrupt) && !errors.As(err, &ve) {
				t.Fatalf("offset %d: err = %v, want a typed store error", off, err)
			}
		}
	})
	t.Run("bitflips-rechecksummed", func(t *testing.T) {
		for off := len(magic); off < len(enc)-4; off += 7 {
			bad := append([]byte(nil), enc...)
			bad[off] ^= 0x10
			rechecksum(bad)
			m, err := Open(write(bad))
			if err == nil {
				if m.Snapshot == nil {
					t.Fatalf("offset %d: nil snapshot without error", off)
				}
				m.Close()
				continue
			}
			var ve *UnsupportedVersionError
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrChecksum) && !errors.As(err, &ve) {
				t.Fatalf("offset %d: untyped error %v", off, err)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(enc); n += 5 {
			_, err := Open(write(enc[:n]))
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("%d of %d bytes: err = %v, want ErrTruncated/ErrBadMagic", n, len(enc), err)
			}
		}
	})
	t.Run("missing", func(t *testing.T) {
		if _, err := Open(filepath.Join(dir, "absent.qfg")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("err = %v, want fs.ErrNotExist", err)
		}
	})
}

// TestMappedClose proves Close is idempotent and a no-op on fallback opens.
func TestMappedClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.qfg")
	if err := WriteFile(path, "tiny", smallSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m.Mmapped() {
		t.Fatal("closed archive still reports a mapping")
	}
}
