// Package store persists compiled Query Fragment Graph snapshots as
// compact versioned binary archives, making the mined QFG a durable,
// shareable artifact of the SQL log: a serving process cold-starts from
// one file read instead of re-mining the log (parse every query, fold the
// graph, compile the snapshot) — 100×+ faster on the bundled benchmarks
// (BenchmarkColdStart).
//
// An archive carries everything a serving engine needs: the dataset name,
// the obscurity level, the fragment interner table (so IDs survive the
// round trip) and the snapshot's CSR arrays with co-occurrence weights as
// raw IEEE-754 bits. A loaded snapshot therefore scores bit-identically
// to the one that was packed — DiceID parity is tested on every bundled
// dataset — and can keep accepting live log appends after
// qfg.NewLiveFromSnapshot rehydrates its builder graph.
//
// Use Encode/Decode for in-memory round trips, Write/Read for streams,
// and WriteFile/ReadFile for the conventional on-disk store (WriteFile is
// atomic-replace; Filename maps a dataset name to its "<name>.qfg" file).
// Decode never panics on hostile input: truncation, foreign files, bit
// flips, future versions and structurally invalid payloads surface as
// ErrTruncated, ErrBadMagic, ErrChecksum, *UnsupportedVersionError and
// ErrCorrupt respectively.
//
// The format specification lives with the codec in store.go and in
// docs/ARCHITECTURE.md. Compatibility rule: readers reject any version
// they don't know (no silent downgrades); writers always write the
// current Version. The format has no alignment requirements and is
// endian-fixed (little-endian), so archives are portable across
// platforms.
package store
