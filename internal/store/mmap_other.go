//go:build !unix

package store

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the file into one heap
// buffer instead. The v3 zero-copy decode still aliases that buffer (one
// read, no per-array copies); releasing is the garbage collector's job.
func mmapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
