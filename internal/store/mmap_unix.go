//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so co-located
// processes serving the same archive share one page-cache copy. The
// returned release function unmaps; after it runs, every slice or string
// aliasing the region is invalid.
func mmapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
