package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
	"unsafe"

	"templar/internal/fragment"
	"templar/internal/qfg"
)

// v3 payload layout. After the generic 20-byte header come 4 zero bytes of
// padding (so everything below sits at 8-byte file offsets), then a fixed
// header of 16 little-endian uint64 fields, then the data sections:
//
//	offset  field
//	20      4 bytes padding (zero)
//	24      fixed header, 16 × uint64:
//	          [0]  obscurity level
//	          [1]  total logged queries
//	          [2]  WAL sequence the snapshot covers
//	          [3]  F  interner table size
//	          [4]  V  snapshot vertex count (V ≤ F)
//	          [5]  H  half-edge count (= rowStart[V])
//	          [6]  dataset name length in bytes
//	          [7]  expression blob length in bytes
//	          [8]  section offset: dataset name (UTF-8 bytes)
//	          [9]  section offset: fragment records, F × 16 bytes
//	                 {context uint32, exprLen uint32, exprOff uint64}
//	                 with exprOff relative to the expression blob
//	          [10] section offset: expression blob (concatenated UTF-8)
//	          [11] section offset: nv occurrence counts, V × int64
//	          [12] section offset: CSR row index, (V+1) × uint32
//	          [13] section offset: neighbor IDs, H × uint32
//	          [14] section offset: blended co-occurrence weights,
//	                 H × float64 bits (preserved exactly)
//	          [15] section offset: raw co-occurrence counts, H × int64
//
// Section offsets are absolute file offsets, every one a multiple of 8, with
// zero padding between sections; fixed-width little-endian elements mean the
// int64/uint32/float64 arrays ARE the in-memory representation on 64-bit
// little-endian hosts, so a decoded snapshot's arrays (and its interned
// fragment strings) can alias the file bytes directly — the zero-copy path
// Open takes over an mmap'd archive. Hosts where aliasing is unsound
// (32-bit int, big-endian, or a misaligned buffer) fall back to a copying
// decode of the same sections; both paths produce bit-identical snapshots.
const (
	v3HeaderOff  = headerSize + 4 // generic header + padding, 8-aligned
	v3NumFields  = 16
	v3HeaderSize = v3NumFields * 8
	v3FragRec    = 16 // bytes per fragment record
)

// Field indexes of the v3 fixed header.
const (
	v3FieldObscurity = iota
	v3FieldQueries
	v3FieldWalSeq
	v3FieldFrags
	v3FieldVerts
	v3FieldHalves
	v3FieldDatasetLen
	v3FieldBlobLen
	v3FieldSecDataset
	v3FieldSecFragTab
	v3FieldSecBlob
	v3FieldSecNV
	v3FieldSecRowStart
	v3FieldSecColID
	v3FieldSecCo
	v3FieldSecNECount
)

// hostLittle reports whether this machine stores integers little-endian —
// one of the three conditions for aliasing file bytes as typed slices.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// canAlias reports whether the v3 arrays inside data can be used in place:
// the host must be 64-bit little-endian and the buffer 8-byte aligned (mmap
// regions are page-aligned; Go heap buffers this size are 8-aligned, but a
// caller-provided sub-slice might not be).
func canAlias(data []byte) bool {
	return strconv.IntSize == 64 && hostLittle && len(data) > 0 &&
		uintptr(unsafe.Pointer(&data[0]))%8 == 0
}

func align8(n int) int { return (n + 7) &^ 7 }

// encodeV3At lays out the fixed-section format described above.
func encodeV3At(dataset string, snap *qfg.Snapshot, walSeq uint64) []byte {
	parts := snap.Parts()
	frags := snap.Interner().Fragments()
	nVerts := len(parts.NV)
	nHalf := len(parts.ColID)
	blobLen := 0
	for _, f := range frags {
		blobLen += len(f.Expr)
	}

	secDataset := v3HeaderOff + v3HeaderSize
	secFragTab := align8(secDataset + len(dataset))
	secBlob := secFragTab + len(frags)*v3FragRec
	secNV := align8(secBlob + blobLen)
	secRowStart := secNV + nVerts*8
	secColID := align8(secRowStart + (nVerts+1)*4)
	secCo := align8(secColID + nHalf*4)
	secNECount := secCo + nHalf*8
	end := secNECount + nHalf*8
	total := end + trailerSize

	buf := make([]byte, end, total)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[len(magic):], Version)
	binary.LittleEndian.PutUint64(buf[len(magic)+4:], uint64(total))

	hdr := buf[v3HeaderOff:]
	put := func(field int, v uint64) { binary.LittleEndian.PutUint64(hdr[field*8:], v) }
	put(v3FieldObscurity, uint64(parts.Obscurity))
	put(v3FieldQueries, uint64(parts.Queries))
	put(v3FieldWalSeq, walSeq)
	put(v3FieldFrags, uint64(len(frags)))
	put(v3FieldVerts, uint64(nVerts))
	put(v3FieldHalves, uint64(nHalf))
	put(v3FieldDatasetLen, uint64(len(dataset)))
	put(v3FieldBlobLen, uint64(blobLen))
	put(v3FieldSecDataset, uint64(secDataset))
	put(v3FieldSecFragTab, uint64(secFragTab))
	put(v3FieldSecBlob, uint64(secBlob))
	put(v3FieldSecNV, uint64(secNV))
	put(v3FieldSecRowStart, uint64(secRowStart))
	put(v3FieldSecColID, uint64(secColID))
	put(v3FieldSecCo, uint64(secCo))
	put(v3FieldSecNECount, uint64(secNECount))

	copy(buf[secDataset:], dataset)
	exprOff := 0
	for i, f := range frags {
		rec := buf[secFragTab+i*v3FragRec:]
		binary.LittleEndian.PutUint32(rec, uint32(f.Context))
		binary.LittleEndian.PutUint32(rec[4:], uint32(len(f.Expr)))
		binary.LittleEndian.PutUint64(rec[8:], uint64(exprOff))
		copy(buf[secBlob+exprOff:], f.Expr)
		exprOff += len(f.Expr)
	}
	for i, n := range parts.NV {
		binary.LittleEndian.PutUint64(buf[secNV+i*8:], uint64(n))
	}
	for i, r := range parts.RowStart {
		binary.LittleEndian.PutUint32(buf[secRowStart+i*4:], r)
	}
	for i, c := range parts.ColID {
		binary.LittleEndian.PutUint32(buf[secColID+i*4:], c)
	}
	for i, co := range parts.Co {
		binary.LittleEndian.PutUint64(buf[secCo+i*8:], math.Float64bits(co))
	}
	for i, ne := range parts.NECount {
		binary.LittleEndian.PutUint64(buf[secNECount+i*8:], uint64(ne))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// v3Header is the parsed and bounds-checked fixed header.
type v3Header struct {
	fields [v3NumFields]uint64
}

// parseV3Header validates the fixed header against the body length: every
// section must be 8-aligned, lie fully inside the body, and every count must
// fit the address space — so the view constructors below can slice without
// further checks and a corrupt header can never drive a panic or an
// unbounded allocation.
func parseV3Header(body []byte) (*v3Header, error) {
	if len(body) < v3HeaderOff+v3HeaderSize {
		return nil, fmt.Errorf("%w: body shorter than the v3 fixed header", ErrCorrupt)
	}
	h := &v3Header{}
	for i := range h.fields {
		h.fields[i] = binary.LittleEndian.Uint64(body[v3HeaderOff+i*8:])
	}
	section := func(what string, field int, elemSize, n uint64) error {
		off := h.fields[field]
		if off%8 != 0 {
			return fmt.Errorf("%w: misaligned %s section at offset %d", ErrCorrupt, what, off)
		}
		if n > math.MaxInt64/elemSize {
			return fmt.Errorf("%w: oversized %s section (%d elements)", ErrCorrupt, what, n)
		}
		if end := off + n*elemSize; off < uint64(v3HeaderOff+v3HeaderSize) || end < off || end > uint64(len(body)) {
			return fmt.Errorf("%w: %s section [%d, %d) outside payload", ErrCorrupt, what, off, off+n*elemSize)
		}
		return nil
	}
	nFrags, nVerts, nHalf := h.fields[v3FieldFrags], h.fields[v3FieldVerts], h.fields[v3FieldHalves]
	for _, f := range []int{v3FieldObscurity, v3FieldQueries} {
		if h.fields[f] > math.MaxInt64/2 {
			return nil, fmt.Errorf("%w: oversized v3 header field %d", ErrCorrupt, f)
		}
	}
	if err := section("dataset", v3FieldSecDataset, 1, h.fields[v3FieldDatasetLen]); err != nil {
		return nil, err
	}
	if err := section("fragment table", v3FieldSecFragTab, v3FragRec, nFrags); err != nil {
		return nil, err
	}
	if err := section("expression blob", v3FieldSecBlob, 1, h.fields[v3FieldBlobLen]); err != nil {
		return nil, err
	}
	if err := section("nv", v3FieldSecNV, 8, nVerts); err != nil {
		return nil, err
	}
	if err := section("row index", v3FieldSecRowStart, 4, nVerts+1); err != nil {
		return nil, err
	}
	if err := section("neighbor IDs", v3FieldSecColID, 4, nHalf); err != nil {
		return nil, err
	}
	if err := section("weights", v3FieldSecCo, 8, nHalf); err != nil {
		return nil, err
	}
	if err := section("counts", v3FieldSecNECount, 8, nHalf); err != nil {
		return nil, err
	}
	return h, nil
}

// aliasSlice reinterprets n elements of T starting at body[off] without
// copying. parseV3Header proved the range in-bounds and 8-aligned; canAlias
// proved the base aligned and the element layout byte-identical.
func aliasSlice[T any](body []byte, off, n uint64) []T {
	if n == 0 {
		return make([]T, 0)
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&body[off])), int(n))
}

// decodeV3 builds an archive over a verified v3 body. When the host and
// buffer allow it, the snapshot's arrays and interned strings alias body
// directly (aliased = true, zero copies); otherwise every section is copied
// into fresh memory. Either way the structural invariants are enforced by
// qfg.NewSnapshotFromParts before the snapshot escapes.
func decodeV3(body []byte) (*Archive, bool, error) {
	h, err := parseV3Header(body)
	if err != nil {
		return nil, false, err
	}
	alias := canAlias(body)
	nFrags := int(h.fields[v3FieldFrags])
	nVerts := h.fields[v3FieldVerts]
	nHalf := h.fields[v3FieldHalves]
	blobLen := h.fields[v3FieldBlobLen]

	dataset := string(body[h.fields[v3FieldSecDataset] : h.fields[v3FieldSecDataset]+h.fields[v3FieldDatasetLen]])
	blob := body[h.fields[v3FieldSecBlob] : h.fields[v3FieldSecBlob]+blobLen]
	frags := make([]fragment.Fragment, nFrags)
	fragTab := body[h.fields[v3FieldSecFragTab]:]
	for i := range frags {
		rec := fragTab[i*v3FragRec:]
		exprLen := uint64(binary.LittleEndian.Uint32(rec[4:]))
		exprOff := binary.LittleEndian.Uint64(rec[8:])
		if end := exprOff + exprLen; end < exprOff || end > blobLen {
			return nil, false, fmt.Errorf("%w: fragment %d expression [%d, %d) outside blob", ErrCorrupt, i, exprOff, end)
		}
		var expr string
		if exprLen > 0 {
			if alias {
				expr = unsafe.String(&blob[exprOff], int(exprLen))
			} else {
				expr = string(blob[exprOff : exprOff+exprLen])
			}
		}
		frags[i] = fragment.Fragment{
			Context: fragment.Context(binary.LittleEndian.Uint32(rec)),
			Expr:    expr,
		}
	}

	parts := qfg.SnapshotParts{
		Obscurity: fragment.Obscurity(h.fields[v3FieldObscurity]),
		Queries:   int(h.fields[v3FieldQueries]),
	}
	if alias {
		parts.NV = aliasSlice[int](body, h.fields[v3FieldSecNV], nVerts)
		parts.RowStart = aliasSlice[uint32](body, h.fields[v3FieldSecRowStart], nVerts+1)
		parts.ColID = aliasSlice[uint32](body, h.fields[v3FieldSecColID], nHalf)
		parts.Co = aliasSlice[float64](body, h.fields[v3FieldSecCo], nHalf)
		parts.NECount = aliasSlice[int](body, h.fields[v3FieldSecNECount], nHalf)
	} else {
		parts.NV = make([]int, nVerts)
		for i := range parts.NV {
			v := binary.LittleEndian.Uint64(body[h.fields[v3FieldSecNV]+uint64(i)*8:])
			parts.NV[i] = int(int64(v))
		}
		parts.RowStart = make([]uint32, nVerts+1)
		for i := range parts.RowStart {
			parts.RowStart[i] = binary.LittleEndian.Uint32(body[h.fields[v3FieldSecRowStart]+uint64(i)*4:])
		}
		parts.ColID = make([]uint32, nHalf)
		for i := range parts.ColID {
			parts.ColID[i] = binary.LittleEndian.Uint32(body[h.fields[v3FieldSecColID]+uint64(i)*4:])
		}
		parts.Co = make([]float64, nHalf)
		for i := range parts.Co {
			parts.Co[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[h.fields[v3FieldSecCo]+uint64(i)*8:]))
		}
		parts.NECount = make([]int, nHalf)
		for i := range parts.NECount {
			v := binary.LittleEndian.Uint64(body[h.fields[v3FieldSecNECount]+uint64(i)*8:])
			parts.NECount[i] = int(int64(v))
		}
	}

	in, err := fragment.NewInternerFromFragments(frags)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	snap, err := qfg.NewSnapshotFromParts(in, parts)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &Archive{Dataset: dataset, Snapshot: snap, WalSeq: h.fields[v3FieldWalSeq]}, alias, nil
}

// Section describes one region of a v3 archive for diagnostics
// (qfg-inspect info prints the table).
type Section struct {
	Name string
	// Off is the absolute file offset; Len the used bytes (inter-section
	// padding excluded).
	Off, Len uint64
}

// Sections returns a v3 archive's section table in file order. Archives in
// the varint formats (v1/v2) have no sections; they return (nil, nil).
func Sections(data []byte) ([]Section, error) {
	if len(data) < headerSize+trailerSize {
		return nil, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if binary.LittleEndian.Uint32(data[len(magic):]) < 3 {
		return nil, nil
	}
	h, err := parseV3Header(data[:len(data)-trailerSize])
	if err != nil {
		return nil, err
	}
	nVerts, nHalf := h.fields[v3FieldVerts], h.fields[v3FieldHalves]
	return []Section{
		{"header", 0, uint64(v3HeaderOff + v3HeaderSize)},
		{"dataset", h.fields[v3FieldSecDataset], h.fields[v3FieldDatasetLen]},
		{"fragments", h.fields[v3FieldSecFragTab], h.fields[v3FieldFrags] * v3FragRec},
		{"exprblob", h.fields[v3FieldSecBlob], h.fields[v3FieldBlobLen]},
		{"nv", h.fields[v3FieldSecNV], nVerts * 8},
		{"rowstart", h.fields[v3FieldSecRowStart], (nVerts + 1) * 4},
		{"colid", h.fields[v3FieldSecColID], nHalf * 4},
		{"co", h.fields[v3FieldSecCo], nHalf * 8},
		{"necount", h.fields[v3FieldSecNECount], nHalf * 8},
	}, nil
}
