package xrand

import "testing"

// TestRecurrencePinned pins the exact xorshift64* outputs for a known
// seed: datasets, fold splits, golden task selections and workload
// streams are all reproducible only as long as these bits never change.
func TestRecurrencePinned(t *testing.T) {
	r := New(1)
	want := []uint64{0x47E4CE4B896CDD1D, 0xABCFA6A8E079651D, 0xB9D10D8FEB731F57}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("Next()[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	if New(0).Next() == 0 {
		t.Fatal("zero seed trapped at zero")
	}
	if New(0).Next() != New(0).Next() {
		t.Fatal("zero-seed remap not deterministic")
	}
}

func TestBoundsAndDistribution(t *testing.T) {
	r := New(7)
	if r.Intn(0) != 0 || r.Intn(-3) != 0 {
		t.Fatal("Intn of non-positive n must be 0")
	}
	seen := map[int]int{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 10; v++ {
		if seen[v] < 700 {
			t.Fatalf("value %d drawn only %d/10000 times", v, seen[v])
		}
	}
	for i := 0; i < 1000; i++ {
		if v := r.RangeInt(5, 8); v < 5 || v > 8 {
			t.Fatalf("RangeInt(5,8) = %d", v)
		}
		if f := r.Float01(); f < 0 || f >= 1 {
			t.Fatalf("Float01 = %v", f)
		}
	}
}

func TestShuffleIsAPermutation(t *testing.T) {
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	New(3).Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	seen := map[int]bool{}
	moved := false
	for pos, v := range idx {
		if v < 0 || v >= len(idx) || seen[v] {
			t.Fatalf("not a permutation: %v", idx)
		}
		seen[v] = true
		if v != pos {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("shuffle was the identity: %v", idx)
	}
}
