// Package xrand is the repo's one deterministic PRNG: xorshift64* with
// fixed constants, identical on every platform and Go version. Dataset
// generation, evaluation fold splitting, golden-corpus task selection
// and workload synthesis all draw from it, so "same seed, same output"
// holds end to end — and the recurrence lives in exactly one place.
//
// Not cryptographic, not goroutine-safe; use one Rand per goroutine.
package xrand

// Rand is a seeded xorshift64* generator.
type Rand struct{ s uint64 }

// New returns a generator for seed. A zero seed (which would trap
// xorshift at zero forever) is remapped to a fixed odd constant.
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Next returns the next 64 pseudo-random bits.
func (r *Rand) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n); n <= 0 returns 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// RangeInt returns a value in [lo, hi].
func (r *Rand) RangeInt(lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// Float01 returns a value in [0, 1).
func (r *Rand) Float01() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Shuffle applies a Fisher–Yates shuffle over n elements via swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
