// Package pool provides the bounded worker pool shared by the HTTP serving
// layer and the evaluation harness, so both fan batches out through the
// same code with one global parallelism cap.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Pool bounds how many units of CPU-heavy work run at once. One Pool is
// shared by every endpoint of a server, so total parallelism stays capped
// no matter how many clients are connected.
type Pool struct {
	sem chan struct{}
}

// New builds a pool with the given worker count; values < 1 default to
// min(GOMAXPROCS, 8).
func New(workers int) *Pool {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// DefaultWorkers is the default parallelism bound: min(GOMAXPROCS, 8).
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// Workers returns the pool's parallelism bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Run executes fn once a worker slot is free, blocking until it completes.
func (p *Pool) Run(fn func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// RunCtx executes fn once a worker slot is free, unless ctx is done first —
// a queued task whose client has disconnected never claims a worker. A task
// that has already started is not interrupted; fn observes cancellation
// itself if it wants to stop early.
func (p *Pool) RunCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}

// ForEach runs fn(0..n-1) across the pool and blocks until every call has
// returned. At most min(n, Workers()) goroutines are spawned, each pulling
// indexes from a shared channel and acquiring a slot per item, so large
// batches never multiply goroutine count and concurrent ForEach calls (and
// interleaved Run calls) share the same global bound fairly.
func (p *Pool) ForEach(n int, fn func(i int)) {
	_ = p.ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, no further
// indexes are dispatched and queued items stop competing for worker slots.
// It waits for items already running to return, then reports ctx.Err().
// Items that never ran are simply skipped — the caller decides what a
// partial batch means.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if p.RunCtx(ctx, func() { fn(i) }) != nil {
					// Drain remaining indexes so the feeder never blocks.
					continue
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	return ctx.Err()
}
