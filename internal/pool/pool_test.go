package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachBoundsParallelism(t *testing.T) {
	p := New(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	var mu sync.Mutex
	running, peak := 0, 0
	out := make([]int, 100)
	p.ForEach(len(out), func(i int) {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		out[i] = i * i
		mu.Lock()
		running--
		mu.Unlock()
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if peak > 3 {
		t.Fatalf("observed %d concurrent workers, want <= 3", peak)
	}
	if peak < 1 {
		t.Fatal("pool never ran")
	}
}

// TestForEachGoroutineBounded guards against per-item goroutine spawning:
// a batch far larger than the worker count must not inflate the goroutine
// population by more than the worker count (plus scheduling slack).
func TestForEachGoroutineBounded(t *testing.T) {
	p := New(2)
	before := runtime.NumGoroutine()
	var mu sync.Mutex
	maxG := 0
	p.ForEach(10000, func(i int) {
		if i%100 == 0 {
			mu.Lock()
			if g := runtime.NumGoroutine(); g > maxG {
				maxG = g
			}
			mu.Unlock()
		}
	})
	if maxG > before+16 {
		t.Fatalf("goroutines grew from %d to %d during a 10k-item batch on a 2-worker pool", before, maxG)
	}
}

func TestRunAndForEachShareBound(t *testing.T) {
	p := New(1)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(func() {
			mu.Lock()
			order = append(order, -1)
			mu.Unlock()
		})
	}()
	p.ForEach(3, func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	wg.Wait()
	if len(order) != 4 {
		t.Fatalf("ran %d units, want 4", len(order))
	}
}

func TestRunCtxCanceledBeforeSlot(t *testing.T) {
	p := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(func() { close(started); <-release })
	}()
	<-started

	// The only slot is busy; a canceled context must bail out instead of
	// queueing for it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.RunCtx(ctx, func() { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("canceled task must not run")
	}
	close(release)
	wg.Wait()

	// With the slot free again, RunCtx runs normally.
	if err := p.RunCtx(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("RunCtx after release: err=%v ran=%v", err, ran)
	}
}

func TestForEachCtxStopsDispatching(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := p.ForEachCtx(ctx, 10000, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx = %v, want context.Canceled", err)
	}
	// In-flight items finish; the vast majority of the batch never runs.
	if n := ran.Load(); n >= 100 {
		t.Fatalf("%d items ran after cancellation, want early stop", n)
	}
}

func TestForEachCtxNilErrorWhenComplete(t *testing.T) {
	p := New(4)
	var ran atomic.Int32
	if err := p.ForEachCtx(context.Background(), 64, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d, want 64", ran.Load())
	}
}

func TestDefaultWorkers(t *testing.T) {
	if New(0).Workers() != DefaultWorkers() {
		t.Fatal("New(0) should use the default bound")
	}
	if d := DefaultWorkers(); d < 1 || d > 8 {
		t.Fatalf("DefaultWorkers() = %d, want 1..8", d)
	}
}
