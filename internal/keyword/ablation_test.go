package keyword

import (
	"math"
	"testing"

	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

func TestArithmeticMeanOption(t *testing.T) {
	m := NewMapper(masMini(t), embedding.New(), nil, Options{UseArithmeticMean: true})
	cfg := Configuration{Mappings: []Mapping{
		{Kind: KindAttr, Rel: "publication", Attr: "title", Sim: 0.5},
		{Kind: KindPred, Rel: "domain", Attr: "name", Op: "=", Sim: 0.8,
			Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "Databases"}},
	}}
	m.scoreConfigAdhoc(&cfg)
	if math.Abs(cfg.SimScore-0.65) > 1e-12 {
		t.Fatalf("arithmetic SimScore = %v, want 0.65", cfg.SimScore)
	}
	// Geometric mean penalizes imbalance harder than the arithmetic mean.
	geo := NewMapper(masMini(t), embedding.New(), nil, Options{})
	cfg2 := Configuration{Mappings: append([]Mapping(nil), cfg.Mappings...)}
	geo.scoreConfigAdhoc(&cfg2)
	if cfg2.SimScore >= cfg.SimScore {
		t.Fatalf("geometric %v should be below arithmetic %v for unequal scores", cfg2.SimScore, cfg.SimScore)
	}
}

func TestIncludeFromInQFGOption(t *testing.T) {
	graph := paperishLog(t, fragment.NoConstOp)
	base := NewMapper(masMini(t), embedding.New(), graph, Options{})
	withFrom := NewMapper(masMini(t), embedding.New(), graph, Options{IncludeFromInQFG: true})
	cfg := Configuration{Mappings: []Mapping{
		{Kind: KindRelation, Rel: "journal", Sim: 0.8},
		{Kind: KindAttr, Rel: "journal", Attr: "name", Sim: 0.8},
	}}
	cfgA := Configuration{Mappings: append([]Mapping(nil), cfg.Mappings...)}
	cfgB := Configuration{Mappings: append([]Mapping(nil), cfg.Mappings...)}
	base.scoreConfigAdhoc(&cfgA)
	withFrom.scoreConfigAdhoc(&cfgB)
	// Excluding FROM leaves a single non-relation fragment (marginal
	// evidence); including it creates the (journal, journal.name) pair,
	// whose Dice is high precisely because SQL forces the relation —
	// the redundancy the paper excludes.
	if cfgB.QFGScore <= cfgA.QFGScore {
		t.Fatalf("include-FROM should inflate QFG score: %v vs %v", cfgB.QFGScore, cfgA.QFGScore)
	}
}
