package keyword

import (
	"fmt"
	"strings"

	"templar/internal/fragment"
)

// ParseSpec parses a compact textual keyword specification into keywords
// with metadata. The format is semicolon-separated clauses of the form
//
//	text:context[:extra]
//
// where context is select, where or from (case-insensitive) and the
// optional extra is either a comparison operator (>, >=, <, <=, =, !=) for
// WHERE-context numeric keywords or an aggregate function name
// (COUNT, SUM, AVG, MIN, MAX) for SELECT-context keywords. A trailing "+g"
// on an aggregate marks the group-by flag. Examples:
//
//	"papers:select;Databases:where"
//	"papers:select:COUNT;after 2000:where:>"
//
// It is used by the templar-translate command and is convenient for tests
// and REPL-style experimentation.
func ParseSpec(spec string) ([]Keyword, error) {
	clauses := strings.Split(spec, ";")
	out := make([]Keyword, 0, len(clauses))
	for _, clause := range clauses {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("keyword: malformed clause %q (want text:context[:extra])", clause)
		}
		kw := Keyword{Text: strings.TrimSpace(parts[0])}
		if kw.Text == "" {
			return nil, fmt.Errorf("keyword: empty keyword text in %q", clause)
		}
		switch strings.ToLower(strings.TrimSpace(parts[1])) {
		case "select":
			kw.Meta.Context = fragment.Select
		case "where":
			kw.Meta.Context = fragment.Where
		case "from":
			kw.Meta.Context = fragment.From
		default:
			return nil, fmt.Errorf("keyword: unknown context %q in %q", parts[1], clause)
		}
		if len(parts) == 3 {
			extra := strings.TrimSpace(parts[2])
			group := false
			if strings.HasSuffix(extra, "+g") {
				group = true
				extra = strings.TrimSuffix(extra, "+g")
			}
			switch extra {
			case ">", ">=", "<", "<=", "=", "!=":
				if group {
					return nil, fmt.Errorf("keyword: group flag on operator in %q", clause)
				}
				kw.Meta.Op = extra
			case "COUNT", "SUM", "AVG", "MIN", "MAX",
				"count", "sum", "avg", "min", "max":
				kw.Meta.Aggs = []string{strings.ToUpper(extra)}
				kw.Meta.GroupBy = group
			case "":
				return nil, fmt.Errorf("keyword: empty extra in %q", clause)
			default:
				return nil, fmt.Errorf("keyword: unknown operator or aggregate %q in %q", extra, clause)
			}
		}
		out = append(out, kw)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("keyword: empty specification")
	}
	return out, nil
}
