package keyword

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"templar/internal/fragment"
)

// topkKeywordSets are the fixtures the parity tests sweep: mixed contexts,
// ties (several candidates share scores on the mini schema), and a numeric
// predicate, so the selection has to reproduce the stable sort's tie
// handling, not just the score order.
func topkKeywordSets() [][]Keyword {
	return [][]Keyword{
		{
			{Text: "papers", Meta: Metadata{Context: fragment.Select}},
			{Text: "after 2000", Meta: Metadata{Context: fragment.Where, Op: ">"}},
		},
		{
			{Text: "journal", Meta: Metadata{Context: fragment.From}},
			{Text: "name", Meta: Metadata{Context: fragment.Select}},
			{Text: "Databases", Meta: Metadata{Context: fragment.Where}},
		},
		{
			{Text: "title", Meta: Metadata{Context: fragment.Select}},
			{Text: "TMC", Meta: Metadata{Context: fragment.Where}},
			{Text: "after 1998", Meta: Metadata{Context: fragment.Where, Op: ">"}},
		},
		{
			{Text: "publication", Meta: Metadata{Context: fragment.From}},
		},
	}
}

// TestTopKMatchesFullSort pins the bounded selector to the full path: for
// every k, MapKeywordsCtx with TopK=k must return exactly the first k
// entries (values, scores, order) of the unbounded sorted result.
func TestTopKMatchesFullSort(t *testing.T) {
	for _, withQFG := range []bool{false, true} {
		m := newMapper(t, withQFG, Options{})
		for si, kws := range topkKeywordSets() {
			full, err := m.MapKeywordsCtx(context.Background(), kws, CallOptions{})
			if err != nil {
				t.Fatalf("set %d: full: %v", si, err)
			}
			for k := 1; k <= len(full)+2; k++ {
				got, err := m.MapKeywordsCtx(context.Background(), kws, CallOptions{TopK: k})
				if err != nil {
					t.Fatalf("set %d k=%d: %v", si, k, err)
				}
				want := full
				if k < len(want) {
					want = want[:k]
				}
				if len(got) != len(want) {
					t.Fatalf("set %d k=%d (qfg=%v): got %d configurations, want %d", si, k, withQFG, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("set %d k=%d rank %d (qfg=%v):\n got  %+v\n want %+v",
							si, k, i, withQFG, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestTopKUnderConfigurationCap crosses TopK with a tight MaxConfigurations
// cap: both paths must enumerate (and therefore select from) the same
// truncated prefix of the cartesian product.
func TestTopKUnderConfigurationCap(t *testing.T) {
	m := newMapper(t, true, Options{})
	kws := topkKeywordSets()[1]
	for _, cap := range []int{1, 2, 3, 5} {
		full, err := m.MapKeywordsCtx(context.Background(), kws, CallOptions{MaxConfigurations: cap})
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.MapKeywordsCtx(context.Background(), kws, CallOptions{MaxConfigurations: cap, TopK: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := full
		if len(want) > 2 {
			want = want[:2]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cap %d: top-k and trimmed full path diverged:\n got  %+v\n want %+v", cap, got, want)
		}
	}
}

// TestTopKConcurrent hammers the pooled scratch path from many goroutines
// (run under -race in tier-1) and verifies every result against a
// sequentially-computed expectation — a reused buffer leaking across
// requests would corrupt mappings and fail the comparison.
func TestTopKConcurrent(t *testing.T) {
	m := newMapper(t, true, Options{})
	sets := topkKeywordSets()
	want := make([][]Configuration, len(sets))
	for i, kws := range sets {
		full, err := m.MapKeywordsCtx(context.Background(), kws, CallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(full) > 3 {
			full = full[:3]
		}
		want[i] = full
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				i := (g + it) % len(sets)
				got, err := m.MapKeywordsCtx(context.Background(), sets[i], CallOptions{TopK: 3})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d iter %d: set %d diverged under concurrency", g, it, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTopKResultsOwnBacking proves retained results stay intact after the
// scratch returns to the pool and is reused by later calls.
func TestTopKResultsOwnBacking(t *testing.T) {
	m := newMapper(t, true, Options{})
	kws := topkKeywordSets()[0]
	got, err := m.MapKeywordsCtx(context.Background(), kws, CallOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]Configuration, len(got))
	for i, c := range got {
		snapshot[i] = c
		snapshot[i].Mappings = append([]Mapping(nil), c.Mappings...)
	}
	// Churn the pool with different keyword sets.
	for i := 0; i < 10; i++ {
		for _, other := range topkKeywordSets() {
			if _, err := m.MapKeywordsCtx(context.Background(), other, CallOptions{TopK: 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Mappings, snapshot[i].Mappings) {
			t.Fatalf("rank %d mappings mutated after pool reuse", i)
		}
	}
}
