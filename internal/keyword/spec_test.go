package keyword

import (
	"testing"

	"templar/internal/fragment"
)

func TestParseSpecBasic(t *testing.T) {
	kws, err := ParseSpec("papers:select;Databases:where")
	if err != nil {
		t.Fatal(err)
	}
	if len(kws) != 2 {
		t.Fatalf("kws = %v", kws)
	}
	if kws[0].Text != "papers" || kws[0].Meta.Context != fragment.Select {
		t.Fatalf("kws[0] = %+v", kws[0])
	}
	if kws[1].Text != "Databases" || kws[1].Meta.Context != fragment.Where {
		t.Fatalf("kws[1] = %+v", kws[1])
	}
}

func TestParseSpecOperatorAndAggregate(t *testing.T) {
	kws, err := ParseSpec("papers:select:COUNT;after 2000:where:>")
	if err != nil {
		t.Fatal(err)
	}
	if len(kws[0].Meta.Aggs) != 1 || kws[0].Meta.Aggs[0] != "COUNT" {
		t.Fatalf("aggs = %v", kws[0].Meta.Aggs)
	}
	if kws[1].Meta.Op != ">" {
		t.Fatalf("op = %q", kws[1].Meta.Op)
	}
	// Lowercase aggregate and group flag.
	kws, err = ParseSpec("names:select:count+g")
	if err != nil {
		t.Fatal(err)
	}
	if kws[0].Meta.Aggs[0] != "COUNT" || !kws[0].Meta.GroupBy {
		t.Fatalf("kws[0] = %+v", kws[0])
	}
}

func TestParseSpecWhitespaceAndEmptyClauses(t *testing.T) {
	kws, err := ParseSpec(" papers : select ;; Databases : where ; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(kws) != 2 || kws[0].Text != "papers" {
		t.Fatalf("kws = %v", kws)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		";;",
		"papers",
		"papers:select:COUNT:extra",
		"papers:nowhere",
		":select",
		"papers:select:",
		"papers:select:BOGUS",
		"x:where:>+g",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
}

func TestParseSpecFromContext(t *testing.T) {
	kws, err := ParseSpec("publication:from")
	if err != nil {
		t.Fatal(err)
	}
	if kws[0].Meta.Context != fragment.From {
		t.Fatalf("context = %v", kws[0].Meta.Context)
	}
}
