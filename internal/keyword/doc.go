// Package keyword implements Templar's Keyword Mapper (paper §V,
// Algorithms 1–3): mapping NLQ keywords to candidate query fragments,
// scoring and pruning the candidates with a word-similarity model, and
// ranking whole configurations with the blend of the similarity score and
// the Query Fragment Graph's co-occurrence evidence:
//
//	Score(φ) = λ·Scoreσ(φ) + (1−λ)·ScoreQFG(φ)
//
// # Entry points
//
// Mapper is the engine; MapKeywords is the call (Algorithm 1). NewMapper
// binds a mapper to a database, similarity model and optional QFG —
// compiling the graph into an immutable snapshot once, unless
// Options.DisableSnapshot selects the retained map-backed ablation path.
// NewSnapshotMapper instead ranks against whatever a qfg.SnapshotSource
// currently publishes: pass a fixed *qfg.Snapshot for a frozen log (e.g.
// one loaded from internal/store), or a *qfg.Live so copy-on-write
// republishes reach the mapper without rebuilding it. WithSource pins a
// shallow copy of a mapper to one snapshot for the lifetime of a request
// pipeline, sharing the candidate index and similarity cache.
//
// A Mapper is safe for concurrent use: candidate retrieval goes through an
// inverted index over schema names and column values precomputed at
// construction (seed scan path behind Options.DisableIndex), embedding
// similarities are memoized in a bounded sharded cache, and QFG scoring
// probes an immutable interned-ID snapshot with zero locking.
//
// Keyword carries the parser metadata M_k = (τ, ω, F, g) of §V-A;
// ParseSpec builds keyword lists from the compact "text:context[:op|:agg]"
// textual form the CLI and HTTP layers accept. Configuration is one ranked
// keyword→fragment mapping set; Options bundles κ, λ, obscurity and the
// ablation toggles.
package keyword
