// Package keyword implements Templar's Keyword Mapper (paper §V,
// Algorithms 1–3): mapping NLQ keywords to candidate query fragments,
// scoring and pruning the candidates with a word-similarity model, and
// ranking whole configurations with the blend of the similarity score and
// the Query Fragment Graph's co-occurrence evidence:
//
//	Score(φ) = λ·Scoreσ(φ) + (1−λ)·ScoreQFG(φ)
package keyword

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

// Metadata is the parser metadata M_k = (τ, ω, F, g) accompanying a keyword.
type Metadata struct {
	// Context is τ: the clause the mapped fragment should live in.
	Context fragment.Context
	// Op is ω: the predicate comparison operator for numeric keywords
	// ("" defaults to "=").
	Op string
	// Aggs is F: aggregation functions to wrap the mapped attribute in,
	// outermost first (our subset uses at most one).
	Aggs []string
	// GroupBy is g: whether the mapped attribute should be grouped.
	GroupBy bool
}

// Keyword is one parsed NLQ keyword with its metadata.
type Keyword struct {
	Text string
	Meta Metadata
}

// Kind classifies a candidate mapping.
type Kind int

const (
	// KindRelation maps a keyword to a relation in the FROM clause.
	KindRelation Kind = iota
	// KindAttr maps a keyword to a (possibly aggregated) projection.
	KindAttr
	// KindPred maps a keyword to a value predicate in the WHERE clause.
	KindPred
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRelation:
		return "relation"
	case KindAttr:
		return "attribute"
	default:
		return "predicate"
	}
}

// Mapping is one candidate query fragment mapping m = (s, c, σ).
type Mapping struct {
	Keyword string
	Kind    Kind
	Rel     string
	Attr    string // empty for KindRelation
	Agg     string // aggregate for KindAttr ("" for none)
	GroupBy bool
	Op      string         // for KindPred
	Value   sqlparse.Value // for KindPred
	Sim     float64        // σ
}

// Qualified returns "rel.attr" for attribute/predicate mappings.
func (m Mapping) Qualified() string { return m.Rel + "." + m.Attr }

// Fragment renders the mapping as a query fragment at an obscurity level,
// for QFG lookups.
func (m Mapping) Fragment(ob fragment.Obscurity) fragment.Fragment {
	switch m.Kind {
	case KindRelation:
		return fragment.Relation(m.Rel)
	case KindAttr:
		return fragment.Attr(m.Qualified(), m.Agg)
	default:
		return fragment.Pred(m.Qualified(), m.Op, m.Value, ob)
	}
}

// String renders "keyword -> fragment (σ)".
func (m Mapping) String() string {
	return fmt.Sprintf("%s -> %s (%.3f)", m.Keyword, m.Fragment(fragment.Full), m.Sim)
}

// Configuration is a selection of one mapping per keyword (Definition 5)
// with its component scores.
type Configuration struct {
	Mappings []Mapping
	SimScore float64 // Scoreσ(φ): geometric mean of mapping similarities
	QFGScore float64 // ScoreQFG(φ): co-occurrence evidence from the log
	Score    float64 // λ·SimScore + (1−λ)·QFGScore
}

// Options configures a Mapper.
type Options struct {
	// K is κ: candidates kept per keyword after pruning. Default 5.
	K int
	// Lambda is λ: weight of the similarity score vs the log-driven score.
	// Default 0.8 (the paper's operating point).
	Lambda float64
	// Epsilon is the ε used for exact-match detection and as the score of
	// numeric predicates that select no rows. Default 0.02.
	Epsilon float64
	// Obscurity selects the fragment form used for QFG lookups.
	// Default NoConstOp (the paper's best performer).
	Obscurity fragment.Obscurity
	// MaxConfigurations caps the generated cartesian product. Default 5000.
	MaxConfigurations int
	// UseArithmeticMean switches Scoreσ from the geometric mean the paper
	// prefers (§V-C1) to an arithmetic mean, for the design ablation.
	UseArithmeticMean bool
	// IncludeFromInQFG includes FROM-context fragments in ScoreQFG pairs.
	// The paper excludes them (§V-C2) because attribute fragments already
	// force their relations, which would double-count evidence; this flag
	// exists for the design ablation.
	IncludeFromInQFG bool
	// DisableIndex restores the seed per-call scan path: no precomputed
	// candidate index and no similarity memo cache. Kept for ablations and
	// the indexed-vs-scan benchmark; results are identical either way.
	DisableIndex bool
	// SimCacheSize bounds the similarity memo cache (total entries across
	// all shards, approximately — see simCache). Default 65536. Ignored
	// when DisableIndex is set.
	SimCacheSize int
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 5
	}
	if o.Lambda == 0 {
		o.Lambda = 0.8
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.02
	}
	if o.MaxConfigurations <= 0 {
		o.MaxConfigurations = 5000
	}
	if o.SimCacheSize <= 0 {
		o.SimCacheSize = 65536
	}
	return o
}

// Mapper executes MAPKEYWORDS against one database.
//
// A Mapper is safe for concurrent use: the database, model, QFG and
// candidate index are read-only after construction, and the similarity memo
// cache is internally synchronized. The bound database must not be mutated
// while the Mapper is in use (the precomputed index would go stale).
type Mapper struct {
	db    *db.Database
	model *embedding.Model
	graph *qfg.Graph // nil disables log-driven scoring (pure baseline)
	opts  Options
	// index precomputes candidate retrieval structures (nil when
	// Options.DisableIndex restores the per-call scan path).
	index *candidateIndex
	// cache memoizes model.Similarity calls (nil when DisableIndex).
	cache *simCache
}

// NewMapper builds a Mapper. Passing a nil QFG yields the baseline behavior
// (ScoreQFG ≡ 0; with Lambda = 1 this is exactly the Pipeline system of
// §VII-A2). When a QFG is supplied, fragment lookups always use the graph's
// own obscurity level — Options.Obscurity is overridden, because querying a
// NoConstOp graph with Full fragments (or vice versa) can never match.
//
// Unless Options.DisableIndex is set, NewMapper precomputes an inverted
// index over schema names and column values (so candidate retrieval stops
// scanning tables per call) and installs a bounded memo cache for embedding
// similarities; both preserve the exact seed-path results.
func NewMapper(database *db.Database, model *embedding.Model, graph *qfg.Graph, opts Options) *Mapper {
	if graph != nil {
		opts.Obscurity = graph.Obscurity()
	}
	m := &Mapper{db: database, model: model, graph: graph, opts: opts.withDefaults()}
	if !m.opts.DisableIndex {
		m.index = buildCandidateIndex(database)
		m.cache = newSimCache(m.opts.SimCacheSize)
	}
	return m
}

// similarity scores two phrases through the bounded memo cache when one is
// installed. Model.Similarity is symmetric and deterministic, so cached
// values are exact.
func (m *Mapper) similarity(a, b string) float64 {
	if m.cache == nil {
		return m.model.Similarity(a, b)
	}
	k := makeSimKey(a, b)
	if v, ok := m.cache.get(k); ok {
		return v
	}
	v := m.model.Similarity(a, b)
	m.cache.put(k, v)
	return v
}

// MapKeywords implements Algorithm 1: candidate retrieval, scoring/pruning,
// and configuration generation. It returns configurations sorted by
// descending Score.
func (m *Mapper) MapKeywords(keywords []Keyword) ([]Configuration, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("keyword: no keywords")
	}
	perKeyword := make([][]Mapping, len(keywords))
	for i, kw := range keywords {
		cands := m.keywordCands(kw)
		scored := m.scoreAndPrune(kw, cands)
		if len(scored) == 0 {
			return nil, fmt.Errorf("keyword: no candidate mappings for %q", kw.Text)
		}
		perKeyword[i] = scored
	}
	configs := m.genAndScoreConfigs(perKeyword)
	return configs, nil
}

// ---------------------------------------------------------------------------
// Algorithm 2: candidate retrieval.

// keywordCands maps one keyword to its unscored candidates. Retrieval goes
// through the precomputed index when one exists; the helpers below fall
// back to the seed per-call database scans otherwise.
func (m *Mapper) keywordCands(kw Keyword) []Mapping {
	var out []Mapping
	if num, ok := extractNumber(kw.Text); ok {
		op := kw.Meta.Op
		if op == "" {
			op = "="
		}
		for _, match := range m.findNumericAttrs(num, op) {
			out = append(out, Mapping{
				Keyword: kw.Text,
				Kind:    KindPred,
				Rel:     match.Relation,
				Attr:    match.Attribute,
				Op:      op,
				Value:   sqlparse.Value{Kind: sqlparse.NumberVal, N: num},
			})
		}
		return out
	}
	switch kw.Meta.Context {
	case fragment.From:
		for _, rel := range m.relationCands() {
			out = append(out, Mapping{Keyword: kw.Text, Kind: KindRelation, Rel: rel})
		}
	case fragment.Select:
		agg := ""
		if len(kw.Meta.Aggs) > 0 {
			agg = kw.Meta.Aggs[0]
		}
		for _, ra := range m.selectCands() {
			out = append(out, Mapping{
				Keyword: kw.Text,
				Kind:    KindAttr,
				Rel:     ra.rel,
				Attr:    ra.attr,
				Agg:     agg,
				GroupBy: kw.Meta.GroupBy,
			})
		}
	default:
		// WHERE context: full-text search for matching text values (§V-A).
		const maxValuesPerAttr = 8
		for _, match := range m.findTextAttrs(kw.Text) {
			vals := match.Values
			if len(vals) > maxValuesPerAttr {
				vals = m.bestValues(kw.Text, vals, maxValuesPerAttr)
			}
			for _, v := range vals {
				out = append(out, Mapping{
					Keyword: kw.Text,
					Kind:    KindPred,
					Rel:     match.Relation,
					Attr:    match.Attribute,
					Op:      "=",
					Value:   sqlparse.Value{Kind: sqlparse.StringVal, S: v},
				})
			}
		}
	}
	return out
}

// relationCands lists the FROM-context candidate relations.
func (m *Mapper) relationCands() []string {
	if m.index != nil {
		return m.index.fromRels
	}
	return m.db.Schema().Relations()
}

// selectCands lists the SELECT-context candidate attributes: every non-key
// attribute (surrogate key columns are never user-meaningful projections).
func (m *Mapper) selectCands() []relAttr {
	if m.index != nil {
		return m.index.selectAttrs
	}
	var out []relAttr
	for _, q := range m.db.Schema().QualifiedAttributes() {
		rel, attr, _ := splitQualified(q)
		if m.db.IsKeyColumn(rel, attr) {
			continue
		}
		out = append(out, relAttr{rel, attr})
	}
	return out
}

// findTextAttrs runs the boolean-mode full-text probe of Algorithm 2.
func (m *Mapper) findTextAttrs(keyword string) []db.TextMatch {
	if m.index != nil {
		return m.index.findTextAttrs(keyword)
	}
	return m.db.FindTextAttrs(keyword)
}

// findNumericAttrs runs the numeric-predicate probe of Algorithm 2.
func (m *Mapper) findNumericAttrs(n float64, op string) []db.NumericMatch {
	if m.index != nil {
		return m.index.findNumericAttrs(n, op)
	}
	return m.db.FindNumericAttrs(n, op)
}

// bestValues keeps the n values most similar to the keyword.
func (m *Mapper) bestValues(keyword string, vals []string, n int) []string {
	type scored struct {
		v string
		s float64
	}
	ss := make([]scored, len(vals))
	for i, v := range vals {
		ss[i] = scored{v, m.similarity(keyword, v)}
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].s > ss[j].s })
	out := make([]string, 0, n)
	for i := 0; i < n && i < len(ss); i++ {
		out = append(out, ss[i].v)
	}
	return out
}

// ---------------------------------------------------------------------------
// Algorithm 3: scoring and pruning.

// scoreAndPrune computes σ per candidate and applies the PRUNE procedure.
func (m *Mapper) scoreAndPrune(kw Keyword, cands []Mapping) []Mapping {
	num, hasNum := extractNumber(kw.Text)
	stext := kw.Text
	if hasNum {
		stext = stripNumber(kw.Text)
	}
	for i := range cands {
		c := &cands[i]
		if hasNum {
			// findNumericAttrs already guaranteed exec(c) ≠ ∅; simnum
			// reduces to simtext of the residual text against the
			// attribute label. An all-numeric keyword has no residual
			// text: score a neutral constant so log evidence decides.
			if strings.TrimSpace(stext) == "" {
				c.Sim = 0.5
			} else {
				c.Sim = m.similarity(stext, c.label())
			}
			_ = num
			continue
		}
		c.Sim = m.simText(kw.Text, *c)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Sim > cands[j].Sim })
	return m.prune(cands)
}

// label is the human-vocabulary rendering of a mapping target for
// similarity comparison.
func (m Mapping) label() string {
	switch m.Kind {
	case KindRelation:
		return m.Rel
	case KindAttr:
		return m.Rel + " " + m.Attr
	default:
		return m.Rel + " " + m.Attr
	}
}

// simText scores a purely-textual keyword against a candidate. Relations
// and attributes compare against their schema names; text predicates
// compare against the matched value, with a discounted fallback to the
// attribute label so "papers about X" still prefers title-ish attributes.
func (m *Mapper) simText(keyword string, c Mapping) float64 {
	switch c.Kind {
	case KindRelation:
		return m.similarity(keyword, c.label())
	case KindAttr:
		s := m.similarity(keyword, c.label())
		// Default-projection prior: when a keyword names an entity without
		// distinguishing between its attributes ("journals", "businesses"),
		// prefer the relation's human-readable label column over siblings
		// like homepage. Capped below the exact-match threshold so the
		// prior can only break ties, never fabricate an exact match.
		if rel, ok := m.db.Schema().Relation(c.Rel); ok && rel.PrimaryTextAttribute() == c.Attr {
			s += 0.05
			if s > 0.97 {
				s = 0.97
			}
		}
		return s
	default:
		valueSim := m.similarity(keyword, c.Value.S)
		labelSim := 0.9 * m.similarity(keyword, c.label())
		if labelSim > valueSim {
			return labelSim
		}
		return valueSim
	}
}

// prune implements the PRUNE procedure of §V-B: exact matches expel
// everything else; otherwise keep top-κ plus κ-th-place ties with σ > 0.
func (m *Mapper) prune(sorted []Mapping) []Mapping {
	if len(sorted) == 0 {
		return nil
	}
	eps := m.opts.Epsilon
	if sorted[0].Sim >= 1-eps {
		var exact []Mapping
		for _, c := range sorted {
			if c.Sim >= 1-eps {
				exact = append(exact, c)
			}
		}
		return exact
	}
	k := m.opts.K
	if len(sorted) <= k {
		return trimZero(sorted)
	}
	cut := sorted[k-1].Sim
	out := sorted[:k]
	for i := k; i < len(sorted); i++ {
		if sorted[i].Sim == cut && cut > 0 {
			out = append(out, sorted[i])
		} else {
			break
		}
	}
	return trimZero(out)
}

// trimZero drops zero-similarity candidates unless everything is zero.
func trimZero(ms []Mapping) []Mapping {
	nz := ms[:0:0]
	for _, c := range ms {
		if c.Sim > 0 {
			nz = append(nz, c)
		}
	}
	if len(nz) == 0 {
		return ms
	}
	return nz
}

// ---------------------------------------------------------------------------
// Configuration generation and ranking (§V-C).

func (m *Mapper) genAndScoreConfigs(perKeyword [][]Mapping) []Configuration {
	total := 1
	for _, cands := range perKeyword {
		total *= len(cands)
		if total > m.opts.MaxConfigurations {
			total = m.opts.MaxConfigurations
			break
		}
	}
	configs := make([]Configuration, 0, total)
	current := make([]Mapping, len(perKeyword))
	var rec func(i int)
	rec = func(i int) {
		if len(configs) >= m.opts.MaxConfigurations {
			return
		}
		if i == len(perKeyword) {
			cfg := Configuration{Mappings: append([]Mapping(nil), current...)}
			m.scoreConfig(&cfg)
			configs = append(configs, cfg)
			return
		}
		for _, c := range perKeyword[i] {
			current[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	sort.SliceStable(configs, func(i, j int) bool { return configs[i].Score > configs[j].Score })
	return configs
}

// scoreConfig fills the three scores of a configuration.
func (m *Mapper) scoreConfig(cfg *Configuration) {
	// Scoreσ: geometric mean of mapping similarities (§V-C1 prefers the
	// geometric mean to dampen per-keyword score-range variation; the
	// arithmetic variant is kept for the design ablation).
	if m.opts.UseArithmeticMean {
		sum := 0.0
		for _, mp := range cfg.Mappings {
			sum += mp.Sim
		}
		cfg.SimScore = sum / float64(len(cfg.Mappings))
	} else {
		logSum := 0.0
		for _, mp := range cfg.Mappings {
			s := mp.Sim
			if s <= 0 {
				s = 1e-9
			}
			logSum += math.Log(s)
		}
		cfg.SimScore = math.Exp(logSum / float64(len(cfg.Mappings)))
	}

	// ScoreQFG: geometric mean of Dice over pairs of non-FROM fragments
	// (§V-C2 excludes relations — they are redundant with the attributes
	// that force them, and join inference handles them separately).
	if m.graph != nil {
		var frags []fragment.Fragment
		for _, mp := range cfg.Mappings {
			if mp.Kind == KindRelation && !m.opts.IncludeFromInQFG {
				continue
			}
			frags = append(frags, mp.Fragment(m.opts.Obscurity))
		}
		pairs := 0
		diceLog := 0.0
		zero := false
		for i := 0; i < len(frags); i++ {
			for j := i + 1; j < len(frags); j++ {
				d := m.graph.Dice(frags[i], frags[j])
				pairs++
				if d <= 0 {
					zero = true
					continue
				}
				diceLog += math.Log(d)
			}
		}
		switch {
		case pairs == 0 && len(frags) == 1:
			// A single non-relation fragment has no pairs; fall back to
			// its marginal evidence: relative frequency in the log.
			if q := m.graph.Queries(); q > 0 {
				cfg.QFGScore = float64(m.graph.Occurrences(frags[0])) / float64(q)
			}
		case pairs == 0:
			cfg.QFGScore = 0
		case zero:
			cfg.QFGScore = 0
		default:
			cfg.QFGScore = math.Exp(diceLog / float64(pairs))
		}
	}

	lambda := m.opts.Lambda
	if m.graph == nil {
		lambda = 1
	}
	cfg.Score = lambda*cfg.SimScore + (1-lambda)*cfg.QFGScore
}

// ---------------------------------------------------------------------------
// Small text helpers.

// extractNumber returns the first numeric token in s.
func extractNumber(s string) (float64, bool) {
	for _, tok := range strings.Fields(s) {
		tok = strings.Trim(tok, ",.;:!?")
		if n, err := strconv.ParseFloat(tok, 64); err == nil {
			return n, true
		}
	}
	return 0, false
}

// stripNumber removes numeric tokens from s.
func stripNumber(s string) string {
	var out []string
	for _, tok := range strings.Fields(s) {
		trimmed := strings.Trim(tok, ",.;:!?")
		if _, err := strconv.ParseFloat(trimmed, 64); err == nil {
			continue
		}
		out = append(out, tok)
	}
	return strings.Join(out, " ")
}

func splitQualified(q string) (rel, attr string, err error) {
	i := strings.IndexByte(q, '.')
	if i < 0 {
		return "", "", fmt.Errorf("keyword: malformed qualified attribute %q", q)
	}
	return q[:i], q[i+1:], nil
}
