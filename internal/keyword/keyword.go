package keyword

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

// Metadata is the parser metadata M_k = (τ, ω, F, g) accompanying a keyword.
type Metadata struct {
	// Context is τ: the clause the mapped fragment should live in.
	Context fragment.Context
	// Op is ω: the predicate comparison operator for numeric keywords
	// ("" defaults to "=").
	Op string
	// Aggs is F: aggregation functions to wrap the mapped attribute in,
	// outermost first (our subset uses at most one).
	Aggs []string
	// GroupBy is g: whether the mapped attribute should be grouped.
	GroupBy bool
}

// Keyword is one parsed NLQ keyword with its metadata.
type Keyword struct {
	Text string
	Meta Metadata
}

// Kind classifies a candidate mapping.
type Kind int

const (
	// KindRelation maps a keyword to a relation in the FROM clause.
	KindRelation Kind = iota
	// KindAttr maps a keyword to a (possibly aggregated) projection.
	KindAttr
	// KindPred maps a keyword to a value predicate in the WHERE clause.
	KindPred
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRelation:
		return "relation"
	case KindAttr:
		return "attribute"
	default:
		return "predicate"
	}
}

// Mapping is one candidate query fragment mapping m = (s, c, σ).
type Mapping struct {
	Keyword string
	Kind    Kind
	Rel     string
	Attr    string // empty for KindRelation
	Agg     string // aggregate for KindAttr ("" for none)
	GroupBy bool
	Op      string         // for KindPred
	Value   sqlparse.Value // for KindPred
	Sim     float64        // σ
}

// Qualified returns "rel.attr" for attribute/predicate mappings.
func (m Mapping) Qualified() string { return m.Rel + "." + m.Attr }

// Fragment renders the mapping as a query fragment at an obscurity level,
// for QFG lookups.
func (m Mapping) Fragment(ob fragment.Obscurity) fragment.Fragment {
	switch m.Kind {
	case KindRelation:
		return fragment.Relation(m.Rel)
	case KindAttr:
		return fragment.Attr(m.Qualified(), m.Agg)
	default:
		return fragment.Pred(m.Qualified(), m.Op, m.Value, ob)
	}
}

// String renders "keyword -> fragment (σ)".
func (m Mapping) String() string {
	return fmt.Sprintf("%s -> %s (%.3f)", m.Keyword, m.Fragment(fragment.Full), m.Sim)
}

// Configuration is a selection of one mapping per keyword (Definition 5)
// with its component scores.
type Configuration struct {
	Mappings []Mapping
	SimScore float64 // Scoreσ(φ): geometric mean of mapping similarities
	QFGScore float64 // ScoreQFG(φ): co-occurrence evidence from the log
	Score    float64 // λ·SimScore + (1−λ)·QFGScore
}

// Options configures a Mapper.
type Options struct {
	// K is κ: candidates kept per keyword after pruning. Default 5.
	K int
	// Lambda is λ: weight of the similarity score vs the log-driven score.
	// Default 0.8 (the paper's operating point).
	Lambda float64
	// Epsilon is the ε used for exact-match detection and as the score of
	// numeric predicates that select no rows. Default 0.02.
	Epsilon float64
	// Obscurity selects the fragment form used for QFG lookups.
	// Default NoConstOp (the paper's best performer).
	Obscurity fragment.Obscurity
	// MaxConfigurations caps the generated cartesian product. Default 5000.
	MaxConfigurations int
	// UseArithmeticMean switches Scoreσ from the geometric mean the paper
	// prefers (§V-C1) to an arithmetic mean, for the design ablation.
	UseArithmeticMean bool
	// IncludeFromInQFG includes FROM-context fragments in ScoreQFG pairs.
	// The paper excludes them (§V-C2) because attribute fragments already
	// force their relations, which would double-count evidence; this flag
	// exists for the design ablation.
	IncludeFromInQFG bool
	// DisableIndex restores the seed per-call scan path: no precomputed
	// candidate index and no similarity memo cache. Kept for ablations and
	// the indexed-vs-scan benchmark; results are identical either way.
	DisableIndex bool
	// DisableSnapshot restores the map-backed QFG scoring path: Dice
	// lookups go through the mutable Graph's mutex and fragment-keyed maps
	// instead of the compiled interned-ID snapshot. Kept for parity tests
	// and the snapshot-vs-map ranking benchmark; results are identical
	// either way.
	DisableSnapshot bool
	// SimCacheSize bounds the similarity memo cache (total entries across
	// all shards, approximately — see simCache). Default 65536. Ignored
	// when DisableIndex is set.
	SimCacheSize int
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 5
	}
	if o.Lambda == 0 {
		o.Lambda = 0.8
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.02
	}
	if o.MaxConfigurations <= 0 {
		o.MaxConfigurations = 5000
	}
	if o.SimCacheSize <= 0 {
		o.SimCacheSize = 65536
	}
	return o
}

// Mapper executes MAPKEYWORDS against one database.
//
// A Mapper is safe for concurrent use: the database, model, QFG and
// candidate index are read-only after construction, and the similarity memo
// cache is internally synchronized. The bound database must not be mutated
// while the Mapper is in use (the precomputed index would go stale).
type Mapper struct {
	db    *db.Database
	model *embedding.Model
	graph *qfg.Graph // nil disables log-driven scoring (pure baseline)
	// src yields the compiled QFG snapshot configurations are ranked
	// against (nil when Options.DisableSnapshot restores the map path, or
	// when there is no QFG at all). A *qfg.Live source lets log appends
	// republish without rebuilding the Mapper.
	src  qfg.SnapshotSource
	opts Options
	// index precomputes candidate retrieval structures (nil when
	// Options.DisableIndex restores the per-call scan path).
	index *candidateIndex
	// cache memoizes model.Similarity calls (nil when DisableIndex).
	cache *simCache
}

// NewMapper builds a Mapper. Passing a nil QFG yields the baseline behavior
// (ScoreQFG ≡ 0; with Lambda = 1 this is exactly the Pipeline system of
// §VII-A2). When a QFG is supplied, fragment lookups always use the graph's
// own obscurity level — Options.Obscurity is overridden, because querying a
// NoConstOp graph with Full fragments (or vice versa) can never match.
//
// Unless Options.DisableIndex is set, NewMapper precomputes an inverted
// index over schema names and column values (so candidate retrieval stops
// scanning tables per call) and installs a bounded memo cache for embedding
// similarities; both preserve the exact seed-path results.
func NewMapper(database *db.Database, model *embedding.Model, graph *qfg.Graph, opts Options) *Mapper {
	if graph != nil {
		opts.Obscurity = graph.Obscurity()
	}
	m := &Mapper{db: database, model: model, graph: graph, opts: opts.withDefaults()}
	if graph != nil && !m.opts.DisableSnapshot {
		// Compile the graph once; the Mapper then ranks configurations
		// against the immutable snapshot with zero locking. Callers that
		// keep appending to their log use NewSnapshotMapper with a
		// qfg.Live source instead.
		m.src = graph.Snapshot(nil)
	}
	if !m.opts.DisableIndex {
		m.index = buildCandidateIndex(database)
		m.cache = newSimCache(m.opts.SimCacheSize)
	}
	return m
}

// NewSnapshotMapper builds a Mapper that ranks against whatever snapshot
// src currently publishes — pass a fixed *qfg.Snapshot for a frozen log, or
// a *qfg.Live so copy-on-write republishes after log appends reach the
// Mapper without rebuilding it. The snapshot is loaded once per MapKeywords
// call (one atomic read), so a single request always scores against one
// consistent view. Options.Obscurity is overridden by the snapshot's own
// level, as in NewMapper.
func NewSnapshotMapper(database *db.Database, model *embedding.Model, src qfg.SnapshotSource, opts Options) *Mapper {
	if src != nil {
		if snap := src.CurrentSnapshot(); snap != nil {
			opts.Obscurity = snap.Obscurity()
		}
	}
	m := &Mapper{db: database, model: model, src: src, opts: opts.withDefaults()}
	if !m.opts.DisableIndex {
		m.index = buildCandidateIndex(database)
		m.cache = newSimCache(m.opts.SimCacheSize)
	}
	return m
}

// WithSource returns a shallow copy of the Mapper bound to a different
// snapshot source, sharing the candidate index, similarity cache, database
// and model (all safe for concurrent use). A serving engine uses it to pin
// one republished snapshot for the lifetime of a request pipeline, so
// configuration scores and join weights derive from the same log state.
// The source must publish snapshots of the same obscurity lineage as the
// Mapper was built with.
func (m *Mapper) WithSource(src qfg.SnapshotSource) *Mapper {
	c := *m
	c.src = src
	return &c
}

// similarity scores two phrases through the bounded memo cache when one is
// installed. Model.Similarity is symmetric and deterministic, so cached
// values are exact.
func (m *Mapper) similarity(a, b string) float64 {
	if m.cache == nil {
		return m.model.Similarity(a, b)
	}
	k := makeSimKey(a, b)
	if v, ok := m.cache.get(k); ok {
		return v
	}
	v := m.model.Similarity(a, b)
	m.cache.put(k, v)
	return v
}

// CallOptions are per-request overrides of a Mapper's construction-time
// Options; the zero value changes nothing. They let one shared Mapper
// serve requests with different budgets without being rebuilt.
type CallOptions struct {
	// K overrides κ, the candidates kept per keyword after pruning
	// (0 = the Mapper's configured value).
	K int
	// MaxConfigurations overrides the enumeration cap (0 = configured).
	MaxConfigurations int
	// TopK, when positive, bounds the returned configurations to the best
	// TopK — exactly the prefix the fully-sorted list would have, ties
	// resolved by enumeration order just as the stable sort resolves them.
	// The enumeration then keeps a bounded selection instead of
	// materializing and sorting the whole cartesian product (0 = all).
	TopK int
	// Obscurity asserts the fragment obscurity level the caller expects.
	// The level is baked into the compiled QFG, so a mismatch is an
	// ObscurityMismatchError rather than a silent rescoring; with no QFG
	// it selects the fragment form of the returned mappings.
	Obscurity *fragment.Obscurity
}

// ObscurityMismatchError reports a CallOptions.Obscurity assertion that
// names a level the Mapper's QFG was not mined at.
type ObscurityMismatchError struct {
	Want, Have fragment.Obscurity
}

func (e *ObscurityMismatchError) Error() string {
	return fmt.Sprintf("keyword: obscurity %v requested but the query log was mined at %v", e.Want, e.Have)
}

// MapKeywords implements Algorithm 1 with no cancellation and the
// Mapper's configured options; see MapKeywordsCtx.
func (m *Mapper) MapKeywords(keywords []Keyword) ([]Configuration, error) {
	return m.MapKeywordsCtx(context.Background(), keywords, CallOptions{})
}

// MapKeywordsCtx implements Algorithm 1: candidate retrieval,
// scoring/pruning, and configuration generation. It returns
// configurations sorted by descending Score.
//
// ctx is checked between keywords during candidate scoring and
// periodically inside the configuration enumeration, so a canceled
// request (or an expired deadline) aborts the cartesian product
// mid-flight instead of running it to completion; the wrapped ctx error
// is returned.
//
// The returned configurations share one backing array for their Mappings
// (allocated once per call rather than once per configuration), so
// retaining a single Configuration past the call keeps the whole
// enumeration reachable; callers that hold onto individual configurations
// long-term should copy the Mappings slice they keep.
func (m *Mapper) MapKeywordsCtx(ctx context.Context, keywords []Keyword, co CallOptions) ([]Configuration, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("keyword: no keywords")
	}
	opts, err := m.requestOptions(co)
	if err != nil {
		return nil, err
	}
	sc := mapScratchPool.Get().(*mapScratch)
	defer sc.release()
	sc.grab(len(keywords))
	perKeyword := sc.perKeyword
	for i, kw := range keywords {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("keyword: mapping canceled: %w", err)
		}
		cands := m.keywordCands(kw, sc.cands[i][:0])
		sc.cands[i] = cands // retain (possibly regrown) buffer for reuse
		scored := m.scoreAndPrune(kw, cands, opts)
		if len(scored) == 0 {
			return nil, fmt.Errorf("keyword: no candidate mappings for %q", kw.Text)
		}
		perKeyword[i] = scored
	}
	return m.genAndScoreConfigs(ctx, perKeyword, opts, co.TopK, sc)
}

// requestOptions resolves one request's effective Options from the
// Mapper's configuration plus per-call overrides, validating the
// obscurity assertion against the compiled QFG lineage.
func (m *Mapper) requestOptions(co CallOptions) (Options, error) {
	opts := m.opts
	if co.K > 0 {
		opts.K = co.K
	}
	if co.MaxConfigurations > 0 {
		opts.MaxConfigurations = co.MaxConfigurations
	}
	if co.Obscurity != nil {
		if (m.src != nil || m.graph != nil) && *co.Obscurity != m.opts.Obscurity {
			return opts, &ObscurityMismatchError{Want: *co.Obscurity, Have: m.opts.Obscurity}
		}
		opts.Obscurity = *co.Obscurity
	}
	return opts, nil
}

// ---------------------------------------------------------------------------
// Algorithm 2: candidate retrieval.

// keywordCands maps one keyword to its unscored candidates, appending into
// buf (pass buf[:0] to reuse a pooled buffer across calls). Retrieval goes
// through the precomputed index when one exists; the helpers below fall
// back to the seed per-call database scans otherwise.
func (m *Mapper) keywordCands(kw Keyword, buf []Mapping) []Mapping {
	out := buf
	if num, ok := extractNumber(kw.Text); ok {
		op := kw.Meta.Op
		if op == "" {
			op = "="
		}
		for _, match := range m.findNumericAttrs(num, op) {
			out = append(out, Mapping{
				Keyword: kw.Text,
				Kind:    KindPred,
				Rel:     match.Relation,
				Attr:    match.Attribute,
				Op:      op,
				Value:   sqlparse.Value{Kind: sqlparse.NumberVal, N: num},
			})
		}
		return out
	}
	switch kw.Meta.Context {
	case fragment.From:
		for _, rel := range m.relationCands() {
			out = append(out, Mapping{Keyword: kw.Text, Kind: KindRelation, Rel: rel})
		}
	case fragment.Select:
		agg := ""
		if len(kw.Meta.Aggs) > 0 {
			agg = kw.Meta.Aggs[0]
		}
		for _, ra := range m.selectCands() {
			out = append(out, Mapping{
				Keyword: kw.Text,
				Kind:    KindAttr,
				Rel:     ra.rel,
				Attr:    ra.attr,
				Agg:     agg,
				GroupBy: kw.Meta.GroupBy,
			})
		}
	default:
		// WHERE context: full-text search for matching text values (§V-A).
		const maxValuesPerAttr = 8
		for _, match := range m.findTextAttrs(kw.Text) {
			vals := match.Values
			if len(vals) > maxValuesPerAttr {
				vals = m.bestValues(kw.Text, vals, maxValuesPerAttr)
			}
			for _, v := range vals {
				out = append(out, Mapping{
					Keyword: kw.Text,
					Kind:    KindPred,
					Rel:     match.Relation,
					Attr:    match.Attribute,
					Op:      "=",
					Value:   sqlparse.Value{Kind: sqlparse.StringVal, S: v},
				})
			}
		}
	}
	return out
}

// relationCands lists the FROM-context candidate relations.
func (m *Mapper) relationCands() []string {
	if m.index != nil {
		return m.index.fromRels
	}
	return m.db.Schema().Relations()
}

// selectCands lists the SELECT-context candidate attributes: every non-key
// attribute (surrogate key columns are never user-meaningful projections).
func (m *Mapper) selectCands() []relAttr {
	if m.index != nil {
		return m.index.selectAttrs
	}
	var out []relAttr
	for _, q := range m.db.Schema().QualifiedAttributes() {
		rel, attr, _ := splitQualified(q)
		if m.db.IsKeyColumn(rel, attr) {
			continue
		}
		out = append(out, relAttr{rel, attr})
	}
	return out
}

// findTextAttrs runs the boolean-mode full-text probe of Algorithm 2.
func (m *Mapper) findTextAttrs(keyword string) []db.TextMatch {
	if m.index != nil {
		return m.index.findTextAttrs(keyword)
	}
	return m.db.FindTextAttrs(keyword)
}

// findNumericAttrs runs the numeric-predicate probe of Algorithm 2.
func (m *Mapper) findNumericAttrs(n float64, op string) []db.NumericMatch {
	if m.index != nil {
		return m.index.findNumericAttrs(n, op)
	}
	return m.db.FindNumericAttrs(n, op)
}

// bestValues keeps the n values most similar to the keyword.
func (m *Mapper) bestValues(keyword string, vals []string, n int) []string {
	type scored struct {
		v string
		s float64
	}
	ss := make([]scored, len(vals))
	for i, v := range vals {
		ss[i] = scored{v, m.similarity(keyword, v)}
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].s > ss[j].s })
	out := make([]string, 0, n)
	for i := 0; i < n && i < len(ss); i++ {
		out = append(out, ss[i].v)
	}
	return out
}

// ---------------------------------------------------------------------------
// Algorithm 3: scoring and pruning.

// scoreAndPrune computes σ per candidate and applies the PRUNE procedure.
func (m *Mapper) scoreAndPrune(kw Keyword, cands []Mapping, opts Options) []Mapping {
	num, hasNum := extractNumber(kw.Text)
	stext := kw.Text
	if hasNum {
		stext = stripNumber(kw.Text)
	}
	for i := range cands {
		c := &cands[i]
		if hasNum {
			// findNumericAttrs already guaranteed exec(c) ≠ ∅; simnum
			// reduces to simtext of the residual text against the
			// attribute label. An all-numeric keyword has no residual
			// text: score a neutral constant so log evidence decides.
			if strings.TrimSpace(stext) == "" {
				c.Sim = 0.5
			} else {
				c.Sim = m.similarity(stext, c.label())
			}
			_ = num
			continue
		}
		c.Sim = m.simText(kw.Text, *c)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Sim > cands[j].Sim })
	return m.prune(cands, opts)
}

// label is the human-vocabulary rendering of a mapping target for
// similarity comparison.
func (m Mapping) label() string {
	switch m.Kind {
	case KindRelation:
		return m.Rel
	case KindAttr:
		return m.Rel + " " + m.Attr
	default:
		return m.Rel + " " + m.Attr
	}
}

// simText scores a purely-textual keyword against a candidate. Relations
// and attributes compare against their schema names; text predicates
// compare against the matched value, with a discounted fallback to the
// attribute label so "papers about X" still prefers title-ish attributes.
func (m *Mapper) simText(keyword string, c Mapping) float64 {
	switch c.Kind {
	case KindRelation:
		return m.similarity(keyword, c.label())
	case KindAttr:
		s := m.similarity(keyword, c.label())
		// Default-projection prior: when a keyword names an entity without
		// distinguishing between its attributes ("journals", "businesses"),
		// prefer the relation's human-readable label column over siblings
		// like homepage. Capped below the exact-match threshold so the
		// prior can only break ties, never fabricate an exact match.
		if rel, ok := m.db.Schema().Relation(c.Rel); ok && rel.PrimaryTextAttribute() == c.Attr {
			s += 0.05
			if s > 0.97 {
				s = 0.97
			}
		}
		return s
	default:
		valueSim := m.similarity(keyword, c.Value.S)
		labelSim := 0.9 * m.similarity(keyword, c.label())
		if labelSim > valueSim {
			return labelSim
		}
		return valueSim
	}
}

// prune implements the PRUNE procedure of §V-B: exact matches expel
// everything else; otherwise keep top-κ plus κ-th-place ties with σ > 0.
func (m *Mapper) prune(sorted []Mapping, opts Options) []Mapping {
	if len(sorted) == 0 {
		return nil
	}
	eps := opts.Epsilon
	if sorted[0].Sim >= 1-eps {
		// Forward in-place filter: kept elements only ever move left within
		// the (scratch-owned) backing, so no extra allocation is needed.
		exact := sorted[:0]
		for _, c := range sorted {
			if c.Sim >= 1-eps {
				exact = append(exact, c)
			}
		}
		return exact
	}
	k := opts.K
	if len(sorted) <= k {
		return trimZero(sorted)
	}
	cut := sorted[k-1].Sim
	out := sorted[:k]
	for i := k; i < len(sorted); i++ {
		if sorted[i].Sim == cut && cut > 0 {
			out = append(out, sorted[i])
		} else {
			break
		}
	}
	return trimZero(out)
}

// trimZero drops zero-similarity candidates unless everything is zero.
// The filter runs in place (candidates are sorted scratch, never aliased by
// a caller), writing each kept element at or before its original position.
func trimZero(ms []Mapping) []Mapping {
	nz := ms[:0]
	for _, c := range ms {
		if c.Sim > 0 {
			nz = append(nz, c)
		}
	}
	if len(nz) == 0 {
		return ms
	}
	return nz
}

// ---------------------------------------------------------------------------
// Configuration generation and ranking (§V-C).

// candID is a candidate mapping's interned fragment ID for snapshot-based
// QFG scoring; use marks candidates that participate in ScoreQFG pairs
// (relations are excluded unless IncludeFromInQFG).
type candID struct {
	id  uint32
	use bool
}

func (m *Mapper) genAndScoreConfigs(ctx context.Context, perKeyword [][]Mapping, opts Options, topK int, sc *mapScratch) ([]Configuration, error) {
	// Load the current snapshot once per request: every configuration of
	// this call ranks against one consistent view, and candidate fragments
	// are translated to interned IDs here — once per candidate, not once
	// per probe of the cartesian product.
	var snap *qfg.Snapshot
	if m.src != nil {
		snap = m.src.CurrentSnapshot()
	}
	var perIDs [][]candID
	if snap != nil {
		ob := snap.Obscurity()
		perIDs = sc.perIDs
		for i, cands := range perKeyword {
			ids := sc.idRows[i]
			if cap(ids) < len(cands) {
				ids = make([]candID, len(cands))
				sc.idRows[i] = ids
			}
			ids = ids[:len(cands)]
			for j, mp := range cands {
				if mp.Kind == KindRelation && !opts.IncludeFromInQFG {
					ids[j] = candID{}
					continue
				}
				ids[j] = candID{id: snap.Lookup(mp.Fragment(ob)), use: true}
			}
			perIDs[i] = ids
		}
	}

	total := 1
	for _, cands := range perKeyword {
		total *= len(cands)
		if total > opts.MaxConfigurations {
			total = opts.MaxConfigurations
			break
		}
	}
	current := sc.current
	curIDs := sc.curIDs
	scratch := sc.frags // reused by the map-backed score path
	canceled := false
	emitted := 0

	if topK > 0 {
		// Bounded selection: score each enumerated configuration into the
		// pooled top-k selector instead of materializing the product. The
		// result is provably the same prefix the sort-everything path below
		// returns (see topkSel), but the working set is k configurations
		// and the only allocations are the caller-owned result arrays.
		k := topK
		if k > total {
			k = total
		}
		sel := &sc.sel
		sel.reset(k, len(perKeyword))
		var rec func(i int)
		rec = func(i int) {
			if canceled || emitted >= opts.MaxConfigurations {
				return
			}
			if i == len(perKeyword) {
				// Same cancellation cadence as the full path: poll every 64
				// enumerated configurations.
				if emitted&63 == 63 && ctx.Err() != nil {
					canceled = true
					return
				}
				cfg := Configuration{Mappings: current}
				m.scoreConfig(&cfg, snap, curIDs, &scratch, opts)
				sel.offer(cfg, emitted)
				emitted++
				return
			}
			for ci := range perKeyword[i] {
				current[i] = perKeyword[i][ci]
				if perIDs != nil {
					curIDs[i] = perIDs[i][ci]
				}
				rec(i + 1)
			}
		}
		rec(0)
		sc.frags = scratch
		if canceled {
			return nil, fmt.Errorf("keyword: configuration enumeration canceled after %d configurations: %w", emitted, ctx.Err())
		}
		return sel.take(), nil
	}

	configs := make([]Configuration, 0, total)
	// One backing array serves every configuration's Mappings slice, sized
	// so the appends below never regrow it mid-enumeration.
	backing := make([]Mapping, 0, total*len(perKeyword))
	var rec func(i int)
	rec = func(i int) {
		if canceled || len(configs) >= opts.MaxConfigurations {
			return
		}
		if i == len(perKeyword) {
			// Poll cancellation every 64 enumerated configurations: cheap
			// enough to be invisible on the hot path, frequent enough that a
			// canceled request abandons a large cartesian product mid-flight.
			if len(configs)&63 == 63 && ctx.Err() != nil {
				canceled = true
				return
			}
			start := len(backing)
			backing = append(backing, current...)
			cfg := Configuration{Mappings: backing[start:len(backing):len(backing)]}
			m.scoreConfig(&cfg, snap, curIDs, &scratch, opts)
			configs = append(configs, cfg)
			return
		}
		for ci := range perKeyword[i] {
			current[i] = perKeyword[i][ci]
			if perIDs != nil {
				curIDs[i] = perIDs[i][ci]
			}
			rec(i + 1)
		}
	}
	rec(0)
	sc.frags = scratch
	if canceled {
		return nil, fmt.Errorf("keyword: configuration enumeration canceled after %d configurations: %w", len(configs), ctx.Err())
	}
	sort.SliceStable(configs, func(i, j int) bool { return configs[i].Score > configs[j].Score })
	return configs, nil
}

// scoreConfig fills the three scores of a configuration. ids carries the
// interned fragment ID per mapping when a snapshot is in use; scratch is a
// reusable fragment buffer for the map-backed path.
func (m *Mapper) scoreConfig(cfg *Configuration, snap *qfg.Snapshot, ids []candID, scratch *[]fragment.Fragment, opts Options) {
	// Scoreσ: geometric mean of mapping similarities (§V-C1 prefers the
	// geometric mean to dampen per-keyword score-range variation; the
	// arithmetic variant is kept for the design ablation).
	if opts.UseArithmeticMean {
		sum := 0.0
		for _, mp := range cfg.Mappings {
			sum += mp.Sim
		}
		cfg.SimScore = sum / float64(len(cfg.Mappings))
	} else {
		logSum := 0.0
		for _, mp := range cfg.Mappings {
			s := mp.Sim
			if s <= 0 {
				s = 1e-9
			}
			logSum += math.Log(s)
		}
		cfg.SimScore = math.Exp(logSum / float64(len(cfg.Mappings)))
	}

	// ScoreQFG: geometric mean of Dice over pairs of non-FROM fragments
	// (§V-C2 excludes relations — they are redundant with the attributes
	// that force them, and join inference handles them separately). The
	// snapshot path is the serving hot path: interned IDs against CSR
	// arrays, no locks, no hashing. The map path is the DisableSnapshot
	// ablation; both produce bit-identical scores.
	switch {
	case snap != nil:
		m.scoreQFGSnapshot(cfg, snap, ids)
	case m.graph != nil:
		m.scoreQFGMap(cfg, scratch, opts)
	}

	lambda := opts.Lambda
	if m.graph == nil && m.src == nil {
		lambda = 1
	}
	cfg.Score = lambda*cfg.SimScore + (1-lambda)*cfg.QFGScore
}

// scoreConfigAdhoc scores one standalone configuration, translating its
// fragments to IDs on the spot (tests and diagnostics; the enumeration in
// genAndScoreConfigs precomputes IDs for whole candidate sets instead).
func (m *Mapper) scoreConfigAdhoc(cfg *Configuration) {
	var snap *qfg.Snapshot
	if m.src != nil {
		snap = m.src.CurrentSnapshot()
	}
	var ids []candID
	if snap != nil {
		ob := snap.Obscurity()
		ids = make([]candID, len(cfg.Mappings))
		for i, mp := range cfg.Mappings {
			if mp.Kind == KindRelation && !m.opts.IncludeFromInQFG {
				continue
			}
			ids[i] = candID{id: snap.Lookup(mp.Fragment(ob)), use: true}
		}
	}
	var scratch []fragment.Fragment
	m.scoreConfig(cfg, snap, ids, &scratch, m.opts)
}

// scoreQFGSnapshot computes ScoreQFG with interned-ID probes against the
// immutable snapshot. The pair iteration order matches scoreQFGMap exactly,
// so the floating-point accumulation is bit-identical.
func (m *Mapper) scoreQFGSnapshot(cfg *Configuration, snap *qfg.Snapshot, ids []candID) {
	nqf, pairs := 0, 0
	diceLog := 0.0
	zero := false
	soleID := fragment.NoID
	for i := 0; i < len(ids); i++ {
		if !ids[i].use {
			continue
		}
		nqf++
		soleID = ids[i].id
		for j := i + 1; j < len(ids); j++ {
			if !ids[j].use {
				continue
			}
			d := snap.DiceID(ids[i].id, ids[j].id)
			pairs++
			if d <= 0 {
				zero = true
				continue
			}
			diceLog += math.Log(d)
		}
	}
	switch {
	case pairs == 0 && nqf == 1:
		// A single non-relation fragment has no pairs; fall back to its
		// marginal evidence: relative frequency in the log.
		if q := snap.Queries(); q > 0 {
			cfg.QFGScore = float64(snap.OccurrencesID(soleID)) / float64(q)
		}
	case pairs == 0:
		cfg.QFGScore = 0
	case zero:
		cfg.QFGScore = 0
	default:
		cfg.QFGScore = math.Exp(diceLog / float64(pairs))
	}
}

// scoreQFGMap computes ScoreQFG through the mutable Graph's mutex and maps
// (the seed path, kept behind Options.DisableSnapshot for parity tests and
// the ranking benchmark).
func (m *Mapper) scoreQFGMap(cfg *Configuration, scratch *[]fragment.Fragment, opts Options) {
	frags := (*scratch)[:0]
	for _, mp := range cfg.Mappings {
		if mp.Kind == KindRelation && !opts.IncludeFromInQFG {
			continue
		}
		frags = append(frags, mp.Fragment(opts.Obscurity))
	}
	*scratch = frags
	pairs := 0
	diceLog := 0.0
	zero := false
	for i := 0; i < len(frags); i++ {
		for j := i + 1; j < len(frags); j++ {
			d := m.graph.Dice(frags[i], frags[j])
			pairs++
			if d <= 0 {
				zero = true
				continue
			}
			diceLog += math.Log(d)
		}
	}
	switch {
	case pairs == 0 && len(frags) == 1:
		if q := m.graph.Queries(); q > 0 {
			cfg.QFGScore = float64(m.graph.Occurrences(frags[0])) / float64(q)
		}
	case pairs == 0:
		cfg.QFGScore = 0
	case zero:
		cfg.QFGScore = 0
	default:
		cfg.QFGScore = math.Exp(diceLog / float64(pairs))
	}
}

// ---------------------------------------------------------------------------
// Small text helpers.

// extractNumber returns the first numeric token in s.
func extractNumber(s string) (float64, bool) {
	for _, tok := range strings.Fields(s) {
		tok = strings.Trim(tok, ",.;:!?")
		if n, err := strconv.ParseFloat(tok, 64); err == nil {
			return n, true
		}
	}
	return 0, false
}

// stripNumber removes numeric tokens from s.
func stripNumber(s string) string {
	var out []string
	for _, tok := range strings.Fields(s) {
		trimmed := strings.Trim(tok, ",.;:!?")
		if _, err := strconv.ParseFloat(trimmed, 64); err == nil {
			continue
		}
		out = append(out, tok)
	}
	return strings.Join(out, " ")
}

func splitQualified(q string) (rel, attr string, err error) {
	i := strings.IndexByte(q, '.')
	if i < 0 {
		return "", "", fmt.Errorf("keyword: malformed qualified attribute %q", q)
	}
	return q[:i], q[i+1:], nil
}
