package keyword

import (
	"sort"
	"sync"

	"templar/internal/fragment"
)

// topkSel is a bounded top-k configuration selector: it keeps the k best
// scored configurations seen so far in a min-heap (worst kept at the root)
// with the mappings of kept configurations copied into a fixed k-row arena.
// Admission order is the total order the full enumeration path realizes with
// its stable sort — score descending, enumeration index ascending — so the
// selected set and its final ordering are exactly the first k entries of the
// fully-sorted configuration list, without materializing (or sorting) the
// whole cartesian product.
type topkSel struct {
	k    int
	nkw  int       // mappings per configuration
	ents []topkEnt // min-heap while selecting, worst at ents[0]
	rows []Mapping // k rows × nkw backing arena for kept mappings
}

type topkEnt struct {
	cfg Configuration // Mappings aliases one arena row
	idx int           // enumeration index: the stable-sort tie break
	row int
}

// reset prepares the selector for one enumeration, reusing the arena and
// heap storage across pooled calls.
func (s *topkSel) reset(k, nkw int) {
	s.k, s.nkw = k, nkw
	if cap(s.ents) < k {
		s.ents = make([]topkEnt, 0, k)
	}
	s.ents = s.ents[:0]
	if cap(s.rows) < k*nkw {
		s.rows = make([]Mapping, k*nkw)
	}
	s.rows = s.rows[:cap(s.rows)]
}

func (s *topkSel) row(i int) []Mapping {
	return s.rows[i*s.nkw : (i+1)*s.nkw]
}

// worse orders the heap: a sifts toward the root when it loses to b under
// (score descending, enumeration index ascending).
func (s *topkSel) worse(a, b topkEnt) bool {
	if a.cfg.Score != b.cfg.Score {
		return a.cfg.Score < b.cfg.Score
	}
	return a.idx > b.idx
}

// offer considers one scored configuration whose Mappings alias the
// enumeration's current buffer; admitted configurations are copied into the
// arena. idx must increase across calls (the enumeration order).
func (s *topkSel) offer(cfg Configuration, idx int) {
	if len(s.ents) < s.k {
		r := len(s.ents)
		copy(s.row(r), cfg.Mappings)
		cfg.Mappings = s.row(r)
		s.ents = append(s.ents, topkEnt{cfg: cfg, idx: idx, row: r})
		s.siftUp(len(s.ents) - 1)
		return
	}
	// Full heap: the newcomer enters only by strictly beating the worst
	// kept entry. An equal score loses — the newcomer's enumeration index
	// is necessarily higher, which is exactly the stable-sort tie order.
	if cfg.Score <= s.ents[0].cfg.Score {
		return
	}
	r := s.ents[0].row
	copy(s.row(r), cfg.Mappings)
	cfg.Mappings = s.row(r)
	s.ents[0] = topkEnt{cfg: cfg, idx: idx, row: r}
	s.siftDown(0)
}

func (s *topkSel) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.worse(s.ents[i], s.ents[p]) {
			return
		}
		s.ents[i], s.ents[p] = s.ents[p], s.ents[i]
		i = p
	}
}

func (s *topkSel) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(s.ents) && s.worse(s.ents[l], s.ents[w]) {
			w = l
		}
		if r < len(s.ents) && s.worse(s.ents[r], s.ents[w]) {
			w = r
		}
		if w == i {
			return
		}
		s.ents[i], s.ents[w] = s.ents[w], s.ents[i]
		i = w
	}
}

// take extracts the kept configurations in final rank order, copying their
// mappings out of the pooled arena into one caller-owned backing array (the
// same single-backing layout the full enumeration path returns).
func (s *topkSel) take() []Configuration {
	ents := s.ents
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].cfg.Score != ents[j].cfg.Score {
			return ents[i].cfg.Score > ents[j].cfg.Score
		}
		return ents[i].idx < ents[j].idx
	})
	configs := make([]Configuration, len(ents))
	backing := make([]Mapping, 0, len(ents)*s.nkw)
	for i, e := range ents {
		start := len(backing)
		backing = append(backing, e.cfg.Mappings...)
		configs[i] = e.cfg
		configs[i].Mappings = backing[start:len(backing):len(backing)]
	}
	return configs
}

// mapScratch is the per-request working state of MapKeywordsCtx, pooled so
// the serving hot path stops paying one allocation storm per call: candidate
// buffers, the per-keyword pruned views, interned-ID rows, the enumeration's
// current-selection buffers and the bounded top-k selector all live here.
// Nothing in it escapes a call — returned configurations always own fresh
// backing (see take and the full enumeration path).
type mapScratch struct {
	perKeyword [][]Mapping
	cands      [][]Mapping // reusable per-keyword candidate buffers
	perIDs     [][]candID
	idRows     [][]candID // retained backing for perIDs rows
	current    []Mapping
	curIDs     []candID
	frags      []fragment.Fragment // map-backed score path buffer
	sel        topkSel
}

var mapScratchPool = sync.Pool{New: func() any { return new(mapScratch) }}

// grab sizes the scratch for n keywords and returns per-call views.
func (sc *mapScratch) grab(n int) {
	if cap(sc.perKeyword) < n {
		sc.perKeyword = make([][]Mapping, n)
		sc.cands = make([][]Mapping, n)
		sc.idRows = make([][]candID, n)
		sc.perIDs = make([][]candID, n)
	}
	sc.perKeyword = sc.perKeyword[:n]
	sc.cands = sc.cands[:n]
	sc.idRows = sc.idRows[:n]
	sc.perIDs = sc.perIDs[:n]
	if cap(sc.current) < n {
		sc.current = make([]Mapping, n)
		sc.curIDs = make([]candID, n)
	}
	sc.current = sc.current[:n]
	sc.curIDs = sc.curIDs[:n]
}

// release clears row views that alias per-call data and returns the scratch
// to the pool. The Mapping values kept in the buffers reference strings
// owned by the long-lived database/index, so retaining capacity is safe.
func (sc *mapScratch) release() {
	for i := range sc.perKeyword {
		sc.perKeyword[i] = nil
		sc.perIDs[i] = nil
	}
	mapScratchPool.Put(sc)
}
