package keyword

import (
	"math"
	"testing"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/schema"
	"templar/internal/sqlparse"
)

// masMini builds a small MAS-shaped database with journal/publication
// ambiguity, plus a query log reproducing the paper's running example.
func masMini(t testing.TB) *db.Database {
	t.Helper()
	g := schema.NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	num := func(name string, pk bool) schema.Attribute {
		return schema.Attribute{Name: name, Type: schema.Number, PrimaryKey: pk}
	}
	text := func(name string) schema.Attribute {
		return schema.Attribute{Name: name, Type: schema.Text}
	}
	must(g.AddRelation(schema.Relation{Name: "journal", Attributes: []schema.Attribute{num("jid", true), text("name")}}))
	must(g.AddRelation(schema.Relation{Name: "publication", Attributes: []schema.Attribute{num("pid", true), text("title"), num("year", false), num("jid", false)}}))
	must(g.AddRelation(schema.Relation{Name: "domain", Attributes: []schema.Attribute{num("did", true), text("name")}}))
	must(g.AddForeignKey(schema.ForeignKey{FromRel: "publication", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"}))
	d := db.New(g)
	d.MustInsert("journal", []db.Value{db.Num(1), db.Str("TKDE")})
	d.MustInsert("journal", []db.Value{db.Num(2), db.Str("TMC")})
	d.MustInsert("publication", []db.Value{db.Num(10), db.Str("Query Processing at Scale"), db.Num(2001), db.Num(1)})
	d.MustInsert("publication", []db.Value{db.Num(11), db.Str("Mobile Networks"), db.Num(1998), db.Num(2)})
	d.MustInsert("domain", []db.Value{db.Num(100), db.Str("Databases")})
	d.MustInsert("domain", []db.Value{db.Num(101), db.Str("Networking")})
	return d
}

// paperishLog builds a QFG in which publication.title co-occurs with year
// predicates and journal-name predicates, as in Figure 3.
func paperishLog(t testing.TB, ob fragment.Obscurity) *qfg.Graph {
	t.Helper()
	log := `
25x: SELECT j.name FROM journal j
8x: SELECT p.title FROM publication p WHERE p.year > 2003
6x: SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.jid = j.jid
4x: SELECT p.title FROM publication p, domain d WHERE d.name = 'Databases'
`
	entries, err := sqlparse.ParseLog(log)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qfg.Build(entries, ob)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newMapper(t testing.TB, withQFG bool, opts Options) *Mapper {
	t.Helper()
	d := masMini(t)
	var graph *qfg.Graph
	if withQFG {
		ob := opts.Obscurity
		graph = paperishLog(t, ob)
	}
	return NewMapper(d, embedding.New(), graph, opts)
}

func TestExtractNumber(t *testing.T) {
	if n, ok := extractNumber("after 2000"); !ok || n != 2000 {
		t.Fatalf("extractNumber = %v %v", n, ok)
	}
	if n, ok := extractNumber("3.5 stars"); !ok || n != 3.5 {
		t.Fatalf("extractNumber = %v %v", n, ok)
	}
	if _, ok := extractNumber("papers"); ok {
		t.Fatal("no number expected")
	}
	if got := stripNumber("after 2000"); got != "after" {
		t.Fatalf("stripNumber = %q", got)
	}
	if got := stripNumber("2000"); got != "" {
		t.Fatalf("stripNumber = %q", got)
	}
}

func TestKeywordCandsNumeric(t *testing.T) {
	m := newMapper(t, false, Options{})
	cands := m.keywordCands(Keyword{Text: "after 2000", Meta: Metadata{Context: fragment.Where, Op: ">"}}, nil)
	if len(cands) != 1 {
		t.Fatalf("cands = %v", cands)
	}
	c := cands[0]
	if c.Kind != KindPred || c.Qualified() != "publication.year" || c.Op != ">" || c.Value.N != 2000 {
		t.Fatalf("cand = %+v", c)
	}
}

func TestKeywordCandsFromContext(t *testing.T) {
	m := newMapper(t, false, Options{})
	cands := m.keywordCands(Keyword{Text: "papers", Meta: Metadata{Context: fragment.From}}, nil)
	if len(cands) != 3 {
		t.Fatalf("cands = %v", cands)
	}
	for _, c := range cands {
		if c.Kind != KindRelation {
			t.Fatalf("cand = %+v", c)
		}
	}
}

func TestKeywordCandsSelectContext(t *testing.T) {
	m := newMapper(t, false, Options{})
	cands := m.keywordCands(Keyword{Text: "papers", Meta: Metadata{Context: fragment.Select, Aggs: []string{"COUNT"}}}, nil)
	// All non-key attributes: journal.name, publication.title,
	// publication.year, domain.name (ids are excluded).
	if len(cands) != 4 {
		t.Fatalf("cands = %d: %v", len(cands), cands)
	}
	for _, c := range cands {
		if c.Kind != KindAttr || c.Agg != "COUNT" {
			t.Fatalf("cand = %+v", c)
		}
	}
}

func TestKeywordCandsTextPredicate(t *testing.T) {
	m := newMapper(t, false, Options{})
	cands := m.keywordCands(Keyword{Text: "Databases", Meta: Metadata{Context: fragment.Where}}, nil)
	found := false
	for _, c := range cands {
		if c.Kind == KindPred && c.Qualified() == "domain.name" && c.Value.S == "Databases" {
			found = true
		}
	}
	if !found {
		t.Fatalf("domain.name = 'Databases' not among candidates: %v", cands)
	}
}

func TestScoreAndPruneExactMatchExpelsOthers(t *testing.T) {
	m := newMapper(t, false, Options{})
	kw := Keyword{Text: "TKDE", Meta: Metadata{Context: fragment.Where}}
	cands := m.keywordCands(kw, nil)
	pruned := m.scoreAndPrune(kw, cands, m.opts)
	if len(pruned) != 1 {
		t.Fatalf("pruned = %v", pruned)
	}
	if pruned[0].Value.S != "TKDE" || pruned[0].Sim < 0.98 {
		t.Fatalf("pruned[0] = %+v", pruned[0])
	}
}

func TestPruneKeepsTopKWithTies(t *testing.T) {
	m := NewMapper(masMini(t), embedding.New(), nil, Options{K: 2})
	sorted := []Mapping{
		{Keyword: "x", Kind: KindRelation, Rel: "a", Sim: 0.9},
		{Keyword: "x", Kind: KindRelation, Rel: "b", Sim: 0.5},
		{Keyword: "x", Kind: KindRelation, Rel: "c", Sim: 0.5},
		{Keyword: "x", Kind: KindRelation, Rel: "d", Sim: 0.4},
	}
	got := m.prune(sorted, m.opts)
	if len(got) != 3 { // top-2 plus the tie at 2nd place
		t.Fatalf("prune = %v", got)
	}
	// Zero-similarity candidates are dropped when any positive one exists.
	sorted2 := []Mapping{
		{Keyword: "x", Kind: KindRelation, Rel: "a", Sim: 0.9},
		{Keyword: "x", Kind: KindRelation, Rel: "b", Sim: 0},
	}
	if got := m.prune(sorted2, m.opts); len(got) != 1 {
		t.Fatalf("prune zero = %v", got)
	}
}

func TestMapKeywordsBaselinePrefersJournal(t *testing.T) {
	// Without log evidence, the similarity model's deliberate ambiguity
	// maps "papers" (SELECT) to journal.name over publication.title
	// (Example 1's failure mode).
	m := newMapper(t, false, Options{})
	configs, err := m.MapKeywords([]Keyword{
		{Text: "papers", Meta: Metadata{Context: fragment.Select}},
		{Text: "Databases", Meta: Metadata{Context: fragment.Where}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top := configs[0]
	if top.Mappings[0].Qualified() != "journal.name" {
		t.Fatalf("baseline top mapping = %v, want journal.name (the wrong-but-expected choice)", top.Mappings[0])
	}
}

func TestMapKeywordsQFGCorrectsToPublication(t *testing.T) {
	// With the Figure 3-style log, p.title co-occurs with domain-name
	// predicates while j.name never does, so Templar flips the top choice
	// to publication.title (Example 3).
	m := newMapper(t, true, Options{Obscurity: fragment.NoConstOp})
	configs, err := m.MapKeywords([]Keyword{
		{Text: "papers", Meta: Metadata{Context: fragment.Select}},
		{Text: "Databases", Meta: Metadata{Context: fragment.Where}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top := configs[0]
	if top.Mappings[0].Qualified() != "publication.title" {
		for i, c := range configs[:min(4, len(configs))] {
			t.Logf("config %d: %v sim=%.3f qfg=%.3f score=%.3f", i, c.Mappings, c.SimScore, c.QFGScore, c.Score)
		}
		t.Fatalf("QFG-augmented top mapping = %v, want publication.title", top.Mappings[0])
	}
	if top.QFGScore <= 0 {
		t.Fatalf("QFGScore = %v, want > 0", top.QFGScore)
	}
}

func TestConfigurationScoresGeometricMean(t *testing.T) {
	m := newMapper(t, false, Options{})
	cfg := Configuration{Mappings: []Mapping{
		{Kind: KindAttr, Rel: "publication", Attr: "title", Sim: 0.5},
		{Kind: KindPred, Rel: "domain", Attr: "name", Op: "=", Sim: 0.8,
			Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "Databases"}},
	}}
	m.scoreConfigAdhoc(&cfg)
	want := math.Sqrt(0.5 * 0.8)
	if math.Abs(cfg.SimScore-want) > 1e-9 {
		t.Fatalf("SimScore = %v, want %v", cfg.SimScore, want)
	}
	// Baseline (nil QFG) pins lambda to 1.
	if cfg.Score != cfg.SimScore {
		t.Fatalf("Score = %v, want SimScore %v", cfg.Score, cfg.SimScore)
	}
}

func TestLambdaBlending(t *testing.T) {
	m := newMapper(t, true, Options{Lambda: 0.8, Obscurity: fragment.NoConstOp})
	configs, err := m.MapKeywords([]Keyword{
		{Text: "papers", Meta: Metadata{Context: fragment.Select}},
		{Text: "after 2000", Meta: Metadata{Context: fragment.Where, Op: ">"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range configs {
		want := 0.8*c.SimScore + 0.2*c.QFGScore
		if math.Abs(c.Score-want) > 1e-9 {
			t.Fatalf("Score = %v, want %v", c.Score, want)
		}
	}
}

func TestMapKeywordsNoCandidates(t *testing.T) {
	m := newMapper(t, false, Options{})
	_, err := m.MapKeywords([]Keyword{
		{Text: "zebra unicorn", Meta: Metadata{Context: fragment.Where}},
	})
	if err == nil {
		t.Fatal("expected no-candidates error")
	}
	if _, err := m.MapKeywords(nil); err == nil {
		t.Fatal("expected empty-keywords error")
	}
}

func TestConfigurationCap(t *testing.T) {
	m := newMapper(t, false, Options{MaxConfigurations: 3, K: 10})
	configs, err := m.MapKeywords([]Keyword{
		{Text: "papers", Meta: Metadata{Context: fragment.Select}},
		{Text: "name", Meta: Metadata{Context: fragment.Select}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) > 3 {
		t.Fatalf("configs = %d, want <= 3", len(configs))
	}
}

func TestMappingFragmentRendering(t *testing.T) {
	mp := Mapping{Kind: KindPred, Rel: "publication", Attr: "year", Op: ">",
		Value: sqlparse.Value{Kind: sqlparse.NumberVal, N: 2000}}
	if f := mp.Fragment(fragment.NoConstOp); f.Expr != "publication.year ?op ?val" {
		t.Fatalf("Fragment = %v", f)
	}
	mp2 := Mapping{Kind: KindAttr, Rel: "publication", Attr: "title", Agg: "COUNT"}
	if f := mp2.Fragment(fragment.Full); f.Expr != "COUNT(publication.title)" {
		t.Fatalf("Fragment = %v", f)
	}
	mp3 := Mapping{Kind: KindRelation, Rel: "journal"}
	if f := mp3.Fragment(fragment.Full); f.Context != fragment.From || f.Expr != "journal" {
		t.Fatalf("Fragment = %v", f)
	}
}

func TestKindString(t *testing.T) {
	if KindRelation.String() != "relation" || KindAttr.String() != "attribute" || KindPred.String() != "predicate" {
		t.Fatal("Kind names")
	}
}

func TestNumericKeywordWithoutResidualText(t *testing.T) {
	m := newMapper(t, false, Options{})
	configs, err := m.MapKeywords([]Keyword{
		{Text: "2001", Meta: Metadata{Context: fragment.Where, Op: "="}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if configs[0].Mappings[0].Sim != 0.5 {
		t.Fatalf("neutral numeric score = %v, want 0.5", configs[0].Mappings[0].Sim)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkMapKeywords(b *testing.B) {
	m := newMapper(b, true, Options{Obscurity: fragment.NoConstOp})
	kws := []Keyword{
		{Text: "papers", Meta: Metadata{Context: fragment.Select}},
		{Text: "Databases", Meta: Metadata{Context: fragment.Where}},
		{Text: "after 2000", Meta: Metadata{Context: fragment.Where, Op: ">"}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.MapKeywords(kws); err != nil {
			b.Fatal(err)
		}
	}
}
