package keyword

import (
	"sort"
	"strings"
	"sync"

	"templar/internal/db"
	"templar/internal/schema"
	"templar/internal/stem"
)

// candidateIndex precomputes, at NewMapper time, everything keywordCands
// otherwise re-derives from the database on every call: the FROM-context
// relation list, the SELECT-context non-key attribute list, a per-attribute
// inverted text index (sorted stemmed tokens with value postings, replacing
// the full token-map scan in Table.MatchAll), and sorted distinct numeric
// values per attribute (replacing the full row scan in Table.AnyMatch).
//
// The index is immutable after construction and therefore safe for
// concurrent use. Candidate enumeration order matches the seed scan path
// exactly — relations sorted for text/numeric probes, schema insertion
// order for FROM and SELECT candidates — so an indexed Mapper returns
// byte-identical configurations to an unindexed one.
type candidateIndex struct {
	// fromRels is the FROM-context candidate list (schema insertion order).
	fromRels []string
	// selectAttrs is the SELECT-context candidate list: every non-key
	// attribute in schema insertion order.
	selectAttrs []relAttr
	// textAttrs carries one inverted index per text attribute, ordered by
	// sorted relation name then attribute declaration order.
	textAttrs []textAttrIndex
	// numAttrs carries sorted distinct values per non-key numeric
	// attribute, in the same relation/attribute order.
	numAttrs []numAttrIndex
}

// relAttr is one (relation, attribute) pair.
type relAttr struct {
	rel, attr string
}

// textAttrIndex is the inverted full-text index of one text attribute:
// the sorted stemmed token vocabulary with, per token, the sorted distinct
// values containing it. Prefix queries become a binary search over tokens
// instead of a scan of the whole token map.
type textAttrIndex struct {
	rel, attr         string
	relStem, attrStem string
	tokens            []string
	postings          [][]string
}

// numAttrIndex holds the sorted distinct values of one numeric attribute,
// so "does any row satisfy attr op n" is answered from the extremes and a
// binary search rather than a row scan.
type numAttrIndex struct {
	rel, attr string
	values    []float64
}

// buildCandidateIndex constructs the index from a populated database.
func buildCandidateIndex(database *db.Database) *candidateIndex {
	g := database.Schema()
	ci := &candidateIndex{fromRels: g.Relations()}

	for _, q := range g.QualifiedAttributes() {
		rel, attr, err := splitQualified(q)
		if err != nil || database.IsKeyColumn(rel, attr) {
			continue
		}
		ci.selectAttrs = append(ci.selectAttrs, relAttr{rel, attr})
	}

	sortedRels := g.Relations()
	sort.Strings(sortedRels)
	for _, rn := range sortedRels {
		rel, ok := g.Relation(rn)
		if !ok {
			continue
		}
		t := database.Table(rn)
		relStem := stem.Stem(rn)
		var rows [][]db.Value
		for _, a := range rel.Attributes {
			switch {
			case a.Type == schema.Text:
				ci.textAttrs = append(ci.textAttrs, buildTextIndex(t, rn, a.Name, relStem))
			case a.Type == schema.Number && !database.IsKeyColumn(rn, a.Name):
				if rows == nil {
					rows = t.Rows()
				}
				ci.numAttrs = append(ci.numAttrs, buildNumIndex(t, rows, rn, a.Name))
			}
		}
	}
	return ci
}

// buildTextIndex reconstructs the per-attribute token→values mapping the
// table builds at insert time, as sorted parallel slices.
func buildTextIndex(t *db.Table, rel, attr, relStem string) textAttrIndex {
	byToken := make(map[string]map[string]bool)
	for _, v := range t.DistinctValues(attr) {
		for _, tok := range db.Tokenize(v) {
			s := stem.Stem(tok)
			set := byToken[s]
			if set == nil {
				set = make(map[string]bool)
				byToken[s] = set
			}
			set[v] = true
		}
	}
	idx := textAttrIndex{rel: rel, attr: attr, relStem: relStem, attrStem: stem.Stem(attr)}
	idx.tokens = make([]string, 0, len(byToken))
	for tok := range byToken {
		idx.tokens = append(idx.tokens, tok)
	}
	sort.Strings(idx.tokens)
	idx.postings = make([][]string, len(idx.tokens))
	for i, tok := range idx.tokens {
		vals := make([]string, 0, len(byToken[tok]))
		for v := range byToken[tok] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		idx.postings[i] = vals
	}
	return idx
}

// buildNumIndex collects the sorted distinct values of a numeric column.
func buildNumIndex(t *db.Table, rows [][]db.Value, rel, attr string) numAttrIndex {
	ci := t.ColumnIndex(attr)
	seen := make(map[float64]bool)
	var vals []float64
	for _, row := range rows {
		if n := row[ci].N; !seen[n] {
			seen[n] = true
			vals = append(vals, n)
		}
	}
	sort.Float64s(vals)
	return numAttrIndex{rel: rel, attr: attr, values: vals}
}

// findTextAttrs is the indexed equivalent of db.Database.FindTextAttrs:
// boolean-mode "+tok*" AND semantics over every text attribute, dropping
// query stems that exactly match the stemmed relation or attribute name.
func (ci *candidateIndex) findTextAttrs(keyword string) []db.TextMatch {
	rawTokens := db.Tokenize(keyword)
	if len(rawTokens) == 0 {
		return nil
	}
	stems := make([]string, len(rawTokens))
	for i, tok := range rawTokens {
		stems[i] = stem.Stem(tok)
	}
	var out []db.TextMatch
	for i := range ci.textAttrs {
		ta := &ci.textAttrs[i]
		query := stems[:0:0]
		for _, s := range stems {
			if s == ta.relStem || s == ta.attrStem {
				continue
			}
			query = append(query, s)
		}
		if len(query) == 0 {
			continue
		}
		if vals := ta.matchAll(query); len(vals) > 0 {
			out = append(out, db.TextMatch{Relation: ta.rel, Attribute: ta.attr, Values: vals})
		}
	}
	return out
}

// matchAll intersects, across query stems, the union of postings of tokens
// having the stem as a prefix. Results are sorted, matching Table.MatchAll.
func (ta *textAttrIndex) matchAll(queryStems []string) []string {
	var result map[string]bool
	for _, qs := range queryStems {
		lo := sort.SearchStrings(ta.tokens, qs)
		matched := make(map[string]bool)
		for i := lo; i < len(ta.tokens) && strings.HasPrefix(ta.tokens[i], qs); i++ {
			for _, v := range ta.postings[i] {
				matched[v] = true
			}
		}
		if result == nil {
			result = matched
		} else {
			for v := range result {
				if !matched[v] {
					delete(result, v)
				}
			}
		}
		if len(result) == 0 {
			return nil
		}
	}
	out := make([]string, 0, len(result))
	for v := range result {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// findNumericAttrs is the indexed equivalent of db.Database.FindNumericAttrs.
func (ci *candidateIndex) findNumericAttrs(n float64, op string) []db.NumericMatch {
	if op == "" {
		op = "="
	}
	var out []db.NumericMatch
	for i := range ci.numAttrs {
		na := &ci.numAttrs[i]
		if na.anyMatch(op, n) {
			out = append(out, db.NumericMatch{Relation: na.rel, Attribute: na.attr})
		}
	}
	return out
}

// anyMatch reports whether any stored value v satisfies "v op n". Unknown
// operators (including LIKE against numbers) match nothing, like the scan
// path's per-row Compare errors.
func (na *numAttrIndex) anyMatch(op string, n float64) bool {
	vals := na.values
	if len(vals) == 0 {
		return false
	}
	switch op {
	case "=":
		i := sort.SearchFloat64s(vals, n)
		return i < len(vals) && vals[i] == n
	case "!=":
		return len(vals) > 1 || vals[0] != n
	case "<":
		return vals[0] < n
	case "<=":
		return vals[0] <= n
	case ">":
		return vals[len(vals)-1] > n
	case ">=":
		return vals[len(vals)-1] >= n
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Bounded, concurrency-safe memo cache for embedding similarities.

// simCacheShards spreads lock contention across independent shards.
const simCacheShards = 16

// simKey is an unordered phrase pair; Model.Similarity is symmetric, so one
// entry serves both argument orders.
type simKey struct{ a, b string }

func makeSimKey(a, b string) simKey {
	if b < a {
		a, b = b, a
	}
	return simKey{a, b}
}

// simCache memoizes Model.Similarity results with a two-generation
// (current/previous) eviction scheme: when the current generation of a
// shard fills up it becomes the previous generation and a fresh map starts;
// entries hit in the previous generation are promoted. Memory is therefore
// bounded at roughly 2 × perShard × simCacheShards entries while hot pairs
// survive rotation indefinitely.
type simCache struct {
	perShard int
	shards   [simCacheShards]simShard
}

type simShard struct {
	mu        sync.Mutex
	cur, prev map[simKey]float64
}

func newSimCache(capacity int) *simCache {
	per := capacity / simCacheShards
	if per < 64 {
		per = 64
	}
	c := &simCache{perShard: per}
	for i := range c.shards {
		c.shards[i].cur = make(map[simKey]float64)
	}
	return c
}

func (c *simCache) shard(k simKey) *simShard {
	const prime = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(k.a); i++ {
		h = (h ^ uint32(k.a[i])) * prime
	}
	for i := 0; i < len(k.b); i++ {
		h = (h ^ uint32(k.b[i])) * prime
	}
	return &c.shards[h%simCacheShards]
}

func (c *simCache) get(k simKey) (float64, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.cur[k]; ok {
		return v, true
	}
	if v, ok := s.prev[k]; ok {
		s.promote(c.perShard, k, v)
		return v, true
	}
	return 0, false
}

func (c *simCache) put(k simKey, v float64) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promote(c.perShard, k, v)
}

// promote inserts into the current generation, rotating first when full.
// Callers must hold mu.
func (s *simShard) promote(perShard int, k simKey, v float64) {
	if len(s.cur) >= perShard {
		s.prev = s.cur
		s.cur = make(map[simKey]float64, perShard)
	}
	s.cur[k] = v
}
