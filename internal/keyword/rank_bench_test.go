package keyword

import (
	"testing"

	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// Benchmarks for the configuration-ranking hot path: the map-backed QFG
// scoring (DisableSnapshot, the seed path) vs the compiled interned-ID
// snapshot. Run with:
//
//	go test ./internal/keyword -bench 'Rank|MapKeywords' -benchmem

func benchMapper(b *testing.B, disableSnapshot bool) *Mapper {
	graph := paperishLog(b, fragment.NoConstOp)
	return NewMapper(masMini(b), embedding.New(), graph, Options{DisableSnapshot: disableSnapshot})
}

// rankedConfig is a configuration with three QFG-participating fragments
// (three Dice pairs), the shape Translate ranks thousands of times.
func rankedConfig() Configuration {
	return Configuration{Mappings: []Mapping{
		{Kind: KindAttr, Rel: "publication", Attr: "title", Sim: 0.8},
		{Kind: KindPred, Rel: "journal", Attr: "name", Op: "=", Sim: 0.7,
			Value: sqlparse.Value{Kind: sqlparse.StringVal, S: "TMC"}},
		{Kind: KindPred, Rel: "publication", Attr: "year", Op: ">", Sim: 0.6,
			Value: sqlparse.Value{Kind: sqlparse.NumberVal, N: 2003}},
	}}
}

// benchmarkDiceScoring isolates the Dice scoring path of configuration
// ranking: ScoreQFG for one three-fragment configuration.
func BenchmarkRankDiceScoringMap(b *testing.B) {
	m := benchMapper(b, true)
	cfg := rankedConfig()
	var scratch []fragment.Fragment
	m.scoreQFGMap(&cfg, &scratch, m.opts) // warm the scratch buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.scoreQFGMap(&cfg, &scratch, m.opts)
	}
}

func BenchmarkRankDiceScoringSnapshot(b *testing.B) {
	m := benchMapper(b, false)
	cfg := rankedConfig()
	snap := m.src.CurrentSnapshot()
	ob := snap.Obscurity()
	ids := make([]candID, len(cfg.Mappings))
	for i, mp := range cfg.Mappings {
		ids[i] = candID{id: snap.Lookup(mp.Fragment(ob)), use: true}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.scoreQFGSnapshot(&cfg, snap, ids)
	}
}

// benchmarkMapKeywords measures the whole MAPKEYWORDS call (retrieval,
// similarity, enumeration, ranking) under each QFG scoring path.
func benchmarkMapKeywordsRanking(b *testing.B, disableSnapshot bool) {
	m := benchMapper(b, disableSnapshot)
	kws := []Keyword{
		{Text: "papers", Meta: Metadata{Context: fragment.Select}},
		{Text: "TMC", Meta: Metadata{Context: fragment.Where}},
		{Text: "2000", Meta: Metadata{Context: fragment.Where, Op: ">"}},
	}
	if _, err := m.MapKeywords(kws); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MapKeywords(kws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapKeywordsRankingMapQFG(b *testing.B) { benchmarkMapKeywordsRanking(b, true) }

func BenchmarkMapKeywordsRankingSnapshotQFG(b *testing.B) { benchmarkMapKeywordsRanking(b, false) }
