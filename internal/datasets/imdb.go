package datasets

import (
	"fmt"

	"templar/internal/db"
	"templar/internal/fragment"
	"templar/internal/keyword"
)

// IMDB builds the movie benchmark with the Table II shape (16 relations,
// 65 attributes, 20 FK-PK edges) and a 128-task workload.
//
// Two structural ambiguities drive the evaluation: movie reaches genre via
// classification OR via its series (equal length), and reaches company via
// copyright OR via its series (equal length) — uniform weights tie, the log
// breaks the tie.
func IMDB() *Dataset {
	b := newSchemaBuilder()
	b.rel("actor", pk("aid"), text("name"), text("gender"), num("birth_year"), text("birth_city"), text("nationality"))
	b.rel("movie", pk("mid"), text("title"), num("release_year"), num("rating"), num("budget"), num("gross"), num("runtime"), text("mpaa_rating"), num("sid"))
	b.rel("tv_series", pk("sid"), text("title"), num("release_year"), num("end_year"), num("num_of_seasons"), num("num_of_episodes"), num("rating"), num("cid"), num("gid"))
	b.rel("director", pk("did"), text("name"), num("birth_year"), text("nationality"), num("cid"))
	b.rel("producer", pk("pid"), text("name"), num("birth_year"), text("nationality"), num("cid"))
	b.rel("writer", pk("wid"), text("name"), num("birth_year"), text("nationality"), num("cid"))
	b.rel("company", pk("cid"), text("name"), text("country"), num("founded_year"))
	b.rel("genre", pk("gid"), text("genre"), text("description"))
	b.rel("keyword", pk("kid"), text("keyword"), num("popularity"))
	b.rel("cast", num("aid"), num("msid"), text("role"), num("credit_order"))
	b.rel("directed_by", num("did"), num("msid"))
	b.rel("made_by", num("pid"), num("msid"))
	b.rel("written_by", num("wid"), num("msid"))
	b.rel("classification", num("gid"), num("msid"))
	b.rel("tags", num("kid"), num("msid"))
	b.rel("copyright", num("cid"), num("msid"))

	b.fk("movie", "sid", "tv_series", "sid")
	b.fk("tv_series", "cid", "company", "cid")
	b.fk("tv_series", "gid", "genre", "gid")
	b.fk("director", "cid", "company", "cid")
	b.fk("producer", "cid", "company", "cid")
	b.fk("writer", "cid", "company", "cid")
	b.fk("cast", "aid", "actor", "aid")
	b.fk("cast", "msid", "movie", "mid")
	b.fk("directed_by", "did", "director", "did")
	b.fk("directed_by", "msid", "movie", "mid")
	b.fk("made_by", "pid", "producer", "pid")
	b.fk("made_by", "msid", "movie", "mid")
	b.fk("written_by", "wid", "writer", "wid")
	b.fk("written_by", "msid", "movie", "mid")
	b.fk("classification", "gid", "genre", "gid")
	b.fk("classification", "msid", "movie", "mid")
	b.fk("tags", "kid", "keyword", "kid")
	b.fk("tags", "msid", "movie", "mid")
	b.fk("copyright", "cid", "company", "cid")
	b.fk("copyright", "msid", "movie", "mid")
	g := b.build()

	d := db.New(g)
	r := newRNG(0x494D4442) // "IMDB"
	pools := populateIMDB(d, r)
	tasks := imdbTasks(pools)
	return &Dataset{Name: "IMDB", SizeGB: 1.3, DB: d, Tasks: tasks.tasks}
}

type imdbPools struct {
	movies    []string
	actors    []string
	directors []string
	genres    []string
	companies []string
}

func populateIMDB(d *db.Database, r *rng) imdbPools {
	var p imdbPools
	p.genres = []string{
		"Film Noir", "Space Opera", "Courtroom Drama", "Heist Caper",
		"Psychological Thriller", "Road Adventure", "Coming of Age",
		"Political Satire", "Survival Epic", "Gothic Horror",
		"Screwball Comedy", "Sports Underdog", "Spy Intrigue", "Western Frontier",
	}
	for i, gname := range p.genres {
		d.MustInsert("genre", []db.Value{
			db.Num(float64(i + 1)), db.Str(gname), db.Str("Stories in the " + gname + " tradition."),
		})
	}
	p.companies = []string{
		"Meridian Pictures", "Larkspur Studios", "Quarry Gate Films",
		"Harborline Media", "Vantage Reel Works", "Bluewater Stagecraft",
		"Ironwood Features", "Northlight Cinema", "Foxglove Productions",
		"Crescent Frame House", "Saltmarsh Screenworks", "Gilded Lantern Films",
	}
	countries := []string{"United States", "United Kingdom", "Canada", "France", "Germany", "Japan"}
	for i, c := range p.companies {
		d.MustInsert("company", []db.Value{
			db.Num(float64(i + 1)), db.Str(c), db.Str(countries[r.intn(len(countries))]),
			db.Num(float64(1920 + r.intn(80))),
		})
	}
	seriesTitles := []string{
		"Harborview Nights", "The Cartographers", "Ashfall County",
		"Signal and Static", "The Long Meridian", "Paper Lanterns",
		"Quarter Moon Diner", "The Archivists", "Redline Dispatch", "Winter Palace Road",
	}
	for i, s := range seriesTitles {
		d.MustInsert("tv_series", []db.Value{
			db.Num(float64(i + 1)), db.Str(s),
			db.Num(float64(1990 + r.intn(25))), db.Num(float64(1995 + r.intn(21))),
			db.Num(float64(r.intn(9) + 1)), db.Num(float64(10 + r.intn(150))),
			db.Num(float64(40+r.intn(60)) / 10),
			db.Num(float64(r.intn(len(p.companies)) + 1)), db.Num(float64(r.intn(len(p.genres)) + 1)),
		})
	}
	movieHeads := []string{
		"The Silent", "A Distant", "The Last", "Beneath the", "Beyond the",
		"The Crimson", "An Uncommon", "The Forgotten", "Chasing the", "The Eleventh",
	}
	movieTails := []string{
		"Harvest", "Orchard", "Lighthouse", "Overture", "Crossing", "Meridian",
		"Labyrinth", "Regatta", "Monsoon", "Aqueduct", "Gambit", "Parallel",
		"Sonata", "Expedition", "Reckoning", "Carousel",
	}
	mpaa := []string{"G", "PG", "PG-13", "R"}
	for i := 0; i < 140; i++ {
		// head × tail is unique for 140 rows and digit-free (titles used
		// as keywords must not trigger the numeric branch).
		title := movieHeads[i%len(movieHeads)] + " " + movieTails[(i/len(movieHeads))%len(movieTails)]
		p.movies = append(p.movies, title)
		d.MustInsert("movie", []db.Value{
			db.Num(float64(i + 1)), db.Str(title),
			db.Num(float64(1975 + r.intn(41))),
			db.Num(float64(30+r.intn(70)) / 10),
			db.Num(float64(1000000 * (1 + r.intn(200)))),
			db.Num(float64(1000000 * (1 + r.intn(900)))),
			db.Num(float64(80 + r.intn(100))),
			db.Str(mpaa[r.intn(len(mpaa))]),
			db.Num(float64(r.intn(len(seriesTitles)) + 1)),
		})
	}
	actorFirst := []string{
		"Rosalind", "Caspian", "Imogen", "Thaddeus", "Seraphina", "Barnaby",
		"Ottilie", "Leopold", "Clementine", "Ignatius", "Wilhelmina", "Percival",
		"Henrietta", "Montgomery", "Araminta", "Bartholomew",
	}
	actorLast := []string{
		"Ashcombe", "Beaumont", "Carrow", "Davenport", "Everhart", "Fenwick",
		"Glenister", "Hargreaves", "Illingworth", "Jessop", "Kensington", "Lytton",
	}
	for i := 0; i < 90; i++ {
		name := actorFirst[i%len(actorFirst)] + " " + actorLast[(i/len(actorFirst)+i)%len(actorLast)]
		p.actors = append(p.actors, name)
		gender := "female"
		if i%2 == 1 {
			gender = "male"
		}
		d.MustInsert("actor", []db.Value{
			db.Num(float64(i + 1)), db.Str(name), db.Str(gender),
			db.Num(float64(1930 + r.intn(65))), db.Str("Springfield"), db.Str(countries[r.intn(len(countries))]),
		})
	}
	directorLast := []string{
		"Maresca", "Oyelowo", "Brandt", "Castellano", "Duval", "Eriksen",
		"Fontaine", "Giordano", "Havel", "Iwata", "Janssen", "Kovacs",
		"Laurent", "Moravec", "Nakagawa", "Oliveira", "Paquette", "Quispe",
	}
	for i := 0; i < 36; i++ {
		name := actorFirst[(i*3)%len(actorFirst)] + " " + directorLast[i%len(directorLast)]
		p.directors = append(p.directors, name)
		d.MustInsert("director", []db.Value{
			db.Num(float64(i + 1)), db.Str(name),
			db.Num(float64(1930 + r.intn(60))), db.Str(countries[r.intn(len(countries))]),
			db.Num(float64(r.intn(len(p.companies)) + 1)),
		})
	}
	for i := 0; i < 24; i++ {
		d.MustInsert("producer", []db.Value{
			db.Num(float64(i + 1)), db.Str("Producer " + directorLast[i%len(directorLast)] + fmt.Sprint(i)),
			db.Num(float64(1930 + r.intn(60))), db.Str(countries[r.intn(len(countries))]),
			db.Num(float64(r.intn(len(p.companies)) + 1)),
		})
		d.MustInsert("writer", []db.Value{
			db.Num(float64(i + 1)), db.Str("Writer " + actorLast[i%len(actorLast)] + fmt.Sprint(i)),
			db.Num(float64(1930 + r.intn(60))), db.Str(countries[r.intn(len(countries))]),
			db.Num(float64(r.intn(len(p.companies)) + 1)),
		})
	}
	tagWords := []string{
		"time travel", "double identity", "lost letter", "night train",
		"underwater city", "chess duel", "desert rescue", "radio silence",
		"glass bridge", "masked ball", "forged painting", "final broadcast",
	}
	for i, k := range tagWords {
		d.MustInsert("keyword", []db.Value{db.Num(float64(i + 1)), db.Str(k), db.Num(float64(r.intn(100)))})
	}
	roles := []string{"lead", "support", "cameo", "narrator"}
	for i := 0; i < 320; i++ {
		d.MustInsert("cast", []db.Value{
			db.Num(float64(r.intn(90) + 1)), db.Num(float64(r.intn(140) + 1)),
			db.Str(roles[r.intn(len(roles))]), db.Num(float64(r.intn(12) + 1)),
		})
	}
	for i := 0; i < 150; i++ {
		d.MustInsert("directed_by", []db.Value{db.Num(float64(r.intn(36) + 1)), db.Num(float64(r.intn(140) + 1))})
	}
	for i := 0; i < 120; i++ {
		d.MustInsert("made_by", []db.Value{db.Num(float64(r.intn(24) + 1)), db.Num(float64(r.intn(140) + 1))})
		d.MustInsert("written_by", []db.Value{db.Num(float64(r.intn(24) + 1)), db.Num(float64(r.intn(140) + 1))})
	}
	for i := 0; i < 160; i++ {
		d.MustInsert("classification", []db.Value{db.Num(float64(r.intn(len(p.genres)) + 1)), db.Num(float64(r.intn(140) + 1))})
	}
	for i := 0; i < 140; i++ {
		d.MustInsert("tags", []db.Value{db.Num(float64(r.intn(len(tagWords)) + 1)), db.Num(float64(r.intn(140) + 1))})
		d.MustInsert("copyright", []db.Value{db.Num(float64(r.intn(len(p.companies)) + 1)), db.Num(float64(r.intn(140) + 1))})
	}
	return p
}

func imdbTasks(p imdbPools) *taskBuilder {
	tb := newTaskBuilder("imdb")

	// I1 moviesByActor (20).
	for i := 0; i < 20; i++ {
		v := p.actors[i%len(p.actors)]
		gold := fmt.Sprintf("SELECT m.title FROM movie m, cast c, actor a WHERE a.name = '%s' AND c.aid = a.aid AND c.msid = m.mid", sqlQuote(v))
		tb.add("moviesByActor",
			fmt.Sprintf("Find films starring %s", v),
			[]keyword.Keyword{kwSelect("films"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("movie.title"), fragPredStr("actor.name", "=", v)},
			false)
	}

	// I2 moviesByDirector (18).
	for i := 0; i < 18; i++ {
		v := p.directors[i%len(p.directors)]
		gold := fmt.Sprintf("SELECT m.title FROM movie m, directed_by x, director d WHERE d.name = '%s' AND x.did = d.did AND x.msid = m.mid", sqlQuote(v))
		tb.add("moviesByDirector",
			fmt.Sprintf("Show movies directed by %s", v),
			[]keyword.Keyword{kwSelect("movies"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("movie.title"), fragPredStr("director.name", "=", v)},
			false)
	}

	// I3 moviesInGenre (20): equal-length tie — classification vs the
	// series shortcut (movie.sid → tv_series.gid → genre).
	for i := 0; i < 20; i++ {
		v := p.genres[i%len(p.genres)]
		if i < 10 {
			v = p.genres[i%4] // hot genres: value skew gives Full obscurity its gains
		}
		gold := fmt.Sprintf("SELECT m.title FROM movie m, classification x, genre g WHERE g.genre = '%s' AND x.gid = g.gid AND x.msid = m.mid", sqlQuote(v))
		tb.add("moviesInGenre",
			fmt.Sprintf("Find %s films", v),
			[]keyword.Keyword{kwSelect("films"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("movie.title"), fragPredStr("genre.genre", "=", v)},
			false)
	}

	// I4 moviesOfCompany (15): equal-length tie — copyright vs the series
	// shortcut (movie.sid → tv_series.cid → company).
	for i := 0; i < 15; i++ {
		v := p.companies[i%len(p.companies)]
		gold := fmt.Sprintf("SELECT m.title FROM movie m, copyright x, company c WHERE c.name = '%s' AND x.cid = c.cid AND x.msid = m.mid", sqlQuote(v))
		tb.add("moviesOfCompany",
			fmt.Sprintf("List films released by %s", v),
			[]keyword.Keyword{kwSelect("films"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("movie.title"), fragPredStr("company.name", "=", v)},
			false)
	}

	// I5 moviesAfterYear (15): numeric ambiguity across release_year,
	// end_year, birth_year, founded_year.
	for i := 0; i < 15; i++ {
		y := 1982 + (i*5)%28
		gold := fmt.Sprintf("SELECT m.title FROM movie m WHERE m.release_year > %d", y)
		tb.add("moviesAfterYear",
			fmt.Sprintf("Find films released after %d", y),
			[]keyword.Keyword{kwSelect("films"), kwWhereOp(fmt.Sprintf("after %d", y), ">")},
			gold,
			[]fragment.Fragment{fragAttr("movie.title"), fragPredNum("movie.release_year", ">", float64(y))},
			false)
	}

	// I6 actorsInMovie (15).
	for i := 0; i < 15; i++ {
		v := p.movies[(i*7+3)%len(p.movies)]
		gold := fmt.Sprintf("SELECT a.name FROM actor a, cast c, movie m WHERE m.title = '%s' AND c.aid = a.aid AND c.msid = m.mid", sqlQuote(v))
		tb.add("actorsInMovie",
			fmt.Sprintf("Who acted in %s", v),
			[]keyword.Keyword{kwSelect("actors"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("actor.name"), fragPredStr("movie.title", "=", v)},
			false)
	}

	// I7 moviesWithTwoActors (12, hazard): self-join through two cast
	// instances.
	for i := 0; i < 12; i++ {
		v1 := p.actors[(2*i)%len(p.actors)]
		v2 := p.actors[(2*i+37)%len(p.actors)]
		gold := fmt.Sprintf("SELECT m.title FROM movie m, cast c1, cast c2, actor a1, actor a2 WHERE a1.name = '%s' AND a2.name = '%s' AND c1.aid = a1.aid AND c1.msid = m.mid AND c2.aid = a2.aid AND c2.msid = m.mid", sqlQuote(v1), sqlQuote(v2))
		tb.add("moviesWithTwoActors",
			fmt.Sprintf("Find films with both %s and %s", v1, v2),
			[]keyword.Keyword{kwSelect("films"), kwWhere(v1), kwWhere(v2)},
			gold,
			[]fragment.Fragment{fragAttr("movie.title"), fragPredStr("actor.name", "=", v1), fragPredStr("actor.name", "=", v2)},
			true)
	}

	// I8 countMoviesByDirector (13, hazard): aggregation.
	for i := 0; i < 13; i++ {
		v := p.directors[(i*2+7)%len(p.directors)]
		gold := fmt.Sprintf("SELECT COUNT(m.title) FROM movie m, directed_by x, director d WHERE d.name = '%s' AND x.did = d.did AND x.msid = m.mid", sqlQuote(v))
		tb.add("countMoviesByDirector",
			fmt.Sprintf("How many movies has %s directed", v),
			[]keyword.Keyword{kwSelectAgg("movies", "COUNT"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAgg("movie.title", "COUNT"), fragPredStr("director.name", "=", v)},
			true)
	}
	return tb
}
