package datasets

import (
	"fmt"

	"templar/internal/db"
	"templar/internal/fragment"
	"templar/internal/keyword"
)

// MAS builds the Microsoft Academic Search benchmark: the Figure 1 schema
// extended to the Table II shape (17 relations, 53 attributes, 19 FK-PK
// edges) and a 194-task workload.
//
// The workload reproduces the paper's running example: "papers" is
// deliberately ambiguous between journal.name and publication.title, and
// the intended publication–domain join path runs through the keyword
// junctions (4 edges), losing to the 3-edge conference/journal paths under
// uniform weights.
func MAS() *Dataset {
	b := newSchemaBuilder()
	b.rel("author", pk("aid"), text("name"), text("homepage"), num("oid"))
	b.rel("organization", pk("oid"), text("name"), text("homepage"), num("continent_id"))
	b.rel("continent", pk("continent_id"), text("name"))
	b.rel("publication", pk("pid"), text("title"), text("abstract"), num("year"), num("citation_num"), num("reference_num"), num("cid"), num("jid"))
	b.rel("journal", pk("jid"), text("name"), text("full_name"), text("homepage"))
	b.rel("conference", pk("cid"), text("name"), text("full_name"), text("homepage"))
	b.rel("conference_instance", pk("ciid"), num("cid"), num("year"), text("location"), num("attendees"))
	b.rel("domain", pk("did"), text("name"))
	b.rel("keyword", pk("kid"), text("keyword"))
	b.rel("award", pk("awid"), text("name"), num("year"), num("prize_amount"))
	b.rel("writes", num("aid"), num("pid"))
	b.rel("cite", num("citing"), num("cited"))
	b.rel("publication_keyword", num("pid"), num("kid"))
	b.rel("author_award", num("aid"), num("awid"))
	b.rel("domain_conference", num("cid"), num("did"))
	b.rel("domain_journal", num("jid"), num("did"))
	b.rel("domain_keyword", num("did"), num("kid"))

	b.fk("author", "oid", "organization", "oid")
	b.fk("organization", "continent_id", "continent", "continent_id")
	b.fk("publication", "cid", "conference", "cid")
	b.fk("publication", "jid", "journal", "jid")
	b.fk("conference_instance", "cid", "conference", "cid")
	b.fk("writes", "aid", "author", "aid")
	b.fk("writes", "pid", "publication", "pid")
	b.fk("cite", "citing", "publication", "pid")
	b.fk("cite", "cited", "publication", "pid")
	b.fk("publication_keyword", "pid", "publication", "pid")
	b.fk("publication_keyword", "kid", "keyword", "kid")
	b.fk("author_award", "aid", "author", "aid")
	b.fk("author_award", "awid", "award", "awid")
	b.fk("domain_conference", "cid", "conference", "cid")
	b.fk("domain_conference", "did", "domain", "did")
	b.fk("domain_journal", "jid", "journal", "jid")
	b.fk("domain_journal", "did", "domain", "did")
	b.fk("domain_keyword", "did", "domain", "did")
	b.fk("domain_keyword", "kid", "keyword", "kid")
	g := b.build()

	d := db.New(g)
	r := newRNG(0x4D5A53) // "MAS"
	pools := populateMAS(d, r)
	tasks := masTasks(pools, r)
	return &Dataset{Name: "MAS", SizeGB: 3.2, DB: d, Tasks: tasks.tasks}
}

// masPools holds the value vocabularies the workload draws from.
type masPools struct {
	authors     []string
	orgs        []string
	domains     []string
	keywords    []string
	journals    []string
	conferences []string
	years       []int
}

func populateMAS(d *db.Database, r *rng) masPools {
	var p masPools
	continents := []string{"North America", "Europe", "Asia", "South America", "Africa", "Oceania"}
	for i, c := range continents {
		d.MustInsert("continent", []db.Value{db.Num(float64(i + 1)), db.Str(c)})
	}
	places := []string{
		"Michigan", "Toronto", "Edinburgh", "Melbourne", "Heidelberg", "Kyoto",
		"Waterloo", "Zurich", "Singapore", "Lund", "Bologna", "Tsinghua",
		"Aarhus", "Princeton", "Leuven", "Coimbra", "Santiago", "Bergen",
		"Ljubljana", "Dresden", "Grenoble", "Uppsala", "Salento", "Tartu",
	}
	for i, pl := range places {
		p.orgs = append(p.orgs, "University of "+pl)
		d.MustInsert("organization", []db.Value{
			db.Num(float64(i + 1)), db.Str("University of " + pl),
			db.Str("http://www." + pl + ".edu"), db.Num(float64(r.intn(len(continents)) + 1)),
		})
	}
	first := []string{
		"Greta", "Marcus", "Yuki", "Priya", "Tomas", "Ingrid", "Rafael", "Mei",
		"Anders", "Sofia", "Dmitri", "Leila", "Hugo", "Nadia", "Viktor", "Carmen",
		"Oskar", "Amara", "Felix", "Zara",
	}
	last := []string{
		"Lindqvist", "Okafor", "Tanaka", "Novak", "Bergmann", "Castillo",
		"Ivanova", "Moreau", "Petrov", "Silva", "Haugen", "Kowalski",
		"Rossi", "Vargas", "Nilsen", "Dubois",
	}
	for i := 0; i < 80; i++ {
		name := first[i%len(first)] + " " + last[(i/len(first)+i)%len(last)]
		p.authors = append(p.authors, name)
		d.MustInsert("author", []db.Value{
			db.Num(float64(i + 1)), db.Str(name),
			db.Str(fmt.Sprintf("http://people.example/%d", i+1)),
			db.Num(float64(r.intn(len(places)) + 1)),
		})
	}
	p.domains = []string{
		"Databases", "Machine Learning", "Computer Vision", "Operating Systems",
		"Computer Networks", "Information Retrieval", "Software Engineering",
		"Computer Graphics", "Theory of Computation", "Computational Biology",
		"Computer Security", "Distributed Computing", "Natural Language Processing",
		"Human Computer Interaction", "Programming Languages", "Data Mining",
		"Computer Architecture", "Robotics", "Embedded Systems", "Quantum Computing",
		"Formal Verification", "Compiler Construction", "Wireless Communication",
		"Cloud Computing", "Game Theory", "Cryptography", "Knowledge Representation",
		"Parallel Computing", "Signal Processing", "Multimedia Systems",
		"Recommender Systems", "Semantic Web", "Social Computing",
		"Spatial Computing", "Ubiquitous Computing", "Visual Analytics",
	}
	for i, dm := range p.domains {
		d.MustInsert("domain", []db.Value{db.Num(float64(i + 1)), db.Str(dm)})
	}
	p.keywords = []string{
		"query optimization", "index tuning", "concurrency control", "crash recovery",
		"skyline evaluation", "cardinality estimation", "schema matching", "entity resolution",
		"stream joining", "graph traversal", "lock escalation", "buffer eviction",
		"cost modeling", "plan caching", "histogram maintenance", "view materialization",
		"transaction batching", "log shipping", "partition pruning", "vectorized execution",
		"adaptive sampling", "workload forecasting", "latch contention", "checkpoint tuning",
		"replica placement", "quorum voting", "gossip dissemination", "failure detection",
		"sketch summarization", "bloom filtering", "trie compaction", "suffix indexing",
		"hash partitioning", "range scanning", "bitmap encoding", "delta compression",
		"write amplification", "read repair", "snapshot isolation", "version pruning",
	}
	for i, k := range p.keywords {
		d.MustInsert("keyword", []db.Value{db.Num(float64(i + 1)), db.Str(k)})
	}
	p.journals = []string{
		"TKDE", "TMC", "TODS", "VLDBJ", "TOIS", "TOCS", "TOPLAS", "TOSEM",
		"TISSEC", "TWEB", "TALG", "TECS", "TOMM", "TIST", "TKDD", "TSLP",
		"TACO", "TRETS", "TOCE", "TIOT",
	}
	for i, j := range p.journals {
		d.MustInsert("journal", []db.Value{
			db.Num(float64(i + 1)), db.Str(j),
			db.Str("Transactions Series " + fmt.Sprint(i+1)),
			db.Str("http://journals.example/" + j),
		})
	}
	p.conferences = []string{
		"VLDB", "SIGMOD", "ICDE", "EDBT", "CIDR", "PODS", "KDD", "WSDM",
		"NeurIPS", "ICML", "ACL", "EMNLP", "OSDI", "SOSP", "NSDI", "EuroSys",
		"PLDI", "POPL", "CAV", "CCS",
	}
	for i, c := range p.conferences {
		d.MustInsert("conference", []db.Value{
			db.Num(float64(i + 1)), db.Str(c),
			db.Str("International Meeting Series " + fmt.Sprint(i+1)),
			db.Str("http://conf.example/" + c),
		})
		d.MustInsert("conference_instance", []db.Value{
			db.Num(float64(i + 1)), db.Num(float64(i + 1)),
			db.Num(float64(1995 + r.intn(20))), db.Str(places[r.intn(len(places))]),
			db.Num(float64(100 + r.intn(800))),
		})
	}
	titleHeads := []string{
		"Scalable", "Adaptive", "Incremental", "Robust", "Efficient", "Learned",
		"Approximate", "Distributed", "Secure", "Interactive",
	}
	titleCores := []string{
		"Join Processing", "Index Maintenance", "Query Planning", "Data Cleaning",
		"Schema Evolution", "Transaction Scheduling", "Graph Summarization",
		"Stream Aggregation", "Storage Layouts", "Provenance Tracking",
		"Workload Replay", "Cache Admission", "Sampling Strategies", "Log Analysis",
		"Sharding Policies",
	}
	for i := 0; i < 150; i++ {
		year := 1990 + r.intn(26)
		// head × core is unique for 150 rows; no digits, so a title used
		// as a keyword never trips the numeric-predicate branch.
		title := titleHeads[i%len(titleHeads)] + " " + titleCores[(i/len(titleHeads))%len(titleCores)]
		d.MustInsert("publication", []db.Value{
			db.Num(float64(i + 1)), db.Str(title),
			db.Str("We study " + titleCores[(i/len(titleHeads))%len(titleCores)] + " at scale."),
			db.Num(float64(year)), db.Num(float64(r.intn(3000))), db.Num(float64(r.intn(80))),
			db.Num(float64(r.intn(len(p.conferences)) + 1)), db.Num(float64(r.intn(len(p.journals)) + 1)),
		})
		p.years = append(p.years, year)
	}
	awards := []string{
		"Turing Prize", "Codd Innovations Prize", "Dijkstra Prize", "Kanellakis Prize",
		"Athena Lecturer Prize", "Gray Dissertation Prize", "Hopper Prize",
		"Lovelace Medal", "Shannon Medal", "Hamming Medal", "Wilkes Medal", "Babbage Medal",
	}
	for i, a := range awards {
		d.MustInsert("award", []db.Value{
			db.Num(float64(i + 1)), db.Str(a),
			db.Num(float64(1990 + r.intn(26))), db.Num(float64(500 + r.intn(1400))),
		})
	}
	// Junction rows: random but deterministic links.
	for i := 0; i < 300; i++ {
		d.MustInsert("writes", []db.Value{db.Num(float64(r.intn(80) + 1)), db.Num(float64(r.intn(150) + 1))})
	}
	for i := 0; i < 200; i++ {
		d.MustInsert("cite", []db.Value{db.Num(float64(r.intn(150) + 1)), db.Num(float64(r.intn(150) + 1))})
	}
	for i := 0; i < 250; i++ {
		d.MustInsert("publication_keyword", []db.Value{db.Num(float64(r.intn(150) + 1)), db.Num(float64(r.intn(len(p.keywords)) + 1))})
	}
	for i := 0; i < 30; i++ {
		d.MustInsert("author_award", []db.Value{db.Num(float64(r.intn(80) + 1)), db.Num(float64(r.intn(len(awards)) + 1))})
	}
	for i := 0; i < 40; i++ {
		d.MustInsert("domain_conference", []db.Value{db.Num(float64(r.intn(len(p.conferences)) + 1)), db.Num(float64(r.intn(len(p.domains)) + 1))})
		d.MustInsert("domain_journal", []db.Value{db.Num(float64(r.intn(len(p.journals)) + 1)), db.Num(float64(r.intn(len(p.domains)) + 1))})
	}
	for i := 0; i < 60; i++ {
		d.MustInsert("domain_keyword", []db.Value{db.Num(float64(r.intn(len(p.domains)) + 1)), db.Num(float64(r.intn(len(p.keywords)) + 1))})
	}
	return p
}

// masTasks generates the 194-task workload.
func masTasks(p masPools, r *rng) *taskBuilder {
	tb := newTaskBuilder("mas")

	// T1 papersInDomain (30): the running example. Gold path goes through
	// the keyword junctions; keyword "papers" is the journal/publication
	// ambiguity. Half the tasks hit a hot set of five domains — real
	// query logs are value-skewed, which is what gives the Full obscurity
	// level its (smaller) gains.
	for i := 0; i < 30; i++ {
		v := p.domains[i%len(p.domains)]
		if i < 15 {
			v = p.domains[i%3]
		}
		gold := fmt.Sprintf("SELECT p.title FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d WHERE d.name = '%s' AND pk.pid = p.pid AND pk.kid = k.kid AND dk.kid = k.kid AND dk.did = d.did", sqlQuote(v))
		tb.add("papersInDomain",
			fmt.Sprintf("Find papers in the %s domain", v),
			[]keyword.Keyword{kwSelect("papers"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("publication.title"), fragPredStr("domain.name", "=", v)},
			false)
	}

	// T2 papersAfterYear (33): numeric predicate with attribute ambiguity
	// (publication.year vs citation_num vs award.year vs
	// conference_instance.year all satisfy "> Y").
	for i := 0; i < 33; i++ {
		y := 1992 + (i*7)%18
		gold := fmt.Sprintf("SELECT p.title FROM publication p WHERE p.year > %d", y)
		tb.add("papersAfterYear",
			fmt.Sprintf("Return the papers after %d", y),
			[]keyword.Keyword{kwSelect("papers"), kwWhereOp(fmt.Sprintf("after %d", y), ">")},
			gold,
			[]fragment.Fragment{fragAttr("publication.title"), fragPredNum("publication.year", ">", float64(y))},
			false)
	}

	// T3 papersInJournal (20): direct join publication–journal.
	for i := 0; i < 20; i++ {
		v := p.journals[i%len(p.journals)]
		gold := fmt.Sprintf("SELECT p.title FROM publication p, journal j WHERE j.name = '%s' AND p.jid = j.jid", sqlQuote(v))
		tb.add("papersInJournal",
			fmt.Sprintf("Show publications in %s", v),
			[]keyword.Keyword{kwSelect("publications"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("publication.title"), fragPredStr("journal.name", "=", v)},
			false)
	}

	// T4 papersInConference (20): direct join publication–conference.
	for i := 0; i < 20; i++ {
		v := p.conferences[i%len(p.conferences)]
		gold := fmt.Sprintf("SELECT p.title FROM publication p, conference c WHERE c.name = '%s' AND p.cid = c.cid", sqlQuote(v))
		tb.add("papersInConference",
			fmt.Sprintf("Show articles appearing in %s", v),
			[]keyword.Keyword{kwSelect("articles"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("publication.title"), fragPredStr("conference.name", "=", v)},
			false)
	}

	// T5 authorsOfOrg (20).
	for i := 0; i < 20; i++ {
		v := p.orgs[i%len(p.orgs)]
		gold := fmt.Sprintf("SELECT a.name FROM author a, organization o WHERE o.name = '%s' AND a.oid = o.oid", sqlQuote(v))
		tb.add("authorsOfOrg",
			fmt.Sprintf("List researchers at the %s", v),
			[]keyword.Keyword{kwSelect("researchers"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("author.name"), fragPredStr("organization.name", "=", v)},
			false)
	}

	// T6 countPapersByAuthor (20, hazard): aggregation; NaLIR's parser
	// frequently mangles these (§VII-C).
	for i := 0; i < 20; i++ {
		v := p.authors[i%len(p.authors)]
		gold := fmt.Sprintf("SELECT COUNT(p.title) FROM publication p, writes w, author a WHERE a.name = '%s' AND w.aid = a.aid AND w.pid = p.pid", sqlQuote(v))
		tb.add("countPapersByAuthor",
			fmt.Sprintf("How many papers does %s have", v),
			[]keyword.Keyword{kwSelectAgg("papers", "COUNT"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAgg("publication.title", "COUNT"), fragPredStr("author.name", "=", v)},
			true)
	}

	// T7 papersOnKeyword (20).
	for i := 0; i < 20; i++ {
		v := p.keywords[i%len(p.keywords)]
		gold := fmt.Sprintf("SELECT p.title FROM publication p, publication_keyword pk, keyword k WHERE k.keyword = '%s' AND pk.pid = p.pid AND pk.kid = k.kid", sqlQuote(v))
		tb.add("papersOnKeyword",
			fmt.Sprintf("Find paper titles about %s", v),
			[]keyword.Keyword{kwSelect("paper titles"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("publication.title"), fragPredStr("keyword.keyword", "=", v)},
			false)
	}

	// T8 papersByTwoAuthors (15, hazard): self-joins (Example 7).
	for i := 0; i < 15; i++ {
		v1 := p.authors[(2*i)%len(p.authors)]
		v2 := p.authors[(2*i+41)%len(p.authors)]
		gold := fmt.Sprintf("SELECT p.title FROM publication p, writes w1, writes w2, author a1, author a2 WHERE a1.name = '%s' AND a2.name = '%s' AND w1.aid = a1.aid AND w1.pid = p.pid AND w2.aid = a2.aid AND w2.pid = p.pid", sqlQuote(v1), sqlQuote(v2))
		tb.add("papersByTwoAuthors",
			fmt.Sprintf("Find papers written by both %s and %s", v1, v2),
			[]keyword.Keyword{kwSelect("papers"), kwWhere(v1), kwWhere(v2)},
			gold,
			[]fragment.Fragment{fragAttr("publication.title"), fragPredStr("author.name", "=", v1), fragPredStr("author.name", "=", v2)},
			true)
	}

	// T9 journalsInDomain (8): keeps journal.name present as a SELECT
	// fragment with domain predicates so the QFG evidence is diluted but
	// not absent.
	for i := 0; i < 8; i++ {
		v := p.domains[(i*3+1)%len(p.domains)]
		gold := fmt.Sprintf("SELECT j.name FROM journal j, domain_journal dj, domain d WHERE d.name = '%s' AND dj.jid = j.jid AND dj.did = d.did", sqlQuote(v))
		tb.add("journalsInDomain",
			fmt.Sprintf("Which journals cover %s", v),
			[]keyword.Keyword{kwSelect("journals"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("journal.name"), fragPredStr("domain.name", "=", v)},
			false)
	}

	// T10 journalsByYear (8): keeps journal.name paired with year
	// predicates in the log (Dice dilution pressure on the T2 flip), while
	// staying rare enough that publication.title keeps the stronger
	// co-occurrence evidence.
	for i := 0; i < 8; i++ {
		y := 1994 + (i*5)%16
		gold := fmt.Sprintf("SELECT j.name FROM journal j, publication p WHERE p.year > %d AND p.jid = j.jid", y)
		tb.add("journalsByYear",
			fmt.Sprintf("Journals with papers after %d", y),
			[]keyword.Keyword{kwSelect("journals"), kwWhereOp(fmt.Sprintf("after %d", y), ">")},
			gold,
			[]fragment.Fragment{fragAttr("journal.name"), fragPredNum("publication.year", ">", float64(y))},
			false)
	}
	return tb
}
