// Package datasets builds the three evaluation benchmarks of the paper's
// §VII-A4 — Microsoft Academic Search (MAS), Yelp and IMDB — as synthetic
// equivalents with the exact Table II schema shape (relations, attributes,
// FK-PK edges) and benchmark sizes (194/127/128 NLQ-SQL tasks).
//
// The original benchmarks' hand-annotated NLQ-SQL pairs and multi-gigabyte
// data dumps are not redistributable; the generators here reproduce the
// *phenomena* the paper measures instead: ambiguous keyword vocabulary
// (papers ≈ journal ≈ publication), intended join paths that lose to
// shorter ones under uniform weights, equal-length join-path ties, numeric
// predicate ambiguity, aggregation, self-joins, and parser-hazard NLQs for
// the NaLIR error model (§VII-C). See DESIGN.md for the substitution notes.
package datasets

import (
	"fmt"
	"strings"

	"templar/internal/db"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/schema"
	"templar/internal/sqlparse"
	"templar/internal/xrand"
)

// Task is one benchmark item: a natural-language query already parsed into
// keywords with metadata (the NLIDB front-end's output, hand-parsed in the
// paper's Pipeline evaluation), the gold SQL translation, and the gold
// keyword→fragment mappings used for KW accuracy.
type Task struct {
	// ID identifies the task within its dataset ("mas/papersInDomain/07").
	ID string
	// NLQ is the original natural-language question.
	NLQ string
	// Keywords are the parsed keywords with metadata.
	Keywords []keyword.Keyword
	// Gold is the gold SQL (aliased text form).
	Gold string
	// GoldCanonical is the alias-free canonical form used for FQ scoring.
	GoldCanonical string
	// GoldFragments holds, per keyword, the gold query fragment at Full
	// obscurity. Relation-context keywords (none in these workloads) would
	// carry a FROM fragment.
	GoldFragments []fragment.Fragment
	// Hazard marks NLQs whose structure trips NaLIR's parser (§VII-C):
	// explicit relation references, aggregation, nested intent.
	Hazard bool
	// Template names the generating template, for per-template diagnostics.
	Template string
}

// Dataset bundles a populated database with its benchmark workload.
type Dataset struct {
	// Name is "MAS", "Yelp" or "IMDB".
	Name string
	// SizeGB is the size the paper reports for the original dump
	// (Table II); retained for table rendering only.
	SizeGB float64
	// DB is the populated in-memory database.
	DB *db.Database
	// Tasks is the benchmark workload.
	Tasks []Task
}

// Stats reports the Table II row for this dataset.
func (d *Dataset) Stats() TableIIRow {
	s := d.DB.Schema().Stats()
	return TableIIRow{
		Dataset:     d.Name,
		SizeGB:      d.SizeGB,
		Relations:   s.Relations,
		Attributes:  s.Attributes,
		ForeignKeys: s.ForeignKeys,
		Queries:     len(d.Tasks),
	}
}

// TableIIRow is one row of the paper's Table II.
type TableIIRow struct {
	Dataset     string
	SizeGB      float64
	Relations   int
	Attributes  int
	ForeignKeys int
	Queries     int
}

// All returns the three benchmarks in the paper's order.
func All() []*Dataset {
	return []*Dataset{MAS(), Yelp(), IMDB()}
}

// ByName builds the benchmark with the given name (case-insensitive),
// reporting false for names that aren't bundled. It is the one dataset
// resolution path shared by the CLI commands and the serving loader.
func ByName(name string) (*Dataset, bool) {
	for _, d := range All() {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Deterministic PRNG (the shared xorshift64* in internal/xrand), so
// datasets are identical on every run and across platforms. The local
// wrapper keeps the generators' call sites terse.

type rng struct{ x *xrand.Rand }

func newRNG(seed uint64) *rng { return &rng{x: xrand.New(seed)} }

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return r.x.Intn(n) }

// rangeInt returns a value in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int { return r.x.RangeInt(lo, hi) }

// ---------------------------------------------------------------------------
// Schema construction helpers.

type schemaBuilder struct {
	g   *schema.Graph
	err error
}

func newSchemaBuilder() *schemaBuilder { return &schemaBuilder{g: schema.NewGraph()} }

func (b *schemaBuilder) rel(name string, attrs ...schema.Attribute) {
	if b.err != nil {
		return
	}
	b.err = b.g.AddRelation(schema.Relation{Name: name, Attributes: attrs})
}

func (b *schemaBuilder) fk(fromRel, fromAttr, toRel, toAttr string) {
	if b.err != nil {
		return
	}
	b.err = b.g.AddForeignKey(schema.ForeignKey{FromRel: fromRel, FromAttr: fromAttr, ToRel: toRel, ToAttr: toAttr})
}

func (b *schemaBuilder) build() *schema.Graph {
	if b.err != nil {
		panic("datasets: schema construction: " + b.err.Error())
	}
	if err := b.g.Validate(); err != nil {
		panic("datasets: schema validation: " + err.Error())
	}
	return b.g
}

func pk(name string) schema.Attribute {
	return schema.Attribute{Name: name, Type: schema.Number, PrimaryKey: true}
}

func num(name string) schema.Attribute {
	return schema.Attribute{Name: name, Type: schema.Number}
}

func text(name string) schema.Attribute {
	return schema.Attribute{Name: name, Type: schema.Text}
}

// ---------------------------------------------------------------------------
// Task construction helpers.

// taskBuilder accumulates tasks and finalizes gold canonical forms.
type taskBuilder struct {
	dataset string
	tasks   []Task
	counts  map[string]int
}

func newTaskBuilder(dataset string) *taskBuilder {
	return &taskBuilder{dataset: dataset, counts: make(map[string]int)}
}

// add registers a task, parsing and canonicalizing the gold SQL. It panics
// on malformed gold SQL — the generators are static code, so this is a
// programming error, not input error.
func (tb *taskBuilder) add(template, nlq string, kws []keyword.Keyword, goldSQL string, goldFrags []fragment.Fragment, hazard bool) {
	if len(kws) != len(goldFrags) {
		panic(fmt.Sprintf("datasets: %s/%s: %d keywords vs %d gold fragments", tb.dataset, template, len(kws), len(goldFrags)))
	}
	q, err := sqlparse.Parse(goldSQL)
	if err != nil {
		panic(fmt.Sprintf("datasets: %s/%s: bad gold SQL %q: %v", tb.dataset, template, goldSQL, err))
	}
	if err := q.Resolve(nil); err != nil {
		panic(fmt.Sprintf("datasets: %s/%s: gold SQL resolve: %v", tb.dataset, template, err))
	}
	n := tb.counts[template]
	tb.counts[template] = n + 1
	tb.tasks = append(tb.tasks, Task{
		ID:            fmt.Sprintf("%s/%s/%02d", tb.dataset, template, n),
		NLQ:           nlq,
		Keywords:      kws,
		Gold:          goldSQL,
		GoldCanonical: q.Canonical(),
		GoldFragments: goldFrags,
		Hazard:        hazard,
		Template:      template,
	})
}

// kw builds a keyword with WHERE context (the default for value keywords).
func kwWhere(text string) keyword.Keyword {
	return keyword.Keyword{Text: text, Meta: keyword.Metadata{Context: fragment.Where}}
}

// kwWhereOp builds a numeric keyword with a comparison operator.
func kwWhereOp(text, op string) keyword.Keyword {
	return keyword.Keyword{Text: text, Meta: keyword.Metadata{Context: fragment.Where, Op: op}}
}

// kwSelect builds a SELECT-context keyword.
func kwSelect(text string) keyword.Keyword {
	return keyword.Keyword{Text: text, Meta: keyword.Metadata{Context: fragment.Select}}
}

// kwSelectAgg builds a SELECT-context keyword with an aggregate.
func kwSelectAgg(text, agg string) keyword.Keyword {
	return keyword.Keyword{Text: text, Meta: keyword.Metadata{Context: fragment.Select, Aggs: []string{agg}}}
}

// Gold fragment shorthands.

func fragAttr(qualified string) fragment.Fragment { return fragment.Attr(qualified, "") }

func fragAgg(qualified, agg string) fragment.Fragment { return fragment.Attr(qualified, agg) }

func fragPredStr(qualified, op, val string) fragment.Fragment {
	return fragment.Pred(qualified, op, sqlparse.Value{Kind: sqlparse.StringVal, S: val}, fragment.Full)
}

func fragPredNum(qualified, op string, val float64) fragment.Fragment {
	return fragment.Pred(qualified, op, sqlparse.Value{Kind: sqlparse.NumberVal, N: val}, fragment.Full)
}

// sqlQuote escapes single quotes for embedding a value in gold SQL text.
func sqlQuote(v string) string {
	out := make([]byte, 0, len(v)+2)
	for i := 0; i < len(v); i++ {
		if v[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, v[i])
	}
	return string(out)
}
