package datasets

import (
	"strings"
	"testing"

	"templar/internal/db"
	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

func TestTableIIShape(t *testing.T) {
	// The schema shape and workload sizes must match the paper's Table II.
	want := []TableIIRow{
		{Dataset: "MAS", SizeGB: 3.2, Relations: 17, Attributes: 53, ForeignKeys: 19, Queries: 194},
		{Dataset: "Yelp", SizeGB: 2.0, Relations: 7, Attributes: 38, ForeignKeys: 7, Queries: 127},
		{Dataset: "IMDB", SizeGB: 1.3, Relations: 16, Attributes: 65, ForeignKeys: 20, Queries: 128},
	}
	for i, ds := range All() {
		got := ds.Stats()
		if got != want[i] {
			t.Errorf("%s: stats = %+v, want %+v", ds.Name, got, want[i])
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := MAS(), MAS()
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("nondeterministic task count")
	}
	for i := range a.Tasks {
		if a.Tasks[i].ID != b.Tasks[i].ID || a.Tasks[i].GoldCanonical != b.Tasks[i].GoldCanonical || a.Tasks[i].NLQ != b.Tasks[i].NLQ {
			t.Fatalf("task %d differs across builds", i)
		}
	}
}

func TestGoldSQLParsesAndResolves(t *testing.T) {
	for _, ds := range All() {
		for _, task := range ds.Tasks {
			q, err := sqlparse.Parse(task.Gold)
			if err != nil {
				t.Fatalf("%s: gold SQL: %v", task.ID, err)
			}
			if err := q.Resolve(nil); err != nil {
				t.Fatalf("%s: gold resolve: %v", task.ID, err)
			}
			if q.Canonical() != task.GoldCanonical {
				t.Fatalf("%s: canonical mismatch", task.ID)
			}
			// Every relation in the gold SQL exists in the schema.
			for _, tr := range q.From {
				if _, ok := ds.DB.Schema().Relation(tr.Name); !ok {
					t.Fatalf("%s: gold references unknown relation %q", task.ID, tr.Name)
				}
			}
		}
	}
}

func TestGoldFragmentsAlignWithKeywords(t *testing.T) {
	for _, ds := range All() {
		for _, task := range ds.Tasks {
			if len(task.Keywords) != len(task.GoldFragments) {
				t.Fatalf("%s: %d keywords vs %d fragments", task.ID, len(task.Keywords), len(task.GoldFragments))
			}
			// Gold fragments must be extractable from the gold SQL.
			q := sqlparse.MustParse(task.Gold)
			if err := q.Resolve(nil); err != nil {
				t.Fatal(err)
			}
			frags := fragment.Extract(q, fragment.Full)
			set := make(map[fragment.Fragment]bool, len(frags))
			for _, f := range frags {
				set[f] = true
			}
			for i, gf := range task.GoldFragments {
				if !set[gf] {
					t.Fatalf("%s: gold fragment %v (keyword %q) not in gold SQL fragments %v",
						task.ID, gf, task.Keywords[i].Text, frags)
				}
			}
		}
	}
}

func TestGoldValuesExistInDatabase(t *testing.T) {
	// Every string predicate value in a gold query must exist as a row
	// value, so the full-text search can find it and score it as exact.
	for _, ds := range All() {
		for _, task := range ds.Tasks {
			q := sqlparse.MustParse(task.Gold)
			if err := q.Resolve(nil); err != nil {
				t.Fatal(err)
			}
			for _, c := range q.Where {
				p, ok := c.(sqlparse.Pred)
				if !ok || p.Value.Kind != sqlparse.StringVal {
					continue
				}
				tab := ds.DB.Table(p.Column.Table)
				if tab == nil {
					t.Fatalf("%s: missing table %q", task.ID, p.Column.Table)
				}
				found := false
				for _, v := range tab.DistinctValues(p.Column.Column) {
					if v == p.Value.S {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: value %q not present in %s.%s", task.ID, p.Value.S, p.Column.Table, p.Column.Column)
				}
			}
		}
	}
}

func TestNumericGoldPredicatesSatisfiable(t *testing.T) {
	// Numeric gold predicates must select at least one row, otherwise the
	// candidate retrieval of Algorithm 2 can never propose them.
	for _, ds := range All() {
		for _, task := range ds.Tasks {
			q := sqlparse.MustParse(task.Gold)
			if err := q.Resolve(nil); err != nil {
				t.Fatal(err)
			}
			for _, c := range q.Where {
				p, ok := c.(sqlparse.Pred)
				if !ok || p.Value.Kind != sqlparse.NumberVal {
					continue
				}
				if !ds.DB.PredicateNonEmpty(p.Column.Table, p.Column.Column, p.Op, db.Num(p.Value.N)) {
					t.Fatalf("%s: gold predicate %v selects no rows", task.ID, p)
				}
			}
		}
	}
}

func TestHazardTasksPresent(t *testing.T) {
	for _, ds := range All() {
		hazards := 0
		for _, task := range ds.Tasks {
			if task.Hazard {
				hazards++
			}
		}
		if hazards == 0 {
			t.Errorf("%s: no hazard tasks for the NaLIR noise model", ds.Name)
		}
		if hazards > len(ds.Tasks)/2 {
			t.Errorf("%s: too many hazard tasks (%d/%d)", ds.Name, hazards, len(ds.Tasks))
		}
	}
}

func TestTaskIDsUnique(t *testing.T) {
	for _, ds := range All() {
		seen := make(map[string]bool)
		for _, task := range ds.Tasks {
			if seen[task.ID] {
				t.Fatalf("%s: duplicate task id %s", ds.Name, task.ID)
			}
			seen[task.ID] = true
		}
	}
}

func TestSelfJoinTemplatesUseDistinctValues(t *testing.T) {
	for _, ds := range All() {
		for _, task := range ds.Tasks {
			if !strings.Contains(task.Template, "Two") {
				continue
			}
			if task.Keywords[1].Text == task.Keywords[2].Text {
				t.Fatalf("%s: self-join task reuses one value %q", task.ID, task.Keywords[1].Text)
			}
		}
	}
}

func TestWorkloadTemplateMix(t *testing.T) {
	// Each dataset must exercise aggregation, numeric predicates and
	// multi-keyword (self-join) tasks.
	for _, ds := range All() {
		var hasAgg, hasNum, hasSelf bool
		for _, task := range ds.Tasks {
			for _, kw := range task.Keywords {
				if len(kw.Meta.Aggs) > 0 {
					hasAgg = true
				}
				if kw.Meta.Op != "" {
					hasNum = true
				}
			}
			if len(task.Keywords) >= 3 {
				hasSelf = true
			}
		}
		if !hasAgg || !hasNum {
			t.Errorf("%s: workload missing aggregation (%v) or numeric (%v) tasks", ds.Name, hasAgg, hasNum)
		}
		if ds.Name != "Yelp" && !hasSelf {
			t.Errorf("%s: workload missing self-join tasks", ds.Name)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.intn(1<<30) != b.intn(1<<30) {
			t.Fatal("rng nondeterministic")
		}
	}
	r := newRNG(0)
	if r.intn(0) != 0 || r.intn(-1) != 0 {
		t.Fatal("intn must tolerate non-positive bounds")
	}
	x := r.rangeInt(5, 9)
	if x < 5 || x > 9 {
		t.Fatalf("rangeInt out of bounds: %d", x)
	}
}

func BenchmarkBuildMAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MAS()
	}
}
