package datasets

import (
	"testing"

	"templar/internal/sqlparse"
	"templar/internal/stem"
)

// TestValueKeywordsMatchExactlyOneValue: every string-valued keyword in the
// workloads must full-text match its gold attribute and score as an exact
// match there, so candidate pruning is deterministic.
func TestValueKeywordsMatchExactlyOneValue(t *testing.T) {
	for _, ds := range All() {
		for _, task := range ds.Tasks {
			q := sqlparse.MustParse(task.Gold)
			if err := q.Resolve(nil); err != nil {
				t.Fatal(err)
			}
			for _, c := range q.Where {
				p, ok := c.(sqlparse.Pred)
				if !ok || p.Value.Kind != sqlparse.StringVal {
					continue
				}
				matches := ds.DB.FindTextAttrs(p.Value.S)
				foundExact := false
				for _, m := range matches {
					if m.Qualified() != p.Column.String() {
						continue
					}
					for _, v := range m.Values {
						if v == p.Value.S {
							foundExact = true
						}
					}
				}
				if !foundExact {
					t.Errorf("%s: keyword value %q does not exact-match %s", task.ID, p.Value.S, p.Column)
				}
			}
		}
	}
}

// TestPoolValuesHaveDistinctStemSets: within each text attribute, no two
// distinct values may stem-collide completely (one being a stem-subset of
// the other at every token), which would make exact-match detection
// ambiguous for the shorter value.
func TestPoolValuesHaveDistinctStemSets(t *testing.T) {
	for _, ds := range All() {
		for _, rel := range ds.DB.Schema().Relations() {
			tab := ds.DB.Table(rel)
			r, _ := ds.DB.Schema().Relation(rel)
			for _, a := range r.Attributes {
				vals := tab.DistinctValues(a.Name)
				seen := make(map[string]string, len(vals))
				for _, v := range vals {
					key := stemKey(v)
					if prev, dup := seen[key]; dup && prev != v {
						t.Errorf("%s: %s.%s values %q and %q share stem set %q",
							ds.Name, rel, a.Name, prev, v, key)
					}
					seen[key] = v
				}
			}
		}
	}
}

func stemKey(v string) string {
	toks := []string{}
	cur := []byte{}
	flush := func() {
		if len(cur) > 0 {
			toks = append(toks, stem.Stem(string(cur)))
			cur = cur[:0]
		}
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			cur = append(cur, c)
		case c >= 'A' && c <= 'Z':
			cur = append(cur, c+'a'-'A')
		default:
			flush()
		}
	}
	flush()
	out := ""
	for _, tk := range toks {
		out += tk + "|"
	}
	return out
}

// TestSelfJoinGoldsHaveTwoInstances ensures every self-join gold query
// really duplicates the relation (guarding the generators against
// regressions that would silently stop exercising FORK).
func TestSelfJoinGoldsHaveTwoInstances(t *testing.T) {
	for _, ds := range All() {
		for _, task := range ds.Tasks {
			if len(task.Keywords) < 3 {
				continue
			}
			q := sqlparse.MustParse(task.Gold)
			counts := map[string]int{}
			for _, f := range q.From {
				counts[f.Name]++
			}
			dup := false
			for _, c := range counts {
				if c >= 2 {
					dup = true
				}
			}
			if !dup {
				t.Errorf("%s: three-keyword task without a self-join gold", task.ID)
			}
		}
	}
}
