package datasets

import (
	"fmt"

	"templar/internal/db"
	"templar/internal/fragment"
	"templar/internal/keyword"
)

// Yelp builds the business-review benchmark with the Table II shape
// (7 relations, 38 attributes, 7 FK-PK edges) and a 127-task workload.
//
// The schema is a star around business; user connects to business through
// two equal-length paths (via review and via tip), so uniform join weights
// tie and the evaluation's LogJoin toggle shows its largest gain here, as
// in Table IV.
func Yelp() *Dataset {
	b := newSchemaBuilder()
	b.rel("business", pk("bid"), text("name"), text("full_address"), text("city"), text("state"),
		num("latitude"), num("longitude"), num("review_count"), num("is_open"), num("rating"))
	b.rel("category", pk("id"), num("business_id"), text("category_name"))
	b.rel("checkin", pk("cid"), num("business_id"), num("count"), text("day"))
	b.rel("neighbourhood", pk("id"), num("business_id"), text("neighbourhood_name"))
	b.rel("review", pk("rid"), num("business_id"), num("user_id"), num("rating"), text("text"), num("year"), num("month"))
	b.rel("tip", pk("tip_id"), num("business_id"), num("user_id"), text("text"), num("likes"), num("year"))
	b.rel("user", pk("uid"), text("name"), num("review_count"), num("fans"), num("average_stars"))

	b.fk("category", "business_id", "business", "bid")
	b.fk("checkin", "business_id", "business", "bid")
	b.fk("neighbourhood", "business_id", "business", "bid")
	b.fk("review", "business_id", "business", "bid")
	b.fk("review", "user_id", "user", "uid")
	b.fk("tip", "business_id", "business", "bid")
	b.fk("tip", "user_id", "user", "uid")
	g := b.build()

	d := db.New(g)
	r := newRNG(0x59454C50) // "YELP"
	pools := populateYelp(d, r)
	tasks := yelpTasks(pools)
	return &Dataset{Name: "Yelp", SizeGB: 2.0, DB: d, Tasks: tasks.tasks}
}

type yelpPools struct {
	businesses []string
	cities     []string
	categories []string
	users      []string
}

func populateYelp(d *db.Database, r *rng) yelpPools {
	var p yelpPools
	p.cities = []string{
		"Phoenix", "Scottsdale", "Tempe", "Mesa", "Chandler", "Glendale",
		"Gilbert", "Peoria", "Surprise", "Avondale", "Goodyear", "Buckeye",
		"Tucson", "Flagstaff", "Prescott", "Yuma", "Sedona", "Kingman",
		"Payson", "Globe",
	}
	states := []string{"AZ", "NV", "CA", "UT", "NM", "CO", "TX", "OR"}
	p.categories = []string{
		"Mexican Food", "Thai Food", "Sushi Bars", "Steakhouses", "Bakeries",
		"Coffee Roasters", "Pizza Kitchens", "Vegan Dining", "Barbecue Pits",
		"Noodle Houses", "Breweries", "Juice Bars", "Delicatessens",
		"Creperies", "Taquerias", "Gastropubs", "Ramen Shops", "Bistros",
	}
	bizHeads := []string{
		"Golden Cactus", "Desert Bloom", "Sunset Mesa", "Copper Canyon",
		"Silver Saguaro", "Painted Rock", "Turquoise Trail", "Adobe Flats",
		"Red Butte", "Cholla Grove", "Agave Ridge", "Mariposa Court",
		"Ocotillo Bend", "Pinyon Hollow", "Saltbrush Corner", "Yucca Point",
		"Juniper Wash", "Cottonwood Draw", "Palo Verde Row", "Tumbleweed Yard",
	}
	bizTails := []string{"Grill", "Cantina", "Diner", "Cafe", "Eatery", "Kitchen", "Tavern", "Lounge"}
	for i := 0; i < 80; i++ {
		name := bizHeads[i%len(bizHeads)] + " " + bizTails[(i/len(bizHeads)+i)%len(bizTails)]
		p.businesses = append(p.businesses, name)
		city := p.cities[r.intn(len(p.cities))]
		d.MustInsert("business", []db.Value{
			db.Num(float64(i + 1)), db.Str(name),
			db.Str(fmt.Sprintf("%d Main Street, %s", 100+i, city)),
			db.Str(city), db.Str(states[r.intn(len(states))]),
			db.Num(33 + float64(r.intn(400))/100), db.Num(-112 - float64(r.intn(400))/100),
			db.Num(float64(r.intn(900))), db.Num(float64(r.intn(2))),
			db.Num(float64(10+r.intn(41)) / 10), // 1.0 .. 5.0
		})
		d.MustInsert("category", []db.Value{
			db.Num(float64(i + 1)), db.Num(float64(i + 1)), db.Str(p.categories[r.intn(len(p.categories))]),
		})
	}
	hoods := []string{"Arcadia", "Encanto", "Willo", "Coronado", "Garfield", "Roosevelt", "Melrose", "Sunnyslope"}
	for i := 0; i < 50; i++ {
		d.MustInsert("neighbourhood", []db.Value{
			db.Num(float64(i + 1)), db.Num(float64(r.intn(80) + 1)), db.Str(hoods[r.intn(len(hoods))]),
		})
	}
	days := []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	for i := 0; i < 80; i++ {
		d.MustInsert("checkin", []db.Value{
			db.Num(float64(i + 1)), db.Num(float64(r.intn(80) + 1)),
			db.Num(float64(r.intn(60))), db.Str(days[r.intn(len(days))]),
		})
	}
	first := []string{
		"Avery", "Blake", "Casey", "Devon", "Ellis", "Frankie", "Harper",
		"Indigo", "Jules", "Kendall", "Logan", "Morgan", "Noel", "Parker", "Quinn",
	}
	last := []string{
		"Whitfield", "Marsh", "Calloway", "Draper", "Ellington", "Fairbanks",
		"Granger", "Holloway", "Irving", "Jennings", "Kirkland", "Lockhart",
	}
	for i := 0; i < 60; i++ {
		name := first[i%len(first)] + " " + last[(i/len(first)+i)%len(last)]
		p.users = append(p.users, name)
		d.MustInsert("user", []db.Value{
			db.Num(float64(i + 1)), db.Str(name),
			db.Num(float64(r.intn(400))), db.Num(float64(r.intn(200))),
			db.Num(float64(10+r.intn(41)) / 10),
		})
	}
	snippets := []string{
		"Great service and friendly staff.", "Portions were generous.",
		"Would absolutely come back.", "The patio seating is lovely.",
		"A bit crowded on weekends.", "Hidden gem of the neighborhood.",
		"The menu changes seasonally.", "Quick lunch spot downtown.",
	}
	for i := 0; i < 200; i++ {
		d.MustInsert("review", []db.Value{
			db.Num(float64(i + 1)), db.Num(float64(r.intn(80) + 1)), db.Num(float64(r.intn(60) + 1)),
			db.Num(float64(r.intn(5) + 1)), db.Str(snippets[r.intn(len(snippets))]),
			db.Num(float64(2008 + r.intn(8))), db.Num(float64(r.intn(12) + 1)),
		})
	}
	for i := 0; i < 100; i++ {
		d.MustInsert("tip", []db.Value{
			db.Num(float64(i + 1)), db.Num(float64(r.intn(80) + 1)), db.Num(float64(r.intn(60) + 1)),
			db.Str(snippets[r.intn(len(snippets))]), db.Num(float64(r.intn(40))),
			db.Num(float64(2008 + r.intn(8))),
		})
	}
	return p
}

func yelpTasks(p yelpPools) *taskBuilder {
	tb := newTaskBuilder("yelp")

	// Y1 businessInCity (25): single-relation query.
	for i := 0; i < 25; i++ {
		v := p.cities[i%len(p.cities)]
		gold := fmt.Sprintf("SELECT b.name FROM business b WHERE b.city = '%s'", sqlQuote(v))
		tb.add("businessInCity",
			fmt.Sprintf("Find businesses in %s", v),
			[]keyword.Keyword{kwSelect("businesses"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("business.name"), fragPredStr("business.city", "=", v)},
			false)
	}

	// Y2 businessByStars (20): numeric ambiguity between business.rating,
	// review.rating, user.average_stars etc.
	for i := 0; i < 20; i++ {
		stars := []float64{2, 3, 3.5, 4, 4.5}[i%5]
		gold := fmt.Sprintf("SELECT b.name FROM business b WHERE b.rating >= %g", stars)
		tb.add("businessByStars",
			fmt.Sprintf("Businesses rated at least %g stars", stars),
			[]keyword.Keyword{kwSelect("businesses"), kwWhereOp(fmt.Sprintf("%g stars", stars), ">=")},
			gold,
			[]fragment.Fragment{fragAttr("business.name"), fragPredNum("business.rating", ">=", stars)},
			false)
	}

	// Y3 usersWhoReviewedBusiness (20): the equal-length path tie — user
	// reaches business via review OR via tip (both two edges). Gold goes
	// through review; the baseline ties and is counted incorrect.
	for i := 0; i < 20; i++ {
		v := p.businesses[i%len(p.businesses)]
		gold := fmt.Sprintf("SELECT u.name FROM user u, review r, business b WHERE b.name = '%s' AND r.user_id = u.uid AND r.business_id = b.bid", sqlQuote(v))
		tb.add("usersWhoReviewedBusiness",
			fmt.Sprintf("Which customers reviewed %s", v),
			[]keyword.Keyword{kwSelect("customers"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("user.name"), fragPredStr("business.name", "=", v)},
			false)
	}

	// Y4 reviewsOfBusiness (15).
	for i := 0; i < 15; i++ {
		v := p.businesses[(i*3+1)%len(p.businesses)]
		gold := fmt.Sprintf("SELECT r.text FROM review r, business b WHERE b.name = '%s' AND r.business_id = b.bid", sqlQuote(v))
		tb.add("reviewsOfBusiness",
			fmt.Sprintf("Show reviews of %s", v),
			[]keyword.Keyword{kwSelect("reviews"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("review.text"), fragPredStr("business.name", "=", v)},
			false)
	}

	// Y5 tipsByUser (12).
	for i := 0; i < 12; i++ {
		v := p.users[i%len(p.users)]
		gold := fmt.Sprintf("SELECT t.text FROM tip t, user u WHERE u.name = '%s' AND t.user_id = u.uid", sqlQuote(v))
		tb.add("tipsByUser",
			fmt.Sprintf("Show tips left by %s", v),
			[]keyword.Keyword{kwSelect("tips"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("tip.text"), fragPredStr("user.name", "=", v)},
			false)
	}

	// Y6 countReviewsByUser (15, hazard): aggregation.
	for i := 0; i < 15; i++ {
		v := p.users[(i*2+5)%len(p.users)]
		gold := fmt.Sprintf("SELECT COUNT(r.text) FROM review r, user u WHERE u.name = '%s' AND r.user_id = u.uid", sqlQuote(v))
		tb.add("countReviewsByUser",
			fmt.Sprintf("How many reviews has %s written", v),
			[]keyword.Keyword{kwSelectAgg("reviews", "COUNT"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAgg("review.text", "COUNT"), fragPredStr("user.name", "=", v)},
			true)
	}

	// Y7 businessesInCategory (20).
	for i := 0; i < 20; i++ {
		v := p.categories[i%len(p.categories)]
		gold := fmt.Sprintf("SELECT b.name FROM business b, category c WHERE c.category_name = '%s' AND c.business_id = b.bid", sqlQuote(v))
		tb.add("businessesInCategory",
			fmt.Sprintf("Find %s businesses", v),
			[]keyword.Keyword{kwSelect("businesses"), kwWhere(v)},
			gold,
			[]fragment.Fragment{fragAttr("business.name"), fragPredStr("category.category_name", "=", v)},
			false)
	}
	return tb
}
