// Package templar is the public facade of the Templar system (paper §III-D):
// a log-augmentation layer that existing pipeline NLIDBs call on two fronts,
// keyword mapping (MAPKEYWORDS) and join path inference (INFERJOINS). The
// two calls are independent; the NLIDB owns NLQ parsing and final SQL
// construction.
//
// The query surface is context-first: every call takes a context.Context
// (a canceled request aborts configuration enumeration and join path
// search mid-flight, not just at dispatch) and an optional *CallOptions
// with per-request knobs. Typical use:
//
//	entries, _ := sqlparse.ParseLog(logText)
//	g, _ := qfg.Build(entries, fragment.NoConstOp)
//	t := templar.New(database, model, g, templar.Options{})
//	configs, _ := t.MapKeywords(ctx, keywords, nil)
//	paths, _ := t.InferJoins(ctx, []string{"publication", "domain"}, &templar.CallOptions{TopK: 3})
//
// A serving layer that keeps folding user queries back into its log wraps
// the graph in a qfg.Live and uses NewLive instead: every append republishes
// an immutable snapshot, and the System swaps its scoring/weighting engine
// behind an atomic pointer without ever blocking readers.
package templar

import (
	"context"
	"sync"
	"sync/atomic"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
)

// Options configures a Templar instance.
type Options struct {
	// Keyword configures the Keyword Mapper (κ, λ, obscurity, …).
	Keyword keyword.Options
	// LogJoin enables log-driven join path weights (Table IV's toggle).
	// When false, join inference uses uniform weights (shortest path),
	// while keyword mapping still uses the QFG.
	LogJoin bool
}

// engine is one immutable compiled view the System serves from: the QFG
// snapshot it was derived from, the join generator whose edge weights were
// baked from that snapshot, and the translator over a mapper pinned to
// that same snapshot. Engines are swapped whole behind an atomic pointer,
// so a Translate call scores configurations and weighs join edges against
// one mutually consistent log state.
type engine struct {
	snap       *qfg.Snapshot // nil when the system has no QFG
	joins      *joinpath.Generator
	translator *nlidb.System
}

// System is a Templar instance bound to one database, similarity model and
// query fragment graph.
//
// A System is safe for concurrent use by multiple goroutines: the keyword
// mapper precomputes its candidate index at construction and ranks against
// an immutable interned-ID QFG snapshot, the join generator clones its
// precomputed adjacency graph per call, and the current engine is read with
// one atomic load. With NewLive, log appends republish a fresh snapshot and
// the engine is rebuilt copy-on-write — in-flight readers keep the engine
// they loaded and are never blocked. The one caller obligation is to stop
// mutating the database (Insert) before constructing the System.
type System struct {
	database *db.Database
	model    *embedding.Model
	opts     Options
	mapper   *keyword.Mapper
	live     *qfg.Live // nil when the log is frozen
	// cur is the engine serving requests; rebuildMu serializes the
	// copy-on-write rebuild after a live republish (readers that lose the
	// TryLock race serve the previous engine instead of blocking).
	cur       atomic.Pointer[engine]
	rebuildMu sync.Mutex
}

// New builds a Templar instance over a frozen query log. graph may be nil,
// which degrades both calls to their log-free baselines (useful for
// ablations). The graph is compiled once into an immutable snapshot unless
// Options.Keyword.DisableSnapshot selects the map-backed scoring path.
func New(database *db.Database, model *embedding.Model, graph *qfg.Graph, opts Options) *System {
	s := &System{database: database, model: model, opts: opts}
	mapper, snap, w := nlidb.QFGParts(database, model, graph, opts.Keyword, opts.LogJoin)
	s.mapper = mapper
	if snap != nil {
		s.cur.Store(s.buildEngine(snap))
		return s
	}
	// Map-backed ablation path (or no QFG at all): the engine carries no
	// snapshot; weights, if any, read the graph directly.
	joins := joinpath.NewGenerator(database.Schema(), w)
	s.cur.Store(&engine{
		joins:      joins,
		translator: nlidb.NewFromParts("Templar", s.mapper, joins, nlidb.Config{}),
	})
	return s
}

// NewFromSnapshot builds a Templar instance directly over a precompiled,
// frozen QFG snapshot — the cold-start path for archives loaded from
// internal/store: no log re-mine, no graph build, the engine serves from
// the loaded arrays as-is. Log appends are disabled (Live() == nil); a
// serving layer that wants to keep appending wraps the archive with
// qfg.NewLiveFromSnapshot and uses NewLive instead. Passing a nil snapshot
// degrades to the log-free baseline, as in New.
func NewFromSnapshot(database *db.Database, model *embedding.Model, snap *qfg.Snapshot, opts Options) *System {
	if snap == nil {
		return New(database, model, nil, opts)
	}
	opts.Keyword.DisableSnapshot = false
	s := &System{database: database, model: model, opts: opts}
	s.mapper = keyword.NewSnapshotMapper(database, model, snap, opts.Keyword)
	s.cur.Store(s.buildEngine(snap))
	return s
}

// NewLive builds a Templar instance over a live, growing query log: the
// mapper ranks against whatever snapshot the Live graph currently
// publishes, and the join generator (whose log-driven weights are baked at
// build time) is rebuilt copy-on-write whenever a republish is observed.
// Options.Keyword.DisableSnapshot is ignored — live serving is always
// snapshot-based.
func NewLive(database *db.Database, model *embedding.Model, live *qfg.Live, opts Options) *System {
	opts.Keyword.DisableSnapshot = false
	s := &System{database: database, model: model, opts: opts, live: live}
	s.mapper = keyword.NewSnapshotMapper(database, model, live, opts.Keyword)
	s.cur.Store(s.buildEngine(live.CurrentSnapshot()))
	return s
}

// buildEngine compiles the per-snapshot serving state. The translator's
// mapper is pinned to the engine's snapshot (sharing the candidate index
// and similarity cache with the System's base mapper), so one Translate
// call never mixes configuration scores from a newer republish with join
// weights from an older one.
func (s *System) buildEngine(snap *qfg.Snapshot) *engine {
	var w joinpath.WeightFunc
	if s.opts.LogJoin && snap != nil {
		w = joinpath.LogWeights(snap)
	}
	joins := joinpath.NewGenerator(s.database.Schema(), w)
	mapper := s.mapper
	if snap != nil {
		mapper = mapper.WithSource(snap)
	}
	return &engine{
		snap:       snap,
		joins:      joins,
		translator: nlidb.NewFromParts("Templar", mapper, joins, nlidb.Config{}),
	}
}

// engine returns the current serving engine, rebuilding it first when the
// live graph has republished a newer snapshot. Readers never block: if
// another goroutine already holds the rebuild lock, the previous engine —
// a complete, consistent view of an older log state — serves the request.
func (s *System) engine() *engine {
	e := s.cur.Load()
	if s.live == nil {
		return e
	}
	snap := s.live.CurrentSnapshot()
	if e.snap == snap {
		return e
	}
	if !s.rebuildMu.TryLock() {
		return e
	}
	defer s.rebuildMu.Unlock()
	snap = s.live.CurrentSnapshot()
	if e = s.cur.Load(); e.snap == snap {
		return e
	}
	e = s.buildEngine(snap)
	s.cur.Store(e)
	return e
}

// Database returns the bound database.
func (s *System) Database() *db.Database { return s.database }

// Mapper returns the shared keyword mapper (index- and cache-backed unless
// disabled via Options.Keyword.DisableIndex).
func (s *System) Mapper() *keyword.Mapper { return s.mapper }

// Joins returns the current join path generator. With a live log the
// returned generator is a point-in-time view; prefer InferJoins, which
// picks up republished weights per call.
func (s *System) Joins() *joinpath.Generator { return s.engine().joins }

// Live returns the live query log behind the system, or nil when the log
// is frozen. Serving layers append user queries through it.
func (s *System) Live() *qfg.Live { return s.live }

// Snapshot returns the QFG snapshot the current engine serves from (nil
// for a log-free baseline), for diagnostics endpoints.
func (s *System) Snapshot() *qfg.Snapshot { return s.engine().snap }

// CallOptions are per-request knobs for the query surface. A nil
// *CallOptions means "engine defaults" everywhere; the zero value of any
// field leaves that default in place. One options struct serves all three
// calls — each reads only the fields that apply to it.
type CallOptions struct {
	// TopK caps what the call returns: configurations for MapKeywords
	// (0 = all), join paths for InferJoins (0 = 1).
	TopK int
	// MaxCandidates overrides κ, the candidate mappings kept per keyword
	// after pruning.
	MaxCandidates int
	// MaxConfigurations caps the keyword-mapping configuration
	// enumeration.
	MaxConfigurations int
	// TopConfigs bounds how many configurations Translate tries for SQL
	// construction.
	TopConfigs int
	// TopPaths bounds how many join paths Translate considers per
	// configuration.
	TopPaths int
	// Obscurity asserts the fragment obscurity level the caller expects;
	// a level the engine's log was not mined at is a
	// *keyword.ObscurityMismatchError.
	Obscurity *fragment.Obscurity
}

// keywordOpts projects the mapper-facing fields (nil-safe).
func (o *CallOptions) keywordOpts() keyword.CallOptions {
	if o == nil {
		return keyword.CallOptions{}
	}
	return keyword.CallOptions{K: o.MaxCandidates, MaxConfigurations: o.MaxConfigurations, Obscurity: o.Obscurity}
}

// nlidbOpts projects the translator-facing fields (nil-safe).
func (o *CallOptions) nlidbOpts() nlidb.CallOptions {
	if o == nil {
		return nlidb.CallOptions{}
	}
	return nlidb.CallOptions{Keyword: o.keywordOpts(), TopConfigs: o.TopConfigs, TopPaths: o.TopPaths}
}

// MapKeywords executes MAPKEYWORDS (Φ = MAPKEYWORDS(D, S, M)): it returns
// keyword-mapping configurations ranked from most to least likely,
// trimmed to opts.TopK when set. The trim is pushed into the mapper, which
// then runs a bounded top-k selection over the configuration enumeration
// instead of materializing and sorting the whole cartesian product; the
// result is identical to sorting everything and slicing. ctx cancellation
// aborts the enumeration mid-flight.
func (s *System) MapKeywords(ctx context.Context, keywords []keyword.Keyword, opts *CallOptions) ([]keyword.Configuration, error) {
	kco := opts.keywordOpts()
	if opts != nil {
		kco.TopK = opts.TopK
	}
	configs, err := s.mapper.MapKeywordsCtx(ctx, keywords, kco)
	if err != nil {
		return nil, err
	}
	if opts != nil && opts.TopK > 0 && len(configs) > opts.TopK {
		configs = configs[:opts.TopK]
	}
	return configs, nil
}

// InferJoins executes INFERJOINS (J = INFERJOINS(Gs, BD)): given the bag of
// relations known to be part of the SQL query (duplicates trigger self-join
// forking), it returns up to opts.TopK join paths (default 1) ranked from
// most to least likely. ctx cancellation aborts the Steiner search
// mid-flight.
func (s *System) InferJoins(ctx context.Context, relationBag []string, opts *CallOptions) ([]joinpath.Path, error) {
	topK := 1
	if opts != nil && opts.TopK > 0 {
		topK = opts.TopK
	}
	return s.engine().joins.InferCtx(ctx, relationBag, topK)
}

// Translate runs the full NLQ→SQL pipeline over the shared mapper and join
// generator: MAPKEYWORDS → INFERJOINS per configuration → SQL construction
// → ranking. It is the one-call front the serving layer exposes; NLIDBs
// that own their own SQL construction keep using MapKeywords + InferJoins.
// ctx cancellation aborts enumeration and path search mid-pipeline.
func (s *System) Translate(ctx context.Context, kws []keyword.Keyword, opts *CallOptions) (*nlidb.Translation, error) {
	return s.engine().translator.TranslateCtx(ctx, "", false, kws, opts.nlidbOpts())
}
