// Package templar is the public facade of the Templar system (paper §III-D):
// a log-augmentation layer that existing pipeline NLIDBs call on two fronts,
// keyword mapping (MAPKEYWORDS) and join path inference (INFERJOINS). The
// two calls are independent; the NLIDB owns NLQ parsing and final SQL
// construction.
//
// Typical use:
//
//	entries, _ := sqlparse.ParseLog(logText)
//	g, _ := qfg.Build(entries, fragment.NoConstOp)
//	t := templar.New(database, model, g, templar.Options{})
//	configs, _ := t.MapKeywords(keywords)
//	paths, _ := t.InferJoins([]string{"publication", "domain"}, 3)
package templar

import (
	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/joinpath"
	"templar/internal/keyword"
	"templar/internal/nlidb"
	"templar/internal/qfg"
)

// Options configures a Templar instance.
type Options struct {
	// Keyword configures the Keyword Mapper (κ, λ, obscurity, …).
	Keyword keyword.Options
	// LogJoin enables log-driven join path weights (Table IV's toggle).
	// When false, join inference uses uniform weights (shortest path),
	// while keyword mapping still uses the QFG.
	LogJoin bool
}

// System is a Templar instance bound to one database, similarity model and
// query fragment graph.
//
// A System is safe for concurrent use by multiple goroutines: the keyword
// mapper precomputes its candidate index at construction and memoizes
// similarities behind an internally synchronized bounded cache, the join
// generator clones its precomputed adjacency graph per call, and the
// database, model and QFG are never written after New returns. The one
// caller obligation is to stop mutating the database (Insert) before
// constructing the System.
type System struct {
	database   *db.Database
	mapper     *keyword.Mapper
	joins      *joinpath.Generator
	translator *nlidb.System
}

// New builds a Templar instance. graph may be nil, which degrades both calls
// to their log-free baselines (useful for ablations).
func New(database *db.Database, model *embedding.Model, graph *qfg.Graph, opts Options) *System {
	var w joinpath.WeightFunc
	if opts.LogJoin && graph != nil {
		w = joinpath.LogWeights(graph)
	}
	mapper := keyword.NewMapper(database, model, graph, opts.Keyword)
	joins := joinpath.NewGenerator(database.Schema(), w)
	return &System{
		database:   database,
		mapper:     mapper,
		joins:      joins,
		translator: nlidb.NewFromParts("Templar", mapper, joins, nlidb.Config{}),
	}
}

// Database returns the bound database.
func (s *System) Database() *db.Database { return s.database }

// Mapper returns the shared keyword mapper (index- and cache-backed unless
// disabled via Options.Keyword.DisableIndex).
func (s *System) Mapper() *keyword.Mapper { return s.mapper }

// Joins returns the shared join path generator.
func (s *System) Joins() *joinpath.Generator { return s.joins }

// MapKeywords executes MAPKEYWORDS (Φ = MAPKEYWORDS(D, S, M)): it returns
// keyword-mapping configurations ranked from most to least likely.
func (s *System) MapKeywords(keywords []keyword.Keyword) ([]keyword.Configuration, error) {
	return s.mapper.MapKeywords(keywords)
}

// InferJoins executes INFERJOINS (J = INFERJOINS(Gs, BD)): given the bag of
// relations known to be part of the SQL query (duplicates trigger self-join
// forking), it returns up to topK join paths ranked from most to least
// likely.
func (s *System) InferJoins(relationBag []string, topK int) ([]joinpath.Path, error) {
	return s.joins.Infer(relationBag, topK)
}

// Translate runs the full NLQ→SQL pipeline over the shared mapper and join
// generator: MAPKEYWORDS → INFERJOINS per configuration → SQL construction
// → ranking. It is the one-call front the serving layer exposes; NLIDBs
// that own their own SQL construction keep using MapKeywords + InferJoins.
func (s *System) Translate(kws []keyword.Keyword) (*nlidb.Translation, error) {
	return s.translator.Translate("", false, kws)
}
