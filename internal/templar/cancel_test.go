package templar

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"templar/internal/datasets"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

// countingCtx reports itself canceled after a fixed number of Err()
// polls. It makes "the engine checks its context mid-flight" a
// deterministic assertion: work that never polls runs to completion and
// the test fails; work that polls aborts at a known point. The counter is
// atomic so the type is safe under -race.
type countingCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// masSystem builds a full MAS engine (QFG over the whole gold log), the
// same shape the serving layer hosts.
func masSystem(t testing.TB) *System {
	t.Helper()
	ds := datasets.MAS()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	graph, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	return New(ds.DB, embedding.New(), graph, Options{LogJoin: true})
}

// wideKeywords is a request whose candidate sets multiply into hundreds
// of configurations, so the enumeration's periodic ctx poll (every 64
// leaves) must fire several times before completion.
func wideKeywords() []keyword.Keyword {
	return []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select}},
		{Text: "authors", Meta: keyword.Metadata{Context: fragment.Select}},
		{Text: "conferences", Meta: keyword.Metadata{Context: fragment.Select}},
	}
}

// TestMapKeywordsCancelsMidEnumeration proves cancellation aborts the
// configuration cartesian product in-engine: with an uncanceled context
// the request yields hundreds of configurations, and a context that
// flips to canceled after a handful of polls kills the same request
// mid-enumeration with context.Canceled.
func TestMapKeywordsCancelsMidEnumeration(t *testing.T) {
	sys := masSystem(t)
	opts := &CallOptions{MaxCandidates: 8, MaxConfigurations: 100000}

	full, err := sys.MapKeywords(context.Background(), wideKeywords(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 128 {
		t.Fatalf("fixture too small to prove a mid-flight abort: %d configurations", len(full))
	}

	ctx := &countingCtx{Context: context.Background(), after: 4}
	configs, err := sys.MapKeywords(ctx, wideKeywords(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if configs != nil {
		t.Fatalf("canceled call still returned %d configurations", len(configs))
	}
	// The poll count proves the abort happened inside the enumeration:
	// more polls than the per-keyword checks alone, far fewer than a full
	// run would have issued.
	fullPolls := int64(len(wideKeywords())) + int64(len(full))/64 + 1
	if got := ctx.polls.Load(); got <= int64(len(wideKeywords())) || got >= fullPolls {
		t.Fatalf("polls = %d, want in (%d, %d): abort was not mid-enumeration",
			got, len(wideKeywords()), fullPolls)
	}
}

// TestInferJoinsCancelsMidSearch proves cancellation aborts the Steiner
// search between Dijkstra sweeps. The sanity call and the canceled call
// use different bags: inference results are memoized per bag, so reusing
// the warm bag would answer from the cache without ever searching.
func TestInferJoinsCancelsMidSearch(t *testing.T) {
	sys := masSystem(t)

	if _, err := sys.InferJoins(context.Background(), []string{"publication", "domain"}, &CallOptions{TopK: 3}); err != nil {
		t.Fatal(err)
	}

	bag := []string{"publication", "domain", "author", "conference"}
	ctx := &countingCtx{Context: context.Background(), after: 2}
	paths, err := sys.InferJoins(ctx, bag, &CallOptions{TopK: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if paths != nil {
		t.Fatalf("canceled call still returned %d paths", len(paths))
	}
}

// TestInferJoinsCanceledCacheHit pins the cache-era contract: even when
// the bag's answer is memoized, an already-canceled request aborts
// instead of being handed a result it can no longer use.
func TestInferJoinsCanceledCacheHit(t *testing.T) {
	sys := masSystem(t)
	bag := []string{"publication", "domain", "author", "conference"}

	if _, err := sys.InferJoins(context.Background(), bag, &CallOptions{TopK: 3}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	paths, err := sys.InferJoins(ctx, bag, &CallOptions{TopK: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if paths != nil {
		t.Fatalf("canceled call still returned %d paths", len(paths))
	}
}

// TestTranslateCanceledContext covers the one-call pipeline front: an
// already-canceled request context must abort before (or during) engine
// work, and the error must unwrap to context.Canceled for the serving
// layer's client-gone detection.
func TestTranslateCanceledContext(t *testing.T) {
	sys := masSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Translate(ctx, wideKeywords(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTranslateCancelsMidPipeline drives the full pipeline with a context
// that cancels after the mapper finishes its polls, proving the
// per-configuration loop and the join search observe cancellation too.
func TestTranslateCancelsMidPipeline(t *testing.T) {
	sys := masSystem(t)
	kws := wideKeywords()

	if _, err := sys.Translate(context.Background(), kws, nil); err != nil {
		t.Fatal(err)
	}

	// Find how many polls an uncanceled translation issues end to end,
	// then cancel at every possible intermediate point. Whatever stage the
	// flip lands in must surface context.Canceled, never a partial result.
	probe := &countingCtx{Context: context.Background(), after: 1 << 30}
	if _, err := sys.Translate(probe, kws, nil); err != nil {
		t.Fatal(err)
	}
	total := probe.polls.Load()
	if total < 4 {
		t.Fatalf("pipeline issued only %d ctx polls; cancellation coverage is too sparse", total)
	}
	for after := int64(1); after < total; after += (total / 16) + 1 {
		ctx := &countingCtx{Context: context.Background(), after: after}
		tr, err := sys.Translate(ctx, kws, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after %d polls: err = %v, want context.Canceled", after, err)
		}
		if tr != nil {
			t.Fatalf("after %d polls: canceled translation still returned %q", after, tr.SQL)
		}
	}
}

// TestObscurityOverride exercises the per-request obscurity assertion:
// the mined level round-trips, and a mismatching assertion fails with the
// typed error instead of silently rescoring.
func TestObscurityOverride(t *testing.T) {
	sys := masSystem(t)
	kws := wideKeywords()[:1]

	mined := fragment.NoConstOp
	if _, err := sys.MapKeywords(context.Background(), kws, &CallOptions{Obscurity: &mined}); err != nil {
		t.Fatalf("matching obscurity rejected: %v", err)
	}

	full := fragment.Full
	_, err := sys.MapKeywords(context.Background(), kws, &CallOptions{Obscurity: &full})
	var mismatch *keyword.ObscurityMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("err = %v, want *keyword.ObscurityMismatchError", err)
	}
	if mismatch.Want != fragment.Full || mismatch.Have != fragment.NoConstOp {
		t.Fatalf("mismatch = %+v", mismatch)
	}
	if want := fmt.Sprintf("%v", mismatch); want == "" {
		t.Fatal("empty error text")
	}
}
