package templar

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"templar/internal/db"
	"templar/internal/embedding"
	"templar/internal/fragment"
	"templar/internal/keyword"
	"templar/internal/qfg"
	"templar/internal/schema"
	"templar/internal/sqlparse"
)

func fixtureDB(t testing.TB) *db.Database {
	t.Helper()
	g := schema.NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddRelation(schema.Relation{Name: "journal", Attributes: []schema.Attribute{
		{Name: "jid", Type: schema.Number, PrimaryKey: true},
		{Name: "name", Type: schema.Text},
	}}))
	must(g.AddRelation(schema.Relation{Name: "publication", Attributes: []schema.Attribute{
		{Name: "pid", Type: schema.Number, PrimaryKey: true},
		{Name: "title", Type: schema.Text},
		{Name: "year", Type: schema.Number},
		{Name: "jid", Type: schema.Number},
	}}))
	must(g.AddForeignKey(schema.ForeignKey{FromRel: "publication", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"}))
	d := db.New(g)
	d.MustInsert("journal", []db.Value{db.Num(1), db.Str("TKDE")})
	d.MustInsert("publication", []db.Value{db.Num(10), db.Str("Adaptive Query Planning"), db.Num(2004), db.Num(1)})
	return d
}

func fixtureQFG(t testing.TB) *qfg.Graph {
	t.Helper()
	entries, err := sqlparse.ParseLog(`
10x: SELECT p.title FROM publication p WHERE p.year > 2000
4x: SELECT j.name FROM journal j
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qfg.Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeMapKeywords(t *testing.T) {
	d := fixtureDB(t)
	sys := New(d, embedding.New(), fixtureQFG(t), Options{LogJoin: true})
	configs, err := sys.MapKeywords(context.Background(), []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select}},
		{Text: "after 2000", Meta: keyword.Metadata{Context: fragment.Where, Op: ">"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) == 0 {
		t.Fatal("no configurations")
	}
	top := configs[0]
	if top.Mappings[0].Qualified() != "publication.title" {
		t.Fatalf("top mapping = %v", top.Mappings[0])
	}
	if top.QFGScore <= 0 {
		t.Fatalf("QFGScore = %v, want log evidence", top.QFGScore)
	}
}

func TestFacadeInferJoins(t *testing.T) {
	d := fixtureDB(t)
	sys := New(d, embedding.New(), fixtureQFG(t), Options{LogJoin: true})
	paths, err := sys.InferJoins(context.Background(), []string{"publication", "journal"}, &CallOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || len(paths[0].Edges) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	if !strings.Contains(paths[0].String(), "journal") {
		t.Fatalf("path = %v", paths[0])
	}
}

func TestFacadeNilGraphDegradesGracefully(t *testing.T) {
	d := fixtureDB(t)
	sys := New(d, embedding.New(), nil, Options{LogJoin: true})
	configs, err := sys.MapKeywords(context.Background(), []keyword.Keyword{
		{Text: "journals", Meta: keyword.Metadata{Context: fragment.Select}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if configs[0].QFGScore != 0 {
		t.Fatal("nil QFG must yield zero log score")
	}
	// LogJoin with nil graph falls back to uniform weights.
	paths, err := sys.InferJoins(context.Background(), []string{"publication", "journal"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if paths[0].TotalWeight != 1 {
		t.Fatalf("uniform fallback weight = %v", paths[0].TotalWeight)
	}
}

func TestFacadeDatabaseAccessor(t *testing.T) {
	d := fixtureDB(t)
	sys := New(d, embedding.New(), nil, Options{})
	if sys.Database() != d {
		t.Fatal("Database accessor")
	}
}

// TestNewFromSnapshotMatchesNew is the constructor-level parity gate for
// the store cold-start path: a System over a precompiled snapshot must
// answer exactly like one that built the same snapshot from the graph.
func TestNewFromSnapshotMatchesNew(t *testing.T) {
	d := fixtureDB(t)
	graph := fixtureQFG(t)
	built := New(d, embedding.New(), graph, Options{LogJoin: true})
	loaded := NewFromSnapshot(d, embedding.New(), graph.Snapshot(nil), Options{LogJoin: true})
	if loaded.Live() != nil {
		t.Fatal("snapshot-backed system must be frozen")
	}
	kws := []keyword.Keyword{
		{Text: "papers", Meta: keyword.Metadata{Context: fragment.Select}},
		{Text: "after 2000", Meta: keyword.Metadata{Context: fragment.Where, Op: ">"}},
	}
	wantCfg, err := built.MapKeywords(context.Background(), kws, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotCfg, err := loaded.MapKeywords(context.Background(), kws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCfg, wantCfg) {
		t.Fatalf("configurations diverged:\nsnapshot: %v\ngraph:    %v", gotCfg, wantCfg)
	}
	wantTr, err := built.Translate(context.Background(), kws, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotTr, err := loaded.Translate(context.Background(), kws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTr, wantTr) {
		t.Fatalf("translations diverged:\nsnapshot: %+v\ngraph:    %+v", gotTr, wantTr)
	}
	wantPaths, err := built.InferJoins(context.Background(), []string{"publication", "journal"}, &CallOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotPaths, err := loaded.InferJoins(context.Background(), []string{"publication", "journal"}, &CallOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPaths, wantPaths) {
		t.Fatal("join paths diverged between snapshot- and graph-backed systems")
	}
	// Nil snapshot degrades to the log-free baseline, like New(nil graph).
	baseline := NewFromSnapshot(d, embedding.New(), nil, Options{})
	cfgs, err := baseline.MapKeywords(context.Background(), kws[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].QFGScore != 0 {
		t.Fatal("nil snapshot must yield zero log score")
	}
}
