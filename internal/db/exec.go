package db

import (
	"fmt"
	"sort"
	"strings"

	"templar/internal/sqlparse"
)

// Result is the output of executing a query: column headers and rows.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// binding maps a FROM-list position to a row in its table.
type binding struct {
	tables []*Table
	labels []string // alias (or name) per FROM entry
	rows   []int
}

// Execute runs a single-block SELECT against the database. The query may use
// aliases; it must NOT have been alias-resolved (Execute resolves column
// references against the FROM list itself, so self-joins with distinct
// aliases work). Supported: conjunctive WHERE, equality joins, aggregates
// with GROUP BY, DISTINCT, ORDER BY, LIMIT.
func (d *Database) Execute(q *sqlparse.Query) (*Result, error) {
	// Bind FROM entries to tables.
	var bnd binding
	for _, tr := range q.From {
		t := d.tables[tr.Name]
		if t == nil {
			return nil, fmt.Errorf("db: unknown relation %q", tr.Name)
		}
		label := tr.Alias
		if label == "" {
			label = tr.Name
		}
		bnd.tables = append(bnd.tables, t)
		bnd.labels = append(bnd.labels, label)
	}
	lookup := func(c sqlparse.ColumnRef) (int, int, error) {
		// Returns (from index, column index).
		if c.Table != "" {
			for i, l := range bnd.labels {
				if l == c.Table || q.From[i].Name == c.Table {
					ci := bnd.tables[i].ColumnIndex(c.Column)
					if ci < 0 {
						return 0, 0, fmt.Errorf("db: relation %q has no column %q", q.From[i].Name, c.Column)
					}
					return i, ci, nil
				}
			}
			return 0, 0, fmt.Errorf("db: unknown table reference %q", c.Table)
		}
		for i, t := range bnd.tables {
			if ci := t.ColumnIndex(c.Column); ci >= 0 {
				return i, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("db: cannot resolve column %q", c.Column)
	}

	// Pre-resolve conditions.
	type joinRef struct{ lf, lc, rf, rc int }
	type predRef struct {
		f, c int
		op   string // comparison op, or "IN" / "BETWEEN"
		val  Value
		vals []Value // IN list, or [lo, hi] for BETWEEN
	}
	lit := func(v sqlparse.Value) (Value, error) {
		switch v.Kind {
		case sqlparse.NumberVal:
			return Num(v.N), nil
		case sqlparse.StringVal:
			return Str(v.S), nil
		default:
			return Value{}, fmt.Errorf("db: cannot execute placeholder value %v", v)
		}
	}
	var joins []joinRef
	var preds []predRef
	for _, cond := range q.Where {
		switch v := cond.(type) {
		case sqlparse.JoinCond:
			lf, lc, err := lookup(v.Left)
			if err != nil {
				return nil, err
			}
			rf, rc, err := lookup(v.Right)
			if err != nil {
				return nil, err
			}
			joins = append(joins, joinRef{lf, lc, rf, rc})
		case sqlparse.Pred:
			f, c, err := lookup(v.Column)
			if err != nil {
				return nil, err
			}
			val, err := lit(v.Value)
			if err != nil {
				return nil, err
			}
			preds = append(preds, predRef{f: f, c: c, op: v.Op, val: val})
		case sqlparse.InPred:
			f, c, err := lookup(v.Column)
			if err != nil {
				return nil, err
			}
			var vals []Value
			for _, raw := range v.Values {
				val, err := lit(raw)
				if err != nil {
					return nil, err
				}
				vals = append(vals, val)
			}
			preds = append(preds, predRef{f: f, c: c, op: "IN", vals: vals})
		case sqlparse.BetweenPred:
			f, c, err := lookup(v.Column)
			if err != nil {
				return nil, err
			}
			lo, err := lit(v.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := lit(v.Hi)
			if err != nil {
				return nil, err
			}
			preds = append(preds, predRef{f: f, c: c, op: "BETWEEN", vals: []Value{lo, hi}})
		}
	}
	evalPred := func(cell Value, p predRef) (bool, error) {
		switch p.op {
		case "IN":
			for _, v := range p.vals {
				if cell.Equal(v) {
					return true, nil
				}
			}
			return false, nil
		case "BETWEEN":
			ge, err := cell.Compare(">=", p.vals[0])
			if err != nil || !ge {
				return false, err
			}
			return cell.Compare("<=", p.vals[1])
		default:
			return cell.Compare(p.op, p.val)
		}
	}

	// Nested-loop join with early predicate/join filtering per level.
	var tuples [][]int
	cur := make([]int, len(bnd.tables))
	var recurse func(level int) error
	recurse = func(level int) error {
		if level == len(bnd.tables) {
			tuples = append(tuples, append([]int(nil), cur...))
			return nil
		}
		t := bnd.tables[level]
		for ri := range t.rows {
			cur[level] = ri
			ok := true
			for _, p := range preds {
				if p.f != level {
					continue
				}
				m, err := evalPred(t.rows[ri][p.c], p)
				if err != nil {
					return err
				}
				if !m {
					ok = false
					break
				}
			}
			if ok {
				for _, j := range joins {
					var lv, rv Value
					switch {
					case j.lf == level && j.rf < level:
						lv = t.rows[ri][j.lc]
						rv = bnd.tables[j.rf].rows[cur[j.rf]][j.rc]
					case j.rf == level && j.lf < level:
						lv = bnd.tables[j.lf].rows[cur[j.lf]][j.lc]
						rv = t.rows[ri][j.rc]
					case j.lf == level && j.rf == level:
						lv = t.rows[ri][j.lc]
						rv = t.rows[ri][j.rc]
					default:
						continue
					}
					if !lv.Equal(rv) {
						ok = false
						break
					}
				}
			}
			if ok {
				if err := recurse(level + 1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, err
	}

	// Projection.
	hasAgg := false
	for _, s := range q.Select {
		if s.Agg != "" {
			hasAgg = true
		}
	}
	res := &Result{}
	for _, s := range q.Select {
		res.Columns = append(res.Columns, s.String())
	}

	cellOf := func(tuple []int, c sqlparse.ColumnRef) (Value, error) {
		f, ci, err := lookup(c)
		if err != nil {
			return Value{}, err
		}
		return bnd.tables[f].rows[tuple[f]][ci], nil
	}

	if hasAgg || len(q.GroupBy) > 0 {
		// Group tuples by the GROUP BY key.
		groups := make(map[string][][]int)
		var order []string
		for _, tup := range tuples {
			var key strings.Builder
			for _, gc := range q.GroupBy {
				v, err := cellOf(tup, gc)
				if err != nil {
					return nil, err
				}
				key.WriteString(v.String())
				key.WriteByte('\x00')
			}
			k := key.String()
			if _, seen := groups[k]; !seen {
				order = append(order, k)
			}
			groups[k] = append(groups[k], tup)
		}
		if len(q.GroupBy) == 0 && len(order) == 0 {
			// Aggregate over empty input still yields one row.
			order = append(order, "")
			groups[""] = nil
		}
		for _, k := range order {
			tups := groups[k]
			var row []Value
			for _, s := range q.Select {
				v, err := evalAggregate(s, tups, cellOf)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			res.Rows = append(res.Rows, row)
		}
	} else {
		for _, tup := range tuples {
			var row []Value
			for _, s := range q.Select {
				if s.Star {
					for f, t := range bnd.tables {
						for ci := range t.rel.Attributes {
							row = append(row, t.rows[tup[f]][ci])
						}
					}
					continue
				}
				v, err := cellOf(tup, s.Column)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			res.Rows = append(res.Rows, row)
		}
	}

	if q.Distinct || distinctFuncForm(q) {
		res.Rows = dedupeRows(res.Rows)
	}

	// ORDER BY over projected columns (supports ordering by a projection
	// that appears in the SELECT list, by matching rendered expressions).
	if len(q.OrderBy) > 0 {
		idx := make([]int, 0, len(q.OrderBy))
		desc := make([]bool, 0, len(q.OrderBy))
		for _, o := range q.OrderBy {
			pos := -1
			for i, c := range res.Columns {
				if c == o.Expr.String() {
					pos = i
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("db: ORDER BY %s must appear in SELECT list", o.Expr.String())
			}
			idx = append(idx, pos)
			desc = append(desc, o.Desc)
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for k, pos := range idx {
				va, vb := res.Rows[a][pos], res.Rows[b][pos]
				c := compareValues(va, vb)
				if c == 0 {
					continue
				}
				if desc[k] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// distinctFuncForm reports whether the query uses SELECT DISTINCT(col).
func distinctFuncForm(q *sqlparse.Query) bool {
	return len(q.Select) == 1 && q.Select[0].Distinct && q.Select[0].Agg == ""
}

func compareValues(a, b Value) int {
	if a.IsNum && b.IsNum {
		switch {
		case a.N < b.N:
			return -1
		case a.N > b.N:
			return 1
		}
		return 0
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	}
	return 0
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		var key strings.Builder
		for _, v := range r {
			key.WriteString(v.String())
			key.WriteByte('\x00')
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// evalAggregate computes one SELECT item over a tuple group.
func evalAggregate(s sqlparse.SelectItem, tups [][]int, cellOf func([]int, sqlparse.ColumnRef) (Value, error)) (Value, error) {
	if s.Agg == "" {
		if len(tups) == 0 {
			return Value{}, nil
		}
		return cellOf(tups[0], s.Column)
	}
	if s.Agg == "COUNT" && s.Star {
		return Num(float64(len(tups))), nil
	}
	var vals []Value
	seen := make(map[string]bool)
	for _, tup := range tups {
		v, err := cellOf(tup, s.Column)
		if err != nil {
			return Value{}, err
		}
		if s.Distinct {
			k := v.String()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch s.Agg {
	case "COUNT":
		return Num(float64(len(vals))), nil
	case "SUM", "AVG":
		var sum float64
		for _, v := range vals {
			if !v.IsNum {
				return Value{}, fmt.Errorf("db: %s over non-numeric column", s.Agg)
			}
			sum += v.N
		}
		if s.Agg == "AVG" {
			if len(vals) == 0 {
				return Num(0), nil
			}
			return Num(sum / float64(len(vals))), nil
		}
		return Num(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Value{}, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := compareValues(v, best)
			if (s.Agg == "MIN" && c < 0) || (s.Agg == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Value{}, fmt.Errorf("db: unknown aggregate %q", s.Agg)
	}
}
