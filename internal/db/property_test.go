package db

import (
	"fmt"
	"testing"

	"templar/internal/sqlparse"
)

// TestExecuteFilterMatchesBruteForce cross-checks the executor's single
// table filtering against a direct scan for generated predicates.
func TestExecuteFilterMatchesBruteForce(t *testing.T) {
	d := academicDB(t)
	tab := d.Table("publication")
	rows := tab.Rows()
	yearIdx := tab.ColumnIndex("year")
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for _, op := range ops {
		for _, y := range []float64{1990, 1998, 2001, 2005, 2010} {
			src := fmt.Sprintf("SELECT p.pid FROM publication p WHERE p.year %s %g", op, y)
			q := sqlparse.MustParse(src)
			res, err := d.Execute(q)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			want := 0
			for _, r := range rows {
				ok, err := r[yearIdx].Compare(op, Num(y))
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					want++
				}
			}
			if len(res.Rows) != want {
				t.Errorf("%s: executor %d rows, brute force %d", src, len(res.Rows), want)
			}
		}
	}
}

// TestExecuteJoinMatchesBruteForce cross-checks the nested-loop join
// against a manual double loop.
func TestExecuteJoinMatchesBruteForce(t *testing.T) {
	d := academicDB(t)
	q := sqlparse.MustParse("SELECT p.pid, j.jid FROM publication p, journal j WHERE p.jid = j.jid")
	res, err := d.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	pubs := d.Table("publication").Rows()
	jours := d.Table("journal").Rows()
	pj := d.Table("publication").ColumnIndex("jid")
	jj := d.Table("journal").ColumnIndex("jid")
	want := 0
	for _, p := range pubs {
		for _, j := range jours {
			if p[pj].Equal(j[jj]) {
				want++
			}
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("join: executor %d, brute force %d", len(res.Rows), want)
	}
}

// TestFindNumericAttrsConsistentWithPredicateNonEmpty: every attribute
// returned by FindNumericAttrs must satisfy PredicateNonEmpty, and every
// non-key numeric attribute satisfying it must be returned.
func TestFindNumericAttrsConsistentWithPredicateNonEmpty(t *testing.T) {
	d := academicDB(t)
	for _, tc := range []struct {
		n  float64
		op string
	}{{2000, ">"}, {35, "="}, {1998, "<="}, {100, "<"}} {
		got := make(map[string]bool)
		for _, m := range d.FindNumericAttrs(tc.n, tc.op) {
			got[m.Qualified()] = true
			if !d.PredicateNonEmpty(m.Relation, m.Attribute, tc.op, Num(tc.n)) {
				t.Errorf("%s %s %g: returned but empty", m.Qualified(), tc.op, tc.n)
			}
		}
		for _, q := range d.Schema().NumericAttributes() {
			rel, attr := splitQ(t, q)
			if d.IsKeyColumn(rel, attr) {
				continue
			}
			if d.PredicateNonEmpty(rel, attr, tc.op, Num(tc.n)) && !got[q] {
				t.Errorf("%s %s %g: satisfiable but not returned", q, tc.op, tc.n)
			}
		}
	}
}

func splitQ(t *testing.T, q string) (string, string) {
	t.Helper()
	for i := 0; i < len(q); i++ {
		if q[i] == '.' {
			return q[:i], q[i+1:]
		}
	}
	t.Fatalf("malformed %q", q)
	return "", ""
}

// TestFullTextPrefixSemantics: boolean-mode matching requires EVERY query
// stem to prefix-match some token of the value.
func TestFullTextPrefixSemantics(t *testing.T) {
	d := academicDB(t)
	tab := d.Table("publication")
	// "efficient quer" -> stems [effici, quer]; only one title has both.
	vals := tab.MatchAll("title", []string{"effici", "quer"})
	if len(vals) != 1 {
		t.Fatalf("MatchAll = %v", vals)
	}
	// A stem matching nothing empties the result.
	if got := tab.MatchAll("title", []string{"effici", "zzz"}); got != nil {
		t.Fatalf("MatchAll = %v", got)
	}
	// Empty query matches nothing (never everything).
	if got := tab.MatchAll("title", nil); got != nil {
		t.Fatalf("MatchAll(nil) = %v", got)
	}
	// Unknown column.
	if got := tab.MatchAll("nope", []string{"x"}); got != nil {
		t.Fatalf("MatchAll unknown column = %v", got)
	}
}
