// Package db implements the in-memory relational database engine that
// Templar's Keyword Mapper probes. It replaces the MySQL 5.7 instance used in
// the paper's evaluation, reproducing the two capabilities Algorithms 2–3
// rely on:
//
//   - boolean-mode full-text search over Porter-stemmed tokens
//     (MATCH(attr) AGAINST('+tok1* +tok2*' IN BOOLEAN MODE), §V-A), and
//   - predicate probing: testing whether a candidate numeric predicate
//     selects a non-empty row set (exec(c) in SCOREANDPRUNE, §V-B).
//
// The engine also includes a small executor for single-block SELECT queries
// so examples can run end-to-end against real rows.
package db

import (
	"fmt"
	"strconv"
)

// Value is a typed cell value: either a string or a number.
type Value struct {
	IsNum bool
	S     string
	N     float64
}

// Str builds a string value.
func Str(s string) Value { return Value{S: s} }

// Num builds a numeric value.
func Num(n float64) Value { return Value{IsNum: true, N: n} }

// String renders the value for display.
func (v Value) String() string {
	if v.IsNum {
		return strconv.FormatFloat(v.N, 'f', -1, 64)
	}
	return v.S
}

// Equal reports deep equality.
func (v Value) Equal(o Value) bool {
	if v.IsNum != o.IsNum {
		return false
	}
	if v.IsNum {
		return v.N == o.N
	}
	return v.S == o.S
}

// Compare applies a SQL comparison operator between v and o. String
// comparisons use lexicographic order; LIKE treats o.S as a plain substring
// when it carries no SQL wildcards, otherwise % wildcards at either end are
// honored. Comparing values of different types returns false.
func (v Value) Compare(op string, o Value) (bool, error) {
	if op == "LIKE" {
		if v.IsNum || o.IsNum {
			return false, nil
		}
		return likeMatch(v.S, o.S), nil
	}
	if v.IsNum != o.IsNum {
		return false, nil
	}
	var c int
	if v.IsNum {
		switch {
		case v.N < o.N:
			c = -1
		case v.N > o.N:
			c = 1
		}
	} else {
		switch {
		case v.S < o.S:
			c = -1
		case v.S > o.S:
			c = 1
		}
	}
	switch op {
	case "=":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("db: unknown operator %q", op)
	}
}

// likeMatch implements the limited LIKE subset used by the benchmarks:
// optional leading/trailing % wildcards around a literal needle.
func likeMatch(s, pattern string) bool {
	leading := len(pattern) > 0 && pattern[0] == '%'
	trailing := len(pattern) > 0 && pattern[len(pattern)-1] == '%'
	needle := pattern
	if leading {
		needle = needle[1:]
	}
	if trailing && len(needle) > 0 && needle[len(needle)-1] == '%' {
		needle = needle[:len(needle)-1]
	}
	switch {
	case leading && trailing:
		return contains(s, needle)
	case leading:
		return len(s) >= len(needle) && s[len(s)-len(needle):] == needle
	case trailing:
		return len(s) >= len(needle) && s[:len(needle)] == needle
	default:
		return s == pattern
	}
}

func contains(s, sub string) bool {
	if sub == "" {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
