package db

import (
	"testing"

	"templar/internal/schema"
)

// academicDB builds a small MAS-like database for testing.
func academicDB(t *testing.T) *Database {
	t.Helper()
	g := schema.NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddRelation(schema.Relation{Name: "journal", Attributes: []schema.Attribute{
		{Name: "jid", Type: schema.Number, PrimaryKey: true},
		{Name: "name", Type: schema.Text},
	}}))
	must(g.AddRelation(schema.Relation{Name: "publication", Attributes: []schema.Attribute{
		{Name: "pid", Type: schema.Number, PrimaryKey: true},
		{Name: "title", Type: schema.Text},
		{Name: "year", Type: schema.Number},
		{Name: "citations", Type: schema.Number},
		{Name: "jid", Type: schema.Number},
	}}))
	must(g.AddForeignKey(schema.ForeignKey{FromRel: "publication", FromAttr: "jid", ToRel: "journal", ToAttr: "jid"}))
	d := New(g)
	d.MustInsert("journal", []Value{Num(1), Str("TKDE")})
	d.MustInsert("journal", []Value{Num(2), Str("TMC")})
	d.MustInsert("publication", []Value{Num(10), Str("Efficient Query Processing in Relational Databases"), Num(2001), Num(35), Num(1)})
	d.MustInsert("publication", []Value{Num(11), Str("Mobile Computing Surveys"), Num(1998), Num(12), Num(2)})
	d.MustInsert("publication", []Value{Num(12), Str("Keyword Search over Databases"), Num(2005), Num(70), Num(1)})
	return d
}

func TestInsertTypeChecking(t *testing.T) {
	d := academicDB(t)
	if err := d.Insert("journal", []Value{Str("bad"), Str("x")}); err == nil {
		t.Fatal("expected type error for string in numeric column")
	}
	if err := d.Insert("journal", []Value{Num(3)}); err == nil {
		t.Fatal("expected arity error")
	}
	if err := d.Insert("nope", []Value{Num(3)}); err == nil {
		t.Fatal("expected unknown relation error")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Saving Private Ryan (1998)")
	want := []string{"saving", "private", "ryan", "1998"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v", got)
		}
	}
	if len(Tokenize("")) != 0 || len(Tokenize("!!!")) != 0 {
		t.Fatal("empty tokenization")
	}
}

func TestFindTextAttrsBooleanMode(t *testing.T) {
	d := academicDB(t)
	// "relational databases" stems to [relat, databas]; only one title
	// contains both prefixes.
	matches := d.FindTextAttrs("relational databases")
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	m := matches[0]
	if m.Qualified() != "publication.title" || len(m.Values) != 1 {
		t.Fatalf("match = %+v", m)
	}
	// Single token matching multiple rows in the same attribute.
	matches = d.FindTextAttrs("databases")
	if len(matches) != 1 || len(matches[0].Values) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
}

func TestFindTextAttrsDropsSchemaNameTokens(t *testing.T) {
	d := academicDB(t)
	// The token "journal" matches the relation name and is dropped when
	// searching journal.name; "TKDE" alone then matches.
	matches := d.FindTextAttrs("journal TKDE")
	found := false
	for _, m := range matches {
		if m.Qualified() == "journal.name" {
			found = true
			if len(m.Values) != 1 || m.Values[0] != "TKDE" {
				t.Fatalf("values = %v", m.Values)
			}
		}
	}
	if !found {
		t.Fatalf("journal.name not matched: %v", matches)
	}
}

func TestFindTextAttrsAllTokensSchemaNames(t *testing.T) {
	d := academicDB(t)
	// If every token matches the attribute/relation name the search is
	// skipped for that attribute (would otherwise match everything).
	for _, m := range d.FindTextAttrs("journal name") {
		if m.Qualified() == "journal.name" {
			t.Fatalf("empty-query attribute should be skipped, got %v", m)
		}
	}
}

func TestFindTextAttrsNoMatch(t *testing.T) {
	d := academicDB(t)
	if got := d.FindTextAttrs("zebra unicorn"); got != nil {
		t.Fatalf("expected no matches, got %v", got)
	}
	if got := d.FindTextAttrs(""); got != nil {
		t.Fatalf("expected no matches for empty keyword, got %v", got)
	}
}

func TestFindNumericAttrs(t *testing.T) {
	d := academicDB(t)
	// year > 2000 matches publication.year (2001, 2005) but also
	// citations? 35 and 70 are > 2000? No. So only year.
	got := d.FindNumericAttrs(2000, ">")
	if len(got) != 1 || got[0].Qualified() != "publication.year" {
		t.Fatalf("FindNumericAttrs = %v", got)
	}
	// = 70 matches only citations (no year equals 70).
	got = d.FindNumericAttrs(70, "=")
	if len(got) != 1 || got[0].Qualified() != "publication.citations" {
		t.Fatalf("FindNumericAttrs = %v", got)
	}
	// > 10 matches year and citations, but never id columns.
	got = d.FindNumericAttrs(10, ">")
	if len(got) != 2 {
		t.Fatalf("FindNumericAttrs = %v", got)
	}
	for _, m := range got {
		if m.Attribute == "jid" || m.Attribute == "pid" {
			t.Fatalf("key column leaked: %v", m)
		}
	}
}

func TestFindNumericAttrsDefaultOp(t *testing.T) {
	d := academicDB(t)
	got := d.FindNumericAttrs(1998, "")
	if len(got) != 1 || got[0].Qualified() != "publication.year" {
		t.Fatalf("FindNumericAttrs eq = %v", got)
	}
}

func TestPredicateNonEmpty(t *testing.T) {
	d := academicDB(t)
	if !d.PredicateNonEmpty("publication", "year", ">", Num(2000)) {
		t.Fatal("year > 2000 should be non-empty")
	}
	if d.PredicateNonEmpty("publication", "year", ">", Num(2010)) {
		t.Fatal("year > 2010 should be empty")
	}
	if d.PredicateNonEmpty("nope", "year", ">", Num(0)) {
		t.Fatal("unknown relation should be empty")
	}
	if d.PredicateNonEmpty("publication", "nope", ">", Num(0)) {
		t.Fatal("unknown column should be empty")
	}
	if !d.PredicateNonEmpty("journal", "name", "=", Str("TKDE")) {
		t.Fatal("name = TKDE should be non-empty")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a    Value
		op   string
		b    Value
		want bool
	}{
		{Num(1), "<", Num(2), true},
		{Num(2), "<=", Num(2), true},
		{Num(3), ">", Num(2), true},
		{Num(2), ">=", Num(3), false},
		{Num(2), "=", Num(2), true},
		{Num(2), "!=", Num(2), false},
		{Str("a"), "<", Str("b"), true},
		{Str("abc"), "LIKE", Str("abc"), true},
		{Str("abcdef"), "LIKE", Str("abc%"), true},
		{Str("xxabc"), "LIKE", Str("%abc"), true},
		{Str("xxabcyy"), "LIKE", Str("%abc%"), true},
		{Str("xyz"), "LIKE", Str("%abc%"), false},
		{Num(1), "=", Str("1"), false}, // cross-type
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.op, c.b)
		if err != nil {
			t.Fatalf("%v %s %v: %v", c.a, c.op, c.b, err)
		}
		if got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	if _, err := Num(1).Compare("~", Num(2)); err == nil {
		t.Fatal("expected unknown operator error")
	}
}

func TestDistinctValues(t *testing.T) {
	d := academicDB(t)
	vals := d.Table("journal").DistinctValues("name")
	if len(vals) != 2 || vals[0] != "TKDE" || vals[1] != "TMC" {
		t.Fatalf("DistinctValues = %v", vals)
	}
	if d.Table("journal").DistinctValues("jid") != nil {
		t.Fatal("numeric column should have no distinct text values")
	}
}
