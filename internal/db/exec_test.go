package db

import (
	"testing"

	"templar/internal/sqlparse"
)

func execQuery(t *testing.T, d *Database, src string) *Result {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExecuteSimpleFilter(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT p.title FROM publication p WHERE p.year > 2000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExecuteJoin(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT p.title FROM journal j, publication p WHERE j.name = 'TKDE' AND j.jid = p.jid")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].S == "Mobile Computing Surveys" {
			t.Fatal("TMC publication leaked into TKDE join")
		}
	}
}

func TestExecuteAggregateGroupBy(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT j.name, COUNT(p.pid) FROM journal j, publication p WHERE j.jid = p.jid GROUP BY j.name ORDER BY COUNT(p.pid) DESC")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "TKDE" || res.Rows[0][1].N != 2 {
		t.Fatalf("row0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "TMC" || res.Rows[1][1].N != 1 {
		t.Fatalf("row1 = %v", res.Rows[1])
	}
}

func TestExecuteCountStarOverEmpty(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT COUNT(*) FROM publication p WHERE p.year > 3000")
	if len(res.Rows) != 1 || res.Rows[0][0].N != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExecuteAggregates(t *testing.T) {
	d := academicDB(t)
	for _, tc := range []struct {
		src  string
		want float64
	}{
		{"SELECT SUM(p.citations) FROM publication p", 117},
		{"SELECT AVG(p.citations) FROM publication p", 39},
		{"SELECT MIN(p.year) FROM publication p", 1998},
		{"SELECT MAX(p.year) FROM publication p", 2005},
		{"SELECT COUNT(p.pid) FROM publication p", 3},
	} {
		res := execQuery(t, d, tc.src)
		if len(res.Rows) != 1 || res.Rows[0][0].N != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, res.Rows, tc.want)
		}
	}
}

func TestExecuteDistinct(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT DISTINCT p.jid FROM publication p")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = execQuery(t, d, "SELECT DISTINCT(p.jid) FROM publication p")
	if len(res.Rows) != 2 {
		t.Fatalf("func-form rows = %v", res.Rows)
	}
}

func TestExecuteSelfJoin(t *testing.T) {
	d := academicDB(t)
	// A pair of publications in the same journal pinned by year predicates.
	res := execQuery(t, d, "SELECT p1.title, p2.title FROM publication p1, publication p2 WHERE p1.jid = p2.jid AND p1.year = 2001 AND p2.year = 2005")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "Efficient Query Processing in Relational Databases" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestExecuteOrderByLimit(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT p.title, p.year FROM publication p ORDER BY p.year DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][1].N != 2005 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// ORDER BY must reference a projected expression.
	q := sqlparse.MustParse("SELECT p.title FROM publication p ORDER BY p.year")
	if _, err := d.Execute(q); err == nil {
		t.Fatal("expected ORDER BY resolution error")
	}
}

func TestExecuteErrors(t *testing.T) {
	d := academicDB(t)
	for _, src := range []string{
		"SELECT x.title FROM nonexistent x",
		"SELECT p.nope FROM publication p",
		"SELECT z.title FROM publication p",
		"SELECT p.title FROM publication p WHERE p.year ?op ?val",
	} {
		q := sqlparse.MustParse(src)
		if _, err := d.Execute(q); err == nil {
			t.Errorf("Execute(%q): expected error", src)
		}
	}
}

func TestExecuteUnqualifiedColumns(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT title FROM publication WHERE year > 2000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestResultString(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT j.name FROM journal j")
	s := res.String()
	if s == "" {
		t.Fatal("empty render")
	}
}

func BenchmarkExecuteJoin(b *testing.B) {
	t := &testing.T{}
	d := academicDB(t)
	q := sqlparse.MustParse("SELECT p.title FROM journal j, publication p WHERE j.name = 'TKDE' AND j.jid = p.jid")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}
