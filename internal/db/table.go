package db

import (
	"fmt"
	"sort"
	"strings"

	"templar/internal/schema"
	"templar/internal/stem"
)

// Table holds the rows of one relation together with its full-text and
// distinct-value indexes.
type Table struct {
	rel    schema.Relation
	colIdx map[string]int
	rows   [][]Value
	// fulltext maps column index -> stemmed token -> set of distinct values
	// (by row value, not row id: DISTINCT(?attr) semantics from §V-A).
	fulltext map[int]map[string]map[string]bool
	// distinct maps column index -> distinct value set, for exact lookups.
	distinct map[int]map[string]bool
}

// newTable builds an empty table for a relation definition.
func newTable(rel schema.Relation) *Table {
	t := &Table{
		rel:      rel,
		colIdx:   make(map[string]int, len(rel.Attributes)),
		fulltext: make(map[int]map[string]map[string]bool),
		distinct: make(map[int]map[string]bool),
	}
	for i, a := range rel.Attributes {
		t.colIdx[a.Name] = i
		if a.Type == schema.Text {
			t.fulltext[i] = make(map[string]map[string]bool)
			t.distinct[i] = make(map[string]bool)
		}
	}
	return t
}

// Name returns the relation name.
func (t *Table) Name() string { return t.rel.Name }

// Len returns the row count.
func (t *Table) Len() int { return len(t.rows) }

// Insert appends a row. Values must match the declared column count and
// types.
func (t *Table) Insert(row []Value) error {
	if len(row) != len(t.rel.Attributes) {
		return fmt.Errorf("db: %s: row has %d values, want %d", t.rel.Name, len(row), len(t.rel.Attributes))
	}
	for i, v := range row {
		want := t.rel.Attributes[i].Type == schema.Number
		if v.IsNum != want {
			return fmt.Errorf("db: %s.%s: value %v has wrong type", t.rel.Name, t.rel.Attributes[i].Name, v)
		}
	}
	t.rows = append(t.rows, append([]Value(nil), row...))
	for ci, idx := range t.fulltext {
		val := row[ci].S
		if !t.distinct[ci][val] {
			t.distinct[ci][val] = true
		}
		for _, tok := range Tokenize(val) {
			s := stem.Stem(tok)
			set := idx[s]
			if set == nil {
				set = make(map[string]bool)
				idx[s] = set
			}
			set[val] = true
		}
	}
	return nil
}

// Tokenize lowercases and splits a string on non-alphanumeric boundaries.
func Tokenize(s string) []string {
	var out []string
	var cur []byte
	flush := func() {
		if len(cur) > 0 {
			out = append(out, string(cur))
			cur = cur[:0]
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			cur = append(cur, c)
		case c >= 'A' && c <= 'Z':
			cur = append(cur, c+'a'-'A')
		default:
			flush()
		}
	}
	flush()
	return out
}

// MatchAll returns the distinct values of the given column that contain, for
// every query stem, at least one indexed token whose stem has the query stem
// as a prefix — boolean-mode "+tok*" AND semantics.
func (t *Table) MatchAll(column string, queryStems []string) []string {
	ci, ok := t.colIdx[column]
	if !ok {
		return nil
	}
	idx, ok := t.fulltext[ci]
	if !ok || len(queryStems) == 0 {
		return nil
	}
	var result map[string]bool
	for _, qs := range queryStems {
		matched := make(map[string]bool)
		for tok, vals := range idx {
			if strings.HasPrefix(tok, qs) {
				for v := range vals {
					matched[v] = true
				}
			}
		}
		if result == nil {
			result = matched
		} else {
			for v := range result {
				if !matched[v] {
					delete(result, v)
				}
			}
		}
		if len(result) == 0 {
			return nil
		}
	}
	out := make([]string, 0, len(result))
	for v := range result {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// AnyMatch reports whether any row satisfies "column op value". It is the
// exec(c) ≠ ∅ probe from SCOREANDPRUNE.
func (t *Table) AnyMatch(column, op string, value Value) (bool, error) {
	ci, ok := t.colIdx[column]
	if !ok {
		return false, fmt.Errorf("db: %s: unknown column %q", t.rel.Name, column)
	}
	for _, row := range t.rows {
		ok, err := row[ci].Compare(op, value)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// DistinctValues returns the sorted distinct values of a text column.
func (t *Table) DistinctValues(column string) []string {
	ci, ok := t.colIdx[column]
	if !ok {
		return nil
	}
	set, ok := t.distinct[ci]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Rows returns a copy of all rows (for the executor and tests).
func (t *Table) Rows() [][]Value {
	out := make([][]Value, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]Value(nil), r...)
	}
	return out
}

// ColumnIndex returns the position of a column, or -1.
func (t *Table) ColumnIndex(column string) int {
	if i, ok := t.colIdx[column]; ok {
		return i
	}
	return -1
}
