package db

import (
	"testing"

	"templar/internal/sqlparse"
)

func TestExecuteInPredicate(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT j.name FROM journal j WHERE j.name IN ('TKDE', 'NOPE')")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "TKDE" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = execQuery(t, d, "SELECT p.title FROM publication p WHERE p.year IN (1998, 2005)")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExecuteBetweenPredicate(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT p.title FROM publication p WHERE p.year BETWEEN 1998 AND 2001")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Inclusive bounds.
	res = execQuery(t, d, "SELECT p.title FROM publication p WHERE p.year BETWEEN 2005 AND 2005")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Empty range.
	res = execQuery(t, d, "SELECT p.title FROM publication p WHERE p.year BETWEEN 2006 AND 2004")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExecuteInBetweenWithJoin(t *testing.T) {
	d := academicDB(t)
	res := execQuery(t, d, "SELECT p.title FROM journal j, publication p WHERE j.name IN ('TKDE') AND p.year BETWEEN 2000 AND 2010 AND j.jid = p.jid")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExecutePlaceholderInListRejected(t *testing.T) {
	d := academicDB(t)
	q := sqlparse.MustParse("SELECT p.title FROM publication p WHERE p.year IN (?val)")
	if _, err := d.Execute(q); err == nil {
		t.Fatal("placeholder IN list must not execute")
	}
	q = sqlparse.MustParse("SELECT p.title FROM publication p WHERE p.year BETWEEN ?val AND 2000")
	if _, err := d.Execute(q); err == nil {
		t.Fatal("placeholder BETWEEN must not execute")
	}
}
