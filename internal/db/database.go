package db

import (
	"fmt"
	"sort"
	"sync"

	"templar/internal/schema"
	"templar/internal/stem"
)

// Database binds a schema graph to table storage.
type Database struct {
	graph  *schema.Graph
	tables map[string]*Table

	// keyCols memoizes keyColumns: the set depends only on the schema
	// graph, which is fixed at construction, and IsKeyColumn sits on the
	// keyword-mapping hot path where rebuilding the map per call dominated
	// the allocation profile.
	keyOnce sync.Once
	keyCols map[string]bool
}

// New creates an empty database over a schema graph, with one table per
// relation.
func New(g *schema.Graph) *Database {
	d := &Database{graph: g, tables: make(map[string]*Table)}
	for _, rn := range g.Relations() {
		rel, _ := g.Relation(rn)
		d.tables[rn] = newTable(*rel)
	}
	return d
}

// Schema returns the schema graph.
func (d *Database) Schema() *schema.Graph { return d.graph }

// Table returns the table for a relation, or nil.
func (d *Database) Table(rel string) *Table { return d.tables[rel] }

// Insert adds a row to a relation.
func (d *Database) Insert(rel string, row []Value) error {
	t, ok := d.tables[rel]
	if !ok {
		return fmt.Errorf("db: unknown relation %q", rel)
	}
	return t.Insert(row)
}

// MustInsert is Insert that panics on error; for dataset generators whose
// rows are statically well-typed.
func (d *Database) MustInsert(rel string, row []Value) {
	if err := d.Insert(rel, row); err != nil {
		panic(err)
	}
}

// TextMatch is one full-text hit: a qualified text attribute and the
// distinct values matching all query tokens.
type TextMatch struct {
	Relation  string
	Attribute string
	Values    []string
}

// Qualified returns "relation.attribute".
func (m TextMatch) Qualified() string { return m.Relation + "." + m.Attribute }

// FindTextAttrs implements findTextAttrs from Algorithm 2: it stems every
// whitespace-separated token of the keyword and runs a boolean-mode prefix
// search over every text attribute, returning attributes with at least one
// distinct value matching all tokens. skipTokens lists raw tokens to drop
// from the search for a given attribute when they exactly match the stemmed
// attribute or relation name (the "movie Saving Private Ryan" rule of §V-A);
// pass nil to apply the rule automatically.
func (d *Database) FindTextAttrs(keyword string) []TextMatch {
	rawTokens := Tokenize(keyword)
	if len(rawTokens) == 0 {
		return nil
	}
	stems := make([]string, len(rawTokens))
	for i, tok := range rawTokens {
		stems[i] = stem.Stem(tok)
	}
	var out []TextMatch
	for _, rn := range d.relationNames() {
		t := d.tables[rn]
		relStem := stem.Stem(rn)
		for _, a := range t.rel.Attributes {
			if a.Type != schema.Text {
				continue
			}
			attrStem := stem.Stem(a.Name)
			// Drop tokens that exactly match the stemmed attribute or
			// relation name so they do not over-constrain the search.
			query := stems[:0:0]
			for _, s := range stems {
				if s == relStem || s == attrStem {
					continue
				}
				query = append(query, s)
			}
			if len(query) == 0 {
				continue
			}
			vals := t.MatchAll(a.Name, query)
			if len(vals) > 0 {
				out = append(out, TextMatch{Relation: rn, Attribute: a.Name, Values: vals})
			}
		}
	}
	return out
}

// NumericMatch is a numeric attribute satisfying a probe predicate.
type NumericMatch struct {
	Relation  string
	Attribute string
}

// Qualified returns "relation.attribute".
func (m NumericMatch) Qualified() string { return m.Relation + "." + m.Attribute }

// FindNumericAttrs implements findNumericAttrs from Algorithm 2: all numeric
// attributes containing at least one value satisfying "attr op n". Primary
// and foreign key columns are excluded — surrogate ids are never the target
// of a user's numeric predicate, and the paper's candidate set is built from
// value attributes.
func (d *Database) FindNumericAttrs(n float64, op string) []NumericMatch {
	if op == "" {
		op = "="
	}
	keyCols := d.keyColumns()
	var out []NumericMatch
	for _, rn := range d.relationNames() {
		t := d.tables[rn]
		for _, a := range t.rel.Attributes {
			if a.Type != schema.Number || keyCols[rn+"."+a.Name] {
				continue
			}
			ok, err := t.AnyMatch(a.Name, op, Num(n))
			if err == nil && ok {
				out = append(out, NumericMatch{Relation: rn, Attribute: a.Name})
			}
		}
	}
	return out
}

// PredicateNonEmpty implements exec(c) ≠ ∅: whether "rel.attr op value"
// selects at least one row.
func (d *Database) PredicateNonEmpty(rel, attr, op string, value Value) bool {
	t, ok := d.tables[rel]
	if !ok {
		return false
	}
	match, err := t.AnyMatch(attr, op, value)
	return err == nil && match
}

// IsKeyColumn reports whether rel.attr participates in a primary key or an
// FK-PK edge. Surrogate key columns are never sensible targets for keyword
// mapping (users do not ask for ids), so the Keyword Mapper excludes them
// from SELECT-context candidates, mirroring how FindNumericAttrs excludes
// them from predicate candidates.
func (d *Database) IsKeyColumn(rel, attr string) bool {
	return d.keyColumns()[rel+"."+attr]
}

// keyColumns returns the set of "rel.attr" participating in primary keys or
// FK-PK edges. Computed once; callers must not mutate the returned map.
func (d *Database) keyColumns() map[string]bool {
	d.keyOnce.Do(func() {
		keys := make(map[string]bool)
		for _, rn := range d.graph.Relations() {
			rel, _ := d.graph.Relation(rn)
			for _, a := range rel.Attributes {
				if a.PrimaryKey {
					keys[rn+"."+a.Name] = true
				}
			}
		}
		for _, fk := range d.graph.ForeignKeys() {
			keys[fk.FromRel+"."+fk.FromAttr] = true
			keys[fk.ToRel+"."+fk.ToAttr] = true
		}
		d.keyCols = keys
	})
	return d.keyCols
}

func (d *Database) relationNames() []string {
	out := d.graph.Relations()
	sort.Strings(out)
	return out
}
