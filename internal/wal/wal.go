package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Segment layout (all multi-byte integers little-endian; "uv" is an
// unsigned varint as in encoding/binary):
//
//	header:
//	  offset  size  field
//	  0       8     magic "TQFGWLOG"
//	  8       4     format version (uint32)
//	  12      8     base sequence number (uint64): the snapshot state this
//	                segment's records apply on top of — every record in the
//	                segment has seq > base, consecutively
//	  20      …     uv len + bytes   dataset name (UTF-8)
//	  …       4     CRC-32C (Castagnoli) over every header byte before it
//
//	record (repeated until EOF):
//	  4             payload length in bytes (uint32)
//	  …             payload:
//	                  uv              sequence number (previous + 1)
//	                  1               kind: 0 = query batch, 1 = session
//	                  kind 0:         uv N, then N × (uv count,
//	                                  uv len + bytes SQL)
//	                  kind 1:         uv session count, 8 bytes decay
//	                                  (float64 bits), uv N, then
//	                                  N × (uv len + bytes SQL)
//	  4             CRC-32C over the payload
//
// The header checksum makes a torn or flipped header a hard, typed failure
// (the base sequence cannot be trusted, so nothing after it can be either);
// record damage is soft: scanning stops at the last intact record and Open
// truncates the tail, because record lengths chain — nothing past a broken
// record can be framed.
const (
	magic = "TQFGWLOG"
	// Version is the current segment format version written by Create.
	Version = 1

	fixedHeaderSize = len(magic) + 4 + 8
	crcSize         = 4
	// maxRecordBytes rejects absurd record lengths before allocation: a
	// single append is capped far below this by the serving layer's batch
	// and body limits, so anything larger is framing damage.
	maxRecordBytes = 1 << 28
)

// Typed failure modes of Scan and Open, mirroring the internal/store
// discipline: a reader dispatching on them can tell a foreign file
// (ErrBadMagic) from a short read (ErrTruncated), a bit flip (ErrChecksum),
// a format from the future (*UnsupportedVersionError) and a structurally
// invalid payload (ErrCorrupt).
var (
	ErrBadMagic  = errors.New("wal: not a templar write-ahead log (bad magic)")
	ErrTruncated = errors.New("wal: truncated record")
	ErrChecksum  = errors.New("wal: record checksum mismatch")
	ErrCorrupt   = errors.New("wal: corrupt record payload")
)

// UnsupportedVersionError reports a well-formed header whose format version
// this build cannot read.
type UnsupportedVersionError struct {
	Version uint32
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("wal: unsupported log format version %d (this build reads ≤ %d)", e.Version, Version)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Filename is the conventional file name for a dataset's write-ahead log
// inside a WAL directory ("MAS" → "mas.wal"). The rotated-out segment of an
// in-flight compaction lives beside it as "mas.wal.old".
func Filename(dataset string) string {
	return strings.ToLower(dataset) + ".wal"
}

// Entry is one SQL query inside a logged append.
type Entry struct {
	SQL string
	// Count is the query's multiplicity. Writers normalize it to ≥ 1 for
	// batch records; it is unused (0) in session records, whose multiplicity
	// is the record's Count.
	Count int
}

// Record is one durably logged append operation — exactly one acknowledged
// POST /{dataset}/log body, normalized (defaults applied) so replaying it
// is deterministic.
type Record struct {
	// Seq is the record's sequence number, assigned by Append: consecutive,
	// starting right after the segment's base.
	Seq uint64
	// Session marks an ordered-session append (cross-query decayed
	// co-occurrence evidence) rather than an independent batch.
	Session bool
	// Count is the session multiplicity (session records only).
	Count int
	// Decay is the per-step session decay in (0, 1] (session records only).
	Decay float64
	// Entries are the appended queries, in order.
	Entries []Entry
}

// appendRecord encodes rec (with seq already assigned) onto buf.
func appendRecord(buf []byte, rec *Record) []byte {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // payload length, patched below
	start := len(buf)
	buf = binary.AppendUvarint(buf, rec.Seq)
	if rec.Session {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(rec.Count))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Decay))
		buf = binary.AppendUvarint(buf, uint64(len(rec.Entries)))
		for _, e := range rec.Entries {
			buf = appendString(buf, e.SQL)
		}
	} else {
		buf = append(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Entries)))
		for _, e := range rec.Entries {
			buf = binary.AppendUvarint(buf, uint64(e.Count))
			buf = appendString(buf, e.SQL)
		}
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-start))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], castagnoli))
}

// decodeRecord parses one record payload (checksum already verified).
func decodeRecord(payload []byte) (*Record, error) {
	d := &decoder{data: payload}
	rec := &Record{Seq: d.uvarint("sequence number")}
	switch kind := d.byte("record kind"); kind {
	case 0:
		n := d.count("batch size")
		rec.Entries = make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			rec.Entries = append(rec.Entries, Entry{Count: d.int("query count"), SQL: d.string("query SQL")})
		}
	case 1:
		rec.Session = true
		rec.Count = d.int("session count")
		rec.Decay = d.float64("session decay")
		n := d.count("session size")
		rec.Entries = make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			rec.Entries = append(rec.Entries, Entry{SQL: d.string("query SQL")})
		}
	default:
		if d.err == nil {
			d.fail(fmt.Sprintf("record kind %d", kind), ErrCorrupt)
		}
	}
	if d.err == nil && d.off != len(d.data) {
		d.fail("payload end", ErrCorrupt)
	}
	if d.err != nil {
		return nil, d.err
	}
	return rec, nil
}

// encodeHeader builds a fresh segment header.
func encodeHeader(dataset string, baseSeq uint64) []byte {
	buf := make([]byte, 0, fixedHeaderSize+len(dataset)+8)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, baseSeq)
	buf = appendString(buf, dataset)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// ScanResult is a parsed in-memory view of one WAL segment: the header
// fields, every intact record in order, and how the scan ended.
type ScanResult struct {
	Dataset string
	BaseSeq uint64
	Records []*Record
	// ValidLen is the byte offset just past the last intact record — the
	// length recovery truncates the segment to.
	ValidLen int
	// TailErr is nil for a cleanly-ending segment, or the typed error
	// (ErrTruncated, ErrChecksum, ErrCorrupt) that stopped the scan;
	// everything past ValidLen is unrecoverable because record lengths
	// chain.
	TailErr error
}

// LastSeq returns the sequence number of the last intact record, or the
// segment base when it holds none.
func (s *ScanResult) LastSeq() uint64 {
	if n := len(s.Records); n > 0 {
		return s.Records[n-1].Seq
	}
	return s.BaseSeq
}

// Scan parses a WAL segment image. Header damage is a hard error (nil
// result): a header that fails its checksum means the base sequence — and
// therefore every record — cannot be trusted. Record damage is soft: the
// scan stops at the last intact record and reports the cause in TailErr.
// Scan never panics on hostile input.
func Scan(data []byte) (*ScanResult, error) {
	if len(data) < len(magic) {
		return nil, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if len(data) < fixedHeaderSize {
		return nil, ErrTruncated
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != Version {
		return nil, &UnsupportedVersionError{Version: v}
	}
	base := binary.LittleEndian.Uint64(data[len(magic)+4:])
	d := &decoder{data: data, off: fixedHeaderSize}
	dataset := d.string("dataset name")
	if d.err != nil {
		return nil, fmt.Errorf("wal: bad header: %w", d.err)
	}
	if len(data)-d.off < crcSize {
		return nil, ErrTruncated
	}
	if crc32.Checksum(data[:d.off], castagnoli) != binary.LittleEndian.Uint32(data[d.off:]) {
		return nil, fmt.Errorf("wal: header checksum mismatch: %w", ErrChecksum)
	}

	res := &ScanResult{Dataset: dataset, BaseSeq: base, ValidLen: d.off + crcSize}
	want := base + 1
	for off := res.ValidLen; off < len(data); {
		if len(data)-off < 4 {
			res.TailErr = ErrTruncated
			return res, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n == 0 || n > maxRecordBytes {
			res.TailErr = fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, n, off)
			return res, nil
		}
		if len(data)-off < 4+n+crcSize {
			res.TailErr = ErrTruncated
			return res, nil
		}
		payload := data[off+4 : off+4+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4+n:]) {
			res.TailErr = ErrChecksum
			return res, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			res.TailErr = err
			return res, nil
		}
		if rec.Seq != want {
			res.TailErr = fmt.Errorf("%w: sequence %d at offset %d, want %d", ErrCorrupt, rec.Seq, off, want)
			return res, nil
		}
		want++
		res.Records = append(res.Records, rec)
		off += 4 + n + crcSize
		res.ValidLen = off
	}
	return res, nil
}

// Options configures a Log.
type Options struct {
	// SyncInterval selects the fsync policy. Zero (the default) syncs every
	// append before it returns: an acknowledged append survives kill -9.
	// A positive interval batches fsyncs on a background ticker: appends
	// return after the OS write, trading the durability of the last
	// interval's acknowledgements for append latency.
	SyncInterval time.Duration
	// CreateBase is the base sequence a freshly created segment starts at.
	// It matters when a log is first attached beside a snapshot that
	// already covers some sequence (a compacted store whose WAL was lost or
	// deliberately removed): starting the new segment at the snapshot's
	// covered sequence keeps replay a pure filter. Ignored when a segment
	// already exists on disk.
	CreateBase uint64
}

// Stats is a point-in-time view of a Log's counters, surfaced on /healthz
// and the admin API.
type Stats struct {
	// Seq is the last assigned sequence number (0 before any append ever).
	Seq uint64
	// Records counts the records in the live segment, replayed and new.
	Records int64
	// Bytes is the live segment's size.
	Bytes int64
	// SyncPolicy is "always" (per-append fsync) or "interval".
	SyncPolicy string
	// LastSync is when the segment was last fsynced (zero before the
	// first).
	LastSync time.Time
	// Compactions counts completed compactions (FinishCompaction calls).
	Compactions int64
	// LastCompaction is when the last compaction completed.
	LastCompaction time.Time
	// RecoveredRecords is how many records Open replayed from disk.
	RecoveredRecords int64
	// DroppedBytes is how many torn-tail bytes Open truncated.
	DroppedBytes int64
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Records holds every intact record, rotated-out segment first, in
	// sequence order. The caller replays those past its snapshot's covered
	// sequence.
	Records []*Record
	// DroppedBytes counts torn-tail bytes truncated from the live segment.
	DroppedBytes int64
	// Cause is the typed error that ended the live segment's scan (nil for
	// a clean tail).
	Cause error
	// CompactionPending reports that a rotated-out segment ("….wal.old")
	// was found: a compaction was interrupted before its snapshot landed.
	// After replaying, complete it: persist the snapshot at the recovered
	// sequence, then call FinishCompaction.
	CompactionPending bool
}

// Log is one tenant's open write-ahead log. Appends are serialized
// internally; the caller serializes Append against StartCompaction when it
// needs the rotation point to match an engine state (see
// serve.CompactTenant).
type Log struct {
	dir     string
	dataset string
	path    string
	opts    Options

	mu      sync.Mutex
	f       *os.File
	seq     uint64
	records int64
	bytes   int64
	dirty   bool

	lastSync       time.Time
	compactions    int64
	lastCompaction time.Time
	recovered      int64
	dropped        int64
	pendingOld     bool

	stop chan struct{}
	done chan struct{}
	buf  []byte
}

// Open opens (creating if absent) the dataset's log under dir, recovering
// whatever a crash left behind: a torn or corrupt tail is truncated to the
// last intact record (Recovery.Cause carries the typed error), and a
// rotated-out segment from an interrupted compaction is scanned first with
// sequence continuity enforced across the pair. Open fails hard — no
// silent data loss — on a damaged header, a dataset-name mismatch, or a
// sequence gap between segments.
func Open(dir, dataset string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, Filename(dataset))
	oldPath := path + ".old"
	rec := &Recovery{}

	base := opts.CreateBase
	if data, err := os.ReadFile(oldPath); err == nil {
		old, err := Scan(data)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: rotated segment %s: %w", oldPath, err)
		}
		if !strings.EqualFold(old.Dataset, dataset) {
			return nil, nil, fmt.Errorf("wal: %s belongs to dataset %q, not %q", oldPath, old.Dataset, dataset)
		}
		rec.Records = old.Records
		rec.CompactionPending = true
		base = old.LastSeq()
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}

	l := &Log{dir: dir, dataset: dataset, path: path, opts: opts, pendingOld: rec.CompactionPending}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh log — or the narrow crash window of a rotation that renamed
		// the live segment away but died before creating its replacement.
		// Either way, start a segment that continues the sequence.
		if err := l.create(base); err != nil {
			return nil, nil, err
		}
	case err != nil:
		return nil, nil, err
	default:
		res, err := Scan(data)
		if err != nil && len(data) < len(encodeHeader(dataset, 0)) &&
			(errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt)) {
			// The file ends inside its own header: the process died inside
			// create, before the header fsync that gates the first append —
			// so no acknowledged record can exist here. Recreate the
			// segment. The length guard makes this provable: create writes
			// the header in one fsync-gated step, so a genuine torn create
			// is always a strict prefix of a full header, while a full-size
			// file whose header fails to parse is flipped bits over trusted
			// state — that stays a hard error (a bad base sequence cannot
			// be recovered from).
			rec.Cause = err
			rec.DroppedBytes += int64(len(data))
			if err := os.Remove(path); err != nil {
				return nil, nil, err
			}
			if err := l.create(base); err != nil {
				return nil, nil, err
			}
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
		}
		if !strings.EqualFold(res.Dataset, dataset) {
			return nil, nil, fmt.Errorf("wal: %s belongs to dataset %q, not %q", path, res.Dataset, dataset)
		}
		if rec.CompactionPending && res.BaseSeq != base {
			return nil, nil, fmt.Errorf("%w: segment base %d does not continue rotated segment end %d",
				ErrCorrupt, res.BaseSeq, base)
		}
		rec.Records = append(rec.Records, res.Records...)
		rec.Cause = res.TailErr
		if res.TailErr != nil {
			rec.DroppedBytes = int64(len(data) - res.ValidLen)
			if err := os.Truncate(path, int64(res.ValidLen)); err != nil {
				return nil, nil, err
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		l.f = f
		l.seq = res.LastSeq()
		l.records = int64(len(res.Records))
		l.bytes = int64(res.ValidLen)
		// The truncation must be durable before new records land past it.
		if rec.Cause != nil {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, err
			}
			l.lastSync = time.Now()
		}
	}
	l.recovered = int64(len(rec.Records))
	l.dropped = rec.DroppedBytes
	if opts.SyncInterval > 0 {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop(l.stop, l.done)
	}
	return l, rec, nil
}

// create writes a fresh live segment whose records continue from base.
func (l *Log) create(base uint64) error {
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := encodeHeader(l.dataset, base)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(l.path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(l.path)
		return err
	}
	l.f = f
	l.seq = base
	l.records = 0
	l.bytes = int64(len(hdr))
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Append assigns the next sequence number to rec, writes it, and — under
// the default per-append sync policy — fsyncs before returning, so a nil
// error means the record survives kill -9. rec.Seq is ignored on input and
// set on return.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: log is closed")
	}
	rec.Seq = l.seq + 1
	l.buf = appendRecord(l.buf[:0], rec)
	if _, err := l.f.Write(l.buf); err != nil {
		// A short write leaves a torn tail exactly like a crash would; the
		// next Open truncates it. Poison the handle so no later append can
		// frame a record after the tear.
		l.f.Close()
		l.f = nil
		return 0, err
	}
	if l.opts.SyncInterval <= 0 {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			l.f = nil
			return 0, err
		}
		l.lastSync = time.Now()
	} else {
		l.dirty = true
	}
	l.seq = rec.Seq
	l.records++
	l.bytes += int64(len(l.buf))
	return rec.Seq, nil
}

// Sync flushes written records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// syncLoop drives the interval fsync policy. The channels arrive as
// arguments because Close nils the struct fields while the loop is still
// selecting — a reload there would block forever on a nil channel.
func (l *Log) syncLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-stop:
			return
		}
	}
}

// LastSeq returns the last assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// CompactionPending reports whether a rotated-out segment is waiting for
// its compaction to be completed (FinishCompaction).
func (l *Log) CompactionPending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pendingOld
}

// Stats returns a point-in-time view of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	policy := "always"
	if l.opts.SyncInterval > 0 {
		policy = "interval"
	}
	return Stats{
		Seq:              l.seq,
		Records:          l.records,
		Bytes:            l.bytes,
		SyncPolicy:       policy,
		LastSync:         l.lastSync,
		Compactions:      l.compactions,
		LastCompaction:   l.lastCompaction,
		RecoveredRecords: l.recovered,
		DroppedBytes:     l.dropped,
	}
}

// StartCompaction rotates the live segment out: the current file is synced
// and renamed aside, and a fresh segment based at the returned sequence
// starts accepting appends. The caller must (1) hold its own append lock
// across StartCompaction and its engine-state capture, so the returned
// sequence matches the snapshot it persists, and (2) call FinishCompaction
// once the snapshot is durably on disk. If the process dies in between,
// the rotated segment is still replayed by the next Open (sequence-gap
// free), so no acknowledged append is ever lost to a compaction crash.
func (l *Log) StartCompaction() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: log is closed")
	}
	if l.pendingOld {
		return 0, errors.New("wal: a compaction is already in flight")
	}
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		l.f = nil
		return 0, err
	}
	l.f = nil
	if err := os.Rename(l.path, l.path+".old"); err != nil {
		return 0, err
	}
	l.pendingOld = true
	if err := l.create(l.seq); err != nil {
		return 0, err
	}
	return l.seq, nil
}

// FinishCompaction removes the rotated-out segment after the caller has
// durably persisted a snapshot covering every record in it.
func (l *Log) FinishCompaction() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.pendingOld {
		return nil
	}
	if err := os.Remove(l.path + ".old"); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	l.pendingOld = false
	l.compactions++
	l.lastCompaction = time.Now()
	return nil
}

// Close flushes and closes the log. Safe to call twice.
func (l *Log) Close() error {
	if l.stop != nil {
		l.mu.Lock()
		stop := l.stop
		l.stop = nil
		l.mu.Unlock()
		if stop != nil {
			close(stop)
			<-l.done
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked cursor over a payload, with sticky errors —
// the same discipline internal/store uses.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(what string, sentinel error) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: bad %s at offset %d", sentinel, what, d.off)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(what, ErrCorrupt)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail(what, ErrCorrupt)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

// count reads a collection size and rejects values that cannot fit in the
// remaining payload (each element takes at least one byte).
func (d *decoder) count(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > uint64(len(d.data)-d.off) {
		d.fail(what, ErrCorrupt)
		return 0
	}
	return int(v)
}

func (d *decoder) int(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > math.MaxInt64/2 {
		d.fail(what, ErrCorrupt)
		return 0
	}
	return int(v)
}

func (d *decoder) string(what string) string {
	n := d.count(what)
	if d.err != nil {
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) float64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.off < 8 {
		d.fail(what, ErrCorrupt)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}
