package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func streamRecords() []*Record {
	return []*Record{
		{Seq: 1, Entries: []Entry{{SQL: "SELECT a FROM t", Count: 1}}},
		{Seq: 2, Entries: []Entry{{SQL: "SELECT b FROM t", Count: 3}, {SQL: "SELECT c FROM u", Count: 1}}},
		{Seq: 3, Session: true, Count: 2, Decay: 0.5, Entries: []Entry{{SQL: "SELECT d FROM v"}, {SQL: "SELECT e FROM v"}}},
	}
}

func encodeAll(t *testing.T, recs []*Record) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		buf = EncodeRecord(buf, r)
	}
	return buf
}

func TestRecordReaderRoundTrip(t *testing.T) {
	want := streamRecords()
	rr := NewRecordReader(bytes.NewReader(encodeAll(t, want)))
	var got []*Record
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, rec)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// EOF is sticky.
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

func TestRecordReaderChecksum(t *testing.T) {
	recs := streamRecords()
	data := encodeAll(t, recs)
	// Flip one payload bit of the second record (first record's frame is
	// 4 + payload + 4 bytes long).
	first := len(EncodeRecord(nil, recs[0]))
	data[first+6] ^= 0x40
	rr := NewRecordReader(bytes.NewReader(data))
	if _, err := rr.Next(); err != nil {
		t.Fatalf("first record should be intact: %v", err)
	}
	if _, err := rr.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped record error = %v, want ErrChecksum", err)
	}
	// The error is sticky: a reader never resumes past damage.
	if _, err := rr.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestRecordReaderTruncation(t *testing.T) {
	data := encodeAll(t, streamRecords())
	for _, cut := range []int{1, 3, 5, len(data) - 1} {
		rr := NewRecordReader(bytes.NewReader(data[:cut]))
		var err error
		for err == nil {
			_, err = rr.Next()
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: error = %v, want ErrTruncated", cut, err)
		}
	}
	// A zero-length stream is a clean (empty) batch.
	if _, err := NewRecordReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Fatalf("empty stream error = %v, want io.EOF", err)
	}
}

func TestRecordReaderCorruptLength(t *testing.T) {
	data := []byte{0, 0, 0, 0} // zero-length record frame
	if _, err := NewRecordReader(bytes.NewReader(data)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-length frame error = %v, want ErrCorrupt", err)
	}
}

func openStreamLog(t *testing.T, n int) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, _, err := Open(dir, "MAS", Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	for i := 0; i < n; i++ {
		if _, err := l.Append(&Record{Entries: []Entry{{SQL: "SELECT x FROM t", Count: 1}}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return l, dir
}

func TestTailSince(t *testing.T) {
	l, _ := openStreamLog(t, 5)
	recs, last, err := l.TailSince(0, 0)
	if err != nil {
		t.Fatalf("TailSince(0): %v", err)
	}
	if last != 5 || len(recs) != 5 {
		t.Fatalf("TailSince(0) = %d records, last %d; want 5, 5", len(recs), last)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}

	recs, last, err = l.TailSince(3, 0)
	if err != nil || len(recs) != 2 || recs[0].Seq != 4 || last != 5 {
		t.Fatalf("TailSince(3) = %d records (err %v), first seq %v", len(recs), err, recs)
	}

	// Caught up: empty batch, no error.
	recs, last, err = l.TailSince(5, 0)
	if err != nil || len(recs) != 0 || last != 5 {
		t.Fatalf("TailSince(5) = %v, %d, %v; want empty", recs, last, err)
	}

	// Ahead of the log: typed refusal.
	if _, _, err := l.TailSince(6, 0); !errors.Is(err, ErrAhead) {
		t.Fatalf("TailSince(6) error = %v, want ErrAhead", err)
	}

	// Batch cap.
	recs, _, err = l.TailSince(0, 2)
	if err != nil || len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("TailSince(0, max 2) = %d records, err %v", len(recs), err)
	}
}

func TestTailSinceAcrossCompaction(t *testing.T) {
	l, _ := openStreamLog(t, 3)
	if _, err := l.StartCompaction(); err != nil {
		t.Fatalf("StartCompaction: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append(&Record{Entries: []Entry{{SQL: "SELECT y FROM t", Count: 1}}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	// Mid-compaction the rotated segment still serves the old range.
	recs, last, err := l.TailSince(0, 0)
	if err != nil {
		t.Fatalf("TailSince(0) mid-compaction: %v", err)
	}
	if len(recs) != 5 || last != 5 || recs[0].Seq != 1 || recs[4].Seq != 5 {
		t.Fatalf("mid-compaction tail = %d records, last %d", len(recs), last)
	}

	if err := l.FinishCompaction(); err != nil {
		t.Fatalf("FinishCompaction: %v", err)
	}

	// The compacted range is gone: typed gap.
	if _, _, err := l.TailSince(0, 0); !errors.Is(err, ErrGap) {
		t.Fatalf("TailSince(0) post-compaction error = %v, want ErrGap", err)
	}
	if _, _, err := l.TailSince(2, 0); !errors.Is(err, ErrGap) {
		t.Fatalf("TailSince(2) post-compaction error = %v, want ErrGap", err)
	}
	// From the rotation point on, tailing still works.
	recs, last, err = l.TailSince(3, 0)
	if err != nil || len(recs) != 2 || last != 5 {
		t.Fatalf("TailSince(3) post-compaction = %d records, last %d, err %v", len(recs), last, err)
	}
}

func TestTailSinceMatchesDiskFraming(t *testing.T) {
	// The stream framing must be exactly the disk framing: re-encoding a
	// tailed record reproduces the segment bytes.
	l, dir := openStreamLog(t, 2)
	recs, _, err := l.TailSince(0, 0)
	if err != nil {
		t.Fatalf("TailSince: %v", err)
	}
	var wire []byte
	for _, r := range recs {
		wire = EncodeRecord(wire, r)
	}
	data, err := os.ReadFile(filepath.Join(dir, Filename("MAS")))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	hdr := len(encodeHeader("MAS", 0))
	if !bytes.Equal(wire, data[hdr:]) {
		t.Fatalf("wire encoding diverges from segment bytes")
	}
}
