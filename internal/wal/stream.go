package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
)

// This file is the replication face of the WAL: the on-disk record framing
// doubles as the wire framing of the primary→follower stream
// (GET /v2/{dataset}/wal?from=seq). A tail response body is a plain
// concatenation of records exactly as they sit in the segment — 4-byte LE
// payload length, payload, CRC-32C — so the primary can serve bytes
// straight off disk and a follower reuses the same typed corruption errors
// (ErrTruncated, ErrChecksum, ErrCorrupt) the crash-recovery path uses.

// Typed refusals of TailSince, surfaced over HTTP by the serving layer and
// dispatched on by the follower.
var (
	// ErrGap means the requested sequence has been compacted away: the
	// records between it and the oldest segment on disk no longer exist, so
	// tailing cannot resume there. The follower's recovery is a snapshot
	// re-bootstrap, never a silent skip.
	ErrGap = errors.New("wal: requested sequence has been compacted away")
	// ErrAhead means the requested sequence is past the log's last assigned
	// sequence — the follower claims to have applied records the primary
	// never wrote (a diverged or reseeded primary).
	ErrAhead = errors.New("wal: requested sequence is ahead of the log")
)

// EncodeRecord appends rec's wire framing to buf and returns the extended
// slice. rec.Seq is encoded as-is: replication ships records with the
// sequence numbers the primary assigned.
func EncodeRecord(buf []byte, rec *Record) []byte {
	return appendRecord(buf, rec)
}

// RecordReader decodes a stream of framed records — a tail response body —
// with the same verification the segment scanner applies: framing bounds,
// CRC-32C per record, structural payload validation. Sequence continuity
// is the caller's to enforce (the reader has no base to anchor it).
type RecordReader struct {
	r   io.Reader
	buf []byte
	err error
}

// NewRecordReader wraps r, which yields zero or more framed records ending
// at a clean record boundary.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{r: r}
}

// Next returns the next record. It returns io.EOF at a clean end of
// stream, ErrTruncated when the stream ends inside a record, ErrChecksum
// on a CRC mismatch, and ErrCorrupt (possibly wrapped) on an invalid
// payload. Any error is sticky.
func (rr *RecordReader) Next() (*Record, error) {
	if rr.err != nil {
		return nil, rr.err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			rr.err = io.EOF
		} else if errors.Is(err, io.ErrUnexpectedEOF) {
			rr.err = ErrTruncated
		} else {
			rr.err = err
		}
		return nil, rr.err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 || n > maxRecordBytes {
		rr.err = fmt.Errorf("%w: record length %d", ErrCorrupt, n)
		return nil, rr.err
	}
	if cap(rr.buf) < n+crcSize {
		rr.buf = make([]byte, n+crcSize)
	}
	body := rr.buf[:n+crcSize]
	if _, err := io.ReadFull(rr.r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			rr.err = ErrTruncated
		} else {
			rr.err = err
		}
		return nil, rr.err
	}
	payload := body[:n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(body[n:]) {
		rr.err = ErrChecksum
		return nil, rr.err
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		rr.err = err
		return nil, rr.err
	}
	return rec, nil
}

// TailSince returns every intact record on disk with sequence > from, in
// order, capped at max records (max ≤ 0 means no cap), along with the
// log's last assigned sequence. It reads under the append lock, so the
// returned batch is a consistent prefix of the log — no torn tail can be
// observed. During an in-flight compaction the rotated-out segment is
// still consulted, so a follower behind the rotation point can catch up
// until FinishCompaction removes it; after that, from-values before the
// live segment's base fail with ErrGap. from past the last assigned
// sequence fails with ErrAhead.
func (l *Log) TailSince(from uint64, max int) ([]*Record, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, 0, errors.New("wal: log is closed")
	}
	last := l.seq
	if from > last {
		return nil, last, fmt.Errorf("%w: from %d, last %d", ErrAhead, from, last)
	}
	if from == last {
		return nil, last, nil
	}
	data, err := os.ReadFile(l.path)
	if err != nil {
		return nil, last, err
	}
	live, err := Scan(data)
	if err != nil {
		return nil, last, fmt.Errorf("wal: %s: %w", l.path, err)
	}
	var recs []*Record
	if live.BaseSeq > from {
		old, err := l.scanOldLocked()
		if err != nil {
			return nil, last, err
		}
		if old == nil || old.BaseSeq > from {
			return nil, last, fmt.Errorf("%w: from %d, oldest on disk %d", ErrGap, from, live.BaseSeq)
		}
		for _, r := range old.Records {
			if r.Seq > from {
				recs = append(recs, r)
			}
		}
	}
	for _, r := range live.Records {
		if r.Seq > from {
			recs = append(recs, r)
		}
	}
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	return recs, last, nil
}

// scanOldLocked reads the rotated-out segment of an in-flight compaction,
// returning nil when none exists.
func (l *Log) scanOldLocked() (*ScanResult, error) {
	data, err := os.ReadFile(l.path + ".old")
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	res, err := Scan(data)
	if err != nil {
		return nil, fmt.Errorf("wal: %s.old: %w", l.path, err)
	}
	return res, nil
}
