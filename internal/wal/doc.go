// Package wal gives each tenant's live query log a durable write path: an
// append-only, checksummed, per-dataset write-ahead log that survives
// kill -9 and recovers itself on the next boot. It closes the gap between
// the packed .qfg snapshots of internal/store (durable but rewritten only
// at pack time) and qfg.Live (always current but memory-only): the serving
// layer writes every acknowledged log append here first, and boot replays
// snapshot + WAL tail into an engine byte-identical to one that never
// crashed.
//
// # Lifecycle
//
// A dataset's log is one live segment ("<name>.wal"), plus — only while a
// compaction is in flight — the rotated-out previous segment
// ("<name>.wal.old"). Records carry monotonically consecutive sequence
// numbers; each segment's header names the base sequence its records apply
// on top of, and the matching .qfg archive records the sequence it covers
// (store.Archive.WalSeq). Replay is therefore a filter, not a guess: load
// the snapshot, then apply exactly the records with seq > WalSeq, in
// order.
//
// Compaction folds a grown log back into a fresh snapshot without losing
// the crash guarantee at any instant: StartCompaction syncs and rotates
// the live segment aside and starts a new one at the same sequence; the
// caller persists the engine snapshot covering that sequence; and
// FinishCompaction deletes the rotated segment. Dying between those steps
// is safe — the next Open scans the rotated segment first (sequence
// continuity enforced across the pair) and the caller completes the
// interrupted compaction after replaying.
//
// # Durability policy
//
// The default policy fsyncs every append before it returns: an
// acknowledged append is on stable storage. Options.SyncInterval trades
// that for latency — appends return after the OS write and a background
// ticker batches fsyncs, so a crash can lose at most the last interval's
// acknowledgements. The policy in force is reported in Stats.SyncPolicy.
//
// # Failure modes
//
// Scan and Open never panic on hostile input. Record damage is soft:
// record lengths chain, so the scan stops at the last intact record, Open
// truncates the torn tail and reports the typed cause (ErrTruncated,
// ErrChecksum, ErrCorrupt) in Recovery. Header damage is hard — a header
// that fails its checksum means the base sequence cannot be trusted —
// except the one self-inflicted case Open can prove benign: a file ending
// inside its own header died before the header fsync that gates the first
// append, so it is recreated empty. ErrBadMagic flags a foreign file and
// *UnsupportedVersionError a format from the future, mirroring
// internal/store's codec discipline.
//
// The wire layout is specified record-by-record in wal.go and, with the
// recovery protocol and operator runbook, in docs/DURABILITY.md.
// cmd/qfg-inspect's "wal" subcommand dumps and verifies segments offline.
package wal
