package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecords is a mixed batch/session workload exercising every field.
func testRecords() []*Record {
	return []*Record{
		{Entries: []Entry{{SQL: "SELECT a FROM t", Count: 1}}},
		{Entries: []Entry{{SQL: "SELECT b FROM t WHERE x = 1", Count: 3}, {SQL: "SELECT c FROM u", Count: 1}}},
		{Session: true, Count: 1, Decay: 0.5, Entries: []Entry{{SQL: "SELECT a FROM t"}, {SQL: "SELECT a FROM t JOIN u ON t.id = u.id"}}},
		{Entries: []Entry{{SQL: "SELECT count(*) FROM v GROUP BY k", Count: 2}}},
		{Session: true, Count: 2, Decay: 0.25, Entries: []Entry{{SQL: "SELECT z FROM w"}}},
	}
}

// fill appends testRecords to an open log and returns them with their
// assigned sequence numbers.
func fill(t *testing.T, l *Log) []*Record {
	t.Helper()
	recs := testRecords()
	for i, r := range recs {
		seq, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != r.Seq {
			t.Fatalf("append %d: returned seq %d but set %d", i, seq, r.Seq)
		}
	}
	return recs
}

// headerLen is the byte length of a complete segment header for dataset.
func headerLen(dataset string) int {
	return len(encodeHeader(dataset, 0))
}

// recordEnd returns the offset just past the record starting at off.
func recordEnd(data []byte, off int) int {
	n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
	return off + 4 + n + crcSize
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, "MAS", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Cause != nil || rec.CompactionPending {
		t.Fatalf("fresh open recovered %+v", rec)
	}
	want := fill(t, l)
	st := l.Stats()
	if st.Seq != uint64(len(want)) || st.Records != int64(len(want)) || st.SyncPolicy != "always" {
		t.Fatalf("stats %+v", st)
	}
	if st.LastSync.IsZero() {
		t.Fatal("per-append sync policy never recorded a sync")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every record comes back bit-equal, sequencing continues.
	l2, rec2, err := Open(dir, "mas", Options{}) // case-insensitive dataset match
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Cause != nil || rec2.DroppedBytes != 0 {
		t.Fatalf("clean reopen reported damage: %+v", rec2)
	}
	if !reflect.DeepEqual(rec2.Records, want) {
		t.Fatalf("recovered records differ:\n got %+v\nwant %+v", rec2.Records, want)
	}
	if got := l2.Stats().RecoveredRecords; got != int64(len(want)) {
		t.Fatalf("RecoveredRecords = %d, want %d", got, len(want))
	}
	seq, err := l2.Append(&Record{Entries: []Entry{{SQL: "SELECT 1", Count: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want))+1 {
		t.Fatalf("append after reopen got seq %d, want %d", seq, len(want)+1)
	}
}

func TestDatasetMismatch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Same file name, different recorded dataset: a bad operator move.
	if err := os.Rename(filepath.Join(dir, "mas.wal"), filepath.Join(dir, "yelp.wal")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, "yelp", Options{}); err == nil {
		t.Fatal("open accepted a segment recorded for another dataset")
	}
}

// TestEveryPrefixTruncation is the torn-tail gate: for EVERY byte length a
// crash could leave the file at, Open recovers exactly the records that
// were fully written, reports a typed cause, truncates the tail, and keeps
// accepting appends at the right sequence.
func TestEveryPrefixTruncation(t *testing.T) {
	ref := t.TempDir()
	l, _, err := Open(ref, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l)
	l.Close()
	full, err := os.ReadFile(filepath.Join(ref, "mas.wal"))
	if err != nil {
		t.Fatal(err)
	}

	// boundaries maps each clean cut offset to the records intact at it.
	boundaries := map[int]int{}
	off := headerLen("mas")
	boundaries[off] = 0
	for i := range want {
		off = recordEnd(full, off)
		boundaries[off] = i + 1
	}
	if off != len(full) {
		t.Fatalf("walked record area to %d, file is %d bytes", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "mas.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, "mas", Options{})
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		wantN, atBoundary := boundaries[cut]
		if !atBoundary {
			// Inside the header or a record: everything up to the last
			// whole record survives, and the damage is typed.
			wantN = lastBoundaryBelow(boundaries, cut)
			if rec.Cause == nil {
				t.Fatalf("cut %d: torn tail reported no cause", cut)
			}
			if !errors.Is(rec.Cause, ErrTruncated) && !errors.Is(rec.Cause, ErrChecksum) && !errors.Is(rec.Cause, ErrCorrupt) {
				t.Fatalf("cut %d: cause %v is not a typed corruption error", cut, rec.Cause)
			}
		} else if rec.Cause != nil {
			t.Fatalf("cut %d: clean boundary reported cause %v", cut, rec.Cause)
		}
		if len(rec.Records) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), wantN)
		}
		if wantN > 0 && !reflect.DeepEqual(rec.Records, want[:wantN]) {
			t.Fatalf("cut %d: recovered records differ from the written prefix", cut)
		}
		// The log must keep working: the next append lands right after the
		// last recovered record.
		seq, err := l.Append(&Record{Entries: []Entry{{SQL: "SELECT 1", Count: 1}}})
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if seq != uint64(wantN)+1 {
			t.Fatalf("cut %d: post-recovery seq %d, want %d", cut, seq, wantN+1)
		}
		l.Close()

		// A second recovery sees the truncated-then-appended history, clean.
		l2, rec2, err := Open(dir, "mas", Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if rec2.Cause != nil || len(rec2.Records) != wantN+1 {
			t.Fatalf("cut %d: reopen recovered %d records (cause %v), want %d", cut, len(rec2.Records), rec2.Cause, wantN+1)
		}
		l2.Close()
	}
}

// lastBoundaryBelow returns the record count at the highest boundary < cut.
func lastBoundaryBelow(boundaries map[int]int, cut int) int {
	best, n := -1, 0
	for off, cnt := range boundaries {
		if off < cut && off > best {
			best, n = off, cnt
		}
	}
	return n
}

// TestBitFlips flips a bit in each byte of a recorded segment in turn and
// asserts recovery never panics, never invents or mutates records, and
// always reports a typed cause when record-area damage drops anything.
// Header flips fail the open outright — the base sequence is untrusted —
// and must never silently drop records by masquerading as a torn create.
func TestBitFlips(t *testing.T) {
	ref := t.TempDir()
	l, _, err := Open(ref, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l)
	l.Close()
	full, err := os.ReadFile(filepath.Join(ref, "mas.wal"))
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := headerLen("mas")

	for i := 0; i < len(full); i++ {
		flipped := bytes.Clone(full)
		flipped[i] ^= 0x40
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "mas.wal"), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, "mas", Options{})
		if err != nil {
			if i >= headerEnd {
				t.Fatalf("flip %d: record-area damage must recover, got open error %v", i, err)
			}
			continue // header damage: a hard typed failure is the contract
		}
		if i < headerEnd {
			t.Fatalf("flip %d: header damage opened cleanly with %d records", i, len(rec.Records))
		}
		// The recovered records must be a strict prefix of what was
		// written — a flip can hide records, never corrupt one in place.
		if len(rec.Records) > len(want) {
			t.Fatalf("flip %d: recovered %d records, wrote %d", i, len(rec.Records), len(want))
		}
		if len(rec.Records) > 0 && !reflect.DeepEqual(rec.Records, want[:len(rec.Records)]) {
			t.Fatalf("flip %d: recovered records are not a prefix of the written log", i)
		}
		if len(rec.Records) < len(want) && rec.Cause == nil {
			t.Fatalf("flip %d: dropped records without a typed cause", i)
		}
		l.Close()
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "mas", Options{SyncInterval: time.Hour}) // ticker never fires in-test
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Entries: []Entry{{SQL: "SELECT 1", Count: 1}}}); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SyncPolicy != "interval" {
		t.Fatalf("policy %q", st.SyncPolicy)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().LastSync.IsZero() {
		t.Fatal("explicit Sync not recorded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushed: the record is durable across the policy switch too.
	_, rec, err := Open(dir, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records after interval-policy close, want 1", len(rec.Records))
	}
}

// TestCompactionProtocol walks the happy path and every crash window of
// the rotate → persist snapshot → finish protocol.
func TestCompactionProtocol(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l)
	seq, err := l.StartCompaction()
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)) {
		t.Fatalf("rotation seq %d, want %d", seq, len(want))
	}
	if !l.CompactionPending() {
		t.Fatal("rotation did not mark the compaction pending")
	}
	if _, err := l.StartCompaction(); err == nil {
		t.Fatal("second rotation allowed while one is in flight")
	}
	// Appends continue into the fresh segment, sequence unbroken.
	after := &Record{Entries: []Entry{{SQL: "SELECT 9", Count: 1}}}
	if s, err := l.Append(after); err != nil || s != seq+1 {
		t.Fatalf("append during compaction: seq %d err %v", s, err)
	}

	// Crash window A: death before FinishCompaction. Open replays both
	// segments in order with continuity enforced.
	l.Close()
	l2, rec, err := Open(dir, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.CompactionPending {
		t.Fatal("interrupted compaction not reported")
	}
	all := append(append([]*Record{}, want...), after)
	if !reflect.DeepEqual(rec.Records, all) {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), len(all))
	}
	// The caller persists its snapshot, then finishes.
	if err := l2.FinishCompaction(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mas.wal.old")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rotated segment not removed: %v", err)
	}
	if st := l2.Stats(); st.Compactions != 1 || st.LastCompaction.IsZero() {
		t.Fatalf("compaction counters %+v", st)
	}
	l2.Close()

	// Crash window B: death after the rename but before the fresh segment's
	// header landed. No acknowledged record can live in the missing file,
	// so Open recreates it at the rotated segment's end.
	dirB := t.TempDir()
	lb, _, err := Open(dirB, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, lb)
	lb.Close()
	if err := os.Rename(filepath.Join(dirB, "mas.wal"), filepath.Join(dirB, "mas.wal.old")); err != nil {
		t.Fatal(err)
	}
	lb2, recB, err := Open(dirB, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !recB.CompactionPending || len(recB.Records) != len(want) {
		t.Fatalf("window B recovery: pending=%v records=%d", recB.CompactionPending, len(recB.Records))
	}
	if s, err := lb2.Append(&Record{Entries: []Entry{{SQL: "SELECT 2", Count: 1}}}); err != nil || s != uint64(len(want))+1 {
		t.Fatalf("window B append: seq %d err %v", s, err)
	}
	lb2.Close()

	// Crash window C: death with the fresh segment created and a torn tail
	// in it. Both segments replay; only the torn tail drops.
	dirC := t.TempDir()
	lc, _, err := Open(dirC, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, lc)
	if _, err := lc.StartCompaction(); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Append(&Record{Entries: []Entry{{SQL: "SELECT 3", Count: 1}}}); err != nil {
		t.Fatal(err)
	}
	lc.Close()
	pathC := filepath.Join(dirC, "mas.wal")
	data, err := os.ReadFile(pathC)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathC, data[:len(data)-3], 0o644); err != nil { // tear the tail
		t.Fatal(err)
	}
	_, recC, err := Open(dirC, "mas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !recC.CompactionPending || !errors.Is(recC.Cause, ErrTruncated) || len(recC.Records) != len(want) {
		t.Fatalf("window C recovery: pending=%v cause=%v records=%d", recC.CompactionPending, recC.Cause, len(recC.Records))
	}
}

func TestScanRejectsForeignAndFutureFiles(t *testing.T) {
	if _, err := Scan([]byte("TQFGSNAPxxxxxxxxxxxx")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign magic: %v", err)
	}
	hdr := encodeHeader("mas", 0)
	future := bytes.Clone(hdr)
	future[len(magic)] = 99
	var ve *UnsupportedVersionError
	if _, err := Scan(future); !errors.As(err, &ve) || ve.Version != 99 {
		t.Fatalf("future version: %v", err)
	}
	if _, err := Scan(hdr[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
}

func BenchmarkAppendSyncAlways(b *testing.B) {
	benchmarkAppend(b, Options{})
}

func BenchmarkAppendSyncInterval(b *testing.B) {
	benchmarkAppend(b, Options{SyncInterval: 100 * time.Millisecond})
}

func benchmarkAppend(b *testing.B, opts Options) {
	l, _, err := Open(b.TempDir(), "bench", opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := &Record{Entries: []Entry{{SQL: "SELECT paper.title FROM paper WHERE paper.year = 2020", Count: 1}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
