package embedding

import (
	"testing"
	"testing/quick"
)

func TestTokenSimilarityIdentity(t *testing.T) {
	m := New()
	for _, w := range []string{"paper", "journal", "databases", "x"} {
		if s := m.TokenSimilarity(w, w); s != 1 {
			t.Errorf("TokenSimilarity(%q, %q) = %v, want 1", w, w, s)
		}
	}
	// Case-insensitive and stem-equal tokens are identical.
	if s := m.TokenSimilarity("Papers", "paper"); s != 1 {
		t.Errorf("stem-equal similarity = %v, want 1", s)
	}
}

func TestLexiconAmbiguityFromExample1(t *testing.T) {
	// The deliberate confusion of Example 1: under the similarity model
	// alone, "papers" matches journal at least as strongly as publication.
	m := New()
	j := m.TokenSimilarity("papers", "journal")
	p := m.TokenSimilarity("papers", "publication")
	if j <= p {
		t.Errorf("expected sim(papers, journal)=%v > sim(papers, publication)=%v (Example 1 ambiguity)", j, p)
	}
	if p < 0.5 {
		t.Errorf("sim(papers, publication)=%v too low to be a candidate", p)
	}
}

func TestSimilarityRange(t *testing.T) {
	m := New()
	f := func(a, b string) bool {
		s := m.Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSimilaritySymmetry(t *testing.T) {
	m := New()
	pairs := [][2]string{
		{"papers after 2000", "publication title"},
		{"restaurant businesses", "business name"},
		{"movies directed by Spielberg", "director name"},
		{"", "x"},
	}
	for _, p := range pairs {
		a := m.Similarity(p[0], p[1])
		b := m.Similarity(p[1], p[0])
		if a != b {
			t.Errorf("Similarity(%q, %q) = %v != %v", p[0], p[1], a, b)
		}
	}
}

func TestSimilarityEmptyPhrases(t *testing.T) {
	m := New()
	if m.Similarity("", "journal") != 0 || m.Similarity("journal", "") != 0 || m.Similarity("", "") != 0 {
		t.Error("empty phrases must score 0")
	}
	if m.Similarity("!!!", "journal") != 0 {
		t.Error("non-alphanumeric phrases must score 0")
	}
}

func TestPhraseAlignment(t *testing.T) {
	m := New()
	// A phrase containing the exact attribute words should beat an
	// unrelated phrase.
	good := m.Similarity("publication title", "publication.title")
	bad := m.Similarity("organization homepage", "publication.title")
	if good <= bad {
		t.Errorf("alignment failed: good=%v bad=%v", good, bad)
	}
	if good < 0.95 {
		t.Errorf("exact token overlap should be near 1, got %v", good)
	}
}

func TestMorphologicalSimilarityViaTrigrams(t *testing.T) {
	m := NewEmpty()
	related := m.TokenSimilarity("directing", "directs")
	unrelated := m.TokenSimilarity("directing", "pizza")
	if related <= unrelated {
		t.Errorf("trigram model: related=%v unrelated=%v", related, unrelated)
	}
}

func TestAddSynonymOverridesAndClamps(t *testing.T) {
	m := NewEmpty()
	m.AddSynonym("foo", "bar", 0.3)
	if s := m.TokenSimilarity("foo", "bar"); s != 0.3 {
		t.Fatalf("synonym = %v", s)
	}
	m.AddSynonym("foo", "bar", 0.9)
	if s := m.TokenSimilarity("foo", "bar"); s != 0.9 {
		t.Fatalf("override = %v", s)
	}
	m.AddSynonym("a", "b", 5)
	if s := m.TokenSimilarity("a", "b"); s != 1 {
		t.Fatalf("clamp high = %v", s)
	}
	m.AddSynonym("c", "d", -5)
	if s := m.TokenSimilarity("c", "d"); s != 0 {
		t.Fatalf("clamp low = %v", s)
	}
	// Symmetric storage.
	if m.TokenSimilarity("bar", "foo") != 0.9 {
		t.Fatal("synonyms must be symmetric")
	}
}

func TestSynonymsAreStemmed(t *testing.T) {
	m := NewEmpty()
	m.AddSynonym("papers", "journals", 0.8)
	if s := m.TokenSimilarity("paper", "journal"); s != 0.8 {
		t.Fatalf("stemmed synonym lookup = %v", s)
	}
}

func TestDeterminism(t *testing.T) {
	m1, m2 := New(), New()
	phrases := [][2]string{
		{"papers in the Databases domain", "journal.name"},
		{"restaurants in Seattle", "business.city"},
	}
	for _, p := range phrases {
		if m1.Similarity(p[0], p[1]) != m2.Similarity(p[0], p[1]) {
			t.Fatalf("nondeterministic similarity for %v", p)
		}
	}
}

func TestLexiconDiagnostics(t *testing.T) {
	m := New()
	if m.LexiconSize() == 0 {
		t.Fatal("base lexicon empty")
	}
	entries := m.Entries()
	if len(entries) != m.LexiconSize() {
		t.Fatalf("Entries = %d, size = %d", len(entries), m.LexiconSize())
	}
	for i := 1; i < len(entries); i++ {
		if entries[i] < entries[i-1] {
			t.Fatal("Entries not sorted")
		}
	}
}

func TestSnakeCaseSplitting(t *testing.T) {
	m := New()
	// publication_keyword splits into tokens so "keywords of papers" can
	// align with the junction table name.
	s := m.Similarity("publication keyword", "publication_keyword")
	if s < 0.95 {
		t.Errorf("snake_case alignment = %v", s)
	}
}

func BenchmarkSimilarity(b *testing.B) {
	m := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Similarity("papers in the Databases domain", "publication title")
	}
}
