// Package embedding provides the word-similarity model used by the Keyword
// Mapper (simtext in Algorithm 3). The paper uses word2vec trained on the
// Google News corpus; that model is unavailable offline, so this package
// substitutes a deterministic equivalent with the same interface and the
// same *failure modes*:
//
//   - a dense vector per token derived from hashed character trigrams, so
//     morphologically related words (paper/papers, review/reviews) score
//     high and unrelated words score low; and
//   - a curated synonym lexicon carrying distributional-similarity scores
//     for domain word pairs, including the deliberate near-ties that drive
//     the paper's running example (papers ≈ journal ≈ publication), so the
//     baseline similarity model is plausible but imperfect — exactly the
//     regime Templar's log evidence is designed to correct.
//
// Similarities are cosine values normalized to [0, 1], as the Pipeline
// system in §VII-A2 normalizes word2vec's [-1, 1] output.
package embedding

import (
	"math"
	"sort"
	"strings"

	"templar/internal/stem"
)

// dim is the dimensionality of the hashed trigram vectors.
const dim = 96

// pairKey is an unordered stemmed token pair.
type pairKey struct{ a, b string }

func makePairKey(a, b string) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Model scores phrase similarity. The zero value is not usable; call New.
// Models are safe for concurrent use after all AddSynonym calls complete.
type Model struct {
	lex map[pairKey]float64
	// lexOnly disables the trigram-vector fallback, leaving only exact/stem
	// matches and explicit lexicon entries. This models a WordNet-style
	// synonym matcher (the NaLIR baseline of §VII-A2) rather than a dense
	// embedding.
	lexOnly bool
}

// New returns a model preloaded with the base domain lexicon.
func New() *Model {
	m := &Model{lex: make(map[pairKey]float64)}
	for _, s := range baseLexicon {
		m.AddSynonym(s.a, s.b, s.sim)
	}
	return m
}

// NewEmpty returns a model with no lexicon entries (pure trigram vectors).
func NewEmpty() *Model {
	return &Model{lex: make(map[pairKey]float64)}
}

// NewLexiconOnly returns a model preloaded with the base lexicon but with
// the trigram-vector fallback disabled: token pairs outside the lexicon
// score 0 unless their stems match. This emulates the WordNet lookup used
// by NaLIR.
func NewLexiconOnly() *Model {
	m := New()
	m.lexOnly = true
	return m
}

// AddSynonym records a similarity score for a word pair. Words are stemmed;
// scores are clamped to [0, 1]. Later entries overwrite earlier ones.
func (m *Model) AddSynonym(a, b string, sim float64) {
	if sim < 0 {
		sim = 0
	}
	if sim > 1 {
		sim = 1
	}
	m.lex[makePairKey(stem.Stem(strings.ToLower(a)), stem.Stem(strings.ToLower(b)))] = sim
}

// synonym looks up the lexicon score for two stemmed tokens.
func (m *Model) synonym(sa, sb string) (float64, bool) {
	v, ok := m.lex[makePairKey(sa, sb)]
	return v, ok
}

// TokenSimilarity scores two single tokens in [0, 1]: 1 for equal stems,
// the lexicon entry when present, otherwise the normalized trigram cosine.
func (m *Model) TokenSimilarity(a, b string) float64 {
	a = strings.ToLower(a)
	b = strings.ToLower(b)
	if a == b {
		return 1
	}
	sa, sb := stem.Stem(a), stem.Stem(b)
	if sa == sb {
		return 1
	}
	if v, ok := m.synonym(sa, sb); ok {
		return v
	}
	if m.lexOnly {
		return 0
	}
	return normalizedCosine(tokenVector(a), tokenVector(b))
}

// Similarity scores two phrases in [0, 1] with a symmetric soft token
// alignment: each token of one phrase is matched to its best counterpart in
// the other, and the two directional averages are averaged. Empty phrases
// score 0.
func (m *Model) Similarity(a, b string) float64 {
	ta, tb := splitTokens(a), splitTokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (m.directional(ta, tb) + m.directional(tb, ta)) / 2
}

func (m *Model) directional(from, to []string) float64 {
	var sum float64
	for _, ft := range from {
		best := 0.0
		for _, tt := range to {
			if s := m.TokenSimilarity(ft, tt); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(from))
}

// splitTokens lowercases and splits on non-alphanumerics, also breaking
// snake_case and camelCase-free SQL identifiers apart.
func splitTokens(s string) []string {
	var out []string
	var cur []byte
	flush := func() {
		if len(cur) > 0 {
			out = append(out, string(cur))
			cur = cur[:0]
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			cur = append(cur, c)
		case c >= 'A' && c <= 'Z':
			cur = append(cur, c+'a'-'A')
		default:
			flush()
		}
	}
	flush()
	return out
}

// tokenVector builds the hashed character-trigram vector of a token. The
// token is padded with boundary markers so short words still produce
// informative trigrams.
func tokenVector(tok string) [dim]float64 {
	var v [dim]float64
	padded := "^" + tok + "$"
	if len(padded) < 3 {
		return v
	}
	for i := 0; i+3 <= len(padded); i++ {
		h := fnv32(padded[i : i+3])
		idx := int(h % dim)
		sign := 1.0
		if (h>>16)&1 == 1 {
			sign = -1
		}
		v[idx] += sign
	}
	return v
}

// fnv32 is the 32-bit FNV-1a hash.
func fnv32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// normalizedCosine maps cosine similarity to [0, 1] by clamping negative
// values to 0. Orthogonal trigram vectors (unrelated words) score 0 rather
// than 0.5 — a 0.5 floor would let arbitrary column names outrank genuine
// lexicon matches through hash noise.
func normalizedCosine(a, b [dim]float64) float64 {
	var dot, na, nb float64
	for i := 0; i < dim; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	cos := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if cos > 1 {
		cos = 1
	}
	if cos < 0 {
		cos = 0
	}
	return cos
}

// LexiconSize returns the number of synonym entries, for diagnostics.
func (m *Model) LexiconSize() int { return len(m.lex) }

// Entries returns the lexicon as sorted "a~b=sim" strings, for diagnostics.
func (m *Model) Entries() []string {
	out := make([]string, 0, len(m.lex))
	for k, v := range m.lex {
		out = append(out, k.a+"~"+k.b+"="+formatSim(v))
	}
	sort.Strings(out)
	return out
}

func formatSim(v float64) string {
	// Two decimal places without pulling in strconv formatting subtleties.
	n := int(v*100 + 0.5)
	return string([]byte{'0' + byte(n/100), '.', '0' + byte(n/10%10), '0' + byte(n%10)})
}

// lexEntry is one curated synonym pair.
type lexEntry struct {
	a, b string
	sim  float64
}

// baseLexicon encodes the domain vocabulary of the three benchmarks. The
// near-ties are deliberate: "papers" scores slightly HIGHER against journal
// than publication, reproducing the word-embedding confusion of Example 1
// that Templar's QFG evidence must overcome.
var baseLexicon = []lexEntry{
	// MAS (academic) vocabulary. The papers~journal vs papers~publication
	// gap is kept deliberately small: the baseline picks journal (the
	// Example 1 mistake) but modest log evidence flips the ranking.
	{"paper", "journal", 0.82},
	{"paper", "publication", 0.80},
	{"paper", "title", 0.60},
	{"paper", "name", 0.62},
	{"paper", "conference", 0.72},
	{"article", "publication", 0.83},
	{"article", "journal", 0.85},
	{"author", "writes", 0.62},
	{"researcher", "author", 0.85},
	{"venue", "conference", 0.78},
	{"venue", "journal", 0.74},
	{"area", "domain", 0.80},
	{"field", "domain", 0.78},
	{"topic", "keyword", 0.74},
	{"topic", "domain", 0.76},
	{"citation", "cite", 0.90},
	{"reference", "cite", 0.72},
	{"affiliation", "organization", 0.82},
	{"institution", "organization", 0.86},
	{"university", "organization", 0.74},
	{"year", "date", 0.70},
	// Yelp (business reviews) vocabulary.
	{"business", "establishment", 0.80},
	{"restaurant", "business", 0.66},
	{"restaurant", "category", 0.58},
	{"shop", "business", 0.68},
	{"place", "business", 0.62},
	{"reviewer", "user", 0.80},
	{"customer", "user", 0.72},
	{"rating", "stars", 0.82},
	{"score", "stars", 0.70},
	{"comment", "review", 0.78},
	{"tip", "review", 0.64},
	{"city", "neighborhood", 0.60},
	{"checkin", "visit", 0.70},
	// IMDB (movies) vocabulary. As with papers~journal, "films" scores
	// slightly higher against the tv_series label than against movie, so
	// the baseline confuses them and log evidence corrects it.
	{"film", "movie", 0.92},
	{"film", "series", 0.92},
	{"film", "tv", 0.90},
	{"film", "title", 0.60},
	{"movie", "title", 0.62},
	{"show", "movie", 0.64},
	{"actor", "cast", 0.76},
	{"actress", "actor", 0.88},
	{"star", "actor", 0.70},
	{"director", "directed", 0.85},
	{"filmmaker", "director", 0.84},
	{"genre", "classification", 0.72},
	{"studio", "company", 0.80},
	{"producer", "company", 0.58},
	{"writer", "written", 0.82},
	// Cross-cutting near-ties that create baseline ambiguity.
	{"name", "title", 0.74},
	{"count", "number", 0.86},
	{"many", "count", 0.60},
	// Temporal prepositions map onto year-like attributes.
	{"after", "year", 0.70},
	{"since", "year", 0.70},
	{"before", "year", 0.70},
}
