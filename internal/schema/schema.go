// Package schema models the schema graph of a relational database as defined
// in the paper (Definition 1): relation vertices, attribute vertices,
// projection edges from a relation to each of its attributes, and FK-PK join
// edges from foreign-key attribute vertices to primary-key attribute vertices.
//
// The schema graph is the substrate for both keyword mapping (candidate
// relations/attributes come from it) and join path inference (Steiner trees
// are computed over it).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Type identifies the value domain of an attribute.
type Type int

const (
	// Text attributes hold free-form strings and are full-text indexed.
	Text Type = iota
	// Number attributes hold numeric values (int or float).
	Number
)

// String returns "text" or "number".
func (t Type) String() string {
	switch t {
	case Text:
		return "text"
	case Number:
		return "number"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Attribute describes one column of a relation.
type Attribute struct {
	// Name is the column name, unique within its relation.
	Name string
	// Type is the value domain.
	Type Type
	// PrimaryKey marks the relation's primary key column.
	PrimaryKey bool
}

// Relation describes one table and its attributes.
type Relation struct {
	// Name is the table name, unique within the graph.
	Name string
	// Attributes lists the columns in declaration order.
	Attributes []Attribute
}

// Attribute returns the attribute with the given name, or false.
func (r *Relation) Attribute(name string) (Attribute, bool) {
	for _, a := range r.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// PrimaryTextAttribute returns the relation's first text-typed attribute,
// or "". By common schema convention this is the human-readable label of
// the entity (name, title, text), which NLIDBs prefer as the default
// projection when a keyword names the entity but no specific attribute.
func (r *Relation) PrimaryTextAttribute() string {
	for _, a := range r.Attributes {
		if a.Type == Text {
			return a.Name
		}
	}
	return ""
}

// PrimaryKey returns the name of the primary key attribute, or "".
func (r *Relation) PrimaryKey() string {
	for _, a := range r.Attributes {
		if a.PrimaryKey {
			return a.Name
		}
	}
	return ""
}

// ForeignKey is an FK-PK join edge: FromRel.FromAttr references ToRel.ToAttr.
type ForeignKey struct {
	FromRel  string
	FromAttr string
	ToRel    string
	ToAttr   string
}

// String renders the edge as "a.b -> c.d".
func (fk ForeignKey) String() string {
	return fk.FromRel + "." + fk.FromAttr + " -> " + fk.ToRel + "." + fk.ToAttr
}

// Graph is the schema graph G_s = (V, E, w) of Definition 1. Vertices are
// addressed by name: relation vertices by relation name, attribute vertices
// by "relation.attribute".
type Graph struct {
	relations map[string]*Relation
	order     []string // relation names in insertion order, for determinism
	fks       []ForeignKey
	// adjacency between relation vertices induced by FK-PK edges:
	// rel -> sorted set of neighboring rels with the FKs connecting them.
	adj map[string]map[string][]ForeignKey
}

// NewGraph returns an empty schema graph.
func NewGraph() *Graph {
	return &Graph{
		relations: make(map[string]*Relation),
		adj:       make(map[string]map[string][]ForeignKey),
	}
}

// AddRelation registers a relation. It returns an error if the name is empty,
// duplicated, or has duplicate attribute names.
func (g *Graph) AddRelation(r Relation) error {
	if r.Name == "" {
		return fmt.Errorf("schema: relation with empty name")
	}
	if _, ok := g.relations[r.Name]; ok {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	seen := make(map[string]bool, len(r.Attributes))
	for _, a := range r.Attributes {
		if a.Name == "" {
			return fmt.Errorf("schema: relation %q has attribute with empty name", r.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema: relation %q has duplicate attribute %q", r.Name, a.Name)
		}
		seen[a.Name] = true
	}
	cp := r
	cp.Attributes = append([]Attribute(nil), r.Attributes...)
	g.relations[r.Name] = &cp
	g.order = append(g.order, r.Name)
	return nil
}

// AddForeignKey registers an FK-PK join edge. Both endpoints must exist.
func (g *Graph) AddForeignKey(fk ForeignKey) error {
	from, ok := g.relations[fk.FromRel]
	if !ok {
		return fmt.Errorf("schema: foreign key %v: unknown relation %q", fk, fk.FromRel)
	}
	to, ok := g.relations[fk.ToRel]
	if !ok {
		return fmt.Errorf("schema: foreign key %v: unknown relation %q", fk, fk.ToRel)
	}
	if _, ok := from.Attribute(fk.FromAttr); !ok {
		return fmt.Errorf("schema: foreign key %v: unknown attribute %q.%q", fk, fk.FromRel, fk.FromAttr)
	}
	if _, ok := to.Attribute(fk.ToAttr); !ok {
		return fmt.Errorf("schema: foreign key %v: unknown attribute %q.%q", fk, fk.ToRel, fk.ToAttr)
	}
	g.fks = append(g.fks, fk)
	g.link(fk.FromRel, fk.ToRel, fk)
	g.link(fk.ToRel, fk.FromRel, fk)
	return nil
}

func (g *Graph) link(a, b string, fk ForeignKey) {
	m := g.adj[a]
	if m == nil {
		m = make(map[string][]ForeignKey)
		g.adj[a] = m
	}
	m[b] = append(m[b], fk)
}

// Relation returns the relation with the given name, or false.
func (g *Graph) Relation(name string) (*Relation, bool) {
	r, ok := g.relations[name]
	return r, ok
}

// HasAttribute reports whether "rel.attr" names an existing attribute.
func (g *Graph) HasAttribute(rel, attr string) bool {
	r, ok := g.relations[rel]
	if !ok {
		return false
	}
	_, ok = r.Attribute(attr)
	return ok
}

// Relations returns relation names in insertion order. The slice is a copy.
func (g *Graph) Relations() []string {
	return append([]string(nil), g.order...)
}

// ForeignKeys returns all FK-PK edges in insertion order. The slice is a copy.
func (g *Graph) ForeignKeys() []ForeignKey {
	return append([]ForeignKey(nil), g.fks...)
}

// Neighbors returns the relation names adjacent to rel via any FK-PK edge,
// sorted for determinism.
func (g *Graph) Neighbors(rel string) []string {
	m := g.adj[rel]
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EdgesBetween returns the FK-PK edges connecting relations a and b, in
// registration order. Multiple parallel edges are possible (e.g. cite has
// both citing and cited FKs to publication).
func (g *Graph) EdgesBetween(a, b string) []ForeignKey {
	m := g.adj[a]
	if m == nil {
		return nil
	}
	return append([]ForeignKey(nil), m[b]...)
}

// Stats summarizes the graph for Table II-style reporting.
type Stats struct {
	Relations   int
	Attributes  int
	ForeignKeys int
}

// Stats returns relation/attribute/FK-PK counts.
func (g *Graph) Stats() Stats {
	s := Stats{Relations: len(g.relations), ForeignKeys: len(g.fks)}
	for _, r := range g.relations {
		s.Attributes += len(r.Attributes)
	}
	return s
}

// QualifiedAttributes returns every "rel.attr" pair in deterministic order.
func (g *Graph) QualifiedAttributes() []string {
	var out []string
	for _, rn := range g.order {
		r := g.relations[rn]
		for _, a := range r.Attributes {
			out = append(out, rn+"."+a.Name)
		}
	}
	return out
}

// TextAttributes returns every text-typed "rel.attr" in deterministic order.
func (g *Graph) TextAttributes() []string {
	var out []string
	for _, rn := range g.order {
		r := g.relations[rn]
		for _, a := range r.Attributes {
			if a.Type == Text {
				out = append(out, rn+"."+a.Name)
			}
		}
	}
	return out
}

// NumericAttributes returns every number-typed "rel.attr" in deterministic order.
func (g *Graph) NumericAttributes() []string {
	var out []string
	for _, rn := range g.order {
		r := g.relations[rn]
		for _, a := range r.Attributes {
			if a.Type == Number {
				out = append(out, rn+"."+a.Name)
			}
		}
	}
	return out
}

// SplitQualified splits "rel.attr" into its parts. It returns an error when
// the input does not contain exactly one dot.
func SplitQualified(q string) (rel, attr string, err error) {
	i := strings.IndexByte(q, '.')
	if i <= 0 || i == len(q)-1 || strings.IndexByte(q[i+1:], '.') >= 0 {
		return "", "", fmt.Errorf("schema: malformed qualified attribute %q", q)
	}
	return q[:i], q[i+1:], nil
}

// Validate checks structural invariants: every relation has a primary key if
// it is referenced by any FK, and FK endpoints have compatible types.
func (g *Graph) Validate() error {
	for _, fk := range g.fks {
		fa, _ := g.relations[fk.FromRel].Attribute(fk.FromAttr)
		ta, _ := g.relations[fk.ToRel].Attribute(fk.ToAttr)
		if fa.Type != ta.Type {
			return fmt.Errorf("schema: foreign key %v joins %v to %v", fk, fa.Type, ta.Type)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph. Join path inference forks the graph
// for self-joins (Algorithm 4), which must not mutate the shared schema.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for _, rn := range g.order {
		// AddRelation deep-copies attributes.
		if err := c.AddRelation(*g.relations[rn]); err != nil {
			panic("schema: clone: " + err.Error())
		}
	}
	for _, fk := range g.fks {
		if err := c.AddForeignKey(fk); err != nil {
			panic("schema: clone: " + err.Error())
		}
	}
	return c
}
