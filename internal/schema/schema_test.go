package schema

import (
	"strings"
	"testing"
)

// tinyGraph builds the simplified MAS fragment from the paper's Figure 1:
// publication -(jid)-> journal, publication_keyword bridging publication and
// keyword, etc.
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddRelation(Relation{Name: "journal", Attributes: []Attribute{
		{Name: "jid", Type: Number, PrimaryKey: true},
		{Name: "name", Type: Text},
	}}))
	must(g.AddRelation(Relation{Name: "publication", Attributes: []Attribute{
		{Name: "pid", Type: Number, PrimaryKey: true},
		{Name: "title", Type: Text},
		{Name: "year", Type: Number},
		{Name: "jid", Type: Number},
	}}))
	must(g.AddRelation(Relation{Name: "keyword", Attributes: []Attribute{
		{Name: "kid", Type: Number, PrimaryKey: true},
		{Name: "keyword", Type: Text},
	}}))
	must(g.AddRelation(Relation{Name: "publication_keyword", Attributes: []Attribute{
		{Name: "pid", Type: Number},
		{Name: "kid", Type: Number},
	}}))
	must(g.AddForeignKey(ForeignKey{"publication", "jid", "journal", "jid"}))
	must(g.AddForeignKey(ForeignKey{"publication_keyword", "pid", "publication", "pid"}))
	must(g.AddForeignKey(ForeignKey{"publication_keyword", "kid", "keyword", "kid"}))
	return g
}

func TestAddRelationRejectsDuplicates(t *testing.T) {
	g := NewGraph()
	if err := g.AddRelation(Relation{Name: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRelation(Relation{Name: "r"}); err == nil {
		t.Fatal("expected duplicate relation error")
	}
	if err := g.AddRelation(Relation{Name: ""}); err == nil {
		t.Fatal("expected empty-name error")
	}
	if err := g.AddRelation(Relation{Name: "s", Attributes: []Attribute{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("expected duplicate attribute error")
	}
}

func TestAddForeignKeyValidatesEndpoints(t *testing.T) {
	g := tinyGraph(t)
	bad := []ForeignKey{
		{"nope", "x", "journal", "jid"},
		{"publication", "nope", "journal", "jid"},
		{"publication", "jid", "nope", "jid"},
		{"publication", "jid", "journal", "nope"},
	}
	for _, fk := range bad {
		if err := g.AddForeignKey(fk); err == nil {
			t.Errorf("AddForeignKey(%v): expected error", fk)
		}
	}
}

func TestNeighborsAndEdges(t *testing.T) {
	g := tinyGraph(t)
	nb := g.Neighbors("publication")
	want := []string{"journal", "publication_keyword"}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(publication) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(publication) = %v, want %v", nb, want)
		}
	}
	edges := g.EdgesBetween("publication", "journal")
	if len(edges) != 1 || edges[0].FromAttr != "jid" {
		t.Fatalf("EdgesBetween = %v", edges)
	}
	// Symmetric view.
	edges2 := g.EdgesBetween("journal", "publication")
	if len(edges2) != 1 {
		t.Fatalf("EdgesBetween reversed = %v", edges2)
	}
	if g.EdgesBetween("journal", "keyword") != nil {
		t.Fatal("journal and keyword must not be adjacent")
	}
}

func TestStats(t *testing.T) {
	g := tinyGraph(t)
	s := g.Stats()
	if s.Relations != 4 || s.Attributes != 10 || s.ForeignKeys != 3 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestQualifiedAndTypedAttributeEnumeration(t *testing.T) {
	g := tinyGraph(t)
	qa := g.QualifiedAttributes()
	if len(qa) != 10 {
		t.Fatalf("QualifiedAttributes len = %d", len(qa))
	}
	if qa[0] != "journal.jid" || qa[1] != "journal.name" {
		t.Fatalf("unexpected order: %v", qa[:2])
	}
	text := g.TextAttributes()
	for _, q := range text {
		if strings.Contains(q, "id") {
			t.Errorf("id column classified as text: %s", q)
		}
	}
	if len(text) != 3 { // journal.name, publication.title, keyword.keyword
		t.Fatalf("TextAttributes = %v", text)
	}
	num := g.NumericAttributes()
	if len(num)+len(text) != len(qa) {
		t.Fatalf("typed partitions do not cover all attributes: %d + %d != %d", len(num), len(text), len(qa))
	}
}

func TestSplitQualified(t *testing.T) {
	rel, attr, err := SplitQualified("publication.title")
	if err != nil || rel != "publication" || attr != "title" {
		t.Fatalf("SplitQualified = %q %q %v", rel, attr, err)
	}
	for _, bad := range []string{"", "noDot", ".leading", "trailing.", "a.b.c"} {
		if _, _, err := SplitQualified(bad); err == nil {
			t.Errorf("SplitQualified(%q): expected error", bad)
		}
	}
}

func TestPrimaryKeyLookup(t *testing.T) {
	g := tinyGraph(t)
	r, _ := g.Relation("publication")
	if pk := r.PrimaryKey(); pk != "pid" {
		t.Fatalf("PrimaryKey = %q", pk)
	}
	r2, _ := g.Relation("publication_keyword")
	if pk := r2.PrimaryKey(); pk != "" {
		t.Fatalf("junction table PrimaryKey = %q, want empty", pk)
	}
}

func TestValidateTypeCompatibility(t *testing.T) {
	g := NewGraph()
	_ = g.AddRelation(Relation{Name: "a", Attributes: []Attribute{{Name: "x", Type: Text}}})
	_ = g.AddRelation(Relation{Name: "b", Attributes: []Attribute{{Name: "y", Type: Number}}})
	_ = g.AddForeignKey(ForeignKey{"a", "x", "b", "y"})
	if err := g.Validate(); err == nil {
		t.Fatal("expected type mismatch error")
	}
	if err := tinyGraph(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := tinyGraph(t)
	c := g.Clone()
	if err := c.AddRelation(Relation{Name: "extra"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Relation("extra"); ok {
		t.Fatal("mutating clone leaked into original")
	}
	gs, cs := g.Stats(), c.Stats()
	if cs.Relations != gs.Relations+1 || cs.ForeignKeys != gs.ForeignKeys {
		t.Fatalf("clone stats: %+v vs %+v", cs, gs)
	}
	// Mutating a relation's attributes in the clone must not affect original.
	cr, _ := c.Relation("journal")
	cr.Attributes[1].Name = "renamed"
	gr, _ := g.Relation("journal")
	if gr.Attributes[1].Name != "name" {
		t.Fatal("attribute slice shared between clone and original")
	}
}

func TestRelationsReturnsCopy(t *testing.T) {
	g := tinyGraph(t)
	rels := g.Relations()
	rels[0] = "clobbered"
	if g.Relations()[0] == "clobbered" {
		t.Fatal("Relations exposed internal slice")
	}
	fks := g.ForeignKeys()
	fks[0].FromRel = "clobbered"
	if g.ForeignKeys()[0].FromRel == "clobbered" {
		t.Fatal("ForeignKeys exposed internal slice")
	}
}

func TestTypeString(t *testing.T) {
	if Text.String() != "text" || Number.String() != "number" {
		t.Fatal("Type.String mismatch")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
}
