package feedback

import (
	"errors"
	"sync"
	"time"
)

// DefaultCapacity is the ledger ring size used when the tenant does not
// configure one. Sized so a burst of served traffic between a user seeing
// a translation and judging it does not evict the entry: at 1k served
// translations/s a verdict may arrive up to ~4s late.
const DefaultCapacity = 4096

// Sentinel errors returned by Claim. The serving layer maps these onto
// the wire codes unknown_request_id and feedback_conflict.
var (
	// ErrUnknown means the request ID was never recorded or has been
	// evicted from the ring.
	ErrUnknown = errors.New("feedback: unknown request id")
	// ErrConflict means a verdict for the request ID has already been
	// applied, or another submission is in flight right now.
	ErrConflict = errors.New("feedback: verdict already submitted")
)

// Verdict is a user's judgement of a served translation. The values
// mirror the wire constants in pkg/api.
type Verdict string

const (
	Accepted  Verdict = "accepted"
	Rejected  Verdict = "rejected"
	Corrected Verdict = "corrected"
)

// Served is one successfully translated batch item as it was emitted to
// the client: the canonical SQL, the winning configuration's full-form
// fragments, and the joint score it won with.
type Served struct {
	Query     string   // the natural-language/keyword input text
	SQL       string   // canonical SQL emitted to the client
	Fragments []string // winning configuration fragments (full form)
	Score     float64
}

// Entry is one ledger record: everything the server needs to turn a
// later verdict into a log append without re-running the translation.
type Entry struct {
	RequestID  string
	Dataset    string
	Obscurity  string // obscurity level of the log that served it
	Served     []Served
	RecordedAt time.Time
}

// Stats is a point-in-time counter snapshot, surfaced on /healthz and
// dataset status as api.FeedbackStatus.
type Stats struct {
	Size     int // entries currently in the ring
	Capacity int

	Recorded   int64 // translations recorded
	Evicted    int64 // entries displaced by ring wrap before any verdict
	Duplicates int64 // Record calls dropped because the ID was already present

	Accepted  int64
	Rejected  int64
	Corrected int64

	Conflicts int64 // Claim failures: verdict already submitted / in flight
	Unknown   int64 // Claim failures: ID never recorded or evicted
}

// entryState is the verdict lifecycle of a ledger entry.
type entryState int

const (
	stateOpen    entryState = iota // recorded, no verdict yet
	statePending                   // a verdict submission holds the claim
	stateDone                      // a verdict has been applied
)

type slot struct {
	e     Entry
	state entryState
}

// Ledger is a bounded, concurrency-safe ring of recently served
// translations keyed by request ID.
//
// The verdict lifecycle is a three-step claim protocol so that exactly
// one submission per request ID can ever mutate the log:
//
//	Claim   -- open -> pending; returns the entry. Concurrent or repeat
//	           claims fail with ErrConflict, unrecorded IDs with ErrUnknown.
//	Commit  -- pending -> done; the verdict was applied (or recorded, for
//	           rejections). The entry can never be claimed again.
//	Release -- pending -> open; the apply failed (e.g. frozen log, lost
//	           client); the verdict may be retried later.
//
// When the ring is full, recording a new translation evicts the oldest
// entry regardless of its state — a verdict arriving after eviction gets
// ErrUnknown, which clients treat as "too late".
type Ledger struct {
	mu    sync.Mutex
	ring  []string // request IDs in arrival order; "" while warming up
	next  int      // ring index the next Record overwrites
	byID  map[string]*slot
	stats Stats
}

// New returns a ledger holding at most capacity entries. Capacity must
// be positive.
func New(capacity int) *Ledger {
	if capacity <= 0 {
		panic("feedback: capacity must be positive")
	}
	return &Ledger{
		ring: make([]string, capacity),
		byID: make(map[string]*slot, capacity),
	}
}

// Record stores a served translation under its request ID, evicting the
// oldest entry if the ring is full. A duplicate ID is dropped (the first
// recording wins) so a verdict can never be re-armed by replaying the
// translation; Record reports whether the entry was stored.
func (l *Ledger) Record(e Entry) bool {
	if e.RequestID == "" || len(e.Served) == 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byID[e.RequestID]; ok {
		l.stats.Duplicates++
		return false
	}
	if old := l.ring[l.next]; old != "" {
		if s, ok := l.byID[old]; ok {
			if s.state != stateDone {
				l.stats.Evicted++
			}
			delete(l.byID, old)
		}
	}
	l.ring[l.next] = e.RequestID
	l.next = (l.next + 1) % len(l.ring)
	l.byID[e.RequestID] = &slot{e: e}
	l.stats.Recorded++
	return true
}

// Claim moves an open entry to pending and returns a copy of it. It
// fails with ErrUnknown for IDs never recorded (or already evicted) and
// with ErrConflict when a verdict was already applied or another
// submission currently holds the claim.
func (l *Ledger) Claim(id string) (Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.byID[id]
	if !ok {
		l.stats.Unknown++
		return Entry{}, ErrUnknown
	}
	if s.state != stateOpen {
		l.stats.Conflicts++
		return Entry{}, ErrConflict
	}
	s.state = statePending
	return s.e, nil
}

// Commit finalizes a claimed entry: the verdict counter is bumped and
// the entry is permanently closed to further submissions.
func (l *Ledger) Commit(id string, v Verdict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.byID[id]
	if !ok || s.state != statePending {
		return
	}
	s.state = stateDone
	switch v {
	case Accepted:
		l.stats.Accepted++
	case Rejected:
		l.stats.Rejected++
	case Corrected:
		l.stats.Corrected++
	}
}

// Release returns a claimed entry to the open state after a failed
// apply, so the client may retry the verdict.
func (l *Ledger) Release(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.byID[id]; ok && s.state == statePending {
		s.state = stateOpen
	}
}

// Stats returns a point-in-time snapshot of the ledger counters.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Size = len(l.byID)
	st.Capacity = len(l.ring)
	return st
}
