// Package feedback closes the serving loop: it remembers what the server
// recently answered so that user verdicts on those answers can be turned
// into query-log appends.
//
// The paper's central claim is that SQL query logs bridge the semantic
// gap between keyword queries and schema structure. A served translation
// that a user accepts (or corrects) is exactly the kind of log evidence
// the QFG mines — this package is the bookkeeping that lets the serving
// layer harvest it safely.
//
// The only type is Ledger, a bounded concurrency-safe ring of recently
// served translations keyed by request ID. The v2 translate handler
// records every successful response; POST /v2/{dataset}/feedback looks
// the request ID back up and — via the Claim/Commit/Release protocol —
// guarantees at most one verdict per served translation ever reaches the
// write-ahead log, no matter how many concurrent or repeated submissions
// race. See docs/LEARNING.md for the full verdict lifecycle and the
// poisoning guardrails layered on top.
package feedback
