package feedback

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func entry(id string) Entry {
	return Entry{
		RequestID: id,
		Dataset:   "mas",
		Served:    []Served{{Query: "papers:select", SQL: "SELECT ...", Score: 1}},
	}
}

func TestRecordAndClaim(t *testing.T) {
	l := New(4)
	if !l.Record(entry("a")) {
		t.Fatal("Record = false")
	}
	got, err := l.Claim("a")
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestID != "a" || len(got.Served) != 1 {
		t.Fatalf("claimed %+v", got)
	}
}

func TestRecordRejectsEmptyAndDuplicates(t *testing.T) {
	l := New(4)
	if l.Record(Entry{RequestID: "", Served: []Served{{SQL: "x"}}}) {
		t.Fatal("recorded entry without id")
	}
	if l.Record(Entry{RequestID: "a"}) {
		t.Fatal("recorded entry without served items")
	}
	if !l.Record(entry("a")) || l.Record(entry("a")) {
		t.Fatal("duplicate id not dropped")
	}
	if st := l.Stats(); st.Duplicates != 1 || st.Recorded != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClaimLifecycle(t *testing.T) {
	l := New(4)
	l.Record(entry("a"))

	if _, err := l.Claim("missing"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown claim err = %v", err)
	}
	if _, err := l.Claim("a"); err != nil {
		t.Fatal(err)
	}
	// Concurrent second submission while the first is pending.
	if _, err := l.Claim("a"); !errors.Is(err, ErrConflict) {
		t.Fatalf("pending claim err = %v", err)
	}
	// A failed apply releases; the verdict can be retried.
	l.Release("a")
	if _, err := l.Claim("a"); err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	// A committed verdict is final.
	l.Commit("a", Accepted)
	if _, err := l.Claim("a"); !errors.Is(err, ErrConflict) {
		t.Fatalf("claim after commit err = %v", err)
	}

	st := l.Stats()
	if st.Accepted != 1 || st.Conflicts != 2 || st.Unknown != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCommitRequiresPending(t *testing.T) {
	l := New(4)
	l.Record(entry("a"))
	l.Commit("a", Accepted) // not claimed: ignored
	l.Commit("b", Accepted) // unknown: ignored
	l.Release("a")          // not pending: ignored
	if st := l.Stats(); st.Accepted != 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := l.Claim("a"); err != nil {
		t.Fatalf("entry should still be open: %v", err)
	}
}

func TestRingEviction(t *testing.T) {
	l := New(2)
	l.Record(entry("a"))
	l.Record(entry("b"))
	l.Record(entry("c")) // evicts a
	if _, err := l.Claim("a"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("evicted claim err = %v", err)
	}
	if _, err := l.Claim("b"); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Size != 2 || st.Capacity != 2 || st.Evicted != 1 || st.Recorded != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEvictionOfResolvedEntryNotCounted(t *testing.T) {
	l := New(1)
	l.Record(entry("a"))
	if _, err := l.Claim("a"); err != nil {
		t.Fatal(err)
	}
	l.Commit("a", Rejected)
	l.Record(entry("b")) // displaces the already-resolved a
	if st := l.Stats(); st.Evicted != 0 {
		t.Fatalf("resolved displacement counted as eviction: %+v", st)
	}
}

// TestConcurrentClaimExactlyOnce races many submitters per entry and
// asserts exactly one wins each claim.
func TestConcurrentClaimExactlyOnce(t *testing.T) {
	l := New(64)
	const entries, racers = 32, 8
	for i := 0; i < entries; i++ {
		l.Record(entry(fmt.Sprintf("r%d", i)))
	}
	var wg sync.WaitGroup
	wins := make([]int32, entries)
	var winsMu sync.Mutex
	for i := 0; i < entries; i++ {
		for j := 0; j < racers; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := l.Claim(fmt.Sprintf("r%d", i)); err == nil {
					winsMu.Lock()
					wins[i]++
					winsMu.Unlock()
					l.Commit(fmt.Sprintf("r%d", i), Accepted)
				}
			}(i)
		}
	}
	wg.Wait()
	for i, w := range wins {
		if w != 1 {
			t.Fatalf("entry %d claimed %d times", i, w)
		}
	}
	st := l.Stats()
	if st.Accepted != entries || st.Conflicts != entries*(racers-1) {
		t.Fatalf("stats %+v", st)
	}
}

func TestNewPanicsOnNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}
