package qfg

import (
	"fmt"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// Session support implements the paper's stated future work (§VIII):
// exploiting user sessions in the SQL query log. Queries issued within one
// session serve a single information need, so fragments from *different*
// queries of a session carry co-occurrence evidence too — weaker than
// within-query co-occurrence, and decaying with the distance between the
// queries in the session.
//
// Session evidence is stored separately from the integer nv/ne counts of
// Definition 6 and folded into Dice as a fractional addend:
//
//	Dice_s(c1, c2) = (2·(ne(c1,c2) + sess(c1,c2))) / (nv(c1) + nv(c2))
//
// where sess accumulates decay^(j-i) for fragments of the i-th and j-th
// query of a session. With no sessions added, Dice_s ≡ Dice.

// AddSession folds an ordered session of alias-resolved queries into the
// graph. Each query is first added individually (contributing the usual
// nv/ne counts); then every cross-query fragment pair (fa from query i,
// fb from query j, i < j) gains decay^(j-i) of session co-occurrence.
// decay must lie in (0, 1]; count is the session's multiplicity.
func (g *Graph) AddSession(queries []*sqlparse.Query, count int, decay float64) error {
	if decay <= 0 || decay > 1 {
		return fmt.Errorf("qfg: session decay %v outside (0, 1]", decay)
	}
	if count <= 0 {
		return nil
	}
	frags := make([][]fragment.Fragment, len(queries))
	for i, q := range queries {
		g.AddQuery(q, count)
		frags[i] = fragment.Extract(q, g.obscurity)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.sessNe == nil {
		g.sessNe = make(map[pairKey]float64)
	}
	for i := 0; i < len(frags); i++ {
		w := 1.0
		for j := i + 1; j < len(frags); j++ {
			w *= decay
			for _, fa := range frags[i] {
				for _, fb := range frags[j] {
					if fa == fb {
						continue
					}
					g.sessNe[makePair(fa, fb)] += w * float64(count)
				}
			}
		}
	}
	return nil
}

// SessionCoOccurrence returns the accumulated (decayed) cross-query session
// evidence for a fragment pair.
func (g *Graph) SessionCoOccurrence(a, b fragment.Fragment) float64 {
	if a == b {
		return 0
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.sessNe[makePair(a, b)]
}

// SessionEdges returns the number of fragment pairs carrying session
// evidence.
func (g *Graph) SessionEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.sessNe)
}
