package qfg

import (
	"math"
	"testing"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

func sessionQueries(t *testing.T) []*sqlparse.Query {
	t.Helper()
	srcs := []string{
		"SELECT j.name FROM journal j",
		"SELECT p.title FROM publication p WHERE p.year > 2000",
		"SELECT p.title FROM publication p WHERE p.year > 1995",
	}
	out := make([]*sqlparse.Query, len(srcs))
	for i, s := range srcs {
		q := sqlparse.MustParse(s)
		if err := q.Resolve(nil); err != nil {
			t.Fatal(err)
		}
		out[i] = q
	}
	return out
}

func TestAddSessionCrossQueryEvidence(t *testing.T) {
	g := New(fragment.NoConstOp)
	if err := g.AddSession(sessionQueries(t), 1, 0.5); err != nil {
		t.Fatal(err)
	}
	jname := fragment.Attr("journal.name", "")
	title := fragment.Attr("publication.title", "")
	// j.name (query 0) and p.title (queries 1 and 2): decay^1 + decay^2.
	want := 0.5 + 0.25
	if got := g.SessionCoOccurrence(jname, title); math.Abs(got-want) > 1e-12 {
		t.Fatalf("session co-occurrence = %v, want %v", got, want)
	}
	// Within-query counts accumulate as usual.
	if g.Occurrences(title) != 2 || g.Occurrences(jname) != 1 {
		t.Fatalf("nv = %d / %d", g.Occurrences(title), g.Occurrences(jname))
	}
	// Dice blends session evidence: pure ne(jname,title) = 0, so the whole
	// coefficient comes from the session: 2*0.75/(1+2).
	if got := g.Dice(jname, title); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("session Dice = %v, want 0.5", got)
	}
}

func TestAddSessionNoEffectWithoutSessions(t *testing.T) {
	// Graphs built purely with AddQuery behave exactly as Definition 6.
	g := buildFigure3(t, fragment.NoConstOp)
	if g.SessionEdges() != 0 {
		t.Fatal("no session edges expected")
	}
	title := fragment.Attr("publication.title", "")
	pub := fragment.Relation("publication")
	if d := g.Dice(title, pub); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Dice without sessions = %v", d)
	}
}

func TestAddSessionValidation(t *testing.T) {
	g := New(fragment.NoConstOp)
	qs := sessionQueries(t)
	if err := g.AddSession(qs, 1, 0); err == nil {
		t.Fatal("decay 0 must be rejected")
	}
	if err := g.AddSession(qs, 1, 1.5); err == nil {
		t.Fatal("decay > 1 must be rejected")
	}
	if err := g.AddSession(qs, 0, 0.5); err != nil {
		t.Fatal("zero count must be a no-op, not an error")
	}
	if g.Queries() != 0 {
		t.Fatal("zero-count session must not add queries")
	}
}

func TestSessionDiceClamped(t *testing.T) {
	// Heavy session evidence cannot push Dice past 1.
	g := New(fragment.NoConstOp)
	qs := sessionQueries(t)[:2]
	for i := 0; i < 10; i++ {
		if err := g.AddSession(qs, 1, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	jname := fragment.Attr("journal.name", "")
	title := fragment.Attr("publication.title", "")
	if d := g.Dice(jname, title); d > 1 {
		t.Fatalf("Dice = %v > 1", d)
	}
}

func TestSessionIdenticalFragmentsSkipped(t *testing.T) {
	// The same fragment appearing in two session queries must not gain
	// self co-occurrence.
	g := New(fragment.NoConstOp)
	qs := sessionQueries(t)[1:] // two p.title queries
	if err := g.AddSession(qs, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	title := fragment.Attr("publication.title", "")
	if got := g.SessionCoOccurrence(title, title); got != 0 {
		t.Fatalf("self session co-occurrence = %v", got)
	}
	// But the NoConstOp year fragments are identical across both queries,
	// so (title, year) still accumulates via the cross pairs.
	year := fragment.Fragment{Context: fragment.Where, Expr: "publication.year ?op ?val"}
	if got := g.SessionCoOccurrence(title, year); got <= 0 {
		t.Fatalf("cross evidence = %v", got)
	}
}
