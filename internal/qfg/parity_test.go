package qfg_test

import (
	"math"
	"testing"

	"templar/internal/datasets"
	"templar/internal/fragment"
	"templar/internal/qfg"
	"templar/internal/sqlparse"
)

// buildDatasetGraph folds a dataset's full gold-SQL log into a QFG.
func buildDatasetGraph(t *testing.T, ds *datasets.Dataset, ob fragment.Obscurity) *qfg.Graph {
	t.Helper()
	entries := make([]sqlparse.LogEntry, 0, len(ds.Tasks))
	for _, task := range ds.Tasks {
		q, err := sqlparse.Parse(task.Gold)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		entries = append(entries, sqlparse.LogEntry{Query: q, Count: 1})
	}
	g, err := qfg.Build(entries, ob)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSnapshotParityAllDatasets is the tentpole acceptance test: on IMDB,
// MAS and Yelp, at all three obscurity levels, the compiled snapshot must
// agree bit-for-bit with the map-backed graph on nv for every fragment and
// on Dice for every fragment pair (present × present, present × absent and
// absent × absent alike).
func TestSnapshotParityAllDatasets(t *testing.T) {
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			for _, ob := range fragment.Levels() {
				g := buildDatasetGraph(t, ds, ob)
				s := g.Snapshot(nil)

				if s.Queries() != g.Queries() || s.Vertices() != g.Vertices() || s.Edges() != g.Edges() {
					t.Fatalf("%v: shape mismatch: snapshot (%d, %d, %d) vs graph (%d, %d, %d)", ob,
						s.Queries(), s.Vertices(), s.Edges(), g.Queries(), g.Vertices(), g.Edges())
				}

				frags := make([]fragment.Fragment, 0, g.Vertices()+1)
				for _, e := range g.Top(1 << 30) {
					frags = append(frags, e.Fragment)
				}
				frags = append(frags, fragment.Relation("never_logged_relation"))

				for _, f := range frags {
					if got, want := s.Occurrences(f), g.Occurrences(f); got != want {
						t.Fatalf("%v: nv(%v) = %d, want %d", ob, f, got, want)
					}
				}
				mismatches := 0
				for i, a := range frags {
					for j := i; j < len(frags); j++ {
						b := frags[j]
						got, want := s.Dice(a, b), g.Dice(a, b)
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Errorf("%v: Dice(%v, %v) = %v, want %v", ob, a, b, got, want)
							if mismatches++; mismatches > 5 {
								t.Fatalf("too many mismatches")
							}
						}
					}
				}
			}
		})
	}
}
