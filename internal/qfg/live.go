package qfg

import (
	"sync"
	"sync/atomic"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// Live couples a mutable builder Graph with an atomically published
// Snapshot: readers load the current snapshot with one atomic pointer read
// and never block, while log appends mutate the builder and republish a
// freshly compiled snapshot (copy-on-write). All snapshots share one
// interning table, so fragment IDs stay stable across republishes.
//
// Appends recompile the full snapshot, so they cost O(V + E); they are
// expected to be rare relative to reads (a serving layer folding user
// queries back into its log). Concurrent appends serialize on an internal
// mutex.
type Live struct {
	mu       sync.Mutex // serializes builder mutations + republish
	builder  *Graph
	interner *fragment.Interner
	snap     atomic.Pointer[Snapshot]
}

// NewLive wraps a builder graph and publishes its first snapshot. The
// builder must not be mutated directly afterwards — append through Live.
func NewLive(g *Graph) *Live {
	l := &Live{builder: g, interner: fragment.NewInterner()}
	l.snap.Store(g.Snapshot(l.interner))
	return l
}

// CurrentSnapshot returns the latest published snapshot (lock-free).
func (l *Live) CurrentSnapshot() *Snapshot { return l.snap.Load() }

// Obscurity returns the builder graph's obscurity level.
func (l *Live) Obscurity() fragment.Obscurity { return l.builder.Obscurity() }

// AddQuery folds one alias-resolved query into the log and republishes.
func (l *Live) AddQuery(q *sqlparse.Query, count int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.builder.AddQuery(q, count)
	l.snap.Store(l.builder.Snapshot(l.interner))
}

// AddQueries folds a batch of alias-resolved queries into the log and
// republishes once: readers see either none or all of the batch, and the
// O(V + E) snapshot compile is paid per batch, not per query. counts[i] is
// the multiplicity of queries[i]; a nil counts applies 1 to every query.
func (l *Live) AddQueries(queries []*sqlparse.Query, counts []int) {
	if counts != nil && len(counts) != len(queries) {
		// Fail before touching the builder: a partial batch must never be
		// half-applied.
		panic("qfg: AddQueries counts length does not match queries")
	}
	if len(queries) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, q := range queries {
		count := 1
		if counts != nil {
			count = counts[i]
		}
		l.builder.AddQuery(q, count)
	}
	l.snap.Store(l.builder.Snapshot(l.interner))
}

// AddSession folds an ordered session of alias-resolved queries into the
// log (see Graph.AddSession) and republishes.
func (l *Live) AddSession(queries []*sqlparse.Query, count int, decay float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.builder.AddSession(queries, count, decay); err != nil {
		return err
	}
	l.snap.Store(l.builder.Snapshot(l.interner))
	return nil
}

// Reset replaces the live state in place with the given snapshot, exactly
// as NewLiveFromSnapshot would build it: the builder is rehydrated from the
// snapshot and the snapshot's interning table (with its pinned fragment
// IDs) becomes the live one. Readers holding the Live see the new state on
// their next CurrentSnapshot load — the re-bootstrap path a replication
// follower takes when its applied position has been compacted away on the
// primary.
func (l *Live) Reset(s *Snapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.builder = RehydrateGraph(s)
	l.interner = s.interner
	l.snap.Store(s)
}

// ReplayOp is one logged append operation for Replay: a query batch
// (Counts[i] is Queries[i]'s multiplicity, nil = all 1) or, with Session
// set, an ordered session with the given multiplicity and decay.
type ReplayOp struct {
	Session bool
	Queries []*sqlparse.Query
	Counts  []int
	Count   int
	Decay   float64
}

// Replay folds a sequence of recovered append operations into the log and
// republishes once, producing a snapshot byte-identical to the one an
// engine that had applied the same operations through AddQueries and
// AddSession would serve. Identity holds because each operation's new
// fragments are interned in sorted order before the next operation's — the
// exact ID assignment the per-operation republishes would have made — and
// edge weights accumulate in the same record order; only the O(V + E)
// compile is deferred to the end. An error mid-replay (a corrupt operation
// that validation upstream should have rejected) leaves the snapshot
// unpublished and the Live unusable.
func (l *Live) Replay(ops []ReplayOp) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, op := range ops {
		if op.Session {
			if err := l.builder.AddSession(op.Queries, op.Count, op.Decay); err != nil {
				return err
			}
		} else {
			for i, q := range op.Queries {
				count := 1
				if op.Counts != nil {
					count = op.Counts[i]
				}
				l.builder.AddQuery(q, count)
			}
		}
		l.builder.internFragments(l.interner)
	}
	l.snap.Store(l.builder.Snapshot(l.interner))
	return nil
}
