package qfg

import (
	"math"
	"reflect"
	"testing"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

func parseAll(t *testing.T, sqls ...string) []*sqlparse.Query {
	t.Helper()
	out := make([]*sqlparse.Query, 0, len(sqls))
	for _, s := range sqls {
		q, err := sqlparse.Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		out = append(out, q)
	}
	return out
}

// applyIncremental drives ops through the per-request entry points exactly
// as the serving layer does: one AddQueries or AddSession call — and hence
// one republish — per operation.
func applyIncremental(t *testing.T, l *Live, ops []ReplayOp) {
	t.Helper()
	for _, op := range ops {
		if op.Session {
			if err := l.AddSession(op.Queries, op.Count, op.Decay); err != nil {
				t.Fatal(err)
			}
		} else {
			l.AddQueries(op.Queries, op.Counts)
		}
	}
}

// assertSnapshotsBitIdentical compares two snapshots the way the store
// codec would serialize them: same interner table in the same ID order,
// and every compiled array equal with float64 weights bit for bit.
func assertSnapshotsBitIdentical(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(got.Interner().Fragments(), want.Interner().Fragments()) {
		t.Fatalf("interner tables diverged:\n got %v\nwant %v",
			got.Interner().Fragments(), want.Interner().Fragments())
	}
	gp, wp := got.Parts(), want.Parts()
	if gp.Obscurity != wp.Obscurity || gp.Queries != wp.Queries {
		t.Fatalf("snapshot scalars diverged: %+v vs %+v", gp.Obscurity, wp.Obscurity)
	}
	if !reflect.DeepEqual(gp.NV, wp.NV) || !reflect.DeepEqual(gp.RowStart, wp.RowStart) ||
		!reflect.DeepEqual(gp.ColID, wp.ColID) || !reflect.DeepEqual(gp.NECount, wp.NECount) {
		t.Fatal("compiled arrays diverged")
	}
	if len(gp.Co) != len(wp.Co) {
		t.Fatalf("co-occurrence arrays: %d vs %d entries", len(gp.Co), len(wp.Co))
	}
	for i := range gp.Co {
		if math.Float64bits(gp.Co[i]) != math.Float64bits(wp.Co[i]) {
			t.Fatalf("co-occurrence weight %d: %x vs %x bits", i,
				math.Float64bits(gp.Co[i]), math.Float64bits(wp.Co[i]))
		}
	}
}

// TestReplayMatchesIncremental is the recovery-parity gate at the engine
// level: folding a recorded op sequence in via one Replay call must yield a
// snapshot bit-identical — interner ID order included — to an engine that
// served the same ops one request at a time. The ops deliberately introduce
// fragments in anti-sorted order across operations (z_venue before
// a_author), so a replay that interned everything in one final sorted pass
// would assign different IDs and fail.
func TestReplayMatchesIncremental(t *testing.T) {
	base := `
3x: SELECT j.name FROM journal j
SELECT p.title FROM publication p WHERE p.year > 2003
`
	ops := []ReplayOp{
		{Queries: parseAll(t, "SELECT z.name FROM z_venue z"), Counts: []int{2}},
		{Session: true, Count: 1, Decay: 0.5, Queries: parseAll(t,
			"SELECT a.name FROM a_author a",
			"SELECT a.name FROM a_author a, z_venue z WHERE a.vid = z.vid",
		)},
		{Queries: parseAll(t,
			"SELECT j.name FROM journal j",
			"SELECT m.title FROM m_paper m WHERE m.year = 2020",
		)},
		{Session: true, Count: 3, Decay: 0.25, Queries: parseAll(t,
			"SELECT p.title FROM publication p WHERE p.year > 2003",
			"SELECT z.name FROM z_venue z",
		)},
	}

	build := func() *Live {
		entries, err := sqlparse.ParseLog(base)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(entries, fragment.NoConstOp)
		if err != nil {
			t.Fatal(err)
		}
		return NewLive(g)
	}

	incremental := build()
	applyIncremental(t, incremental, ops)

	replayed := build()
	if err := replayed.Replay(ops); err != nil {
		t.Fatal(err)
	}

	assertSnapshotsBitIdentical(t, replayed.CurrentSnapshot(), incremental.CurrentSnapshot())

	// Parity must survive further live appends on both engines: the replayed
	// engine is a full peer, not a read-only reconstruction.
	more := parseAll(t, "SELECT b.name FROM b_conf b, journal j WHERE b.jid = j.jid")
	incremental.AddQueries(more, nil)
	replayed.AddQueries(more, nil)
	assertSnapshotsBitIdentical(t, replayed.CurrentSnapshot(), incremental.CurrentSnapshot())
}

// TestReplayEmptyAndErrors pins the edges: an empty replay republishes the
// base state unchanged, and an invalid session op surfaces its error.
func TestReplayEmptyAndErrors(t *testing.T) {
	entries, err := sqlparse.ParseLog("SELECT j.name FROM journal j")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLive(g)
	before := l.CurrentSnapshot()
	if err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	assertSnapshotsBitIdentical(t, l.CurrentSnapshot(), before)

	bad := []ReplayOp{{Session: true, Count: 1, Decay: 1.5, Queries: parseAll(t, "SELECT j.name FROM journal j")}}
	if err := l.Replay(bad); err == nil {
		t.Fatal("replay accepted an out-of-range session decay")
	}
}
