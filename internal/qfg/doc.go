// Package qfg implements the Query Fragment Graph (paper Definition 6): a
// graph whose vertices are query fragments observed in a SQL query log,
// with an occurrence count nv per fragment and a co-occurrence count ne
// per pair of fragments that appear together in at least one logged query.
//
// The QFG drives both of Templar's log-based scores:
//
//   - keyword-mapping configurations are ranked with the geometric mean of
//     Dice coefficients over non-FROM fragment pairs (§V-C2), and
//   - join-path edge weights are set to 1 − Dice over FROM fragments (§VI-A2).
//
// # Three representations, one graph
//
// Graph is the mutable builder: fragment-keyed maps behind an RWMutex,
// grown by AddQuery/AddQueries/AddSession and inspected with Occurrences,
// CoOccurrences, Dice, Top and Neighbors. Build mines a parsed log in one
// call.
//
// Snapshot is the immutable compiled view serving reads come from:
// fragments interned to dense uint32 IDs (fragment.Interner), nv in a flat
// slice, ne as CSR-sorted adjacency probed by binary search. DiceID — the
// hot path — is a handful of array reads, lock-free, bit-identical to
// Graph.Dice on the same state. Graph.Snapshot compiles one; snapshots
// sharing an interner agree on every fragment ID.
//
// Live couples a builder with an atomically published snapshot: appends
// mutate the builder and republish copy-on-write, readers load the current
// snapshot with one atomic pointer read and are never blocked. The
// SnapshotSource interface abstracts "a place the current snapshot comes
// from" — a fixed *Snapshot and a *Live both satisfy it.
//
// # Persistence
//
// Parts/NewSnapshotFromParts expose and reassemble a snapshot's raw
// compiled arrays so internal/store can round-trip snapshots to disk as
// versioned binary archives. RehydrateGraph reconstructs a builder graph
// from a loaded snapshot, and NewLiveFromSnapshot wraps one in a Live
// whose first publication is the loaded snapshot itself — so a process
// cold-starting from the store serves bit-identical scores and still
// accepts log appends.
package qfg
