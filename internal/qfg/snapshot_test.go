package qfg

import (
	"math"
	"sync"
	"testing"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// allFragments lists every fragment of the graph plus some absent ones, so
// parity sweeps cover the miss paths too.
func allFragments(g *Graph) []fragment.Fragment {
	entries := g.Top(1 << 30)
	out := make([]fragment.Fragment, 0, len(entries)+2)
	for _, e := range entries {
		out = append(out, e.Fragment)
	}
	out = append(out,
		fragment.Relation("never_logged_relation"),
		fragment.Attr("never.logged", "COUNT"),
	)
	return out
}

// assertParity checks the snapshot agrees bit-for-bit with the map-backed
// graph on every pair of the given fragments.
func assertParity(t *testing.T, g *Graph, s *Snapshot, frags []fragment.Fragment) {
	t.Helper()
	for _, f := range frags {
		if got, want := s.Occurrences(f), g.Occurrences(f); got != want {
			t.Fatalf("Occurrences(%v) = %d, want %d", f, got, want)
		}
	}
	for i, a := range frags {
		for j := i; j < len(frags); j++ {
			b := frags[j]
			got, want := s.Dice(a, b), g.Dice(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Dice(%v, %v) = %v (snapshot), want %v (graph)", a, b, got, want)
			}
			if gotNe, wantNe := s.CoOccurrences(a, b), g.CoOccurrences(a, b); gotNe != wantNe {
				t.Fatalf("CoOccurrences(%v, %v) = %d, want %d", a, b, gotNe, wantNe)
			}
		}
	}
}

func TestSnapshotParityFigure3(t *testing.T) {
	for _, ob := range fragment.Levels() {
		g := buildFigure3(t, ob)
		s := g.Snapshot(nil)
		if s.Obscurity() != ob {
			t.Fatalf("Obscurity = %v, want %v", s.Obscurity(), ob)
		}
		if s.Queries() != g.Queries() {
			t.Fatalf("Queries = %d, want %d", s.Queries(), g.Queries())
		}
		if s.Vertices() != g.Vertices() {
			t.Fatalf("Vertices = %d, want %d", s.Vertices(), g.Vertices())
		}
		if s.Edges() != g.Edges() {
			t.Fatalf("Edges = %d, want %d", s.Edges(), g.Edges())
		}
		assertParity(t, g, s, allFragments(g))
	}
}

func TestSnapshotParityWithSessions(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	session := []*sqlparse.Query{
		sqlparse.MustParse("SELECT j.name FROM journal j"),
		sqlparse.MustParse("SELECT p.title FROM publication p WHERE p.year > 2003"),
		sqlparse.MustParse("SELECT p.title FROM publication p"),
	}
	for _, q := range session {
		if err := q.Resolve(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddSession(session, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	s := g.Snapshot(nil)
	// Session-only pairs (cross-query, never within one query) must appear
	// in the snapshot with their fractional evidence blended into Dice.
	jname := fragment.Attr("journal.name", "")
	title := fragment.Attr("publication.title", "")
	if g.CoOccurrences(jname, title) != 0 {
		t.Fatal("test premise: jname/title should not co-occur within a query")
	}
	if g.SessionCoOccurrence(jname, title) == 0 {
		t.Fatal("test premise: jname/title should carry session evidence")
	}
	assertParity(t, g, s, allFragments(g))
}

func TestSnapshotDiceRelations(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	s := g.Snapshot(nil)
	for _, pair := range [][2]string{
		{"journal", "publication"},
		{"journal", "journal"},
		{"journal", "nonesuch"},
		{"nonesuch", "nonesuch2"},
	} {
		got, want := s.DiceRelations(pair[0], pair[1]), g.DiceRelations(pair[0], pair[1])
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("DiceRelations(%s, %s) = %v, want %v", pair[0], pair[1], got, want)
		}
		if gotNe, wantNe := s.RelationCoOccurrences(pair[0], pair[1]), g.RelationCoOccurrences(pair[0], pair[1]); gotNe != wantNe {
			t.Fatalf("RelationCoOccurrences(%s, %s) = %d, want %d", pair[0], pair[1], gotNe, wantNe)
		}
	}
}

func TestSnapshotLookup(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	in := fragment.NewInterner()
	s := g.Snapshot(in)
	jour := fragment.Relation("journal")
	id := s.Lookup(jour)
	if id == fragment.NoID {
		t.Fatal("journal should be interned")
	}
	if in.Fragment(id) != jour {
		t.Fatalf("interner round-trip: %v", in.Fragment(id))
	}
	if s.OccurrencesID(id) != g.Occurrences(jour) {
		t.Fatal("OccurrencesID mismatch")
	}
	if got := s.Lookup(fragment.Relation("nonesuch")); got != fragment.NoID {
		t.Fatalf("Lookup(absent) = %d, want NoID", got)
	}
	if d := s.DiceID(fragment.NoID, id); d != 0 {
		t.Fatalf("DiceID(NoID, x) = %v, want 0", d)
	}
	if d := s.DiceID(fragment.NoID, fragment.NoID); d != 0 {
		t.Fatalf("DiceID(NoID, NoID) = %v, want 0", d)
	}

	// A fragment interned after compile is absent from this snapshot.
	lateID := in.Intern(fragment.Relation("late_arrival"))
	if s.OccurrencesID(lateID) != 0 {
		t.Fatal("late-interned fragment must read as absent")
	}
	if got := s.Lookup(fragment.Relation("late_arrival")); got != fragment.NoID {
		t.Fatalf("Lookup(late) = %d, want NoID", got)
	}
	if d := s.DiceID(lateID, id); d != 0 {
		t.Fatalf("DiceID(late, x) = %v, want 0", d)
	}
}

// TestSharedInternerStableIDs republishes through a shared interner and
// checks old IDs keep resolving to the same fragments and counts.
func TestSharedInternerStableIDs(t *testing.T) {
	g := buildFigure3(t, fragment.NoConstOp)
	in := fragment.NewInterner()
	s1 := g.Snapshot(in)
	jour := fragment.Relation("journal")
	id1 := s1.Lookup(jour)

	q := sqlparse.MustParse("SELECT o.name FROM organization o WHERE o.name = 'MIT'")
	if err := q.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	g.AddQuery(q, 4)
	s2 := g.Snapshot(in)
	if id2 := s2.Lookup(jour); id2 != id1 {
		t.Fatalf("journal ID changed across republish: %d -> %d", id1, id2)
	}
	if s2.Occurrences(fragment.Relation("organization")) != 4 {
		t.Fatal("new fragment missing from republished snapshot")
	}
	assertParity(t, g, s2, allFragments(g))
	// The old snapshot must still answer from its frozen state.
	if s1.Occurrences(fragment.Relation("organization")) != 0 {
		t.Fatal("old snapshot must not see the new fragment")
	}
	if s1.Queries() == s2.Queries() {
		t.Fatal("old snapshot must keep its frozen query count")
	}
}

// TestLiveConcurrentReadersAndAppends exercises the copy-on-write republish
// under the race detector: readers load snapshots and probe Dice while a
// writer keeps appending; reads never block and never observe a torn state.
func TestLiveConcurrentReadersAndAppends(t *testing.T) {
	entries, err := sqlparse.ParseLog(figure3Log)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(entries, fragment.NoConstOp)
	if err != nil {
		t.Fatal(err)
	}
	live := NewLive(g)

	newQ := func(src string) *sqlparse.Query {
		q := sqlparse.MustParse(src)
		if err := q.Resolve(nil); err != nil {
			t.Fatal(err)
		}
		return q
	}
	appended := newQ("SELECT c.name FROM conference c WHERE c.year > 2010")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jour := fragment.Relation("journal")
			pub := fragment.Relation("publication")
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := live.CurrentSnapshot()
				a, b := s.Lookup(jour), s.Lookup(pub)
				if d := s.DiceID(a, b); d < 0 || d > 1 {
					t.Errorf("Dice out of range: %v", d)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			live.AddQuery(appended, 1)
		}
		if err := live.AddSession([]*sqlparse.Query{
			newQ("SELECT j.name FROM journal j"),
			newQ("SELECT p.title FROM publication p"),
		}, 1, 0.5); err != nil {
			t.Error(err)
		}
		close(stop)
	}()
	wg.Wait()

	s := live.CurrentSnapshot()
	if got := s.Occurrences(fragment.Relation("conference")); got != 50 {
		t.Fatalf("conference occurrences = %d, want 50", got)
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: the map-backed Dice vs the compiled snapshot, serial and
// parallel. Run with -race to demonstrate concurrent-reader scaling with no
// synchronization on the hot path.

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	entries, err := sqlparse.ParseLog(figure3Log)
	if err != nil {
		b.Fatal(err)
	}
	g, err := Build(entries, fragment.NoConstOp)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkDiceMap(b *testing.B) {
	g := benchGraph(b)
	x := fragment.Relation("journal")
	y := fragment.Relation("publication")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dice(x, y)
	}
}

func BenchmarkDiceSnapshotID(b *testing.B) {
	s := benchGraph(b).Snapshot(nil)
	x := s.Lookup(fragment.Relation("journal"))
	y := s.Lookup(fragment.Relation("publication"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DiceID(x, y)
	}
}

func BenchmarkDiceMapParallel(b *testing.B) {
	g := benchGraph(b)
	x := fragment.Relation("journal")
	y := fragment.Relation("publication")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g.Dice(x, y)
		}
	})
}

func BenchmarkDiceSnapshotIDParallel(b *testing.B) {
	s := benchGraph(b).Snapshot(nil)
	x := s.Lookup(fragment.Relation("journal"))
	y := s.Lookup(fragment.Relation("publication"))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.DiceID(x, y)
		}
	})
}

func BenchmarkSnapshotCompile(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Snapshot(nil)
	}
}
