package qfg

import (
	"fmt"
	"sort"
	"sync"

	"templar/internal/fragment"
	"templar/internal/sqlparse"
)

// pairKey is an unordered fragment pair (a ≤ b by (context, expr)).
type pairKey struct {
	a, b fragment.Fragment
}

func less(a, b fragment.Fragment) bool {
	if a.Context != b.Context {
		return a.Context < b.Context
	}
	return a.Expr < b.Expr
}

func makePair(a, b fragment.Fragment) pairKey {
	if less(b, a) {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Graph is a Query Fragment Graph at a fixed obscurity level. It is safe for
// concurrent reads after construction; AddQuery must not race with readers.
type Graph struct {
	mu        sync.RWMutex
	obscurity fragment.Obscurity
	nv        map[fragment.Fragment]int
	ne        map[pairKey]int
	queries   int // total logged queries (weighted by multiplicity)
	// sessNe holds decayed cross-query co-occurrence evidence from user
	// sessions (see session.go); nil until AddSession is first called.
	sessNe map[pairKey]float64
}

// New returns an empty QFG at the given obscurity level.
func New(ob fragment.Obscurity) *Graph {
	return &Graph{
		obscurity: ob,
		nv:        make(map[fragment.Fragment]int),
		ne:        make(map[pairKey]int),
	}
}

// Obscurity returns the graph's obscurity level.
func (g *Graph) Obscurity() fragment.Obscurity { return g.obscurity }

// AddQuery folds one alias-resolved query into the graph with the given
// multiplicity (how many times the query appears in the log).
func (g *Graph) AddQuery(q *sqlparse.Query, count int) {
	if count <= 0 {
		return
	}
	frags := fragment.Extract(q, g.obscurity)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.queries += count
	for _, f := range frags {
		g.nv[f] += count
	}
	for i := 0; i < len(frags); i++ {
		for j := i + 1; j < len(frags); j++ {
			g.ne[makePair(frags[i], frags[j])] += count
		}
	}
}

// Build constructs a QFG from a parsed log. Queries are alias-resolved in
// place. It returns an error if any log entry fails alias resolution.
func Build(entries []sqlparse.LogEntry, ob fragment.Obscurity) (*Graph, error) {
	g := New(ob)
	for i, e := range entries {
		if err := e.Query.Resolve(nil); err != nil {
			return nil, fmt.Errorf("qfg: log entry %d: %w", i, err)
		}
		g.AddQuery(e.Query, e.Count)
	}
	return g, nil
}

// Occurrences returns nv(f): how many logged queries contain fragment f.
func (g *Graph) Occurrences(f fragment.Fragment) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nv[f]
}

// CoOccurrences returns ne(a, b): how many logged queries contain both a and b.
func (g *Graph) CoOccurrences(a, b fragment.Fragment) int {
	if a == b {
		return g.Occurrences(a)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ne[makePair(a, b)]
}

// Dice returns the Dice similarity coefficient of two fragments:
//
//	Dice(c1, c2) = 2·ne(c1, c2) / (nv(c1) + nv(c2))
//
// It is 0 when neither fragment occurs in the log, and 1 when the fragments
// always occur together.
func (g *Graph) Dice(a, b fragment.Fragment) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	na, nb := g.nv[a], g.nv[b]
	if na+nb == 0 {
		return 0
	}
	var ne float64
	if a == b {
		ne = float64(na)
	} else {
		ne = float64(g.ne[makePair(a, b)])
		if g.sessNe != nil {
			ne += g.sessNe[makePair(a, b)]
		}
	}
	d := 2 * ne / float64(na+nb)
	if d > 1 {
		// Session evidence can push the blended coefficient past the pure
		// Dice ceiling; clamp so downstream weights stay in [0, 1].
		d = 1
	}
	return d
}

// DiceRelations is Dice over the FROM fragments of two relation names. It is
// the co-occurrence signal used for log-driven join path weights (§VI-A2).
func (g *Graph) DiceRelations(relA, relB string) float64 {
	return g.Dice(fragment.Relation(relA), fragment.Relation(relB))
}

// RelationCoOccurrences returns the raw co-occurrence count of two relation
// names' FROM fragments — the unnormalized signal behind DiceRelations,
// exposed for the Dice-vs-raw-count weight ablation.
func (g *Graph) RelationCoOccurrences(relA, relB string) int {
	return g.CoOccurrences(fragment.Relation(relA), fragment.Relation(relB))
}

// Vertices returns the number of distinct fragments observed.
func (g *Graph) Vertices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nv)
}

// Edges returns the number of distinct co-occurring fragment pairs.
func (g *Graph) Edges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.ne)
}

// Queries returns the total number of logged queries folded in (weighted by
// multiplicity).
func (g *Graph) Queries() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.queries
}

// Entry pairs a fragment with its occurrence count, for inspection tools.
type Entry struct {
	Fragment fragment.Fragment
	Count    int
}

// Top returns the n most frequent fragments (ties broken by fragment order),
// for the qfg-inspect tool and debugging.
func (g *Graph) Top(n int) []Entry {
	g.mu.RLock()
	entries := make([]Entry, 0, len(g.nv))
	for f, c := range g.nv {
		entries = append(entries, Entry{f, c})
	}
	g.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return less(entries[i].Fragment, entries[j].Fragment)
	})
	if n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

// NeighborEntry pairs a co-occurring fragment with the pair's Dice score.
type NeighborEntry struct {
	Fragment fragment.Fragment
	Count    int
	Dice     float64
}

// Neighbors returns fragments that co-occur with f, sorted by descending
// Dice, for inspection tools.
func (g *Graph) Neighbors(f fragment.Fragment) []NeighborEntry {
	g.mu.RLock()
	var out []NeighborEntry
	for pk, c := range g.ne {
		var other fragment.Fragment
		switch {
		case pk.a == f:
			other = pk.b
		case pk.b == f:
			other = pk.a
		default:
			continue
		}
		d := 2 * float64(c) / float64(g.nv[f]+g.nv[other])
		out = append(out, NeighborEntry{other, c, d})
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dice != out[j].Dice {
			return out[i].Dice > out[j].Dice
		}
		return less(out[i].Fragment, out[j].Fragment)
	})
	return out
}
