package qfg

import (
	"fmt"

	"templar/internal/fragment"
)

// SnapshotParts is the raw compiled state of a Snapshot, exposed so a
// serialization layer (internal/store) can round-trip snapshots to disk
// without qfg depending on any encoding. The slices are the snapshot's own
// backing arrays — callers must treat them as read-only.
//
// Invariants (enforced by NewSnapshotFromParts):
//
//   - len(RowStart) == len(NV) + 1, with RowStart[0] == 0 and the values
//     non-decreasing; RowStart[len(NV)] == len(ColID)
//   - ColID, Co and NECount are parallel arrays of the same length, which
//     is even (every undirected edge is stored as two half-edges)
//   - within one row, ColID is strictly increasing and every ID indexes NV
type SnapshotParts struct {
	Obscurity fragment.Obscurity
	// Queries is the total logged queries at compile time.
	Queries int
	// NV[id] is the occurrence count of fragment id.
	NV []int
	// RowStart/ColID/Co/NECount are the CSR adjacency arrays: the
	// neighbors of id are ColID[RowStart[id]:RowStart[id+1]], with the
	// blended co-occurrence (float64(ne) + session evidence) in Co and the
	// raw integer ne in NECount at the same index.
	RowStart []uint32
	ColID    []uint32
	Co       []float64
	NECount  []int
}

// Parts exposes the snapshot's compiled arrays for serialization. The
// returned slices alias the snapshot — read-only.
func (s *Snapshot) Parts() SnapshotParts {
	return SnapshotParts{
		Obscurity: s.obscurity,
		Queries:   s.queries,
		NV:        s.nv,
		RowStart:  s.rowStart,
		ColID:     s.colID,
		Co:        s.co,
		NECount:   s.neCount,
	}
}

// NewSnapshotFromParts reassembles a Snapshot from deserialized parts and
// the interning table its IDs refer to. The parts are validated against the
// SnapshotParts invariants so a corrupt or truncated store file surfaces as
// an error here instead of an out-of-range panic on the serving hot path.
// The snapshot takes ownership of the slices; DiceID over the result is
// bit-identical to the snapshot the parts were taken from.
func NewSnapshotFromParts(in *fragment.Interner, p SnapshotParts) (*Snapshot, error) {
	if in == nil {
		return nil, fmt.Errorf("qfg: snapshot parts without an interner")
	}
	if in.Len() < len(p.NV) {
		return nil, fmt.Errorf("qfg: %d fragment counts but only %d interned fragments", len(p.NV), in.Len())
	}
	if p.Queries < 0 {
		return nil, fmt.Errorf("qfg: negative query count %d", p.Queries)
	}
	if len(p.RowStart) != len(p.NV)+1 {
		return nil, fmt.Errorf("qfg: row index length %d for %d vertices", len(p.RowStart), len(p.NV))
	}
	half := len(p.ColID)
	if len(p.Co) != half || len(p.NECount) != half {
		return nil, fmt.Errorf("qfg: adjacency arrays disagree: %d cols, %d co, %d ne", half, len(p.Co), len(p.NECount))
	}
	if half%2 != 0 {
		return nil, fmt.Errorf("qfg: odd half-edge count %d", half)
	}
	if p.RowStart[0] != 0 || int(p.RowStart[len(p.NV)]) != half {
		return nil, fmt.Errorf("qfg: row index spans [%d, %d], want [0, %d]", p.RowStart[0], p.RowStart[len(p.NV)], half)
	}
	for id := 0; id < len(p.NV); id++ {
		if p.NV[id] < 0 {
			return nil, fmt.Errorf("qfg: negative occurrence count for fragment %d", id)
		}
		lo, hi := p.RowStart[id], p.RowStart[id+1]
		if lo > hi || int(hi) > half {
			return nil, fmt.Errorf("qfg: fragment %d row [%d, %d) out of bounds", id, lo, hi)
		}
		for i := lo; i < hi; i++ {
			if int(p.ColID[i]) >= len(p.NV) {
				return nil, fmt.Errorf("qfg: fragment %d has neighbor %d outside %d vertices", id, p.ColID[i], len(p.NV))
			}
			if i > lo && p.ColID[i] <= p.ColID[i-1] {
				return nil, fmt.Errorf("qfg: fragment %d adjacency not strictly sorted", id)
			}
			if p.NECount[i] < 0 {
				return nil, fmt.Errorf("qfg: negative co-occurrence count on fragment %d", id)
			}
		}
	}
	return &Snapshot{
		obscurity: p.Obscurity,
		interner:  in,
		queries:   p.Queries,
		nv:        p.NV,
		rowStart:  p.RowStart,
		colID:     p.ColID,
		co:        p.Co,
		neCount:   p.NECount,
		edges:     half / 2,
	}, nil
}

// RehydrateGraph reconstructs a builder Graph from a compiled snapshot: nv
// and ne come back as fragment-keyed maps, and any session evidence blended
// into the snapshot's co-occurrence weights is recovered as the fractional
// remainder over the integer ne. The result folds new queries exactly like
// the graph the snapshot was compiled from, so a store-loaded dataset can
// keep accepting live log appends.
func RehydrateGraph(s *Snapshot) *Graph {
	g := New(s.obscurity)
	g.queries = s.queries
	in := s.interner
	frags := make([]fragment.Fragment, len(s.nv))
	for id := range s.nv {
		frags[id] = in.Fragment(uint32(id))
		if s.nv[id] > 0 {
			g.nv[frags[id]] = s.nv[id]
		}
	}
	for a := 0; a < len(s.nv); a++ {
		for i := s.rowStart[a]; i < s.rowStart[a+1]; i++ {
			b := s.colID[i]
			if uint32(a) >= b {
				continue // each undirected edge is stored twice; keep a < b
			}
			pk := makePair(frags[a], frags[b])
			if ne := s.neCount[i]; ne > 0 {
				g.ne[pk] = ne
			}
			if sess := s.co[i] - float64(s.neCount[i]); sess > 0 {
				if g.sessNe == nil {
					g.sessNe = make(map[pairKey]float64)
				}
				g.sessNe[pk] = sess
			}
		}
	}
	return g
}

// NewLiveFromSnapshot builds a Live log around a loaded snapshot: the
// snapshot itself is the first publication (so readers start from exactly
// the stored state, bit for bit), the builder graph is rehydrated from it,
// and the snapshot's interner keeps assigning IDs — fragments already in
// the store keep their IDs across every subsequent republish.
func NewLiveFromSnapshot(s *Snapshot) *Live {
	l := &Live{builder: RehydrateGraph(s), interner: s.interner}
	l.snap.Store(s)
	return l
}
